// Quickstart: plan and execute a safe BGP reconfiguration on the Abilene
// backbone, preserving reachability through every transient state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	chameleon "chameleon"
)

func main() {
	// 1. Build the paper's case-study scenario (§6): Abilene with three
	// egress routers; the reconfiguration denies the most preferred
	// egress's external route, forcing every router to re-route.
	s, err := chameleon.NewCaseStudy("Abilene", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s\n", s.Graph)
	fmt.Printf("reconfiguration: %s\n\n", s.Commands[0].Description)

	// 2. Plan: analyze happens-before relations, solve the scheduling ILP,
	// compile a reconfiguration plan. The default specification preserves
	// reachability for every router, in every transient state.
	rec, err := chameleon.Plan(s, chameleon.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d rounds, %d temporary sessions, T̃ ≈ %v\n",
		rec.Schedule.R,
		rec.Schedule.TempOldSessions+rec.Schedule.TempNewSessions,
		rec.EstimateReconfigurationTime())

	// 3. Execute the plan against the live (simulated) network. Router
	// command latency is modeled at 8–12 s per change, as measured on the
	// paper's Cisco Nexus testbed.
	res, err := rec.Execute(chameleon.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, ph := range res.Phases {
		fmt.Printf("  %-10s %6.1fs → %6.1fs\n", ph.Name, ph.Start.Seconds(), ph.End.Seconds())
	}
	fmt.Printf("executed in %v simulated time\n", res.Duration().Round(1e9))

	// 4. Verify: the recorded forwarding trace must satisfy the
	// specification at every instant — including mid-convergence states.
	if err := rec.Verify(res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("✓ no packet was ever dropped during the reconfiguration")
}
