// Waypoint-firewall: the paper's motivating scenario (Fig. 1) — traffic
// must keep traversing a security appliance (waypoint) while the network
// migrates between egress points, and each router may switch egress only
// once. Compares a naive direct reconfiguration against Chameleon.
//
//	go run ./examples/waypoint-firewall
package main

import (
	"fmt"
	"log"

	chameleon "chameleon"
	"chameleon/internal/eval"
)

func main() {
	// RunCaseStudy performs both runs on identical networks: the naive
	// direct application (Snowcap's behavior for a one-command change)
	// and Chameleon's coordinated plan, measuring packet-level traffic at
	// the paper's 16.5 kpkt/s aggregate rate.
	res, err := eval.RunCaseStudy("Abilene", 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Direct application (Snowcap):")
	fmt.Printf("  finished in %.1f s\n", res.SnowcapDuration.Seconds())
	fmt.Printf("  dropped packets:            %6.0f\n", res.Snowcap.TotalDropped)
	fmt.Printf("  waypoint-violating packets: %6.0f\n", res.Snowcap.TotalViolations)
	fmt.Printf("  violation window:           %6.2f s\n\n", res.Snowcap.ViolationSeconds)

	fmt.Println("Chameleon:")
	fmt.Printf("  finished in %.1f s (%d rounds, %d temp sessions)\n",
		res.ChameleonDuration.Seconds(), res.R, res.TempSessions)
	fmt.Printf("  dropped packets:            %6.0f\n", res.Chameleon.TotalDropped)
	fmt.Printf("  waypoint-violating packets: %6.0f\n", res.Chameleon.TotalViolations)

	if !res.Chameleon.Clean() {
		log.Fatal("Chameleon violated the specification — this is a bug")
	}
	fmt.Printf("\nchameleon paid a %.0fx slowdown to eliminate every transient violation\n",
		res.ChameleonDuration.Seconds()/res.SnowcapDuration.Seconds())

	// The same invariants can be written explicitly in the specification
	// language and passed to Plan:
	s, err := chameleon.NewCaseStudy("Abilene", 7)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := chameleon.ParseSpec(
		"G reach(Denver) && (wp(Denver, Seattle) || wp(Denver, NewYork) || true)", s.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexample explicit specification: %v\n", sp)
}
