// Multi-destination: reconfigure two prefixes at once (§5). Chameleon
// plans each prefix equivalence class separately, then executes both update
// phases in parallel, aligning the shared original command across them.
//
//	go run ./examples/multi-destination
package main

import (
	"fmt"
	"log"

	"chameleon/internal/analyzer"
	"chameleon/internal/bgp"
	"chameleon/internal/eval"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
)

func main() {
	// Fig. 3's network announcing two prefixes with identical policy.
	s := scenario.RunningExample()
	ext1 := s.Graph.MustNode("ext1")
	ext6 := s.Graph.MustNode("ext6")
	s.Net.InjectExternalRoute(ext1, sim.Announcement{Prefix: 1, ASPathLen: 2})
	s.Net.InjectExternalRoute(ext6, sim.Announcement{Prefix: 1, ASPathLen: 2})
	s.Net.Run()

	// One plan per destination (the prefixes here are equivalent — §3
	// would collapse them into one class; planning both exercises the
	// multi-destination machinery).
	var plans []*plan.Plan
	for _, prefix := range []bgp.Prefix{0, 1} {
		a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), prefix)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := scheduler.Schedule(a, eval.ReachabilitySpec(s.Graph), scheduler.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		p, err := plan.Compile(a, sched, s.Commands)
		if err != nil {
			log.Fatal(err)
		}
		p.Prefix = prefix
		plans = append(plans, p)
		fmt.Printf("prefix %d: R=%d rounds, %d temp sessions\n",
			prefix, sched.R, sched.TempOldSessions+sched.TempNewSessions)
	}

	// Align the shared original command and execute both in parallel.
	mp, err := plan.Align(plans, s.Commands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned command order: %v; %d distinct temp sessions\n",
		mp.Order, len(mp.TempSessions()))
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	res, err := ex.ExecuteMulti(mp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed both destinations in %v simulated (%d phases)\n",
		res.Duration().Round(1e9), len(res.Phases))

	n6 := s.Graph.MustNode("n6")
	for _, prefix := range []bgp.Prefix{0, 1} {
		for _, n := range s.Graph.Internal() {
			best, ok := s.Net.Best(n, prefix)
			if !ok || best.Egress != n6 {
				log.Fatalf("prefix %d node %d not on the final egress", prefix, n)
			}
		}
	}
	fmt.Println("✓ both prefixes migrated safely")
}
