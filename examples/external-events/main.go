// External-events: reproduces Fig. 11 — Chameleon's resilience to events
// that strike mid-reconfiguration. A link failure triggers only the IGP's
// own sub-second reconvergence (11a), and a strictly better BGP route
// announced at a fourth egress is ignored until the reconfiguration
// commits, after which the network adopts it (11b).
//
//	go run ./examples/external-events
package main

import (
	"fmt"
	"log"
	"time"

	"chameleon/internal/eval"
)

func main() {
	fmt.Println("— Fig. 11a: link failure 7 s into the reconfiguration —")
	a, err := eval.RunLinkFailureExperiment("Abilene", 7, 7*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfiguration completed in %.1f s despite the failure\n",
		a.Result.Duration().Seconds())
	fmt.Printf("loss window: %.2f s (OSPF reconvergence only; paper: ≈0.5 s)\n",
		a.Measurement.ViolationSeconds)
	fmt.Printf("packets lost: %.0f\n\n", a.Measurement.TotalDropped)

	fmt.Println("— Fig. 11b: better route announced at e4 after 30 s (mid-update) —")
	b, err := eval.RunNewRouteExperiment("Abilene", 7, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfiguration completed in %.1f s\n", b.Result.Duration().Seconds())
	fmt.Printf("drops during the plan: %.0f (the pinned transient state ignores the new route)\n",
		b.Measurement.TotalDropped)
	fmt.Printf("network adopted the e4 route after cleanup: %v\n", b.ConvergedToE4)
	if !b.ConvergedToE4 {
		log.Fatal("expected convergence to e4 after the preferences were restored")
	}
}
