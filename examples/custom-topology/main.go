// Custom-topology: build a network from scratch with the public API — your
// own routers, IGP weights, route reflectors and external peers — then plan
// a local-preference change exactly like the paper's Fig. 3 running
// example, and inspect the computed schedule tuple by tuple.
//
//	go run ./examples/custom-topology
package main

import (
	"fmt"
	"log"
	"sort"

	chameleon "chameleon"
	"chameleon/internal/bgp"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

func main() {
	// A small dual-reflector network, built by hand.
	g := chameleon.NewGraph("custom")
	core1 := g.AddRouter("core1")
	core2 := g.AddRouter("core2")
	edgeA := g.AddRouter("edgeA")
	edgeB := g.AddRouter("edgeB")
	extA := g.AddExternal("peerA", 65001)
	extB := g.AddExternal("peerB", 65002)
	g.AddLink(core1, core2, 1)
	g.AddLink(core1, edgeA, 2)
	g.AddLink(core2, edgeB, 2)
	g.AddLink(edgeA, edgeB, 10)
	g.AddLink(extA, edgeA, 1)
	g.AddLink(extB, edgeB, 1)

	net := chameleon.NewNetwork(g, 42)
	// core1 and core2 reflect for the edges.
	net.SetSession(core1, edgeA, bgp.IBGPClient)
	net.SetSession(core1, edgeB, bgp.IBGPClient)
	net.SetSession(core2, edgeA, bgp.IBGPClient)
	net.SetSession(core2, edgeB, bgp.IBGPClient)
	net.SetSession(core1, core2, bgp.IBGPPeer)
	net.SetSession(edgeA, extA, bgp.EBGP)
	net.SetSession(edgeB, extB, bgp.EBGP)

	// peerA's route is preferred via local-pref 200.
	net.UpdateRouteMap(edgeA, extA, sim.In, func(rm *sim.RouteMap) {
		rm.Add(sim.Entry{Order: 10, Action: sim.Action{SetLocalPref: sim.U32P(200)}})
	})
	const prefix = 0
	net.InjectExternalRoute(extA, sim.Announcement{Prefix: prefix, ASPathLen: 3})
	net.InjectExternalRoute(extB, sim.Announcement{Prefix: prefix, ASPathLen: 3})
	net.Run()

	fmt.Println("initial forwarding:")
	show(g, net, prefix)

	// The reconfiguration: drop peerA's preference to 50, shifting all
	// traffic to peerB — the Fig. 3 pattern.
	cmd := sim.Command{
		Node:        edgeA,
		Description: "edgeA: lower peerA local-pref to 50",
		Apply: func(n *sim.Network) {
			n.UpdateRouteMap(edgeA, extA, sim.In, func(rm *sim.RouteMap) {
				rm.Remove(10)
				rm.Add(sim.Entry{Order: 10, Action: sim.Action{SetLocalPref: sim.U32P(50)}})
			})
		},
	}
	s := &scenario.Scenario{
		Name: "custom", Net: net, Graph: g, Prefix: prefix,
		E1: edgeA, E2: edgeB, E3: edgeB,
		Ext:      []topology.NodeID{extA, extB},
		Commands: []sim.Command{cmd},
		Seed:     42,
	}

	sp, err := chameleon.ParseSpec(
		"G (reach(core1) && reach(core2) && reach(edgeA) && reach(edgeB))", g)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := chameleon.Plan(s, chameleon.PlanOptions{Spec: sp})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nschedule (R=%d):\n", rec.Schedule.R)
	var nodes []topology.NodeID
	for n := range rec.Schedule.Tuples {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		t := rec.Schedule.Tuples[n]
		fmt.Printf("  %-8s r_old=%d r_nh=%d r_new=%d tempOld=%v tempNew=%v\n",
			g.Node(n).Name, t.Old, t.NH, t.New,
			rec.Schedule.TempOld(n), rec.Schedule.TempNew(n))
	}

	res, err := rec.Execute(chameleon.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Verify(res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal forwarding (verified safe throughout):")
	show(g, net, prefix)
}

func show(g *chameleon.Graph, net *chameleon.Network, prefix chameleon.Prefix) {
	st := net.ForwardingState(prefix)
	for _, n := range g.Internal() {
		nh := "drop"
		switch {
		case st[n] == -2:
			nh = "external"
		case st[n] >= 0:
			nh = g.Node(st[n]).Name
		}
		fmt.Printf("  %-8s → %s\n", g.Node(n).Name, nh)
	}
}
