package chameleon_test

import (
	"fmt"

	chameleon "chameleon"
)

// ExamplePlan demonstrates the full pipeline on the paper's Fig. 3
// running example: analyze, schedule, compile, execute, verify.
func ExamplePlan() {
	s := chameleon.RunningExample()
	rec, err := chameleon.Plan(s, chameleon.PlanOptions{})
	if err != nil {
		panic(err)
	}
	res, err := rec.Execute(chameleon.ExecOptions{})
	if err != nil {
		panic(err)
	}
	if err := rec.Verify(res); err != nil {
		panic(err)
	}
	fmt.Println("rounds:", rec.Schedule.R)
	fmt.Println("verified:", true)
	// Output:
	// rounds: 4
	// verified: true
}

// ExampleParseSpec shows the Fig. 2 specification syntax.
func ExampleParseSpec() {
	s := chameleon.RunningExample()
	sp, err := chameleon.ParseSpec("wp(n4, n1) U G wp(n4, n6)", s.Graph)
	if err != nil {
		panic(err)
	}
	fmt.Println(sp.TemporalDepth())
	// Output:
	// 2
}

// ExampleReconfiguration_EstimateReconfigurationTime shows the §7.2
// T̃ = 12 s · (2 + R) approximation.
func ExampleReconfiguration_EstimateReconfigurationTime() {
	s := chameleon.RunningExample()
	rec, err := chameleon.Plan(s, chameleon.PlanOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(rec.EstimateReconfigurationTime())
	// Output:
	// 1m12s
}
