// Benchmarks: one per table and figure of the paper's evaluation, plus the
// design-choice ablations called out in DESIGN.md. Each benchmark runs a
// scaled-down instance of the corresponding experiment so `go test -bench`
// stays laptop-sized; `cmd/evalharness` regenerates the full outputs.
package chameleon_test

import (
	"context"
	"testing"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/eval"
	"chameleon/internal/milp"
	"chameleon/internal/obs"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sitn"
	"chameleon/internal/snowcap"
)

// BenchmarkFig01AbileneCaseStudy runs the full Fig. 1 comparison: Snowcap's
// direct application (with its transient violations) vs Chameleon's safe
// plan, both with packet-level measurement.
func BenchmarkFig01AbileneCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunCaseStudy("Abilene", 7)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Chameleon.Clean() {
			b.Fatal("chameleon violated the spec")
		}
	}
}

// BenchmarkFig06PhaseTimeline measures planning + execution of the Abilene
// case study, whose phase spans reproduce Fig. 6.
func BenchmarkFig06PhaseTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		pl, err := eval.BuildPipeline(s, eval.SpecEq4, scheduler.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if pl.Schedule.R+2 < 3 {
			b.Fatal("degenerate plan")
		}
	}
}

// BenchmarkFig07SchedulingTime runs the Fig. 7 scheduling sweep over a
// fixed corpus slice spanning an order of magnitude in Cr. Besides time/op
// it reports solver effort per op (branch-and-bound nodes), which is the
// machine-independent cost axis Fig. 7 correlates with Cr.
func BenchmarkFig07SchedulingTime(b *testing.B) {
	names := []string{"Basnet", "Compuserve", "Aarnet", "Agis", "Arpanet19728"}
	rec := obs.New()
	ctx := obs.WithRecorder(context.Background(), rec)
	for i := 0; i < b.N; i++ {
		outs, err := eval.SweepSchedulingCtx(ctx, names, 7, scheduler.DefaultOptions(), 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("%s: %v", o.Name, o.Err)
			}
		}
	}
	b.ReportMetric(float64(rec.Counter(obs.CtrMILPNodes))/float64(b.N), "milp_nodes/op")
}

// BenchmarkParallelSweep measures the worker-pool speedup on the same
// corpus slice as Fig. 7: sequential vs one worker per CPU. The merged
// results are byte-identical either way; only wall-clock changes.
func BenchmarkParallelSweep(b *testing.B) {
	names := []string{"Basnet", "Compuserve", "Aarnet", "Agis", "Arpanet19728"}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers-1", 1}, {"workers-numcpu", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				outs := eval.SweepScheduling(names, 7, scheduler.DefaultOptions(), bc.workers, nil)
				for _, o := range outs {
					if o.Err != nil {
						b.Fatalf("%s: %v", o.Name, o.Err)
					}
				}
			}
		})
	}
}

// BenchmarkFig08SpecComplexity measures the φn-vs-φt scheduling-time gap.
func BenchmarkFig08SpecComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, temporal := range []bool{false, true} {
			if _, err := eval.SpecComplexitySweep("Aarnet", temporal, true,
				[]float64{0, 1}, 2, 7); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig09ReconfTimeCDF computes the T̃ distribution over a corpus
// slice.
func BenchmarkFig09ReconfTimeCDF(b *testing.B) {
	names := []string{"Basnet", "Compuserve", "Sprint", "EEnet", "Aarnet"}
	for i := 0; i < b.N; i++ {
		outs := eval.SweepScheduling(names, 7, scheduler.DefaultOptions(), 1, nil)
		var xs []float64
		for _, o := range outs {
			if o.Err == nil {
				xs = append(xs, o.EstimatedReconfTime.Seconds())
			}
		}
		if eval.FractionBelow(xs, 120) == 0 {
			b.Fatal("no scenario under two minutes")
		}
	}
}

// BenchmarkFig10TableOverhead measures Chameleon-vs-SITN table overhead.
func BenchmarkFig10TableOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs := eval.SweepTableOverhead([]string{"Abilene", "Sprint"}, 7,
			scheduler.DefaultOptions(), 1, nil)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("%s: %v", o.Name, o.Err)
			}
			if o.Chameleon >= o.SITN {
				b.Fatal("chameleon overhead not below SITN")
			}
		}
	}
}

// BenchmarkFig11ExternalEvents runs both external-event experiments.
func BenchmarkFig11ExternalEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunLinkFailureExperiment("Abilene", 7, 7*time.Second); err != nil {
			b.Fatal(err)
		}
		r, err := eval.RunNewRouteExperiment("Abilene", 7, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if !r.ConvergedToE4 {
			b.Fatal("no convergence to e4")
		}
	}
}

// BenchmarkFig12SupplementaryCaseStudies runs the five App. C topologies.
func BenchmarkFig12SupplementaryCaseStudies(b *testing.B) {
	names := []string{"Compuserve", "HiberniaCanada", "Sprint", "JGN2plus", "EEnet"}
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			res, err := eval.RunCaseStudy(name, 7)
			if err != nil {
				b.Fatalf("%s: %v", name, err)
			}
			if !res.Chameleon.Clean() {
				b.Fatalf("%s: chameleon violated", name)
			}
		}
	}
}

// BenchmarkFig13LoopConstraintAblation compares explicit vs implicit loop
// constraints (App. D).
func BenchmarkFig13LoopConstraintAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, explicit := range []bool{true, false} {
			if _, err := eval.SpecComplexitySweep("Sprint", true, explicit,
				[]float64{0, 1}, 2, 7); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1CompilationRules compiles the Abilene plan, exercising the
// Table 1 rules.
func BenchmarkTable1CompilationRules(b *testing.B) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	pl, err := eval.BuildPipeline(s, eval.SpecEq4, scheduler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p2, err := rebuildPlan(pl)
		if err != nil {
			b.Fatal(err)
		}
		if p2.Plan.NumSteps() == 0 {
			b.Fatal("empty plan")
		}
	}
}

func rebuildPlan(pl *eval.Pipeline) (*eval.Pipeline, error) {
	return eval.BuildPipeline(pl.Scenario, eval.SpecEq4, scheduler.DefaultOptions())
}

// BenchmarkTable2NamedTopologies schedules the smallest Table 2 topology
// (Deltacom, 113 routers) end to end; the full table is regenerated by
// `evalharness -table 2`.
func BenchmarkTable2NamedTopologies(b *testing.B) {
	if testing.Short() {
		b.Skip("113-node scheduling skipped in -short")
	}
	for i := 0; i < b.N; i++ {
		outs := eval.SweepScheduling([]string{"Deltacom"}, 7, scheduler.DefaultOptions(), 1, nil)
		if outs[0].Err != nil {
			b.Fatal(outs[0].Err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ----------------------------------------------

// BenchmarkAblationObjective compares scheduling with and without the
// temp-session minimization objective.
func BenchmarkAblationObjective(b *testing.B) {
	s, err := scenario.CaseStudy("Aarnet", scenario.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		b.Fatal(err)
	}
	sp := eval.ReachabilitySpec(s.Graph)
	for _, minimize := range []bool{true, false} {
		name := "feasibility-only"
		if minimize {
			name = "minimize-sessions"
		}
		b.Run(name, func(b *testing.B) {
			opts := scheduler.DefaultOptions()
			opts.MinimizeTempSessions = minimize
			for i := 0; i < b.N; i++ {
				sched, err := scheduler.Schedule(a, sp, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sched.TempOldSessions+sched.TempNewSessions), "temp-sessions")
			}
		})
	}
}

// BenchmarkAblationConstructive compares the ILP scheduler against the
// App. B constructive traversal for pure reachability.
func BenchmarkAblationConstructive(b *testing.B) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ilp", func(b *testing.B) {
		sp := eval.ReachabilitySpec(s.Graph)
		for i := 0; i < b.N; i++ {
			sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sched.R), "rounds")
		}
	})
	b.Run("constructive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched, err := scheduler.ConstructiveReachability(a)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sched.R), "rounds")
		}
	})
}

// BenchmarkAblationLPBounding measures the MILP solver with and without LP
// relaxation bounding on a small optimization model.
func BenchmarkAblationLPBounding(b *testing.B) {
	build := func() *milp.Model {
		m := milp.NewModel()
		var vars []milp.VarID
		for i := 0; i < 12; i++ {
			vars = append(vars, m.NewInt("x", 0, 4))
		}
		for i := 0; i+2 < len(vars); i++ {
			m.AddLe(milp.Lin().Add(vars[i], 2).Add(vars[i+1], 3).Add(vars[i+2], 1), 9)
		}
		obj := milp.Lin()
		for i, v := range vars {
			obj = obj.Add(v, int64(-(i%5 + 1)))
		}
		m.Minimize(obj)
		return m
	}
	for _, lpb := range []bool{false, true} {
		name := "propagation-only"
		if lpb {
			name = "with-lp-bound"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := build()
				if _, err := m.Solve(milp.Options{UseLPBound: lpb, LPBoundEvery: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBaselineSITN measures SITN's migration machinery.
func BenchmarkAblationBaselineSITN(b *testing.B) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	final := s.FinalNetwork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := sitn.NewDualPlane(s.Net, final, s.Prefix)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Migrate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnowcapSynthesis measures the baseline's ordering search.
func BenchmarkSnowcapSynthesis(b *testing.B) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	sp := eval.ReachabilitySpec(s.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snowcap.Synthesize(s.Net, s.Prefix, s.Commands, sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorConvergence measures raw event-processing throughput of
// the BGP simulator substrate on a mid-sized network. sim_events/op counts
// every simulator event (deliveries and scheduled functions), msgs only the
// BGP deliveries.
func BenchmarkSimulatorConvergence(b *testing.B) {
	rec := obs.New()
	for i := 0; i < b.N; i++ {
		s, err := scenario.CaseStudy("Aarnet", scenario.Config{Seed: uint64(i + 1), Recorder: rec})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.Net.MessagesProcessed()), "msgs")
	}
	b.ReportMetric(float64(rec.Counter(obs.CtrSimEvents))/float64(b.N), "sim_events/op")
}

// BenchmarkAblationConcurrency quantifies §4.2's concurrent updates: the
// round count (and hence T̃) with concurrency enabled vs fully serialized
// updates.
func BenchmarkAblationConcurrency(b *testing.B) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		b.Fatal(err)
	}
	sp := eval.ReachabilitySpec(s.Graph)
	for _, serialize := range []bool{false, true} {
		name := "concurrent"
		if serialize {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			opts := scheduler.DefaultOptions()
			opts.SerializeUpdates = serialize
			for i := 0; i < b.N; i++ {
				sched, err := scheduler.Schedule(a, sp, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sched.R), "rounds")
			}
		})
	}
}
