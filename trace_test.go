package chameleon_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"chameleon"
	"chameleon/internal/obs"
)

// tracedRun plans and executes the running example with a fresh recorder
// and returns everything a reconciliation check needs.
func tracedRun(t *testing.T) (*chameleon.Recorder, *chameleon.Reconfiguration, *chameleon.ExecResult) {
	t.Helper()
	s := chameleon.RunningExample()
	rec := chameleon.NewRecorder()
	r, err := chameleon.PlanCtx(context.Background(), s, chameleon.PlanOptions{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ExecuteCtx(context.Background(), chameleon.ExecOptions{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(res); err != nil {
		t.Fatal(err)
	}
	return rec, r, res
}

// TestTraceReconciliation runs the running example through the traced
// facade and reconciles the recorded spans and counters against the
// planner's and executor's own reports: the span tree is well-formed, one
// round span exists per scheduled round, solver counters equal the
// scheduler's stats, and the fault-free command-push counter equals the
// executor's CommandsApplied.
func TestTraceReconciliation(t *testing.T) {
	rec, r, res := tracedRun(t)
	if err := rec.Validate(); err != nil {
		t.Fatalf("trace ill-formed: %v", err)
	}

	rounds := 0
	for _, name := range rec.SpanNames() {
		var k int
		if _, err := fmt.Sscanf(name, "round %d", &k); err == nil {
			rounds++
		}
	}
	if rounds != r.Schedule.R {
		t.Errorf("trace has %d round spans, schedule has R=%d", rounds, r.Schedule.R)
	}

	counters := rec.Counters()
	if got, want := counters[obs.CtrMILPNodes], r.Schedule.Stats.SolverNodes; got != want {
		t.Errorf("%s = %d, scheduler stats say %d", obs.CtrMILPNodes, got, want)
	}
	if got, want := counters[obs.CtrMILPPropagations], r.Schedule.Stats.Propagations; got != want {
		t.Errorf("%s = %d, scheduler stats say %d", obs.CtrMILPPropagations, got, want)
	}
	if got, want := counters[obs.CtrLPPivots], r.Schedule.Stats.LPPivots; got != want {
		t.Errorf("%s = %d, scheduler stats say %d", obs.CtrLPPivots, got, want)
	}
	if got, want := counters[obs.CtrSchedRoundsTried], int64(r.Schedule.Stats.RoundsTried); got != want {
		t.Errorf("%s = %d, scheduler stats say %d", obs.CtrSchedRoundsTried, got, want)
	}
	// No fault injector: every plan command is pushed exactly once, so the
	// push counter must equal the executor's applied-command count.
	if got, want := counters[obs.CtrExecCommandsPushed], int64(res.CommandsApplied); got != want {
		t.Errorf("%s = %d, executor applied %d", obs.CtrExecCommandsPushed, got, want)
	}
	if got, want := counters[obs.CtrSessionsOpened], int64(len(r.Plan.TempSessions)); got != want {
		t.Errorf("%s = %d, plan has %d temp sessions", obs.CtrSessionsOpened, got, want)
	}
	if got, want := counters[obs.CtrSessionsClosed], int64(len(r.Plan.TempSessions)); got != want {
		t.Errorf("%s = %d, plan has %d temp sessions", obs.CtrSessionsClosed, got, want)
	}
}

// TestTraceRunToRunDeterminism: two identical traced runs produce
// byte-identical JSONL and metric dumps — the contract that makes traces
// diffable across machines and CI runs.
func TestTraceRunToRunDeterminism(t *testing.T) {
	dump := func() (string, string) {
		rec, _, _ := tracedRun(t)
		var tr, m bytes.Buffer
		if err := rec.WriteJSONL(&tr); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		return tr.String(), m.String()
	}
	tr1, m1 := dump()
	tr2, m2 := dump()
	if tr1 != tr2 {
		t.Errorf("trace JSONL differs between identical runs:\n%s\nvs\n%s", tr1, tr2)
	}
	if m1 != m2 {
		t.Errorf("metric dump differs between identical runs:\n%s\nvs\n%s", m1, m2)
	}
}

// TestPlanCtxPreCancelled: a cancelled context fails planning immediately.
func TestPlanCtxPreCancelled(t *testing.T) {
	s := chameleon.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := chameleon.PlanCtx(ctx, s, chameleon.PlanOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlanCtx = %v, want context.Canceled", err)
	}
}

// TestPlanCtxCancelMidSolve cancels while the Abilene schedule is being
// solved: a watcher goroutine waits (via the recorder) for the schedule
// span to open, then cancels. Scheduling Abilene takes tens of
// milliseconds, so the cancellation lands inside the branch-and-bound,
// which polls the context between nodes.
func TestPlanCtxCancelMidSolve(t *testing.T) {
	s, err := chameleon.NewCaseStudy("Abilene", 7)
	if err != nil {
		t.Fatal(err)
	}
	rec := chameleon.NewRecorder()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Spans: 1 = plan, 2 = class, 3 = analyze, 4 = schedule.
		for rec.NumSpans() < 4 {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	_, err = chameleon.PlanCtx(ctx, s, chameleon.PlanOptions{Recorder: rec})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PlanCtx = %v, want context.Canceled", err)
	}
	if err := rec.Validate(); err != nil {
		t.Errorf("trace after mid-solve cancellation ill-formed: %v", err)
	}
}

// TestExecuteCtxFacadePreCancelled: the facade's ExecuteCtx honors an
// already-cancelled context without touching the network.
func TestExecuteCtxFacadePreCancelled(t *testing.T) {
	s := chameleon.RunningExample()
	r, err := chameleon.Plan(s, chameleon.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ExecuteCtx(ctx, chameleon.ExecOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx = %v, want context.Canceled", err)
	}
}
