// Package chameleon is a Go implementation of Chameleon (SIGCOMM 2023,
// "Taming the transient while reconfiguring BGP"): a BGP reconfiguration
// framework that preserves forwarding invariants — expressed in an LTL
// specification language over reach/waypoint predicates — throughout every
// transient state of the reconfiguration, using only standard BGP
// mechanisms (route-map weights and temporary iBGP sessions).
//
// The package is a facade over the building blocks:
//
//   - topology / igp / bgp / sim — the network substrate: graphs, OSPF-like
//     shortest paths, the BGP decision process, and an event-based BGP
//     simulator with route reflection and route maps.
//   - spec — the Fig. 2 specification language (parser + evaluator).
//   - analyzer / scheduler / plan / runtime — Chameleon's four stages:
//     happens-before extraction, ILP scheduling, plan compilation, and the
//     runtime controller.
//   - snowcap / sitn — the baselines the paper compares against.
//   - eval / traffic — the full evaluation harness for every figure/table.
//
// A minimal use:
//
//	s, _ := chameleon.NewCaseStudy("Abilene", 7)
//	rec, _ := chameleon.Plan(s, chameleon.PlanOptions{})
//	result, _ := rec.Execute(chameleon.ExecOptions{})
//
// Plan and Execute are context.Background() shorthands for PlanCtx and
// ExecuteCtx, which additionally accept a context for cancellation (it
// reaches into the ILP branch-and-bound and the runtime's supervision
// loop) and, via the options' Recorder field, structured tracing and
// metrics of the whole pipeline (see NewRecorder).
package chameleon

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/bgp"
	"chameleon/internal/eval"
	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/plan"
	"chameleon/internal/pool"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/spec"
	"chameleon/internal/supervisor"
	"chameleon/internal/topology"
)

// Re-exported core types; the aliases make the internal packages' types
// usable by downstream code through this package.
type (
	// Graph is the physical network topology.
	Graph = topology.Graph
	// NodeID identifies a router or external network.
	NodeID = topology.NodeID
	// Network is a live simulated BGP network.
	Network = sim.Network
	// Prefix is a destination prefix (equivalence class).
	Prefix = bgp.Prefix
	// TableKind selects the RIB storage engine of a network (see RIBMap /
	// RIBCow).
	TableKind = bgp.TableKind
	// RIB is the prefix-keyed route-table contract both engines implement.
	RIB = bgp.RIB
	// ScenarioConfig tweaks CaseStudy construction (seed, spare egress,
	// extra prefixes, RIB engine, …).
	ScenarioConfig = scenario.Config
	// StormConfig parameterizes a prefix-scale announcement storm.
	StormConfig = scenario.StormConfig
	// Storm is a converged prefix-scale network.
	Storm = scenario.Storm
	// Command is an atomic configuration change.
	Command = sim.Command
	// Spec is a parsed specification.
	Spec = spec.Spec
	// Scenario is a ready-made reconfiguration scenario.
	Scenario = scenario.Scenario
	// NodeSchedule is the scheduler's output.
	NodeSchedule = scheduler.NodeSchedule
	// ReconfigurationPlan is the compiled plan.
	ReconfigurationPlan = plan.Plan
	// MultiPlan is an aligned multi-destination plan: one compiled plan
	// per prefix, sharing the original commands (§5).
	MultiPlan = plan.MultiPlan
	// EquivalenceClass is one §3 prefix equivalence class: prefixes whose
	// initial and final routing states are identical up to the prefix
	// value, planned once via their representative.
	EquivalenceClass = analyzer.Class
	// ExecResult reports an executed reconfiguration.
	ExecResult = runtime.Result
	// Analysis is the analyzer's happens-before description.
	Analysis = analyzer.Analysis
	// Recorder collects structured traces (hierarchical spans on the
	// simulated clock) and monotonic counters from every pipeline stage
	// it is handed to. It is safe for concurrent use, and a nil *Recorder
	// is a valid no-op: observability costs nothing unless asked for.
	Recorder = obs.Recorder
	// Monitor is the online transient-state monitor: it checks every
	// forwarding snapshot the simulator takes against the configured
	// invariants and accumulates a violation timeline (see NewMonitor).
	Monitor = monitor.Monitor
	// MonitorConfig configures a Monitor.
	MonitorConfig = monitor.Config
	// MonitorInvariant is one online-checkable forwarding property.
	MonitorInvariant = monitor.Invariant
	// Timeline is a completed monitor output: violation intervals with
	// onset, duration, blast radius and phase attribution.
	Timeline = monitor.Timeline
	// SuperviseOptions configure closed-loop supervision (see Supervise).
	SuperviseOptions = supervisor.Options
	// SuperviseResult reports a finished supervised reconfiguration: the
	// terminal configuration (final or initial — never pinned in between),
	// how far down the degradation ladder the run went, and the per-attempt
	// monitor timelines.
	SuperviseResult = supervisor.Result
	// SuperviseOutcome is the supervisor's terminal-configuration verdict.
	SuperviseOutcome = supervisor.Outcome
)

// Supervisor outcome values: a supervised reconfiguration always terminates
// in exactly one of these configurations.
const (
	OutcomeFinal   = supervisor.OutcomeFinal
	OutcomeInitial = supervisor.OutcomeInitial
)

// RIB engine selectors: RIBMap is the legacy map-backed table (the zero
// value, and still the default); RIBCow is the prefix-scale copy-on-write
// radix engine. Select via sim.Options.RIB, ScenarioConfig.RIB or
// StormConfig.RIB; both engines produce byte-identical routing outcomes.
const (
	RIBMap = bgp.TableMap
	RIBCow = bgp.TableCOW
)

// NewRIB returns an empty route table on the given engine, for callers
// building RIB-shaped state of their own against the redesigned API.
func NewRIB(kind TableKind) RIB { return bgp.NewRIB(kind) }

// NewMonitor returns a transient-state monitor over cfg. Hand it to
// PlanOptions.Monitor (the compiled specification is then tracked as an
// additional invariant) and ExecOptions.Monitor (execution binds it to the
// network's snapshot stream, attributes violations to rounds, and gates
// round advancement on observed forwarding convergence). After execution
// the completed timeline is available via its Timeline method.
func NewMonitor(cfg MonitorConfig) *Monitor { return monitor.New(cfg) }

// DefaultInvariants returns the invariants every reconfiguration must
// preserve regardless of its specification: full reachability and
// loop-freedom over g's internal routers.
func DefaultInvariants(g *Graph) []MonitorInvariant {
	return []MonitorInvariant{monitor.ReachAll(g), monitor.LoopFree()}
}

// NewRecorder returns an empty Recorder. Hand it to PlanOptions.Recorder
// and ExecOptions.Recorder (or carry it in a context via the internal obs
// package's WithRecorder for the eval and chaos sweeps), then export with
// its WriteJSONL, WriteMetrics or FlameSummary methods. Recorded ticks and
// simulated-clock stamps are deterministic: the same reconfiguration
// produces byte-identical dumps on any machine at any concurrency.
func NewRecorder() *Recorder { return obs.New() }

// NewGraph returns an empty topology.
func NewGraph(name string) *Graph { return topology.New(name) }

// ZooTopology returns one of the embedded evaluation topologies (Abilene is
// the real backbone; the rest are deterministic synthetic graphs with the
// published sizes).
func ZooTopology(name string) (*Graph, error) { return topology.Zoo(name) }

// ZooNames lists the evaluation corpus.
func ZooNames() []string { return topology.ZooNames() }

// NewNetwork builds a BGP network over g with the evaluation's default
// message delays, seeded for reproducibility.
func NewNetwork(g *Graph, seed uint64) *Network {
	return sim.New(g, sim.DefaultOptions(seed))
}

// NewCaseStudy builds the paper's §6/§7 scenario on a corpus topology.
func NewCaseStudy(topo string, seed uint64) (*Scenario, error) {
	return scenario.CaseStudy(topo, scenario.Config{Seed: seed})
}

// NewCaseStudyConfig is NewCaseStudy with full control over scenario
// construction — including ScenarioConfig.RIB to run the scenario on the
// prefix-scale COW table engine.
func NewCaseStudyConfig(topo string, cfg ScenarioConfig) (*Scenario, error) {
	return scenario.CaseStudy(topo, cfg)
}

// NewStorm builds a converged prefix-scale announcement-storm network: a
// small iBGP full mesh whose border router learned cfg.Prefixes routes from
// one external peer, injected as a batch (one message per session) when
// cfg.Batched is set. Use it to exercise 100k-prefix tables; tracing is
// disabled on the storm network by construction.
func NewStorm(cfg StormConfig) (*Storm, error) { return scenario.BuildStorm(cfg) }

// NewCaseStudyMulti is NewCaseStudy with extra destinations: beyond the
// base prefix, extraPrefixes additional prefixes are announced in cycling
// patterns so the scenario partitions into several §3 equivalence classes
// (guaranteed multi-class at extraPrefixes ≥ 3). Planning then decomposes
// by class — see PlanOptions.ClassParallelism.
func NewCaseStudyMulti(topo string, seed uint64, extraPrefixes int) (*Scenario, error) {
	return scenario.CaseStudy(topo, scenario.Config{Seed: seed, ExtraPrefixes: extraPrefixes})
}

// RunningExample builds the Fig. 3 six-router example.
func RunningExample() *Scenario { return scenario.RunningExample() }

// ParseSpec parses a specification in the Fig. 2 surface syntax, resolving
// node names against g. Example: "G reach(NewYork) && wp(Denver, Chicago)".
func ParseSpec(input string, g *Graph) (*Spec, error) {
	return spec.Parse(input, spec.GraphResolver(g))
}

// ReachabilitySpec builds G ∧ reach(n) over all internal routers of g.
func ReachabilitySpec(g *Graph) *Spec { return eval.ReachabilitySpec(g) }

// PlanOptions tune the planning pipeline.
type PlanOptions struct {
	// Spec is the invariant to preserve; nil defaults to full
	// reachability.
	Spec *Spec
	// MaxRounds caps the round-minimization loop (default 16).
	MaxRounds int
	// SolverNodeBudget bounds each feasibility solve by explored
	// branch-and-bound nodes instead of wall-clock time, making the
	// schedule a pure function of the scenario — independent of machine
	// speed, load, and concurrency. When zero and no wall-clock limit
	// below is set either, planning defaults to the evaluation sweeps'
	// deterministic budget.
	SolverNodeBudget int64
	// TimeLimitPerRound bounds each feasibility solve (default 60 s).
	//
	// Deprecated: wall-clock solver budgets make the resulting schedule
	// depend on how fast and how loaded the machine is, so two runs of
	// the same reconfiguration need not reproduce. Set SolverNodeBudget
	// instead; TimeLimitPerRound is still honored when nonzero.
	TimeLimitPerRound time.Duration
	// ObjectiveTimeLimit bounds temp-session minimization (default 2 s).
	//
	// Deprecated: wall-clock, hence non-reproducible — see
	// TimeLimitPerRound. Set SolverNodeBudget instead; ObjectiveTimeLimit
	// is still honored when nonzero.
	ObjectiveTimeLimit time.Duration
	// DisableLoopConstraints drops the explicit Eq. 3 constraints
	// (App. D ablation).
	DisableLoopConstraints bool
	// ClassParallelism caps how many prefix equivalence classes are
	// planned concurrently: planning partitions the scenario's prefixes
	// into §3 classes and runs each class's analyzer → scheduler →
	// compiler pipeline as an independent job on a bounded worker pool.
	// 0 (the default) means one worker per CPU; 1 plans classes
	// sequentially. The output is byte-identical at every parallelism
	// level — workers change wall-clock time, never the plan.
	ClassParallelism int
	// Recorder, when non-nil, traces planning: an analyze span, a
	// schedule span with one solve child per attempted round count, and
	// solver-effort counters (nodes, propagations, LP pivots).
	Recorder *Recorder
	// Monitor, when non-nil, additionally tracks the compiled
	// specification as an online invariant: its steady-state projection is
	// checked against every transient forwarding state when the same
	// monitor is later passed to ExecOptions.
	Monitor *Monitor
}

// normalize translates the facade options into scheduler options,
// applying the documented defaults. It is the single place planning
// defaults are decided.
func (o PlanOptions) normalize() scheduler.Options {
	so := scheduler.DefaultOptions()
	if o.MaxRounds > 0 {
		so.MaxRounds = o.MaxRounds
	}
	so.ExplicitLoopConstraints = !o.DisableLoopConstraints
	switch {
	case o.SolverNodeBudget > 0:
		so.SolverNodeBudget = o.SolverNodeBudget
	case o.TimeLimitPerRound > 0 || o.ObjectiveTimeLimit > 0:
		// Explicit (deprecated) wall-clock budgets: hand them through and
		// clear the default node budget so the scheduler honors them.
		so.SolverNodeBudget = 0
		so.TimeLimitPerRound = o.TimeLimitPerRound
		so.ObjectiveTimeLimit = o.ObjectiveTimeLimit
	}
	// Otherwise DefaultOptions' deterministic node budget stands, so
	// planning reproduces bit-for-bit.
	return so
}

// deprecatedWallClockOnce gates the stderr half of the deprecation warning:
// sweeps plan thousands of scenarios, so the human-facing line prints once
// per process while the obs counter still counts every offending call.
var deprecatedWallClockOnce sync.Once

// warnDeprecatedWallClock records one use of the deprecated wall-clock
// solver budgets (PlanOptions.TimeLimitPerRound / ObjectiveTimeLimit). The
// counter increments on every use so dumps quantify how much of a run was
// non-reproducible; the stderr pointer at SolverNodeBudget prints once.
func warnDeprecatedWallClock(rec *Recorder) {
	rec.Add(obs.CtrDeprecatedWallClock, 1)
	deprecatedWallClockOnce.Do(func() {
		fmt.Fprintln(os.Stderr, "chameleon: PlanOptions.TimeLimitPerRound/ObjectiveTimeLimit are deprecated: "+
			"wall-clock solver budgets make schedules machine-dependent; set SolverNodeBudget instead")
	})
}

// Reconfiguration is a fully planned reconfiguration, ready to execute.
// Analysis, Schedule and Plan describe the class of Scenario.Prefix (the
// first equivalence class); Classes holds every class and Multi the
// aligned multi-destination plan when the scenario spans several prefixes.
type Reconfiguration struct {
	Scenario *Scenario
	Analysis *Analysis
	Spec     *Spec
	Schedule *NodeSchedule
	Plan     *ReconfigurationPlan

	// Classes is the per-equivalence-class planning output, in partition
	// order; single-destination scenarios have exactly one entry.
	Classes []PlannedClass
	// Multi is the aligned plan covering every prefix of the scenario;
	// nil when everything collapses to the single Plan above (execution
	// then takes the single-destination path, unchanged).
	Multi *MultiPlan
}

// PlannedClass is the planning output of one prefix equivalence class:
// the analysis and schedule computed once on the representative, and one
// compiled plan per member prefix reusing that shared dependency graph.
type PlannedClass struct {
	Class    EquivalenceClass
	Analysis *Analysis
	Schedule *NodeSchedule
	// Plans is index-aligned with Class.Members.
	Plans []*ReconfigurationPlan
	// NodeBudget is this class's slice of the global SolverNodeBudget
	// (member-count-proportional); 0 in wall-clock mode.
	NodeBudget int64
}

// Plan runs Chameleon's analyzer, scheduler and compiler on a scenario.
// It is PlanCtx with a background context.
func Plan(s *Scenario, opts PlanOptions) (*Reconfiguration, error) {
	return PlanCtx(context.Background(), s, opts)
}

// PlanCtx plans with a context: cancelling ctx aborts the ILP
// branch-and-bound mid-solve (the search polls the context every few
// hundred nodes) and returns ctx's error. When opts.Recorder is set — or
// ctx already carries a recorder — the whole pipeline is traced under a
// "plan" span with one "class" child per equivalence class.
//
// Planning is decomposed by prefix equivalence class (§3): the scenario's
// prefixes are partitioned against the initial and final networks, each
// class is analyzed, scheduled and compiled independently — fanned out on
// a bounded worker pool (opts.ClassParallelism) with its member-
// proportional slice of the global solver node budget — and the per-class
// plans are stitched back in partition order into one aligned MultiPlan.
// Scheduling cost therefore scales with the largest class, not the whole
// prefix set, and the result is byte-identical at any worker count.
func PlanCtx(ctx context.Context, s *Scenario, opts PlanOptions) (*Reconfiguration, error) {
	ctx = obs.WithRecorder(ctx, opts.Recorder)
	if opts.TimeLimitPerRound > 0 || opts.ObjectiveTimeLimit > 0 {
		warnDeprecatedWallClock(obs.RecorderFrom(ctx))
	}
	ctx, span := obs.StartSpan(ctx, "plan", obs.String("scenario", s.Name))
	defer span.End()
	sp := opts.Spec
	if sp == nil {
		sp = eval.ReachabilitySpec(s.Graph)
	}
	final := s.FinalNetwork()
	classes := analyzer.Classes(s.Net, final, s.AllPrefixes())
	span.Add(obs.CtrPlanClasses, int64(len(classes)))
	span.SetAttr("classes", fmt.Sprintf("%d", len(classes)))
	so := opts.normalize()
	weights := make([]int, len(classes))
	for i, c := range classes {
		weights[i] = len(c.Members)
	}
	budgets := scheduler.SplitNodeBudget(so.SolverNodeBudget, weights)

	var planned []PlannedClass
	var err error
	if len(classes) == 1 {
		// Single class: plan on the calling goroutine with the parent
		// recorder, so spans stream as they open (callers watch NumSpans
		// to cancel mid-solve) instead of appearing all at once on adopt.
		co := so
		co.SolverNodeBudget = budgets[0]
		var pc PlannedClass
		pc, err = planClass(ctx, s, final, classes[0], sp, co)
		planned = []PlannedClass{pc}
	} else {
		parent := obs.RecorderFrom(ctx)
		var recs []*obs.Recorder
		if parent != nil {
			recs = make([]*obs.Recorder, len(classes))
		}
		planned, err = pool.Map(ctx, pool.Workers(opts.ClassParallelism, len(classes)), len(classes),
			func(wctx context.Context, i int) (PlannedClass, error) {
				if recs != nil {
					// Fork, not New: per-class recorders inherit the parent's
					// cost attribution, and adopting them back in index order
					// below keeps traces byte-identical at any worker count.
					recs[i] = parent.Fork()
					wctx = obs.WithRecorder(wctx, recs[i])
				}
				co := so
				co.SolverNodeBudget = budgets[i]
				return planClass(wctx, s, final, classes[i], sp, co)
			})
		for i, rec := range recs {
			if rec != nil {
				parent.Adopt(fmt.Sprintf("class %d", i), rec)
			}
		}
	}
	if err != nil {
		return nil, err
	}

	// The single-destination view stays anchored at s.Prefix, which is
	// always the representative of the first class.
	r := &Reconfiguration{
		Scenario: s, Spec: sp, Classes: planned,
		Analysis: planned[0].Analysis,
		Schedule: planned[0].Schedule,
		Plan:     planned[0].Plans[0],
	}
	var all []*plan.Plan
	for _, pc := range planned {
		all = append(all, pc.Plans...)
	}
	if len(all) > 1 {
		mp, err := plan.Align(all, s.Commands)
		if err != nil {
			return nil, fmt.Errorf("chameleon: align: %w", err)
		}
		r.Multi = mp
	}
	if opts.Monitor != nil {
		opts.Monitor.Track(monitor.FromSpec("spec", sp))
	}
	return r, nil
}

// planClass runs the single-destination pipeline on one equivalence class:
// analyze and schedule the representative once, then compile one plan per
// member by retargeting the shared analysis — class members differ only in
// the prefix value, so the dependency graph is reused, never re-derived.
func planClass(ctx context.Context, s *Scenario, final *sim.Network, cls analyzer.Class,
	sp *spec.Spec, so scheduler.Options) (PlannedClass, error) {
	// Small classes can analyze and schedule in fewer solver nodes than the
	// branch-and-bound's sparse context poll, so check once up front: a
	// cancelled plan must never hand back a completed class.
	if cerr := ctx.Err(); cerr != nil {
		return PlannedClass{}, cerr
	}
	ctx, span := obs.StartSpan(ctx, "class",
		obs.Int("members", int64(len(cls.Members))),
		obs.String("fingerprint", fmt.Sprintf("%016x", cls.Fingerprint)))
	defer span.End()
	out := PlannedClass{Class: cls, NodeBudget: so.SolverNodeBudget}
	a, err := analyzer.AnalyzeCtx(ctx, s.Net, final, cls.Representative)
	if err != nil {
		return out, fmt.Errorf("chameleon: analyze: %w", err)
	}
	sched, err := scheduler.ScheduleCtx(ctx, a, sp, so)
	if err != nil {
		return out, fmt.Errorf("chameleon: schedule: %w", err)
	}
	if err := scheduler.Validate(a, sp, sched); err != nil {
		return out, fmt.Errorf("chameleon: schedule validation: %w", err)
	}
	span.Add(obs.CtrClassSolverNodes, sched.Stats.SolverNodes)
	out.Analysis = a
	out.Schedule = sched
	for _, p := range cls.Members {
		pl, err := plan.Compile(a.ForPrefix(p), sched, s.Commands)
		if err != nil {
			return out, fmt.Errorf("chameleon: compile: %w", err)
		}
		out.Plans = append(out.Plans, pl)
	}
	return out, nil
}

// ExecOptions tune plan execution.
type ExecOptions struct {
	// Seed drives command-latency draws (defaults to the scenario seed).
	Seed uint64
	// CommandLatency overrides the 8–12 s router latency with a fixed
	// value when nonzero.
	CommandLatency time.Duration
	// Recorder, when non-nil, traces execution: an execute span with one
	// child per round (plus commit/cleanup phases), per-phase BGP message
	// and command counters, and the recovery ladder's counters (retries,
	// re-pushes, escalations, lost acks, healed faults).
	Recorder *Recorder
	// Monitor, when non-nil, observes every transient forwarding state of
	// the execution: it is bound to the network's snapshot stream for the
	// duration of the run, told each phase as it starts (so violations are
	// attributed to rounds), and consulted as the executor's convergence
	// gate (observed forwarding quiescence advances rounds; the watchdog
	// remains the fallback). On success the monitor is finished and its
	// Timeline is complete.
	Monitor *Monitor
	// ReleaseOnError, when set, releases the plan's transient state (the
	// temporary sessions and route-map overrides of already-started rounds)
	// if ExecuteCtx fails or is cancelled, instead of leaving the network
	// in whatever intermediate state the error found it in. The release is
	// the runtime executor's Abort: pending commands are cancelled, cleanup
	// commands applied, and the network run to convergence.
	ReleaseOnError bool
}

// normalize translates the facade options into runtime options, applying
// the documented defaults; defaultSeed is the scenario's seed.
func (o ExecOptions) normalize(defaultSeed uint64) runtime.Options {
	seed := o.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	ro := runtime.DefaultOptions(seed)
	if o.CommandLatency > 0 {
		ro.MinCommandLatency = o.CommandLatency
		ro.MaxCommandLatency = o.CommandLatency
	}
	ro.Recorder = o.Recorder
	if o.Monitor != nil {
		ro.PhaseObserver = o.Monitor.SetPhase
		ro.Convergence = o.Monitor.Gate(0)
	}
	return ro
}

// Execute applies the compiled plan to the scenario's live network,
// mutating it. The returned result carries phase timings and the maximum
// table size observed (§7.3). It is ExecuteCtx with a background context.
func (r *Reconfiguration) Execute(opts ExecOptions) (*ExecResult, error) {
	return r.ExecuteCtx(context.Background(), opts)
}

// ExecuteCtx executes with a context: cancelling ctx stops the controller
// between supervision steps mid-round and returns ctx's error. By default
// a failed or cancelled execution leaves the network in whatever transient
// state the already-applied commands put it in; set
// ExecOptions.ReleaseOnError to release that state automatically instead.
// A recorder in opts or ctx traces the execution.
func (r *Reconfiguration) ExecuteCtx(ctx context.Context, opts ExecOptions) (*ExecResult, error) {
	ctx = obs.WithRecorder(ctx, opts.Recorder)
	ex := runtime.NewExecutor(r.Scenario.Net, opts.normalize(r.Scenario.Seed))
	var unbind func()
	if m := opts.Monitor; m != nil {
		unbind = m.Bind(r.Scenario.Net)
	}
	var res *ExecResult
	var err error
	if r.Multi != nil {
		res, err = ex.ExecuteMultiCtx(ctx, r.Multi)
	} else {
		res, err = ex.ExecuteCtx(ctx, r.Plan)
	}
	if unbind != nil {
		// Unbind before any release below: teardown churn is outside the
		// §3 guarantee and must not enter the timeline.
		unbind()
	}
	if err != nil {
		if opts.ReleaseOnError {
			if r.Multi != nil {
				for _, p := range r.Multi.Plans {
					ex.Abort(p)
				}
			} else {
				ex.Abort(r.Plan)
			}
		}
		// Leave the monitor open: the caller may observe the abort or
		// finish it at a time of their choosing.
		return res, err
	}
	if opts.Monitor != nil {
		opts.Monitor.Finish(r.Scenario.Net.Now())
	}
	return res, nil
}

// Supervise runs the scenario's reconfiguration under the closed-loop
// supervisor: plan → execute, and on a harmful event or a persistent fault
// abort, snapshot the intermediate state, replan from it under a bounded
// deterministic solver budget and resume — degrading through a fast-commit
// of the remaining commands down to a rollback when replanning cannot make
// progress. The result's Outcome is always the final or the initial
// configuration; the network is never left pinned mid-reconfiguration.
// With opts.JournalPath set, every recovery boundary is persisted to a
// crash-safe execution journal first (see ResumeSupervised). It is
// SuperviseCtx with a background context.
func Supervise(s *Scenario, opts SuperviseOptions) (*SuperviseResult, error) {
	return supervisor.Run(s, opts)
}

// SuperviseCtx is Supervise with a context: cancellation propagates into
// the replanning solver and the executor's supervision loop.
func SuperviseCtx(ctx context.Context, s *Scenario, opts SuperviseOptions) (*SuperviseResult, error) {
	return supervisor.RunCtx(ctx, s, opts)
}

// ResumeSupervised restarts a supervised reconfiguration from the journal
// at opts.JournalPath after a crash: s must be a freshly built instance of
// the same scenario, onto which the journal's last snapshot is restored
// before supervision continues from the recorded recovery boundary — to
// the same outcome, with byte-identical monitor timelines, as the
// uninterrupted run. A journal that already records an outcome returns the
// completed result without touching the network.
func ResumeSupervised(ctx context.Context, s *Scenario, opts SuperviseOptions) (*SuperviseResult, error) {
	return supervisor.Resume(ctx, s, opts)
}

// Verify evaluates the specification over the forwarding traces recorded
// since res.Start — one per destination prefix — returning nil if every
// transient state of every destination satisfied it.
func (r *Reconfiguration) Verify(res *ExecResult) error {
	for _, prefix := range r.Scenario.AllPrefixes() {
		if r.Multi == nil && prefix != r.Scenario.Prefix {
			// A single-destination execution records only Prefix's trace.
			continue
		}
		tr := r.Scenario.Net.Trace(prefix)
		if tr == nil || len(tr.States) == 0 {
			return fmt.Errorf("chameleon: no forwarding trace recorded for prefix %d", prefix)
		}
		tr.Compact()
		start := res.Start.Seconds()
		var window []int
		for i, ts := range tr.Times {
			if ts >= start-1e-9 {
				window = append(window, i)
			}
		}
		if len(window) == 0 {
			continue
		}
		sub := tr.States[window[0] : window[len(window)-1]+1]
		if !r.Spec.Eval(sub) {
			return fmt.Errorf("chameleon: specification %q violated during execution of prefix %d", r.Spec, prefix)
		}
	}
	return nil
}

// EstimateReconfigurationTime returns T̃ = 12 s · (2 + R) (§7.2).
func (r *Reconfiguration) EstimateReconfigurationTime() time.Duration {
	return runtime.EstimateReconfigurationTime(r.Schedule.R)
}
