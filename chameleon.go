// Package chameleon is a Go implementation of Chameleon (SIGCOMM 2023,
// "Taming the transient while reconfiguring BGP"): a BGP reconfiguration
// framework that preserves forwarding invariants — expressed in an LTL
// specification language over reach/waypoint predicates — throughout every
// transient state of the reconfiguration, using only standard BGP
// mechanisms (route-map weights and temporary iBGP sessions).
//
// The package is a facade over the building blocks:
//
//   - topology / igp / bgp / sim — the network substrate: graphs, OSPF-like
//     shortest paths, the BGP decision process, and an event-based BGP
//     simulator with route reflection and route maps.
//   - spec — the Fig. 2 specification language (parser + evaluator).
//   - analyzer / scheduler / plan / runtime — Chameleon's four stages:
//     happens-before extraction, ILP scheduling, plan compilation, and the
//     runtime controller.
//   - snowcap / sitn — the baselines the paper compares against.
//   - eval / traffic — the full evaluation harness for every figure/table.
//
// A minimal use:
//
//	s, _ := chameleon.NewCaseStudy("Abilene", 7)
//	rec, _ := chameleon.Plan(s, chameleon.PlanOptions{})
//	result, _ := rec.Execute(chameleon.ExecOptions{})
package chameleon

import (
	"fmt"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/bgp"
	"chameleon/internal/eval"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// Re-exported core types; the aliases make the internal packages' types
// usable by downstream code through this package.
type (
	// Graph is the physical network topology.
	Graph = topology.Graph
	// NodeID identifies a router or external network.
	NodeID = topology.NodeID
	// Network is a live simulated BGP network.
	Network = sim.Network
	// Prefix is a destination prefix (equivalence class).
	Prefix = bgp.Prefix
	// Command is an atomic configuration change.
	Command = sim.Command
	// Spec is a parsed specification.
	Spec = spec.Spec
	// Scenario is a ready-made reconfiguration scenario.
	Scenario = scenario.Scenario
	// NodeSchedule is the scheduler's output.
	NodeSchedule = scheduler.NodeSchedule
	// ReconfigurationPlan is the compiled plan.
	ReconfigurationPlan = plan.Plan
	// ExecResult reports an executed reconfiguration.
	ExecResult = runtime.Result
	// Analysis is the analyzer's happens-before description.
	Analysis = analyzer.Analysis
)

// NewGraph returns an empty topology.
func NewGraph(name string) *Graph { return topology.New(name) }

// ZooTopology returns one of the embedded evaluation topologies (Abilene is
// the real backbone; the rest are deterministic synthetic graphs with the
// published sizes).
func ZooTopology(name string) (*Graph, error) { return topology.Zoo(name) }

// ZooNames lists the evaluation corpus.
func ZooNames() []string { return topology.ZooNames() }

// NewNetwork builds a BGP network over g with the evaluation's default
// message delays, seeded for reproducibility.
func NewNetwork(g *Graph, seed uint64) *Network {
	return sim.New(g, sim.DefaultOptions(seed))
}

// NewCaseStudy builds the paper's §6/§7 scenario on a corpus topology.
func NewCaseStudy(topo string, seed uint64) (*Scenario, error) {
	return scenario.CaseStudy(topo, scenario.Config{Seed: seed})
}

// RunningExample builds the Fig. 3 six-router example.
func RunningExample() *Scenario { return scenario.RunningExample() }

// ParseSpec parses a specification in the Fig. 2 surface syntax, resolving
// node names against g. Example: "G reach(NewYork) && wp(Denver, Chicago)".
func ParseSpec(input string, g *Graph) (*Spec, error) {
	return spec.Parse(input, spec.GraphResolver(g))
}

// ReachabilitySpec builds G ∧ reach(n) over all internal routers of g.
func ReachabilitySpec(g *Graph) *Spec { return eval.ReachabilitySpec(g) }

// PlanOptions tune the planning pipeline.
type PlanOptions struct {
	// Spec is the invariant to preserve; nil defaults to full
	// reachability.
	Spec *Spec
	// MaxRounds caps the round-minimization loop (default 16).
	MaxRounds int
	// TimeLimitPerRound bounds each feasibility solve (default 60 s).
	TimeLimitPerRound time.Duration
	// ObjectiveTimeLimit bounds temp-session minimization (default 5 s).
	ObjectiveTimeLimit time.Duration
	// DisableLoopConstraints drops the explicit Eq. 3 constraints
	// (App. D ablation).
	DisableLoopConstraints bool
}

// Reconfiguration is a fully planned reconfiguration, ready to execute.
type Reconfiguration struct {
	Scenario *Scenario
	Analysis *Analysis
	Spec     *Spec
	Schedule *NodeSchedule
	Plan     *ReconfigurationPlan
}

// Plan runs Chameleon's analyzer, scheduler and compiler on a scenario.
func Plan(s *Scenario, opts PlanOptions) (*Reconfiguration, error) {
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		return nil, fmt.Errorf("chameleon: analyze: %w", err)
	}
	sp := opts.Spec
	if sp == nil {
		sp = eval.ReachabilitySpec(s.Graph)
	}
	schedOpts := scheduler.DefaultOptions()
	if opts.MaxRounds > 0 {
		schedOpts.MaxRounds = opts.MaxRounds
	}
	if opts.TimeLimitPerRound > 0 {
		schedOpts.TimeLimitPerRound = opts.TimeLimitPerRound
	}
	if opts.ObjectiveTimeLimit > 0 {
		schedOpts.ObjectiveTimeLimit = opts.ObjectiveTimeLimit
	}
	schedOpts.ExplicitLoopConstraints = !opts.DisableLoopConstraints
	sched, err := scheduler.Schedule(a, sp, schedOpts)
	if err != nil {
		return nil, fmt.Errorf("chameleon: schedule: %w", err)
	}
	if err := scheduler.Validate(a, sp, sched); err != nil {
		return nil, fmt.Errorf("chameleon: schedule validation: %w", err)
	}
	p, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		return nil, fmt.Errorf("chameleon: compile: %w", err)
	}
	return &Reconfiguration{Scenario: s, Analysis: a, Spec: sp, Schedule: sched, Plan: p}, nil
}

// ExecOptions tune plan execution.
type ExecOptions struct {
	// Seed drives command-latency draws (defaults to the scenario seed).
	Seed uint64
	// CommandLatency overrides the 8–12 s router latency with a fixed
	// value when nonzero.
	CommandLatency time.Duration
}

// Execute applies the compiled plan to the scenario's live network,
// mutating it. The returned result carries phase timings and the maximum
// table size observed (§7.3).
func (r *Reconfiguration) Execute(opts ExecOptions) (*ExecResult, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = r.Scenario.Seed
	}
	ro := runtime.DefaultOptions(seed)
	if opts.CommandLatency > 0 {
		ro.MinCommandLatency = opts.CommandLatency
		ro.MaxCommandLatency = opts.CommandLatency
	}
	ex := runtime.NewExecutor(r.Scenario.Net, ro)
	return ex.Execute(r.Plan)
}

// Verify evaluates the specification over the forwarding trace recorded
// since res.Start, returning nil if every transient state satisfied it.
func (r *Reconfiguration) Verify(res *ExecResult) error {
	tr := r.Scenario.Net.Trace(r.Scenario.Prefix)
	if tr == nil || len(tr.States) == 0 {
		return fmt.Errorf("chameleon: no forwarding trace recorded")
	}
	tr.Compact()
	start := res.Start.Seconds()
	var window []int
	for i, ts := range tr.Times {
		if ts >= start-1e-9 {
			window = append(window, i)
		}
	}
	if len(window) == 0 {
		return nil
	}
	sub := tr.States[window[0] : window[len(window)-1]+1]
	if !r.Spec.Eval(sub) {
		return fmt.Errorf("chameleon: specification %q violated during execution", r.Spec)
	}
	return nil
}

// EstimateReconfigurationTime returns T̃ = 12 s · (2 + R) (§7.2).
func (r *Reconfiguration) EstimateReconfigurationTime() time.Duration {
	return runtime.EstimateReconfigurationTime(r.Schedule.R)
}
