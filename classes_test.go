package chameleon_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"chameleon"
	"chameleon/internal/analyzer"
	"chameleon/internal/eval"
	"chameleon/internal/monitor"
	"chameleon/internal/plan"
	"chameleon/internal/scheduler"
)

// renderPlans fingerprints a reconfiguration's complete multi-destination
// output as text. Plans embed sim.Command func values, which
// reflect.DeepEqual never equates, so equality is checked on the full
// rendering (steps, conditions, interleaved originals, slots, order).
func renderPlans(r *chameleon.Reconfiguration) string {
	var b strings.Builder
	b.WriteString(r.Plan.String())
	if r.Multi != nil {
		for _, p := range r.Multi.Plans {
			b.WriteString(p.String())
			fmt.Fprintf(&b, "slots: %v\n", p.OriginalSlots)
		}
		fmt.Fprintf(&b, "order: %v\n", r.Multi.Order)
	}
	return b.String()
}

// multiClassScenario builds the Abilene case study with three extra
// prefixes: one collapses into the base prefix's equivalence class and two
// form classes of their own, so planning decomposes into three classes.
func multiClassScenario(t *testing.T) *chameleon.Scenario {
	t.Helper()
	s, err := chameleon.NewCaseStudyMulti("Abilene", 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClassPartition pins the partition the decomposed planner works from:
// three classes, the base prefix sharing its class with the identically
// announced extra prefix, every prefix covered exactly once.
func TestClassPartition(t *testing.T) {
	s := multiClassScenario(t)
	r, err := chameleon.Plan(s, chameleon.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(r.Classes))
	}
	seen := map[int]bool{}
	total := 0
	for i, pc := range r.Classes {
		if len(pc.Plans) != len(pc.Class.Members) {
			t.Errorf("class %d: %d plans for %d members", i, len(pc.Plans), len(pc.Class.Members))
		}
		for j, p := range pc.Class.Members {
			if seen[int(p)] {
				t.Errorf("prefix %d appears in more than one class", p)
			}
			seen[int(p)] = true
			if pc.Plans[j].Prefix != p {
				t.Errorf("class %d plan %d targets prefix %d, want %d", i, j, pc.Plans[j].Prefix, p)
			}
			total++
		}
	}
	if total != len(s.AllPrefixes()) {
		t.Errorf("classes cover %d prefixes, scenario has %d", total, len(s.AllPrefixes()))
	}
	if r.Classes[0].Class.Representative != s.Prefix {
		t.Errorf("first class representative = %d, want the scenario prefix %d",
			r.Classes[0].Class.Representative, s.Prefix)
	}
	if r.Multi == nil {
		t.Fatal("multi-prefix scenario produced no MultiPlan")
	}
	if len(r.Multi.Plans) != total {
		t.Errorf("MultiPlan has %d plans, want %d", len(r.Multi.Plans), total)
	}
}

// TestClassWorkerInvariance: planning the same scenario at parallelism 1,
// 4 and NumCPU yields byte-identical trace dumps and identical plans, and
// executing each plan under the transient-state monitor yields
// byte-identical provenance-annotated violation timelines — workers change
// wall-clock time, never the output.
func TestClassWorkerInvariance(t *testing.T) {
	type out struct {
		trace, metrics, timeline string
		r                        *chameleon.Reconfiguration
	}
	dump := func(par int) out {
		s := multiClassScenario(t)
		rec := chameleon.NewRecorder()
		r, err := chameleon.PlanCtx(context.Background(), s,
			chameleon.PlanOptions{Recorder: rec, ClassParallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("parallelism %d: trace ill-formed: %v", par, err)
		}
		var tr, m bytes.Buffer
		if err := rec.WriteJSONL(&tr); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		mon := chameleon.NewMonitor(chameleon.MonitorConfig{
			Name: "exec", Invariants: chameleon.DefaultInvariants(s.Graph),
		})
		if _, err := r.ExecuteCtx(context.Background(), chameleon.ExecOptions{Monitor: mon}); err != nil {
			t.Fatalf("parallelism %d: execute: %v", par, err)
		}
		var tl bytes.Buffer
		if err := mon.Timeline().WriteJSONL(&tl); err != nil {
			t.Fatal(err)
		}
		return out{tr.String(), m.String(), tl.String(), r}
	}
	base := dump(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		got := dump(par)
		if got.trace != base.trace {
			t.Errorf("parallelism %d: trace JSONL differs from sequential run", par)
		}
		if got.metrics != base.metrics {
			t.Errorf("parallelism %d: metric dump differs from sequential run:\n%s\nvs\n%s",
				par, got.metrics, base.metrics)
		}
		if got.timeline != base.timeline {
			t.Errorf("parallelism %d: provenance-annotated timeline differs from sequential run:\n%s\nvs\n%s",
				par, got.timeline, base.timeline)
		}
		if g, b := renderPlans(got.r), renderPlans(base.r); g != b {
			t.Errorf("parallelism %d: plans differ from sequential run:\n%s\nvs\n%s", par, g, b)
		}
	}
}

// TestClassDecompositionInvariance: the decomposed planner (one schedule
// per equivalence class, members compiled from the shared analysis) and a
// monolithic planner (every prefix analyzed and scheduled independently
// with the full default budget) must execute identically — same violation
// timelines under the transient-state monitor, same final routing.
func TestClassDecompositionInvariance(t *testing.T) {
	timeline := func(mon *chameleon.Monitor) string {
		var b bytes.Buffer
		if err := mon.Timeline().WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	// Decomposed: the facade pipeline. The global budget is one default
	// budget per prefix, so the member-proportional split hands every class
	// at least the same per-attempt budget the monolithic baseline below
	// uses — with matching budgets the solver makes identical feasibility
	// decisions and the comparison is exact, not just violation-free.
	s1 := multiClassScenario(t)
	budget := int64(len(s1.AllPrefixes())) * scheduler.DeterministicNodeBudget
	mon1 := chameleon.NewMonitor(chameleon.MonitorConfig{
		Name: "decomposed", Invariants: chameleon.DefaultInvariants(s1.Graph),
	})
	r1, err := chameleon.Plan(s1, chameleon.PlanOptions{Monitor: mon1, SolverNodeBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := r1.ExecuteCtx(context.Background(), chameleon.ExecOptions{Monitor: mon1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Verify(res1); err != nil {
		t.Fatal(err)
	}

	// Monolithic: per-prefix analyze → schedule → compile, no class reuse,
	// full default budget for every prefix; aligned and executed through
	// the same facade executor on a freshly built identical scenario.
	s2 := multiClassScenario(t)
	final := s2.FinalNetwork()
	sp := eval.ReachabilitySpec(s2.Graph)
	var all []*plan.Plan
	for _, p := range s2.AllPrefixes() {
		a, err := analyzer.Analyze(s2.Net, final, p)
		if err != nil {
			t.Fatalf("prefix %d: analyze: %v", p, err)
		}
		sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
		if err != nil {
			t.Fatalf("prefix %d: schedule: %v", p, err)
		}
		pl, err := plan.Compile(a, sched, s2.Commands)
		if err != nil {
			t.Fatalf("prefix %d: compile: %v", p, err)
		}
		all = append(all, pl)
	}
	mp, err := plan.Align(all, s2.Commands)
	if err != nil {
		t.Fatal(err)
	}
	mon2 := chameleon.NewMonitor(chameleon.MonitorConfig{
		Name: "decomposed", Invariants: chameleon.DefaultInvariants(s2.Graph),
	})
	mon2.Track(monitor.FromSpec("spec", sp))
	r2 := &chameleon.Reconfiguration{
		Scenario: s2, Spec: sp, Multi: mp,
		Analysis: nil, Schedule: nil, Plan: all[0],
	}
	res2, err := r2.ExecuteCtx(context.Background(), chameleon.ExecOptions{Monitor: mon2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Verify(res2); err != nil {
		t.Fatal(err)
	}

	if tl1, tl2 := timeline(mon1), timeline(mon2); tl1 != tl2 {
		t.Errorf("violation timelines differ:\ndecomposed:\n%s\nmonolithic:\n%s", tl1, tl2)
	}
	if mon1.Timeline().StatesChecked != mon2.Timeline().StatesChecked {
		t.Errorf("monitor checked %d states decomposed vs %d monolithic",
			mon1.Timeline().StatesChecked, mon2.Timeline().StatesChecked)
	}
}
