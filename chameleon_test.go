package chameleon_test

import (
	"testing"
	"time"

	chameleon "chameleon"
	"chameleon/internal/obs"
)

func TestFacadeEndToEnd(t *testing.T) {
	s, err := chameleon.NewCaseStudy("Abilene", 7)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := chameleon.Plan(s, chameleon.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schedule.R < 1 {
		t.Fatalf("R = %d", rec.Schedule.R)
	}
	res, err := rec.Execute(chameleon.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Verify(res); err != nil {
		t.Fatal(err)
	}
	if rec.EstimateReconfigurationTime() != time.Duration(2+rec.Schedule.R)*12*time.Second {
		t.Error("T̃ mismatch")
	}
}

func TestFacadeCustomSpec(t *testing.T) {
	s := chameleon.RunningExample()
	sp, err := chameleon.ParseSpec("G (reach(n1) && reach(n4))", s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := chameleon.Plan(s, chameleon.PlanOptions{Spec: sp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Execute(chameleon.ExecOptions{CommandLatency: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParseSpecErrors(t *testing.T) {
	s := chameleon.RunningExample()
	if _, err := chameleon.ParseSpec("reach(nope)", s.Graph); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestFacadeZooAccess(t *testing.T) {
	if len(chameleon.ZooNames()) < 106 {
		t.Error("corpus too small")
	}
	g, err := chameleon.ZooTopology("Cogentco")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Internal()) != 197 {
		t.Errorf("Cogentco size %d", len(g.Internal()))
	}
	if _, err := chameleon.ZooTopology("Nope"); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := chameleon.NewGraph("custom")
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	g.AddLink(a, b, 1)
	net := chameleon.NewNetwork(g, 1)
	if net.Graph() != g {
		t.Error("network graph mismatch")
	}
}

func TestFacadeDisableLoopConstraints(t *testing.T) {
	s, err := chameleon.NewCaseStudy("Sprint", 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := chameleon.Plan(s, chameleon.PlanOptions{DisableLoopConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Plan.R != rec.Schedule.R {
		t.Error("plan/schedule round mismatch")
	}
}

func TestFacadeDeprecatedWallClockWarning(t *testing.T) {
	rec := chameleon.NewRecorder()
	plan := func(opts chameleon.PlanOptions) {
		t.Helper()
		opts.Recorder = rec
		if _, err := chameleon.Plan(chameleon.RunningExample(), opts); err != nil {
			t.Fatal(err)
		}
	}
	plan(chameleon.PlanOptions{})
	if n := rec.Counter(obs.CtrDeprecatedWallClock); n != 0 {
		t.Fatalf("clean options counted %d deprecated uses", n)
	}
	plan(chameleon.PlanOptions{TimeLimitPerRound: time.Minute})
	plan(chameleon.PlanOptions{ObjectiveTimeLimit: time.Second})
	if n := rec.Counter(obs.CtrDeprecatedWallClock); n != 2 {
		t.Fatalf("deprecated counter = %d, want 2 (one per offending Plan call)", n)
	}
}
