package plan

import (
	"fmt"
	"sort"

	"chameleon/internal/analyzer"
	"chameleon/internal/bgp"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// Compile transforms a node schedule into a reconfiguration plan (§5),
// interleaving the original reconfiguration commands: a command that denies
// the node's old route runs right after the node's r_nh, any other right
// before it.
func Compile(a *analyzer.Analysis, s *scheduler.NodeSchedule, originals []sim.Command) (*Plan, error) {
	p := &Plan{
		Prefix:  a.Prefix,
		R:       s.R,
		Rounds:  make([][]Step, s.R),
		Between: make([][]sim.Command, s.R+1),
	}
	c := &compiler{a: a, s: s, p: p, sessions: make(map[Session]bool)}

	// Deterministic node order.
	nodes := append([]topology.NodeID(nil), a.Switching...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	for _, n := range nodes {
		if err := c.compileNode(n); err != nil {
			return nil, err
		}
	}
	c.compileEquivalentSwitches()
	if err := c.placeOriginals(originals); err != nil {
		return nil, err
	}
	c.compileCleanup(nodes)
	return p, nil
}

type compiler struct {
	a        *analyzer.Analysis
	s        *scheduler.NodeSchedule
	p        *Plan
	sessions map[Session]bool
}

// addStep places a step: round 0 → setup, rounds 1..R → update phase,
// round R+1 → cleanup.
func (c *compiler) addStep(round int, st Step) {
	switch {
	case round <= 0:
		c.p.Setup = append(c.p.Setup, st)
	case round <= c.p.R:
		c.p.Rounds[round-1] = append(c.p.Rounds[round-1], st)
	default:
		c.p.Cleanup = append(c.p.Cleanup, st)
	}
}

// ensureTempSession records (and emits a setup step for) a temporary
// session between n and egress. Sessions that already exist in the initial
// configuration are reused as-is (and never torn down in cleanup).
func (c *compiler) ensureTempSession(n, egress topology.NodeID) {
	if n == egress || c.a.SessionExists(n, egress) {
		return
	}
	key := Session{A: min(n, egress), B: max(n, egress)}
	if c.sessions[key] {
		return
	}
	c.sessions[key] = true
	c.p.TempSessions = append(c.p.TempSessions, key)
	nn, ee := n, egress
	c.p.Setup = append(c.p.Setup, Step{
		Command: sim.Command{
			Node:        nn,
			Description: fmt.Sprintf("establish temporary iBGP session n%d–n%d", int(nn), int(ee)),
			Apply: func(net *sim.Network) {
				if _, up := net.HasSession(nn, ee); !up {
					net.SetSession(nn, ee, bgp.IBGPPeer)
				}
			},
			Verify: func(net *sim.Network) bool {
				_, up := net.HasSession(nn, ee)
				return up
			},
		},
		// The session must deliver the egress's current best route.
		Post: nil,
	})
}

// weightEntry returns a command installing an ingress route-map entry at n
// matching (neighbor=from, egress) with the given weight.
func weightEntry(n, from, egress topology.NodeID, prefix bgp.Prefix, order, weight int, what string) sim.Command {
	return sim.Command{
		Node: n,
		Description: fmt.Sprintf("n%d: prefer %s (weight %d on routes from n%d with egress n%d)",
			int(n), what, weight, int(from), int(egress)),
		Apply: func(net *sim.Network) {
			net.UpdateRouteMap(n, from, sim.In, func(rm *sim.RouteMap) {
				rm.Remove(orderFor(order, prefix))
				rm.Add(sim.Entry{
					Order: orderFor(order, prefix),
					Match: sim.Match{
						Prefix:   sim.PrefixP(prefix),
						Neighbor: sim.NodeP(from),
						Egress:   sim.NodeP(egress),
					},
					Action: sim.Action{SetWeight: sim.IntP(weight)},
				})
			})
		},
		Verify: func(net *sim.Network) bool {
			return net.RouteMapOf(n, from, sim.In).Has(orderFor(order, prefix))
		},
	}
}

// compileNode applies the Table 1 rules for one switching node.
func (c *compiler) compileNode(n topology.NodeID) error {
	t, ok := c.s.Tuples[n]
	if !ok {
		return fmt.Errorf("plan: switching node %d missing from schedule", n)
	}
	eOld := c.a.POld[n].Egress
	eNew := c.a.PNew[n].Egress

	// Setup: pin the old route from m_old so no later command or
	// withdrawal can steal the selection prematurely (§5 setup phase).
	// When r_old = 0 the temporary old-egress session takes over already
	// during setup, so the pin would immediately be overridden — skip it.
	mOld := c.s.MOld[n]
	if mOld == topology.None && c.a.ExtProviderOld[n] {
		mOld = c.a.POld[n].External
	}
	if mOld != topology.None && t.Old >= 1 {
		c.addStep(0, Step{
			Command: weightEntry(n, mOld, eOld, c.a.Prefix, orderPinOld, WeightPinOld,
				fmt.Sprintf("its old route from n%d", int(mOld))),
			Post: []Condition{{Kind: CondSelects, Node: n, Egress: eOld, From: mOld}},
		})
	}

	// Table 1, temp old-egress session: rounds (r_old, r_nh].
	if t.Old < t.NH {
		c.ensureTempSession(n, eOld)
		c.addStep(t.Old, Step{
			Command: weightEntry(n, eOld, eOld, c.a.Prefix, orderTempOld, WeightTempOld,
				fmt.Sprintf("the temp route from old egress n%d", int(eOld))),
			Pre:  []Condition{{Kind: CondKnows, Node: n, Egress: eOld, From: eOld}},
			Post: []Condition{{Kind: CondSelects, Node: n, Egress: eOld, From: eOld}},
		})
	}

	// Table 1, temp new-egress session: rounds (r_nh, r_new].
	if t.NH < t.New {
		c.ensureTempSession(n, eNew)
		c.addStep(t.NH, Step{
			Command: weightEntry(n, eNew, eNew, c.a.Prefix, orderTempNew, WeightTempNew,
				fmt.Sprintf("the temp route from new egress n%d", int(eNew))),
			Pre:  []Condition{{Kind: CondKnows, Node: n, Egress: eNew, From: eNew}},
			Post: []Condition{{Kind: CondSelects, Node: n, Egress: eNew, From: eNew}},
		})
	}

	// Table 1, final preference: round r_new (or cleanup when r_new=R+1),
	// switching to Pnew(n) from m_new. When r_nh = r_new this is also the
	// next-hop change.
	mNew := c.s.MNew[n]
	if mNew == topology.None && c.a.ExtProviderNew[n] {
		mNew = c.a.PNew[n].External
	}
	if mNew == topology.None && t.New <= c.p.R {
		return fmt.Errorf("plan: node %d has no new-route provider for round %d", n, t.New)
	}
	if mNew != topology.None {
		c.addStep(t.New, Step{
			Command: weightEntry(n, mNew, eNew, c.a.Prefix, orderNew, WeightNew,
				fmt.Sprintf("its new route from n%d", int(mNew))),
			Pre:  []Condition{{Kind: CondKnows, Node: n, Egress: eNew, From: mNew}},
			Post: []Condition{{Kind: CondSelects, Node: n, Egress: eNew, From: mNew}},
		})
	}
	return nil
}

// compileEquivalentSwitches pins nodes that only swap between equivalent
// routes (§3: the forwarding state is unaffected, so the swap happens
// outside the update phase). The pin must target a provider that advertises
// the route both now and in the final state — the final provider may not
// announce it yet during setup. If no stable provider exists the node is
// left unpinned: any flap stays within forwarding-equivalent routes.
func (c *compiler) compileEquivalentSwitches() {
	for _, n := range c.a.EquivalentSwitch {
		inNew := make(map[topology.NodeID]bool, len(c.a.DNew[n]))
		for _, m := range c.a.DNew[n] {
			inNew[m] = true
		}
		pin := topology.None
		for _, m := range c.a.DOld[n] {
			if !inNew[m] {
				continue
			}
			if pin == topology.None || m == c.a.PNew[n].Pre() {
				pin = m
			}
		}
		if pin == topology.None {
			continue
		}
		egress := c.a.PNew[n].Egress
		c.addStep(0, Step{
			Command: weightEntry(n, pin, egress, c.a.Prefix, orderPinOld, WeightPinOld,
				fmt.Sprintf("its stable equivalent route from n%d", int(pin))),
			Pre:  []Condition{{Kind: CondKnows, Node: n, Egress: egress, From: pin}},
			Post: []Condition{{Kind: CondSelects, Node: n, Egress: egress, From: pin}},
		})
	}
}

// placeOriginals interleaves the original reconfiguration commands (§5):
// after r_nh for route-denying commands, before r_nh otherwise.
func (c *compiler) placeOriginals(originals []sim.Command) error {
	c.p.OriginalSlots = make(map[int]int, len(originals))
	for idx, cmd := range originals {
		slot := 0
		if t, ok := c.s.Tuples[cmd.Node]; ok {
			if cmd.DeniesOld {
				slot = t.NH
			} else {
				slot = t.NH - 1
			}
		} else if cmd.DeniesOld {
			slot = c.p.R
		}
		if slot < 0 {
			slot = 0
		}
		if slot > c.p.R {
			slot = c.p.R
		}
		c.p.Between[slot] = append(c.p.Between[slot], cmd)
		c.p.OriginalSlots[idx] = slot
	}
	return nil
}

// compileCleanup removes every temporary route-map entry and session,
// restoring the (now final) configuration's natural preferences.
func (c *compiler) compileCleanup(nodes []topology.NodeID) {
	cleanupOrders := []int{
		orderFor(orderPinOld, c.a.Prefix), orderFor(orderTempOld, c.a.Prefix),
		orderFor(orderTempNew, c.a.Prefix), orderFor(orderNew, c.a.Prefix),
	}
	all := append([]topology.NodeID(nil), nodes...)
	all = append(all, c.a.EquivalentSwitch...)
	for _, n := range all {
		n := n
		c.p.Cleanup = append(c.p.Cleanup, Step{
			Command: sim.Command{
				Node:        n,
				Description: fmt.Sprintf("n%d: remove temporary route-map entries", int(n)),
				Apply: func(net *sim.Network) {
					for _, nb := range net.Sessions(n) {
						nb := nb
						if rm := net.RouteMapOf(n, nb, sim.In); rm != nil {
							net.UpdateRouteMap(n, nb, sim.In, func(rm *sim.RouteMap) {
								for _, o := range cleanupOrders {
									rm.Remove(o)
								}
							})
						}
					}
				},
				Verify: func(net *sim.Network) bool {
					for _, nb := range net.Sessions(n) {
						for _, o := range cleanupOrders {
							if net.RouteMapOf(n, nb, sim.In).Has(o) {
								return false
							}
						}
					}
					return true
				},
			},
			// External events may legitimately change the post-cleanup
			// best route (Fig. 11), so only route presence is asserted.
			Post: []Condition{{Kind: CondHasRoute, Node: n, Egress: topology.None, From: topology.None}},
		})
	}
	for _, sess := range c.p.TempSessions {
		sess := sess
		c.p.Cleanup = append(c.p.Cleanup, Step{
			Command: sim.Command{
				Node:        sess.A,
				Description: fmt.Sprintf("remove temporary session n%d–n%d", int(sess.A), int(sess.B)),
				Apply: func(net *sim.Network) {
					net.RemoveSession(sess.A, sess.B)
				},
				Verify: func(net *sim.Network) bool {
					_, up := net.HasSession(sess.A, sess.B)
					return !up
				},
			},
		})
	}
}
