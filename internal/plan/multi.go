package plan

import (
	"errors"
	"fmt"
	"sort"

	"chameleon/internal/sim"
)

// MultiPlan executes several per-destination plans in parallel (§5):
// Chameleon treats each prefix equivalence class separately, runs their
// update phases concurrently, and aligns the shared original reconfiguration
// commands across all of them.
type MultiPlan struct {
	Plans []*Plan
	// Originals are the shared original commands.
	Originals []sim.Command
	// Order is the command application order (indices into Originals),
	// consistent with every plan's placement.
	Order []int
}

// ErrNeedsSplit is returned when no single command ordering is consistent
// with every destination's schedule; the §5 fallback is to split the
// reconfiguration into per-command steps ordered by Snowcap.
var ErrNeedsSplit = errors.New("plan: original commands need different orders per destination; split the reconfiguration")

// Align builds a MultiPlan from per-destination plans compiled against the
// same original command list. It fails with ErrNeedsSplit when two
// destinations require contradictory command orders.
func Align(plans []*Plan, originals []sim.Command) (*MultiPlan, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("plan: no plans to align")
	}
	n := len(originals)
	// Build the precedence relation: i before j if some plan places i in
	// a strictly earlier slot.
	before := make([][]bool, n)
	for i := range before {
		before[i] = make([]bool, n)
	}
	for _, p := range plans {
		if p.OriginalSlots == nil && n > 0 {
			return nil, fmt.Errorf("plan: plan for prefix %d lacks original slots", p.Prefix)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && p.OriginalSlots[i] < p.OriginalSlots[j] {
					before[i][j] = true
				}
			}
		}
	}
	// Conflict check + topological order (stable: lowest index first).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if before[i][j] && before[j][i] {
				return nil, ErrNeedsSplit
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if before[i][j] != before[j][i] {
			return before[i][j]
		}
		return i < j
	})
	return &MultiPlan{Plans: plans, Originals: originals, Order: order}, nil
}

// TempSessions returns the union of all plans' temporary sessions.
func (mp *MultiPlan) TempSessions() []Session {
	seen := make(map[Session]bool)
	var out []Session
	for _, p := range mp.Plans {
		for _, s := range p.TempSessions {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}
