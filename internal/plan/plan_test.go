package plan_test

import (
	"strings"
	"testing"

	"chameleon/internal/sim"

	"chameleon/internal/analyzer"
	"chameleon/internal/plan"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

func compile(t *testing.T, s *scenario.Scenario) (*analyzer.Analysis, *scheduler.NodeSchedule, *plan.Plan) {
	t.Helper()
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range s.Graph.Internal() {
		es = append(es, b.Reach(n))
	}
	sp := spec.NewSpec(b, b.Globally(b.And(es...)))
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		t.Fatal(err)
	}
	return a, sched, p
}

func TestPlanStructure(t *testing.T) {
	s := scenario.RunningExample()
	_, sched, p := compile(t, s)
	if p.R != sched.R {
		t.Errorf("plan R=%d, schedule R=%d", p.R, sched.R)
	}
	if len(p.Rounds) != p.R {
		t.Errorf("rounds = %d, want %d", len(p.Rounds), p.R)
	}
	if len(p.Between) != p.R+1 {
		t.Errorf("between slots = %d, want R+1", len(p.Between))
	}
	if len(p.Setup) == 0 || len(p.Cleanup) == 0 {
		t.Error("setup/cleanup missing")
	}
	if p.NumSteps() == 0 || p.NumCommands() < p.NumSteps() {
		t.Error("step accounting broken")
	}
}

func TestTable1RuleMapping(t *testing.T) {
	// Each schedule tuple class must compile to the Table 1 command
	// pattern: the final preference command always exists; the temp
	// commands iff the corresponding inequality is strict.
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, sched, p := compile(t, s)
	// Count per-node commands across rounds: find each node's commands.
	cmdsPerNode := map[topology.NodeID]int{}
	for _, round := range p.Rounds {
		for _, st := range round {
			cmdsPerNode[st.Command.Node]++
		}
	}
	for _, n := range a.Switching {
		tup := sched.Tuples[n]
		want := 0
		if tup.Old < tup.NH && tup.Old >= 1 {
			want++ // temp-old switch happens in a round (not setup)
		}
		if tup.NH < tup.New {
			want++ // temp-new switch
		}
		if tup.New <= sched.R {
			want++ // final preference within the update phase
		}
		if got := cmdsPerNode[n]; got != want {
			t.Errorf("node %d (tuple %+v): %d round-commands, want %d", n, tup, got, want)
		}
	}
	_ = p
}

func TestOriginalCommandPlacementDeny(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, sched, p := compile(t, s)
	// The deny command targets e1 and must sit right after round
	// r_nh(e1).
	slot := -1
	for k, cmds := range p.Between {
		if len(cmds) > 0 {
			slot = k
		}
	}
	e1NH := sched.Tuples[s.E1].NH
	if slot != e1NH {
		t.Errorf("original deny command at slot %d, want r_nh(e1)=%d", slot, e1NH)
	}
}

func TestOriginalCommandPlacementNonDeny(t *testing.T) {
	s := scenario.RunningExample()
	_, sched, p := compile(t, s)
	// The LP-lowering command does not deny; it must run right before
	// r_nh(n1).
	n1 := s.Graph.MustNode("n1")
	slot := -1
	for k, cmds := range p.Between {
		if len(cmds) > 0 {
			slot = k
		}
	}
	if want := sched.Tuples[n1].NH - 1; slot != want {
		t.Errorf("original command at slot %d, want r_nh(n1)-1=%d", slot, want)
	}
}

func TestTempSessionsNeverPreexisting(t *testing.T) {
	s, err := scenario.CaseStudy("EEnet", scenario.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	a, _, p := compile(t, s)
	for _, sess := range p.TempSessions {
		if a.SessionExists(sess.A, sess.B) {
			t.Errorf("plan would tear down pre-existing session %v", sess)
		}
	}
}

func TestConditionChecks(t *testing.T) {
	s := scenario.RunningExample()
	n1 := s.Graph.MustNode("n1")
	// n1 currently selects ρ1 (egress n1, from ext1).
	selects := plan.Condition{Kind: plan.CondSelects, Node: n1, Egress: n1, From: s.Graph.MustNode("ext1")}
	if !selects.Check(s.Net, s.Prefix) {
		t.Error("CondSelects should hold for the converged state")
	}
	wrong := plan.Condition{Kind: plan.CondSelects, Node: n1, Egress: s.Graph.MustNode("n6"), From: topology.None}
	if wrong.Check(s.Net, s.Prefix) {
		t.Error("CondSelects for the wrong egress should fail")
	}
	knows := plan.Condition{Kind: plan.CondKnows, Node: s.Graph.MustNode("n3"),
		Egress: n1, From: topology.None}
	if !knows.Check(s.Net, s.Prefix) {
		t.Error("n3 must know a route with egress n1")
	}
	has := plan.Condition{Kind: plan.CondHasRoute, Node: n1, Egress: topology.None, From: topology.None}
	if !has.Check(s.Net, s.Prefix) {
		t.Error("CondHasRoute should hold")
	}
}

func TestConditionString(t *testing.T) {
	c := plan.Condition{Kind: plan.CondKnows, Node: 1, Egress: 2, From: 3}
	if got := c.String(); !strings.Contains(got, "knows") {
		t.Errorf("String = %q", got)
	}
	c.Kind = plan.CondSelects
	if got := c.String(); !strings.Contains(got, "selects") {
		t.Errorf("String = %q", got)
	}
	c.Kind = plan.CondHasRoute
	if got := c.String(); !strings.Contains(got, "has a route") {
		t.Errorf("String = %q", got)
	}
}

func TestPlanString(t *testing.T) {
	s := scenario.RunningExample()
	_, _, p := compile(t, s)
	out := p.String()
	for _, want := range []string{"Setup", "Round 1", "Cleanup", "original command"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan rendering missing %q", want)
		}
	}
}

func TestWeightOrdering(t *testing.T) {
	// The phase weights must be strictly increasing so later phases
	// override earlier ones.
	if !(plan.WeightPinOld < plan.WeightTempOld &&
		plan.WeightTempOld < plan.WeightTempNew &&
		plan.WeightTempNew < plan.WeightNew) {
		t.Error("weight ladder violated")
	}
}

func TestCompileRejectsIncompleteSchedule(t *testing.T) {
	s := scenario.RunningExample()
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Empty schedule with switching nodes present: Compile must fail.
	empty := &scheduler.NodeSchedule{
		R:      1,
		Tuples: map[topology.NodeID]scheduler.Tuple{},
		MOld:   map[topology.NodeID]topology.NodeID{},
		MNew:   map[topology.NodeID]topology.NodeID{},
	}
	if _, err := plan.Compile(a, empty, nil); err == nil {
		t.Fatal("Compile accepted a schedule missing switching nodes")
	}
}

func TestMultiPlanTempSessionsDeduplicated(t *testing.T) {
	mp := &plan.MultiPlan{Plans: []*plan.Plan{
		{TempSessions: []plan.Session{{A: 1, B: 2}, {A: 3, B: 4}}},
		{TempSessions: []plan.Session{{A: 1, B: 2}}},
	}}
	if got := len(mp.TempSessions()); got != 2 {
		t.Errorf("TempSessions = %d, want 2 (deduplicated)", got)
	}
}

func TestPlanCountsAndStringWithTemps(t *testing.T) {
	// A scenario that needs temp sessions: the running example's ILP plan
	// uses two.
	s := scenario.RunningExample()
	_, sched, p := compile(t, s)
	if sched.TempOldSessions+sched.TempNewSessions > 0 && len(p.TempSessions) == 0 {
		t.Error("schedule has temp sessions but plan has none")
	}
	out := p.String()
	if len(p.TempSessions) > 0 && !strings.Contains(out, "temporary iBGP session") {
		t.Error("plan rendering missing temp session steps")
	}
	if p.NumCommands() != p.NumSteps()+1 {
		t.Errorf("NumCommands = %d, want steps+1 original", p.NumCommands())
	}
}

func TestAlignMissingSlots(t *testing.T) {
	cmds := make([]sim.Command, 1)
	if _, err := plan.Align([]*plan.Plan{{R: 1}}, cmds); err == nil {
		t.Fatal("Align accepted a plan without OriginalSlots")
	}
}
