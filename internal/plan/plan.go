// Package plan implements Chameleon's compiler (§5): it transforms a node
// schedule into a reconfiguration plan — a setup phase, R update rounds of
// commands with pre- and post-conditions (Table 1), interleaved original
// reconfiguration commands, and a cleanup phase. Commands only modify route
// weights (local to one router) or establish/remove temporary BGP sessions;
// conditions inspect a single router's RIB.
package plan

import (
	"fmt"
	"strings"

	"chameleon/internal/bgp"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// Route-map weight levels. Weight dominates every other BGP attribute, so
// later phases override earlier ones by using strictly larger weights.
const (
	WeightPinOld  = 500  // setup: pin the old route from m_old
	WeightTempOld = 800  // round r_old: prefer the temp old-egress route
	WeightTempNew = 900  // round r_nh: prefer the temp new-egress route
	WeightNew     = 1000 // round r_new: prefer the new route from m_new
)

// Route-map entry orders used by Chameleon's temporary commands; cleanup
// removes exactly these. Orders are namespaced per prefix so concurrent
// multi-destination plans never clobber each other's entries.
const (
	orderPinOld  = 100
	orderTempOld = 110
	orderTempNew = 120
	orderNew     = 130
	orderStride  = 1000
)

func orderFor(base int, prefix bgp.Prefix) int {
	return base + orderStride*(int(prefix)+1)
}

// ConditionKind distinguishes the two §5 condition forms.
type ConditionKind int

const (
	// CondKnows asserts the router has the route available (pre-condition).
	CondKnows ConditionKind = iota
	// CondSelects asserts the router currently selects the route
	// (post-condition).
	CondSelects
	// CondHasRoute asserts the router selects some route for the prefix,
	// regardless of egress — used by cleanup, whose outcome may
	// legitimately differ from the precomputed final state when external
	// events (link failures, better routes) arrived mid-reconfiguration
	// (§8, Fig. 11).
	CondHasRoute
)

// Condition is a locally checkable assertion on one router's RIB.
type Condition struct {
	Kind   ConditionKind
	Node   topology.NodeID
	Egress topology.NodeID
	// From restricts the advertising neighbor (topology.None: any).
	From topology.NodeID
}

// Check evaluates the condition against the live network.
func (c Condition) Check(net *sim.Network, prefix bgp.Prefix) bool {
	match := func(r bgp.Route) bool {
		if r.Egress != c.Egress {
			return false
		}
		if c.From == topology.None {
			return true
		}
		if r.FromEBGP {
			return r.External == c.From
		}
		return r.Pre() == c.From
	}
	switch c.Kind {
	case CondKnows:
		return net.Knows(c.Node, prefix, match)
	case CondSelects:
		best, ok := net.Best(c.Node, prefix)
		return ok && match(best)
	case CondHasRoute:
		_, ok := net.Best(c.Node, prefix)
		return ok
	}
	return false
}

func (c Condition) String() string {
	if c.Kind == CondHasRoute {
		return fmt.Sprintf("n%d has a route", int(c.Node))
	}
	verb := "knows"
	if c.Kind == CondSelects {
		verb = "selects"
	}
	from := "any"
	if c.From != topology.None {
		from = fmt.Sprintf("%d", int(c.From))
	}
	return fmt.Sprintf("n%d %s route(egress=%d, from=%s)", int(c.Node), verb, int(c.Egress), from)
}

// Step is one synchronized unit: check Pre, apply Command, await Post.
type Step struct {
	Pre     []Condition
	Command sim.Command
	Post    []Condition
}

// Session identifies a temporary BGP session.
type Session struct {
	A, B topology.NodeID
}

// Plan is a compiled reconfiguration plan for one destination.
type Plan struct {
	Prefix bgp.Prefix
	R      int

	Setup  []Step
	Rounds [][]Step // Rounds[k-1] holds round k's steps

	// Between[k] holds original reconfiguration commands applied after
	// round k completes (k = 0 means after setup, before round 1).
	Between [][]sim.Command
	// OriginalSlots maps each original command (by its index in the list
	// passed to Compile) to its Between slot, for multi-destination
	// alignment (§5).
	OriginalSlots map[int]int

	Cleanup []Step

	// TempSessions lists the temporary sessions established during setup
	// and removed during cleanup (§7.3's source of state overhead).
	TempSessions []Session
}

// NumSteps returns the total number of synchronized steps.
func (p *Plan) NumSteps() int {
	n := len(p.Setup) + len(p.Cleanup)
	for _, r := range p.Rounds {
		n += len(r)
	}
	return n
}

// NumCommands returns steps plus interleaved original commands.
func (p *Plan) NumCommands() int {
	n := p.NumSteps()
	for _, cs := range p.Between {
		n += len(cs)
	}
	return n
}

// String renders the plan in the style of Fig. 4's right-hand column.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reconfiguration plan (prefix %d, %d rounds, %d temp sessions)\n",
		int(p.Prefix), p.R, len(p.TempSessions))
	writeSteps := func(title string, steps []Step) {
		fmt.Fprintf(&b, "%s:\n", title)
		for _, s := range steps {
			fmt.Fprintf(&b, "  • %s\n", s.Command.Description)
			for _, c := range s.Pre {
				fmt.Fprintf(&b, "      pre:  %s\n", c)
			}
			for _, c := range s.Post {
				fmt.Fprintf(&b, "      post: %s\n", c)
			}
		}
	}
	writeSteps("Setup", p.Setup)
	for k := 1; k <= p.R; k++ {
		if len(p.Between) > k-1 {
			for _, c := range p.Between[k-1] {
				fmt.Fprintf(&b, "  ⚡ original command: %s\n", c.Description)
			}
		}
		writeSteps(fmt.Sprintf("Round %d", k), p.Rounds[k-1])
	}
	if len(p.Between) > p.R {
		for _, c := range p.Between[p.R] {
			fmt.Fprintf(&b, "  ⚡ original command: %s\n", c.Description)
		}
	}
	writeSteps("Cleanup", p.Cleanup)
	return b.String()
}
