package config_test

import (
	"strings"
	"testing"

	"chameleon/internal/analyzer"
	"chameleon/internal/config"
	"chameleon/internal/eval"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scheduler"
)

// runningExampleDSL is the Fig. 3 network in the configuration DSL.
const runningExampleDSL = `
# Fig. 3 running example
network RunningExample

router n1
router n2
router n3
router n4
router n5
router n6
external ext1 asn 65101
external ext6 asn 65106

link n1 n2 weight 1
link n2 n3 weight 1
link n1 n4 weight 1
link n2 n5 weight 1
link n3 n6 weight 1
link n4 n5 weight 1
link n5 n6 weight 1
link ext1 n1 weight 1
link ext6 n6 weight 1

session n2 client n1
session n2 client n3
session n2 client n4
session n2 client n6
session n5 client n1
session n5 client n3
session n5 client n4
session n5 client n6
session n2 peer n5
session n1 ebgp ext1
session n6 ebgp ext6

route-map n1 from ext1 in order 10 set local-pref 200

announce ext1 prefix 0 aspath 2
announce ext6 prefix 0 aspath 2

command local-pref n1 from ext1 order 10 value 50
`

func TestParseAndBuildRunningExample(t *testing.T) {
	c, err := config.Parse(runningExampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "RunningExample" || len(c.Routers) != 6 || len(c.Externals) != 2 {
		t.Fatalf("parsed shape wrong: %+v", c)
	}
	g, net, cmds, err := c.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Converged() {
		t.Fatal("network did not converge")
	}
	// Everyone initially selects ρ1 via n1 (lp 200).
	n1 := g.MustNode("n1")
	for _, n := range g.Internal() {
		best, ok := net.Best(n, 0)
		if !ok || best.Egress != n1 {
			t.Errorf("node %d best = %v, want egress n1", n, best)
		}
	}
	if len(cmds) != 1 || cmds[0].DeniesOld {
		t.Fatalf("commands = %+v", cmds)
	}
	if got := c.Prefixes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("prefixes = %v", got)
	}
}

func TestConfigFullPipeline(t *testing.T) {
	c, err := config.Parse(runningExampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	g, net, cmds, err := c.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	final := net.Clone()
	for _, cmd := range cmds {
		cmd.Apply(final)
	}
	final.Run()
	a, err := analyzer.Analyze(net, final, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp := eval.ReachabilitySpec(g)
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Compile(a, sched, cmds)
	if err != nil {
		t.Fatal(err)
	}
	ex := runtime.NewExecutor(net, runtime.DefaultOptions(1))
	if _, err := ex.Execute(p); err != nil {
		t.Fatal(err)
	}
	n6 := g.MustNode("n6")
	for _, n := range g.Internal() {
		best, ok := net.Best(n, 0)
		if !ok || best.Egress != n6 {
			t.Errorf("node %d ended on %v, want n6", n, best.Egress)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	c, err := config.Parse(runningExampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	rendered := c.Format()
	c2, err := config.Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of Format output failed: %v\n%s", err, rendered)
	}
	if c2.Name != c.Name || len(c2.Routers) != len(c.Routers) ||
		len(c2.Links) != len(c.Links) || len(c2.Sessions) != len(c.Sessions) ||
		len(c2.RouteMaps) != len(c.RouteMaps) || len(c2.Announces) != len(c.Announces) ||
		len(c2.Commands) != len(c.Commands) {
		t.Error("round trip changed the configuration shape")
	}
	// Both must build to networks with identical forwarding.
	_, netA, _, err := c.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	_, netB, _, err := c2.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	if !netA.ForwardingState(0).Equal(netB.ForwardingState(0)) {
		t.Error("round trip changed the built network")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate x",
		"router",
		"external e asn notanumber",
		"link a b nope 3",
		"link a b weight x",
		"session a sideways b",
		"route-map a from b in order x deny",
		"route-map a from b in order 1 explode",
		"announce e prefix x",
		"announce e prefix 1 aspath x",
		"command teleport a b",
		"command deny a b",
		"command local-pref a from b order 1 value x",
	}
	for _, in := range bad {
		if _, err := config.Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		"router a\nrouter a",                  // duplicate
		"router a\nlink a b weight 1",         // unknown link endpoint
		"router a\nsession a peer b",          // unknown session peer
		"router a\nannounce b prefix 0",       // unknown external
		"router a\ncommand deny a from ghost", // unknown command target
		"router a\nroute-map a from ghost in order 1 deny",
	}
	for _, in := range cases {
		c, err := config.Parse(in)
		if err != nil {
			continue // parse already rejects some
		}
		if _, _, _, err := c.Build(1); err == nil {
			t.Errorf("Build(%q) succeeded, want error", in)
		}
	}
}

func TestDelayParsing(t *testing.T) {
	c, err := config.Parse("router a\nrouter b\nlink a b weight 2 delay 5ms")
	if err != nil {
		t.Fatal(err)
	}
	g, _, _, err := c.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	l := g.Links()[0]
	if l.Delay.Milliseconds() != 5 {
		t.Errorf("delay = %v, want 5ms", l.Delay)
	}
	if !strings.Contains(c.Format(), "delay 5ms") {
		t.Error("Format dropped the delay")
	}
}

func TestRemoveSessionCommand(t *testing.T) {
	dsl := strings.Replace(runningExampleDSL,
		"command local-pref n1 from ext1 order 10 value 50",
		"command remove-session n1 ext1", 1)
	c, err := config.Parse(dsl)
	if err != nil {
		t.Fatal(err)
	}
	g, net, cmds, err := c.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || !cmds[0].DeniesOld {
		t.Fatalf("remove-session must be DeniesOld: %+v", cmds)
	}
	cmds[0].Apply(net)
	net.Run()
	n6 := g.MustNode("n6")
	for _, n := range g.Internal() {
		best, ok := net.Best(n, 0)
		if !ok || best.Egress != n6 {
			t.Errorf("node %d best %v after session removal", n, best)
		}
	}
}
