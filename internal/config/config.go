// Package config implements a textual configuration format for simulated
// networks: routers, external peers, weighted links, iBGP/eBGP sessions,
// route maps, route announcements, and the reconfiguration commands to
// perform. The cmd/chameleon and cmd/bgpsim tools accept these files, so a
// scenario can be described, versioned and shared without writing Go.
//
// Syntax (one directive per line, '#' comments):
//
//	network <name>
//	router <name>
//	external <name> asn <number>
//	link <a> <b> weight <w> [delay <duration>]
//	session <a> peer <b>          # iBGP peer
//	session <rr> client <c>       # rr reflects for c
//	session <a> ebgp <ext>
//	route-map <node> from <neighbor> in order <n> deny
//	route-map <node> from <neighbor> in order <n> set local-pref <v>
//	route-map <node> from <neighbor> in order <n> set weight <v>
//	announce <ext> prefix <p> [aspath <n>] [med <n>]
//	command deny <node> from <ext> [prefix <p>]
//	command local-pref <node> from <ext> order <n> value <v>
//	command remove-session <a> <b>
package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// Config is a parsed scenario description.
type Config struct {
	Name      string
	Routers   []string
	Externals []ExternalDecl
	Links     []LinkDecl
	Sessions  []SessionDecl
	RouteMaps []RouteMapDecl
	Announces []AnnounceDecl
	Commands  []CommandDecl
}

// ExternalDecl declares an external network.
type ExternalDecl struct {
	Name string
	ASN  uint32
}

// LinkDecl declares a physical link.
type LinkDecl struct {
	A, B   string
	Weight float64
	Delay  time.Duration // 0: derive from weight
}

// SessionKind in the DSL.
type SessionKind string

// DSL session kinds.
const (
	SessPeer   SessionKind = "peer"
	SessClient SessionKind = "client"
	SessEBGP   SessionKind = "ebgp"
)

// SessionDecl declares a BGP session.
type SessionDecl struct {
	A, B string
	Kind SessionKind
}

// RouteMapDecl declares an ingress route-map entry.
type RouteMapDecl struct {
	Node, From string
	Order      int
	Deny       bool
	LocalPref  *uint32
	Weight     *int
}

// AnnounceDecl declares an external route announcement.
type AnnounceDecl struct {
	External  string
	Prefix    int
	ASPathLen int
	MED       uint32
}

// CommandKind enumerates reconfiguration command forms.
type CommandKind string

// DSL command kinds.
const (
	CmdDeny          CommandKind = "deny"
	CmdLocalPref     CommandKind = "local-pref"
	CmdRemoveSession CommandKind = "remove-session"
)

// CommandDecl declares one reconfiguration command.
type CommandDecl struct {
	Kind      CommandKind
	Node      string
	From      string // neighbor (deny / local-pref) or second endpoint
	Prefix    int    // -1: any
	Order     int
	LocalPref uint32
}

// Parse reads the DSL.
func Parse(input string) (*Config, error) {
	c := &Config{}
	for lineNo, raw := range strings.Split(input, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := c.directive(fields); err != nil {
			return nil, fmt.Errorf("config: line %d: %w", lineNo+1, err)
		}
	}
	if c.Name == "" {
		c.Name = "unnamed"
	}
	return c, nil
}

func (c *Config) directive(f []string) error {
	switch f[0] {
	case "network":
		if len(f) != 2 {
			return fmt.Errorf("usage: network <name>")
		}
		c.Name = f[1]
	case "router":
		if len(f) != 2 {
			return fmt.Errorf("usage: router <name>")
		}
		c.Routers = append(c.Routers, f[1])
	case "external":
		if len(f) != 4 || f[2] != "asn" {
			return fmt.Errorf("usage: external <name> asn <number>")
		}
		asn, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return fmt.Errorf("bad asn %q", f[3])
		}
		c.Externals = append(c.Externals, ExternalDecl{Name: f[1], ASN: uint32(asn)})
	case "link":
		if len(f) < 5 || f[3] != "weight" {
			return fmt.Errorf("usage: link <a> <b> weight <w> [delay <dur>]")
		}
		w, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return fmt.Errorf("bad weight %q", f[4])
		}
		l := LinkDecl{A: f[1], B: f[2], Weight: w}
		if len(f) >= 7 && f[5] == "delay" {
			d, err := time.ParseDuration(f[6])
			if err != nil {
				return fmt.Errorf("bad delay %q", f[6])
			}
			l.Delay = d
		}
		c.Links = append(c.Links, l)
	case "session":
		if len(f) != 4 {
			return fmt.Errorf("usage: session <a> peer|client|ebgp <b>")
		}
		kind := SessionKind(f[2])
		switch kind {
		case SessPeer, SessClient, SessEBGP:
		default:
			return fmt.Errorf("unknown session kind %q", f[2])
		}
		c.Sessions = append(c.Sessions, SessionDecl{A: f[1], B: f[3], Kind: kind})
	case "route-map":
		// route-map <node> from <neighbor> in order <n> (deny | set local-pref <v> | set weight <v>)
		if len(f) < 8 || f[2] != "from" || f[4] != "in" || f[5] != "order" {
			return fmt.Errorf("usage: route-map <node> from <nb> in order <n> deny|set ...")
		}
		order, err := strconv.Atoi(f[6])
		if err != nil {
			return fmt.Errorf("bad order %q", f[6])
		}
		rm := RouteMapDecl{Node: f[1], From: f[3], Order: order}
		switch {
		case f[7] == "deny":
			rm.Deny = true
		case f[7] == "set" && len(f) == 10 && f[8] == "local-pref":
			v, err := strconv.ParseUint(f[9], 10, 32)
			if err != nil {
				return fmt.Errorf("bad local-pref %q", f[9])
			}
			lp := uint32(v)
			rm.LocalPref = &lp
		case f[7] == "set" && len(f) == 10 && f[8] == "weight":
			v, err := strconv.Atoi(f[9])
			if err != nil {
				return fmt.Errorf("bad weight %q", f[9])
			}
			rm.Weight = &v
		default:
			return fmt.Errorf("unknown route-map action %q", strings.Join(f[7:], " "))
		}
		c.RouteMaps = append(c.RouteMaps, rm)
	case "announce":
		if len(f) < 4 || f[2] != "prefix" {
			return fmt.Errorf("usage: announce <ext> prefix <p> [aspath <n>] [med <n>]")
		}
		p, err := strconv.Atoi(f[3])
		if err != nil {
			return fmt.Errorf("bad prefix %q", f[3])
		}
		a := AnnounceDecl{External: f[1], Prefix: p, ASPathLen: 1}
		rest := f[4:]
		for len(rest) >= 2 {
			switch rest[0] {
			case "aspath":
				v, err := strconv.Atoi(rest[1])
				if err != nil {
					return fmt.Errorf("bad aspath %q", rest[1])
				}
				a.ASPathLen = v
			case "med":
				v, err := strconv.ParseUint(rest[1], 10, 32)
				if err != nil {
					return fmt.Errorf("bad med %q", rest[1])
				}
				a.MED = uint32(v)
			default:
				return fmt.Errorf("unknown announce option %q", rest[0])
			}
			rest = rest[2:]
		}
		c.Announces = append(c.Announces, a)
	case "command":
		return c.commandDirective(f)
	default:
		return fmt.Errorf("unknown directive %q", f[0])
	}
	return nil
}

func (c *Config) commandDirective(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("usage: command deny|local-pref|remove-session ...")
	}
	switch CommandKind(f[1]) {
	case CmdDeny:
		// command deny <node> from <ext> [prefix <p>]
		if len(f) < 5 || f[3] != "from" {
			return fmt.Errorf("usage: command deny <node> from <ext> [prefix <p>]")
		}
		d := CommandDecl{Kind: CmdDeny, Node: f[2], From: f[4], Prefix: -1, Order: 5}
		if len(f) >= 7 && f[5] == "prefix" {
			p, err := strconv.Atoi(f[6])
			if err != nil {
				return fmt.Errorf("bad prefix %q", f[6])
			}
			d.Prefix = p
		}
		c.Commands = append(c.Commands, d)
	case CmdLocalPref:
		// command local-pref <node> from <ext> order <n> value <v>
		if len(f) != 9 || f[3] != "from" || f[5] != "order" || f[7] != "value" {
			return fmt.Errorf("usage: command local-pref <node> from <ext> order <n> value <v>")
		}
		order, err := strconv.Atoi(f[6])
		if err != nil {
			return fmt.Errorf("bad order %q", f[6])
		}
		v, err := strconv.ParseUint(f[8], 10, 32)
		if err != nil {
			return fmt.Errorf("bad value %q", f[8])
		}
		c.Commands = append(c.Commands, CommandDecl{
			Kind: CmdLocalPref, Node: f[2], From: f[4], Order: order, LocalPref: uint32(v), Prefix: -1,
		})
	case CmdRemoveSession:
		if len(f) != 4 {
			return fmt.Errorf("usage: command remove-session <a> <b>")
		}
		c.Commands = append(c.Commands, CommandDecl{Kind: CmdRemoveSession, Node: f[2], From: f[3]})
	default:
		return fmt.Errorf("unknown command kind %q", f[1])
	}
	return nil
}

// Build materializes the configuration: a topology, a converged network,
// and the reconfiguration commands. seed drives message jitter.
func (c *Config) Build(seed uint64) (*topology.Graph, *sim.Network, []sim.Command, error) {
	g := topology.New(c.Name)
	ids := make(map[string]topology.NodeID)
	for _, r := range c.Routers {
		if _, dup := ids[r]; dup {
			return nil, nil, nil, fmt.Errorf("config: duplicate node %q", r)
		}
		ids[r] = g.AddRouter(r)
	}
	for _, e := range c.Externals {
		if _, dup := ids[e.Name]; dup {
			return nil, nil, nil, fmt.Errorf("config: duplicate node %q", e.Name)
		}
		ids[e.Name] = g.AddExternal(e.Name, e.ASN)
	}
	lookup := func(name string) (topology.NodeID, error) {
		id, ok := ids[name]
		if !ok {
			return topology.None, fmt.Errorf("config: unknown node %q", name)
		}
		return id, nil
	}
	for _, l := range c.Links {
		a, err := lookup(l.A)
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := lookup(l.B)
		if err != nil {
			return nil, nil, nil, err
		}
		if l.Delay > 0 {
			g.AddLinkDelay(a, b, l.Weight, l.Delay)
		} else {
			g.AddLink(a, b, l.Weight)
		}
	}

	net := sim.New(g, sim.DefaultOptions(seed))
	for _, s := range c.Sessions {
		a, err := lookup(s.A)
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := lookup(s.B)
		if err != nil {
			return nil, nil, nil, err
		}
		switch s.Kind {
		case SessPeer:
			net.SetSession(a, b, bgp.IBGPPeer)
		case SessClient:
			net.SetSession(a, b, bgp.IBGPClient)
		case SessEBGP:
			net.SetSession(a, b, bgp.EBGP)
		}
	}
	for _, rm := range c.RouteMaps {
		node, err := lookup(rm.Node)
		if err != nil {
			return nil, nil, nil, err
		}
		from, err := lookup(rm.From)
		if err != nil {
			return nil, nil, nil, err
		}
		entry := sim.Entry{Order: rm.Order, Match: sim.Match{Neighbor: sim.NodeP(from)}}
		if rm.Deny {
			entry.Action.Deny = true
		}
		if rm.LocalPref != nil {
			entry.Action.SetLocalPref = rm.LocalPref
		}
		if rm.Weight != nil {
			entry.Action.SetWeight = rm.Weight
		}
		net.UpdateRouteMap(node, from, sim.In, func(m *sim.RouteMap) { m.Add(entry) })
	}
	// Announcements are injected as one batch per external peer: a config
	// declaring thousands of routes converges with one message per session
	// instead of one per route.
	byExt := make(map[topology.NodeID][]sim.Announcement)
	var extOrder []topology.NodeID
	for _, a := range c.Announces {
		ext, err := lookup(a.External)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, seen := byExt[ext]; !seen {
			extOrder = append(extOrder, ext)
		}
		byExt[ext] = append(byExt[ext], sim.Announcement{
			Prefix: bgp.Prefix(a.Prefix), ASPathLen: a.ASPathLen, MED: a.MED,
		})
	}
	for _, ext := range extOrder {
		net.InjectExternalRoutes(ext, byExt[ext])
	}
	net.Run()

	var cmds []sim.Command
	for _, d := range c.Commands {
		cmd, err := c.buildCommand(d, lookup)
		if err != nil {
			return nil, nil, nil, err
		}
		cmds = append(cmds, cmd)
	}
	return g, net, cmds, nil
}

func (c *Config) buildCommand(d CommandDecl, lookup func(string) (topology.NodeID, error)) (sim.Command, error) {
	node, err := lookup(d.Node)
	if err != nil {
		return sim.Command{}, err
	}
	from, err := lookup(d.From)
	if err != nil {
		return sim.Command{}, err
	}
	switch d.Kind {
	case CmdDeny:
		prefix := d.Prefix
		order := d.Order
		return sim.Command{
			Node:        node,
			Description: fmt.Sprintf("%s: deny routes from %s", d.Node, d.From),
			DeniesOld:   true,
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(node, from, sim.In, func(m *sim.RouteMap) {
					e := sim.Entry{Order: order, Action: sim.Action{Deny: true}}
					if prefix >= 0 {
						e.Match.Prefix = sim.PrefixP(bgp.Prefix(prefix))
					}
					m.Add(e)
				})
			},
		}, nil
	case CmdLocalPref:
		order, lp := d.Order, d.LocalPref
		return sim.Command{
			Node:        node,
			Description: fmt.Sprintf("%s: set local-pref of routes from %s to %d", d.Node, d.From, lp),
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(node, from, sim.In, func(m *sim.RouteMap) {
					m.Remove(order)
					m.Add(sim.Entry{Order: order, Action: sim.Action{SetLocalPref: sim.U32P(lp)}})
				})
			},
		}, nil
	case CmdRemoveSession:
		return sim.Command{
			Node:        node,
			Description: fmt.Sprintf("remove session %s–%s", d.Node, d.From),
			DeniesOld:   true,
			Apply: func(net *sim.Network) {
				net.RemoveSession(node, from)
			},
		}, nil
	}
	return sim.Command{}, fmt.Errorf("config: unknown command kind %q", d.Kind)
}

// Scenario materializes the configuration as a reconfiguration scenario
// (over the first announced prefix) ready for the planning pipeline.
func (c *Config) Scenario(seed uint64) (*scenario.Scenario, error) {
	g, net, cmds, err := c.Build(seed)
	if err != nil {
		return nil, err
	}
	prefixes := c.Prefixes()
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("config: no announced prefixes")
	}
	return &scenario.Scenario{
		Name: c.Name, Net: net, Graph: g,
		Prefix: prefixes[0],
		E1:     topology.None, E2: topology.None, E3: topology.None,
		Commands: cmds,
		Seed:     seed,
	}, nil
}

// Prefixes returns all announced prefixes, sorted.
func (c *Config) Prefixes() []bgp.Prefix {
	seen := make(map[int]bool)
	for _, a := range c.Announces {
		seen[a.Prefix] = true
	}
	var out []bgp.Prefix
	for p := range seen {
		out = append(out, bgp.Prefix(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Format renders the configuration back into the DSL.
func (c *Config) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s\n\n", c.Name)
	for _, r := range c.Routers {
		fmt.Fprintf(&b, "router %s\n", r)
	}
	for _, e := range c.Externals {
		fmt.Fprintf(&b, "external %s asn %d\n", e.Name, e.ASN)
	}
	b.WriteByte('\n')
	for _, l := range c.Links {
		fmt.Fprintf(&b, "link %s %s weight %g", l.A, l.B, l.Weight)
		if l.Delay > 0 {
			fmt.Fprintf(&b, " delay %s", l.Delay)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	for _, s := range c.Sessions {
		fmt.Fprintf(&b, "session %s %s %s\n", s.A, s.Kind, s.B)
	}
	for _, rm := range c.RouteMaps {
		fmt.Fprintf(&b, "route-map %s from %s in order %d ", rm.Node, rm.From, rm.Order)
		switch {
		case rm.Deny:
			b.WriteString("deny")
		case rm.LocalPref != nil:
			fmt.Fprintf(&b, "set local-pref %d", *rm.LocalPref)
		case rm.Weight != nil:
			fmt.Fprintf(&b, "set weight %d", *rm.Weight)
		}
		b.WriteByte('\n')
	}
	for _, a := range c.Announces {
		fmt.Fprintf(&b, "announce %s prefix %d aspath %d med %d\n",
			a.External, a.Prefix, a.ASPathLen, a.MED)
	}
	for _, d := range c.Commands {
		switch d.Kind {
		case CmdDeny:
			fmt.Fprintf(&b, "command deny %s from %s", d.Node, d.From)
			if d.Prefix >= 0 {
				fmt.Fprintf(&b, " prefix %d", d.Prefix)
			}
			b.WriteByte('\n')
		case CmdLocalPref:
			fmt.Fprintf(&b, "command local-pref %s from %s order %d value %d\n",
				d.Node, d.From, d.Order, d.LocalPref)
		case CmdRemoveSession:
			fmt.Fprintf(&b, "command remove-session %s %s\n", d.Node, d.From)
		}
	}
	return b.String()
}
