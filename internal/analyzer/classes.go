package analyzer

import (
	"fmt"

	"chameleon/internal/bgp"
	"chameleon/internal/sim"
)

// Class is one prefix equivalence class (§3): the prefixes whose initial
// and final routing states are identical up to the prefix value. Chameleon
// analyzes and schedules the representative once and reuses the resulting
// dependency graph for every member.
type Class struct {
	// Representative is the first member in scenario order; the planning
	// pipeline runs on it.
	Representative bgp.Prefix
	// Members lists every prefix of the class, representative included,
	// in scenario order.
	Members []bgp.Prefix
	// Fingerprint is a structural hash of the shared initial and final
	// routing states — stable across runs, used to tag per-class spans and
	// to detect class drift between planning and execution.
	Fingerprint uint64
}

// classKey serializes the initial and final routing states of prefix p up
// to the prefix value: two prefixes with equal keys are §3-equivalent.
func classKey(initial, final *sim.Network, p bgp.Prefix) string {
	key := ""
	for _, net := range []*sim.Network{initial, final} {
		routes, have := net.RoutingState(p)
		for _, n := range net.Graph().Internal() {
			if !have[n] {
				key += "|-"
				continue
			}
			r := routes[n]
			key += fmt.Sprintf("|%d:%d:%v:%d:%d:%d", r.Egress, r.External, r.Path,
				r.LocalPref, r.ASPathLen, r.MED)
		}
		key += "##"
	}
	return key
}

// fnv1a hashes s with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Classes partitions prefixes into §3 equivalence classes against the
// converged initial and final networks. Classes appear in order of their
// representative's first occurrence, and members keep scenario order, so
// the partition is deterministic for a given scenario.
func Classes(initial, final *sim.Network, prefixes []bgp.Prefix) []Class {
	var classes []Class
	idx := make(map[string]int)
	for _, p := range prefixes {
		k := classKey(initial, final, p)
		if i, ok := idx[k]; ok {
			classes[i].Members = append(classes[i].Members, p)
			continue
		}
		idx[k] = len(classes)
		classes = append(classes, Class{
			Representative: p,
			Members:        []bgp.Prefix{p},
			Fingerprint:    fnv1a(k),
		})
	}
	return classes
}

// EquivalenceClasses groups prefixes whose initial and final routing states
// are identical up to the prefix value — the paper's prefix equivalence
// classes (§3): Chameleon schedules one representative per class. It is the
// member view of Classes.
func EquivalenceClasses(initial, final *sim.Network, prefixes []bgp.Prefix) [][]bgp.Prefix {
	classes := Classes(initial, final, prefixes)
	out := make([][]bgp.Prefix, len(classes))
	for i, c := range classes {
		out[i] = c.Members
	}
	return out
}

// ForPrefix returns the analysis retargeted at prefix p, which must be
// §3-equivalent to a.Prefix: class members share initial and final routing
// states up to the prefix value, so the whole dependency graph — selected
// routes, forwarding states, provider sets, switching sets — carries over
// unchanged and only the destination prefix differs. Compiling a plan for
// every member of a class reuses the representative's analysis through
// this method instead of re-deriving and re-scheduling it per prefix.
func (a *Analysis) ForPrefix(p bgp.Prefix) *Analysis {
	if p == a.Prefix {
		return a
	}
	b := *a
	b.Prefix = p
	return &b
}
