package analyzer_test

import (
	"strings"
	"testing"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/bgp"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

func analyzeRunningExample(t *testing.T) (*scenario.Scenario, *analyzer.Analysis) {
	t.Helper()
	s := scenario.RunningExample()
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestAnalyzeRunningExample(t *testing.T) {
	s, a := analyzeRunningExample(t)
	n1, n6 := s.Graph.MustNode("n1"), s.Graph.MustNode("n6")
	// Every internal node switches announcement from ρ1 (egress n1) to ρ6
	// (egress n6).
	if len(a.Switching) != 6 {
		t.Errorf("switching = %v, want all 6", a.Switching)
	}
	for _, n := range s.Graph.Internal() {
		if a.POld[n].Egress != n1 {
			t.Errorf("node %d POld egress %d, want n1", n, a.POld[n].Egress)
		}
		if a.PNew[n].Egress != n6 {
			t.Errorf("node %d PNew egress %d, want n6", n, a.PNew[n].Egress)
		}
	}
	// The egresses learn over eBGP.
	if !a.ExtProviderOld[n1] {
		t.Error("n1's old route must come from its external peer")
	}
	if !a.ExtProviderNew[n6] {
		t.Error("n6's new route must come from its external peer")
	}
}

func TestProviderSetsCaptureRedundancy(t *testing.T) {
	s, a := analyzeRunningExample(t)
	// n4 (a client of both reflectors) must have two old-route providers
	// — the Fig. 5 situation.
	n4 := s.Graph.MustNode("n4")
	if len(a.DOld[n4]) != 2 {
		t.Errorf("DOld(n4) = %v, want both reflectors", a.DOld[n4])
	}
	n2, n5 := s.Graph.MustNode("n2"), s.Graph.MustNode("n5")
	seen := map[topology.NodeID]bool{}
	for _, m := range a.DOld[n4] {
		seen[m] = true
	}
	if !seen[n2] || !seen[n5] {
		t.Errorf("DOld(n4) = %v, want {n2, n5}", a.DOld[n4])
	}
}

func TestChangesNextHopAndNnh(t *testing.T) {
	_, a := analyzeRunningExample(t)
	nnh := a.NodesChangingNextHop()
	if len(nnh) == 0 {
		t.Fatal("no node changes its next hop")
	}
	for _, n := range nnh {
		if !a.ChangesNextHop(n) {
			t.Errorf("inconsistent ChangesNextHop for %d", n)
		}
	}
}

func TestReconfigurationComplexity(t *testing.T) {
	_, a := analyzeRunningExample(t)
	cr := a.ReconfigurationComplexity()
	nnh := len(a.NodesChangingNextHop())
	// Cr counts pairs: at least each changing node reaches itself... it
	// reaches nodes along its forwarding paths; bounds: nnh ≤ Cr ≤ nnh².
	if cr < nnh || cr > nnh*nnh {
		t.Errorf("Cr = %d outside [%d, %d]", cr, nnh, nnh*nnh)
	}
}

func TestCrIsZeroForNoop(t *testing.T) {
	s := scenario.RunningExample()
	a, err := analyzer.Analyze(s.Net, s.Net.Clone(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if cr := a.ReconfigurationComplexity(); cr != 0 {
		t.Errorf("no-op Cr = %d, want 0", cr)
	}
	if len(a.Switching) != 0 {
		t.Errorf("no-op switching = %v", a.Switching)
	}
}

func TestSimpleCyclesInUnionGraph(t *testing.T) {
	_, a := analyzeRunningExample(t)
	cycles := a.SimpleCycles(0)
	// The old state forwards left, the new right: their union on this
	// topology contains at least one potential 2-cycle.
	if len(cycles) == 0 {
		t.Error("expected at least one simple cycle in G_nh")
	}
	for _, c := range cycles {
		if len(c) < 2 {
			t.Errorf("degenerate cycle %v", c)
		}
	}
	if limited := a.SimpleCycles(1); len(limited) > 1 {
		t.Errorf("limit ignored: %d cycles", len(limited))
	}
}

func TestSessionExists(t *testing.T) {
	s, a := analyzeRunningExample(t)
	n1, n2, n3 := s.Graph.MustNode("n1"), s.Graph.MustNode("n2"), s.Graph.MustNode("n3")
	if !a.SessionExists(n1, n2) || !a.SessionExists(n2, n1) {
		t.Error("client-reflector session not recorded")
	}
	if a.SessionExists(n1, n3) {
		t.Error("phantom session n1-n3")
	}
}

func TestAnalyzeRejectsUnconverged(t *testing.T) {
	s := scenario.RunningExample()
	s.Net.ScheduleAfter(time.Hour, func(*sim.Network) {})
	if _, err := analyzer.Analyze(s.Net, s.Net, s.Prefix); err == nil {
		t.Fatal("unconverged network accepted")
	}
}

func TestAnalyzeRejectsMissingRoutes(t *testing.T) {
	s := scenario.RunningExample()
	// Final state with NO routes at all: withdraw both.
	final := s.Net.Clone()
	final.WithdrawExternalRoute(s.Graph.MustNode("ext1"), s.Prefix)
	final.WithdrawExternalRoute(s.Graph.MustNode("ext6"), s.Prefix)
	final.Run()
	_, err := analyzer.Analyze(s.Net, final, s.Prefix)
	if err == nil || !strings.Contains(err.Error(), "lacks a route") {
		t.Fatalf("err = %v, want missing-route error", err)
	}
}

func TestCheckConsistentDetectsViolation(t *testing.T) {
	s := scenario.RunningExample()
	if err := analyzer.CheckConsistent(s.Net, s.Prefix); err != nil {
		t.Fatalf("converged state reported inconsistent: %v", err)
	}
}

func TestEquivalenceClasses(t *testing.T) {
	// Two prefixes with identical announcements collapse into one class;
	// a third with a different egress preference stays separate.
	s := scenario.RunningExample()
	ext1, ext6 := s.Graph.MustNode("ext1"), s.Graph.MustNode("ext6")
	net := s.Net
	net.InjectExternalRoute(ext1, sim.Announcement{Prefix: 1, ASPathLen: 2})
	net.InjectExternalRoute(ext6, sim.Announcement{Prefix: 1, ASPathLen: 2})
	// Prefix 2 only exists at ext6.
	net.InjectExternalRoute(ext6, sim.Announcement{Prefix: 2, ASPathLen: 2})
	net.Run()
	// LP 200 applies only to prefix... the n1 ingress map matches any
	// prefix, so prefixes 0 and 1 behave identically; 2 differs.
	final := net.Clone()
	final.Run()
	classes := analyzer.EquivalenceClasses(net, final, []bgp.Prefix{0, 1, 2})
	if len(classes) != 2 {
		t.Fatalf("classes = %v, want 2", classes)
	}
	if len(classes[0]) != 2 || classes[0][0] != 0 || classes[0][1] != 1 {
		t.Errorf("first class = %v, want [0 1]", classes[0])
	}
}
