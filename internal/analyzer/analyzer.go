// Package analyzer implements Chameleon's first stage (§3): it extracts,
// from the initial and final converged networks, the per-node selected
// routes (Pold, Pnew), forwarding states (nhold, nhnew), and the provider
// sets Dold(n), Dnew(n) — the neighbors advertising routes identical to the
// node's initial/final route — which induce the happens-before relations
// the scheduler turns into ILP constraints.
package analyzer

import (
	"context"
	"fmt"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/obs"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// Analysis is the full §3 description of one reconfiguration for one
// destination (prefix equivalence class).
type Analysis struct {
	Graph  *topology.Graph
	Prefix bgp.Prefix

	// POld and PNew are the selected routes in the initial and final
	// states; HaveOld/HaveNew flag presence. Indexed by node ID.
	POld, PNew       []bgp.Route
	HaveOld, HaveNew []bool

	// NHOld and NHNew are the initial and final forwarding states.
	NHOld, NHNew fwd.State

	// DOld[n] lists the internal neighbors that advertise a route
	// identical (same announcement and propagated attributes) to POld[n];
	// DNew likewise for PNew. Egress routers receiving the route over
	// eBGP have ExtProviderOld/New set instead.
	DOld, DNew                     [][]topology.NodeID
	ExtProviderOld, ExtProviderNew []bool

	// Switching lists the nodes whose announcement changes between the
	// two states (the update-phase participants); EquivalentSwitch lists
	// nodes whose selected route changes only among equivalent routes
	// (handled in setup/cleanup).
	Switching        []topology.NodeID
	EquivalentSwitch []topology.NodeID

	// sessions records the initial configuration's BGP sessions, so the
	// compiler never tears down a pre-existing session when a "temporary"
	// session coincides with one.
	sessions map[[2]topology.NodeID]bool
}

// SessionExists reports whether the initial configuration already has a
// BGP session between a and b.
func (a *Analysis) SessionExists(x, y topology.NodeID) bool {
	if x > y {
		x, y = y, x
	}
	return a.sessions[[2]topology.NodeID{x, y}]
}

// Analyze builds the Analysis for prefix from a converged initial and final
// network. Both networks must be converged and route-consistent, and every
// internal node must hold a route in both states (the paper assumes initial
// and final configurations are correct).
func Analyze(initial, final *sim.Network, prefix bgp.Prefix) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), initial, final, prefix)
}

// AnalyzeCtx is Analyze recording an "analyze" span on the context's
// *obs.Recorder (if any) with the switching-set size as attributes. The
// analysis itself is pure and fast; the context carries no cancellation
// points here.
func AnalyzeCtx(ctx context.Context, initial, final *sim.Network, prefix bgp.Prefix) (*Analysis, error) {
	_, span := obs.StartSpan(ctx, "analyze")
	defer span.End()
	a, err := analyze(initial, final, prefix)
	if err == nil {
		span.SetAttr("switching", fmt.Sprintf("%d", len(a.Switching)))
		span.SetAttr("equivalent", fmt.Sprintf("%d", len(a.EquivalentSwitch)))
	}
	return a, err
}

func analyze(initial, final *sim.Network, prefix bgp.Prefix) (*Analysis, error) {
	if !initial.Converged() || !final.Converged() {
		return nil, fmt.Errorf("analyzer: networks must be converged")
	}
	g := initial.Graph()
	a := &Analysis{Graph: g, Prefix: prefix}
	a.POld, a.HaveOld = initial.RoutingState(prefix)
	a.PNew, a.HaveNew = final.RoutingState(prefix)
	a.NHOld = initial.ForwardingState(prefix)
	a.NHNew = final.ForwardingState(prefix)

	if err := CheckConsistent(initial, prefix); err != nil {
		return nil, fmt.Errorf("analyzer: initial state: %w", err)
	}
	if err := CheckConsistent(final, prefix); err != nil {
		return nil, fmt.Errorf("analyzer: final state: %w", err)
	}

	a.sessions = make(map[[2]topology.NodeID]bool)
	for _, node := range g.Internal() {
		for _, nb := range initial.Sessions(node) {
			x, y := node, nb
			if x > y {
				x, y = y, x
			}
			a.sessions[[2]topology.NodeID{x, y}] = true
		}
	}

	n := g.NumNodes()
	a.DOld = make([][]topology.NodeID, n)
	a.DNew = make([][]topology.NodeID, n)
	a.ExtProviderOld = make([]bool, n)
	a.ExtProviderNew = make([]bool, n)

	for _, node := range g.Internal() {
		if !a.HaveOld[node] || !a.HaveNew[node] {
			return nil, fmt.Errorf("analyzer: node %s lacks a route in the %s state",
				g.Node(node).Name, map[bool]string{true: "final", false: "initial"}[!a.HaveNew[node]])
		}
		var err error
		a.DOld[node], a.ExtProviderOld[node], err = providers(initial, node, a.POld[node])
		if err != nil {
			return nil, fmt.Errorf("analyzer: old providers of %s: %w", g.Node(node).Name, err)
		}
		a.DNew[node], a.ExtProviderNew[node], err = providers(final, node, a.PNew[node])
		if err != nil {
			return nil, fmt.Errorf("analyzer: new providers of %s: %w", g.Node(node).Name, err)
		}
		if sameAnnouncement(a.POld[node], a.PNew[node]) {
			if !a.POld[node].PathEqual(a.PNew[node]) {
				a.EquivalentSwitch = append(a.EquivalentSwitch, node)
			}
		} else {
			a.Switching = append(a.Switching, node)
		}
	}
	return a, nil
}

// providers returns the neighbors of node that advertise a route identical
// to sel (same announcement, same propagated attributes): the paper's D(n).
// If node learns sel over eBGP the external flag is returned instead.
func providers(net *sim.Network, node topology.NodeID, sel bgp.Route) ([]topology.NodeID, bool, error) {
	if sel.FromEBGP && sel.Egress == node {
		return nil, true, nil
	}
	g := net.Graph()
	var out []topology.NodeID
	for _, cand := range net.Candidates(node, sel.Prefix) {
		if cand.FromEBGP {
			continue
		}
		if !cand.SameAnnouncement(sel) {
			continue
		}
		if cand.LocalPref != sel.LocalPref || cand.ASPathLen != sel.ASPathLen || cand.MED != sel.MED {
			continue
		}
		pre := cand.Pre()
		if pre == topology.None || g.Node(pre).External {
			continue
		}
		out = append(out, pre)
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("no internal provider for %v", sel)
	}
	return out, false, nil
}

func sameAnnouncement(a, b bgp.Route) bool {
	return a.SameAnnouncement(b) && a.LocalPref == b.LocalPref &&
		a.ASPathLen == b.ASPathLen && a.MED == b.MED
}

// ChangesNextHop reports whether node's forwarding next hop differs between
// the two states.
func (a *Analysis) ChangesNextHop(node topology.NodeID) bool {
	return a.NHOld[node] != a.NHNew[node]
}

// NodesChangingNextHop returns N_nh = {n | nhold(n) ≠ nhnew(n)}.
func (a *Analysis) NodesChangingNextHop() []topology.NodeID {
	var out []topology.NodeID
	for _, n := range a.Graph.Internal() {
		if a.ChangesNextHop(n) {
			out = append(out, n)
		}
	}
	return out
}

// ReconfigurationComplexity computes Cr (§7.1): for every node that changes
// its next hop, the number of next-hop-changing nodes reachable in the
// union graph G_nh of the old and new forwarding states.
func (a *Analysis) ReconfigurationComplexity() int {
	changing := a.NodesChangingNextHop()
	inNnh := make(map[topology.NodeID]bool, len(changing))
	for _, n := range changing {
		inNnh[n] = true
	}
	total := 0
	for _, src := range changing {
		// DFS over the union graph.
		seen := make(map[topology.NodeID]bool)
		stack := []topology.NodeID{src}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			for _, nh := range []topology.NodeID{a.NHOld[n], a.NHNew[n]} {
				if nh >= 0 && !seen[nh] {
					stack = append(stack, nh)
				}
			}
		}
		for n := range seen {
			if inNnh[n] {
				total++
			}
		}
	}
	return total
}

// UnionForwardingGraph returns the adjacency (old and new next hop per
// node) of G_nh used for loop enumeration (§4.4) and Cr.
func (a *Analysis) UnionForwardingGraph() map[topology.NodeID][]topology.NodeID {
	out := make(map[topology.NodeID][]topology.NodeID)
	for _, n := range a.Graph.Internal() {
		var succ []topology.NodeID
		if a.NHOld[n] >= 0 {
			succ = append(succ, a.NHOld[n])
		}
		if a.NHNew[n] >= 0 && a.NHNew[n] != a.NHOld[n] {
			succ = append(succ, a.NHNew[n])
		}
		out[n] = succ
	}
	return out
}

// SimpleCycles enumerates all simple cycles of the union forwarding graph
// (each node has out-degree ≤ 2, so the cycle count stays small in
// practice). Cycles are returned as node sequences without the repeated
// final node. Enumeration stops after limit cycles (0 = no limit).
func (a *Analysis) SimpleCycles(limit int) [][]topology.NodeID {
	adj := a.UnionForwardingGraph()
	var cycles [][]topology.NodeID
	// DFS from every node; only record cycles whose minimum element is the
	// start node to avoid duplicates.
	var path []topology.NodeID
	onPath := make(map[topology.NodeID]int)
	var dfs func(start, cur topology.NodeID) bool
	dfs = func(start, cur topology.NodeID) bool {
		if idx, ok := onPath[cur]; ok {
			if cur == start {
				cycle := append([]topology.NodeID(nil), path[idx:]...)
				cycles = append(cycles, cycle)
				if limit > 0 && len(cycles) >= limit {
					return false
				}
			}
			return true
		}
		onPath[cur] = len(path)
		path = append(path, cur)
		for _, nxt := range adj[cur] {
			if nxt < start {
				continue // canonical: cycles are rooted at their minimum node
			}
			if !dfs(start, nxt) {
				return false
			}
		}
		path = path[:len(path)-1]
		delete(onPath, cur)
		return true
	}
	for _, n := range a.Graph.Internal() {
		path = path[:0]
		for k := range onPath {
			delete(onPath, k)
		}
		if !dfs(n, n) {
			break
		}
	}
	return cycles
}

// CheckConsistent verifies §3 routing-state consistency of a converged
// network for prefix: every selected route's predecessor selects exactly
// the route's prefix-path.
func CheckConsistent(net *sim.Network, prefix bgp.Prefix) error {
	routes, have := net.RoutingState(prefix)
	g := net.Graph()
	for _, n := range g.Internal() {
		if !have[n] {
			continue
		}
		r := routes[n]
		pre := r.Pre()
		if pre == topology.None {
			continue
		}
		if !have[pre] {
			return fmt.Errorf("node %s selects %v but %s has no route",
				g.Node(n).Name, r, g.Node(pre).Name)
		}
		pr := routes[pre]
		if !pr.SameAnnouncement(r) || len(pr.Path) != len(r.Path)-1 {
			return fmt.Errorf("node %s selects %v inconsistent with %s's %v",
				g.Node(n).Name, r, g.Node(pre).Name, pr)
		}
		for i := range pr.Path {
			if pr.Path[i] != r.Path[i] {
				return fmt.Errorf("node %s path mismatch with %s", g.Node(n).Name, g.Node(pre).Name)
			}
		}
	}
	return nil
}
