package bgp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/igp"
	"chameleon/internal/topology"
)

func testSPF(t *testing.T) (*igp.SPF, *topology.Graph) {
	t.Helper()
	g := topology.New("cmp")
	a, b, c := g.AddRouter("a"), g.AddRouter("b"), g.AddRouter("c")
	g.AddLink(a, b, 1)
	g.AddLink(b, c, 1)
	return igp.Compute(g), g
}

func route(egress topology.NodeID, path ...topology.NodeID) Route {
	return Route{
		Prefix: 0, Egress: egress, External: 100,
		Path:      path,
		LocalPref: DefaultLocalPref, OriginatorID: topology.None,
	}
}

func TestRouteAccessors(t *testing.T) {
	r := route(0, 0, 1, 2)
	if r.At() != 2 {
		t.Errorf("At = %d, want 2", r.At())
	}
	if r.Pre() != 1 {
		t.Errorf("Pre = %d, want 1", r.Pre())
	}
	e := route(0, 0)
	if e.Pre() != topology.None {
		t.Errorf("egress route Pre = %d, want None", e.Pre())
	}
	var empty Route
	if empty.At() != topology.None {
		t.Errorf("empty route At = %d, want None", empty.At())
	}
}

func TestExtendResetsLocalAttributes(t *testing.T) {
	r := route(0, 0)
	r.Weight = 500
	r.FromEBGP = true
	out := r.Extend(1)
	if out.Weight != DefaultWeight {
		t.Errorf("Extend kept weight %d", out.Weight)
	}
	if out.FromEBGP {
		t.Error("Extend kept FromEBGP")
	}
	if out.At() != 1 || out.Pre() != 0 {
		t.Errorf("Extend path wrong: %v", out.Path)
	}
	// The original must be unchanged (no aliasing).
	if len(r.Path) != 1 {
		t.Errorf("Extend mutated the source path: %v", r.Path)
	}
}

func TestSameAnnouncement(t *testing.T) {
	a := route(0, 0, 1)
	b := route(0, 0, 2)
	if !a.SameAnnouncement(b) {
		t.Error("same egress+external must be SameAnnouncement")
	}
	c := route(1, 1, 2)
	if a.SameAnnouncement(c) {
		t.Error("different egress must not be SameAnnouncement")
	}
	if a.PathEqual(b) {
		t.Error("different paths must not be PathEqual")
	}
	if !a.PathEqual(route(0, 0, 1)) {
		t.Error("identical routes must be PathEqual")
	}
}

func TestDecisionProcessOrder(t *testing.T) {
	spf, _ := testSPF(t)
	cmp := Comparator{SPF: spf, Node: 2}

	base := func() Route { return route(0, 0, 1, 2) }

	cases := []struct {
		name   string
		better func() Route
		worse  func() Route
	}{
		{"weight beats localpref", func() Route {
			r := base()
			r.Weight = 10
			return r
		}, func() Route {
			r := base()
			r.LocalPref = 999
			return r
		}},
		{"localpref beats aspath", func() Route {
			r := base()
			r.LocalPref = 200
			r.ASPathLen = 9
			return r
		}, func() Route {
			r := base()
			r.ASPathLen = 1
			return r
		}},
		{"aspath beats med", func() Route {
			r := base()
			r.ASPathLen = 1
			r.MED = 100
			return r
		}, func() Route {
			r := base()
			r.ASPathLen = 2
			return r
		}},
		{"med beats ebgp", func() Route {
			r := base()
			r.MED = 0
			return r
		}, func() Route {
			r := base()
			r.MED = 5
			r.FromEBGP = true
			return r
		}},
		{"ebgp beats igp cost", func() Route {
			r := route(0, 2) // egress is self: IGP cost 0... but eBGP wins first
			r.FromEBGP = true
			r.Egress = 0
			r.Path = []topology.NodeID{0, 1, 2}
			return r
		}, func() Route {
			r := route(2, 2)
			return r
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !cmp.Better(tc.better(), tc.worse()) {
				t.Errorf("expected %v better than %v", tc.better(), tc.worse())
			}
			if cmp.Better(tc.worse(), tc.better()) {
				t.Errorf("comparator not antisymmetric")
			}
		})
	}
}

func TestIGPCostTieBreak(t *testing.T) {
	spf, _ := testSPF(t)
	cmp := Comparator{SPF: spf, Node: 1}
	near := route(0, 0, 1) // egress 0, distance 1 from node 1
	far := route(2, 2, 1)  // egress 2, distance 1 from node 1 -> equal, egress ID wins
	if !cmp.Better(near, far) {
		t.Error("equal IGP cost must fall through to lowest egress ID")
	}
	cmp0 := Comparator{SPF: spf, Node: 0}
	close0 := route(0, 0)
	far0 := route(2, 2, 1, 0)
	if !cmp0.Better(close0, far0) {
		t.Error("lower IGP cost must win")
	}
}

func TestBestIsTotalOrderOnCandidates(t *testing.T) {
	spf, _ := testSPF(t)
	cmp := Comparator{SPF: spf, Node: 1}
	rs := []Route{route(2, 2, 1), route(0, 0, 1)}
	i := cmp.Best(rs)
	if i != 1 {
		t.Errorf("Best = %d, want 1 (lowest egress id at equal cost)", i)
	}
	if cmp.Best(nil) != -1 {
		t.Error("Best(nil) must be -1")
	}
}

func TestAdjIn(t *testing.T) {
	a := NewAdjIn()
	r1 := route(0, 0, 1)
	r2 := route(2, 2, 1)
	a.Set(0, r1)
	a.Set(2, r2)
	if a.Size() != 2 {
		t.Fatalf("Size = %d, want 2", a.Size())
	}
	if got, ok := a.Get(0, 0); !ok || !got.PathEqual(r1) {
		t.Error("Get(0) mismatch")
	}
	nrs := a.NeighborCandidates(0)
	if len(nrs) != 2 || nrs[0].Neighbor != 0 || nrs[1].Neighbor != 2 {
		t.Fatalf("NeighborCandidates = %v", nrs)
	}
	if !a.Withdraw(0, 0) {
		t.Error("Withdraw should report true")
	}
	if a.Withdraw(0, 0) {
		t.Error("double Withdraw should report false")
	}
	if a.Size() != 1 {
		t.Errorf("Size after withdraw = %d", a.Size())
	}
	var dropped []Prefix
	a.DropNeighborRange(2, func(p Prefix) bool {
		dropped = append(dropped, p)
		return true
	})
	if len(dropped) != 1 || dropped[0] != 0 {
		t.Errorf("DropNeighborRange = %v", dropped)
	}
	if a.Size() != 0 {
		t.Errorf("Size after drop = %d", a.Size())
	}
}

func TestLocRIB(t *testing.T) {
	l := NewLocRIB()
	r := route(0, 0, 1)
	l.Set(r)
	if got, ok := l.Get(0); !ok || !got.PathEqual(r) {
		t.Error("Get mismatch")
	}
	if l.Size() != 1 {
		t.Errorf("Size = %d", l.Size())
	}
	l.Clear(0)
	if _, ok := l.Get(0); ok {
		t.Error("Clear did not remove")
	}
}

func TestSessionKindString(t *testing.T) {
	kinds := map[SessionKind]string{
		EBGP: "eBGP", IBGPPeer: "iBGP-peer", IBGPClient: "iBGP-client", IBGPUp: "iBGP-up",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
}

// TestComparatorStrictWeakOrder property-checks that Better is a strict
// weak order on random routes: irreflexive, asymmetric, and transitive.
func TestComparatorStrictWeakOrder(t *testing.T) {
	spf, _ := testSPF(t)
	cmp := Comparator{SPF: spf, Node: 1}
	gen := func(rng *rand.Rand) Route {
		r := Route{
			Prefix:       0,
			Egress:       topology.NodeID(rng.IntN(3)),
			External:     topology.NodeID(100 + rng.IntN(2)),
			Weight:       rng.IntN(3) * 100,
			LocalPref:    uint32(100 + rng.IntN(2)*100),
			ASPathLen:    1 + rng.IntN(2),
			MED:          uint32(rng.IntN(2) * 10),
			FromEBGP:     rng.IntN(2) == 0,
			OriginatorID: topology.None,
		}
		r.Path = []topology.NodeID{r.Egress}
		hops := rng.IntN(2)
		for h := 0; h < hops; h++ {
			r.Path = append(r.Path, topology.NodeID(rng.IntN(3)))
		}
		r.Path = append(r.Path, 1)
		for cl := rng.IntN(3); cl > 0; cl-- {
			r.ClusterList = append(r.ClusterList, topology.NodeID(rng.IntN(3)))
		}
		return r
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		a, b, c := gen(rng), gen(rng), gen(rng)
		if cmp.Better(a, a) {
			return false // irreflexive
		}
		if cmp.Better(a, b) && cmp.Better(b, a) {
			return false // asymmetric
		}
		if cmp.Better(a, b) && cmp.Better(b, c) && !cmp.Better(a, c) {
			return false // transitive
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
