package bgp

import (
	"slices"
	"sort"

	"chameleon/internal/topology"
)

// SessionKind distinguishes the three BGP session roles a router can have
// towards a neighbor.
type SessionKind int

const (
	// EBGP is an external BGP session.
	EBGP SessionKind = iota
	// IBGPPeer is a regular iBGP session (full-mesh style, or reflector to
	// reflector).
	IBGPPeer
	// IBGPClient marks the neighbor as this router's route-reflection
	// client; the reverse direction of the session is IBGPUp at the client.
	IBGPClient
	// IBGPUp marks the neighbor as this router's route reflector.
	IBGPUp
)

func (k SessionKind) String() string {
	switch k {
	case EBGP:
		return "eBGP"
	case IBGPPeer:
		return "iBGP-peer"
	case IBGPClient:
		return "iBGP-client"
	case IBGPUp:
		return "iBGP-up"
	}
	return "unknown"
}

// prefixIndex tracks how many neighbors currently announce each prefix, so
// AdjIn can iterate its prefix union in order without re-deriving it. The
// map engine keeps the historical sort-on-walk cost; the COW engine walks
// its trie allocation-free.
type prefixIndex interface {
	inc(Prefix)
	dec(Prefix)
	walk(fn func(Prefix) bool)
	clone() prefixIndex
}

type mapIndex struct {
	counts map[Prefix]int
}

func (x *mapIndex) inc(p Prefix) { x.counts[p]++ }
func (x *mapIndex) dec(p Prefix) {
	if x.counts[p]--; x.counts[p] <= 0 {
		delete(x.counts, p)
	}
}
func (x *mapIndex) walk(fn func(Prefix) bool) {
	keys := make([]Prefix, 0, len(x.counts))
	for p := range x.counts {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		if !fn(p) {
			return
		}
	}
}
func (x *mapIndex) clone() prefixIndex {
	c := make(map[Prefix]int, len(x.counts))
	for p, n := range x.counts {
		c[p] = n
	}
	return &mapIndex{counts: c}
}

type cowIndex struct {
	t *cowTrie[int32]
}

func (x *cowIndex) inc(p Prefix) {
	k := cowKey(p)
	n, _ := x.t.get(k)
	x.t.set(k, n+1)
}
func (x *cowIndex) dec(p Prefix) {
	k := cowKey(p)
	if n, ok := x.t.get(k); ok {
		if n <= 1 {
			x.t.delete(k)
		} else {
			x.t.set(k, n-1)
		}
	}
}
func (x *cowIndex) walk(fn func(Prefix) bool) {
	x.t.walk(func(k uint64, _ int32) bool { return fn(Prefix(k)) })
}
func (x *cowIndex) clone() prefixIndex { return &cowIndex{t: x.t.clone()} }

func newPrefixIndex(kind TableKind) prefixIndex {
	if kind == TableCOW {
		return &cowIndex{t: newCowTrie[int32]()}
	}
	return &mapIndex{counts: make(map[Prefix]int)}
}

// AdjIn is the per-neighbor inbound RIB: the most recent route announced by
// each neighbor for each prefix. Storage is one RIB table per neighbor plus
// an ordered prefix-union index, so walks never re-sort and the total entry
// count is maintained incrementally.
type AdjIn struct {
	kind   TableKind
	routes map[topology.NodeID]RIB
	// nbrs lists every neighbor with a table, sorted, so candidate walks
	// are deterministic and allocation-free.
	nbrs  []topology.NodeID
	index prefixIndex
	size  int
}

// NewAdjIn returns an empty Adj-RIB-In on the legacy map engine.
func NewAdjIn() *AdjIn { return NewAdjInKind(TableMap) }

// NewAdjInKind returns an empty Adj-RIB-In on the given table engine.
func NewAdjInKind(kind TableKind) *AdjIn {
	return &AdjIn{
		kind:   kind,
		routes: make(map[topology.NodeID]RIB),
		index:  newPrefixIndex(kind),
	}
}

// Kind identifies the storage engine.
func (a *AdjIn) Kind() TableKind { return a.kind }

// Set records the route announced by neighbor for route.Prefix, reporting
// whether the (neighbor, prefix) entry is new.
func (a *AdjIn) Set(neighbor topology.NodeID, route Route) (added bool) {
	t := a.routes[neighbor]
	if t == nil {
		t = NewRIB(a.kind)
		a.routes[neighbor] = t
		i, _ := slices.BinarySearch(a.nbrs, neighbor)
		a.nbrs = slices.Insert(a.nbrs, i, neighbor)
	}
	added = t.Set(route)
	if added {
		a.index.inc(route.Prefix)
		a.size++
	}
	return added
}

// Withdraw removes the route for prefix announced by neighbor, reporting
// whether one was present.
func (a *AdjIn) Withdraw(neighbor topology.NodeID, prefix Prefix) bool {
	t := a.routes[neighbor]
	if t == nil || !t.Delete(prefix) {
		return false
	}
	a.index.dec(prefix)
	a.size--
	return true
}

// Get returns the route for prefix announced by neighbor, if any.
func (a *AdjIn) Get(neighbor topology.NodeID, prefix Prefix) (Route, bool) {
	t := a.routes[neighbor]
	if t == nil {
		return Route{}, false
	}
	return t.Get(prefix)
}

// DropNeighborRange removes all state from the given neighbor (session
// teardown) and calls fn for each prefix that lost a route, in ascending
// order, until fn returns false. The neighbor's state is fully gone before
// the first callback, so fn observes the post-teardown table.
func (a *AdjIn) DropNeighborRange(neighbor topology.NodeID, fn func(Prefix) bool) {
	t := a.routes[neighbor]
	if t == nil {
		return
	}
	delete(a.routes, neighbor)
	if i, ok := slices.BinarySearch(a.nbrs, neighbor); ok {
		a.nbrs = slices.Delete(a.nbrs, i, i+1)
	}
	a.size -= t.Len()
	t.Range(func(p Prefix, _ Route) bool {
		a.index.dec(p)
		return true
	})
	if fn != nil {
		t.Range(func(p Prefix, _ Route) bool { return fn(p) })
	}
}

// RangeCandidates calls fn with every (neighbor, route) pair known for
// prefix, in ascending neighbor order, until fn returns false.
// Allocation-free.
func (a *AdjIn) RangeCandidates(prefix Prefix, fn func(topology.NodeID, Route) bool) {
	for _, n := range a.nbrs {
		if r, ok := a.routes[n].Get(prefix); ok {
			if !fn(n, r) {
				return
			}
		}
	}
}

// NeighborRoute pairs a route with the neighbor that announced it.
type NeighborRoute struct {
	Neighbor topology.NodeID
	Route    Route
}

// NeighborCandidates returns all (neighbor, route) pairs known for prefix,
// sorted by neighbor ID for determinism.
func (a *AdjIn) NeighborCandidates(prefix Prefix) []NeighborRoute {
	var out []NeighborRoute
	a.RangeCandidates(prefix, func(n topology.NodeID, r Route) bool {
		out = append(out, NeighborRoute{Neighbor: n, Route: r})
		return true
	})
	return out
}

// RangeNeighbor calls fn for every (prefix, route) announced by neighbor,
// in ascending prefix order, until fn returns false.
func (a *AdjIn) RangeNeighbor(neighbor topology.NodeID, fn func(Prefix, Route) bool) {
	if t := a.routes[neighbor]; t != nil {
		t.Range(fn)
	}
}

// RangePrefixes calls fn for every prefix with at least one candidate
// route, in ascending order, until fn returns false. On the COW engine the
// walk is allocation-free; the map engine keeps its historical
// sort-a-fresh-slice cost.
func (a *AdjIn) RangePrefixes(fn func(Prefix) bool) { a.index.walk(fn) }

// Neighbors returns the neighbors with Adj-RIB-In state, sorted. The
// returned slice is the AdjIn's own and must not be mutated.
func (a *AdjIn) Neighbors() []topology.NodeID { return a.nbrs }

// Size returns the total number of stored routes across all neighbors and
// prefixes in O(1); this is the routing-table-size metric of §7.3.
func (a *AdjIn) Size() int { return a.size }

// Clone returns an independent copy. On the COW engine every per-neighbor
// table and the prefix index share unchanged subtrees with the original.
func (a *AdjIn) Clone() *AdjIn {
	c := &AdjIn{
		kind:   a.kind,
		routes: make(map[topology.NodeID]RIB, len(a.routes)),
		nbrs:   slices.Clone(a.nbrs),
		index:  a.index.clone(),
		size:   a.size,
	}
	for n, t := range a.routes {
		c.routes[n] = t.Clone()
	}
	return c
}

// LocRIB is the per-prefix best-route table of one router.
type LocRIB struct {
	t RIB
}

// NewLocRIB returns an empty Loc-RIB on the legacy map engine.
func NewLocRIB() *LocRIB { return NewLocRIBKind(TableMap) }

// NewLocRIBKind returns an empty Loc-RIB on the given table engine.
func NewLocRIBKind(kind TableKind) *LocRIB { return &LocRIB{t: NewRIB(kind)} }

// Kind identifies the storage engine.
func (l *LocRIB) Kind() TableKind { return l.t.Kind() }

// Get returns the selected route for prefix, if any.
func (l *LocRIB) Get(prefix Prefix) (Route, bool) { return l.t.Get(prefix) }

// Set installs route as the selection for route.Prefix.
func (l *LocRIB) Set(route Route) { l.t.Set(route) }

// Clear removes the selection for prefix.
func (l *LocRIB) Clear(prefix Prefix) { l.t.Delete(prefix) }

// Range calls fn for every (prefix, selected route) pair in ascending
// prefix order until fn returns false. On the COW engine the walk is
// allocation-free.
func (l *LocRIB) Range(fn func(Prefix, Route) bool) { l.t.Range(fn) }

// Size returns the number of selected routes.
func (l *LocRIB) Size() int { return l.t.Len() }

// Clone returns an independent copy; COW tables share unchanged subtrees.
func (l *LocRIB) Clone() *LocRIB { return &LocRIB{t: l.t.Clone()} }
