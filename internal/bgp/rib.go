package bgp

import (
	"sort"

	"chameleon/internal/topology"
)

// SessionKind distinguishes the three BGP session roles a router can have
// towards a neighbor.
type SessionKind int

const (
	// EBGP is an external BGP session.
	EBGP SessionKind = iota
	// IBGPPeer is a regular iBGP session (full-mesh style, or reflector to
	// reflector).
	IBGPPeer
	// IBGPClient marks the neighbor as this router's route-reflection
	// client; the reverse direction of the session is IBGPUp at the client.
	IBGPClient
	// IBGPUp marks the neighbor as this router's route reflector.
	IBGPUp
)

func (k SessionKind) String() string {
	switch k {
	case EBGP:
		return "eBGP"
	case IBGPPeer:
		return "iBGP-peer"
	case IBGPClient:
		return "iBGP-client"
	case IBGPUp:
		return "iBGP-up"
	}
	return "unknown"
}

// AdjIn is the per-neighbor inbound RIB: the most recent route announced by
// each neighbor for each prefix.
type AdjIn struct {
	// routes[neighbor][prefix] = route after ingress policy
	routes map[topology.NodeID]map[Prefix]Route
}

// NewAdjIn returns an empty Adj-RIB-In.
func NewAdjIn() *AdjIn {
	return &AdjIn{routes: make(map[topology.NodeID]map[Prefix]Route)}
}

// Set records the route announced by neighbor for route.Prefix.
func (a *AdjIn) Set(neighbor topology.NodeID, route Route) {
	m := a.routes[neighbor]
	if m == nil {
		m = make(map[Prefix]Route)
		a.routes[neighbor] = m
	}
	m[route.Prefix] = route
}

// Withdraw removes the route for prefix announced by neighbor, reporting
// whether one was present.
func (a *AdjIn) Withdraw(neighbor topology.NodeID, prefix Prefix) bool {
	m := a.routes[neighbor]
	if m == nil {
		return false
	}
	if _, ok := m[prefix]; !ok {
		return false
	}
	delete(m, prefix)
	return true
}

// Get returns the route for prefix announced by neighbor, if any.
func (a *AdjIn) Get(neighbor topology.NodeID, prefix Prefix) (Route, bool) {
	m := a.routes[neighbor]
	if m == nil {
		return Route{}, false
	}
	r, ok := m[prefix]
	return r, ok
}

// DropNeighbor removes all state from the given neighbor (session teardown)
// and returns the prefixes that lost a route.
func (a *AdjIn) DropNeighbor(neighbor topology.NodeID) []Prefix {
	m := a.routes[neighbor]
	if m == nil {
		return nil
	}
	var prefixes []Prefix
	for p := range m {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
	delete(a.routes, neighbor)
	return prefixes
}

// Candidates returns all routes currently known for prefix, sorted by
// advertising neighbor for determinism.
func (a *AdjIn) Candidates(prefix Prefix) []Route {
	var neighbors []topology.NodeID
	for n, m := range a.routes {
		if _, ok := m[prefix]; ok {
			neighbors = append(neighbors, n)
		}
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	out := make([]Route, 0, len(neighbors))
	for _, n := range neighbors {
		out = append(out, a.routes[n][prefix])
	}
	return out
}

// NeighborRoute pairs a route with the neighbor that announced it.
type NeighborRoute struct {
	Neighbor topology.NodeID
	Route    Route
}

// NeighborCandidates returns all (neighbor, route) pairs known for prefix,
// sorted by neighbor ID for determinism.
func (a *AdjIn) NeighborCandidates(prefix Prefix) []NeighborRoute {
	var out []NeighborRoute
	for n, m := range a.routes {
		if r, ok := m[prefix]; ok {
			out = append(out, NeighborRoute{Neighbor: n, Route: r})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Neighbor < out[j].Neighbor })
	return out
}

// Prefixes returns all prefixes with at least one candidate route, sorted.
func (a *AdjIn) Prefixes() []Prefix {
	seen := make(map[Prefix]bool)
	for _, m := range a.routes {
		for p := range m {
			seen[p] = true
		}
	}
	out := make([]Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the total number of stored routes across all neighbors and
// prefixes; this is the routing-table-size metric of §7.3.
func (a *AdjIn) Size() int {
	total := 0
	for _, m := range a.routes {
		total += len(m)
	}
	return total
}

// LocRIB is the per-prefix best-route table of one router.
type LocRIB struct {
	best map[Prefix]Route
}

// NewLocRIB returns an empty Loc-RIB.
func NewLocRIB() *LocRIB { return &LocRIB{best: make(map[Prefix]Route)} }

// Get returns the selected route for prefix, if any.
func (l *LocRIB) Get(prefix Prefix) (Route, bool) {
	r, ok := l.best[prefix]
	return r, ok
}

// Set installs route as the selection for route.Prefix.
func (l *LocRIB) Set(route Route) { l.best[route.Prefix] = route }

// Clear removes the selection for prefix.
func (l *LocRIB) Clear(prefix Prefix) { delete(l.best, prefix) }

// Prefixes returns all prefixes with a selection, sorted.
func (l *LocRIB) Prefixes() []Prefix {
	out := make([]Prefix, 0, len(l.best))
	for p := range l.best {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of selected routes.
func (l *LocRIB) Size() int { return len(l.best) }
