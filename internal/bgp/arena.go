package bgp

import "chameleon/internal/topology"

// PathArena is a bump allocator for route propagation paths. Extending a
// route allocates a fresh path slice per (route, hop); during a prefix
// storm that is millions of tiny allocations. The arena carves them out of
// large shared blocks instead, and clamps every handed-out slice to zero
// spare capacity so a later append by any holder copies rather than
// scribbling over a neighbor's path.
//
// Paths handed out are immutable by convention (Route.Extend always copies
// before appending), so blocks are never reclaimed individually — the
// arena is dropped wholesale with the network that owns it. Not safe for
// concurrent use; the simulator is single-threaded by design.
type PathArena struct {
	block []topology.NodeID
}

// arenaBlock is the block granularity: 8192 node IDs = 64 KiB per block,
// large enough to amortize allocator overhead, small enough to not strand
// memory on tiny networks.
const arenaBlock = 8192

// ExtendPath returns path + [n] in arena storage. A nil arena falls back
// to a plain allocation, so callers can thread an optional arena without
// branching.
func (a *PathArena) ExtendPath(path []topology.NodeID, n topology.NodeID) []topology.NodeID {
	need := len(path) + 1
	if a == nil {
		out := make([]topology.NodeID, need)
		copy(out, path)
		out[need-1] = n
		return out
	}
	if need > arenaBlock {
		// Degenerate path longer than a block: plain allocation.
		out := make([]topology.NodeID, need)
		copy(out, path)
		out[need-1] = n
		return out
	}
	if len(a.block)+need > cap(a.block) {
		a.block = make([]topology.NodeID, 0, arenaBlock)
	}
	start := len(a.block)
	a.block = append(a.block, path...)
	a.block = append(a.block, n)
	return a.block[start : start+need : start+need]
}
