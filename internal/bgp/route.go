// Package bgp defines BGP routes, the best-path decision process, and the
// RIB structures (Adj-RIB-In, Loc-RIB) used by the simulator. Routes carry
// both standard BGP attributes and their propagation path, following the
// paper's §3 model where a route ρ = [d, n1, …, ni, n] is identified by the
// sequence of routers it traversed inside the network.
package bgp

import (
	"fmt"
	"slices"
	"strings"

	"chameleon/internal/igp"
	"chameleon/internal/topology"
)

// Prefix identifies a destination prefix (or a prefix equivalence class,
// §3: one destination can represent a whole class of prefixes for which the
// network computes identical routing and forwarding state).
type Prefix int

// Route is a BGP route for one prefix as known at one router.
type Route struct {
	Prefix Prefix

	// Egress is e(ρ): the internal router that first received the route
	// from the external world and that traffic ultimately exits through.
	Egress topology.NodeID

	// External is the eBGP neighbor that announced the route to Egress.
	External topology.NodeID

	// Path is the internal propagation path [n1, …, ni, n]: Path[0] is the
	// egress, Path[len-1] is the router holding this route. The external
	// destination d is implicit.
	Path []topology.NodeID

	// Standard attributes, in decision-process order of relevance.
	Weight    int    // Cisco-style local weight; never propagated
	LocalPref uint32 // propagated over iBGP only
	ASPathLen int
	MED       uint32
	FromEBGP  bool // learned over an eBGP session

	// OriginatorID and ClusterList implement RFC 4456 loop prevention for
	// route reflection.
	OriginatorID topology.NodeID
	ClusterList  []topology.NodeID
}

// DefaultLocalPref is the local preference assigned to routes that no route
// map touches.
const DefaultLocalPref uint32 = 100

// DefaultWeight is the weight assigned to routes that no route map touches.
const DefaultWeight = 0

// At returns the router currently holding this route (the last path element).
func (r Route) At() topology.NodeID {
	if len(r.Path) == 0 {
		return topology.None
	}
	return r.Path[len(r.Path)-1]
}

// Pre returns pre(ρ): the neighbor that advertised the route to At(), or
// topology.None if the route was learned over eBGP directly at the egress.
func (r Route) Pre() topology.NodeID {
	if len(r.Path) < 2 {
		return topology.None
	}
	return r.Path[len(r.Path)-2]
}

// Extend returns a copy of the route as propagated to node n: the path is
// extended, and non-transitive attributes (Weight) are reset.
func (r Route) Extend(n topology.NodeID) Route {
	return r.ExtendIn(nil, n)
}

// ExtendIn is Extend with the new path carved from arena, avoiding a heap
// allocation per propagated route during announcement storms. A nil arena
// falls back to a plain allocation.
func (r Route) ExtendIn(a *PathArena, n topology.NodeID) Route {
	out := r
	out.Path = a.ExtendPath(r.Path, n)
	out.Weight = DefaultWeight
	out.FromEBGP = false
	out.ClusterList = slices.Clone(r.ClusterList)
	return out
}

// SameAnnouncement reports whether two routes stem from the same external
// announcement (same prefix, same egress, same external neighbor),
// regardless of the propagation path. This is the equivalence the paper
// uses for "equivalent routes" from redundant route reflectors.
func (r Route) SameAnnouncement(o Route) bool {
	return r.Prefix == o.Prefix && r.Egress == o.Egress && r.External == o.External
}

// PathEqual reports whether two routes have identical propagation paths.
func (r Route) PathEqual(o Route) bool {
	return r.SameAnnouncement(o) && slices.Equal(r.Path, o.Path)
}

// String renders ρ as [d, n1, …, n] with attributes, for debugging.
func (r Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d:[d", int(r.Prefix))
	for _, n := range r.Path {
		fmt.Fprintf(&b, ",%d", int(n))
	}
	fmt.Fprintf(&b, "] lp=%d w=%d aspl=%d", r.LocalPref, r.Weight, r.ASPathLen)
	return b.String()
}

// Comparator ranks routes according to the BGP decision process. IGP
// distances and the evaluating router are needed for the IGP-cost step.
type Comparator struct {
	SPF  *igp.SPF
	Node topology.NodeID
}

// Better reports whether route a is strictly preferred over b at the
// comparator's node, following the standard (Cisco-ordered) decision
// process:
//  1. highest Weight
//  2. highest LocalPref
//  3. shortest AS path
//  4. lowest MED
//  5. eBGP-learned over iBGP-learned
//  6. lowest IGP cost to the egress
//  7. lowest egress router ID
//  8. shortest cluster list (RFC 4456 §9; prevents the classic two-reflector
//     oscillation where each reflector prefers the other's reflected copy)
//  9. lowest advertising neighbor ID (deterministic final tie-break)
func (c Comparator) Better(a, b Route) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.ASPathLen != b.ASPathLen {
		return a.ASPathLen < b.ASPathLen
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	if a.FromEBGP != b.FromEBGP {
		return a.FromEBGP
	}
	da, db := c.SPF.Dist(c.Node, a.Egress), c.SPF.Dist(c.Node, b.Egress)
	if da != db {
		return da < db
	}
	if a.Egress != b.Egress {
		return a.Egress < b.Egress
	}
	if len(a.ClusterList) != len(b.ClusterList) {
		return len(a.ClusterList) < len(b.ClusterList)
	}
	return neighborKey(a) < neighborKey(b)
}

func neighborKey(r Route) topology.NodeID {
	if p := r.Pre(); p != topology.None {
		return p
	}
	return r.External
}

// Best returns the index of the best route in rs, or -1 if rs is empty.
func (c Comparator) Best(rs []Route) int {
	best := -1
	for i, r := range rs {
		if best == -1 || c.Better(r, rs[best]) {
			best = i
		}
	}
	return best
}
