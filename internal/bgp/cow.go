package bgp

import (
	"fmt"
	"math/bits"
)

// This file implements the prefix-scale table engine: a chunked radix trie
// over the integer prefix space with copy-on-write structural sharing.
//
// Layout: every node covers a 6-bit slice of the key, so fan-out is 64.
// Leaves hold a 64-entry value chunk plus a presence bitmap; inner nodes
// hold 64 child pointers. The trie's height adapts to the largest key ever
// inserted (height 0 = the root is a single leaf covering prefixes 0..63),
// so a three-prefix Loc-RIB is one small chunk while a million-prefix table
// is four levels deep.
//
// Copy-on-write: every node records the owner token of the table that
// allocated it. A mutation may update a node in place only when the node's
// owner is the mutating table; otherwise the path from the root to the
// touched chunk is copied first (path copying, ~height nodes). Clone is
// O(1): it hands the root to the new table and gives BOTH tables fresh
// owner tokens, so neither side can mutate shared nodes in place — exactly
// the transient/persistent discipline of HAMT-style structures. Repeated
// writes after a clone re-own the touched paths once and are in-place from
// then on.

const (
	cowBits  = 6
	cowFan   = 1 << cowBits // 64
	cowMask  = cowFan - 1
	cowDepth = 10 // max height: covers the full 63-bit non-negative key space
)

// cowOwner is a unique mutation token; identity (pointer) is all that
// matters.
type cowOwner struct{ _ byte }

// cowNode is one trie node. Leaves have vals != nil; inner nodes have
// inner != nil. Exactly one of the two is set.
type cowNode[V any] struct {
	owner   *cowOwner
	inner   []*cowNode[V] // len cowFan when an inner node
	present uint64        // leaf presence bitmap
	vals    []V           // len cowFan when a leaf
}

func newCowLeaf[V any](o *cowOwner) *cowNode[V] {
	return &cowNode[V]{owner: o, vals: make([]V, cowFan)}
}

func newCowInner[V any](o *cowOwner) *cowNode[V] {
	return &cowNode[V]{owner: o, inner: make([]*cowNode[V], cowFan)}
}

// owned returns n if the table owns it, else a copy owned by o. The copy
// shares child pointers (inner) or value storage content (vals) by copying
// the slice, not the subtrees below it.
func (n *cowNode[V]) owned(o *cowOwner) *cowNode[V] {
	if n.owner == o {
		return n
	}
	c := &cowNode[V]{owner: o, present: n.present}
	if n.inner != nil {
		c.inner = make([]*cowNode[V], cowFan)
		copy(c.inner, n.inner)
	}
	if n.vals != nil {
		c.vals = make([]V, cowFan)
		copy(c.vals, n.vals)
	}
	return c
}

// cowTrie is the generic trie core, shared by the Route-valued RIB and the
// Adj-RIB-In prefix refcount index.
type cowTrie[V any] struct {
	owner  *cowOwner
	root   *cowNode[V]
	height int // levels below the root; 0 = root is a leaf
	size   int
}

func newCowTrie[V any]() *cowTrie[V] {
	o := &cowOwner{}
	return &cowTrie[V]{owner: o, root: newCowLeaf[V](o)}
}

// cowKey maps a Prefix to a trie key, rejecting negatives (prefixes are
// equivalence-class indices, never negative in a table).
func cowKey(p Prefix) uint64 {
	if p < 0 {
		panic(fmt.Sprintf("bgp: negative prefix %d in COW table", int(p)))
	}
	return uint64(p)
}

// capacity is the exclusive upper bound of keys the current height covers.
func (t *cowTrie[V]) capacity() uint64 {
	return uint64(1) << (cowBits * (t.height + 1))
}

// grow raises the root until k fits.
func (t *cowTrie[V]) grow(k uint64) {
	for k >= t.capacity() {
		if t.height >= cowDepth {
			panic(fmt.Sprintf("bgp: prefix %d exceeds COW table key space", k))
		}
		top := newCowInner[V](t.owner)
		top.inner[0] = t.root
		t.root = top
		t.height++
	}
}

func (t *cowTrie[V]) set(k uint64, v V) (added bool) {
	t.grow(k)
	t.root = t.root.owned(t.owner)
	n := t.root
	for lvl := t.height; lvl > 0; lvl-- {
		idx := (k >> (cowBits * lvl)) & cowMask
		child := n.inner[idx]
		switch {
		case child == nil:
			if lvl == 1 {
				child = newCowLeaf[V](t.owner)
			} else {
				child = newCowInner[V](t.owner)
			}
		default:
			child = child.owned(t.owner)
		}
		n.inner[idx] = child
		n = child
	}
	idx := k & cowMask
	bit := uint64(1) << idx
	added = n.present&bit == 0
	n.present |= bit
	n.vals[idx] = v
	if added {
		t.size++
	}
	return added
}

func (t *cowTrie[V]) get(k uint64) (V, bool) {
	var zero V
	if k >= t.capacity() {
		return zero, false
	}
	n := t.root
	for lvl := t.height; lvl > 0; lvl-- {
		n = n.inner[(k>>(cowBits*lvl))&cowMask]
		if n == nil {
			return zero, false
		}
	}
	idx := k & cowMask
	if n.present&(uint64(1)<<idx) == 0 {
		return zero, false
	}
	return n.vals[idx], true
}

func (t *cowTrie[V]) delete(k uint64) bool {
	if k >= t.capacity() {
		return false
	}
	// Probe first: deleting an absent key must not copy the path.
	if _, ok := t.get(k); !ok {
		return false
	}
	t.root = t.root.owned(t.owner)
	n := t.root
	for lvl := t.height; lvl > 0; lvl-- {
		idx := (k >> (cowBits * lvl)) & cowMask
		child := n.inner[idx].owned(t.owner)
		n.inner[idx] = child
		n = child
	}
	idx := k & cowMask
	var zero V
	n.present &^= uint64(1) << idx
	n.vals[idx] = zero // release references held by the value
	t.size--
	return true
}

// walk calls fn for every entry in ascending key order until fn returns
// false; it reports whether the walk ran to completion. Allocation-free.
func (t *cowTrie[V]) walk(fn func(uint64, V) bool) bool {
	return walkNode(t.root, t.height, 0, fn)
}

func walkNode[V any](n *cowNode[V], lvl int, base uint64, fn func(uint64, V) bool) bool {
	if n == nil {
		return true
	}
	if lvl == 0 {
		for b := n.present; b != 0; b &= b - 1 {
			i := uint64(bits.TrailingZeros64(b))
			if !fn(base|i, n.vals[i]) {
				return false
			}
		}
		return true
	}
	for i, c := range n.inner {
		if c == nil {
			continue
		}
		if !walkNode(c, lvl-1, base|uint64(i)<<(cowBits*lvl), fn) {
			return false
		}
	}
	return true
}

// clone shares the whole trie in O(1). Both tables relinquish ownership of
// every existing node, so the next write on either side path-copies.
func (t *cowTrie[V]) clone() *cowTrie[V] {
	t.owner = &cowOwner{}
	return &cowTrie[V]{
		owner:  &cowOwner{},
		root:   t.root,
		height: t.height,
		size:   t.size,
	}
}

// cowRIB adapts the trie to the RIB interface.
type cowRIB struct {
	t *cowTrie[Route]
}

func newCowRIB() *cowRIB { return &cowRIB{t: newCowTrie[Route]()} }

func (c *cowRIB) Get(prefix Prefix) (Route, bool) { return c.t.get(cowKey(prefix)) }
func (c *cowRIB) Set(route Route) bool            { return c.t.set(cowKey(route.Prefix), route) }
func (c *cowRIB) Delete(prefix Prefix) bool       { return c.t.delete(cowKey(prefix)) }
func (c *cowRIB) Len() int                        { return c.t.size }
func (c *cowRIB) Clone() RIB                      { return &cowRIB{t: c.t.clone()} }
func (c *cowRIB) Kind() TableKind                 { return TableCOW }

func (c *cowRIB) Range(fn func(Prefix, Route) bool) {
	c.t.walk(func(k uint64, r Route) bool { return fn(Prefix(k), r) })
}
