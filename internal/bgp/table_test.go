package bgp

import (
	"math/rand"
	"reflect"
	"testing"

	"chameleon/internal/topology"
)

func testRoute(p Prefix, egress topology.NodeID) Route {
	return Route{Prefix: p, Egress: egress, Path: []topology.NodeID{egress}, LocalPref: 100}
}

// TestRIBEnginesAgree drives the same randomized operation sequence through
// both engines and checks they stay observationally identical.
func TestRIBEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewRIB(TableMap)
	c := NewRIB(TableCOW)
	const universe = 4096
	for i := 0; i < 20000; i++ {
		p := Prefix(rng.Intn(universe))
		if rng.Intn(3) == 0 {
			if m.Delete(p) != c.Delete(p) {
				t.Fatalf("op %d: Delete(%d) disagrees", i, p)
			}
		} else {
			r := testRoute(p, topology.NodeID(rng.Intn(16)))
			if m.Set(r) != c.Set(r) {
				t.Fatalf("op %d: Set(%d) added-disagrees", i, p)
			}
		}
	}
	if m.Len() != c.Len() {
		t.Fatalf("Len: map %d cow %d", m.Len(), c.Len())
	}
	type kv struct {
		P Prefix
		R Route
	}
	collect := func(r RIB) []kv {
		var out []kv
		r.Range(func(p Prefix, rt Route) bool {
			out = append(out, kv{p, rt})
			return true
		})
		return out
	}
	mkv, ckv := collect(m), collect(c)
	if !reflect.DeepEqual(mkv, ckv) {
		t.Fatalf("Range output differs: map has %d entries, cow %d", len(mkv), len(ckv))
	}
	for i := 1; i < len(ckv); i++ {
		if ckv[i-1].P >= ckv[i].P {
			t.Fatalf("cow Range out of order at %d: %d >= %d", i, ckv[i-1].P, ckv[i].P)
		}
	}
	for _, e := range mkv {
		mr, mok := m.Get(e.P)
		cr, cok := c.Get(e.P)
		if mok != cok || !reflect.DeepEqual(mr, cr) {
			t.Fatalf("Get(%d) disagrees", e.P)
		}
	}
}

// TestCOWCloneIsolation checks that after Clone neither table observes the
// other's writes, in both directions, including deep prefix keys.
func TestCOWCloneIsolation(t *testing.T) {
	orig := NewRIB(TableCOW)
	for _, p := range []Prefix{0, 1, 63, 64, 100000, 999999} {
		orig.Set(testRoute(p, 1))
	}
	snap := orig.Clone()

	// Mutate the original: overwrite, insert, delete.
	orig.Set(testRoute(63, 9))
	orig.Set(testRoute(500, 9))
	orig.Delete(100000)

	if r, ok := snap.Get(63); !ok || r.Egress != 1 {
		t.Fatalf("clone saw original's overwrite: %+v %v", r, ok)
	}
	if _, ok := snap.Get(500); ok {
		t.Fatal("clone saw original's insert")
	}
	if _, ok := snap.Get(100000); !ok {
		t.Fatal("clone saw original's delete")
	}

	// Mutate the clone: the original must be unaffected too.
	snap.Set(testRoute(0, 7))
	snap.Delete(999999)
	if r, ok := orig.Get(0); !ok || r.Egress != 1 {
		t.Fatalf("original saw clone's overwrite: %+v %v", r, ok)
	}
	if _, ok := orig.Get(999999); !ok {
		t.Fatal("original saw clone's delete")
	}
	if snap.Len() != 5 || orig.Len() != 6 {
		t.Fatalf("sizes drifted: snap %d orig %d", snap.Len(), orig.Len())
	}
}

// TestCOWCloneChain stresses repeated clone+mutate cycles, mimicking the
// per-round CaptureState pattern, and verifies every snapshot keeps its
// point-in-time content.
func TestCOWCloneChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	live := NewRIB(TableCOW)
	model := map[Prefix]Route{}
	type snap struct {
		table RIB
		want  map[Prefix]Route
	}
	var snaps []snap
	for round := 0; round < 30; round++ {
		for i := 0; i < 200; i++ {
			p := Prefix(rng.Intn(2048))
			if rng.Intn(4) == 0 {
				live.Delete(p)
				delete(model, p)
			} else {
				r := testRoute(p, topology.NodeID(rng.Intn(8)))
				live.Set(r)
				model[p] = r
			}
		}
		want := make(map[Prefix]Route, len(model))
		for p, r := range model {
			want[p] = r
		}
		snaps = append(snaps, snap{table: live.Clone(), want: want})
	}
	for i, s := range snaps {
		if s.table.Len() != len(s.want) {
			t.Fatalf("snap %d: len %d want %d", i, s.table.Len(), len(s.want))
		}
		seen := 0
		bad := false
		s.table.Range(func(p Prefix, r Route) bool {
			seen++
			if w, ok := s.want[p]; !ok || !reflect.DeepEqual(w, r) {
				bad = true
				return false
			}
			return true
		})
		if bad || seen != len(s.want) {
			t.Fatalf("snap %d: content drifted (saw %d of %d)", i, seen, len(s.want))
		}
	}
}

// TestCOWRangeAllocs verifies the ordered walk over the COW engine does not
// allocate.
func TestCOWRangeAllocs(t *testing.T) {
	r := NewRIB(TableCOW)
	for p := Prefix(0); p < 10000; p += 3 {
		r.Set(testRoute(p, 2))
	}
	n := 0
	cb := func(Prefix, Route) bool { n++; return true }
	allocs := testing.AllocsPerRun(10, func() { r.Range(cb) })
	if allocs > 0 {
		t.Fatalf("COW Range allocated %.1f times per walk", allocs)
	}
}

func TestAdjInRangeAndClone(t *testing.T) {
	for _, kind := range []TableKind{TableMap, TableCOW} {
		a := NewAdjInKind(kind)
		a.Set(3, testRoute(10, 3))
		a.Set(1, testRoute(10, 1))
		a.Set(1, testRoute(20, 1))
		if a.Size() != 3 {
			t.Fatalf("%v: size %d want 3", kind, a.Size())
		}
		var got []Prefix
		a.RangePrefixes(func(p Prefix) bool {
			got = append(got, p)
			return true
		})
		if !reflect.DeepEqual(got, []Prefix{10, 20}) {
			t.Fatalf("%v: prefixes %v", kind, got)
		}
		var nbrs []topology.NodeID
		a.RangeCandidates(10, func(n topology.NodeID, _ Route) bool {
			nbrs = append(nbrs, n)
			return true
		})
		if !reflect.DeepEqual(nbrs, []topology.NodeID{1, 3}) {
			t.Fatalf("%v: candidate order %v", kind, nbrs)
		}

		c := a.Clone()
		a.Withdraw(1, 10)
		a.Set(2, testRoute(30, 2))
		if c.Size() != 3 || a.Size() != 3 {
			t.Fatalf("%v: clone sizes drifted: %d %d", kind, c.Size(), a.Size())
		}
		if _, ok := c.Get(1, 10); !ok {
			t.Fatalf("%v: clone saw withdraw", kind)
		}
		if _, ok := c.Get(2, 30); ok {
			t.Fatalf("%v: clone saw new neighbor", kind)
		}

		var dropped []Prefix
		a.DropNeighborRange(1, func(p Prefix) bool {
			dropped = append(dropped, p)
			return true
		})
		if !reflect.DeepEqual(dropped, []Prefix{20}) {
			t.Fatalf("%v: dropped %v", kind, dropped)
		}
		if a.Size() != 2 {
			t.Fatalf("%v: size after drop %d", kind, a.Size())
		}
	}
}

func TestPathArena(t *testing.T) {
	var a PathArena
	base := []topology.NodeID{1, 2}
	p1 := a.ExtendPath(base, 3)
	p2 := a.ExtendPath(p1, 4)
	if !reflect.DeepEqual(p1, []topology.NodeID{1, 2, 3}) {
		t.Fatalf("p1 = %v", p1)
	}
	if !reflect.DeepEqual(p2, []topology.NodeID{1, 2, 3, 4}) {
		t.Fatalf("p2 = %v", p2)
	}
	// Appending to an arena slice must copy, never scribble on a neighbor.
	_ = append(p1, 99)
	if !reflect.DeepEqual(p2, []topology.NodeID{1, 2, 3, 4}) {
		t.Fatalf("append aliased arena storage: p2 = %v", p2)
	}
	// Nil arena falls back to plain allocation.
	var nilA *PathArena
	p3 := nilA.ExtendPath(base, 5)
	if !reflect.DeepEqual(p3, []topology.NodeID{1, 2, 5}) {
		t.Fatalf("p3 = %v", p3)
	}
	// Cross block boundaries.
	long := make([]topology.NodeID, 0, 40)
	for i := 0; i < 2000; i++ {
		long = a.ExtendPath(long[:min(len(long), 20)], topology.NodeID(i))
	}
	if long[len(long)-1] != 1999 {
		t.Fatalf("block rollover lost tail: %v", long[len(long)-1])
	}
}
