package bgp

import "sort"

// TableKind selects the RIB storage engine backing AdjIn, LocRIB and the
// simulator's Adj-RIB-Out tables.
type TableKind int

const (
	// TableMap is the legacy engine: a plain Go map per table. O(1) point
	// access, but ordered walks sort a freshly allocated key slice and
	// Clone deep-copies every entry. The zero value, so existing callers
	// keep their exact historical behavior and cost model.
	TableMap TableKind = iota
	// TableCOW is the prefix-scale engine: a chunked radix trie with
	// copy-on-write structural sharing. Ordered walks are allocation-free,
	// Clone is O(1) and shares unchanged subtrees, and writes after a
	// clone copy only the touched path.
	TableCOW
)

func (k TableKind) String() string {
	switch k {
	case TableMap:
		return "map"
	case TableCOW:
		return "cow"
	}
	return "unknown"
}

// RIB is a prefix-keyed route table: the storage contract shared by the
// Loc-RIB, the per-neighbor Adj-RIB-In slices and the simulator's
// Adj-RIB-Out. Implementations must iterate in ascending prefix order so
// every walk over routing state is deterministic regardless of engine.
type RIB interface {
	// Get returns the route stored for prefix, if any.
	Get(prefix Prefix) (Route, bool)
	// Set stores route under route.Prefix, reporting whether the prefix
	// was absent before (an insert rather than a replacement).
	Set(route Route) (added bool)
	// Delete removes the entry for prefix, reporting whether one existed.
	Delete(prefix Prefix) bool
	// Range calls fn for every entry in ascending prefix order until fn
	// returns false. The table must not be mutated during the walk.
	Range(fn func(Prefix, Route) bool)
	// Len returns the number of stored entries in O(1).
	Len() int
	// Clone returns an independent table with the same content. The COW
	// engine shares unchanged subtrees between the two tables; the map
	// engine deep-copies.
	Clone() RIB
	// Kind identifies the storage engine.
	Kind() TableKind
}

// NewRIB returns an empty route table backed by the given engine.
func NewRIB(kind TableKind) RIB {
	if kind == TableCOW {
		return newCowRIB()
	}
	return &mapRIB{m: make(map[Prefix]Route)}
}

// mapRIB is the legacy map-backed table. Its Range deliberately keeps the
// historical cost model — collect keys, sort, walk — so the prefix-scale
// benchmarks compare the COW engine against what the code actually did
// before, not against an already-optimized baseline.
type mapRIB struct {
	m map[Prefix]Route
}

func (t *mapRIB) Get(prefix Prefix) (Route, bool) {
	r, ok := t.m[prefix]
	return r, ok
}

func (t *mapRIB) Set(route Route) bool {
	_, existed := t.m[route.Prefix]
	t.m[route.Prefix] = route
	return !existed
}

func (t *mapRIB) Delete(prefix Prefix) bool {
	if _, ok := t.m[prefix]; !ok {
		return false
	}
	delete(t.m, prefix)
	return true
}

func (t *mapRIB) Range(fn func(Prefix, Route) bool) {
	keys := make([]Prefix, 0, len(t.m))
	for p := range t.m {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		if !fn(p, t.m[p]) {
			return
		}
	}
}

func (t *mapRIB) Len() int { return len(t.m) }

func (t *mapRIB) Clone() RIB {
	c := make(map[Prefix]Route, len(t.m))
	for p, r := range t.m {
		c[p] = r
	}
	return &mapRIB{m: c}
}

func (t *mapRIB) Kind() TableKind { return TableMap }
