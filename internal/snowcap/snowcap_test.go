package snowcap_test

import (
	"errors"
	"testing"
	"time"

	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/snowcap"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
	"chameleon/internal/traffic"
)

func reachSpec(g *topology.Graph) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range g.Internal() {
		es = append(es, b.Reach(n))
	}
	return spec.NewSpec(b, b.Globally(b.And(es...)))
}

func TestApplyReachesFinalState(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := snowcap.Apply(s.Net, s.Commands, []int{0}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress == s.E1 {
			t.Errorf("node %d did not leave e1", n)
		}
	}
	if res.Duration() <= 0 {
		t.Error("no time elapsed")
	}
}

// TestSnowcapCausesTransientDrops reproduces Fig. 1's left side: applying
// the command directly causes transient black holes while Chameleon's
// plans (tested in internal/runtime) do not.
func TestSnowcapCausesTransientDrops(t *testing.T) {
	dropped := false
	// BGP message ordering depends on jitter; across a few seeds the
	// direct application must show at least one transient violation.
	for seed := uint64(1); seed <= 10 && !dropped; seed++ {
		s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		start := s.Net.Now()
		s.Net.RecordInitialState(s.Prefix)
		if _, err := snowcap.Apply(s.Net, s.Commands, []int{0}, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		tr := s.Net.Trace(s.Prefix)
		m := traffic.Measure(tr, s.Graph.Internal(), nil, traffic.Options{
			RatePerNode: 1500, Step: 0.01, From: start.Seconds(), To: s.Net.Now().Seconds(),
		})
		if m.TotalDropped > 0 {
			dropped = true
		}
	}
	if !dropped {
		t.Error("Snowcap-style direct application never dropped packets in 10 seeds — transient modeling broken?")
	}
}

func TestSynthesizeSingleCommand(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	res, err := snowcap.Synthesize(s.Net, s.Prefix, s.Commands, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 1 || res.Order[0] != 0 {
		t.Errorf("Order = %v, want [0]", res.Order)
	}
	// Synthesize must not modify the input network.
	if best, _ := s.Net.Best(s.E2, s.Prefix); best.Egress != s.E1 {
		t.Error("Synthesize mutated the network")
	}
}

func TestSynthesizeOrdersTwoCommands(t *testing.T) {
	// Two commands: (1) deny e1's route, (2) deny e2's route. Applying
	// (2) then (1) leaves a steady state where everything still works
	// (e3 remains), and so does (1) then (2) — both orders valid. But a
	// pair where denying both e2 and e3 first would violate reachability
	// only in one order demonstrates ordering synthesis.
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	// Command A: deny routes from ext2 at e2. Command B: same at e3.
	// Applying both kills e2 and e3; with e1 still up, reachability holds
	// in every steady state, so any order works.
	mk := func(e, ext topology.NodeID, name string) sim.Command {
		return sim.Command{
			Node: e, Description: name, DeniesOld: true,
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(e, ext, sim.In, func(rm *sim.RouteMap) {
					rm.Add(sim.Entry{Order: 7, Action: sim.Action{Deny: true}})
				})
			},
		}
	}
	cmds := []sim.Command{
		mk(s.E2, s.Ext[1], "deny at e2"),
		mk(s.E3, s.Ext[2], "deny at e3"),
	}
	res, err := snowcap.Synthesize(s.Net, s.Prefix, cmds, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 2 {
		t.Errorf("Order = %v, want 2 commands", res.Order)
	}
}

func TestSynthesizeDetectsImpossible(t *testing.T) {
	// Denying ALL three egresses can satisfy reachability in no final
	// state: synthesis must fail (the final steady state violates).
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	var cmds []sim.Command
	for i, e := range []topology.NodeID{s.E1, s.E2, s.E3} {
		e, ext := e, s.Ext[i]
		cmds = append(cmds, sim.Command{
			Node: e, Description: "deny", DeniesOld: true,
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(e, ext, sim.In, func(rm *sim.RouteMap) {
					rm.Add(sim.Entry{Order: 7, Action: sim.Action{Deny: true}})
				})
			},
		})
	}
	if _, err := snowcap.Synthesize(s.Net, s.Prefix, cmds, sp); !errors.Is(err, snowcap.ErrNoOrdering) {
		t.Fatalf("err = %v, want ErrNoOrdering", err)
	}
}

func TestApplyRejectsUnconverged(t *testing.T) {
	s := scenario.RunningExample()
	s.Net.ScheduleAfter(time.Hour, func(*sim.Network) {})
	if _, err := snowcap.Apply(s.Net, s.Commands, []int{0}, time.Second); err == nil {
		t.Fatal("expected error on unconverged network")
	}
}

func TestApplyBadOrderIndex(t *testing.T) {
	s := scenario.RunningExample()
	if _, err := snowcap.Apply(s.Net, s.Commands, []int{5}, time.Second); err == nil {
		t.Fatal("expected error on out-of-range order")
	}
}
