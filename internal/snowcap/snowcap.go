// Package snowcap implements the Snowcap baseline [28] used throughout the
// paper's comparison: an in-place reconfiguration system that orders
// configuration commands so that every *steady* state between commands
// satisfies the specification — but provides no guarantees about the
// transient states BGP explores while converging after each command. For
// single-command reconfigurations (the paper's §6/§7 scenario) Snowcap
// simply pushes the command to the network.
package snowcap

import (
	"errors"
	"fmt"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/monitor"
	"chameleon/internal/sim"
	"chameleon/internal/spec"
)

// Result describes one Snowcap reconfiguration run.
type Result struct {
	// Start and End bound the reconfiguration in simulated time.
	Start, End time.Duration
	// Order is the command order applied (indices into the input).
	Order []int
	// StatesExplored counts steady states evaluated during synthesis.
	StatesExplored int
	// Timeline, from ApplyMonitored, records the transient invariant
	// violations the steady-state-only ordering cannot see, and
	// ViolationTime is their union duration — the paper's Fig. 1 measure
	// of what Snowcap's guarantees miss.
	Timeline      *monitor.Timeline
	ViolationTime time.Duration
}

// Duration returns the reconfiguration time.
func (r *Result) Duration() time.Duration { return r.End - r.Start }

// ErrNoOrdering is returned when no command ordering yields correct steady
// states (Snowcap's failure mode).
var ErrNoOrdering = errors.New("snowcap: no safe command ordering exists")

// Apply performs the reconfiguration the Snowcap way: commands are pushed
// in the given order, each after the previous one's convergence, with a
// single router-command latency per command. Transient states are left to
// free-running BGP convergence — exactly what Fig. 1 measures.
func Apply(net *sim.Network, cmds []sim.Command, order []int, latency time.Duration) (*Result, error) {
	if !net.Converged() {
		return nil, fmt.Errorf("snowcap: network not converged")
	}
	res := &Result{Start: net.Now(), Order: order}
	for _, idx := range order {
		if idx < 0 || idx >= len(cmds) {
			return nil, fmt.Errorf("snowcap: order index %d out of range", idx)
		}
		cmd := cmds[idx]
		// Root a causal chain per command so transient violations during
		// the free-running convergence are attributed to it.
		cause := net.NewCause(sim.CauseCommand, cmd.Description, cmd.Node)
		net.ScheduleCausedAt(net.Now()+latency, cause, func(n *sim.Network) { cmd.Apply(n) })
		net.Run() // free-running convergence; no transient control
	}
	res.End = net.Now()
	return res, nil
}

// ApplyMonitored is Apply under the transient-state monitor: the monitor
// observes every forwarding snapshot of the free-running convergence after
// each command (anchored on the pre-reconfiguration state of prefix), and
// the result carries the completed violation timeline and its union
// duration. Snowcap's behavior is unchanged — the monitor only measures
// the transient violations the baseline's steady-state checks miss.
func ApplyMonitored(net *sim.Network, prefix bgp.Prefix, cmds []sim.Command, order []int, latency time.Duration, m *monitor.Monitor) (*Result, error) {
	unbind := m.Bind(net)
	defer unbind()
	net.RecordInitialState(prefix)
	res, err := Apply(net, cmds, order, latency)
	if err != nil {
		return nil, err
	}
	tl := m.Finish(net.Now())
	res.Timeline = tl
	res.ViolationTime = tl.TotalViolation()
	return res, nil
}

// Synthesize finds a command ordering whose steady states all satisfy the
// (non-temporal projection of the) specification, by depth-first search
// over orderings with memoization on applied-command sets — a faithful
// miniature of Snowcap's ordering synthesis. The network is not modified.
func Synthesize(net *sim.Network, prefix bgp.Prefix, cmds []sim.Command, sp *spec.Spec) (*Result, error) {
	if len(cmds) == 0 {
		return &Result{}, nil
	}
	res := &Result{}
	seen := make(map[uint64]bool)
	var order []int

	ok := func(n *sim.Network) bool {
		st := n.ForwardingState(prefix)
		// Snowcap checks steady states only: evaluate the spec over the
		// single-state trace.
		return sp.Eval([]fwd.State{st})
	}

	var dfs func(n *sim.Network, applied uint64) bool
	dfs = func(n *sim.Network, applied uint64) bool {
		if applied == (uint64(1)<<len(cmds))-1 {
			return true
		}
		if seen[applied] {
			return false
		}
		seen[applied] = true
		for i := range cmds {
			bit := uint64(1) << i
			if applied&bit != 0 {
				continue
			}
			next := n.Clone()
			cmds[i].Apply(next)
			next.Run()
			res.StatesExplored++
			if !ok(next) {
				continue
			}
			order = append(order, i)
			if dfs(next, applied|bit) {
				return true
			}
			order = order[:len(order)-1]
		}
		return false
	}
	if !ok(net) {
		return nil, fmt.Errorf("snowcap: initial state already violates the specification")
	}
	if !dfs(net, 0) {
		return nil, ErrNoOrdering
	}
	res.Order = append([]int(nil), order...)
	return res, nil
}
