package igp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/topology"
)

// line builds a path graph a0-a1-...-a(n-1) with unit weights.
func line(n int) *topology.Graph {
	g := topology.New("line")
	for i := 0; i < n; i++ {
		g.AddRouter(string(rune('a' + i)))
	}
	for i := 0; i+1 < n; i++ {
		g.AddLink(topology.NodeID(i), topology.NodeID(i+1), 1)
	}
	return g
}

func TestLineDistances(t *testing.T) {
	s := Compute(line(5))
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := float64(j - i)
			if want < 0 {
				want = -want
			}
			if got := s.Dist(topology.NodeID(i), topology.NodeID(j)); got != want {
				t.Errorf("Dist(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestNextHopAndPath(t *testing.T) {
	s := Compute(line(4))
	if nh := s.NextHop(0, 3); nh != 1 {
		t.Errorf("NextHop(0,3) = %d, want 1", nh)
	}
	if nh := s.NextHop(2, 2); nh != 2 {
		t.Errorf("NextHop(2,2) = %d, want 2", nh)
	}
	p := s.Path(0, 3)
	want := []topology.NodeID{0, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("Path(0,3) = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("Path(0,3) = %v, want %v", p, want)
		}
	}
}

func TestShortestPathPicksLighterRoute(t *testing.T) {
	// Triangle where the direct edge is heavier than the detour.
	g := topology.New("tri")
	a, b, c := g.AddRouter("a"), g.AddRouter("b"), g.AddRouter("c")
	g.AddLink(a, c, 10)
	g.AddLink(a, b, 2)
	g.AddLink(b, c, 3)
	s := Compute(g)
	if got := s.Dist(a, c); got != 5 {
		t.Errorf("Dist(a,c) = %v, want 5", got)
	}
	if nh := s.NextHop(a, c); nh != b {
		t.Errorf("NextHop(a,c) = %d, want %d", nh, b)
	}
}

func TestEqualCostTieBreakDeterministic(t *testing.T) {
	// Two equal-cost paths a-b-d and a-c-d: the lower next-hop ID wins.
	g := topology.New("ecmp")
	a, b, c, d := g.AddRouter("a"), g.AddRouter("b"), g.AddRouter("c"), g.AddRouter("d")
	g.AddLink(a, b, 1)
	g.AddLink(a, c, 1)
	g.AddLink(b, d, 1)
	g.AddLink(c, d, 1)
	s := Compute(g)
	if nh := s.NextHop(a, d); nh != b {
		t.Errorf("NextHop(a,d) = %d, want %d (lowest-ID tie-break)", nh, b)
	}
	_ = c
}

func TestLinkFailureAndRestore(t *testing.T) {
	g := topology.New("ring")
	a, b, c := g.AddRouter("a"), g.AddRouter("b"), g.AddRouter("c")
	g.AddLink(a, b, 1)
	g.AddLink(b, c, 1)
	g.AddLink(a, c, 5)
	s := Compute(g)
	if got := s.Dist(a, c); got != 2 {
		t.Fatalf("Dist(a,c) = %v, want 2", got)
	}
	if !s.FailLink(a, b) {
		t.Fatal("FailLink(a,b) should succeed")
	}
	s.Recompute()
	if got := s.Dist(a, c); got != 5 {
		t.Errorf("after failure Dist(a,c) = %v, want 5", got)
	}
	if nh := s.NextHop(a, b); nh != c {
		t.Errorf("after failure NextHop(a,b) = %d, want %d", nh, c)
	}
	if !s.RestoreLink(a, b) {
		t.Fatal("RestoreLink should succeed")
	}
	s.Recompute()
	if got := s.Dist(a, c); got != 2 {
		t.Errorf("after restore Dist(a,c) = %v, want 2", got)
	}
	if s.FailedLinks() != 0 {
		t.Errorf("FailedLinks = %d, want 0", s.FailedLinks())
	}
}

func TestFailUnknownLink(t *testing.T) {
	s := Compute(line(3))
	if s.FailLink(0, 2) {
		t.Error("FailLink on non-adjacent nodes must return false")
	}
}

func TestDisconnection(t *testing.T) {
	s := Compute(line(3))
	s.FailLink(0, 1)
	s.Recompute()
	if s.Reachable(0, 2) {
		t.Error("0 must be unreachable from 2 after cut")
	}
	if s.Dist(0, 2) != Infinity {
		t.Error("Dist should be Infinity when disconnected")
	}
	if s.Path(0, 2) != nil {
		t.Error("Path should be nil when disconnected")
	}
	if nh := s.NextHop(0, 2); nh != topology.None {
		t.Errorf("NextHop = %d, want None", nh)
	}
}

// TestTriangleInequality is a property test: Dijkstra distances satisfy
// d(a,c) <= d(a,b) + d(b,c) on random connected graphs.
func TestTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%20) + 3
		g := topology.Synthetic("prop", n, seed)
		s := Compute(g)
		rng := rand.New(rand.NewPCG(seed, 1))
		for k := 0; k < 30; k++ {
			a := topology.NodeID(rng.IntN(n))
			b := topology.NodeID(rng.IntN(n))
			c := topology.NodeID(rng.IntN(n))
			if s.Dist(a, c) > s.Dist(a, b)+s.Dist(b, c)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPathConsistency: walking NextHop from a towards b yields a path whose
// length matches Dist and which ends at b.
func TestPathConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%25) + 2
		g := topology.Synthetic("prop", n, seed)
		s := Compute(g)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				p := s.Path(topology.NodeID(a), topology.NodeID(b))
				if p == nil {
					return false // synthetic graphs are connected
				}
				var total float64
				for i := 0; i+1 < len(p); i++ {
					l, ok := g.LinkBetween(p[i], p[i+1])
					if !ok {
						return false
					}
					total += l.Weight
				}
				if total != s.Dist(topology.NodeID(a), topology.NodeID(b)) {
					return false
				}
				if p[len(p)-1] != topology.NodeID(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
