// Package igp implements the intra-domain routing substrate (an OSPF-like
// link-state protocol, cf. RFC 2328) that BGP relies on: shortest-path
// computation over the weighted topology, next-hop resolution towards BGP
// egress routers, and link failure with reconvergence.
//
// The paper's testbed runs OSPF below iBGP (§6); forwarding towards a BGP
// egress follows the IGP shortest path, and the BGP decision process breaks
// ties on IGP cost. Both uses are served by this package.
package igp

import (
	"container/heap"
	"math"

	"chameleon/internal/topology"
)

// Infinity is the distance reported between disconnected nodes.
const Infinity = math.MaxFloat64

// SPF holds all-pairs shortest-path state for a topology. It supports
// failing and restoring links, after which Recompute must be called.
// SPF is not safe for concurrent mutation; concurrent reads are fine.
type SPF struct {
	g      *topology.Graph
	failed map[int]bool // indices into g.Links()
	dist   [][]float64
	next   [][]topology.NodeID // next[a][b]: first hop on the best a->b path
}

// Compute builds the all-pairs shortest-path state for g.
func Compute(g *topology.Graph) *SPF {
	s := &SPF{g: g, failed: make(map[int]bool)}
	s.Recompute()
	return s
}

// Graph returns the underlying topology.
func (s *SPF) Graph() *topology.Graph { return s.g }

// FailLink marks the (first) link between a and b as failed. It returns
// false if no such link exists. Recompute must be called afterwards.
func (s *SPF) FailLink(a, b topology.NodeID) bool {
	return s.setLink(a, b, true)
}

// RestoreLink clears the failure of the (first) link between a and b.
func (s *SPF) RestoreLink(a, b topology.NodeID) bool {
	return s.setLink(a, b, false)
}

func (s *SPF) setLink(a, b topology.NodeID, down bool) bool {
	for _, li := range s.g.IncidentLinks(a) {
		l := s.g.Links()[li]
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			if down {
				s.failed[li] = true
			} else {
				delete(s.failed, li)
			}
			return true
		}
	}
	return false
}

// FailedLinks returns the number of currently failed links.
func (s *SPF) FailedLinks() int { return len(s.failed) }

// Recompute re-runs Dijkstra from every node, honoring failed links.
// Ties between equal-cost paths are broken deterministically towards the
// lowest next-hop ID, mirroring a router's deterministic ECMP-free FIB.
func (s *SPF) Recompute() {
	n := s.g.NumNodes()
	s.dist = make([][]float64, n)
	s.next = make([][]topology.NodeID, n)
	for src := 0; src < n; src++ {
		s.dist[src], s.next[src] = s.dijkstra(topology.NodeID(src))
	}
}

type pqItem struct {
	node topology.NodeID
	dist float64
}

type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].node < p[j].node
}
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

func (s *SPF) dijkstra(src topology.NodeID) ([]float64, []topology.NodeID) {
	n := s.g.NumNodes()
	dist := make([]float64, n)
	first := make([]topology.NodeID, n) // first hop from src
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Infinity
		first[i] = topology.None
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, li := range s.g.IncidentLinks(u) {
			if s.failed[li] {
				continue
			}
			l := s.g.Links()[li]
			v := l.B
			if v == u {
				v = l.A
			}
			nd := dist[u] + l.Weight
			hop := first[u]
			if u == src {
				hop = v
			}
			better := nd < dist[v] ||
				(nd == dist[v] && first[v] != topology.None && hop < first[v])
			if better {
				dist[v] = nd
				first[v] = hop
				heap.Push(q, pqItem{v, nd})
			}
		}
	}
	return dist, first
}

// Dist returns the shortest-path distance from a to b (Infinity if
// disconnected).
func (s *SPF) Dist(a, b topology.NodeID) float64 { return s.dist[a][b] }

// NextHop returns the first hop on the shortest path from a to b, or
// topology.None if b is unreachable from a. NextHop(a, a) returns a.
func (s *SPF) NextHop(a, b topology.NodeID) topology.NodeID {
	if a == b {
		return a
	}
	return s.next[a][b]
}

// Path returns the full node sequence of the shortest path from a to b,
// inclusive of both endpoints, or nil if unreachable.
func (s *SPF) Path(a, b topology.NodeID) []topology.NodeID {
	if s.dist[a][b] == Infinity {
		return nil
	}
	path := []topology.NodeID{a}
	cur := a
	for cur != b {
		nxt := s.NextHop(cur, b)
		if nxt == topology.None || nxt == cur {
			return nil
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > s.g.NumNodes()+1 {
			return nil // defensive: should be impossible with consistent state
		}
	}
	return path
}

// Reachable reports whether b is reachable from a.
func (s *SPF) Reachable(a, b topology.NodeID) bool { return s.dist[a][b] < Infinity }
