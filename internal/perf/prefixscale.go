package perf

import (
	"context"
	"fmt"

	"chameleon/internal/bgp"
	"chameleon/internal/obs"
	"chameleon/internal/scenario"
)

// Prefix-scale workloads: the §7 regime where the reconfigured network
// carries Internet-scale tables, not the handful of prefixes of the case
// studies. Two axes are measured:
//
//   - whatif-100k-{map,cow}: the table-engine A/B. Setup converges a
//     100k-prefix storm once; the op is a what-if probe — Clone the
//     network, withdraw one prefix, re-converge the clone. The map engine
//     pays a full deep copy of every table per probe; the COW engine pays
//     an O(1) snapshot plus path copies along the one touched prefix. This
//     pair is the acceptance gauge for the COW engine (time and bytes per
//     op at 100k prefixes).
//
//   - storm-10k-{routes,batched}: the injection-path A/B on the COW
//     engine. The op is the full build+convergence of a 10k-prefix storm,
//     either route-by-route (one message per route per session) or batched
//     (one message per session carrying the storm). The message-count
//     counters make the reduction machine-independent.
const (
	whatIfPrefixes = 100_000
	stormPrefixes  = 10_000
)

// whatIfBench builds a converged storm of n prefixes on the given engine
// once (shared across reps), then measures clone-probe-reconverge. The op
// cycles through prefixes so no iteration resumes a previously mutated
// clone, and it cross-checks that the probe never leaks into the base
// network — an isolation bug would otherwise masquerade as a speedup.
func whatIfBench(kind bgp.TableKind, n int) func() (Fn, error) {
	return func() (Fn, error) {
		st, err := scenario.BuildStorm(scenario.StormConfig{
			Prefixes: n, RIB: kind, Seed: suiteSeed, Batched: true,
		})
		if err != nil {
			return nil, err
		}
		if got := st.Net.TableEntries(); got < n {
			return nil, fmt.Errorf("storm under-converged: %d table entries < %d prefixes", got, n)
		}
		i := 0
		return func(ctx context.Context) error {
			p := st.Prefixes[i%len(st.Prefixes)]
			i++
			c := st.Net.Clone()
			c.SetRecorder(obs.RecorderFrom(ctx))
			c.WithdrawExternalRoute(st.Ext, p)
			c.Run()
			if _, ok := c.Best(st.Border, p); ok {
				return fmt.Errorf("prefix %d still routed in the clone after withdraw", p)
			}
			if _, ok := st.Net.Best(st.Border, p); !ok {
				return fmt.Errorf("what-if probe of prefix %d leaked into the base network", p)
			}
			return nil
		}, nil
	}
}

// stormBench measures BuildStorm end to end (topology, sessions, storm
// injection, convergence) on the COW engine, with the injection mode as
// the variable. Rebuilt every iteration: convergence is the op.
func stormBench(n int, batched bool) func() (Fn, error) {
	return func() (Fn, error) {
		return func(ctx context.Context) error {
			st, err := scenario.BuildStorm(scenario.StormConfig{
				Prefixes: n, RIB: bgp.TableCOW, Seed: suiteSeed, Batched: batched,
				Recorder: obs.RecorderFrom(ctx),
			})
			if err != nil {
				return err
			}
			if got := st.Net.TableEntries(); got < n {
				return fmt.Errorf("storm under-converged: %d table entries < %d prefixes", got, n)
			}
			return nil
		}, nil
	}
}
