package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Schema identifies the BENCH file format.
const Schema = "chameleon/bench/v1"

// File is the on-disk benchmark trajectory point: one suite run on one
// machine at one commit. Two Files compare cleanly iff their Schema and
// SuiteVersion match.
type File struct {
	Schema       string `json:"schema"`
	SuiteVersion int    `json:"suite_version"`
	GoVersion    string `json:"go_version"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`

	Config struct {
		Warmup        int   `json:"warmup"`
		Reps          int   `json:"reps"`
		MinDurationNS int64 `json:"min_duration_ns"`
		Cost          bool  `json:"cost"`
	} `json:"config"`

	Benchmarks []Result `json:"benchmarks"`
}

// NewFile wraps results in the versioned envelope, stamping the toolchain.
func NewFile(results []Result, cfg Config) *File {
	cfg = cfg.withDefaults()
	f := &File{
		Schema:       Schema,
		SuiteVersion: SuiteVersion,
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		Benchmarks:   results,
	}
	f.Config.Warmup = cfg.Warmup
	f.Config.Reps = cfg.Reps
	f.Config.MinDurationNS = int64(cfg.MinDuration / time.Nanosecond)
	f.Config.Cost = cfg.Cost
	return f
}

// Write serializes the file as indented JSON (stable field order, so diffs
// of committed baselines stay reviewable).
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadFile parses and validates a BENCH file.
func ReadFile(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("perf: parsing bench file: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("perf: unknown schema %q (want %q)", f.Schema, Schema)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("perf: bench file has no benchmarks")
	}
	for _, b := range f.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("perf: bench file has an unnamed benchmark")
		}
	}
	return &f, nil
}
