package perf

import (
	"context"
	"fmt"

	"chameleon"
	"chameleon/internal/analyzer"
	"chameleon/internal/bgp"
	"chameleon/internal/chaos"
	"chameleon/internal/eval"
	"chameleon/internal/obs"
	"chameleon/internal/plan"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
)

// SuiteVersion stamps the BENCH JSON. Bump it whenever an existing
// workload's definition changes, so -compare refuses to diff incomparable
// trajectories; adding new benchmarks needs no bump — Compare reports
// additions as OnlyNew instead of diffing them.
const SuiteVersion = 1

// suiteSeed pins every workload to the evaluation's canonical seed; the
// suite measures fixed scenarios, not seed distributions.
const suiteSeed = 7

// DefaultSuite returns the curated macro-benchmark suite. Each entry is an
// end-to-end workload from the paper's pipeline, sized to finish a
// repetition in well under a second on a laptop:
//
//   - analyzer/abilene       — happens-before extraction on the Abilene case study
//   - schedule/abilene       — ILP scheduling under the deterministic node budget
//   - schedule/classes       — class-decomposed facade planning of a
//     multi-prefix Abilene scenario (one schedule per equivalence class)
//   - schedule/classes-mono  — the monolithic baseline: every prefix of the
//     same scenario analyzed, scheduled and compiled independently
//   - sim-convergence/aarnet — raw simulator convergence of the Aarnet scenario
//   - plan-execute/…         — the full facade Plan+Execute on three case studies
//   - chaos/smoke            — one fault-injected execution with recovery
//   - prefix-scale/…         — 100k-prefix what-if probes (map vs COW table
//     engine) and 10k-prefix storm convergence (route-by-route vs batched
//     injection); see prefixscale.go
//
// All workloads are seeded and deterministic, so their domain counters
// (solver nodes, sim events, BGP messages) repeat exactly; only wall time
// and allocation figures vary between runs.
func DefaultSuite() []Benchmark {
	return []Benchmark{
		{Name: "analyzer/abilene", Setup: analyzerBench("Abilene")},
		{Name: "schedule/abilene", Setup: scheduleBench("Abilene")},
		{Name: "schedule/classes", Setup: classesBench("Abilene")},
		{Name: "schedule/classes-mono", Setup: classesMonoBench("Abilene")},
		{Name: "sim-convergence/aarnet", Setup: convergenceBench("Aarnet")},
		{Name: "plan-execute/abilene", Setup: planExecuteBench("Abilene")},
		{Name: "plan-execute/compuserve", Setup: planExecuteBench("Compuserve")},
		{Name: "plan-execute/eenet", Setup: planExecuteBench("EEnet")},
		{Name: "chaos/smoke", Setup: chaosBench("Abilene")},
		{Name: "prefix-scale/whatif-100k-map", Setup: whatIfBench(bgp.TableMap, whatIfPrefixes)},
		{Name: "prefix-scale/whatif-100k-cow", Setup: whatIfBench(bgp.TableCOW, whatIfPrefixes)},
		{Name: "prefix-scale/storm-10k-routes", Setup: stormBench(stormPrefixes, false)},
		{Name: "prefix-scale/storm-10k-batched", Setup: stormBench(stormPrefixes, true)},
	}
}

// classesExtraPrefixes sizes the multi-class scheduling workloads: three
// extra prefixes partition the case study into three equivalence classes
// (one shared with the base prefix, two singletons).
const classesExtraPrefixes = 3

// classesBench measures the class-decomposed planning pipeline on a
// multi-prefix scenario: partition into equivalence classes, one
// analyze → schedule per class with its budget slice, per-member
// compilation, and the aligned MultiPlan stitch. Planning is pure, so the
// scenario is shared across reps.
func classesBench(topo string) func() (Fn, error) {
	return func() (Fn, error) {
		s, err := scenario.CaseStudy(topo, scenario.Config{
			Seed: suiteSeed, ExtraPrefixes: classesExtraPrefixes,
		})
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) error {
			_, err := chameleon.PlanCtx(ctx, s, chameleon.PlanOptions{})
			return err
		}, nil
	}
}

// classesMonoBench is the monolithic baseline for classesBench: the same
// multi-prefix scenario, but every prefix analyzed, scheduled (full
// default budget) and compiled independently — no equivalence-class reuse
// — then aligned. The gap between the two medians is what the §3 class
// decomposition buys.
func classesMonoBench(topo string) func() (Fn, error) {
	return func() (Fn, error) {
		s, err := scenario.CaseStudy(topo, scenario.Config{
			Seed: suiteSeed, ExtraPrefixes: classesExtraPrefixes,
		})
		if err != nil {
			return nil, err
		}
		sp := eval.ReachabilitySpec(s.Graph)
		return func(ctx context.Context) error {
			final := s.FinalNetwork()
			var all []*plan.Plan
			for _, p := range s.AllPrefixes() {
				a, err := analyzer.AnalyzeCtx(ctx, s.Net, final, p)
				if err != nil {
					return err
				}
				sched, err := scheduler.ScheduleCtx(ctx, a, sp, scheduler.DefaultOptions())
				if err != nil {
					return err
				}
				pl, err := plan.Compile(a, sched, s.Commands)
				if err != nil {
					return err
				}
				all = append(all, pl)
			}
			_, err := plan.Align(all, s.Commands)
			return err
		}, nil
	}
}

// analyzerBench measures analyzer.AnalyzeCtx on a prebuilt scenario (the
// analysis is pure, so the converged networks are shared across reps).
func analyzerBench(topo string) func() (Fn, error) {
	return func() (Fn, error) {
		s, err := scenario.CaseStudy(topo, scenario.Config{Seed: suiteSeed})
		if err != nil {
			return nil, err
		}
		final := s.FinalNetwork()
		return func(ctx context.Context) error {
			_, err := analyzer.AnalyzeCtx(ctx, s.Net, final, s.Prefix)
			return err
		}, nil
	}
}

// scheduleBench measures scheduler.ScheduleCtx on a prebuilt analysis with
// the deterministic node budget, so solver effort per op is exact.
func scheduleBench(topo string) func() (Fn, error) {
	return func() (Fn, error) {
		s, err := scenario.CaseStudy(topo, scenario.Config{Seed: suiteSeed})
		if err != nil {
			return nil, err
		}
		a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
		if err != nil {
			return nil, err
		}
		sp := eval.ReachabilitySpec(s.Graph)
		opts := scheduler.DefaultOptions()
		opts.SolverNodeBudget = scheduler.DeterministicNodeBudget
		return func(ctx context.Context) error {
			_, err := scheduler.ScheduleCtx(ctx, a, sp, opts)
			return err
		}, nil
	}
}

// convergenceBench measures scenario construction + initial BGP
// convergence; the context's recorder is attached to the network, so sim
// event and message counters attribute to the op.
func convergenceBench(topo string) func() (Fn, error) {
	return func() (Fn, error) {
		return func(ctx context.Context) error {
			_, err := scenario.CaseStudy(topo, scenario.Config{
				Seed:     suiteSeed,
				Recorder: obs.RecorderFrom(ctx),
			})
			return err
		}, nil
	}
}

// planExecuteBench measures the whole facade pipeline — scenario build,
// analyze, schedule, compile, execute, verify — which is what a user of
// the library pays end to end. The scenario is rebuilt every iteration
// because execution mutates its network.
func planExecuteBench(topo string) func() (Fn, error) {
	return func() (Fn, error) {
		return func(ctx context.Context) error {
			s, err := scenario.CaseStudy(topo, scenario.Config{Seed: suiteSeed})
			if err != nil {
				return err
			}
			rec, err := chameleon.PlanCtx(ctx, s, chameleon.PlanOptions{})
			if err != nil {
				return err
			}
			res, err := rec.ExecuteCtx(ctx, chameleon.ExecOptions{})
			if err != nil {
				return err
			}
			return rec.Verify(res)
		}, nil
	}
}

// chaosBench measures one fault-injected case (message drops) including
// the recovery ladder, via the chaos harness's single-case entry point.
func chaosBench(topo string) func() (Fn, error) {
	return func() (Fn, error) {
		return func(ctx context.Context) error {
			r, err := chaos.RunCaseCtx(ctx, chaos.Case{
				Topology: topo, Fault: sim.FaultDrop, Seed: 1,
			})
			if err != nil {
				return err
			}
			if r.Outcome == chaos.OutcomeViolation {
				return fmt.Errorf("chaos case violated invariants")
			}
			return nil
		}, nil
	}
}
