// Package perf is the macro-benchmark trajectory harness: a curated suite
// of end-to-end workloads (analysis, scheduling, simulator convergence,
// full plan+execute, chaos) measured with warmup, repetition and
// minimum-duration control, summarized robustly (median + MAD, so a single
// GC pause or scheduler hiccup cannot masquerade as a regression), and
// serialized to a machine-readable JSON file that cmd/benchrunner diffs
// across commits with a noise-aware threshold.
//
// The harness reports three kinds of cost per benchmark:
//
//   - wall time per operation (the only machine-dependent axis),
//   - heap allocations and bytes per operation, and
//   - domain counters per operation (solver nodes, simulator events, BGP
//     messages — obs counters, machine-independent by construction),
//
// plus a flame digest: the top self-time paths from the obs span cost
// attribution, so a regression report says not only "plan-execute got 20%
// slower" but also which phase's self-time moved.
package perf

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"chameleon/internal/obs"
)

// Fn is one benchmark operation. It runs against a context carrying a
// fresh per-repetition obs.Recorder; domain counters the operation (or the
// code it calls) records there become per-op counter metrics.
type Fn func(ctx context.Context) error

// Benchmark is one named workload. Setup builds whatever state every
// repetition shares (topologies, converged networks, analyses) and returns
// the operation; setup cost is excluded from measurement.
type Benchmark struct {
	Name  string
	Setup func() (Fn, error)
}

// Config tunes a Run.
type Config struct {
	// Warmup repetitions run and are discarded (default 1).
	Warmup int
	// Reps is how many measured repetitions each benchmark gets
	// (default 5). Medians want odd counts.
	Reps int
	// MinDuration makes each repetition loop the operation until this much
	// wall time has elapsed (default: a single iteration per repetition).
	// Per-op figures divide by the iteration count.
	MinDuration time.Duration
	// Filter keeps only benchmarks whose name contains the substring.
	Filter string
	// Cost enables span cost attribution on the per-repetition recorders,
	// feeding the flame digest. Off by default: ReadMemStats at every span
	// boundary is itself a cost.
	Cost bool
	// TopK bounds the flame digest (default 5).
	TopK int
	// Observer, when non-nil, sees every measured repetition's recorder
	// right after it completes (live metrics endpoints hang off this).
	Observer func(bench string, rep int, rec *obs.Recorder)
}

func (c Config) withDefaults() Config {
	if c.Warmup == 0 {
		c.Warmup = 1
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
	return c
}

// Dist is a robust summary of per-op samples across repetitions: the
// median, the median absolute deviation, and the samples themselves (so a
// later comparison can re-derive anything).
type Dist struct {
	Median  float64   `json:"median"`
	MAD     float64   `json:"mad"`
	Samples []float64 `json:"samples"`
}

// FlameEntry is one row of the flame digest: a span path and its median
// per-op self time across repetitions.
type FlameEntry struct {
	Path         string  `json:"path"`
	SelfNSPerOp  float64 `json:"self_ns_per_op"`
	TotalNSPerOp float64 `json:"total_ns_per_op"`
}

// Result is one benchmark's measurement.
type Result struct {
	Name string `json:"name"`
	// Reps and Iters record the shape of the measurement: how many
	// repetitions ran and how many operations each looped.
	Reps  int   `json:"reps"`
	Iters []int `json:"iters"`

	TimeNSPerOp Dist `json:"time_ns_per_op"`
	AllocsPerOp Dist `json:"allocs_per_op"`
	BytesPerOp  Dist `json:"bytes_per_op"`

	// Counters maps obs counter names to per-op distributions. For the
	// deterministic workloads these have MAD 0 by construction.
	Counters map[string]Dist `json:"counters,omitempty"`

	// Flame is the top-self-time digest (present only when Config.Cost).
	Flame []FlameEntry `json:"flame,omitempty"`
}

// Run measures every benchmark in the suite under cfg, in suite order.
// A benchmark whose Setup or Fn errors aborts the run: a benchmark that
// cannot run is a broken build, not a data point.
func Run(ctx context.Context, suite []Benchmark, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	var out []Result
	for _, b := range suite {
		if cfg.Filter != "" && !contains(b.Name, cfg.Filter) {
			continue
		}
		r, err := runOne(ctx, b, cfg)
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", b.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func runOne(ctx context.Context, b Benchmark, cfg Config) (Result, error) {
	fn, err := b.Setup()
	if err != nil {
		return Result{}, fmt.Errorf("setup: %w", err)
	}
	res := Result{Name: b.Name, Reps: cfg.Reps}

	for w := 0; w < cfg.Warmup; w++ {
		if _, _, err := oneRep(ctx, fn, cfg, nil); err != nil {
			return Result{}, fmt.Errorf("warmup: %w", err)
		}
	}

	var times, allocs, bts []float64
	counters := map[string][]float64{}
	flames := map[string][]FlameEntry{} // per-rep entries keyed by path
	flameOrder := []string{}
	for rep := 0; rep < cfg.Reps; rep++ {
		rec := obs.New()
		if cfg.Cost {
			rec.EnableCostAttribution()
		}
		m, iters, err := oneRep(ctx, fn, cfg, rec)
		if err != nil {
			return Result{}, err
		}
		res.Iters = append(res.Iters, iters)
		n := float64(iters)
		times = append(times, float64(m.ns)/n)
		allocs = append(allocs, float64(m.mallocs)/n)
		bts = append(bts, float64(m.bytes)/n)
		for name, v := range rec.Counters() {
			counters[name] = append(counters[name], float64(v)/n)
		}
		if cfg.Cost {
			paths, _ := rec.CostSummary()
			for _, p := range obs.TopSelf(paths, cfg.TopK) {
				if _, seen := flames[p.Path]; !seen {
					flameOrder = append(flameOrder, p.Path)
				}
				flames[p.Path] = append(flames[p.Path], FlameEntry{
					Path:         p.Path,
					SelfNSPerOp:  float64(p.SelfWallNS) / n,
					TotalNSPerOp: float64(p.WallNS) / n,
				})
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(b.Name, rep, rec)
		}
	}

	res.TimeNSPerOp = summarize(times)
	res.AllocsPerOp = summarize(allocs)
	res.BytesPerOp = summarize(bts)
	if len(counters) > 0 {
		res.Counters = map[string]Dist{}
		for name, samples := range counters {
			res.Counters[name] = summarize(samples)
		}
	}
	// Digest: median per-path self time over the reps that surfaced the
	// path, ranked by that median, capped at TopK.
	if cfg.Cost {
		for _, path := range flameOrder {
			es := flames[path]
			self := make([]float64, len(es))
			total := make([]float64, len(es))
			for i, e := range es {
				self[i], total[i] = e.SelfNSPerOp, e.TotalNSPerOp
			}
			res.Flame = append(res.Flame, FlameEntry{
				Path:         path,
				SelfNSPerOp:  median(self),
				TotalNSPerOp: median(total),
			})
		}
		sort.SliceStable(res.Flame, func(i, j int) bool {
			if res.Flame[i].SelfNSPerOp != res.Flame[j].SelfNSPerOp {
				return res.Flame[i].SelfNSPerOp > res.Flame[j].SelfNSPerOp
			}
			return res.Flame[i].Path < res.Flame[j].Path
		})
		if len(res.Flame) > cfg.TopK {
			res.Flame = res.Flame[:cfg.TopK]
		}
	}
	return res, nil
}

type repMeasure struct {
	ns      int64
	mallocs int64
	bytes   int64
}

// oneRep loops fn until MinDuration has elapsed (at least once), measuring
// wall time and allocation deltas around the whole loop. rec, when
// non-nil, is carried to fn through the context.
func oneRep(ctx context.Context, fn Fn, cfg Config, rec *obs.Recorder) (repMeasure, int, error) {
	rctx := obs.WithRecorder(ctx, rec)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for {
		if err := fn(rctx); err != nil {
			return repMeasure{}, 0, err
		}
		iters++
		if time.Since(start) >= cfg.MinDuration {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return repMeasure{
		ns:      elapsed.Nanoseconds(),
		mallocs: int64(after.Mallocs - before.Mallocs),
		bytes:   int64(after.TotalAlloc - before.TotalAlloc),
	}, iters, nil
}

// summarize computes the median + MAD of samples (both 0 for empty input).
// The MAD is reported raw (unscaled): the comparison only ever uses it
// relative to another MAD from the same estimator.
func summarize(samples []float64) Dist {
	d := Dist{Samples: samples}
	d.Median = median(samples)
	if len(samples) > 0 {
		dev := make([]float64, len(samples))
		for i, s := range samples {
			dev[i] = math.Abs(s - d.Median)
		}
		d.MAD = median(dev)
	}
	return d
}

func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
