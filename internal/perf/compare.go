package perf

import (
	"fmt"
	"io"
)

// CompareOptions tune regression detection.
type CompareOptions struct {
	// Threshold is the base relative slowdown tolerated before a
	// time-per-op increase counts as a regression (default 0.10 = 10%).
	Threshold float64
	// NoiseK widens the threshold by K·(oldMAD+newMAD)/oldMedian: a
	// benchmark that was noisy in either run must move further before it
	// is believed (default 3).
	NoiseK float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.10
	}
	if o.NoiseK == 0 {
		o.NoiseK = 3
	}
	return o
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name      string
	OldMedian float64 // ns/op
	NewMedian float64
	// Ratio is new/old (1.0 = unchanged; 0 when the old median is 0).
	Ratio float64
	// Threshold is the noise-aware relative tolerance this pair was held
	// to (base threshold widened by the runs' MADs).
	Threshold float64
	// Regressed means the new median exceeds the old beyond Threshold.
	Regressed bool
	// CounterDrift names domain counters whose medians changed at all:
	// the workloads are deterministic, so any drift means the work itself
	// changed, not the machine. Informational, never a regression by
	// itself.
	CounterDrift []string
}

// Report is a full comparison of two BENCH files.
type Report struct {
	Deltas []Delta
	// OnlyOld / OnlyNew name benchmarks present in one file but not the
	// other (suite drift).
	OnlyOld, OnlyNew []string
	// Mismatch is non-empty when the files are not comparable at all
	// (schema or suite version drift); no Deltas are computed then.
	Mismatch string
}

// Regressions counts regressed deltas.
func (r *Report) Regressions() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

// Compare diffs two trajectory points benchmark by benchmark. Only
// time-per-op gates: allocation and counter movement is reported but the
// machine-dependent wall clock is what the trajectory tracks.
func Compare(old, new *File, opts CompareOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{}
	if old.SuiteVersion != new.SuiteVersion {
		rep.Mismatch = fmt.Sprintf("suite version %d vs %d — regenerate the baseline", old.SuiteVersion, new.SuiteVersion)
		return rep
	}
	oldBy := map[string]Result{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]Result{}
	for _, b := range new.Benchmarks {
		newBy[b.Name] = b
	}
	for _, ob := range old.Benchmarks {
		if _, ok := newBy[ob.Name]; !ok {
			rep.OnlyOld = append(rep.OnlyOld, ob.Name)
		}
	}
	for _, nb := range new.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, nb.Name)
			continue
		}
		d := Delta{
			Name:      nb.Name,
			OldMedian: ob.TimeNSPerOp.Median,
			NewMedian: nb.TimeNSPerOp.Median,
			Threshold: opts.Threshold,
		}
		if d.OldMedian > 0 {
			d.Ratio = d.NewMedian / d.OldMedian
			noise := opts.NoiseK * (ob.TimeNSPerOp.MAD + nb.TimeNSPerOp.MAD) / d.OldMedian
			if noise > 0 && d.Threshold < noise {
				d.Threshold = noise
			}
			d.Regressed = d.NewMedian > d.OldMedian*(1+d.Threshold)
		}
		for _, name := range sortedCounterNames(ob, nb) {
			if ob.Counters[name].Median != nb.Counters[name].Median {
				d.CounterDrift = append(d.CounterDrift, name)
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep
}

func sortedCounterNames(a, b Result) []string {
	seen := map[string]bool{}
	var names []string
	add := func(m map[string]Dist) {
		for name := range m {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	add(a.Counters)
	add(b.Counters)
	// Insertion order over two maps is random; sort for stable reports.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// WriteText renders the report for humans, one line per benchmark.
func (r *Report) WriteText(w io.Writer) {
	if r.Mismatch != "" {
		fmt.Fprintf(w, "incomparable: %s\n", r.Mismatch)
		return
	}
	for _, d := range r.Deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSION"
		}
		fmt.Fprintf(w, "%-26s %12.0f → %12.0f ns/op  (%5.2fx, tol %4.1f%%)  %s",
			d.Name, d.OldMedian, d.NewMedian, d.Ratio, 100*d.Threshold, status)
		if len(d.CounterDrift) > 0 {
			fmt.Fprintf(w, "  [counters drifted: %v]", d.CounterDrift)
		}
		fmt.Fprintln(w)
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(w, "%-26s missing from new run\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(w, "%-26s new benchmark (no baseline)\n", name)
	}
	fmt.Fprintf(w, "%d benchmark(s) compared, %d regression(s)\n", len(r.Deltas), r.Regressions())
}
