package perf

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"chameleon/internal/obs"
)

// fakeSuite returns a suite of trivial operations with deterministic
// domain counters, so harness mechanics are testable without running the
// real pipeline.
func fakeSuite(calls *int) []Benchmark {
	return []Benchmark{
		{Name: "fast/op", Setup: func() (Fn, error) {
			return func(ctx context.Context) error {
				*calls++
				obs.RecorderFrom(ctx).Add(obs.CtrMILPNodes, 3)
				return nil
			}, nil
		}},
		{Name: "slow/op", Setup: func() (Fn, error) {
			return func(ctx context.Context) error {
				time.Sleep(100 * time.Microsecond)
				return nil
			}, nil
		}},
	}
}

func TestRunShapesAndCounters(t *testing.T) {
	calls := 0
	results, err := Run(context.Background(), fakeSuite(&calls), Config{Warmup: 1, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "fast/op" || r.Reps != 3 || len(r.Iters) != 3 {
		t.Fatalf("unexpected shape: %+v", r)
	}
	// 1 warmup + 3 reps, one iteration each (MinDuration 0).
	if calls != 4 {
		t.Errorf("fn called %d times, want 4", calls)
	}
	d, ok := r.Counters[obs.CtrMILPNodes]
	if !ok {
		t.Fatalf("counter missing from result: %+v", r.Counters)
	}
	if d.Median != 3 || d.MAD != 0 {
		t.Errorf("deterministic counter: median=%v mad=%v, want 3/0", d.Median, d.MAD)
	}
	if results[1].TimeNSPerOp.Median < float64(50*time.Microsecond) {
		t.Errorf("slow op measured implausibly fast: %v ns", results[1].TimeNSPerOp.Median)
	}
}

func TestRunMinDurationLoops(t *testing.T) {
	calls := 0
	results, err := Run(context.Background(), fakeSuite(&calls)[:1], Config{
		Warmup: 0, Reps: 1, MinDuration: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if iters := results[0].Iters[0]; iters < 2 {
		t.Errorf("MinDuration produced only %d iteration(s)", iters)
	}
	// Counters stay per-op despite looping.
	if m := results[0].Counters[obs.CtrMILPNodes].Median; m != 3 {
		t.Errorf("per-op counter = %v, want 3", m)
	}
}

func TestRunFilterAndError(t *testing.T) {
	calls := 0
	results, err := Run(context.Background(), fakeSuite(&calls), Config{Filter: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "slow/op" {
		t.Fatalf("filter failed: %+v", results)
	}
	boom := errors.New("boom")
	_, err = Run(context.Background(), []Benchmark{{
		Name:  "bad/op",
		Setup: func() (Fn, error) { return func(context.Context) error { return boom }, nil },
	}}, Config{})
	if !errors.Is(err, boom) {
		t.Fatalf("benchmark error not surfaced: %v", err)
	}
}

func TestMedianAndMAD(t *testing.T) {
	d := summarize([]float64{1, 100, 3, 2, 4})
	if d.Median != 3 {
		t.Errorf("median = %v, want 3 (robust to the 100 outlier)", d.Median)
	}
	if d.MAD != 1 {
		t.Errorf("mad = %v, want 1", d.MAD)
	}
	if even := median([]float64{1, 2, 3, 4}); even != 2.5 {
		t.Errorf("even median = %v, want 2.5", even)
	}
}

func TestFileRoundTripAndValidation(t *testing.T) {
	results := []Result{{Name: "x", Reps: 1, Iters: []int{1},
		TimeNSPerOp: Dist{Median: 10, Samples: []float64{10}}}}
	f := NewFile(results, Config{})
	var b bytes.Buffer
	if err := f.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.SuiteVersion != SuiteVersion || len(got.Benchmarks) != 1 {
		t.Fatalf("round trip mangled file: %+v", got)
	}
	if _, err := ReadFile(strings.NewReader(`{"schema":"nope","benchmarks":[{"name":"x"}]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadFile(strings.NewReader(`{"schema":"` + Schema + `","benchmarks":[]}`)); err == nil {
		t.Error("empty bench file accepted")
	}
}

func benchFile(name string, median, mad float64) *File {
	return NewFile([]Result{{
		Name: name, Reps: 3, Iters: []int{1, 1, 1},
		TimeNSPerOp: Dist{Median: median, MAD: mad},
		Counters:    map[string]Dist{"c": {Median: 7}},
	}}, Config{})
}

func TestCompareSelfIsClean(t *testing.T) {
	f := benchFile("a", 1000, 5)
	rep := Compare(f, f, CompareOptions{})
	if rep.Regressions() != 0 {
		t.Fatalf("self-compare found %d regressions", rep.Regressions())
	}
	if len(rep.Deltas) != 1 || rep.Deltas[0].Ratio != 1 {
		t.Fatalf("self-compare deltas: %+v", rep.Deltas)
	}
}

func TestCompareFlagsRegressionBeyondNoise(t *testing.T) {
	old := benchFile("a", 1000, 10)
	slow := benchFile("a", 1300, 10)
	rep := Compare(old, slow, CompareOptions{Threshold: 0.10, NoiseK: 3})
	if rep.Regressions() != 1 {
		t.Fatalf("30%% slowdown with tight noise not flagged: %+v", rep.Deltas)
	}
	// Same slowdown under huge noise: threshold widens past it.
	noisyOld := benchFile("a", 1000, 100)
	noisySlow := benchFile("a", 1300, 100)
	rep = Compare(noisyOld, noisySlow, CompareOptions{Threshold: 0.10, NoiseK: 3})
	if rep.Regressions() != 0 {
		t.Fatalf("noise-covered slowdown flagged: %+v", rep.Deltas)
	}
	// A speedup is never a regression.
	fast := benchFile("a", 500, 10)
	if rep := Compare(old, fast, CompareOptions{}); rep.Regressions() != 0 {
		t.Fatalf("speedup flagged as regression")
	}
}

func TestCompareSuiteDrift(t *testing.T) {
	old := benchFile("a", 1000, 0)
	cur := benchFile("b", 1000, 0)
	rep := Compare(old, cur, CompareOptions{})
	if len(rep.OnlyOld) != 1 || len(rep.OnlyNew) != 1 || len(rep.Deltas) != 0 {
		t.Fatalf("suite drift not reported: %+v", rep)
	}
	verDrift := benchFile("a", 1, 0)
	verDrift.SuiteVersion = SuiteVersion + 1
	if rep := Compare(old, verDrift, CompareOptions{}); rep.Mismatch == "" {
		t.Error("suite-version drift not rejected")
	}

	drift := benchFile("a", 1000, 0)
	drift.Benchmarks[0].Counters = map[string]Dist{"c": {Median: 8}}
	rep = Compare(old, drift, CompareOptions{})
	if len(rep.Deltas) != 1 || len(rep.Deltas[0].CounterDrift) != 1 {
		t.Fatalf("counter drift not reported: %+v", rep.Deltas)
	}
	var b bytes.Buffer
	rep.WriteText(&b)
	if !strings.Contains(b.String(), "counters drifted") {
		t.Errorf("text report omits counter drift:\n%s", b.String())
	}
}

func TestRunCostProducesFlameDigest(t *testing.T) {
	suite := []Benchmark{{Name: "spans/op", Setup: func() (Fn, error) {
		return func(ctx context.Context) error {
			ctx, root := obs.StartSpan(ctx, "outer")
			_, inner := obs.StartSpan(ctx, "inner")
			inner.End()
			root.End()
			return nil
		}, nil
	}}}
	results, err := Run(context.Background(), suite, Config{Reps: 3, Cost: true, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	flame := results[0].Flame
	if len(flame) == 0 {
		t.Fatal("cost run produced no flame digest")
	}
	for _, e := range flame {
		if e.Path != "outer" && e.Path != "outer/inner" {
			t.Errorf("unexpected flame path %q", e.Path)
		}
	}
}

func TestDefaultSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("macro suite skipped in -short")
	}
	var observed int
	results, err := Run(context.Background(), DefaultSuite(), Config{
		Warmup: 0, Reps: 1,
		Filter:   "schedule/abilene",
		Observer: func(string, int, *obs.Recorder) { observed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || observed != 1 {
		t.Fatalf("suite smoke: %d results, %d observed", len(results), observed)
	}
	if _, ok := results[0].Counters[obs.CtrMILPNodes]; !ok {
		t.Errorf("scheduling benchmark recorded no solver-effort counter: %+v", results[0].Counters)
	}
}
