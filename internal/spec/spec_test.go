package spec

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/fwd"
	"chameleon/internal/topology"
)

func namesResolver(names ...string) Resolver {
	m := make(map[string]topology.NodeID)
	for i, n := range names {
		m[n] = topology.NodeID(i)
	}
	return func(name string) (topology.NodeID, error) {
		if id, ok := m[name]; ok {
			return id, nil
		}
		return topology.None, fmt.Errorf("unknown node %q", name)
	}
}

// Simple 3-node line states: 0 -> 1 -> 2 -> d.
var (
	stAll    = fwd.State{1, 2, fwd.External}        // everyone reaches
	stDrop0  = fwd.State{fwd.Drop, 2, fwd.External} // 0 drops
	stDirect = fwd.State{2, 2, fwd.External}        // 0 skips 1
)

func TestParseAndEvalBasics(t *testing.T) {
	r := namesResolver("a", "b", "c")
	cases := []struct {
		in    string
		trace []fwd.State
		want  bool
	}{
		{"reach(a)", []fwd.State{stAll}, true},
		{"reach(a)", []fwd.State{stDrop0}, false},
		{"reach(b)", []fwd.State{stDrop0}, true},
		{"wp(a, b)", []fwd.State{stAll}, true},
		{"wp(a, b)", []fwd.State{stDirect}, false},
		{"wp(a, a)", []fwd.State{stAll}, true},
		{"true", []fwd.State{stDrop0}, true},
		{"false", []fwd.State{stAll}, false},
		{"reach(a) && reach(b)", []fwd.State{stAll}, true},
		{"reach(a) && reach(b)", []fwd.State{stDrop0}, false},
		{"reach(a) || reach(b)", []fwd.State{stDrop0}, true},
		{"!reach(a)", []fwd.State{stDrop0}, true},
		{"not reach(a) and reach(b)", []fwd.State{stDrop0}, true},
		{"G reach(b)", []fwd.State{stAll, stDrop0, stAll}, true},
		{"G reach(a)", []fwd.State{stAll, stDrop0, stAll}, false},
		{"F reach(a)", []fwd.State{stDrop0, stDrop0, stAll}, true},
		{"F reach(a)", []fwd.State{stDrop0, stDrop0}, false},
		{"N reach(a)", []fwd.State{stDrop0, stAll}, true},
		{"X reach(a)", []fwd.State{stAll, stDrop0}, false},
		// wp(a,b) holds, then a switches to direct; U requires the switch.
		{"wp(a, b) U G wp(a, c)", []fwd.State{stAll, stAll, stDirect}, true},
		{"wp(a, b) U G wp(a, c)", []fwd.State{stDirect}, true}, // immediately satisfied
		{"wp(a, b) U G reach(a)", []fwd.State{stDrop0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			s, err := Parse(tc.in, r)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got := s.Eval(tc.trace); got != tc.want {
				t.Errorf("Eval(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	r := namesResolver("a")
	bad := []string{
		"", "reach", "reach(", "reach(a", "reach(zz)", "wp(a)", "wp(a,)",
		"reach(a) &&", "(reach(a)", "reach(a))", "@", "U reach(a)",
		"reach(a) Q reach(a)",
	}
	for _, in := range bad {
		if _, err := Parse(in, r); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	r := namesResolver("a", "b", "c")
	// ! binds tighter than &&, && tighter than ||.
	s := MustParse("!reach(a) && reach(b) || reach(c)", r)
	// With stDrop0: !reach(a)=T, reach(b)=T -> T || ... = T
	if !s.Eval([]fwd.State{stDrop0}) {
		t.Error("precedence broken for !/&&/||")
	}
	// U binds tighter than &&: "a U b && c" = (a U b) && c.
	s2 := MustParse("reach(b) U reach(a) && reach(c)", r)
	if !s2.Eval([]fwd.State{stAll}) {
		t.Error("U/&& precedence broken")
	}
}

func TestDAGDeduplication(t *testing.T) {
	r := namesResolver("a", "b")
	s := MustParse("G reach(a) && (G reach(a) || reach(b))", r)
	// Expressions: reach(a), G reach(a), reach(b), or, and = 5 nodes, with
	// G reach(a) shared.
	if n := len(s.Exprs()); n != 5 {
		t.Errorf("DAG has %d nodes, want 5 (dedup failed?)", n)
	}
}

func TestTemporalDepth(t *testing.T) {
	r := namesResolver("a", "b")
	cases := map[string]int{
		"reach(a)":                   0,
		"G reach(a)":                 1,
		"wp(a, b) U G wp(a, b)":      2,
		"G (reach(a) && F reach(b))": 2,
		"reach(a) && reach(b)":       0,
	}
	for in, want := range cases {
		s := MustParse(in, r)
		if got := s.TemporalDepth(); got != want {
			t.Errorf("TemporalDepth(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestUnicodeOperators(t *testing.T) {
	r := namesResolver("a", "b")
	s := MustParse("reach(a) ∧ ¬reach(b) ∨ reach(a)", r)
	if !s.Eval([]fwd.State{stAll}) {
		t.Error("unicode operators broken")
	}
}

func TestEvalAllSuffixSemantics(t *testing.T) {
	r := namesResolver("a", "b", "c")
	s := MustParse("F reach(a)", r)
	all := s.EvalAll([]fwd.State{stDrop0, stAll, stDrop0})
	// At k=0: reach(a) eventually (k=1) -> true. k=1: true. k=2: last
	// state persists with a dropping -> false.
	want := []bool{true, true, false}
	for k := range want {
		if all[k] != want[k] {
			t.Errorf("EvalAll[%d] = %v, want %v", k, all[k], want[k])
		}
	}
	if got := s.FirstViolation([]fwd.State{stDrop0, stAll, stDrop0}); got != 2 {
		t.Errorf("FirstViolation = %d, want 2", got)
	}
	if got := s.FirstViolation([]fwd.State{stAll}); got != -1 {
		t.Errorf("FirstViolation = %d, want -1", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := namesResolver("a")
	s := MustParse("reach(a)", r)
	if s.Eval(nil) {
		t.Error("empty trace must not satisfy anything")
	}
}

func TestWeakUntilAndRelease(t *testing.T) {
	r := namesResolver("a", "b", "c")
	// W: holds if G left even when right never occurs.
	s := MustParse("reach(b) W reach(a)", r)
	if !s.Eval([]fwd.State{stDrop0, stDrop0}) {
		t.Error("W must accept globally-left traces")
	}
	u := MustParse("reach(b) U reach(a)", r)
	if u.Eval([]fwd.State{stDrop0, stDrop0}) {
		t.Error("U must reject when right never holds")
	}
	// R: right must hold up to and including when left first holds.
	rel := MustParse("reach(a) R reach(b)", r)
	if !rel.Eval([]fwd.State{stDrop0, stAll}) {
		t.Error("R broken: b holds throughout, a releases at 1")
	}
	// M (strong release): additionally requires left to eventually hold.
	m := MustParse("reach(a) M reach(b)", r)
	if m.Eval([]fwd.State{stDrop0, stDrop0}) {
		t.Error("M must reject when left never holds")
	}
	if !m.Eval([]fwd.State{stDrop0, stAll}) {
		t.Error("M broken: b throughout, a at 1")
	}
}

// TestLTLDualities property-checks classic equivalences on random traces:
// ¬(φ U ψ) ≡ ¬φ R ¬ψ, F φ ≡ true U φ, G φ ≡ false R φ,
// φ W ψ ≡ (φ U ψ) ∨ G φ, φ M ψ ≡ (φ R ψ) ∧ F φ.
func TestLTLDualities(t *testing.T) {
	r := namesResolver("a", "b", "c")
	pairs := [][2]string{
		{"!(reach(a) U reach(b))", "!reach(a) R !reach(b)"},
		{"F reach(a)", "true U reach(a)"},
		{"G reach(a)", "false R reach(a)"},
		{"reach(a) W reach(b)", "(reach(a) U reach(b)) || G reach(a)"},
		{"reach(a) M reach(b)", "(reach(a) R reach(b)) && F reach(a)"},
		{"!G reach(a)", "F !reach(a)"},
		{"N (reach(a) && reach(b))", "N reach(a) && N reach(b)"},
	}
	states := []fwd.State{stAll, stDrop0, stDirect,
		{fwd.Drop, fwd.Drop, fwd.External}, {1, fwd.Drop, fwd.External}}
	gen := func(seed uint64) []fwd.State {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := rng.IntN(6) + 1
		tr := make([]fwd.State, n)
		for i := range tr {
			tr[i] = states[rng.IntN(len(states))]
		}
		return tr
	}
	for _, pair := range pairs {
		lhs := MustParse(pair[0], r)
		rhs := MustParse(pair[1], r)
		f := func(seed uint64) bool {
			tr := gen(seed)
			return lhs.Eval(tr) == rhs.Eval(tr)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("duality %q vs %q: %v", pair[0], pair[1], err)
		}
	}
}

func TestGraphResolver(t *testing.T) {
	g := topology.New("t")
	g.AddRouter("alpha")
	r := GraphResolver(g)
	if id, err := r("alpha"); err != nil || id != 0 {
		t.Errorf("resolve alpha = %v, %v", id, err)
	}
	if _, err := r("beta"); err == nil {
		t.Error("resolve beta should fail")
	}
}

func TestStringRoundTrip(t *testing.T) {
	r := namesResolver("a", "b")
	inputs := []string{
		"G reach(a)",
		"wp(a, b) U G wp(a, b)",
		"!(reach(a) || reach(b))",
	}
	for _, in := range inputs {
		s := MustParse(in, r)
		// Render and re-parse with a numeric resolver; evaluation must
		// agree on a sample trace.
		rendered := s.String()
		numeric := func(name string) (topology.NodeID, error) {
			var id int
			if _, err := fmt.Sscanf(name, "%d", &id); err != nil {
				return topology.None, err
			}
			return topology.NodeID(id), nil
		}
		s2, err := Parse(rendered, numeric)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", rendered, in, err)
		}
		for _, tr := range [][]fwd.State{{stAll}, {stDrop0, stAll}, {stDirect, stDrop0}} {
			if s.Eval(tr) != s2.Eval(tr) {
				t.Errorf("round-trip changed semantics for %q", in)
			}
		}
	}
}

func TestExitsPredicate(t *testing.T) {
	r := namesResolver("a", "b", "c")
	// Node 0 is itself an egress here: 0→d directly.
	stSelf := fwd.State{fwd.External, 2, fwd.External}
	// stAll: 0->1->2->d. Node 0 exits at 2.
	cases := []struct {
		in   string
		st   fwd.State
		want bool
	}{
		{"exits(a, c)", stAll, true},
		{"exits(a, b)", stAll, false},
		{"exits(c, c)", stAll, true},
		{"exits(a, a)", stSelf, true},   // 0 exits at itself
		{"exits(a, c)", stDirect, true}, // 0 skips 1, still exits at 2
		{"exits(a, a)", stDrop0, false}, // dropped traffic exits nowhere
	}
	for _, tc := range cases {
		s := MustParse(tc.in, r)
		if got := s.Eval([]fwd.State{tc.st}); got != tc.want {
			t.Errorf("%s on %v = %v, want %v", tc.in, tc.st, got, tc.want)
		}
	}
	// Temporal combination: exits via c until globally exits at itself.
	s := MustParse("exits(a, c) U G exits(a, a)", r)
	if !s.Eval([]fwd.State{stAll, stAll, stSelf}) {
		t.Error("temporal exits combination broken")
	}
}
