package spec

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"chameleon/internal/topology"
)

// Resolver maps node names appearing in a specification to node IDs.
type Resolver func(name string) (topology.NodeID, error)

// GraphResolver adapts a topology graph into a Resolver.
func GraphResolver(g *topology.Graph) Resolver {
	return func(name string) (topology.NodeID, error) {
		if id, ok := g.NodeByName(name); ok {
			return id, nil
		}
		return topology.None, fmt.Errorf("unknown node %q", name)
	}
}

// Parse parses the surface syntax of Fig. 2 into a Spec. Grammar, loosest
// binding first:
//
//	orExpr   := andExpr   { ("||" | "or") andExpr }
//	andExpr  := untilExpr { ("&&" | "and") untilExpr }
//	untilExpr:= unary     { ("U"|"R"|"W"|"M") unary }   (right-associative)
//	unary    := ("!"|"not") unary | ("G"|"F"|"N"|"X") unary | atom
//	atom     := "reach" "(" name ")" | "wp" "(" name "," name ")"
//	          | "exits" "(" name "," name ")"
//	          | "true" | "false" | "(" orExpr ")"
//
// Examples: "G reach(a)", "wp(a, fw) U G wp(a, e2)", "!(reach(a) && reach(b))".
func Parse(input string, resolve Resolver) (*Spec, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, b: NewBuilder(), resolve: resolve}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("spec: unexpected trailing input %q", p.peek().text)
	}
	return NewSpec(p.b, root), nil
}

// MustParse is Parse but panics on error, for tests and examples.
func MustParse(input string, resolve Resolver) *Spec {
	s, err := Parse(input, resolve)
	if err != nil {
		panic(err)
	}
	return s
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokLParen
	tokRParen
	tokComma
	tokAnd
	tokOr
	tokNot
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c, size := utf8.DecodeRuneInString(input[i:])
		switch {
		case unicode.IsSpace(c):
			i += size
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '!' || c == '¬':
			toks = append(toks, token{tokNot, "!", i})
			i += size
		case strings.HasPrefix(input[i:], "&&"):
			toks = append(toks, token{tokAnd, "&&", i})
			i += 2
		case c == '∧':
			toks = append(toks, token{tokAnd, "&&", i})
			i += size
		case strings.HasPrefix(input[i:], "||"):
			toks = append(toks, token{tokOr, "||", i})
			i += 2
		case c == '∨':
			toks = append(toks, token{tokOr, "||", i})
			i += size
		case unicode.IsLetter(c) || c == '_' || unicode.IsDigit(c):
			j := i
			for j < len(input) {
				r, rs := utf8.DecodeRuneInString(input[j:])
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
					break
				}
				j += rs
			}
			word := input[i:j]
			switch word {
			case "and":
				toks = append(toks, token{tokAnd, word, i})
			case "or":
				toks = append(toks, token{tokOr, word, i})
			case "not":
				toks = append(toks, token{tokNot, word, i})
			default:
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("spec: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

type parser struct {
	toks    []token
	pos     int
	b       *Builder
	resolve Resolver
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }
func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("spec: expected %s at %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = p.b.Or(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (*Expr, error) {
	left, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		left = p.b.And(left, right)
	}
	return left, nil
}

func (p *parser) parseUntil() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokIdent {
		var build func(a, b *Expr) *Expr
		switch t.text {
		case "U":
			build = p.b.Until
		case "R":
			build = p.b.Release
		case "W":
			build = p.b.WeakUntil
		case "M":
			build = p.b.StrongRelease
		}
		if build != nil {
			p.next()
			right, err := p.parseUntil() // right-associative
			if err != nil {
				return nil, err
			}
			return build(left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseUnary() (*Expr, error) {
	t := p.peek()
	if t.kind == tokNot {
		p.next()
		a, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.b.Not(a), nil
	}
	if t.kind == tokIdent {
		switch t.text {
		case "G":
			p.next()
			a, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return p.b.Globally(a), nil
		case "F":
			p.next()
			a, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return p.b.Finally(a), nil
		case "N", "X":
			p.next()
			a, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return p.b.Next(a), nil
		}
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (*Expr, error) {
	t := p.next()
	switch t.kind {
	case tokLParen:
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch t.text {
		case "true":
			return p.b.True(), nil
		case "false":
			return p.b.False(), nil
		case "reach":
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			name, err := p.expect(tokIdent, "node name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			id, err := p.resolve(name.text)
			if err != nil {
				return nil, fmt.Errorf("spec: %w", err)
			}
			return p.b.Reach(id), nil
		case "wp", "exits":
			build := p.b.Wp
			if t.text == "exits" {
				build = p.b.Exits
			}
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			src, err := p.expect(tokIdent, "node name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, ","); err != nil {
				return nil, err
			}
			via, err := p.expect(tokIdent, "waypoint name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			srcID, err := p.resolve(src.text)
			if err != nil {
				return nil, fmt.Errorf("spec: %w", err)
			}
			viaID, err := p.resolve(via.text)
			if err != nil {
				return nil, fmt.Errorf("spec: %w", err)
			}
			return build(srcID, viaID), nil
		}
		return nil, fmt.Errorf("spec: unexpected identifier %q at %d", t.text, t.pos)
	}
	return nil, fmt.Errorf("spec: unexpected token %q at %d", t.text, t.pos)
}
