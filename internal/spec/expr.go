// Package spec implements the paper's specification language (Fig. 2):
// propositional forwarding properties — reach(n) and wp(n, w) — combined
// with boolean operators and Linear Temporal Logic. Specifications are
// evaluated over finite sequences of forwarding states with the standard
// "final state persists" semantics, matching the paper's ILP unrolling
// (§4.3): the network remains in the last state after the reconfiguration.
package spec

import (
	"fmt"
	"strings"

	"chameleon/internal/fwd"
	"chameleon/internal/topology"
)

// Kind enumerates expression node kinds.
type Kind int

const (
	// KTrue and KFalse are constant propositions.
	KTrue Kind = iota
	KFalse
	// KReach is reach(n): traffic entering at n reaches the destination.
	KReach
	// KWp is wp(n, w): traffic entering at n traverses waypoint w.
	KWp
	// KExits is exits(n, e): traffic entering at n leaves the network at
	// egress e — the §8 "routing invariant" extension constraining which
	// route a node effectively uses, enabling operators to trade
	// interdomain route consistency for reconfiguration feasibility.
	KExits
	// Boolean connectives.
	KAnd
	KOr
	KNot
	// Temporal operators.
	KNext          // N φ
	KGlobally      // G φ
	KFinally       // F φ
	KUntil         // φ U ψ
	KRelease       // φ R ψ
	KWeakUntil     // φ W ψ  (= G φ ∨ φ U ψ)
	KStrongRelease // φ M ψ  (= ψ U (φ ∧ ψ), the paper's "mighty W")
)

var kindNames = map[Kind]string{
	KTrue: "true", KFalse: "false", KReach: "reach", KWp: "wp",
	KExits: "exits",
	KAnd:   "&&", KOr: "||", KNot: "!", KNext: "N", KGlobally: "G",
	KFinally: "F", KUntil: "U", KRelease: "R", KWeakUntil: "W",
	KStrongRelease: "M",
}

// Temporal reports whether k is a temporal operator.
func (k Kind) Temporal() bool {
	switch k {
	case KNext, KGlobally, KFinally, KUntil, KRelease, KWeakUntil, KStrongRelease:
		return true
	}
	return false
}

func (k Kind) String() string { return kindNames[k] }

// Expr is a node of the specification syntax graph. Expressions are
// hash-consed by a Builder: structurally identical subexpressions share one
// node (the paper's DAG Gφ of §4.3), so ID uniquely identifies a
// subexpression and can index solver variables.
type Expr struct {
	Kind Kind
	Node topology.NodeID // for KReach, KWp: the source node n
	Via  topology.NodeID // for KWp: the waypoint w
	A, B *Expr           // children (B only for binary kinds)

	// ID is the node's dense index within its Builder, in topological
	// order (children precede parents).
	ID int
}

// String renders the expression in the surface syntax.
func (e *Expr) String() string {
	switch e.Kind {
	case KTrue:
		return "true"
	case KFalse:
		return "false"
	case KReach:
		return fmt.Sprintf("reach(%d)", int(e.Node))
	case KWp:
		return fmt.Sprintf("wp(%d, %d)", int(e.Node), int(e.Via))
	case KExits:
		return fmt.Sprintf("exits(%d, %d)", int(e.Node), int(e.Via))
	case KNot:
		return "!" + parens(e.A)
	case KNext, KGlobally, KFinally:
		return e.Kind.String() + " " + parens(e.A)
	case KAnd, KOr, KUntil, KRelease, KWeakUntil, KStrongRelease:
		return parens(e.A) + " " + e.Kind.String() + " " + parens(e.B)
	}
	return "?"
}

func parens(e *Expr) string {
	switch e.Kind {
	case KTrue, KFalse, KReach, KWp, KNot:
		return e.String()
	}
	return "(" + e.String() + ")"
}

// Builder hash-conses expressions. The zero value is ready to use.
type Builder struct {
	interned map[string]*Expr
	exprs    []*Expr
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{interned: make(map[string]*Expr)} }

func (b *Builder) intern(e Expr) *Expr {
	if b.interned == nil {
		b.interned = make(map[string]*Expr)
	}
	key := b.key(&e)
	if found, ok := b.interned[key]; ok {
		return found
	}
	e.ID = len(b.exprs)
	node := &e
	b.exprs = append(b.exprs, node)
	b.interned[key] = node
	return node
}

func (b *Builder) key(e *Expr) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d/%d", e.Kind, e.Node, e.Via)
	if e.A != nil {
		fmt.Fprintf(&sb, "/a%d", e.A.ID)
	}
	if e.B != nil {
		fmt.Fprintf(&sb, "/b%d", e.B.ID)
	}
	return sb.String()
}

// Exprs returns all interned expressions in topological order.
func (b *Builder) Exprs() []*Expr { return b.exprs }

// True returns the constant true proposition.
func (b *Builder) True() *Expr { return b.intern(Expr{Kind: KTrue}) }

// False returns the constant false proposition.
func (b *Builder) False() *Expr { return b.intern(Expr{Kind: KFalse}) }

// Reach builds reach(n).
func (b *Builder) Reach(n topology.NodeID) *Expr {
	return b.intern(Expr{Kind: KReach, Node: n, Via: topology.None})
}

// Wp builds wp(n, w).
func (b *Builder) Wp(n, w topology.NodeID) *Expr {
	return b.intern(Expr{Kind: KWp, Node: n, Via: w})
}

// Exits builds exits(n, e): traffic from n leaves the network at egress e.
func (b *Builder) Exits(n, e topology.NodeID) *Expr {
	return b.intern(Expr{Kind: KExits, Node: n, Via: e})
}

// And builds the conjunction of all given expressions (true if empty).
func (b *Builder) And(es ...*Expr) *Expr {
	if len(es) == 0 {
		return b.True()
	}
	out := es[0]
	for _, e := range es[1:] {
		out = b.intern(Expr{Kind: KAnd, Node: topology.None, Via: topology.None, A: out, B: e})
	}
	return out
}

// Or builds the disjunction of all given expressions (false if empty).
func (b *Builder) Or(es ...*Expr) *Expr {
	if len(es) == 0 {
		return b.False()
	}
	out := es[0]
	for _, e := range es[1:] {
		out = b.intern(Expr{Kind: KOr, Node: topology.None, Via: topology.None, A: out, B: e})
	}
	return out
}

// Not builds ¬a.
func (b *Builder) Not(a *Expr) *Expr {
	return b.intern(Expr{Kind: KNot, Node: topology.None, Via: topology.None, A: a})
}

// Next builds N a.
func (b *Builder) Next(a *Expr) *Expr {
	return b.intern(Expr{Kind: KNext, Node: topology.None, Via: topology.None, A: a})
}

// Globally builds G a.
func (b *Builder) Globally(a *Expr) *Expr {
	return b.intern(Expr{Kind: KGlobally, Node: topology.None, Via: topology.None, A: a})
}

// Finally builds F a.
func (b *Builder) Finally(a *Expr) *Expr {
	return b.intern(Expr{Kind: KFinally, Node: topology.None, Via: topology.None, A: a})
}

// Until builds a U b.
func (b *Builder) Until(x, y *Expr) *Expr {
	return b.intern(Expr{Kind: KUntil, Node: topology.None, Via: topology.None, A: x, B: y})
}

// Release builds a R b.
func (b *Builder) Release(x, y *Expr) *Expr {
	return b.intern(Expr{Kind: KRelease, Node: topology.None, Via: topology.None, A: x, B: y})
}

// WeakUntil builds a W b.
func (b *Builder) WeakUntil(x, y *Expr) *Expr {
	return b.intern(Expr{Kind: KWeakUntil, Node: topology.None, Via: topology.None, A: x, B: y})
}

// StrongRelease builds a M b.
func (b *Builder) StrongRelease(x, y *Expr) *Expr {
	return b.intern(Expr{Kind: KStrongRelease, Node: topology.None, Via: topology.None, A: x, B: y})
}

// Spec is a complete specification: a root expression plus its builder
// (giving access to the deduplicated syntax DAG).
type Spec struct {
	Root    *Expr
	Builder *Builder
}

// NewSpec wraps a root expression built with b.
func NewSpec(b *Builder, root *Expr) *Spec { return &Spec{Root: root, Builder: b} }

// String renders the root expression.
func (s *Spec) String() string { return s.Root.String() }

// Exprs returns the deduplicated expression DAG in topological order.
func (s *Spec) Exprs() []*Expr { return s.Builder.Exprs() }

// TemporalDepth returns the maximum nesting depth of temporal operators,
// one component of specification complexity (§7.1).
func (s *Spec) TemporalDepth() int {
	memo := make(map[int]int)
	var depth func(e *Expr) int
	depth = func(e *Expr) int {
		if d, ok := memo[e.ID]; ok {
			return d
		}
		d := 0
		if e.A != nil {
			d = depth(e.A)
		}
		if e.B != nil {
			if db := depth(e.B); db > d {
				d = db
			}
		}
		if e.Kind.Temporal() {
			d++
		}
		memo[e.ID] = d
		return d
	}
	return depth(s.Root)
}

// Eval evaluates the specification over a finite trace of forwarding
// states, with the final state persisting forever. An empty trace yields
// false.
func (s *Spec) Eval(trace []fwd.State) bool {
	if len(trace) == 0 {
		return false
	}
	return s.EvalAll(trace)[0]
}

// EvalAll returns, for each position k of the trace, whether the root
// expression holds at k (with the final state persisting).
func (s *Spec) EvalAll(trace []fwd.State) []bool {
	L := len(trace)
	exprs := s.Exprs()
	// val[e.ID][k]
	val := make([][]bool, len(exprs))
	for i := range val {
		val[i] = make([]bool, L)
	}
	for k := L - 1; k >= 0; k-- {
		last := k == L-1
		for _, e := range exprs { // topological: children first
			var v bool
			switch e.Kind {
			case KTrue:
				v = true
			case KFalse:
				v = false
			case KReach:
				v = trace[k].Reach(e.Node)
			case KWp:
				v = trace[k].Waypoint(e.Node, e.Via)
			case KExits:
				v = trace[k].Egress(e.Node) == e.Via
			case KAnd:
				v = val[e.A.ID][k] && val[e.B.ID][k]
			case KOr:
				v = val[e.A.ID][k] || val[e.B.ID][k]
			case KNot:
				v = !val[e.A.ID][k]
			case KNext:
				if last {
					v = val[e.A.ID][k]
				} else {
					v = val[e.A.ID][k+1]
				}
			case KGlobally:
				if last {
					v = val[e.A.ID][k]
				} else {
					v = val[e.A.ID][k] && val[e.ID][k+1]
				}
			case KFinally:
				if last {
					v = val[e.A.ID][k]
				} else {
					v = val[e.A.ID][k] || val[e.ID][k+1]
				}
			case KUntil:
				if last {
					v = val[e.B.ID][k]
				} else {
					v = val[e.B.ID][k] || (val[e.A.ID][k] && val[e.ID][k+1])
				}
			case KRelease:
				if last {
					v = val[e.B.ID][k]
				} else {
					v = val[e.B.ID][k] && (val[e.A.ID][k] || val[e.ID][k+1])
				}
			case KWeakUntil:
				if last {
					v = val[e.A.ID][k] || val[e.B.ID][k]
				} else {
					v = val[e.B.ID][k] || (val[e.A.ID][k] && val[e.ID][k+1])
				}
			case KStrongRelease:
				if last {
					v = val[e.A.ID][k] && val[e.B.ID][k]
				} else {
					v = (val[e.A.ID][k] && val[e.B.ID][k]) ||
						(val[e.B.ID][k] && val[e.ID][k+1])
				}
			}
			val[e.ID][k] = v
		}
	}
	return val[s.Root.ID]
}

// EvalState evaluates the specification against a single forwarding state
// under the final-state-persists semantics — the steady-state projection in
// which every temporal operator collapses to its fixpoint at the last
// position. This is what an online monitor can decide about the current
// transient state without seeing the future: the propositional content of
// the spec. Equivalent to Eval([]fwd.State{s}) but allocation-light, since
// the monitor calls it on every snapshot.
func (s *Spec) EvalState(st fwd.State) bool {
	exprs := s.Exprs()
	val := make([]bool, len(exprs))
	for _, e := range exprs { // topological: children first
		var v bool
		switch e.Kind {
		case KTrue:
			v = true
		case KFalse:
			v = false
		case KReach:
			v = st.Reach(e.Node)
		case KWp:
			v = st.Waypoint(e.Node, e.Via)
		case KExits:
			v = st.Egress(e.Node) == e.Via
		case KAnd:
			v = val[e.A.ID] && val[e.B.ID]
		case KOr:
			v = val[e.A.ID] || val[e.B.ID]
		case KNot:
			v = !val[e.A.ID]
		case KNext, KGlobally, KFinally:
			v = val[e.A.ID]
		case KUntil, KRelease:
			v = val[e.B.ID]
		case KWeakUntil:
			v = val[e.A.ID] || val[e.B.ID]
		case KStrongRelease:
			v = val[e.A.ID] && val[e.B.ID]
		}
		val[e.ID] = v
	}
	return val[s.Root.ID]
}

// FailingAtoms returns the atomic propositions (reach/wp/exits nodes) of
// the specification that do not hold in the given state, in DAG-ID order.
// Monitors use this to attribute a violation to concrete routers: the
// blast radius of a failed check is the Node fields of the failing atoms.
func (s *Spec) FailingAtoms(st fwd.State) []*Expr {
	var out []*Expr
	for _, e := range s.Exprs() {
		var v bool
		switch e.Kind {
		case KReach:
			v = st.Reach(e.Node)
		case KWp:
			v = st.Waypoint(e.Node, e.Via)
		case KExits:
			v = st.Egress(e.Node) == e.Via
		default:
			continue
		}
		if !v {
			out = append(out, e)
		}
	}
	return out
}

// FirstViolation returns the first trace position at which the root
// expression does not hold, or -1 if the whole trace satisfies it. Note
// that for temporal specifications, the spec holding "at position k" means
// the suffix starting at k satisfies it.
func (s *Spec) FirstViolation(trace []fwd.State) int {
	if len(trace) == 0 {
		return 0
	}
	all := s.EvalAll(trace)
	for k, ok := range all {
		if !ok {
			return k
		}
	}
	return -1
}
