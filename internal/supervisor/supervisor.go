// Package supervisor closes the loop the paper's §8 reaction policy leaves
// open: where the runtime's ReactReplan merely returns a ReplanError, the
// supervisor wraps plan→execute into a controller that, on a replan signal
// (or an exhausted escalation ladder inside the executor), Aborts the plan,
// snapshots the live network's intermediate routing/session/configuration
// state, replans from that state under a bounded deterministic solver
// budget, and resumes — with a graceful-degradation ladder when replanning
// cannot make progress:
//
//	execute (≤ 1+MaxReplans attempts)
//	  └─ fast-commit the remaining original commands (confirmed, §8 r.3)
//	       └─ roll back to the initial configuration (confirmed)
//	            └─ forced rollback (direct application, journaled)
//
// so a supervised reconfiguration provably never terminates with the
// network pinned mid-reconfiguration: every run ends in the final or the
// initial configuration, and says which.
//
// Every recovery boundary is persisted to a crash-safe append-only JSONL
// journal (see journal.go) before the next executor invocation, so a
// supervisor killed at any point can be restarted with Resume and replay
// the journal to the same outcome — the durability primitive ROADMAP item 4
// (chameleond) needs.
//
// Determinism contract: attempts are numbered globally (execute attempts,
// then the commit and rollback rungs continue the numbering); invocation k
// uses an executor seeded DeriveSeed(Seed, k), a fresh fault injector
// InjectorFactory(k), and a monitor named "attempt-k". Combined with the
// network's run-indexed RNG streams and snapshot/restore at every boundary,
// a resumed run replays the identical schedule the uninterrupted run had.
package supervisor

import (
	"context"
	"errors"
	"fmt"
	"os"

	"chameleon/internal/analyzer"
	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// Ladder rungs, journaled in snapshot entries.
const (
	RungExecute  = "execute"
	RungCommit   = "commit"
	RungRollback = "rollback"
)

// Outcome is the supervisor's terminal configuration guarantee.
type Outcome int

const (
	// OutcomeFinal: the network ended in the final (target) configuration.
	OutcomeFinal Outcome = iota
	// OutcomeInitial: the network was rolled back to the initial
	// configuration.
	OutcomeInitial
)

func (o Outcome) String() string {
	if o == OutcomeFinal {
		return "final"
	}
	return "initial"
}

func outcomeFrom(s string) Outcome {
	if s == "initial" {
		return OutcomeInitial
	}
	return OutcomeFinal
}

// Options configure a supervised reconfiguration.
type Options struct {
	// Seed derives every per-attempt executor stream.
	Seed uint64
	// MaxReplans bounds the replan attempts after the first execution:
	// attempt 0 plus MaxReplans replans, then the commit rung. Zero means
	// the default of 2; negative disables replanning entirely.
	MaxReplans int
	// JournalPath, when non-empty, persists the execution journal there.
	// Empty runs unjournaled (no crash safety, same decisions).
	JournalPath string
	// InjectorFactory, when set, builds the fault injector installed for
	// invocation k (execute attempts and commit/rollback rungs alike). A
	// fresh injector per invocation keeps fault schedules a pure function
	// of (seed, k), which resume depends on.
	InjectorFactory func(attempt int) sim.FaultInjector
	// ExternalEvents are scheduled for attempt 0 only: they model one-shot
	// real-world events, and any that fired before a later recovery
	// boundary are already part of the snapshotted network state.
	ExternalEvents []runtime.ScheduledEvent
	// SolverNodeBudget bounds each replan's branch-and-bound node count
	// (default scheduler.DeterministicNodeBudget): replans must terminate
	// deterministically, never hang on an infeasible intermediate state.
	SolverNodeBudget int64
	// Exec, when non-nil, is the template for per-attempt executor options
	// (latencies, timeouts, retry shape). The supervisor owns and
	// overwrites Seed, Monitor, Diagnose, Reaction, PhaseObserver,
	// Convergence and ExternalEvents.
	Exec *runtime.Options
	// Spec, when non-nil, replaces the default all-internal-nodes
	// reachability specification used for (re)planning.
	Spec func(s *scenario.Scenario) *spec.Spec
}

func (o Options) maxAttempts() int {
	mr := o.MaxReplans
	if mr == 0 {
		mr = 2
	}
	if mr < 0 {
		mr = 0
	}
	return 1 + mr
}

// Result reports a finished supervised reconfiguration.
type Result struct {
	// Outcome is the terminal configuration: final or initial, never
	// pinned transient state.
	Outcome Outcome
	// Verified reports that the outcome was confirmed by configuration
	// readback of every original (or undo) command.
	Verified bool
	// Attempts counts executor invocations on the execute rung.
	Attempts int
	// Replans counts replan decisions (Attempts-1 unless resumed).
	Replans int
	// Committed / RolledBack / Forced report which ladder rungs engaged.
	Committed  bool
	RolledBack bool
	Forced     bool
	// Resumed reports the result was (partly) reconstructed from a journal.
	Resumed bool
	// Timelines are the per-attempt monitor timelines, in attempt order —
	// attempt k's timeline is named "attempt-k". A resumed run's earlier
	// timelines come from the journal, byte-identically.
	Timelines []*monitor.Timeline
	// JournalBytes counts bytes this run appended to the journal.
	JournalBytes int64
}

// Supervisor drives one scenario through the closed loop.
type Supervisor struct {
	s    *scenario.Scenario
	opts Options

	journal *Journal
	span    *obs.Span

	applied []bool
	attempt int
	result  *Result
	// commitReason, when set by an attempt, overrides the default
	// budget-exhausted reason on the commit decision.
	commitReason string
}

// Run supervises the scenario's reconfiguration to termination. It is
// RunCtx under context.Background().
func Run(s *scenario.Scenario, opts Options) (*Result, error) {
	return RunCtx(context.Background(), s, opts)
}

// RunCtx starts a fresh supervised reconfiguration, truncating any existing
// journal at Options.JournalPath. The scenario's network must be converged.
func RunCtx(ctx context.Context, s *scenario.Scenario, opts Options) (*Result, error) {
	sv := &Supervisor{s: s, opts: opts, applied: make([]bool, len(s.Commands)), result: &Result{}}
	if !s.Net.Converged() {
		return nil, fmt.Errorf("supervisor: network not converged at start")
	}
	if opts.JournalPath != "" {
		j, err := NewJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		sv.journal = j
		defer j.Close()
	}
	if err := sv.journal.Append(Entry{
		Kind:     KindBegin,
		SimNS:    int64(s.Net.Now()),
		Scenario: s.Name,
		Seed:     opts.Seed,
		Commands: commandNames(s.Commands),
	}); err != nil {
		return nil, err
	}
	return sv.run(ctx, RungExecute)
}

// Resume restarts a supervised reconfiguration from its journal. s must be
// a freshly built, converged instance of the same scenario (same topology
// and seed — the builders are deterministic); the journal's last snapshot
// is restored onto it and supervision continues from the recorded rung. A
// journal that already holds an outcome returns the completed result
// without touching the network. An empty or absent journal starts fresh.
func Resume(ctx context.Context, s *scenario.Scenario, opts Options) (*Result, error) {
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("supervisor: Resume requires a journal path")
	}
	entries, validLen, err := readJournal(opts.JournalPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return RunCtx(ctx, s, opts)
		}
		return nil, err
	}
	if len(entries) == 0 {
		return RunCtx(ctx, s, opts)
	}
	if b := entries[0]; b.Kind != KindBegin {
		return nil, fmt.Errorf("supervisor: journal does not start with a begin entry")
	} else if b.Scenario != s.Name || b.Seed != opts.Seed {
		return nil, fmt.Errorf("supervisor: journal is for scenario %q seed %d, not %q seed %d",
			b.Scenario, b.Seed, s.Name, opts.Seed)
	}

	sv := &Supervisor{s: s, opts: opts, applied: make([]bool, len(s.Commands)), result: &Result{Resumed: true}}

	// Replay: accumulate decisions, timelines, and the last snapshot.
	var snap *Entry
	for i := range entries {
		e := &entries[i]
		switch e.Kind {
		case KindSnapshot:
			snap = e
		case KindTimeline:
			if e.Timeline != nil {
				sv.result.Timelines = append(sv.result.Timelines, e.Timeline)
			}
		case KindDecision:
			switch e.Decision {
			case "replan":
				sv.result.Replans++
			case "commit":
				sv.result.Committed = true
			case "rollback":
				sv.result.RolledBack = true
			}
		case KindExec:
			if e.Rung == RungExecute {
				sv.result.Attempts++
			}
		case KindOutcome:
			// The run already terminated; report it without re-executing.
			sv.result.Outcome = outcomeFrom(e.Outcome)
			sv.result.Forced = e.Forced
			sv.result.Verified = true
			return sv.result, nil
		}
	}
	if snap == nil || snap.State == nil {
		return nil, fmt.Errorf("supervisor: journal has no usable snapshot")
	}
	if err := s.Net.RestoreState(snap.State); err != nil {
		return nil, fmt.Errorf("supervisor: restoring journal snapshot: %w", err)
	}
	copy(sv.applied, snap.Applied)
	sv.attempt = snap.Attempt
	// The interrupted invocation (if any) re-runs: drop its exec count so
	// the resumed total matches the uninterrupted run's.
	if snap.Rung == RungExecute && sv.result.Attempts > sv.attempt {
		sv.result.Attempts = sv.attempt
	}

	j, err := openAppend(opts.JournalPath, entries[len(entries)-1].Seq, validLen)
	if err != nil {
		return nil, err
	}
	sv.journal = j
	defer j.Close()
	return sv.run(ctx, snap.Rung)
}

// run drives the degradation ladder from the given rung to termination.
func (sv *Supervisor) run(ctx context.Context, rung string) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "supervise",
		obs.String("scenario", sv.s.Name),
		obs.Int("seed", int64(sv.opts.Seed)))
	sv.span = span
	startBytes := sv.journal.Bytes()
	defer func() {
		sv.result.JournalBytes = sv.journal.Bytes()
		span.Add(obs.CtrSupJournalBytes, sv.journal.Bytes()-startBytes)
		span.End()
	}()

	if rung == RungExecute {
		done, err := sv.executeRung(ctx)
		if err != nil {
			return nil, err
		}
		if done {
			return sv.result, nil
		}
		rung = RungCommit
	}
	if rung == RungCommit {
		done, err := sv.commitRung(ctx)
		if err != nil {
			return nil, err
		}
		if done {
			return sv.result, nil
		}
		rung = RungRollback
	}
	return sv.result, sv.rollbackRung(ctx)
}

// executeRung runs bounded plan→execute→replan attempts. It returns done =
// true when an attempt completed (outcome final); false hands over to the
// commit rung.
func (sv *Supervisor) executeRung(ctx context.Context) (bool, error) {
	for sv.attempt < sv.opts.maxAttempts() {
		if err := sv.snapshot(RungExecute); err != nil {
			return false, err
		}
		p, planErr := sv.plan(ctx)
		if planErr != nil {
			// Replanning from this intermediate state is infeasible (or the
			// solver budget ran out): descend to the commit rung.
			if cerr := ctx.Err(); cerr != nil {
				return false, cerr
			}
			sv.decide("commit", fmt.Sprintf("replan infeasible: %v", planErr), "")
			return false, nil
		}
		ok, err := sv.executeAttempt(ctx, p)
		if err != nil {
			return false, err
		}
		if ok {
			return true, sv.finish(OutcomeFinal, false)
		}
	}
	reason := sv.commitReason
	if reason == "" {
		reason = fmt.Sprintf("replan budget exhausted (%d attempts)", sv.attempt)
	}
	sv.decide("commit", reason, "")
	return false, nil
}

// plan compiles a fresh plan from the network's current (possibly
// intermediate) state towards the final configuration, covering exactly the
// not-yet-applied original commands, under a deterministic solver budget.
func (sv *Supervisor) plan(ctx context.Context) (*plan.Plan, error) {
	rem := sv.s.Remaining(sv.s.Net, sv.applied)
	if len(rem.Commands) == 0 {
		// Everything already landed; a trivial plan lets the attempt verify
		// and converge.
		return &plan.Plan{Prefix: rem.Prefix}, nil
	}
	a, err := analyzer.AnalyzeCtx(ctx, rem.Net, rem.FinalNetwork(), rem.Prefix)
	if err != nil {
		return nil, err
	}
	schedOpts := scheduler.DefaultOptions()
	schedOpts.SolverNodeBudget = sv.opts.SolverNodeBudget
	if schedOpts.SolverNodeBudget == 0 {
		schedOpts.SolverNodeBudget = scheduler.DeterministicNodeBudget
	}
	var sp *spec.Spec
	if sv.opts.Spec != nil {
		sp = sv.opts.Spec(rem)
	} else {
		sp = reachabilitySpec(rem.Graph)
	}
	sched, err := scheduler.ScheduleCtx(ctx, a, sp, schedOpts)
	if err != nil {
		return nil, err
	}
	p, err := plan.Compile(a, sched, rem.Commands)
	if err != nil {
		return nil, err
	}
	if err := sv.journal.Append(Entry{
		Kind: KindPlan, SimNS: int64(sv.s.Net.Now()),
		Attempt: sv.attempt, Rounds: p.R, Steps: p.NumSteps(),
	}); err != nil {
		return nil, err
	}
	return p, nil
}

// executeAttempt runs one plan under ReactReplan with a fresh executor,
// injector and monitor. It returns ok = true on success; on a replan signal
// it aborts, reads back which originals landed, journals the decision and
// advances the attempt counter.
func (sv *Supervisor) executeAttempt(ctx context.Context, p *plan.Plan) (bool, error) {
	net := sv.s.Net
	if fi := sv.injector(); fi != nil {
		net.SetFaultInjector(fi)
		defer net.SetFaultInjector(nil)
	}
	mon := monitor.New(monitor.Config{
		Name:       fmt.Sprintf("attempt-%d", sv.attempt),
		Invariants: sv.invariants(),
	})
	opts := sv.execOptions()
	opts.Reaction = runtime.ReactReplan
	opts.Monitor = sv.alarm()
	opts.Diagnose = sv.diagnose()
	opts.PhaseObserver = mon.SetPhase
	if sv.attempt == 0 {
		opts.ExternalEvents = sv.opts.ExternalEvents
	}
	ex := runtime.NewExecutor(net, opts)
	unbind := mon.Bind(net)
	res, execErr := ex.ExecuteCtx(ctx, p)
	unbind()
	if cerr := ctx.Err(); cerr != nil {
		return false, cerr
	}
	if err := sv.journal.Append(Entry{
		Kind: KindExec, SimNS: int64(net.Now()), Rung: RungExecute,
		Attempt:   sv.attempt,
		Err:       errString(execErr),
		Committed: res != nil && res.Committed,
	}); err != nil {
		return false, err
	}
	sv.result.Attempts++

	if execErr == nil {
		sv.readbackApplied()
		sv.appendTimeline(mon.Finish(net.Now()))
		return true, nil
	}

	var re *runtime.ReplanError
	invariant := ""
	if errors.As(execErr, &re) {
		invariant = re.Invariant
	} else if !errors.Is(execErr, runtime.ErrReplanNeeded) {
		// Not a replan signal (e.g. the network was perturbed outside the
		// executor's model): still recover, via the commit rung, rather
		// than surface a pinned network.
		ex.Abort(p)
		if err := sv.journal.Append(Entry{Kind: KindAbort, SimNS: int64(net.Now()), Attempt: sv.attempt}); err != nil {
			return false, err
		}
		sv.readbackApplied()
		sv.appendTimeline(mon.Finish(net.Now()))
		sv.attempt = sv.opts.maxAttempts()
		sv.commitReason = fmt.Sprintf("non-replan execution error: %v", execErr)
		return false, nil
	}

	// §8 reaction 2: release the transient state, note which originals are
	// already in the network, and replan from the intermediate state.
	ex.Abort(p)
	if err := sv.journal.Append(Entry{Kind: KindAbort, SimNS: int64(net.Now()), Attempt: sv.attempt}); err != nil {
		return false, err
	}
	sv.readbackApplied()
	sv.appendTimeline(mon.Finish(net.Now()))
	sv.attempt++
	if sv.attempt < sv.opts.maxAttempts() {
		sv.decide("replan", errString(execErr), invariant)
		sv.span.Add(obs.CtrSupReplans, 1)
		sv.result.Replans++
	}
	return false, nil
}

// commitRung is §8 reaction 3 as a recovery rung: push every remaining
// original command at once through the self-healing executor (confirmed by
// ack or readback) and let the network converge on the final configuration.
func (sv *Supervisor) commitRung(ctx context.Context) (bool, error) {
	sv.result.Committed = true
	sv.span.Add(obs.CtrSupCommits, 1)
	if err := sv.snapshot(RungCommit); err != nil {
		return false, err
	}
	remaining := sv.remainingCommands()
	err := sv.applyConfirmed(ctx, RungCommit, remaining)
	if cerr := ctx.Err(); cerr != nil {
		return false, cerr
	}
	if err == nil {
		sv.readbackApplied()
		if sv.finalVerified() {
			return true, sv.finish(OutcomeFinal, false)
		}
		err = fmt.Errorf("commit applied but final configuration not verified")
	}
	sv.readbackApplied()
	sv.decide("rollback", fmt.Sprintf("commit blocked: %v", err), "")
	return false, nil
}

// rollbackRung is the last confirmed rung: apply every original command's
// undo, in reverse order, through the self-healing executor. If even that
// is blocked, the forced variant applies the undos directly (modeling
// out-of-band console recovery) — the supervisor never exits pinned.
func (sv *Supervisor) rollbackRung(ctx context.Context) error {
	sv.result.RolledBack = true
	sv.span.Add(obs.CtrSupRollbacks, 1)
	if err := sv.snapshot(RungRollback); err != nil {
		return err
	}
	undos := sv.undoCommands()
	err := sv.applyConfirmed(ctx, RungRollback, undos)
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if err == nil && sv.initialVerified() {
		return sv.finish(OutcomeInitial, false)
	}
	if err == nil {
		err = fmt.Errorf("rollback applied but initial configuration not verified")
	}
	// Forced rollback: bypass the (faulty) command channel entirely.
	sv.decide("forced-rollback", fmt.Sprintf("rollback blocked: %v", err), "")
	sv.s.Net.CancelPendingCommands()
	for _, cmd := range undos {
		cmd.Apply(sv.s.Net)
	}
	sv.s.Net.Run()
	return sv.finish(OutcomeInitial, true)
}

// applyConfirmed pushes cmds as one Between slot of a trivial plan through
// a fresh executor: the executor's applyOriginals machinery supplies the
// full ack/readback/retry confirmation ladder for free. ReactIgnore lets a
// persistent failure surface as an error instead of recursing into the
// reaction policies.
func (sv *Supervisor) applyConfirmed(ctx context.Context, rung string, cmds []sim.Command) error {
	net := sv.s.Net
	if len(cmds) == 0 {
		net.Run()
		return nil
	}
	if fi := sv.injector(); fi != nil {
		net.SetFaultInjector(fi)
		defer net.SetFaultInjector(nil)
	}
	opts := sv.execOptions()
	opts.Reaction = runtime.ReactIgnore
	p := &plan.Plan{Prefix: sv.s.Prefix, Between: [][]sim.Command{cmds}}
	ex := runtime.NewExecutor(net, opts)
	_, execErr := ex.ExecuteCtx(ctx, p)
	if jerr := sv.journal.Append(Entry{
		Kind: KindExec, SimNS: int64(net.Now()), Rung: rung,
		Attempt: sv.attempt, Err: errString(execErr),
	}); jerr != nil {
		return jerr
	}
	sv.attempt++
	if execErr != nil {
		// Release whatever the failed push left in flight.
		ex.Abort(p)
	}
	return execErr
}

// --- decisions, snapshots, verification ----------------------------------

func (sv *Supervisor) snapshot(rung string) error {
	st, err := sv.s.Net.CaptureState()
	if err != nil {
		return fmt.Errorf("supervisor: snapshot at %s/%d: %w", rung, sv.attempt, err)
	}
	return sv.journal.Append(Entry{
		Kind: KindSnapshot, SimNS: int64(sv.s.Net.Now()),
		Rung: rung, Attempt: sv.attempt,
		Applied: append([]bool(nil), sv.applied...),
		State:   st,
	})
}

func (sv *Supervisor) decide(decision, reason, invariant string) {
	_ = sv.journal.Append(Entry{
		Kind: KindDecision, SimNS: int64(sv.s.Net.Now()),
		Attempt: sv.attempt, Decision: decision, Reason: reason, Invariant: invariant,
	})
}

func (sv *Supervisor) finish(o Outcome, forced bool) error {
	sv.result.Outcome = o
	sv.result.Forced = forced
	switch o {
	case OutcomeFinal:
		sv.result.Verified = sv.finalVerified()
	case OutcomeInitial:
		sv.result.Verified = sv.initialVerified()
	}
	return sv.journal.Append(Entry{
		Kind: KindOutcome, SimNS: int64(sv.s.Net.Now()),
		Attempt: sv.attempt, Outcome: o.String(), Forced: forced,
	})
}

func (sv *Supervisor) appendTimeline(tl *monitor.Timeline) {
	sv.result.Timelines = append(sv.result.Timelines, tl)
	_ = sv.journal.Append(Entry{
		Kind: KindTimeline, SimNS: int64(sv.s.Net.Now()),
		Attempt: sv.attempt, Timeline: tl,
	})
}

// readbackApplied marks originals whose configuration effect is verifiably
// present — the supervisor's "show running-config" sweep after an abort.
func (sv *Supervisor) readbackApplied() {
	for i, cmd := range sv.s.Commands {
		if sv.applied[i] {
			continue
		}
		if cmd.Verify != nil && cmd.Verify(sv.s.Net) {
			sv.applied[i] = true
		}
	}
}

func (sv *Supervisor) remainingCommands() []sim.Command {
	var out []sim.Command
	for i, cmd := range sv.s.Commands {
		if !sv.applied[i] {
			out = append(out, cmd)
		}
	}
	return out
}

// undoCommands returns every original's undo in reverse order. All undos
// run, not only the confirmed-applied ones: undo commands are idempotent,
// and a command that applied without its readback succeeding would
// otherwise survive the rollback.
func (sv *Supervisor) undoCommands() []sim.Command {
	var out []sim.Command
	for i := len(sv.s.Undo) - 1; i >= 0; i-- {
		out = append(out, sv.s.Undo[i])
	}
	return out
}

// finalVerified reads back whether every original command's effect is
// present: the network is in the final configuration.
func (sv *Supervisor) finalVerified() bool {
	for _, cmd := range sv.s.Commands {
		if cmd.Verify != nil && !cmd.Verify(sv.s.Net) {
			return false
		}
	}
	return true
}

// initialVerified reads back whether every undo's effect is present: the
// network is in the initial configuration.
func (sv *Supervisor) initialVerified() bool {
	if len(sv.s.Undo) == 0 {
		return false
	}
	for _, cmd := range sv.s.Undo {
		if cmd.Verify != nil && !cmd.Verify(sv.s.Net) {
			return false
		}
	}
	return true
}

// --- per-attempt machinery ------------------------------------------------

func (sv *Supervisor) execOptions() runtime.Options {
	var opts runtime.Options
	if sv.opts.Exec != nil {
		opts = *sv.opts.Exec
	} else {
		opts = runtime.DefaultOptions(0)
	}
	opts.Seed = sim.DeriveSeed(sv.opts.Seed, uint64(sv.attempt))
	opts.Monitor = nil
	opts.Diagnose = nil
	opts.Reaction = runtime.ReactIgnore
	opts.PhaseObserver = nil
	opts.Convergence = nil
	opts.ExternalEvents = nil
	return opts
}

func (sv *Supervisor) injector() sim.FaultInjector {
	if sv.opts.InjectorFactory == nil {
		return nil
	}
	return sv.opts.InjectorFactory(sv.attempt)
}

func (sv *Supervisor) invariants() []monitor.Invariant {
	return []monitor.Invariant{monitor.ReachAll(sv.s.Graph), monitor.LoopFree()}
}

// alarm is the executor's harmful-event predicate: every monitored
// invariant (reachability and loop-freedom) must hold. Checking the same
// invariants the timeline records means any violation the monitor would
// write down also raises the alarm — a supervised run has no silent
// violations by construction.
func (sv *Supervisor) alarm() func(*sim.Network) bool {
	invs := sv.invariants()
	prefix := sv.s.Prefix
	return func(net *sim.Network) bool {
		st := net.ForwardingState(prefix)
		for _, inv := range invs {
			if ok, _ := inv.Check(st); !ok {
				return false
			}
		}
		return true
	}
}

// diagnose names the first violated invariant for ReplanError attribution.
func (sv *Supervisor) diagnose() func(*sim.Network) string {
	invs := sv.invariants()
	prefix := sv.s.Prefix
	return func(net *sim.Network) string {
		st := net.ForwardingState(prefix)
		for _, inv := range invs {
			if ok, _ := inv.Check(st); !ok {
				return inv.Name
			}
		}
		return ""
	}
}

// reachabilitySpec builds G ∧_n reach(n); the supervisor rebuilds its own
// pipeline rather than importing eval (which imports chaos, which imports
// this package for its recovery profiles).
func reachabilitySpec(g *topology.Graph) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range g.Internal() {
		es = append(es, b.Reach(n))
	}
	return spec.NewSpec(b, b.Globally(b.And(es...)))
}

func commandNames(cmds []sim.Command) []string {
	out := make([]string, len(cmds))
	for i, c := range cmds {
		out[i] = c.Description
	}
	return out
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
