package supervisor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"chameleon/internal/monitor"
	"chameleon/internal/sim"
)

// The execution journal is a crash-safe append-only JSONL WAL: one entry per
// line, sequenced, fsynced per append. A restarted supervisor replays it to
// reconstruct exactly where a crashed run stood — which recovery rung it was
// on, which original commands had landed, and the full serialized network
// state at the last recovery boundary — and resumes (or rolls back) to the
// same outcome the uninterrupted run would have reached. Torn trailing
// lines (a crash mid-write) are tolerated and discarded; an entry is only
// trusted if it parses completely and its sequence number follows its
// predecessor's.

// Entry kinds.
const (
	// KindBegin opens a journal: scenario identity and the original
	// commands' descriptions.
	KindBegin = "begin"
	// KindSnapshot records a recovery boundary: the rung and attempt about
	// to run, the applied-originals vector, and the full network state.
	// Every executor invocation is preceded by one, so resume never has to
	// reconstruct mid-execution state.
	KindSnapshot = "snapshot"
	// KindPlan records the shape of a freshly compiled plan.
	KindPlan = "plan"
	// KindExec records how one executor invocation ended.
	KindExec = "exec"
	// KindAbort records a released (aborted) plan.
	KindAbort = "abort"
	// KindTimeline embeds one finished attempt's monitor timeline.
	KindTimeline = "timeline"
	// KindDecision records a degradation-ladder decision (replan, commit,
	// rollback, forced-commit, forced-rollback) and its reason.
	KindDecision = "decision"
	// KindOutcome closes a journal: the supervisor's terminal outcome.
	KindOutcome = "outcome"
)

// Entry is one journal line. Kind selects which optional fields are
// meaningful; SimNS stamps every entry with the simulated clock (never wall
// time, so journals are byte-reproducible).
type Entry struct {
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	SimNS int64  `json:"sim_ns"`

	// begin
	Scenario string   `json:"scenario,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Commands []string `json:"commands,omitempty"`

	// snapshot
	Rung    string        `json:"rung,omitempty"`
	Attempt int           `json:"attempt,omitempty"`
	Applied []bool        `json:"applied,omitempty"`
	State   *sim.NetState `json:"state,omitempty"`

	// plan
	Rounds int `json:"rounds,omitempty"`
	Steps  int `json:"steps,omitempty"`

	// exec / decision
	Err       string `json:"err,omitempty"`
	Committed bool   `json:"committed,omitempty"`
	Decision  string `json:"decision,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Invariant string `json:"invariant,omitempty"`

	// timeline
	Timeline *monitor.Timeline `json:"timeline,omitempty"`

	// outcome
	Outcome string `json:"outcome,omitempty"`
	Forced  bool   `json:"forced,omitempty"`
}

// Journal appends entries to a JSONL WAL file. A nil *Journal is a valid
// no-op journal, so unjournaled supervision shares all code paths.
type Journal struct {
	f     *os.File
	seq   uint64
	bytes int64
}

// NewJournal creates (truncating) the journal file at path.
func NewJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// openAppend reopens an existing journal for appending after lastSeq,
// first truncating it to validLen bytes so a torn trailing line (tolerated
// and discarded by ReadJournal) is not left embedded mid-file once new
// entries follow it.
func openAppend(path string, lastSeq uint64, validLen int64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, seq: lastSeq}, nil
}

// Append sequences, writes and fsyncs one entry. The fsync is the WAL
// guarantee: once Append returns, a crash cannot lose the entry.
func (j *Journal) Append(e Entry) error {
	if j == nil {
		return nil
	}
	j.seq++
	e.Seq = j.seq
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	n, err := j.f.Write(b)
	j.bytes += int64(n)
	if err != nil {
		return err
	}
	return j.f.Sync()
}

// Bytes returns the number of bytes appended through this handle.
func (j *Journal) Bytes() int64 {
	if j == nil {
		return 0
	}
	return j.bytes
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// DescribeEntry renders one journal entry as a one-line human-readable
// summary — what the run-bundle differ prints when two journals first
// disagree, so a divergence names the decision or snapshot where the runs
// parted rather than a raw JSON blob.
func DescribeEntry(e Entry) string {
	head := fmt.Sprintf("#%d %s @%dns", e.Seq, e.Kind, e.SimNS)
	switch e.Kind {
	case KindBegin:
		return fmt.Sprintf("%s scenario=%s seed=%d commands=%d", head, e.Scenario, e.Seed, len(e.Commands))
	case KindSnapshot:
		return fmt.Sprintf("%s rung=%s attempt=%d", head, e.Rung, e.Attempt)
	case KindPlan:
		return fmt.Sprintf("%s rounds=%d steps=%d", head, e.Rounds, e.Steps)
	case KindExec:
		return fmt.Sprintf("%s committed=%v err=%q", head, e.Committed, e.Err)
	case KindDecision:
		return fmt.Sprintf("%s decision=%s reason=%q invariant=%s", head, e.Decision, e.Reason, e.Invariant)
	case KindTimeline:
		n := 0
		if e.Timeline != nil {
			n = len(e.Timeline.Violations)
		}
		return fmt.Sprintf("%s violations=%d", head, n)
	case KindOutcome:
		return fmt.Sprintf("%s outcome=%s forced=%v", head, e.Outcome, e.Forced)
	}
	return head
}

// ReadJournal parses a journal file, tolerating a torn trailing line: a
// final line that fails to parse, or whose sequence number does not follow
// its predecessor's, is discarded (the crash interrupted its write). The
// same defect anywhere earlier is corruption and an error.
func ReadJournal(path string) ([]Entry, error) {
	entries, _, err := readJournal(path)
	return entries, err
}

// readJournal additionally returns the byte length of the valid prefix —
// the offset openAppend truncates to so nothing is ever appended after a
// torn line.
func readJournal(path string) ([]Entry, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	var (
		entries []Entry
		raw     [][]byte
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		raw = append(raw, line)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	var validLen int64
	for i, line := range raw {
		if len(line) == 0 {
			validLen++ // the bare newline
			continue
		}
		var e Entry
		bad := ""
		if err := json.Unmarshal(line, &e); err != nil {
			bad = err.Error()
		} else if want := uint64(len(entries) + 1); e.Seq != want {
			bad = fmt.Sprintf("seq %d, want %d", e.Seq, want)
		}
		if bad != "" {
			if i == len(raw)-1 {
				break // torn trailing line: the crash interrupted this write
			}
			return nil, 0, fmt.Errorf("supervisor: journal %s line %d corrupt: %s", path, i+1, bad)
		}
		entries = append(entries, e)
		validLen += int64(len(line)) + 1
	}
	return entries, validLen, nil
}
