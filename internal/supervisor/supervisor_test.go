package supervisor_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/monitor"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/supervisor"
	"chameleon/internal/topology"
)

// dropAll loses every command, never any message — the persistent fault
// that exhausts the executor's escalation ladder.
type dropAll struct{}

func (dropAll) CommandFault(_ topology.NodeID, _ string, _ int) sim.CommandFault {
	return sim.CommandFault{Kind: sim.FaultDrop}
}
func (dropAll) MessageFault(_, _ topology.NodeID) sim.MessageFault {
	return sim.MessageFault{Kind: sim.FaultNone}
}

// dropUntil drops every command on invocations < n, none afterwards.
func dropUntil(n int) func(int) sim.FaultInjector {
	return func(attempt int) sim.FaultInjector {
		if attempt < n {
			return dropAll{}
		}
		return nil
	}
}

func alwaysDrop(int) sim.FaultInjector { return dropAll{} }

// timelineBytes concatenates the JSONL export of every timeline — the
// byte-identity currency of the resume tests.
func timelineBytes(t *testing.T, tls []*monitor.Timeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tl := range tls {
		if err := tl.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSuperviseHappyPath(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	s := scenario.RunningExample()
	res, err := supervisor.Run(s, supervisor.Options{Seed: 11, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != supervisor.OutcomeFinal {
		t.Fatalf("Outcome = %v, want final", res.Outcome)
	}
	if !res.Verified {
		t.Error("final configuration not verified by readback")
	}
	if res.Attempts != 1 || res.Replans != 0 || res.Committed || res.RolledBack || res.Forced {
		t.Errorf("unexpected ladder engagement: %+v", res)
	}
	if len(res.Timelines) != 1 || res.Timelines[0].Name != "attempt-0" {
		t.Fatalf("Timelines = %v, want one named attempt-0", res.Timelines)
	}
	if res.Timelines[0].TotalViolation() != 0 {
		t.Errorf("unperturbed run has violation time %v", res.Timelines[0].TotalViolation())
	}
	if res.JournalBytes <= 0 {
		t.Error("JournalBytes = 0, want > 0")
	}

	entries, err := supervisor.ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Kind != supervisor.KindBegin {
		t.Errorf("first journal entry %q, want begin", entries[0].Kind)
	}
	last := entries[len(entries)-1]
	if last.Kind != supervisor.KindOutcome || last.Outcome != "final" {
		t.Errorf("last journal entry = %+v, want final outcome", last)
	}
}

// TestSuperviseReplanRecovers is the closed loop working as designed: a
// persistent fault wrecks attempt 0, the supervisor aborts, snapshots the
// intermediate state, replans, and attempt 1 lands the reconfiguration.
func TestSuperviseReplanRecovers(t *testing.T) {
	s := scenario.RunningExample()
	res, err := supervisor.Run(s, supervisor.Options{
		Seed:            11,
		InjectorFactory: dropUntil(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != supervisor.OutcomeFinal || !res.Verified {
		t.Fatalf("Outcome = %v (verified %v), want verified final", res.Outcome, res.Verified)
	}
	if res.Attempts != 2 || res.Replans != 1 {
		t.Errorf("Attempts = %d, Replans = %d, want 2 and 1", res.Attempts, res.Replans)
	}
	if res.Committed || res.RolledBack || res.Forced {
		t.Errorf("recovery descended past the execute rung: %+v", res)
	}
	if len(res.Timelines) != 2 || res.Timelines[1].Name != "attempt-1" {
		t.Fatalf("want timelines attempt-0, attempt-1; got %d", len(res.Timelines))
	}
}

// TestSuperviseCommitRung: with the replan budget spent, the supervisor
// fast-commits the remaining original commands (§8 reaction 3) once the
// fault clears.
func TestSuperviseCommitRung(t *testing.T) {
	s := scenario.RunningExample()
	res, err := supervisor.Run(s, supervisor.Options{
		Seed:            11,
		MaxReplans:      -1,
		InjectorFactory: dropUntil(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != supervisor.OutcomeFinal || !res.Verified {
		t.Fatalf("Outcome = %v (verified %v), want verified final", res.Outcome, res.Verified)
	}
	if !res.Committed {
		t.Error("commit rung did not engage")
	}
	if res.RolledBack || res.Forced {
		t.Errorf("descended past the commit rung: %+v", res)
	}
	if res.Attempts != 1 || res.Replans != 0 {
		t.Errorf("Attempts = %d, Replans = %d, want 1 and 0", res.Attempts, res.Replans)
	}
}

// TestSuperviseRollback: when the fault never clears, every rung fails and
// the supervisor rolls the network back to its initial configuration. With
// total command loss nothing ever changed, so the rollback rung confirms
// every undo through configuration readback (no force needed): the network
// is never left pinned mid-reconfiguration.
func TestSuperviseRollback(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	s := scenario.RunningExample()
	res, err := supervisor.Run(s, supervisor.Options{
		Seed:            11,
		MaxReplans:      1,
		JournalPath:     jpath,
		InjectorFactory: alwaysDrop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != supervisor.OutcomeInitial {
		t.Fatalf("Outcome = %v, want initial", res.Outcome)
	}
	if !res.Verified {
		t.Error("initial configuration not verified by readback")
	}
	if !res.Committed || !res.RolledBack {
		t.Errorf("expected the commit and rollback rungs to engage: %+v", res)
	}
	if res.Forced {
		t.Error("undos were readback-confirmable; force was unnecessary")
	}
	// The journal must record the descent and close with the outcome.
	entries, err := supervisor.ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []string
	for _, e := range entries {
		if e.Kind == supervisor.KindDecision {
			decisions = append(decisions, e.Decision)
		}
	}
	want := "replan,commit,rollback"
	if got := strings.Join(decisions, ","); got != want {
		t.Errorf("decisions = %s, want %s", got, want)
	}
	if last := entries[len(entries)-1]; last.Kind != supervisor.KindOutcome || last.Outcome != "initial" {
		t.Errorf("last entry = %+v, want initial outcome", last)
	}
}

// TestSuperviseForcedRollback drives the last rung: the declared initial
// configuration differs from what readback finds (undo Verify is false at
// start) and the command channel is dead, so the confirmed rollback is
// blocked and the supervisor applies the undos out-of-band — still
// terminating in the (now verified) initial configuration.
func TestSuperviseForcedRollback(t *testing.T) {
	s := scenario.RunningExample()
	n1, ext1 := s.E1, s.Ext[0]
	setLP := func(lp uint32) func(*sim.Network) {
		return func(net *sim.Network) {
			net.UpdateRouteMap(n1, ext1, sim.In, func(rm *sim.RouteMap) {
				rm.Remove(10)
				rm.Add(sim.Entry{Order: 10, Action: sim.Action{SetLocalPref: sim.U32P(lp)}})
			})
		}
	}
	hasLP := func(lp uint32) func(*sim.Network) bool {
		return func(net *sim.Network) bool {
			for _, e := range net.RouteMapOf(n1, ext1, sim.In).Entries() {
				if e.Order == 10 && e.Action.SetLocalPref != nil && *e.Action.SetLocalPref == lp {
					return true
				}
			}
			return false
		}
	}
	// The undo targets local-pref 300 — a state the live network is not in,
	// so no readback can confirm it while commands are being dropped.
	s.Undo = []sim.Command{{
		Node:        n1,
		Description: "n1: restore local-pref of routes from ext1 to 300",
		Apply:       setLP(300),
		Verify:      hasLP(300),
	}}
	res, err := supervisor.Run(s, supervisor.Options{
		Seed:            11,
		MaxReplans:      -1,
		InjectorFactory: alwaysDrop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != supervisor.OutcomeInitial || !res.Forced {
		t.Fatalf("Outcome = %v forced %v, want forced initial", res.Outcome, res.Forced)
	}
	if !res.Verified {
		t.Error("forced rollback left the initial configuration unverified")
	}
	if !hasLP(300)(s.Net) {
		t.Error("forced rollback did not land the undo configuration")
	}
	if !s.Net.Converged() {
		t.Error("network left mid-convergence after forced rollback")
	}
}

// TestSuperviseInfeasibleReplanCommits: a solver budget too small to prove
// any schedule makes planning itself fail, and the supervisor degrades
// straight to the commit rung rather than erroring out.
func TestSuperviseInfeasibleReplanCommits(t *testing.T) {
	s := scenario.RunningExample()
	res, err := supervisor.Run(s, supervisor.Options{
		Seed:             11,
		SolverNodeBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != supervisor.OutcomeFinal || !res.Verified {
		t.Fatalf("Outcome = %v (verified %v), want verified final", res.Outcome, res.Verified)
	}
	if !res.Committed {
		t.Error("commit rung did not engage after infeasible planning")
	}
	if res.Attempts != 0 {
		t.Errorf("Attempts = %d, want 0 (no plan ever compiled)", res.Attempts)
	}
}

// TestResumeReplaysJournal is the kill-and-resume contract: a supervisor
// killed mid-run restarts from its journal, replays the recorded recovery
// boundaries, and reaches the same outcome with byte-identical monitor
// timelines.
func TestResumeReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	opts := func(jpath string) supervisor.Options {
		return supervisor.Options{
			Seed:            11,
			JournalPath:     jpath,
			InjectorFactory: dropUntil(1),
		}
	}

	// Reference: the uninterrupted run (attempt 0 faulted, attempt 1 lands).
	full := filepath.Join(dir, "full.jsonl")
	ref, err := supervisor.Run(scenario.RunningExample(), opts(full))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Outcome != supervisor.OutcomeFinal || ref.Replans != 1 {
		t.Fatalf("reference run: %+v", ref)
	}
	refTL := timelineBytes(t, ref.Timelines)

	// Simulate a crash immediately after the snapshot for attempt 1 was
	// fsynced (plus a torn half-written line, as a real crash would leave):
	// keep the journal prefix through that snapshot.
	entries, err := supervisor.ReadJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	cut := -1
	for i, e := range entries {
		if e.Kind == supervisor.KindSnapshot && e.Attempt == 1 {
			cut = i
			break
		}
	}
	if cut < 0 {
		t.Fatal("no attempt-1 snapshot in the reference journal")
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	crashed := filepath.Join(dir, "crashed.jsonl")
	torn := append(bytes.Join(lines[:cut+1], nil), []byte(`{"seq":99,"kind":"sn`)...)
	if err := os.WriteFile(crashed, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume on a freshly built scenario instance.
	res, err := supervisor.Resume(context.Background(), scenario.RunningExample(), opts(crashed))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Error("Resumed = false")
	}
	if res.Outcome != ref.Outcome || res.Verified != ref.Verified {
		t.Errorf("resumed outcome %v/%v, reference %v/%v",
			res.Outcome, res.Verified, ref.Outcome, ref.Verified)
	}
	if res.Attempts != ref.Attempts || res.Replans != ref.Replans {
		t.Errorf("resumed Attempts/Replans = %d/%d, reference %d/%d",
			res.Attempts, res.Replans, ref.Attempts, ref.Replans)
	}
	if got := timelineBytes(t, res.Timelines); !bytes.Equal(got, refTL) {
		t.Errorf("resumed timelines differ from reference:\n--- resumed\n%s--- reference\n%s", got, refTL)
	}
	// The resumed journal must also close with the same outcome.
	after, err := supervisor.ReadJournal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if last := after[len(after)-1]; last.Kind != supervisor.KindOutcome || last.Outcome != "final" {
		t.Errorf("resumed journal ends with %+v, want final outcome", last)
	}
}

// TestResumeFinishedJournal: resuming a journal that already holds an
// outcome reconstructs the result without re-executing anything.
func TestResumeFinishedJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	s := scenario.RunningExample()
	ref, err := supervisor.Run(s, supervisor.Options{Seed: 11, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := supervisor.Resume(context.Background(), scenario.RunningExample(),
		supervisor.Options{Seed: 11, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.Outcome != ref.Outcome {
		t.Errorf("res = %+v, want resumed %v", res, ref.Outcome)
	}
	after, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("resuming a finished journal modified it")
	}
}

// TestResumeRejectsForeignJournal: a journal begun by a different scenario
// or seed must not be replayed onto this network.
func TestResumeRejectsForeignJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	if _, err := supervisor.Run(scenario.RunningExample(),
		supervisor.Options{Seed: 11, JournalPath: jpath}); err != nil {
		t.Fatal(err)
	}
	_, err := supervisor.Resume(context.Background(), scenario.RunningExample(),
		supervisor.Options{Seed: 12, JournalPath: jpath})
	if err == nil {
		t.Fatal("resuming under a different seed succeeded")
	}
}

// TestJournalTornTrailingLine: only the final line may be torn; the same
// defect earlier is corruption.
func TestJournalTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	j, err := supervisor.NewJournal(good)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(supervisor.Entry{Kind: supervisor.KindDecision, Decision: "replan"}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	raw, _ := os.ReadFile(good)

	torn := filepath.Join(dir, "torn.jsonl")
	os.WriteFile(torn, append(append([]byte{}, raw...), []byte(`{"seq":4,"ki`)...), 0o644)
	entries, err := supervisor.ReadJournal(torn)
	if err != nil || len(entries) != 3 {
		t.Fatalf("torn trailing line: entries %d err %v, want 3 and nil", len(entries), err)
	}

	corrupt := filepath.Join(dir, "corrupt.jsonl")
	lines := bytes.SplitAfter(raw, []byte("\n"))
	bad := append(append([]byte{}, lines[0]...), []byte("{\"seq\":9,\"kind\":\"decision\"}\n")...)
	bad = append(bad, lines[2]...)
	os.WriteFile(corrupt, bad, 0o644)
	if _, err := supervisor.ReadJournal(corrupt); err == nil {
		t.Fatal("mid-file seq gap accepted")
	}
}
