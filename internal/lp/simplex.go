// Package lp implements a dense two-phase primal simplex solver for linear
// programs in inequality form:
//
//	minimize   c·x
//	subject to A·x ≤ b,  x ≥ 0
//
// It is the linear-relaxation engine used by the MILP branch-and-bound
// solver (package milp) when relaxation bounding is enabled, standing in
// for the LP core of COIN-OR CBC used by the paper.
package lp

import (
	"errors"
	"math"
)

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Problem is an LP in inequality form. All constraints are Σ A[i]·x ≤ B[i];
// variables are implicitly non-negative. Equalities and ≥ rows must be
// rewritten by the caller (a ≥ row is a negated ≤ row; an = row is two
// opposite ≤ rows).
type Problem struct {
	c []float64
	A [][]float64
	B []float64
	n int
}

// NewProblem creates an LP with n non-negative variables.
func NewProblem(n int) *Problem {
	return &Problem{c: make([]float64, n), n: n}
}

// SetObjective sets the coefficient of variable j in the minimized
// objective.
func (p *Problem) SetObjective(j int, coeff float64) { p.c[j] = coeff }

// AddLe appends the constraint row·x ≤ rhs. The row slice is copied.
func (p *Problem) AddLe(row []float64, rhs float64) {
	cp := make([]float64, p.n)
	copy(cp, row)
	p.A = append(p.A, cp)
	p.B = append(p.B, rhs)
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.A) }

// Solution holds the optimum of an LP. Pivots counts simplex pivot
// operations across both phases — the solver-effort unit surfaced by the
// observability layer.
type Solution struct {
	X         []float64
	Objective float64
	Pivots    int
}

// Solve runs two-phase simplex with Bland's anti-cycling rule.
func (p *Problem) Solve() (*Solution, error) {
	m, n := len(p.A), p.n
	if m == 0 {
		// No constraints: optimum is 0 unless some objective coefficient
		// is negative (then unbounded).
		for j := 0; j < n; j++ {
			if p.c[j] < -eps {
				return nil, ErrUnbounded
			}
		}
		return &Solution{X: make([]float64, n), Objective: 0}, nil
	}
	pivots := 0

	// Tableau with slack variables: columns [x(n) | s(m) | rhs].
	// Rows with negative rhs need artificial variables; we use the
	// standard phase-1 construction: make rhs non-negative by negating
	// rows, then slacks of negated rows get coefficient -1 and an
	// artificial variable is added.
	type tableau struct {
		a     [][]float64
		basis []int
		cols  int
	}
	art := 0
	negated := make([]bool, m)
	for i := 0; i < m; i++ {
		if p.B[i] < 0 {
			negated[i] = true
			art++
		}
	}
	cols := n + m + art + 1
	t := tableau{a: make([][]float64, m), basis: make([]int, m), cols: cols}
	artCol := n + m
	for i := 0; i < m; i++ {
		row := make([]float64, cols)
		sign := 1.0
		if negated[i] {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = sign // slack
		row[cols-1] = sign * p.B[i]
		if negated[i] {
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		} else {
			t.basis[i] = n + i
		}
		t.a[i] = row
	}

	pivot := func(obj []float64, limitCols int) error {
		for iter := 0; iter < 50000; iter++ {
			// Bland's rule: entering = lowest-index column with negative
			// reduced cost.
			enter := -1
			for j := 0; j < limitCols; j++ {
				if obj[j] < -eps {
					enter = j
					break
				}
			}
			if enter == -1 {
				return nil
			}
			// Ratio test: leaving row.
			leave, best := -1, math.Inf(1)
			for i := 0; i < m; i++ {
				if t.a[i][enter] > eps {
					ratio := t.a[i][cols-1] / t.a[i][enter]
					if ratio < best-eps || (math.Abs(ratio-best) <= eps &&
						(leave == -1 || t.basis[i] < t.basis[leave])) {
						best = ratio
						leave = i
					}
				}
			}
			if leave == -1 {
				return ErrUnbounded
			}
			// Pivot on (leave, enter).
			pivots++
			pv := t.a[leave][enter]
			for j := 0; j < cols; j++ {
				t.a[leave][j] /= pv
			}
			for i := 0; i < m; i++ {
				if i == leave || math.Abs(t.a[i][enter]) < eps {
					continue
				}
				f := t.a[i][enter]
				for j := 0; j < cols; j++ {
					t.a[i][j] -= f * t.a[leave][j]
				}
			}
			f := obj[enter]
			if math.Abs(f) > eps {
				for j := 0; j < cols; j++ {
					obj[j] -= f * t.a[leave][j]
				}
			}
			t.basis[leave] = enter
		}
		return errors.New("lp: iteration limit exceeded")
	}

	// Phase 1: minimize sum of artificials.
	if art > 0 {
		obj := make([]float64, cols)
		for j := n + m; j < n+m+art; j++ {
			obj[j] = 1
		}
		// Reduce: subtract basic artificial rows.
		for i := 0; i < m; i++ {
			if t.basis[i] >= n+m {
				for j := 0; j < cols; j++ {
					obj[j] -= t.a[i][j]
				}
			}
		}
		if err := pivot(obj, n+m+art); err != nil {
			if errors.Is(err, ErrUnbounded) {
				return nil, ErrInfeasible
			}
			return nil, err
		}
		if -obj[cols-1] > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive any remaining artificial out of the basis.
		for i := 0; i < m; i++ {
			if t.basis[i] < n+m {
				continue
			}
			moved := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t.a[i][j]) > eps {
					pv := t.a[i][j]
					for k := 0; k < cols; k++ {
						t.a[i][k] /= pv
					}
					for i2 := 0; i2 < m; i2++ {
						if i2 == i || math.Abs(t.a[i2][j]) < eps {
							continue
						}
						f := t.a[i2][j]
						for k := 0; k < cols; k++ {
							t.a[i2][k] -= f * t.a[i][k]
						}
					}
					t.basis[i] = j
					moved = true
					break
				}
			}
			if !moved {
				// Redundant row; leave the artificial basic at zero.
				_ = moved
			}
		}
	}

	// Phase 2: minimize the real objective over x and slack columns only.
	obj := make([]float64, cols)
	for j := 0; j < n; j++ {
		obj[j] = p.c[j]
	}
	for i := 0; i < m; i++ {
		if t.basis[i] < cols-1 && math.Abs(obj[t.basis[i]]) > eps {
			f := obj[t.basis[i]]
			for j := 0; j < cols; j++ {
				obj[j] -= f * t.a[i][j]
			}
		}
	}
	if err := pivot(obj, n+m); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.a[i][cols-1]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.c[j] * x[j]
	}
	return &Solution{X: x, Objective: objVal, Pivots: pivots}, nil
}
