package lp

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximization(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  -> min -x-y.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddLe([]float64{1, 2}, 4)
	p.AddLe([]float64{3, 1}, 6)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Optimum at intersection: x=8/5, y=6/5, obj=-14/5.
	if !approx(s.Objective, -14.0/5) {
		t.Errorf("objective = %v, want -2.8", s.Objective)
	}
}

func TestUnconstrainedZero(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 0) {
		t.Errorf("objective = %v, want 0", s.Objective)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1) // max x with no constraints
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	p2 := NewProblem(2)
	p2.SetObjective(1, -1)
	p2.AddLe([]float64{1, 0}, 3)
	if _, err := p2.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -3 (x >= 3): infeasible.
	p := NewProblem(1)
	p.AddLe([]float64{1}, 1)
	p.AddLe([]float64{-1}, -3)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestNegativeRHSFeasible(t *testing.T) {
	// -x <= -2 (x >= 2), x <= 5, min x -> 2.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddLe([]float64{-1}, -2)
	p.AddLe([]float64{1}, 5)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 2) {
		t.Errorf("objective = %v, want 2", s.Objective)
	}
}

func TestEqualityViaTwoRows(t *testing.T) {
	// x + y = 3 (two rows), min x with y <= 2 -> x = 1.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddLe([]float64{1, 1}, 3)
	p.AddLe([]float64{-1, -1}, -3)
	p.AddLe([]float64{0, 1}, 2)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 1) {
		t.Errorf("objective = %v, want 1", s.Objective)
	}
}

func TestDegeneratePivoting(t *testing.T) {
	// A classic degenerate LP (Beale's example shape); Bland's rule must
	// terminate.
	p := NewProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddLe([]float64{0.25, -60, -0.04, 9}, 0)
	p.AddLe([]float64{0.5, -90, -0.02, 3}, 0)
	p.AddLe([]float64{0, 0, 1, 0}, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, -0.05) {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

// TestSolutionsAreFeasible property-checks that any returned solution
// satisfies all constraints on random LPs.
func TestSolutionsAreFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := rng.IntN(5) + 1
		m := rng.IntN(6) + 1
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, float64(rng.IntN(11)-5))
		}
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				rows[i][j] = float64(rng.IntN(7) - 3)
			}
			rhs[i] = float64(rng.IntN(21) - 5)
			p.AddLe(rows[i], rhs[i])
		}
		s, err := p.Solve()
		if err != nil {
			return true // infeasible/unbounded is a legal outcome
		}
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += rows[i][j] * s.X[j]
			}
			if lhs > rhs[i]+1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalityAgainstVertexEnumeration cross-checks small 2-variable LPs
// against brute-force evaluation over a fine grid.
func TestOptimalityAgainstGrid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 29))
		p := NewProblem(2)
		c := []float64{float64(rng.IntN(9) - 4), float64(rng.IntN(9) - 4)}
		p.SetObjective(0, c[0])
		p.SetObjective(1, c[1])
		rows := [][]float64{{1, 0}, {0, 1}} // keep the region bounded
		rhs := []float64{10, 10}
		m := rng.IntN(4)
		for i := 0; i < m; i++ {
			rows = append(rows, []float64{float64(rng.IntN(5) - 2), float64(rng.IntN(5) - 2)})
			rhs = append(rhs, float64(rng.IntN(15)))
		}
		for i := range rows {
			p.AddLe(rows[i], rhs[i])
		}
		s, err := p.Solve()
		if err != nil {
			return true
		}
		// Grid search at 0.5 resolution must not beat the simplex optimum.
		for x := 0.0; x <= 10; x += 0.5 {
			for y := 0.0; y <= 10; y += 0.5 {
				ok := true
				for i := range rows {
					if rows[i][0]*x+rows[i][1]*y > rhs[i]+1e-9 {
						ok = false
						break
					}
				}
				if ok && c[0]*x+c[1]*y < s.Objective-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
