package scheduler

import (
	"context"
	"fmt"
	"sort"

	"chameleon/internal/analyzer"
	"chameleon/internal/fwd"
	"chameleon/internal/milp"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// bval is a boolean value in the model: either a constant or a 0/1 variable.
// Constant folding keeps the encoding compact (§4.3 builds variables for
// all nodes and rounds; most collapse to constants or aliases).
type bval struct {
	isConst bool
	c       bool
	v       milp.VarID
}

func cst(b bool) bval      { return bval{isConst: true, c: b} }
func vr(v milp.VarID) bval { return bval{v: v} }

// encoder builds the §4 ILP for a fixed round count R.
type encoder struct {
	a    *analyzer.Analysis
	sp   *spec.Spec
	R    int
	opts Options

	model *milp.Model
	g     *topology.Graph

	isSwitching map[topology.NodeID]bool
	rOld, rNh   map[topology.NodeID]milp.VarID
	rNew        map[topology.NodeID]milp.VarID
	tOld, tNew  map[topology.NodeID]milp.VarID

	// leK[n][k-1] = (r_nh(n) ≤ k) for k ∈ [1, R-1].
	leK map[topology.NodeID][]milp.VarID
	// eqCache[n][k] caches the (r_nh(n) = k) indicator.
	eqCache  map[topology.NodeID]map[int]bval
	notCache map[milp.VarID]milp.VarID

	// delta[n][k-1] for nodes that change their next hop.
	delta map[topology.NodeID][]milp.VarID
	// reach[(n,k)], wp[(w,n,k)] and exits[(e,n,k)] propositional variables.
	reachMemo map[nk]bval
	wpMemo    map[wnk]bval
	exitsMemo map[wnk]bval
	specMemo  map[ek]bval
}

type nk struct {
	n topology.NodeID
	k int
}
type wnk struct {
	w, n topology.NodeID
	k    int
}
type ek struct {
	e *spec.Expr
	k int
}

func newEncoder(a *analyzer.Analysis, sp *spec.Spec, R int, opts Options) *encoder {
	return &encoder{
		a: a, sp: sp, R: R, opts: opts,
		model:       milp.NewModel(),
		g:           a.Graph,
		isSwitching: make(map[topology.NodeID]bool),
		rOld:        make(map[topology.NodeID]milp.VarID),
		rNh:         make(map[topology.NodeID]milp.VarID),
		rNew:        make(map[topology.NodeID]milp.VarID),
		tOld:        make(map[topology.NodeID]milp.VarID),
		tNew:        make(map[topology.NodeID]milp.VarID),
		leK:         make(map[topology.NodeID][]milp.VarID),
		eqCache:     make(map[topology.NodeID]map[int]bval),
		notCache:    make(map[milp.VarID]milp.VarID),
		delta:       make(map[topology.NodeID][]milp.VarID),
		reachMemo:   make(map[nk]bval),
		wpMemo:      make(map[wnk]bval),
		exitsMemo:   make(map[wnk]bval),
		specMemo:    make(map[ek]bval),
	}
}

func (e *encoder) solve(ctx context.Context) (*NodeSchedule, milp.Stats, error) {
	for _, n := range e.a.Switching {
		e.isSwitching[n] = true
	}
	e.buildScheduleVars()
	e.buildHappensBefore()
	e.buildConcurrency()
	if e.opts.ExplicitLoopConstraints {
		e.buildLoopConstraints()
	}
	if e.sp != nil {
		if err := e.buildSpec(); err != nil {
			return nil, milp.Stats{}, err
		}
	}
	if e.opts.MinimizeTempSessions {
		obj := milp.Lin()
		for _, n := range e.a.Switching {
			obj = obj.Add(e.tOld[n], 1).Add(e.tNew[n], 1)
		}
		e.model.Minimize(obj)
	}

	// r_old variables prefer their upper bound (= r_nh: no temporary old
	// session); everything else ascends, so r_new lands on r_nh too.
	var preferHigh []milp.VarID
	for _, n := range e.a.Switching {
		preferHigh = append(preferHigh, e.rOld[n])
	}
	opts := milp.Options{
		TimeLimit:            e.opts.TimeLimitPerRound,
		ImprovementTimeLimit: e.opts.ObjectiveTimeLimit,
		BranchOrder:          e.branchOrder(),
		PreferHigh:           preferHigh,
		UseLPBound:           e.opts.UseLPBound,
		FirstSolution:        !e.opts.MinimizeTempSessions,
		Ctx:                  ctx,
	}
	if e.opts.SolverNodeBudget > 0 {
		// Deterministic mode: node budgets replace every clock, so the
		// solve is reproducible under any machine load.
		opts.TimeLimit = 0
		opts.NodeLimit = e.opts.SolverNodeBudget
		opts.ImprovementTimeLimit = 0
		opts.ImprovementNodeLimit = e.opts.SolverNodeBudget
	}
	var sol *milp.Solution
	var err error
	if e.opts.MinimizeTempSessions {
		sol, err = e.model.SolveIterative(opts)
	} else {
		sol, err = e.model.Solve(opts)
	}
	if err != nil {
		return nil, milp.Stats{}, err
	}
	return e.extract(sol), sol.Stats, nil
}

// --- schedule variables (Eq. 1) -------------------------------------------

func (e *encoder) buildScheduleVars() {
	R := int64(e.R)
	for _, n := range e.a.Switching {
		name := fmt.Sprintf("n%d", n)
		// r_old = 0 means "moved to the temporary old-egress session
		// already during setup"; r_new = R+1 means "switches to the final
		// route during cleanup". Both extend the paper's 1..R rounds with
		// the setup/cleanup phases of §5.
		e.rOld[n] = e.model.NewInt("rOld/"+name, 0, R)
		e.rNh[n] = e.model.NewInt("rNh/"+name, 1, R)
		e.rNew[n] = e.model.NewInt("rNew/"+name, 1, R+1)
		// r_old ≤ r_nh ≤ r_new (Eq. 1).
		e.model.AddLe(milp.VarExpr(e.rOld[n]).Add(e.rNh[n], -1), 0)
		e.model.AddLe(milp.VarExpr(e.rNh[n]).Add(e.rNew[n], -1), 0)
		// Temporary-session indicators: r_nh − r_old ≤ R·tOld and
		// r_new − r_nh ≤ R·tNew (§4.1 objective terms).
		e.tOld[n] = e.model.NewBool("tOld/" + name)
		e.tNew[n] = e.model.NewBool("tNew/" + name)
		e.model.AddLe(milp.VarExpr(e.rNh[n]).Add(e.rOld[n], -1).Add(e.tOld[n], -R), 0)
		e.model.AddLe(milp.VarExpr(e.rNew[n]).Add(e.rNh[n], -1).Add(e.tNew[n], -R), 0)
		// leK channeling: leK[n][k-1] ⇔ r_nh(n) ≤ k.
		les := make([]milp.VarID, 0, e.R-1)
		for k := 1; k <= e.R-1; k++ {
			les = append(les, e.model.ReifyLe(fmt.Sprintf("le/%s/%d", name, k),
				milp.VarExpr(e.rNh[n]), int64(k)))
		}
		e.leK[n] = les
	}
	// Egress coupling. A node's old route (direct or via a temporary
	// session) exists only while the old egress still selects it, and its
	// new route only once the new egress has switched; both orderings are
	// implied transitively by the happens-before chains for chain users
	// and required explicitly for temporary-session users. Posting them
	// for every node strengthens propagation substantially.
	for _, n := range e.a.Switching {
		if eOld := e.a.POld[n].Egress; eOld != n && e.isSwitching[eOld] {
			// r_nh(n) ≤ r_nh(e_old).
			e.model.AddLe(milp.VarExpr(e.rNh[n]).Add(e.rNh[eOld], -1), 0)
		}
		if eNew := e.a.PNew[n].Egress; eNew != n && e.isSwitching[eNew] {
			// r_nh(n) ≥ r_nh(e_new).
			e.model.AddGe(milp.VarExpr(e.rNh[n]).Add(e.rNh[eNew], -1), 0)
		}
	}
}

// leAt returns the (r_nh(n) ≤ k) indicator as a bval.
func (e *encoder) leAt(n topology.NodeID, k int) bval {
	if k <= 0 {
		return cst(false)
	}
	if k >= e.R {
		return cst(true)
	}
	return vr(e.leK[n][k-1])
}

// eqAt returns the (r_nh(n) = k) indicator.
func (e *encoder) eqAt(n topology.NodeID, k int) bval {
	if m := e.eqCache[n]; m != nil {
		if b, ok := m[k]; ok {
			return b
		}
	} else {
		e.eqCache[n] = make(map[int]bval)
	}
	var b bval
	le, lePrev := e.leAt(n, k), e.leAt(n, k-1)
	switch {
	case le.isConst && lePrev.isConst:
		b = cst(le.c && !lePrev.c)
	case lePrev.isConst && !lePrev.c && !le.isConst:
		b = le // eq = leK[k] − 0
	case le.isConst && le.c && !lePrev.isConst:
		b = e.not(lePrev) // eq = 1 − leK[k-1]
	default:
		v := e.model.NewBool(fmt.Sprintf("eq/n%d/%d", n, k))
		// v = le − lePrev.
		e.model.AddEq(milp.VarExpr(v).Add(le.v, -1).Add(lePrev.v, 1), 0)
		b = vr(v)
	}
	e.eqCache[n][k] = b
	return b
}

func (e *encoder) not(b bval) bval {
	if b.isConst {
		return cst(!b.c)
	}
	if v, ok := e.notCache[b.v]; ok {
		return vr(v)
	}
	v := e.model.NewBool("not/" + e.model.Name(b.v))
	e.model.AddBoolNot(v, b.v)
	e.notCache[b.v] = v
	return vr(v)
}

// impliesEq posts: cond ⇒ x = y, where cond is a bval.
func (e *encoder) impliesEq(cond bval, x, y bval) {
	if cond.isConst {
		if !cond.c {
			return
		}
		e.assertEq(x, y)
		return
	}
	switch {
	case x.isConst && y.isConst:
		if x.c != y.c {
			e.model.AddEq(milp.VarExpr(cond.v), 0) // cond impossible
		}
	case x.isConst:
		e.impliesEq(cond, y, x)
	case y.isConst:
		val := int64(0)
		if y.c {
			val = 1
		}
		e.model.AddImpliesEq(cond.v, milp.VarExpr(x.v), val)
	default:
		e.model.AddImpliesEq(cond.v, milp.VarExpr(x.v).Add(y.v, -1), 0)
	}
}

func (e *encoder) assertEq(x, y bval) {
	switch {
	case x.isConst && y.isConst:
		if x.c != y.c {
			// Infeasible model: 0 = 1.
			e.model.AddEq(milp.Lin(), 1)
		}
	case x.isConst:
		e.assertEq(y, x)
	case y.isConst:
		val := int64(0)
		if y.c {
			val = 1
		}
		e.model.AddEq(milp.VarExpr(x.v), val)
	default:
		e.model.AddEq(milp.VarExpr(x.v).Add(y.v, -1), 0)
	}
}

// --- happens-before (§4.1) -------------------------------------------------

func (e *encoder) buildHappensBefore() {
	for _, n := range e.a.Switching {
		// Old route availability.
		if e.permanentOld(n) {
			// The old route never disappears: no temporary session can
			// ever be needed, so pin r_old = r_nh.
			e.model.AddEq(milp.VarExpr(e.rOld[n]).Add(e.rNh[n], -1), 0)
			e.model.AddEq(milp.VarExpr(e.tOld[n]), 0)
		} else {
			var ys []milp.VarID
			for _, m := range e.a.DOld[n] {
				if !e.isSwitching[m] {
					continue
				}
				y := e.model.NewBool(fmt.Sprintf("yOld/n%d/m%d", n, m))
				// y ⇒ r_old(n) < r_old(m).
				e.model.AddImpliesLe(y, milp.VarExpr(e.rOld[n]).Add(e.rOld[m], -1), -1)
				ys = append(ys, y)
			}
			if len(ys) == 0 {
				// No provider can outlive n: the temporary old-egress
				// session must take over during setup.
				e.model.AddEq(milp.VarExpr(e.rOld[n]), 0)
			} else {
				e.model.AtLeastOne(ys...)
			}
		}
		// New route availability.
		if e.permanentNew(n) {
			e.model.AddEq(milp.VarExpr(e.rNew[n]).Add(e.rNh[n], -1), 0)
			e.model.AddEq(milp.VarExpr(e.tNew[n]), 0)
		} else {
			var ys []milp.VarID
			for _, m := range e.a.DNew[n] {
				if !e.isSwitching[m] {
					continue
				}
				y := e.model.NewBool(fmt.Sprintf("yNew/n%d/m%d", n, m))
				// y ⇒ r_new(n) > r_new(m).
				e.model.AddImpliesGe(y, milp.VarExpr(e.rNew[n]).Add(e.rNew[m], -1), 1)
				ys = append(ys, y)
			}
			if len(ys) == 0 {
				// No provider precedes n: the final route arrives only
				// during cleanup, over the temporary new-egress session.
				e.model.AddEq(milp.VarExpr(e.rNew[n]), int64(e.R)+1)
			} else {
				e.model.AtLeastOne(ys...)
			}
		}
	}
}

// permanentOld reports whether n's old route remains available through the
// whole update phase: it arrives over eBGP, or some provider never switches
// its announcement.
func (e *encoder) permanentOld(n topology.NodeID) bool {
	if e.a.ExtProviderOld[n] {
		return true
	}
	for _, m := range e.a.DOld[n] {
		if !e.isSwitching[m] {
			return true
		}
	}
	return false
}

func (e *encoder) permanentNew(n topology.NodeID) bool {
	if e.a.ExtProviderNew[n] {
		return true
	}
	for _, m := range e.a.DNew[n] {
		if !e.isSwitching[m] {
			return true
		}
	}
	return false
}

// --- concurrent updates (§4.2, Eq. 2) --------------------------------------

// changesNH reports whether node n's forwarding next hop differs between
// the states (only those contribute forwarding changes).
func (e *encoder) changesNH(n topology.NodeID) bool {
	return e.a.NHOld[n] != e.a.NHNew[n]
}

func (e *encoder) buildConcurrency() {
	// δ variables exist for every next-hop-changing node and round.
	for _, n := range e.a.Switching {
		if !e.changesNH(n) {
			continue
		}
		ds := make([]milp.VarID, e.R)
		for k := 1; k <= e.R; k++ {
			ds[k-1] = e.model.NewBool(fmt.Sprintf("delta/n%d/%d", n, k))
		}
		e.delta[n] = ds
	}
	// Ablation: full serialization — at most one forwarding change per
	// round, eliminating §4.2's concurrency entirely.
	if e.opts.SerializeUpdates {
		for k := 1; k <= e.R; k++ {
			expr := milp.Lin()
			constant := int64(0)
			// Switching order, not map order: constraint emission order
			// must be deterministic for traces to reproduce byte-for-byte.
			for _, n := range e.a.Switching {
				eq := e.eqAt(n, k)
				if eq.isConst {
					if eq.c {
						constant++
					}
					continue
				}
				expr = expr.Add(eq.v, 1)
			}
			e.model.AddLe(expr, 1-constant)
		}
	}
	// Switching order, not map order over e.delta: the emitted constraint
	// order decides the propagation queue's visit order, and with it the
	// solver-effort counters the observability layer reports — those must
	// reproduce byte-for-byte run to run.
	for _, n := range e.a.Switching {
		ds, ok := e.delta[n]
		if !ok { // no δ variables: node keeps its next hop
			continue
		}
		x, y := e.a.NHOld[n], e.a.NHNew[n]
		for k := 1; k <= e.R; k++ {
			dn := vr(ds[k-1])
			dx := e.deltaOf(x, k)
			dy := e.deltaOf(y, k)
			// r_nh > k  ⇒ δ_n = δ_x.
			e.impliesEq(e.not(e.leAt(n, k)), dn, dx)
			// r_nh < k (≤ k−1) ⇒ δ_n = δ_y.
			e.impliesEq(e.leAt(n, k-1), dn, dy)
			// r_nh = k ⇒ δ_n = 1 ∧ δ_x = 0 ∧ δ_y = 0 (Eq. 2's
			// δ_n = 1 + δ_x + δ_y with all in {0,1}).
			eq := e.eqAt(n, k)
			e.impliesEq(eq, dn, cst(true))
			e.impliesEq(eq, dx, cst(false))
			e.impliesEq(eq, dy, cst(false))
		}
	}
}

// deltaOf resolves the δ value of a next hop at round k: terminals are
// constant 0; unchanged nodes alias through their constant next hop;
// changing nodes contribute their δ variable.
func (e *encoder) deltaOf(n topology.NodeID, k int) bval {
	seen := make(map[topology.NodeID]bool)
	for {
		if n == fwd.Drop || n == fwd.External || n == topology.None {
			return cst(false)
		}
		if ds, ok := e.delta[n]; ok {
			return vr(ds[k-1])
		}
		if seen[n] {
			return cst(false) // defensive: constant-nh loop cannot occur
		}
		seen[n] = true
		n = e.a.NHOld[n] // unchanged: NHOld == NHNew
	}
}

// --- loop constraints (§4.4, Eq. 3) ----------------------------------------

func (e *encoder) buildLoopConstraints() {
	cycles := e.a.SimpleCycles(e.opts.CycleLimit)
	for _, cyc := range cycles {
		j := len(cyc)
		if j < 2 {
			continue
		}
		for k := 1; k <= e.R; k++ {
			// Σ active edges ≤ j−1.
			expr := milp.Lin()
			constant := int64(0)
			for i, ni := range cyc {
				next := cyc[(i+1)%j]
				old := e.a.NHOld[ni] == next
				new_ := e.a.NHNew[ni] == next
				switch {
				case old && new_:
					constant++ // always active
				case old && e.changesNH(ni):
					// Active iff r_nh(ni) > k: contributes 1 − le.
					le := e.leAt(ni, k)
					if le.isConst {
						if !le.c {
							constant++
						}
					} else {
						constant++
						expr = expr.Add(le.v, -1)
					}
				case new_ && e.changesNH(ni):
					le := e.leAt(ni, k)
					if le.isConst {
						if le.c {
							constant++
						}
					} else {
						expr = expr.Add(le.v, 1)
					}
				}
			}
			e.model.AddLe(expr, int64(j-1)-constant)
		}
	}
}

// --- specification (§4.3) ---------------------------------------------------

func (e *encoder) buildSpec() error {
	root := e.specVal(e.sp.Root, 1)
	if root.isConst {
		if !root.c {
			// The specification can never hold at round 1 under any
			// schedule with this R.
			e.model.AddEq(milp.Lin(), 1) // 0 = 1: infeasible
		}
		return nil
	}
	e.model.AddEq(milp.VarExpr(root.v), 1)
	return nil
}

// specVal encodes expression ex at round k (k ∈ [1, R]); round R persists.
func (e *encoder) specVal(ex *spec.Expr, k int) bval {
	key := ek{ex, k}
	if b, ok := e.specMemo[key]; ok {
		return b
	}
	var b bval
	last := k >= e.R
	next := k + 1
	switch ex.Kind {
	case spec.KTrue:
		b = cst(true)
	case spec.KFalse:
		b = cst(false)
	case spec.KReach:
		b = e.reachVal(ex.Node, k)
	case spec.KWp:
		b = e.wpVal(ex.Via, ex.Node, k)
	case spec.KExits:
		b = e.exitsVal(ex.Via, ex.Node, k)
	case spec.KAnd:
		b = e.and(e.specVal(ex.A, k), e.specVal(ex.B, k))
	case spec.KOr:
		b = e.or(e.specVal(ex.A, k), e.specVal(ex.B, k))
	case spec.KNot:
		b = e.not(e.specVal(ex.A, k))
	case spec.KNext:
		if last {
			b = e.specVal(ex.A, k)
		} else {
			b = e.specVal(ex.A, next)
		}
	case spec.KGlobally:
		if last {
			b = e.specVal(ex.A, k)
		} else {
			b = e.and(e.specVal(ex.A, k), e.specVal(ex, next))
		}
	case spec.KFinally:
		if last {
			b = e.specVal(ex.A, k)
		} else {
			b = e.or(e.specVal(ex.A, k), e.specVal(ex, next))
		}
	case spec.KUntil:
		if last {
			b = e.specVal(ex.B, k)
		} else {
			b = e.or(e.specVal(ex.B, k), e.and(e.specVal(ex.A, k), e.specVal(ex, next)))
		}
	case spec.KRelease:
		if last {
			b = e.specVal(ex.B, k)
		} else {
			b = e.and(e.specVal(ex.B, k), e.or(e.specVal(ex.A, k), e.specVal(ex, next)))
		}
	case spec.KWeakUntil:
		if last {
			b = e.or(e.specVal(ex.A, k), e.specVal(ex.B, k))
		} else {
			b = e.or(e.specVal(ex.B, k), e.and(e.specVal(ex.A, k), e.specVal(ex, next)))
		}
	case spec.KStrongRelease:
		if last {
			b = e.and(e.specVal(ex.A, k), e.specVal(ex.B, k))
		} else {
			both := e.and(e.specVal(ex.A, k), e.specVal(ex.B, k))
			b = e.or(both, e.and(e.specVal(ex.B, k), e.specVal(ex, next)))
		}
	default:
		b = cst(false)
	}
	e.specMemo[key] = b
	return b
}

func (e *encoder) and(x, y bval) bval {
	if x.isConst {
		if !x.c {
			return cst(false)
		}
		return y
	}
	if y.isConst {
		if !y.c {
			return cst(false)
		}
		return x
	}
	if x.v == y.v {
		return x
	}
	v := e.model.NewBool("and")
	e.model.AddBoolAnd(v, x.v, y.v)
	return vr(v)
}

func (e *encoder) or(x, y bval) bval {
	if x.isConst {
		if x.c {
			return cst(true)
		}
		return y
	}
	if y.isConst {
		if y.c {
			return cst(true)
		}
		return x
	}
	if x.v == y.v {
		return x
	}
	v := e.model.NewBool("or")
	e.model.AddBoolOr(v, x.v, y.v)
	return vr(v)
}

// reachVal encodes φ_reach(n, k) following §4.3: walk constant next hops;
// at a next-hop-changing node introduce a conditional variable.
func (e *encoder) reachVal(n topology.NodeID, k int) bval {
	// Resolve constant chains first.
	seen := make(map[topology.NodeID]bool)
	for {
		if n == fwd.External {
			return cst(true)
		}
		if n == fwd.Drop || n == topology.None {
			return cst(false)
		}
		if e.changesNH(n) && e.isSwitching[n] {
			break
		}
		if seen[n] {
			return cst(false) // constant loop: unreachable (cannot occur)
		}
		seen[n] = true
		n = e.a.NHOld[n]
	}
	key := nk{n, k}
	if b, ok := e.reachMemo[key]; ok {
		return b
	}
	v := e.model.NewBool(fmt.Sprintf("reach/n%d/%d", n, k))
	b := vr(v)
	e.reachMemo[key] = b // memo before recursion (cycles hit the var)
	le := e.leAt(n, k)
	// r_nh ≤ k ⇒ reach follows the new next hop; otherwise the old one.
	e.impliesEq(le, b, e.reachVal(e.a.NHNew[n], k))
	e.impliesEq(e.not(le), b, e.reachVal(e.a.NHOld[n], k))
	return b
}

// wpVal encodes φ_wp(w)(n, k) following §4.3.
func (e *encoder) wpVal(w, n topology.NodeID, k int) bval {
	seen := make(map[topology.NodeID]bool)
	for {
		if n == w {
			return cst(true)
		}
		if n == fwd.External || n == fwd.Drop || n == topology.None {
			return cst(false)
		}
		if e.changesNH(n) && e.isSwitching[n] {
			break
		}
		if seen[n] {
			return cst(false)
		}
		seen[n] = true
		n = e.a.NHOld[n]
	}
	key := wnk{w, n, k}
	if b, ok := e.wpMemo[key]; ok {
		return b
	}
	v := e.model.NewBool(fmt.Sprintf("wp/w%d/n%d/%d", w, n, k))
	b := vr(v)
	e.wpMemo[key] = b
	le := e.leAt(n, k)
	e.impliesEq(le, b, e.wpVal(w, e.a.NHNew[n], k))
	e.impliesEq(e.not(le), b, e.wpVal(w, e.a.NHOld[n], k))
	return b
}

// exitsVal encodes the routing-invariant predicate exits(n, target): the
// forwarding path of n at round k leaves the network exactly at target
// (§8's routing invariants, realized as recursive constraints in the style
// of §4.3's waypoint encoding).
func (e *encoder) exitsVal(target, n topology.NodeID, k int) bval {
	through := func(at, x topology.NodeID) (bval, bool) {
		switch x {
		case fwd.External:
			return cst(at == target), true
		case fwd.Drop: // == topology.None
			return cst(false), true
		}
		return bval{}, false
	}
	seen := make(map[topology.NodeID]bool)
	for {
		if n == fwd.Drop || n == fwd.External || n == topology.None {
			return cst(false)
		}
		if e.changesNH(n) && e.isSwitching[n] {
			break
		}
		x := e.a.NHOld[n] // unchanged: NHOld == NHNew
		if b, done := through(n, x); done {
			return b
		}
		if seen[n] {
			return cst(false)
		}
		seen[n] = true
		n = x
	}
	key := wnk{target, n, k}
	if b, ok := e.exitsMemo[key]; ok {
		return b
	}
	v := e.model.NewBool(fmt.Sprintf("exits/e%d/n%d/%d", target, n, k))
	b := vr(v)
	e.exitsMemo[key] = b
	resolve := func(x topology.NodeID) bval {
		if tb, done := through(n, x); done {
			return tb
		}
		return e.exitsVal(target, x, k)
	}
	le := e.leAt(n, k)
	e.impliesEq(le, b, resolve(e.a.NHNew[n]))
	e.impliesEq(e.not(le), b, resolve(e.a.NHOld[n]))
	return b
}

// --- branch order and extraction -------------------------------------------

// branchOrder orders r_nh variables by the node's depth in the new
// forwarding state (closest to the new egress first), so the ascending
// value enumeration naturally builds the new tree outward — the
// constructive order of App. B.
func (e *encoder) branchOrder() []milp.VarID {
	depth := make(map[topology.NodeID]int)
	var depthOf func(n topology.NodeID) int
	depthOf = func(n topology.NodeID) int {
		if n == fwd.External || n == fwd.Drop || n == topology.None {
			return 0
		}
		if d, ok := depth[n]; ok {
			return d
		}
		depth[n] = e.g.NumNodes() + 1 // cycle guard
		d := 1 + depthOf(e.a.NHNew[n])
		depth[n] = d
		return d
	}
	nodes := append([]topology.NodeID(nil), e.a.Switching...)
	sort.SliceStable(nodes, func(i, j int) bool {
		di, dj := depthOf(nodes[i]), depthOf(nodes[j])
		if di != dj {
			return di < dj
		}
		return nodes[i] < nodes[j]
	})
	var order []milp.VarID
	for _, n := range nodes {
		order = append(order, e.rNh[n])
	}
	for _, n := range nodes {
		order = append(order, e.rNew[n], e.rOld[n])
	}
	return order
}

func (e *encoder) extract(sol *milp.Solution) *NodeSchedule {
	s := &NodeSchedule{
		R:      e.R,
		Tuples: make(map[topology.NodeID]Tuple),
		MOld:   make(map[topology.NodeID]topology.NodeID),
		MNew:   make(map[topology.NodeID]topology.NodeID),
	}
	val := func(v milp.VarID) int { return int(sol.Values[v]) }
	for _, n := range e.a.Switching {
		t := Tuple{Old: val(e.rOld[n]), NH: val(e.rNh[n]), New: val(e.rNew[n])}
		s.Tuples[n] = t
		if t.Old < t.NH {
			s.TempOldSessions++
		}
		if t.NH < t.New {
			s.TempNewSessions++
		}
	}
	// Provider selection for the compiler (§5): m_old outlives r_old,
	// m_new precedes r_new; permanent providers are preferred.
	for _, n := range e.a.Switching {
		t := s.Tuples[n]
		s.MOld[n] = e.pickProvider(e.a.DOld[n], e.a.ExtProviderOld[n], func(m topology.NodeID) bool {
			return hOld(e.a, s, m) > t.Old
		}, func(m topology.NodeID) int { return hOld(e.a, s, m) }, true)
		s.MNew[n] = e.pickProvider(e.a.DNew[n], e.a.ExtProviderNew[n], func(m topology.NodeID) bool {
			return hNew(e.a, s, m) < t.New
		}, func(m topology.NodeID) int { return -hNew(e.a, s, m) }, true)
	}
	return s
}

// pickProvider returns the admissible provider maximizing score, or
// topology.None when the route arrives over eBGP.
func (e *encoder) pickProvider(cands []topology.NodeID, ext bool,
	ok func(topology.NodeID) bool, score func(topology.NodeID) int, _ bool) topology.NodeID {
	if ext {
		return topology.None
	}
	best := topology.None
	bestScore := 0
	for _, m := range cands {
		if !ok(m) {
			continue
		}
		if best == topology.None || score(m) > bestScore {
			best = m
			bestScore = score(m)
		}
	}
	return best
}
