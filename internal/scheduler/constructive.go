package scheduler

import (
	"fmt"
	"sort"

	"chameleon/internal/analyzer"
	"chameleon/internal/fwd"
	"chameleon/internal/topology"
)

// ConstructiveReachability builds a schedule by the breadth-first traversal
// of the new forwarding state from App. B (Alg. 1): one node per round, in
// an order that keeps every intermediate state reachable and loop-free. It
// proves Theorem 1 constructively — for reachability-only specifications a
// schedule always exists — and serves as the non-optimized baseline in the
// ablation benchmarks (it produces |switching| rounds where the ILP packs
// concurrent updates).
func ConstructiveReachability(a *analyzer.Analysis) (*NodeSchedule, error) {
	// Membership: nodes already "updated" (N_k). Unchanged nodes and the
	// destination are members from the start.
	updated := make(map[topology.NodeID]bool)
	pending := make(map[topology.NodeID]bool)
	for _, n := range a.Switching {
		if a.ChangesNextHop(n) {
			pending[n] = true
		}
	}
	for _, n := range a.Graph.Internal() {
		if !pending[n] {
			updated[n] = true
		}
	}
	// ready reports whether n's new next hop already forwards correctly.
	ready := func(n topology.NodeID) bool {
		nh := a.NHNew[n]
		if nh == fwd.External {
			return true
		}
		if nh == fwd.Drop || nh == topology.None {
			return false
		}
		return updated[nh]
	}

	s := &NodeSchedule{
		Tuples: make(map[topology.NodeID]Tuple),
		MOld:   make(map[topology.NodeID]topology.NodeID),
		MNew:   make(map[topology.NodeID]topology.NodeID),
	}
	round := 0
	for len(pending) > 0 {
		// Deterministic pick: the lowest-ID ready node.
		var pick topology.NodeID = topology.None
		var keys []topology.NodeID
		for n := range pending {
			keys = append(keys, n)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, n := range keys {
			if ready(n) {
				pick = n
				break
			}
		}
		if pick == topology.None {
			return nil, fmt.Errorf("scheduler: constructive traversal stuck with %d pending nodes (final state unreachable?)", len(pending))
		}
		round++
		s.Tuples[pick] = Tuple{Old: round, NH: round, New: round}
		delete(pending, pick)
		updated[pick] = true
	}
	// Switching nodes without a forwarding change update in dedicated
	// trailing rounds (their order is unconstrained by forwarding).
	for _, n := range a.Switching {
		if _, done := s.Tuples[n]; done {
			continue
		}
		round++
		s.Tuples[n] = Tuple{Old: round, NH: round, New: round}
	}
	s.R = round
	fixAvailability(a, s)
	chooseProviders(a, s)
	return s, nil
}

// fixAvailability adjusts r_old downwards and r_new upwards until the
// happens-before relations hold, introducing temporary sessions (r_old <
// r_nh or r_nh < r_new) where no provider covers the required horizon.
func fixAvailability(a *analyzer.Analysis, s *NodeSchedule) {
	// r_old: some provider must keep its old route strictly beyond r_old.
	changedSomething := true
	for changedSomething {
		changedSomething = false
		for _, n := range a.Switching {
			t := s.Tuples[n]
			if a.ExtProviderOld[n] || hasPermanentOld(a, s, n) {
				continue
			}
			maxH := 0
			for _, m := range a.DOld[n] {
				if h := hOld(a, s, m); h > maxH {
					maxH = h
				}
			}
			if t.Old >= maxH {
				want := maxH - 1
				if want < 1 {
					want = 1 // cannot move before the first round
				}
				if want != t.Old {
					t.Old = want
					s.Tuples[n] = t
					changedSomething = true
				}
			}
		}
	}
	// r_new: some provider must have its new route strictly before r_new.
	changedSomething = true
	for changedSomething {
		changedSomething = false
		for _, n := range a.Switching {
			t := s.Tuples[n]
			if a.ExtProviderNew[n] || hasPermanentNew(a, s, n) {
				continue
			}
			minH := s.R + 1
			for _, m := range a.DNew[n] {
				if h := hNew(a, s, m); h < minH {
					minH = h
				}
			}
			if t.New <= minH {
				want := minH + 1
				if want > s.R {
					want = s.R // cannot push past the last round
				}
				if want != t.New {
					t.New = want
					s.Tuples[n] = t
					changedSomething = true
				}
			}
		}
	}
	s.TempOldSessions, s.TempNewSessions = 0, 0
	for _, t := range s.Tuples {
		if t.Old < t.NH {
			s.TempOldSessions++
		}
		if t.NH < t.New {
			s.TempNewSessions++
		}
	}
}

func hasPermanentOld(a *analyzer.Analysis, s *NodeSchedule, n topology.NodeID) bool {
	for _, m := range a.DOld[n] {
		if _, switching := s.Tuples[m]; !switching {
			return true
		}
	}
	return false
}

func hasPermanentNew(a *analyzer.Analysis, s *NodeSchedule, n topology.NodeID) bool {
	for _, m := range a.DNew[n] {
		if _, switching := s.Tuples[m]; !switching {
			return true
		}
	}
	return false
}

// chooseProviders fills MOld/MNew from the final tuples, preferring
// permanent providers.
func chooseProviders(a *analyzer.Analysis, s *NodeSchedule) {
	for _, n := range a.Switching {
		t := s.Tuples[n]
		s.MOld[n] = topology.None
		if !a.ExtProviderOld[n] {
			best, bestH := topology.None, 0
			for _, m := range a.DOld[n] {
				if h := hOld(a, s, m); h > t.Old && h > bestH {
					best, bestH = m, h
				}
			}
			s.MOld[n] = best
		}
		s.MNew[n] = topology.None
		if !a.ExtProviderNew[n] {
			best, bestH := topology.None, s.R+2
			for _, m := range a.DNew[n] {
				if h := hNew(a, s, m); h < t.New && h < bestH {
					best, bestH = m, h
				}
			}
			s.MNew[n] = best
		}
	}
}
