package scheduler_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

func analyze(t *testing.T, s *scenario.Scenario) *analyzer.Analysis {
	t.Helper()
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// reachSpec builds G ∧_n reach(n).
func reachSpec(g *topology.Graph) *spec.Spec {
	b := spec.NewBuilder()
	var exprs []*spec.Expr
	for _, n := range g.Internal() {
		exprs = append(exprs, b.Reach(n))
	}
	return spec.NewSpec(b, b.Globally(b.And(exprs...)))
}

// caseStudySpec builds Eq. 4: ∧_n G reach(n) ∧ (wp(n,e1) U G wp(n,e_n)).
func caseStudySpec(a *analyzer.Analysis, e1 topology.NodeID) *spec.Spec {
	b := spec.NewBuilder()
	var exprs []*spec.Expr
	for _, n := range a.Graph.Internal() {
		exprs = append(exprs, b.Globally(b.Reach(n)))
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		exprs = append(exprs,
			b.Until(b.Wp(n, e1), b.Globally(b.Wp(n, en))))
	}
	return spec.NewSpec(b, b.And(exprs...))
}

func TestScheduleRunningExampleReachability(t *testing.T) {
	s := scenario.RunningExample()
	a := analyze(t, s)
	sp := reachSpec(s.Graph)
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := scheduler.Validate(a, sp, sched); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if sched.R < 1 || sched.R > 6 {
		t.Errorf("R = %d, want a small positive round count", sched.R)
	}
	// The paper schedules this example in 4 rounds with concurrency; our
	// minimal R must be at most the switching-node count.
	if sched.R > len(a.Switching) {
		t.Errorf("R = %d exceeds switching nodes %d", sched.R, len(a.Switching))
	}
	t.Logf("running example: R=%d, temp sessions=%d (old %d, new %d)",
		sched.R, sched.Stats.TempSessions, sched.TempOldSessions, sched.TempNewSessions)
}

func TestScheduleIsMinimalRounds(t *testing.T) {
	s := scenario.RunningExample()
	a := analyze(t, s)
	sp := reachSpec(s.Graph)
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Re-solving with MaxRounds = R-1 must fail: R is minimal.
	if sched.R > 1 {
		opts := scheduler.DefaultOptions()
		opts.MaxRounds = sched.R - 1
		if _, err := scheduler.Schedule(a, sp, opts); !errors.Is(err, scheduler.ErrUnschedulable) {
			t.Errorf("R-1 rounds unexpectedly schedulable (err=%v)", err)
		}
	}
}

func TestScheduleAbileneCaseStudyEq4(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sp := caseStudySpec(a, s.E1)
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := scheduler.Validate(a, sp, sched); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	t.Logf("abilene: switching=%d R=%d temp=%d solverNodes=%d",
		len(a.Switching), sched.R, sched.Stats.TempSessions, sched.Stats.SolverNodes)
}

func TestScheduleTuplesSatisfyEq1(t *testing.T) {
	s, err := scenario.CaseStudy("Aarnet", scenario.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sched, err := scheduler.Schedule(a, reachSpec(s.Graph), scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for n, tp := range sched.Tuples {
		// Eq. 1 extended by the setup (r_old = 0) and cleanup (r_new =
		// R+1) phases.
		if !(0 <= tp.Old && tp.Old <= tp.NH && 1 <= tp.NH && tp.NH <= sched.R &&
			tp.NH <= tp.New && tp.New <= sched.R+1) {
			t.Errorf("node %d: tuple %+v violates Eq. 1", n, tp)
		}
	}
}

func TestSchedulePerRoundIndependence(t *testing.T) {
	s, err := scenario.CaseStudy("Agis", scenario.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sp := reachSpec(s.Graph)
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Validate performs the independence and loop-freedom checks.
	if err := scheduler.Validate(a, sp, sched); err != nil {
		t.Fatal(err)
	}
	// Every intermediate state keeps full reachability.
	trace := scheduler.InducedTrace(a, sched)
	for k, st := range trace {
		for _, n := range a.Graph.Internal() {
			if !st.Reach(n) {
				t.Errorf("round %d: node %d lost reachability", k, n)
			}
		}
	}
}

func TestImplicitVsExplicitLoopConstraints(t *testing.T) {
	// Both encodings must agree on feasibility and round count (App. D:
	// the explicit constraints are redundant).
	s, err := scenario.CaseStudy("Claranet", scenario.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sp := reachSpec(s.Graph)
	optsE := scheduler.DefaultOptions()
	optsI := scheduler.DefaultOptions()
	optsI.ExplicitLoopConstraints = false
	se, err := scheduler.Schedule(a, sp, optsE)
	if err != nil {
		t.Fatal(err)
	}
	si, err := scheduler.Schedule(a, sp, optsI)
	if err != nil {
		t.Fatal(err)
	}
	if se.R != si.R {
		t.Errorf("explicit R=%d vs implicit R=%d", se.R, si.R)
	}
	if err := scheduler.Validate(a, sp, si); err != nil {
		t.Errorf("implicit-constraint schedule invalid: %v", err)
	}
}

func TestTemporalSpecSwitchOnce(t *testing.T) {
	// Eq. 4's U G component: each node switches egress at most once, from
	// e1 to its final egress. Build it for the running example.
	s := scenario.RunningExample()
	a := analyze(t, s)
	b := spec.NewBuilder()
	var exprs []*spec.Expr
	for _, n := range a.Graph.Internal() {
		exprs = append(exprs, b.Globally(b.Reach(n)))
		en := a.NHNew.Egress(n)
		e1 := a.NHOld.Egress(n)
		if en == topology.None || e1 == topology.None {
			continue
		}
		exprs = append(exprs, b.Until(b.Wp(n, e1), b.Globally(b.Wp(n, en))))
	}
	sp := spec.NewSpec(b, b.And(exprs...))
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := scheduler.Validate(a, sp, sched); err != nil {
		t.Fatal(err)
	}
}

func TestUnschedulableSpecReported(t *testing.T) {
	// An impossible specification: require永 wp through the old egress
	// globally while the reconfiguration removes it.
	s := scenario.RunningExample()
	a := analyze(t, s)
	b := spec.NewBuilder()
	n4 := s.Graph.MustNode("n4")
	sp := spec.NewSpec(b, b.Globally(b.Wp(n4, s.Graph.MustNode("n1"))))
	opts := scheduler.DefaultOptions()
	opts.MaxRounds = 4
	_, err := scheduler.Schedule(a, sp, opts)
	if !errors.Is(err, scheduler.ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
}

func TestConstructiveReachability(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sched, err := scheduler.ConstructiveReachability(a)
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	// The constructive schedule is a forwarding-level construction
	// (Theorem 1); signaling-level availability needs the ILP.
	if err := scheduler.ValidateForwarding(a, sp, sched); err != nil {
		t.Fatalf("constructive schedule invalid: %v", err)
	}
	// One node per round: R equals the switching count.
	if sched.R != len(a.Switching) {
		t.Errorf("constructive R = %d, want %d", sched.R, len(a.Switching))
	}
}

func TestConstructiveVsILPRounds(t *testing.T) {
	// The ILP must never need more rounds than the constructive baseline.
	s, err := scenario.CaseStudy("Aarnet", scenario.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sp := reachSpec(s.Graph)
	ilp, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	con, err := scheduler.ConstructiveReachability(a)
	if err != nil {
		t.Fatal(err)
	}
	if ilp.R > con.R {
		t.Errorf("ILP R=%d worse than constructive R=%d", ilp.R, con.R)
	}
	t.Logf("rounds: ILP=%d constructive=%d", ilp.R, con.R)
}

func TestMinimizeTempSessionsObjective(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sp := reachSpec(s.Graph)
	withObj := scheduler.DefaultOptions()
	noObj := scheduler.DefaultOptions()
	noObj.MinimizeTempSessions = false
	so, err := scheduler.Schedule(a, sp, withObj)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := scheduler.Schedule(a, sp, noObj)
	if err != nil {
		t.Fatal(err)
	}
	if so.Stats.TempSessions > sf.TempOldSessions+sf.TempNewSessions {
		t.Errorf("objective produced MORE temp sessions (%d) than feasibility (%d)",
			so.Stats.TempSessions, sf.TempOldSessions+sf.TempNewSessions)
	}
}

func TestEmptySwitchingSet(t *testing.T) {
	// A no-op reconfiguration (final == initial) yields an empty schedule.
	s := scenario.RunningExample()
	a, err := analyzer.Analyze(s.Net, s.Net.Clone(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.Schedule(a, reachSpec(s.Graph), scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sched.R != 0 || len(sched.Tuples) != 0 {
		t.Errorf("no-op reconfiguration produced R=%d tuples=%d", sched.R, len(sched.Tuples))
	}
}

func TestScheduleTimeLimit(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	opts := scheduler.DefaultOptions()
	opts.TimeLimitPerRound = time.Nanosecond
	_, err = scheduler.Schedule(a, reachSpec(s.Graph), opts)
	if err == nil {
		t.Skip("solved before the timer fired; nothing to assert")
	}
	if !strings.Contains(err.Error(), "milp") && !errors.Is(err, scheduler.ErrUnschedulable) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestScheduleStats(t *testing.T) {
	s := scenario.RunningExample()
	a := analyze(t, s)
	sched, err := scheduler.Schedule(a, reachSpec(s.Graph), scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Stats.RoundsTried < 1 || sched.Stats.Variables == 0 || sched.Stats.Duration <= 0 {
		t.Errorf("stats not populated: %+v", sched.Stats)
	}
}

func TestScheduleStringFormatting(t *testing.T) {
	s := scenario.RunningExample()
	a := analyze(t, s)
	sched, err := scheduler.Schedule(a, reachSpec(s.Graph), scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for n, tp := range sched.Tuples {
		line := fmt.Sprintf("node %d: %+v tempOld=%v tempNew=%v", n, tp,
			sched.TempOld(n), sched.TempNew(n))
		if line == "" {
			t.Fatal("unreachable")
		}
	}
}

// TestRoutingInvariantExits exercises the §8 routing-invariant extension:
// schedule under a spec that constrains which egress each node uses over
// time, using the exits predicate.
func TestRoutingInvariantExits(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range a.Graph.Internal() {
		es = append(es, b.Globally(b.Reach(n)))
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		// Routing invariant: n uses exactly e1, then exactly its final
		// egress — stricter than the waypoint form since it pins the
		// egress router itself.
		es = append(es, b.Until(b.Exits(n, s.E1), b.Globally(b.Exits(n, en))))
	}
	sp := spec.NewSpec(b, b.And(es...))
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := scheduler.Validate(a, sp, sched); err != nil {
		t.Fatalf("invalid schedule under routing invariants: %v", err)
	}
}

// TestSerializeUpdatesAblation: with full serialization every round
// contains at most one forwarding change, and R can only grow.
func TestSerializeUpdatesAblation(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, s)
	sp := reachSpec(s.Graph)
	conc, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := scheduler.DefaultOptions()
	opts.SerializeUpdates = true
	ser, err := scheduler.Schedule(a, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ser.R < conc.R {
		t.Errorf("serialized R=%d below concurrent R=%d", ser.R, conc.R)
	}
	// At most one next-hop change per round.
	perRound := map[int]int{}
	for n, tp := range ser.Tuples {
		if a.ChangesNextHop(n) {
			perRound[tp.NH]++
		}
	}
	for k, c := range perRound {
		if c > 1 {
			t.Errorf("round %d has %d forwarding changes under serialization", k, c)
		}
	}
	if err := scheduler.Validate(a, sp, ser); err != nil {
		t.Fatal(err)
	}
}
