// Package scheduler implements Chameleon's second stage (§4): it encodes
// the happens-before relations, concurrent-update independence, forwarding
// loop-freedom, and the LTL specification as an integer linear program, and
// searches for the node schedule with the fewest rounds (primary objective)
// and fewest temporary BGP sessions (secondary objective).
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/fwd"
	"chameleon/internal/milp"
	"chameleon/internal/obs"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// Tuple is the schedule (r_old, r_nh, r_new) of one node (§4.1, Eq. 1):
// the node receives its old route until round Old, changes its next hop in
// round NH, and receives its new route from round New on.
type Tuple struct {
	Old, NH, New int
}

// NodeSchedule is the scheduler's output: a round count and a tuple per
// switching node, plus the providers chosen to pin during setup.
type NodeSchedule struct {
	// R is the number of update-phase rounds.
	R int
	// Tuples holds the (r_old, r_nh, r_new) of every switching node.
	Tuples map[topology.NodeID]Tuple
	// MOld[n] is the neighbor whose old route n is pinned to during
	// setup; topology.None when the old route arrives over eBGP.
	MOld map[topology.NodeID]topology.NodeID
	// MNew[n] is the neighbor n's new route is learned from in round
	// r_new; topology.None when the new route arrives over eBGP.
	MNew map[topology.NodeID]topology.NodeID
	// TempOldSessions and TempNewSessions count required temporary
	// sessions towards e(Pold(n)) and e(Pnew(n)).
	TempOldSessions, TempNewSessions int

	Stats Stats
}

// Stats aggregates solve effort across the round-minimization loop.
type Stats struct {
	RoundsTried  int
	SolverNodes  int64
	Propagations int64
	LPPivots     int64
	Duration     time.Duration
	Variables    int
	Constraints  int
	ObjectiveOpt bool
	TempSessions int
}

// TempOld reports whether node n needs a temporary session to its old
// egress (r_old < r_nh).
func (s *NodeSchedule) TempOld(n topology.NodeID) bool {
	t, ok := s.Tuples[n]
	return ok && t.Old < t.NH
}

// TempNew reports whether node n needs a temporary session to its new
// egress (r_nh < r_new).
func (s *NodeSchedule) TempNew(n topology.NodeID) bool {
	t, ok := s.Tuples[n]
	return ok && t.NH < t.New
}

// Options tune the scheduler.
type Options struct {
	// MaxRounds caps the round-minimization loop (default 16).
	MaxRounds int
	// DisableSlackPhase turns off the fallback that, when every round
	// count up to MaxRounds is undecided, tries generous round counts
	// (2×, 4×, 8× MaxRounds — more slack makes feasibility easy) and
	// bisects back down. With the fallback, Schedule fails only when the
	// reconfiguration looks genuinely unschedulable.
	DisableSlackPhase bool
	// TimeLimitPerRound bounds each feasibility ILP solve in the retry
	// pass (default 60s).
	TimeLimitPerRound time.Duration
	// ScanTimePerRound bounds each solve in the first, scanning pass over
	// round counts (default 2s). Rounds left undecided by the scan are
	// retried with TimeLimitPerRound only if the scan finds no feasible
	// round count at all; the returned R is therefore minimal up to the
	// solver budget.
	ScanTimePerRound time.Duration
	// ObjectiveTimeLimit bounds the temp-session minimization pass after
	// the first feasible schedule at the minimal R (default 2s); on
	// expiry the best schedule found so far is returned.
	ObjectiveTimeLimit time.Duration
	// SolverNodeBudget, when > 0, switches every solver budget from
	// wall-clock to a deterministic node count: scan attempts get
	// SolverNodeBudget nodes each, retry attempts 8×, slack attempts 2×,
	// and the temp-session minimization SolverNodeBudget nodes per
	// improvement iteration. ScanTimePerRound, TimeLimitPerRound and
	// ObjectiveTimeLimit are then ignored, so the schedule for a given
	// analysis and spec is machine- and load-independent — which the
	// parallel evaluation sweeps rely on to merge byte-identical results
	// at any worker count. The cost is that an under-budgeted search is
	// truncated at the same point everywhere rather than stretching on a
	// fast idle machine.
	SolverNodeBudget int64
	// ExplicitLoopConstraints adds the Eq. 3 cycle constraints (§4.4).
	// They are implied by the concurrency constraints (App. D) but reduce
	// solving variance; default true, disabled for the Fig. 13 ablation.
	ExplicitLoopConstraints bool
	// MinimizeTempSessions runs the secondary objective (§4.1); when
	// false the first feasible schedule at the minimum R is returned.
	MinimizeTempSessions bool
	// UseLPBound enables LP-relaxation bounding inside the MILP solver.
	UseLPBound bool
	// CycleLimit caps explicit loop enumeration (default 10000).
	CycleLimit int
	// SerializeUpdates forbids concurrent forwarding changes entirely: at
	// most one next-hop change per round (ablation of §4.2's concurrent
	// updates — quantifies how much concurrency shortens reconfigurations).
	SerializeUpdates bool
}

// DeterministicNodeBudget is the SolverNodeBudget the evaluation sweeps
// use. Calibrated at ≈ 3× the total nodes the hardest corpus scenario
// (Sprint) needs to reach a proven-optimal schedule, so the budget changes
// results only where the wall-clock limits would have truncated anyway.
const DeterministicNodeBudget = 1 << 15

// DefaultOptions mirror the paper's configuration with one deliberate
// departure: solver budgets default to the deterministic node budget
// rather than the paper's wall-clock limits, so the default path yields
// the same schedule on any machine under any load. Callers that really
// want wall-clock budgets must set them explicitly (and get a one-time
// deprecation note).
func DefaultOptions() Options {
	return Options{
		MaxRounds:               16,
		SolverNodeBudget:        DeterministicNodeBudget,
		ExplicitLoopConstraints: true,
		MinimizeTempSessions:    true,
		CycleLimit:              10000,
	}
}

// wallClockOnce gates the stderr half of the wall-clock deprecation note:
// sweeps schedule thousands of scenarios, so the human-facing line prints
// once per process.
var wallClockOnce sync.Once

// warnWallClock notes that a schedule was computed under wall-clock solver
// budgets and is therefore machine- and load-dependent.
func warnWallClock() {
	wallClockOnce.Do(func() {
		fmt.Fprintln(os.Stderr, "scheduler: wall-clock solver budgets are deprecated: "+
			"results depend on machine speed and load; set SolverNodeBudget instead")
	})
}

// SplitNodeBudget divides a global deterministic solver node budget across
// prefix equivalence classes proportionally to weights (member counts):
// class i gets ⌊total·wᵢ/Σw⌋ nodes, the rounding remainder is handed out
// one node at a time in index order, and no class gets less than one node.
// The split is a pure function of (total, weights), so decomposed planning
// stays deterministic at any parallelism. A non-positive total (wall-clock
// mode) yields all zeros.
func SplitNodeBudget(total int64, weights []int) []int64 {
	out := make([]int64, len(weights))
	if total <= 0 || len(weights) == 0 {
		return out
	}
	ws := make([]int64, len(weights))
	var sum int64
	for i, w := range weights {
		ws[i] = int64(w)
		if ws[i] < 1 {
			ws[i] = 1
		}
		sum += ws[i]
	}
	var given int64
	for i := range ws {
		out[i] = total * ws[i] / sum
		if out[i] < 1 {
			out[i] = 1
		}
		given += out[i]
	}
	for i := 0; given < total; i = (i + 1) % len(out) {
		out[i]++
		given++
	}
	return out
}

// ErrUnschedulable is returned when no schedule satisfying the
// specification exists within MaxRounds — the paper's "Chameleon notifies
// the user that it cannot perform the reconfiguration safely" case (§8).
var ErrUnschedulable = errors.New("scheduler: no safe schedule exists within the round limit")

// Schedule searches for the minimum-round schedule satisfying sp.
// The specification must hold in the initial and final states (checked
// against rounds 0 and R of the induced trace). It is ScheduleCtx under
// context.Background().
func Schedule(a *analyzer.Analysis, sp *spec.Spec, opts Options) (*NodeSchedule, error) {
	return ScheduleCtx(context.Background(), a, sp, opts)
}

// ScheduleCtx is Schedule with a context: cancellation propagates into the
// MILP branch-and-bound (polled sparsely, so aborts are prompt but cheap),
// and when ctx carries an *obs.Recorder the search records a "schedule"
// span with one "solve" child per attempted round count, counting solver
// effort (nodes, propagations, LP pivots) per attempt.
func ScheduleCtx(ctx context.Context, a *analyzer.Analysis, sp *spec.Spec, opts Options) (*NodeSchedule, error) {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 16
	}
	if opts.SolverNodeBudget == 0 {
		if opts.TimeLimitPerRound == 0 && opts.ScanTimePerRound == 0 && opts.ObjectiveTimeLimit == 0 {
			// Nothing was asked for: default to the deterministic node
			// budget, not wall-clock limits — the default path must not
			// produce load-dependent schedules.
			opts.SolverNodeBudget = DeterministicNodeBudget
		} else {
			// Explicit wall-clock mode: fill the remaining limits in.
			warnWallClock()
			if opts.TimeLimitPerRound == 0 {
				opts.TimeLimitPerRound = 60 * time.Second
			}
			if opts.ObjectiveTimeLimit == 0 {
				opts.ObjectiveTimeLimit = 2 * time.Second
			}
			if opts.ScanTimePerRound == 0 {
				opts.ScanTimePerRound = 2 * time.Second
			}
		}
	}
	ctx, span := obs.StartSpan(ctx, "schedule")
	defer span.End()
	start := time.Now()
	var agg Stats
	if len(a.Switching) == 0 {
		// Nothing changes announcements; the whole reconfiguration is
		// setup/cleanup only.
		return &NodeSchedule{R: 0, Tuples: map[topology.NodeID]Tuple{},
			MOld: map[topology.NodeID]topology.NodeID{},
			MNew: map[topology.NodeID]topology.NodeID{}, Stats: agg}, nil
	}
	attempt := func(r int, budget time.Duration, nodes int64) (*NodeSchedule, error) {
		agg.RoundsTried++
		span.Add(obs.CtrSchedRoundsTried, 1)
		_, solveSpan := obs.StartSpan(ctx, "solve", obs.Int("R", int64(r)))
		o := opts
		o.TimeLimitPerRound = budget
		o.SolverNodeBudget = nodes
		enc := newEncoder(a, sp, r, o)
		sched, stats, err := enc.solve(ctx)
		agg.SolverNodes += stats.Nodes
		agg.Propagations += stats.Propagations
		agg.LPPivots += stats.LPPivots
		agg.Variables = enc.model.NumVars()
		agg.Constraints = enc.model.NumConstraints()
		solveSpan.Add(obs.CtrMILPNodes, stats.Nodes)
		solveSpan.Add(obs.CtrMILPPropagations, stats.Propagations)
		solveSpan.Add(obs.CtrMILPLPBounds, stats.LPBounds)
		solveSpan.Add(obs.CtrLPPivots, stats.LPPivots)
		switch {
		case err == nil:
			agg.ObjectiveOpt = stats.Optimal
			span.Add(obs.CtrSchedSolvesOK, 1)
		case errors.Is(err, milp.ErrInfeasible):
			span.Add(obs.CtrSchedSolvesInfeas, 1)
		}
		solveSpan.End()
		return sched, err
	}
	finish := func(sched *NodeSchedule) (*NodeSchedule, error) {
		agg.Duration = time.Since(start)
		sched.Stats = agg
		sched.Stats.TempSessions = sched.TempOldSessions + sched.TempNewSessions
		return sched, nil
	}

	// Scan pass: cheap budget per round count; skip past infeasible and
	// undecided rounds alike (larger round counts are usually easier).
	var undecided []int
	for r := 1; r <= opts.MaxRounds; r++ {
		sched, err := attempt(r, opts.ScanTimePerRound, opts.SolverNodeBudget)
		if err == nil {
			return finish(sched)
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !errors.Is(err, milp.ErrInfeasible) {
			undecided = append(undecided, r)
		}
	}
	// Retry pass: split the full budget across the undecided round counts
	// (ascending, so the returned R stays as small as the budget allows).
	var lastErr error
	if len(undecided) > 0 {
		per := opts.TimeLimitPerRound / time.Duration(len(undecided))
		if per < 2*opts.ScanTimePerRound {
			per = 2 * opts.ScanTimePerRound
		}
		// In node-budget mode the retry pass needs no shared wall-clock
		// deadline: each attempt's node budget bounds it by itself, and a
		// deadline would reintroduce load dependence.
		var deadline time.Time
		if opts.SolverNodeBudget == 0 {
			deadline = time.Now().Add(opts.TimeLimitPerRound)
		}
		for _, r := range undecided {
			budget := per
			if opts.SolverNodeBudget == 0 {
				if remaining := time.Until(deadline); remaining < budget {
					budget = remaining
				}
				if budget <= 0 {
					lastErr = fmt.Errorf("scheduler: retry budget exhausted: %w", milp.ErrTimeout)
					break
				}
			}
			sched, err := attempt(r, budget, 8*opts.SolverNodeBudget)
			if err == nil {
				return finish(sched)
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if !errors.Is(err, milp.ErrInfeasible) {
				lastErr = fmt.Errorf("scheduler: solving with R=%d: %w", r, err)
			}
		}
	}
	// Slack phase. Tight round counts can be undecidable within budget
	// while generous ones solve in seconds (more slack, easier search).
	// Find any feasible schedule at 2×/4×/8× MaxRounds, then bisect back
	// down towards MaxRounds while the per-attempt budget holds.
	if !opts.DisableSlackPhase && len(undecided) > 0 {
		slackBudget := 2 * opts.ScanTimePerRound
		var best *NodeSchedule
		for factor := 2; factor <= 4; factor *= 2 {
			if sched, err := attempt(factor*opts.MaxRounds, slackBudget, 2*opts.SolverNodeBudget); err == nil {
				best = sched
				break
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
		}
		if best != nil {
			lo := opts.MaxRounds // everything ≤ MaxRounds was undecided
			for lo+1 < best.R {
				mid := (lo + best.R) / 2
				if sched, err := attempt(mid, slackBudget, 2*opts.SolverNodeBudget); err == nil {
					best = sched
				} else if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				} else {
					lo = mid
				}
			}
			return finish(best)
		}
	}

	agg.Duration = time.Since(start)
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, ErrUnschedulable
}

// Validate checks a schedule against the §4 constraints independently of
// the solver: Eq. 1 ordering, happens-before feasibility (signaling level),
// temporary-session egress coupling, per-round forwarding-path independence
// (Eq. 2), loop-freedom of every intermediate state, and the specification
// over the induced forwarding trace.
func Validate(a *analyzer.Analysis, sp *spec.Spec, s *NodeSchedule) error {
	// Happens-before: the provider pinned at setup must outlive the node's
	// old-route horizon, and the new provider must precede r_new. A node
	// with r_old = 0 lives on its temporary old-egress session from setup;
	// one with r_new = R+1 receives its final route during cleanup.
	for _, n := range a.Switching {
		t := s.Tuples[n]
		if !a.ExtProviderOld[n] && t.Old >= 1 {
			ok := false
			for _, m := range a.DOld[n] {
				if hOld(a, s, m) > t.Old {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("node %d: no provider outlives r_old=%d", n, t.Old)
			}
		}
		if !a.ExtProviderNew[n] && t.New <= s.R {
			ok := false
			for _, m := range a.DNew[n] {
				if hNew(a, s, m) < t.New {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("node %d: no provider precedes r_new=%d", n, t.New)
			}
		}
		// Temporary sessions only carry routes while the egress selects
		// them (§3 technique 1).
		if t.Old < t.NH {
			if eo := a.POld[n].Egress; eo != n {
				if te, ok := s.Tuples[eo]; ok && t.NH > te.NH {
					return fmt.Errorf("node %d uses a temp old session beyond the old egress's switch (%d > %d)", n, t.NH, te.NH)
				}
			}
		}
		if t.NH < t.New {
			if en := a.PNew[n].Egress; en != n {
				if te, ok := s.Tuples[en]; ok && t.NH < te.NH {
					return fmt.Errorf("node %d uses a temp new session before the new egress's switch (%d < %d)", n, t.NH, te.NH)
				}
			}
		}
	}
	return ValidateForwarding(a, sp, s)
}

// ValidateForwarding checks only the forwarding-level guarantees of a
// schedule: Eq. 1 ordering, per-round independence, loop-freedom, and the
// specification over the induced trace. The constructive App. B scheduler
// is validated at this level (Theorem 1 concerns forwarding only).
func ValidateForwarding(a *analyzer.Analysis, sp *spec.Spec, s *NodeSchedule) error {
	for n, t := range s.Tuples {
		if !(0 <= t.Old && t.Old <= t.NH && 1 <= t.NH && t.NH <= s.R && t.NH <= t.New && t.New <= s.R+1) {
			return fmt.Errorf("node %d tuple %+v violates 0 ≤ r_old ≤ r_nh ≤ r_new ≤ R+1", n, t)
		}
	}
	// Per-round independence and loop freedom over the induced trace.
	trace := InducedTrace(a, s)
	for k := 1; k <= s.R; k++ {
		if trace[k].HasLoop() {
			return fmt.Errorf("round %d has a forwarding loop", k)
		}
		// Every node whose nh changes in round k must not have another
		// change on its old or new forwarding path.
		for _, n := range changersAt(a, s, k) {
			for _, st := range []fwd.State{trace[k-1], trace[k]} {
				path, _ := st.Path(n)
				for _, p := range path[1:] {
					if t, ok := s.Tuples[p]; ok && t.NH == k && a.ChangesNextHop(p) {
						return fmt.Errorf("round %d: dependent concurrent updates %d and %d", k, n, p)
					}
				}
			}
		}
	}
	if sp != nil {
		// The encoder asserts the specification root at round 1 (§4.3);
		// validate against the same semantics.
		if !sp.Eval(trace[1:]) {
			return fmt.Errorf("specification violated by the induced trace")
		}
	}
	return nil
}

// hOld returns the round horizon until which m announces its old route:
// R+1 if m never switches announcement, its r_old otherwise.
func hOld(a *analyzer.Analysis, s *NodeSchedule, m topology.NodeID) int {
	if t, ok := s.Tuples[m]; ok {
		return t.Old
	}
	return s.R + 1
}

// hNew returns the first round from which m announces its new route: 0 if
// m never switches announcement, its r_new otherwise.
func hNew(a *analyzer.Analysis, s *NodeSchedule, m topology.NodeID) int {
	if t, ok := s.Tuples[m]; ok {
		return t.New
	}
	return 0
}

func changersAt(a *analyzer.Analysis, s *NodeSchedule, k int) []topology.NodeID {
	var out []topology.NodeID
	for n, t := range s.Tuples {
		if t.NH == k && a.ChangesNextHop(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InducedTrace returns the forwarding states [round 0 .. round R] induced
// by the schedule: in round k, nodes with r_nh ≤ k use their new next hop.
func InducedTrace(a *analyzer.Analysis, s *NodeSchedule) []fwd.State {
	trace := make([]fwd.State, s.R+1)
	for k := 0; k <= s.R; k++ {
		st := a.NHOld.Clone()
		for n, t := range s.Tuples {
			if t.NH <= k {
				st[n] = a.NHNew[n]
			}
		}
		trace[k] = st
	}
	return trace
}
