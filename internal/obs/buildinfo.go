package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary that produced an artifact: toolchain,
// module, and — when the binary was built from a VCS checkout — the exact
// revision. It is observational metadata: run bundles record it in their
// manifest and /healthz reports it, but it never participates in content
// addressing or diffing, because two runs of the same seeds must compare
// equal across commits that do not change behavior.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// Build reads the running binary's build information via
// debug.ReadBuildInfo. Binaries built without module support (pure `go
// test` of a vendored tree, stripped builds) still get the toolchain
// triple; everything else degrades to empty fields.
func Build() BuildInfo {
	b := BuildInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.VCSRevision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.VCSModified = s.Value == "true"
		}
	}
	return b
}
