package obs

import (
	"context"
	"testing"
)

// The instrumentation contract is that a nil recorder costs one pointer test
// on the hot path. These benchmarks pin that down; the eval harness's bench
// smoke keeps them honest in CI.

func BenchmarkNilSpanAdd(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Add(CtrMILPNodes, 1)
	}
}

func BenchmarkNilRecorderStartEnd(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan(nil, "solve")
		sp.End()
	}
}

func BenchmarkCtxStartSpanNoRecorder(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "solve")
		sp.End()
	}
}

func BenchmarkLiveSpanAdd(b *testing.B) {
	r := New()
	sp := r.StartSpan(nil, "solve")
	defer sp.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Add(CtrMILPNodes, 1)
	}
}

func TestNilPathAllocFree(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan(nil, "solve")
		sp.Add(CtrMILPNodes, 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder path allocates %v per op", allocs)
	}
	ctx := context.Background()
	allocs = testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, "solve")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-recorder context path allocates %v per op", allocs)
	}
}
