package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStreamBacklogAndEviction(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 5; i++ {
		s.Publish(StreamRecord{Type: "t", Name: fmt.Sprintf("r%d", i)})
	}
	backlog, sub := s.Subscribe(0)
	defer sub.Close()
	if len(backlog) != 3 {
		t.Fatalf("backlog = %d records, want ring capacity 3", len(backlog))
	}
	// Oldest evicted: the ring holds r2, r3, r4 in publish order.
	for i, want := range []string{"r2", "r3", "r4"} {
		if !strings.Contains(string(backlog[i]), want) {
			t.Errorf("backlog[%d] = %s, want name %s", i, backlog[i], want)
		}
	}
	if s.Seq() != 5 {
		t.Errorf("seq = %d, want 5", s.Seq())
	}

	s.Publish(StreamRecord{Type: "t", Name: "live"})
	select {
	case line := <-sub.C():
		if !strings.Contains(string(line), "live") {
			t.Errorf("live record = %s", line)
		}
	default:
		t.Error("subscriber did not receive the live record")
	}
}

func TestStreamDropCounter(t *testing.T) {
	s := NewStream(8)
	_, sub := s.Subscribe(1) // room for exactly one undrained record
	defer sub.Close()
	s.Publish(StreamRecord{Type: "a"})
	s.Publish(StreamRecord{Type: "b"})
	s.Publish(StreamRecord{Type: "c"})
	if got := s.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2 (buffer of 1, three publishes)", got)
	}
	// The backlog still has everything: drops are per-subscriber delivery
	// losses, not data loss.
	backlog, sub2 := s.Subscribe(0)
	defer sub2.Close()
	if len(backlog) != 3 {
		t.Errorf("backlog = %d, want 3", len(backlog))
	}
}

// TestStreamDropsMirroredToRecorder: a stream attached via SetStream
// mirrors slow-subscriber loss into CtrStreamDropped, so /metrics and
// metrics dumps show it without polling StreamSub.
func TestStreamDropsMirroredToRecorder(t *testing.T) {
	s := NewStream(8)
	rec := New()
	rec.SetStream(s)
	_, sub := s.Subscribe(1)
	defer sub.Close()
	for i := 0; i < 4; i++ {
		s.Publish(StreamRecord{Type: "t", Name: fmt.Sprintf("r%d", i)})
	}
	if got, want := rec.Counter(CtrStreamDropped), s.Dropped(); got != want || want != 3 {
		t.Errorf("CtrStreamDropped = %d, stream dropped = %d, want both 3", got, want)
	}
	// Detaching the stream detaches the drop accounting.
	rec.SetStream(nil)
	s.Publish(StreamRecord{Type: "t", Name: "after"})
	if got := rec.Counter(CtrStreamDropped); got != 3 {
		t.Errorf("detached stream still counted: %d", got)
	}
}

func TestStreamNilSafe(t *testing.T) {
	var s *Stream
	s.Publish(StreamRecord{Type: "x"}) // must not panic
	if s.Dropped() != 0 || s.Seq() != 0 {
		t.Error("nil stream reports activity")
	}
	backlog, sub := s.Subscribe(4)
	if backlog != nil || sub != nil {
		t.Error("nil stream produced a subscription")
	}
	sub.Close() // nil sub must not panic
}

func TestRecorderPublishesSpans(t *testing.T) {
	s := NewStream(16)
	r := New()
	r.SetStream(s)
	sp := r.StartSpan(nil, "phase")
	sp.End()
	backlog, sub := s.Subscribe(0)
	defer sub.Close()
	if len(backlog) != 2 {
		t.Fatalf("backlog = %d records, want span_start + span_end", len(backlog))
	}
	var start, end StreamRecord
	if err := json.Unmarshal(backlog[0], &start); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(backlog[1], &end); err != nil {
		t.Fatal(err)
	}
	if start.Type != "span_start" || start.Name != "phase" {
		t.Errorf("first record = %+v, want span_start phase", start)
	}
	if end.Type != "span_end" || end.Name != "phase" {
		t.Errorf("second record = %+v, want span_end phase", end)
	}
	if r.EventStream() != s {
		t.Error("EventStream does not return the attached stream")
	}
}

func TestEventsEndpointBacklogOnly(t *testing.T) {
	s := NewStream(8)
	s.Publish(StreamRecord{Type: "violation", Name: "reach"})
	h := HandlerWith(New(), ServeOptions{Stream: s})

	req := httptest.NewRequest("GET", "/events?follow=0", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	sc := bufio.NewScanner(w.Body)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want hello + 1 backlog record", len(lines))
	}
	if lines[0]["type"] != "hello" || lines[0]["backlog"] != float64(1) {
		t.Errorf("hello = %v", lines[0])
	}
	if lines[1]["type"] != "violation" {
		t.Errorf("backlog record = %v", lines[1])
	}
}

func TestEventsEndpointSSEFraming(t *testing.T) {
	s := NewStream(8)
	s.Publish(StreamRecord{Type: "x"})
	h := HandlerWith(New(), ServeOptions{Stream: s})
	req := httptest.NewRequest("GET", "/events?follow=0&sse=1", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body := w.Body.String()
	if !strings.HasPrefix(body, `data: {"type":"hello"`) {
		t.Errorf("SSE body does not start with a data: hello frame:\n%s", body)
	}
	if !strings.Contains(body, "\n\n") {
		t.Errorf("SSE frames not blank-line separated:\n%s", body)
	}
}

func TestEventsEndpointAbsentWithoutStream(t *testing.T) {
	h := HandlerWith(New(), ServeOptions{})
	req := httptest.NewRequest("GET", "/events", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("/events without a stream: status = %d, want 404", w.Code)
	}
}

// TestServeEphemeralPort: Serve(":0") binds an ephemeral port and reports
// the actual address; /metrics and /events answer on it.
func TestServeEphemeralPort(t *testing.T) {
	s := NewStream(8)
	rec := New()
	rec.SetStream(s)
	rec.Add("ctr", 1)
	s.Publish(StreamRecord{Type: "violation", Name: "reach"})

	srv, addr, err := ServeWith("127.0.0.1:0", rec, ServeOptions{Stream: s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address %q still names port 0", addr)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	if !strings.Contains(sb.String(), "chameleon_ctr_total 1") {
		t.Errorf("/metrics on %s lacks the counter:\n%s", addr, sb.String())
	}

	resp2, err := http.Get("http://" + addr + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	n := 0
	for sc2.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc2.Bytes(), &m); err != nil {
			t.Fatalf("malformed /events line %q: %v", sc2.Text(), err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("/events returned %d lines, want hello + 1 backlog record", n)
	}
}
