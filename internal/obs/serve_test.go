package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHealthzPlainFastPath: the default /healthz answer stays the literal
// "ok" probes expect.
func TestHealthzPlainFastPath(t *testing.T) {
	h := Handler(New(), PromOptions{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 \"ok\\n\"", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
}

// TestHealthzFullJSON: ?full=1 (or Accept: application/json) upgrades the
// probe to a JSON report with uptime, schema version and build info.
func TestHealthzFullJSON(t *testing.T) {
	h := Handler(New(), PromOptions{})
	for name, req := range map[string]*http.Request{
		"query":  httptest.NewRequest("GET", "/healthz?full=1", nil),
		"accept": httptest.NewRequest("GET", "/healthz", nil),
	} {
		if name == "accept" {
			req.Header.Set("Accept", "application/json")
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status = %d", name, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s: Content-Type = %q", name, ct)
		}
		var rep struct {
			Status  string    `json:"status"`
			UptimeS float64   `json:"uptime_s"`
			Schema  string    `json:"schema"`
			Build   BuildInfo `json:"build"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatalf("%s: body %q: %v", name, w.Body.String(), err)
		}
		if rep.Status != "ok" || rep.Schema != DumpSchema {
			t.Errorf("%s: report = %+v", name, rep)
		}
		if rep.UptimeS < 0 {
			t.Errorf("%s: negative uptime %f", name, rep.UptimeS)
		}
		if rep.Build.GoVersion == "" || rep.Build.GOOS == "" {
			t.Errorf("%s: build info empty: %+v", name, rep.Build)
		}
	}
}
