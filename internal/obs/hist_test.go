package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	r := New()
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 5, 1024, 1025} {
		r.Observe("lat", v)
	}
	h, ok := r.Histogram("lat")
	if !ok {
		t.Fatal("histogram not recorded")
	}
	if h.Count != 9 {
		t.Errorf("count = %d, want 9", h.Count)
	}
	// -5 clamps to 0; sum = 0+0+1+2+3+4+5+1024+1025.
	if h.Sum != 2064 {
		t.Errorf("sum = %d, want 2064", h.Sum)
	}
	// le=1: {-5,0,1}; le=2: {2}; le=4: {3,4}; le=8: {5}; le=1024: {1024};
	// le=2048: {1025}. Ascending, empty buckets omitted.
	want := []HistBucket{{1, 3}, {2, 1}, {4, 2}, {8, 1}, {1024, 1}, {2048, 1}}
	if len(h.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", h.Buckets, want)
	}
	for i, b := range want {
		if h.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, h.Buckets[i], b)
		}
	}
	if _, ok := r.Histogram("missing"); ok {
		t.Error("unknown histogram reported present")
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var r *Recorder
	r.Observe("x", 1) // must not panic
	if _, ok := r.Histogram("x"); ok {
		t.Error("nil recorder reported a histogram")
	}
	if hs := r.Histograms(); hs != nil {
		t.Errorf("nil recorder histograms = %v", hs)
	}
}

func TestWritePrometheusHistogramExposition(t *testing.T) {
	r := New()
	r.Add("ctr", 1)
	r.Set("g", 2)
	for _, v := range []int64{1, 3, 3, 9} {
		r.Observe("blame_ns", v)
	}
	r.Observe("alpha", 1)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b, PromOptions{}); err != nil {
		t.Fatal(err)
	}
	dump := b.String()

	// Cumulative buckets: le=1 → 1, le=4 → 3, le=16 → 4, +Inf → 4.
	for _, line := range []string{
		`# TYPE chameleon_blame_ns histogram`,
		`chameleon_blame_ns_bucket{le="1"} 1`,
		`chameleon_blame_ns_bucket{le="4"} 3`,
		`chameleon_blame_ns_bucket{le="16"} 4`,
		`chameleon_blame_ns_bucket{le="+Inf"} 4`,
		`chameleon_blame_ns_sum 16`,
		`chameleon_blame_ns_count 4`,
	} {
		if !strings.Contains(dump, line+"\n") {
			t.Errorf("exposition lacks %q:\n%s", line, dump)
		}
	}
	// Stable group order: counters, then gauges, then histograms sorted by
	// name (alpha before blame_ns).
	order := []string{
		"chameleon_ctr_total ",
		"chameleon_g ",
		`chameleon_alpha_bucket{le="1"} 1`,
		"chameleon_blame_ns_count 4",
	}
	last := -1
	for _, marker := range order {
		i := strings.Index(dump, marker)
		if i < 0 {
			t.Fatalf("exposition lacks %q:\n%s", marker, dump)
		}
		if i < last {
			t.Errorf("%q appears out of order:\n%s", marker, dump)
		}
		last = i
	}

	// Byte-stable across scrapes.
	var b2 bytes.Buffer
	if err := r.WritePrometheus(&b2, PromOptions{}); err != nil {
		t.Fatal(err)
	}
	if dump != b2.String() {
		t.Error("two scrapes of an idle recorder differ")
	}
}

func TestWritePrometheusHistogramConstLabels(t *testing.T) {
	r := New()
	r.Observe("h", 2)
	var b bytes.Buffer
	err := r.WritePrometheus(&b, PromOptions{
		ConstLabels: map[string]string{"job": "bench"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	// le is appended after the sorted const labels; _sum/_count carry the
	// const labels only.
	for _, line := range []string{
		`chameleon_h_bucket{job="bench",le="2"} 1`,
		`chameleon_h_bucket{job="bench",le="+Inf"} 1`,
		`chameleon_h_sum{job="bench"} 2`,
		`chameleon_h_count{job="bench"} 1`,
	} {
		if !strings.Contains(dump, line+"\n") {
			t.Errorf("exposition lacks %q:\n%s", line, dump)
		}
	}
}

func TestAdoptMergesHistograms(t *testing.T) {
	parent := New()
	parent.Observe("h", 1)
	child := parent.Fork()
	child.Observe("h", 100)
	child.Observe("other", 5)
	parent.Adopt("work", child)

	h, ok := parent.Histogram("h")
	if !ok || h.Count != 2 || h.Sum != 101 {
		t.Errorf("merged h = %+v, %v; want count 2 sum 101", h, ok)
	}
	if o, ok := parent.Histogram("other"); !ok || o.Count != 1 || o.Sum != 5 {
		t.Errorf("adopted other = %+v, %v", o, ok)
	}
}

func TestHistogramsInDumps(t *testing.T) {
	r := New()
	sp := r.StartSpan(nil, "root")
	r.Observe("h", 3)
	sp.End()

	var m bytes.Buffer
	if err := r.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), "hist h ") {
		t.Errorf("WriteMetrics lacks the histogram line:\n%s", m.String())
	}

	var j bytes.Buffer
	if err := r.WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), `"type":"hist"`) {
		t.Errorf("JSONL dump lacks the hist record:\n%s", j.String())
	}
	if _, err := ValidateJSONL(bytes.NewReader(j.Bytes())); err != nil {
		t.Errorf("dump with histogram does not validate: %v", err)
	}
}
