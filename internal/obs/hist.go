package obs

import (
	"math/bits"
	"sort"
)

// Histograms are the third metric kind next to counters and gauges: a
// log-bucketed distribution of int64 samples (latencies in nanoseconds,
// hop depths, batch sizes). Buckets are powers of two — bucket i counts
// samples v with v ≤ 2^i, assigned to the smallest such i — so the bucket
// layout is a pure function of the samples, never of configuration, and
// merged dumps stay byte-identical across worker counts (the
// worker-invariance contract). Negative samples clamp to the first bucket.

// histRecord is the stored form of one histogram: sparse per-bucket counts
// keyed by bucket index, plus the running sum and sample count.
type histRecord struct {
	buckets map[int]int64
	sum     int64
	count   int64
}

// bucketIndex returns the smallest i with v ≤ 2^i (0 for v ≤ 1).
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) uint64 { return 1 << uint(i) }

// HistBucket is one exported histogram bucket: the inclusive upper bound
// and the number of samples that landed in exactly this bucket
// (non-cumulative; Prometheus exposition derives the cumulative form).
type HistBucket struct {
	Le    uint64
	Count int64
}

// HistSnapshot is the exported state of one histogram.
type HistSnapshot struct {
	Name    string
	Buckets []HistBucket // ascending by Le, empty buckets omitted
	Sum     int64
	Count   int64
}

// Observe records one sample into the named histogram. Nil-safe.
func (r *Recorder) Observe(name string, v int64) {
	if r == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	r.mu.Lock()
	if r.hists == nil {
		r.hists = make(map[string]*histRecord)
	}
	h := r.hists[name]
	if h == nil {
		h = &histRecord{buckets: make(map[int]int64)}
		r.hists[name] = h
	}
	h.buckets[i]++
	h.sum += v
	h.count++
	r.mu.Unlock()
}

// Histogram returns a copy of the named histogram's state; false if no
// sample was ever observed under that name (or the recorder is nil).
func (r *Recorder) Histogram(name string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return HistSnapshot{}, false
	}
	return exportHist(name, h), true
}

// Histograms returns every histogram's state, sorted by name.
func (r *Recorder) Histograms() []HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histSnapshotLocked()
}

func (r *Recorder) histSnapshotLocked() []HistSnapshot {
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]HistSnapshot, 0, len(names))
	for _, name := range names {
		out = append(out, exportHist(name, r.hists[name]))
	}
	return out
}

func exportHist(name string, h *histRecord) HistSnapshot {
	idx := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	snap := HistSnapshot{Name: name, Sum: h.sum, Count: h.count}
	for _, i := range idx {
		snap.Buckets = append(snap.Buckets, HistBucket{Le: bucketBound(i), Count: h.buckets[i]})
	}
	return snap
}

// adoptHistsLocked folds child histogram state into r (both locks held by
// the caller): bucket counts, sums and counts add, which is commutative —
// adoption order cannot change the merged distribution.
func (r *Recorder) adoptHistsLocked(child map[string]*histRecord) {
	if len(child) == 0 {
		return
	}
	if r.hists == nil {
		r.hists = make(map[string]*histRecord, len(child))
	}
	for name, ch := range child {
		h := r.hists[name]
		if h == nil {
			h = &histRecord{buckets: make(map[int]int64, len(ch.buckets))}
			r.hists[name] = h
		}
		for i, c := range ch.buckets {
			h.buckets[i] += c
		}
		h.sum += ch.sum
		h.count += ch.count
	}
}
