package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestMetricsRoundTripByteIdentical pins WriteMetrics ↔ ParseMetrics as
// exact inverses — the canonicality contract the run-bundle differ relies
// on when it compares metrics parts structurally.
func TestMetricsRoundTripByteIdentical(t *testing.T) {
	r := New()
	r.Add("milp_nodes_explored", 1234)
	r.Add("sim_events_processed", 99)
	r.Set("plan_classes", 3)
	r.Set("another_gauge", -7)
	for _, v := range []int64{0, 1, 2, 3, 1023, 1024, 1025, 1 << 40} {
		r.Observe("monitor_blame_latency_ns", v)
	}
	r.Observe("sim_batch_size", 17)

	var orig bytes.Buffer
	if err := r.WriteMetrics(&orig); err != nil {
		t.Fatal(err)
	}
	d, err := ParseMetrics(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatalf("emitted metrics do not parse: %v", err)
	}
	if d.Counters["milp_nodes_explored"] != 1234 || d.Gauges["another_gauge"] != -7 {
		t.Fatalf("parsed values wrong: %+v", d)
	}
	if len(d.Hists) != 2 || d.Hists[0].Name != "monitor_blame_latency_ns" {
		t.Fatalf("parsed hists wrong: %+v", d.Hists)
	}
	var rewritten bytes.Buffer
	if err := d.Write(&rewritten); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rewritten.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n-- original --\n%s\n-- rewritten --\n%s",
			orig.String(), rewritten.String())
	}

	// An empty recorder round-trips to empty bytes.
	var empty bytes.Buffer
	if err := New().WriteMetrics(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty recorder wrote %q", empty.String())
	}
	if d, err := ParseMetrics(&empty); err != nil || len(d.Counters) != 0 {
		t.Fatalf("empty parse = %+v, %v", d, err)
	}
}

func TestParseMetricsRejectsNonCanonical(t *testing.T) {
	cases := map[string]string{
		"unknown kind":      "meter foo 1\n",
		"truncated":         "counter foo\n",
		"non-integer":       "counter foo bar\n",
		"out of order":      "counter b 1\ncounter a 2\n",
		"duplicate":         "counter a 1\ncounter a 2\n",
		"hist bad field":    "hist h x=1 sum=1 count=1\n",
		"hist no sum":       "hist h le1=1 count=1\n",
		"hist bucket order": "hist h le4=1 le2=1 sum=3 count=2\n",
		"hist count ≠ sum":  "hist h le1=1 sum=1 count=2\n",
	}
	for name, input := range cases {
		if _, err := ParseMetrics(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ParseMetrics accepted %q", name, input)
		}
	}
}
