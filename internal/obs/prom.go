package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromOptions tune the Prometheus text exposition of a recorder.
type PromOptions struct {
	// Namespace prefixes every metric name (default "chameleon").
	Namespace string
	// ConstLabels are attached to every sample, rendered in key order with
	// the label values escaped per the exposition format.
	ConstLabels map[string]string
	// Help optionally overrides the generic HELP text per (unprefixed)
	// metric name.
	Help map[string]string
}

// WritePrometheus emits the recorder's counters, gauges and histograms in
// the Prometheus text exposition format (version 0.0.4): one HELP and one
// TYPE line per metric followed by its samples. Counters get the
// conventional _total suffix; histograms are exposed as cumulative
// _bucket{le="..."} series (log-bucketed, powers of two) closed by an
// le="+Inf" bucket plus _sum and _count. Metrics appear in a stable order
// — all counters sorted by name, then all gauges, then all histograms — so
// scrapes of an idle recorder are byte-identical. A nil recorder exposes
// nothing.
func (r *Recorder) WritePrometheus(w io.Writer, opts PromOptions) error {
	if r == nil {
		return nil
	}
	ns := opts.Namespace
	if ns == "" {
		ns = "chameleon"
	}
	_, counters, gauges, _ := r.snapshot()
	hists := r.Histograms()
	labels := renderLabels(opts.ConstLabels)
	bw := bufio.NewWriter(w)
	emit := func(name, kind, help string, value int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
		fmt.Fprintf(bw, "%s%s %d\n", name, labels, value)
	}
	for _, name := range sortedKeys(counters) {
		metric := ns + "_" + sanitizeMetricName(name) + "_total"
		emit(metric, "counter", helpFor(opts, name, "counter"), counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		metric := ns + "_" + sanitizeMetricName(name)
		emit(metric, "gauge", helpFor(opts, name, "gauge"), gauges[name])
	}
	for _, h := range hists {
		metric := ns + "_" + sanitizeMetricName(h.Name)
		fmt.Fprintf(bw, "# HELP %s %s\n", metric, escapeHelp(helpFor(opts, h.Name, "histogram")))
		fmt.Fprintf(bw, "# TYPE %s %s\n", metric, "histogram")
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket%s %d\n", metric,
				renderLabelsWith(opts.ConstLabels, "le", fmt.Sprintf("%d", b.Le)), cum)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", metric,
			renderLabelsWith(opts.ConstLabels, "le", "+Inf"), h.Count)
		fmt.Fprintf(bw, "%s_sum%s %d\n", metric, labels, h.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", metric, labels, h.Count)
	}
	return bw.Flush()
}

// renderLabelsWith renders the const labels plus one extra pair (the
// histogram's le label), keeping the const labels' sorted-key order with
// the extra pair appended last, per exposition convention.
func renderLabelsWith(labels map[string]string, key, value string) string {
	extra := sanitizeLabelName(key) + `="` + escapeLabelValue(value) + `"`
	if len(labels) == 0 {
		return "{" + extra + "}"
	}
	base := renderLabels(labels)
	return base[:len(base)-1] + "," + extra + "}"
}

func helpFor(opts PromOptions, name, kind string) string {
	if h, ok := opts.Help[name]; ok {
		return h
	}
	return fmt.Sprintf("chameleon %s %s (see DESIGN.md section 9)", kind, name)
}

// renderLabels formats a label set as {k="v",...} with keys sorted and
// values escaped; an empty set renders as the empty string.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, sanitizeLabelName(k)+`="`+escapeLabelValue(labels[k])+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline — exactly the three escapes the
// format defines, so the output is what scrapers expect byte for byte.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are legal
// there).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// sanitizeMetricName maps an arbitrary counter name onto the metric name
// alphabet [a-zA-Z0-9_:], replacing every other rune with '_' and
// prefixing names that would start with a digit.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName is sanitizeMetricName without the colon (colons are
// reserved for recording rules in label-less positions).
func sanitizeLabelName(name string) string {
	return strings.ReplaceAll(sanitizeMetricName(name), ":", "_")
}
