package obs

// Counter inventory. Every instrumented package increments these names so
// dumps, dashboards and the reconciliation tests agree on spelling; the
// semantics are documented in DESIGN.md §9.
const (
	// Solver effort (scheduler / milp / lp).
	CtrMILPNodes         = "milp_nodes_explored"
	CtrMILPPropagations  = "milp_propagations"
	CtrMILPLPBounds      = "milp_lp_bounds"
	CtrLPPivots          = "lp_pivots"
	CtrSchedRoundsTried  = "sched_rounds_tried"
	CtrSchedSolvesOK     = "sched_solves_feasible"
	CtrSchedSolvesInfeas = "sched_solves_infeasible"

	// BGP substrate (sim). CtrSimEvents counts every processed simulator
	// event (message deliveries and scheduled functions alike) — the
	// denominator of event-throughput benchmarks.
	CtrSimEvents         = "sim_events_processed"
	CtrBGPUpdates        = "bgp_messages_update"
	CtrBGPWithdraws      = "bgp_messages_withdraw"
	CtrCommandsScheduled = "sim_commands_scheduled"
	CtrCommandsCancelled = "sim_commands_cancelled"
	CtrSessionsOpened    = "sessions_opened"
	CtrSessionsClosed    = "sessions_closed"

	// Fault layer (sim / chaos).
	CtrFaultsCommand = "faults_injected_command"
	CtrFaultsMessage = "faults_injected_message"
	CtrFaultsHealed  = "faults_healed"

	// Runtime controller.
	CtrExecCommandsPushed = "exec_commands_pushed"
	CtrExecRetries        = "exec_retries"
	CtrExecRepushes       = "exec_repushes"
	CtrExecEscalations    = "exec_escalations"
	CtrExecAcksLost       = "exec_acks_lost"
	CtrExecMonitorAlarms  = "exec_monitor_alarms"

	// Chaos harness.
	CtrChaosCases      = "chaos_cases"
	CtrChaosViolations = "chaos_violations"

	// Closed-loop supervisor. CtrSupJournalBytes counts bytes appended to
	// the execution journal (the WAL the supervisor replays after a crash);
	// the others count recovery decisions per degradation-ladder rung.
	CtrSupReplans      = "sup_replans"
	CtrSupCommits      = "sup_commits"
	CtrSupRollbacks    = "sup_rollbacks"
	CtrSupJournalBytes = "sup_journal_bytes"

	// Facade. Incremented each time a caller hands the facade one of the
	// deprecated wall-clock solver budgets (PlanOptions.TimeLimitPerRound /
	// ObjectiveTimeLimit) instead of SolverNodeBudget.
	CtrDeprecatedWallClock = "deprecated_wallclock_budget_uses"

	// Class-decomposed planning. CtrPlanClasses counts the prefix
	// equivalence classes a plan was decomposed into (one increment of n
	// per Plan call); CtrClassSolverNodes counts branch-and-bound nodes
	// attributed to per-class scheduling, recorded on each class span so
	// dumps show how the global budget was actually spent.
	CtrPlanClasses      = "plan_classes"
	CtrClassSolverNodes = "class_solver_nodes"

	// Live event stream. Counts records lost to slow /events subscribers
	// (Stream.Publish offers to each subscriber without blocking), mirrored
	// from the stream's own drop counter into the recorder so the loss is
	// visible on /metrics and in metrics dumps — not only via StreamSub.
	// Inherently nondeterministic (it depends on subscriber scheduling), so
	// the run-bundle differ exempts it from byte-identity comparisons.
	CtrStreamDropped = "obs_stream_dropped"

	// Transient-state monitor. Violation time is recorded in integer
	// nanoseconds of simulated time (counters are int64; the unit is part
	// of the name so dumps stay self-describing).
	CtrMonitorStatesChecked = "monitor_states_checked"
	CtrMonitorViolations    = "monitor_violations"
	CtrMonitorViolationTime = "monitor_violation_time_ns"
)

// Histogram inventory (Recorder.Observe; log-bucketed powers of two, see
// hist.go). The monitor observes the first three once per closed
// violation; the simulator observes batch sizes once per delivered batch
// message. Units, where any, are part of the name.
const (
	// HistBlameLatency is simulated time from a violation's root cause
	// firing to the violation's onset.
	HistBlameLatency = "monitor_blame_latency_ns"
	// HistViolationDuration is each violation's duration in simulated time.
	HistViolationDuration = "monitor_violation_duration_ns"
	// HistHopDepth is the BGP propagation hop depth at violation onset.
	HistHopDepth = "monitor_violation_hop_depth"
	// HistBatchSize is the number of routes carried per delivered batch
	// message (updates + withdrawals).
	HistBatchSize = "sim_batch_size"
)
