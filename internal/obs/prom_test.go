package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// Exposition-format line shapes (text format version 0.0.4).
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge)$`)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9]+$`)
)

// checkExposition parses a text-format dump: every line must be a HELP, a
// TYPE or a sample, every metric must carry exactly one HELP and one TYPE
// before its sample, and metric names must arrive in the emitted group
// order. Returns the metric names in order of appearance.
func checkExposition(t *testing.T, dump string) []string {
	t.Helper()
	var names []string
	lines := strings.Split(strings.TrimRight(dump, "\n"), "\n")
	for i := 0; i < len(lines); i += 3 {
		if i+2 >= len(lines) {
			t.Fatalf("truncated metric block at line %d: %q", i, lines[i:])
		}
		help, typ, sample := lines[i], lines[i+1], lines[i+2]
		if !helpRe.MatchString(help) {
			t.Errorf("malformed HELP line: %q", help)
		}
		if !typeRe.MatchString(typ) {
			t.Errorf("malformed TYPE line: %q", typ)
		}
		if !sampleRe.MatchString(sample) {
			t.Errorf("malformed sample line: %q", sample)
		}
		name := strings.Fields(help)[2]
		if typeName := strings.Fields(typ)[2]; typeName != name {
			t.Errorf("TYPE names %q but HELP names %q", typeName, name)
		}
		if !strings.HasPrefix(sample, name) {
			t.Errorf("sample %q does not match declared metric %q", sample, name)
		}
		names = append(names, name)
	}
	return names
}

func TestWritePrometheusConformance(t *testing.T) {
	r := New()
	r.Add(CtrMILPNodes, 1234)
	r.Add(CtrBGPUpdates, 9)
	r.Add("weird name-with.chars", 1)
	r.Set("table_size", 77)
	r.Set("queue_depth", -3)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b, PromOptions{}); err != nil {
		t.Fatal(err)
	}
	names := checkExposition(t, b.String())
	if len(names) != 5 {
		t.Fatalf("got %d metrics, want 5:\n%s", len(names), b.String())
	}
	// Counters (sorted, _total-suffixed) precede gauges (sorted).
	want := []string{
		"chameleon_bgp_messages_update_total",
		"chameleon_milp_nodes_explored_total",
		"chameleon_weird_name_with_chars_total",
		"chameleon_queue_depth",
		"chameleon_table_size",
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("metric %d = %q, want %q (stable sort order)", i, names[i], n)
		}
	}
	if !strings.Contains(b.String(), "chameleon_table_size 77\n") {
		t.Errorf("gauge sample missing:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "chameleon_queue_depth -3\n") {
		t.Errorf("negative gauge sample missing:\n%s", b.String())
	}

	// Byte-stable across repeated scrapes of an unchanged recorder.
	var b2 bytes.Buffer
	if err := r.WritePrometheus(&b2, PromOptions{}); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two scrapes of an idle recorder differ")
	}
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.Add(CtrChaosCases, 5)
	var b bytes.Buffer
	err := r.WritePrometheus(&b, PromOptions{
		Namespace: "bench",
		ConstLabels: map[string]string{
			"suite":    `abi"lene\path` + "\nnext",
			"bad-name": "v",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	checkExposition(t, dump)
	want := `bench_chaos_cases_total{bad_name="v",suite="abi\"lene\\path\nnext"} 5`
	if !strings.Contains(dump, want+"\n") {
		t.Errorf("escaped sample line missing:\nwant %s\ngot:\n%s", want, dump)
	}
}

func TestWritePrometheusNilRecorder(t *testing.T) {
	var r *Recorder
	var b bytes.Buffer
	if err := r.WritePrometheus(&b, PromOptions{}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil recorder exposed %q", b.String())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Add(CtrSimEvents, 11)
	srv := httptest.NewServer(Handler(r, PromOptions{ConstLabels: map[string]string{"job": "test"}}))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	checkExposition(t, body)
	if !strings.Contains(body, `chameleon_sim_events_processed_total{job="test"} 11`) {
		t.Errorf("/metrics missing live counter:\n%s", body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}
