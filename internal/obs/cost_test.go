package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// fakeSources returns deterministic cost sources: every wall reading
// advances 1000 ns, every memstats reading 7 mallocs / 64 bytes. Cost
// values become a pure function of the call sequence, which is what the
// golden tests pin.
func fakeSources() (func() int64, func() (uint64, uint64)) {
	var wall int64
	var mallocs, bts uint64
	return func() int64 {
			wall += 1000
			return wall
		}, func() (uint64, uint64) {
			mallocs += 7
			bts += 64
			return mallocs, bts
		}
}

func TestCostAttributionCumulativeAndSelf(t *testing.T) {
	r := New()
	r.setCostSources(fakeSources())
	root := r.StartSpan(nil, "plan") // wall=1000
	a := r.StartSpan(root, "analyze")
	a.End() // start 2000, end 3000 → cum 1000
	s := r.StartSpan(root, "schedule")
	s.Add(CtrMILPNodes, 42)
	s.End()    // start 4000, end 5000 → cum 1000
	root.End() // end 6000 → cum 5000

	paths, cost := r.CostSummary()
	if !cost {
		t.Fatal("cost attribution not reported enabled")
	}
	byPath := map[string]PathCost{}
	for _, p := range paths {
		byPath[p.Path] = p
	}
	if got := byPath["plan"].WallNS; got != 5000 {
		t.Errorf("plan cumulative wall = %d, want 5000", got)
	}
	// Self = 5000 − (1000 + 1000).
	if got := byPath["plan"].SelfWallNS; got != 3000 {
		t.Errorf("plan self wall = %d, want 3000", got)
	}
	if got := byPath["plan/analyze"].WallNS; got != 1000 {
		t.Errorf("analyze cumulative wall = %d, want 1000", got)
	}
	if got := byPath["plan/schedule"].SelfWallNS; got != 1000 {
		t.Errorf("schedule self wall = %d, want 1000", got)
	}
	// Six memstats reads happen (one per span boundary); the root's delta
	// spans reads 1..6, i.e. five intervals of 7 mallocs / 64 bytes.
	if got := byPath["plan"].Mallocs; got != 35 {
		t.Errorf("plan mallocs = %d, want 35", got)
	}
	if got := byPath["plan"].AllocBytes; got != 5*64 {
		t.Errorf("plan alloc bytes = %d, want %d", got, 5*64)
	}
}

func TestCostFieldsInJSONLAndZeroCosts(t *testing.T) {
	r := New()
	r.setCostSources(fakeSources())
	sp := r.StartSpan(nil, "work")
	sp.End()

	var raw bytes.Buffer
	if err := r.WriteJSONL(&raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"wall_ns":`, `"self_wall_ns":`, `"mallocs":`, `"alloc_bytes":`} {
		if !strings.Contains(raw.String(), field) {
			t.Errorf("cost-enabled dump missing %s:\n%s", field, raw.String())
		}
	}

	var zeroed bytes.Buffer
	if err := r.WriteJSONLWith(&zeroed, DumpOptions{ZeroCosts: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(zeroed.String(), `"wall_ns":0`) {
		t.Errorf("ZeroCosts dump should keep zeroed cost fields present:\n%s", zeroed.String())
	}
	if n, err := ValidateJSONL(strings.NewReader(raw.String())); err != nil || n != 1 {
		t.Errorf("cost-enabled dump does not re-validate: n=%d err=%v", n, err)
	}

	// Without cost attribution the fields must be absent entirely.
	plain := New()
	sp2 := plain.StartSpan(nil, "work")
	sp2.End()
	var off bytes.Buffer
	if err := plain.WriteJSONL(&off); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off.String(), "wall_ns") {
		t.Errorf("cost-disabled dump leaks cost fields:\n%s", off.String())
	}
}

func TestAdoptSumsChildRootCosts(t *testing.T) {
	child := New()
	child.setCostSources(fakeSources())
	a := child.StartSpan(nil, "a")
	a.End() // cum 1000
	b := child.StartSpan(nil, "b")
	b.End() // cum 1000

	parent := New()
	parent.setCostSources(fakeSources())
	parent.Adopt("run x", child)

	paths, _ := parent.CostSummary()
	var wrapper PathCost
	for _, p := range paths {
		if p.Path == "run x" {
			wrapper = p
		}
	}
	if wrapper.WallNS != 2000 {
		t.Errorf("wrapper cumulative wall = %d, want 2000 (sum of child roots)", wrapper.WallNS)
	}
	// The wrapper does no work of its own: all cumulative time is the
	// children's, so its self share is zero.
	if wrapper.SelfWallNS != 0 {
		t.Errorf("wrapper self wall = %d, want 0", wrapper.SelfWallNS)
	}
	if wrapper.Mallocs != 2*7 {
		t.Errorf("wrapper mallocs = %d, want 14", wrapper.Mallocs)
	}
	if err := parent.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForkInheritsCostConfiguration(t *testing.T) {
	parent := New()
	parent.EnableCostAttribution()
	child := parent.Fork()
	if !child.CostEnabled() {
		t.Fatal("forked recorder lost cost attribution")
	}
	plain := New().Fork()
	if plain.CostEnabled() {
		t.Fatal("fork of a cost-disabled recorder enabled cost")
	}
	var nilRec *Recorder
	if nilRec.Fork() != nil {
		t.Fatal("nil.Fork() should be nil")
	}
	nilRec.EnableCostAttribution() // must not panic
}

func TestFlameSummaryTopKGolden(t *testing.T) {
	r := New()
	r.setCostSources(fakeSources())
	root := r.StartSpan(nil, "plan")
	a := r.StartSpan(root, "analyze")
	a.End()
	s := r.StartSpan(root, "schedule")
	sv := r.StartSpan(s, "solve")
	sv.Add(CtrMILPNodes, 42)
	sv.End()
	s.End()
	root.End()

	got := r.FlameSummary()
	want := `flame summary: 4 spans, 4 distinct paths
  plan                                    1×  wall     0.007ms
    analyze                               1×  wall     0.001ms
    schedule                              1×  wall     0.003ms
      solve                               1×  wall     0.001ms  [milp_nodes_explored=42]
top self-time (of 4 paths):
   1. plan                                        1×  self     0.003ms ( 42.9%)  cum     0.007ms  allocs 49 (448 B)
   2. plan/schedule                               1×  self     0.002ms ( 28.6%)  cum     0.003ms  allocs 21 (192 B)
   3. plan/analyze                                1×  self     0.001ms ( 14.3%)  cum     0.001ms  allocs 7 (64 B)
   4. plan/schedule/solve                         1×  self     0.001ms ( 14.3%)  cum     0.001ms  allocs 7 (64 B)
`
	if got != want {
		t.Errorf("flame summary golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestNilRecorderCostPathsAllocFree(t *testing.T) {
	var r *Recorder
	r.EnableCostAttribution()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan(nil, "solve")
		sp.Add(CtrMILPNodes, 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder path allocates %v per op after EnableCostAttribution", allocs)
	}
	ctx := context.Background()
	allocs = testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, "solve")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-recorder context path allocates %v per op", allocs)
	}
}
