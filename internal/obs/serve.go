package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns a stdlib-only HTTP handler exposing a live view of the
// recorder for long-running sweeps and benchmark runs:
//
//   - /metrics  — the recorder's counters and gauges in Prometheus text
//     exposition format (WritePrometheus with opts)
//   - /healthz  — liveness probe, always "ok"
//   - /debug/pprof/... — net/http/pprof (CPU, heap, goroutine, trace, ...)
//
// The recorder may keep recording while being served: /metrics snapshots
// under the recorder's lock. A nil recorder serves empty metrics (the
// probe and profiler still work), so callers can mount the handler
// unconditionally.
func Handler(rec *Recorder, opts PromOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rec.WritePrometheus(w, opts)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an http.Server for Handler(rec, opts) on addr in a new
// goroutine and returns it (callers Close it on shutdown, or let process
// exit tear it down). Errors after startup are reported through errf when
// non-nil.
func Serve(addr string, rec *Recorder, opts PromOptions, errf func(error)) *http.Server {
	srv := &http.Server{Addr: addr, Handler: Handler(rec, opts)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errf != nil {
			errf(err)
		}
	}()
	return srv
}
