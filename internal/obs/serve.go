package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// DumpSchema versions the obs artifact formats (trace/metrics dumps and
// their parsers). /healthz reports it so probes can tell which format a
// long-running process will emit.
const DumpSchema = "chameleon/obs/v1"

// healthReport is the JSON body of a full /healthz response.
type healthReport struct {
	Status  string    `json:"status"`
	UptimeS float64   `json:"uptime_s"`
	Schema  string    `json:"schema"`
	Build   BuildInfo `json:"build"`
}

// ServeOptions configure the live HTTP surface.
type ServeOptions struct {
	// Prom tunes the /metrics exposition.
	Prom PromOptions
	// Stream, when set, is served at /events as a live JSONL (or SSE)
	// feed; without one /events responds 404.
	Stream *Stream
}

// Handler returns a stdlib-only HTTP handler exposing a live view of the
// recorder for long-running sweeps and benchmark runs:
//
//   - /metrics  — the recorder's counters, gauges and histograms in
//     Prometheus text exposition format (WritePrometheus with opts)
//   - /healthz  — liveness probe, always "ok"
//   - /debug/pprof/... — net/http/pprof (CPU, heap, goroutine, trace, ...)
//
// The recorder may keep recording while being served: /metrics snapshots
// under the recorder's lock. A nil recorder serves empty metrics (the
// probe and profiler still work), so callers can mount the handler
// unconditionally.
func Handler(rec *Recorder, opts PromOptions) http.Handler {
	return HandlerWith(rec, ServeOptions{Prom: opts})
}

// HandlerWith is Handler plus the live event stream: with opts.Stream set,
// /events serves the stream's backlog followed by records as they are
// published, as chunked JSONL (one JSON object per line). Query
// parameters: follow=0 sends the backlog and closes (what CI smoke curls
// use); sse=1 switches to Server-Sent Events framing. The first record is
// always a hello carrying the backlog length, the publish sequence number
// and the stream's drop counter.
func HandlerWith(rec *Recorder, opts ServeOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rec.WritePrometheus(w, opts.Prom)
	})
	// /healthz keeps the allocation-free plain-text "ok" as the default —
	// load-balancer probes hit it at high rate — and serves the full JSON
	// report (uptime, artifact schema version, build info) when asked for
	// it, via ?full=1 or an Accept header naming application/json.
	started := time.Now()
	build := Build()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("full") != "1" &&
			!strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte("ok\n"))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(healthReport{
			Status:  "ok",
			UptimeS: time.Since(started).Seconds(),
			Schema:  DumpSchema,
			Build:   build,
		})
	})
	if opts.Stream != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			serveEvents(w, r, opts.Stream)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func serveEvents(w http.ResponseWriter, r *http.Request, s *Stream) {
	sse := r.URL.Query().Get("sse") == "1"
	follow := r.URL.Query().Get("follow") != "0"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	}
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	write := func(line []byte) bool {
		var err error
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", line)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", line)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	backlog, sub := s.Subscribe(0)
	defer sub.Close()
	hello := fmt.Sprintf(`{"type":"hello","backlog":%d,"seq":%d,"dropped":%d}`,
		len(backlog), s.Seq(), s.Dropped())
	if !write([]byte(hello)) {
		return
	}
	for _, line := range backlog {
		if !write(line) {
			return
		}
	}
	if !follow {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case line := <-sub.C():
			if !write(line) {
				return
			}
		}
	}
}

// Serve listens on addr — which may name an ephemeral port, ":0" — then
// serves Handler(rec, opts) from a new goroutine. It returns the server
// (callers Close it on shutdown, or let process exit tear it down) and the
// actually bound address, e.g. "127.0.0.1:43817", so callers on ephemeral
// ports can print or curl a usable URL. Errors after startup are reported
// through errf when non-nil.
func Serve(addr string, rec *Recorder, opts PromOptions, errf func(error)) (*http.Server, string, error) {
	return ServeWith(addr, rec, ServeOptions{Prom: opts}, errf)
}

// ServeWith is Serve with the full options (live event stream included).
func ServeWith(addr string, rec *Recorder, opts ServeOptions, errf func(error)) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: HandlerWith(rec, opts)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && errf != nil {
			errf(err)
		}
	}()
	return srv, ln.Addr().String(), nil
}
