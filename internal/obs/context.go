package obs

import "context"

type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
)

// WithRecorder returns a context carrying rec. A nil rec returns ctx
// unchanged, so callers can thread an optional recorder unconditionally.
// Installing a different recorder than the context already carries detaches
// the context's current span: a span belongs to its recorder, and must not
// become the parent of spans recorded elsewhere (the sweep engines fork a
// child recorder per run and later merge with Adopt, which re-roots the
// child's tree under a wrapper span).
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	if RecorderFrom(ctx) != rec {
		ctx = context.WithValue(ctx, spanKey, (*Span)(nil))
	}
	return context.WithValue(ctx, recorderKey, rec)
}

// RecorderFrom extracts the context's Recorder (nil when absent — and a nil
// Recorder is a valid no-op recorder).
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey).(*Recorder)
	return rec
}

// SpanFrom extracts the context's current span (nil when absent).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan opens a span named name as a child of the context's current
// span, on the context's recorder, and returns a derived context in which
// the new span is current. Without a recorder in ctx it returns (ctx, nil)
// — zero allocation, no-op span.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	rec := RecorderFrom(ctx)
	if rec == nil {
		return ctx, nil
	}
	sp := rec.StartSpan(SpanFrom(ctx), name, attrs...)
	return context.WithValue(ctx, spanKey, sp), sp
}
