// Package diff structurally compares two run bundles (internal/obs/bundle)
// and explains how the runs behind them differ. Matching part hashes short
// out immediately; for parts that differ it parses the canonical artifact
// formats and reports structured divergences — aligned span-stream records
// for traces, counter/gauge/histogram deltas with noise tolerance for
// metrics, record-by-record timeline alignment for violation timelines,
// entry alignment for supervisor journals, deterministic-counter
// comparison for BENCH points — and, where the artifact carries causal
// provenance (timeline violation records), walks it to name the first
// diverging event's root cause.
//
// The empty report is the determinism gate: two runs of the same seeds
// must produce it at any parallelism, which CI enforces by running the
// harness twice (workers 1 vs NumCPU) and requiring `obsdiff` to exit 0.
package diff

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/obs/bundle"
	"chameleon/internal/perf"
	"chameleon/internal/supervisor"
)

// Options tune the comparison.
type Options struct {
	// Tolerance is the relative slack allowed on counter, gauge and
	// histogram values before a delta counts as a divergence: values a and
	// b agree when |a−b| ≤ Tolerance·max(|a|,|b|,1). Zero (the default)
	// demands exact equality — the determinism gate's setting.
	Tolerance float64
	// IgnoreMetrics names counters/gauges exempt from comparison in both
	// metrics parts and trace dumps. Nil selects DefaultIgnoredMetrics;
	// an empty non-nil map exempts nothing.
	IgnoreMetrics map[string]bool
	// MaxPerPart caps the divergences reported per part (0: DefaultMaxPerPart).
	// The first diverging event is always reported; the cap only trims the
	// tail so a wholly different run does not produce megabytes of report.
	MaxPerPart int
}

// DefaultIgnoredMetrics are metric names that are scheduling- or
// environment-dependent by design and therefore never evidence of a
// diverging run: live-stream subscriber drops depend on how fast an
// /events client drained during the run.
var DefaultIgnoredMetrics = map[string]bool{
	obs.CtrStreamDropped: true,
}

// DefaultMaxPerPart bounds per-part divergence listings.
const DefaultMaxPerPart = 25

func (o Options) ignored() map[string]bool {
	if o.IgnoreMetrics == nil {
		return DefaultIgnoredMetrics
	}
	return o.IgnoreMetrics
}

func (o Options) maxPerPart() int {
	if o.MaxPerPart <= 0 {
		return DefaultMaxPerPart
	}
	return o.MaxPerPart
}

// agree applies the relative tolerance.
func (o Options) agree(a, b int64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 && -bb > m {
		m = -bb
	} else if bb > m {
		m = bb
	}
	if m < 1 {
		m = 1
	}
	return float64(d) <= o.Tolerance*float64(m)
}

// Divergence is one structural difference between the bundles.
type Divergence struct {
	// Part is the part name, or "manifest" for bundle-level mismatches.
	Part string
	// Kind classifies the difference: "meta", "missing-part",
	// "extra-part", "parse", "event", "line", "counter", "gauge", "hist",
	// "bench", "journal", "content".
	Kind string
	// Detail is the human-readable description (may span lines).
	Detail string
	// A and B render the two sides' diverging records, where record-level
	// alignment applies ("<absent>" when one side ended early).
	A, B string
	// RootCauseA/B name the causal provenance of the diverging event on
	// each side, where the artifact carries one (timeline violations).
	RootCauseA, RootCauseB string
}

// Report is the comparison's outcome.
type Report struct {
	AID, BID       string
	AScenario      string
	BScenario      string
	ASeed, BSeed   uint64
	IdenticalParts []string // byte-identical parts, name order
	ComparedParts  []string // structurally compared (hash differed), name order
	Divergences    []Divergence
	// Truncated counts divergences dropped by Options.MaxPerPart.
	Truncated int
}

// Empty reports whether the bundles are structurally equivalent under the
// options used.
func (r *Report) Empty() bool { return len(r.Divergences) == 0 }

// First returns the headline divergence: the first event divergence whose
// records carry causal provenance (a diverging violation beats a diverging
// summary line, because the violation names its root cause), then the
// first event divergence, then the first line divergence, then anything.
// Nil on an empty report.
func (r *Report) First() *Divergence {
	for i := range r.Divergences {
		d := &r.Divergences[i]
		if d.Kind == "event" && (d.RootCauseA != "" || d.RootCauseB != "") {
			return d
		}
	}
	for i := range r.Divergences {
		if r.Divergences[i].Kind == "event" {
			return &r.Divergences[i]
		}
	}
	for i := range r.Divergences {
		if r.Divergences[i].Kind == "line" {
			return &r.Divergences[i]
		}
	}
	if len(r.Divergences) > 0 {
		return &r.Divergences[0]
	}
	return nil
}

// WriteText renders the report for humans (and CI logs).
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r.Empty() {
		fmt.Fprintf(bw, "bundles are structurally identical: %d part(s) byte-identical, %d compared structurally\n",
			len(r.IdenticalParts), len(r.ComparedParts))
		if r.AID == r.BID {
			fmt.Fprintf(bw, "content address: %s\n", r.AID)
		} else {
			fmt.Fprintf(bw, "content addresses differ (%s vs %s) but every difference is within tolerance\n",
				short(r.AID), short(r.BID))
		}
		return bw.Flush()
	}
	fmt.Fprintf(bw, "bundles diverge: %d divergence(s)\n", len(r.Divergences)+r.Truncated)
	fmt.Fprintf(bw, "  A: %s  scenario=%s seed=%d\n", short(r.AID), r.AScenario, r.ASeed)
	fmt.Fprintf(bw, "  B: %s  scenario=%s seed=%d\n", short(r.BID), r.BScenario, r.BSeed)
	if f := r.First(); f != nil && (f.A != "" || f.B != "") {
		fmt.Fprintf(bw, "first diverging event (%s):\n", f.Part)
		fmt.Fprintf(bw, "  A: %s\n", orAbsent(f.A))
		fmt.Fprintf(bw, "  B: %s\n", orAbsent(f.B))
		if f.RootCauseA != "" {
			fmt.Fprintf(bw, "  root cause (A): %s\n", f.RootCauseA)
		}
		if f.RootCauseB != "" {
			fmt.Fprintf(bw, "  root cause (B): %s\n", f.RootCauseB)
		}
	}
	fmt.Fprintln(bw, "divergences:")
	for _, d := range r.Divergences {
		fmt.Fprintf(bw, "  [%s] %s: %s\n", d.Part, d.Kind, d.Detail)
	}
	if r.Truncated > 0 {
		fmt.Fprintf(bw, "  … %d further divergence(s) truncated\n", r.Truncated)
	}
	return bw.Flush()
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

func orAbsent(s string) string {
	if s == "" {
		return "<absent>"
	}
	return s
}

// Bundles structurally compares two opened bundles.
func Bundles(a, b *bundle.Bundle, opts Options) (*Report, error) {
	r := &Report{
		AID: a.Manifest.ID, BID: b.Manifest.ID,
		AScenario: a.Manifest.Scenario, BScenario: b.Manifest.Scenario,
		ASeed: a.Manifest.Seed, BSeed: b.Manifest.Seed,
	}
	if a.Manifest.Scenario != b.Manifest.Scenario {
		r.Divergences = append(r.Divergences, Divergence{Part: "manifest", Kind: "meta",
			Detail: fmt.Sprintf("scenario %q vs %q — the bundles record different runs", a.Manifest.Scenario, b.Manifest.Scenario)})
	}
	if a.Manifest.Seed != b.Manifest.Seed {
		r.Divergences = append(r.Divergences, Divergence{Part: "manifest", Kind: "meta",
			Detail: fmt.Sprintf("seed %d vs %d", a.Manifest.Seed, b.Manifest.Seed)})
	}

	names := make(map[string]bool)
	for _, p := range a.Manifest.Parts {
		names[p.Name] = true
	}
	for _, p := range b.Manifest.Parts {
		names[p.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		pa, inA := a.Manifest.Part(name)
		pb, inB := b.Manifest.Part(name)
		switch {
		case !inB:
			r.Divergences = append(r.Divergences, Divergence{Part: name, Kind: "missing-part",
				Detail: fmt.Sprintf("present in A (%s, %d bytes), absent in B", pa.Kind, pa.Size)})
			continue
		case !inA:
			r.Divergences = append(r.Divergences, Divergence{Part: name, Kind: "extra-part",
				Detail: fmt.Sprintf("absent in A, present in B (%s, %d bytes)", pb.Kind, pb.Size)})
			continue
		}
		if pa.Kind != pb.Kind {
			r.Divergences = append(r.Divergences, Divergence{Part: name, Kind: "meta",
				Detail: fmt.Sprintf("kind %q in A vs %q in B", pa.Kind, pb.Kind)})
			continue
		}
		if pa.SHA256 == pb.SHA256 {
			r.IdenticalParts = append(r.IdenticalParts, name)
			continue
		}
		r.ComparedParts = append(r.ComparedParts, name)
		divs, err := diffPart(a, b, pa, pb, opts)
		if err != nil {
			return nil, fmt.Errorf("diff: part %q: %w", name, err)
		}
		if max := opts.maxPerPart(); len(divs) > max {
			r.Truncated += len(divs) - max
			divs = divs[:max]
		}
		r.Divergences = append(r.Divergences, divs...)
	}
	return r, nil
}

// Dirs opens and diffs two bundle directories, verifying part integrity
// first — a tampered or torn bundle is an error, not a divergence.
func Dirs(aDir, bDir string, opts Options) (*Report, error) {
	a, err := bundle.Open(aDir)
	if err != nil {
		return nil, err
	}
	if err := a.Verify(); err != nil {
		return nil, err
	}
	b, err := bundle.Open(bDir)
	if err != nil {
		return nil, err
	}
	if err := b.Verify(); err != nil {
		return nil, err
	}
	return Bundles(a, b, opts)
}

func diffPart(a, b *bundle.Bundle, pa, pb bundle.Part, opts Options) ([]Divergence, error) {
	switch pa.Kind {
	case bundle.KindTimeline:
		return diffTimeline(a, b, pa, pb)
	case bundle.KindMetrics:
		return diffMetrics(a, b, pa, pb, opts)
	case bundle.KindTrace:
		return diffTrace(a, b, pa, pb, opts)
	case bundle.KindBench:
		return diffBench(a, b, pa, pb, opts)
	case bundle.KindJournal:
		return diffJournal(a, b, pa, pb)
	default: // plan, chaos, and any future text part
		return diffLines(a, b, pa, pb, nil)
	}
}

// --- timelines -------------------------------------------------------------

// diffTimeline aligns two timeline artifacts record by record and, at the
// first disagreement, reports the event and its causal provenance — the
// root cause the monitor attributed to the violation that opened it.
func diffTimeline(a, b *bundle.Bundle, pa, pb bundle.Part) ([]Divergence, error) {
	ra, err := readTimeline(a, pa)
	if err != nil {
		return []Divergence{{Part: pa.Name, Kind: "parse", Detail: "A: " + err.Error()}}, nil
	}
	rb, err := readTimeline(b, pb)
	if err != nil {
		return []Divergence{{Part: pb.Name, Kind: "parse", Detail: "B: " + err.Error()}}, nil
	}
	var divs []Divergence
	n := len(ra)
	if len(rb) > n {
		n = len(rb)
	}
	for i := 0; i < n; i++ {
		var da, db string
		var ca, cb string
		same := false
		if i < len(ra) && i < len(rb) {
			ja, _ := json.Marshal(&ra[i])
			jb, _ := json.Marshal(&rb[i])
			same = bytes.Equal(ja, jb)
		}
		if same {
			continue
		}
		if i < len(ra) {
			da, ca = describeTimelineRecord(&ra[i])
		}
		if i < len(rb) {
			db, cb = describeTimelineRecord(&rb[i])
		}
		divs = append(divs, Divergence{
			Part: pa.Name, Kind: "event",
			Detail: fmt.Sprintf("record %d: %s ⇄ %s", i+1, orAbsent(da), orAbsent(db)),
			A:      da, B: db,
			RootCauseA: ca, RootCauseB: cb,
		})
	}
	if len(divs) == 0 {
		// Hashes differed but every record re-marshals identically — the
		// artifact was not canonical (should be unreachable given the
		// round-trip contract); surface it rather than claiming equality.
		divs = append(divs, Divergence{Part: pa.Name, Kind: "content",
			Detail: "bytes differ but parsed records are identical (non-canonical artifact)"})
	}
	return divs, nil
}

func readTimeline(b *bundle.Bundle, p bundle.Part) ([]monitor.Record, error) {
	raw, err := b.ReadPart(p)
	if err != nil {
		return nil, err
	}
	return monitor.ValidateJSONL(bytes.NewReader(raw))
}

// describeTimelineRecord renders a record and, for violations, its root
// cause — the provenance chain's answer to "what command or event caused
// the first diverging violation".
func describeTimelineRecord(rec *monitor.Record) (desc, cause string) {
	switch rec.Type {
	case "timeline":
		v, vns := 0, int64(0)
		if rec.Violations != nil {
			v = *rec.Violations
		}
		if rec.ViolationNS != nil {
			vns = *rec.ViolationNS
		}
		return fmt.Sprintf("timeline %q: %d violation(s), %.3fs violated, %d states checked",
			rec.Name, v, float64(vns)/1e9, rec.StatesChecked), ""
	case "violation":
		desc = fmt.Sprintf("violation %s#%d: %s prefix=%d [%.3fs, %.3fs) phase=%q nodes=%v",
			rec.Name, rec.Seq, rec.Invariant, rec.Prefix,
			float64(rec.StartNS)/1e9, float64(rec.EndNS)/1e9, rec.Phase, rec.Nodes)
		if rec.Open {
			desc += " (open)"
		}
		switch rec.CauseKind {
		case "init", "":
			cause = "initial convergence (no registered command or event)"
		default:
			var node, seq, hops any = "?", "?", "?"
			if rec.CauseNode != nil {
				node = *rec.CauseNode
			}
			if rec.CauseSeq != nil {
				seq = *rec.CauseSeq
			}
			if rec.HopDepth != nil {
				hops = *rec.HopDepth
			}
			blame := ""
			if rec.BlameNS != nil {
				blame = fmt.Sprintf(", blame %.3fs", float64(*rec.BlameNS)/1e9)
			}
			cause = fmt.Sprintf("%s %q on node %v (phase %q, cause seq %v, %v hop(s)%s)",
				rec.CauseKind, rec.Cause, node, rec.CausePhase, seq, hops, blame)
		}
		return desc, cause
	}
	raw, _ := json.Marshal(rec)
	return string(raw), ""
}

// --- metrics ---------------------------------------------------------------

func diffMetrics(a, b *bundle.Bundle, pa, pb bundle.Part, opts Options) ([]Divergence, error) {
	da, err := readMetrics(a, pa)
	if err != nil {
		return []Divergence{{Part: pa.Name, Kind: "parse", Detail: "A: " + err.Error()}}, nil
	}
	db, err := readMetrics(b, pb)
	if err != nil {
		return []Divergence{{Part: pb.Name, Kind: "parse", Detail: "B: " + err.Error()}}, nil
	}
	ignored := opts.ignored()
	var divs []Divergence
	diffMap := func(kind string, ma, mb map[string]int64) {
		for _, name := range unionKeys(ma, mb) {
			if ignored[name] {
				continue
			}
			va, inA := ma[name]
			vb, inB := mb[name]
			switch {
			case !inB:
				divs = append(divs, Divergence{Part: pa.Name, Kind: kind,
					Detail: fmt.Sprintf("%s %s: %d in A, absent in B", kind, name, va)})
			case !inA:
				divs = append(divs, Divergence{Part: pa.Name, Kind: kind,
					Detail: fmt.Sprintf("%s %s: absent in A, %d in B", kind, name, vb)})
			case !opts.agree(va, vb):
				divs = append(divs, Divergence{Part: pa.Name, Kind: kind,
					Detail: fmt.Sprintf("%s %s: %d vs %d (Δ%+d)", kind, name, va, vb, vb-va)})
			}
		}
	}
	diffMap("counter", da.Counters, db.Counters)
	diffMap("gauge", da.Gauges, db.Gauges)
	divs = append(divs, diffHists(pa.Name, da.Hists, db.Hists, opts)...)
	if len(divs) == 0 {
		divs = append(divs, Divergence{Part: pa.Name, Kind: "content",
			Detail: "bytes differ but every metric is within tolerance"})
		if opts.Tolerance > 0 {
			divs = nil // within tolerance IS equality when tolerance was asked for
		}
	}
	return divs, nil
}

func readMetrics(b *bundle.Bundle, p bundle.Part) (*obs.MetricsDump, error) {
	raw, err := b.ReadPart(p)
	if err != nil {
		return nil, err
	}
	return obs.ParseMetrics(bytes.NewReader(raw))
}

func diffHists(part string, ha, hb []obs.HistSnapshot, opts Options) []Divergence {
	ignored := opts.ignored()
	ma := make(map[string]obs.HistSnapshot, len(ha))
	for _, h := range ha {
		ma[h.Name] = h
	}
	mb := make(map[string]obs.HistSnapshot, len(hb))
	for _, h := range hb {
		mb[h.Name] = h
	}
	names := make(map[string]int64, len(ma)+len(mb))
	for n := range ma {
		names[n] = 0
	}
	for n := range mb {
		names[n] = 0
	}
	var divs []Divergence
	for _, name := range sortedKeys(names) {
		if ignored[name] {
			continue
		}
		xa, inA := ma[name]
		xb, inB := mb[name]
		switch {
		case !inB:
			divs = append(divs, Divergence{Part: part, Kind: "hist",
				Detail: fmt.Sprintf("hist %s: present in A (%d samples), absent in B", name, xa.Count)})
			continue
		case !inA:
			divs = append(divs, Divergence{Part: part, Kind: "hist",
				Detail: fmt.Sprintf("hist %s: absent in A, present in B (%d samples)", name, xb.Count)})
			continue
		}
		if !opts.agree(xa.Count, xb.Count) || !opts.agree(xa.Sum, xb.Sum) {
			divs = append(divs, Divergence{Part: part, Kind: "hist",
				Detail: fmt.Sprintf("hist %s: count %d vs %d, sum %d vs %d",
					name, xa.Count, xb.Count, xa.Sum, xb.Sum)})
			continue
		}
		ba := bucketMap(xa)
		bb := bucketMap(xb)
		for _, le := range sortedKeys(union(ba, bb)) {
			if !opts.agree(ba[le], bb[le]) {
				divs = append(divs, Divergence{Part: part, Kind: "hist",
					Detail: fmt.Sprintf("hist %s bucket le=%s: %d vs %d", name, le, ba[le], bb[le])})
			}
		}
	}
	return divs
}

func bucketMap(h obs.HistSnapshot) map[string]int64 {
	m := make(map[string]int64, len(h.Buckets))
	for _, b := range h.Buckets {
		m[fmt.Sprintf("%d", b.Le)] = b.Count
	}
	return m
}

// --- traces and generic text parts ----------------------------------------

// diffTrace line-diffs a trace dump. Trace artifacts are canonical byte
// streams (spans in ID order, metrics in name order), so the first
// differing line IS the first structural divergence; the line is then
// parsed to describe it. Ignored metric names are filtered first, so a
// scheduling-dependent counter alone cannot fail the gate.
func diffTrace(a, b *bundle.Bundle, pa, pb bundle.Part, opts Options) ([]Divergence, error) {
	ignored := opts.ignored()
	skip := func(line string) bool {
		var head struct {
			Type string `json:"type"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &head); err != nil {
			return false
		}
		return (head.Type == "counter" || head.Type == "gauge") && ignored[head.Name]
	}
	return diffLines(a, b, pa, pb, skip)
}

// diffLines reports the first differing line of two text parts (skipping
// lines the filter exempts), describing JSON lines structurally where
// possible.
func diffLines(a, b *bundle.Bundle, pa, pb bundle.Part, skip func(string) bool) ([]Divergence, error) {
	la, err := readLines(a, pa, skip)
	if err != nil {
		return nil, err
	}
	lb, err := readLines(b, pb, skip)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(la) || i < len(lb); i++ {
		var sa, sb string
		if i < len(la) {
			sa = la[i]
		}
		if i < len(lb) {
			sb = lb[i]
		}
		if sa == sb {
			continue
		}
		da, db := describeLine(sa), describeLine(sb)
		if da == db {
			// The compact rendering hides the differing field — show the
			// raw lines rather than two identical descriptions.
			da, db = truncate(sa), truncate(sb)
		}
		return []Divergence{{
			Part: pa.Name, Kind: "line",
			Detail: fmt.Sprintf("line %d: %s ⇄ %s", i+1, orAbsent(da), orAbsent(db)),
			A:      da, B: db,
		}}, nil
	}
	return []Divergence{{Part: pa.Name, Kind: "content",
		Detail: "bytes differ only in exempted lines"}}, nil
}

func readLines(b *bundle.Bundle, p bundle.Part, skip func(string) bool) ([]string, error) {
	raw, err := b.ReadPart(p)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var lines []string
	for sc.Scan() {
		line := sc.Text()
		if skip != nil && skip(line) {
			continue
		}
		lines = append(lines, line)
	}
	return lines, sc.Err()
}

// describeLine renders one artifact line compactly: span lines by their
// structure, everything else truncated verbatim.
func describeLine(line string) string {
	if line == "" {
		return ""
	}
	var span struct {
		Type     string `json:"type"`
		ID       int    `json:"id"`
		Name     string `json:"name"`
		Start    uint64 `json:"start_tick"`
		End      uint64 `json:"end_tick"`
		SimStart int64  `json:"sim_start_ns"`
		SimEnd   int64  `json:"sim_end_ns"`
	}
	if err := json.Unmarshal([]byte(line), &span); err == nil && span.Type == "span" {
		return fmt.Sprintf("span #%d %q ticks [%d,%d] sim [%dns,%dns]",
			span.ID, span.Name, span.Start, span.End, span.SimStart, span.SimEnd)
	}
	return truncate(line)
}

func truncate(line string) string {
	const max = 160
	if len(line) > max {
		return line[:max] + "…"
	}
	return line
}

// --- bench parts -----------------------------------------------------------

// diffBench compares two BENCH trajectory points by what is deterministic:
// the benchmark set and the domain counters (solver nodes, sim events).
// Wall times and allocation counts are machine measurements and never
// diffed here — benchrunner -compare owns noise-aware perf comparison.
func diffBench(a, b *bundle.Bundle, pa, pb bundle.Part, opts Options) ([]Divergence, error) {
	fa, err := readBench(a, pa)
	if err != nil {
		return []Divergence{{Part: pa.Name, Kind: "parse", Detail: "A: " + err.Error()}}, nil
	}
	fb, err := readBench(b, pb)
	if err != nil {
		return []Divergence{{Part: pb.Name, Kind: "parse", Detail: "B: " + err.Error()}}, nil
	}
	var divs []Divergence
	if fa.SuiteVersion != fb.SuiteVersion {
		divs = append(divs, Divergence{Part: pa.Name, Kind: "bench",
			Detail: fmt.Sprintf("suite version %d vs %d", fa.SuiteVersion, fb.SuiteVersion)})
	}
	ma := benchByName(fa)
	mb := benchByName(fb)
	for _, name := range sortedStringKeys(unionNames(ma, mb)) {
		ra, inA := ma[name]
		rb, inB := mb[name]
		switch {
		case !inB:
			divs = append(divs, Divergence{Part: pa.Name, Kind: "bench",
				Detail: fmt.Sprintf("benchmark %q only in A", name)})
			continue
		case !inA:
			divs = append(divs, Divergence{Part: pa.Name, Kind: "bench",
				Detail: fmt.Sprintf("benchmark %q only in B", name)})
			continue
		}
		for _, ctr := range sortedStringKeys(unionDist(ra.Counters, rb.Counters)) {
			da, inA := ra.Counters[ctr]
			db, inB := rb.Counters[ctr]
			if !inA || !inB {
				divs = append(divs, Divergence{Part: pa.Name, Kind: "bench",
					Detail: fmt.Sprintf("benchmark %q counter %s present in only one side", name, ctr)})
				continue
			}
			if !opts.agree(int64(da.Median), int64(db.Median)) {
				divs = append(divs, Divergence{Part: pa.Name, Kind: "bench",
					Detail: fmt.Sprintf("benchmark %q counter %s: median %.0f vs %.0f — the workload itself changed",
						name, ctr, da.Median, db.Median)})
			}
		}
	}
	if len(divs) == 0 {
		divs = append(divs, Divergence{Part: pa.Name, Kind: "content",
			Detail: "bytes differ but benchmark set and domain counters agree (timing noise only)"})
		divs = nil // timing differences are never a divergence
	}
	return divs, nil
}

func readBench(b *bundle.Bundle, p bundle.Part) (*perf.File, error) {
	raw, err := b.ReadPart(p)
	if err != nil {
		return nil, err
	}
	return perf.ReadFile(bytes.NewReader(raw))
}

func benchByName(f *perf.File) map[string]perf.Result {
	m := make(map[string]perf.Result, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		m[r.Name] = r
	}
	return m
}

// --- journals --------------------------------------------------------------

// diffJournal aligns two supervisor execution journals entry by entry.
// Journal entries are sim-time-stamped and deterministic, so the first
// disagreeing entry names the recovery decision where the runs parted. A
// resumed run shares its original's journal prefix — diffing the resumed
// bundle against the original therefore shows exactly what the resume
// added, never a rewrite of history.
func diffJournal(a, b *bundle.Bundle, pa, pb bundle.Part) ([]Divergence, error) {
	ea, err := supervisor.ReadJournal(a.PartPath(pa))
	if err != nil {
		return []Divergence{{Part: pa.Name, Kind: "parse", Detail: "A: " + err.Error()}}, nil
	}
	eb, err := supervisor.ReadJournal(b.PartPath(pb))
	if err != nil {
		return []Divergence{{Part: pb.Name, Kind: "parse", Detail: "B: " + err.Error()}}, nil
	}
	var divs []Divergence
	n := len(ea)
	if len(eb) > n {
		n = len(eb)
	}
	for i := 0; i < n; i++ {
		var da, db string
		same := false
		if i < len(ea) && i < len(eb) {
			ja, _ := json.Marshal(&ea[i])
			jb, _ := json.Marshal(&eb[i])
			same = bytes.Equal(ja, jb)
		}
		if same {
			continue
		}
		if i < len(ea) {
			da = supervisor.DescribeEntry(ea[i])
		}
		if i < len(eb) {
			db = supervisor.DescribeEntry(eb[i])
		}
		divs = append(divs, Divergence{
			Part: pa.Name, Kind: "journal",
			Detail: fmt.Sprintf("entry %d: %s ⇄ %s", i+1, orAbsent(da), orAbsent(db)),
			A:      da, B: db,
		})
	}
	if len(divs) == 0 {
		divs = append(divs, Divergence{Part: pa.Name, Kind: "content",
			Detail: "bytes differ but parsed entries are identical (non-canonical journal)"})
	}
	return divs, nil
}

// --- small helpers ---------------------------------------------------------

func unionKeys(a, b map[string]int64) []string {
	return sortedKeys(union(a, b))
}

func union(a, b map[string]int64) map[string]int64 {
	u := make(map[string]int64, len(a)+len(b))
	for k := range a {
		u[k] = 0
	}
	for k := range b {
		u[k] = 0
	}
	return u
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedStringKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unionNames(a, b map[string]perf.Result) map[string]bool {
	u := make(map[string]bool, len(a)+len(b))
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}

func unionDist(a, b map[string]perf.Dist) map[string]bool {
	u := make(map[string]bool, len(a)+len(b))
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}
