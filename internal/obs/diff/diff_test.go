package diff

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/obs/bundle"
	"chameleon/internal/supervisor"
	"chameleon/internal/topology"
)

// writeBundle seals a bundle at dir from named text parts.
func writeBundle(t *testing.T, dir, scenario string, seed uint64, parts map[string][2]string) *bundle.Bundle {
	t.Helper()
	w, err := bundle.Create(dir, scenario, seed)
	if err != nil {
		t.Fatal(err)
	}
	for name, kc := range parts {
		kind, content := kc[0], kc[1]
		if err := w.AddPart(name, kind, func(dst io.Writer) error {
			_, err := dst.Write([]byte(content))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func timelineJSONL(t *testing.T, tl *monitor.Timeline) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func metricsText(t *testing.T, fill func(r *obs.Recorder)) string {
	t.Helper()
	r := obs.New()
	fill(r)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestIdenticalBundlesEmptyDiff: the determinism gate — equal bytes, empty
// report, equal content address.
func TestIdenticalBundlesEmptyDiff(t *testing.T) {
	parts := map[string][2]string{
		"metrics.txt":   {bundle.KindMetrics, metricsText(t, func(r *obs.Recorder) { r.Add("solver_nodes", 42) })},
		"plan.txt":      {bundle.KindPlan, "round 1: step a\nround 2: step b\n"},
		"chaos.txt":     {bundle.KindChaos, "chaos clos4/link/seed=1 ok fp=0000000000000001\n"},
		"timeline.json": {bundle.KindTimeline, timelineJSONL(t, &monitor.Timeline{Name: "t"})},
	}
	a := writeBundle(t, t.TempDir(), "smoke", 7, parts)
	b := writeBundle(t, t.TempDir(), "smoke", 7, parts)
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Fatalf("expected empty diff, got:\n%s", buf.String())
	}
	if rep.AID != rep.BID {
		t.Errorf("same content, different IDs: %s vs %s", rep.AID, rep.BID)
	}
	if len(rep.IdenticalParts) != len(parts) {
		t.Errorf("IdenticalParts = %v", rep.IdenticalParts)
	}
}

// TestTimelineDivergenceNamesFirstEventAndRootCause: perturb one violation
// and the report must name that record and its provenance.
func TestTimelineDivergenceNamesFirstEventAndRootCause(t *testing.T) {
	mk := func(end time.Duration) string {
		return timelineJSONL(t, &monitor.Timeline{
			Name: "reach", StatesChecked: 100,
			Violations: []monitor.Violation{{
				Invariant: "reachability", Prefix: 1, Start: 2 * time.Second, End: end,
				Phase: "drain", Nodes: []topology.NodeID{3, 4},
				Cause: monitor.RootCause{Kind: "command", Label: "withdraw p1@r3", Node: 3,
					Phase: "drain", Seq: 9, Hops: 2, Latency: 1500 * time.Millisecond},
			}},
		})
	}
	a := writeBundle(t, t.TempDir(), "smoke", 7, map[string][2]string{
		"timeline.json": {bundle.KindTimeline, mk(5 * time.Second)},
	})
	b := writeBundle(t, t.TempDir(), "smoke", 7, map[string][2]string{
		"timeline.json": {bundle.KindTimeline, mk(6 * time.Second)},
	})
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Empty() {
		t.Fatal("expected divergence")
	}
	f := rep.First()
	if f == nil || f.Kind != "event" {
		t.Fatalf("First() = %+v", f)
	}
	// Record 1 is the summary (violation_ns differs); both sides present.
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"first diverging event (timeline.json)",
		"root cause",
		`command "withdraw p1@r3" on node 3`,
		"2 hop(s)",
		"blame 1.500s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestTimelineExtraViolation: one side records a violation the other never
// saw — reported as a record present only on one side.
func TestTimelineExtraViolation(t *testing.T) {
	base := &monitor.Timeline{Name: "t", StatesChecked: 10}
	withV := &monitor.Timeline{Name: "t", StatesChecked: 10,
		Violations: []monitor.Violation{{Invariant: "loopfree", Prefix: 2,
			Start: time.Second, End: 2 * time.Second, Phase: "apply",
			Nodes: []topology.NodeID{1},
			Cause: monitor.RootCause{Kind: "init"}}}}
	a := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"timeline.json": {bundle.KindTimeline, timelineJSONL(t, base)}})
	b := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"timeline.json": {bundle.KindTimeline, timelineJSONL(t, withV)}})
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "<absent>") || !strings.Contains(out, "loopfree") {
		t.Errorf("expected one-sided violation in report:\n%s", out)
	}
	if !strings.Contains(out, "initial convergence") {
		t.Errorf("init cause not rendered:\n%s", out)
	}
}

// TestMetricsToleranceExemptsNoise: counter deltas within tolerance pass;
// beyond it fail; the stream-drop counter never fails regardless.
func TestMetricsToleranceExemptsNoise(t *testing.T) {
	a := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"metrics.txt": {bundle.KindMetrics, metricsText(t, func(r *obs.Recorder) {
			r.Add("solver_nodes", 100)
			r.Add(obs.CtrStreamDropped, 5)
		})}})
	b := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"metrics.txt": {bundle.KindMetrics, metricsText(t, func(r *obs.Recorder) {
			r.Add("solver_nodes", 103)
			r.Add(obs.CtrStreamDropped, 900)
		})}})

	rep, err := Bundles(a, b, Options{Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Errorf("3%% delta + ignored counter should pass at 5%% tolerance:\n%s", buf.String())
	}

	rep, err = Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Empty() {
		t.Fatal("exact mode must flag solver_nodes 100 vs 103")
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "solver_nodes: 100 vs 103") {
		t.Errorf("missing solver_nodes delta:\n%s", out)
	}
	if strings.Contains(out, obs.CtrStreamDropped) {
		t.Errorf("ignored counter leaked into report:\n%s", out)
	}
}

// TestTraceDivergenceFirstLine: the trace differ names the first differing
// line, skipping exempted counter lines.
func TestTraceDivergenceFirstLine(t *testing.T) {
	traceA := `{"type":"span","id":1,"name":"plan","start_tick":1,"end_tick":5}
{"type":"counter","name":"obs_stream_dropped","value":3}
{"type":"counter","name":"solver_nodes","value":10}
`
	traceB := `{"type":"span","id":1,"name":"plan","start_tick":1,"end_tick":9}
{"type":"counter","name":"obs_stream_dropped","value":700}
{"type":"counter","name":"solver_nodes","value":10}
`
	a := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"trace.jsonl": {bundle.KindTrace, traceA}})
	b := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"trace.jsonl": {bundle.KindTrace, traceB}})
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Empty() {
		t.Fatal("expected span divergence")
	}
	f := rep.First()
	if f.Kind != "line" || !strings.Contains(f.A, `span #1 "plan"`) {
		t.Errorf("First() = %+v", f)
	}
	if len(rep.Divergences) != 1 {
		t.Errorf("dropped-counter line should be exempt; got %+v", rep.Divergences)
	}
}

// TestTraceOnlyIgnoredDiffers: when the sole byte difference is an
// exempted counter line, the part yields a "content" note, not a failure
// the gate would trip on... it IS still a divergence entry, so assert the
// explicit detail wording instead.
func TestTraceOnlyIgnoredDiffers(t *testing.T) {
	a := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"trace.jsonl": {bundle.KindTrace, "{\"type\":\"counter\",\"name\":\"obs_stream_dropped\",\"value\":1}\n"}})
	b := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"trace.jsonl": {bundle.KindTrace, "{\"type\":\"counter\",\"name\":\"obs_stream_dropped\",\"value\":2}\n"}})
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 1 || rep.Divergences[0].Kind != "content" {
		t.Fatalf("Divergences = %+v", rep.Divergences)
	}
	if !strings.Contains(rep.Divergences[0].Detail, "exempted") {
		t.Errorf("Detail = %q", rep.Divergences[0].Detail)
	}
}

// TestPartSetMismatch: missing and extra parts are called out by name.
func TestPartSetMismatch(t *testing.T) {
	a := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"plan.txt":  {bundle.KindPlan, "x\n"},
		"extra.txt": {bundle.KindPlan, "only-a\n"}})
	b := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"plan.txt":  {bundle.KindPlan, "x\n"},
		"other.txt": {bundle.KindPlan, "only-b\n"}})
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, d := range rep.Divergences {
		kinds[d.Part] = d.Kind
	}
	if kinds["extra.txt"] != "missing-part" || kinds["other.txt"] != "extra-part" {
		t.Errorf("Divergences = %+v", rep.Divergences)
	}
}

// TestSeedMismatchIsMeta: different seeds are a manifest-level divergence
// even when all parts happen to match.
func TestSeedMismatchIsMeta(t *testing.T) {
	parts := map[string][2]string{"plan.txt": {bundle.KindPlan, "x\n"}}
	a := writeBundle(t, t.TempDir(), "s", 1, parts)
	b := writeBundle(t, t.TempDir(), "s", 2, parts)
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Empty() || rep.Divergences[0].Kind != "meta" {
		t.Fatalf("Divergences = %+v", rep.Divergences)
	}
	if !strings.Contains(rep.Divergences[0].Detail, "seed 1 vs 2") {
		t.Errorf("Detail = %q", rep.Divergences[0].Detail)
	}
}

// TestChaosFingerprintDivergence: plain text parts report the first
// differing line.
func TestChaosFingerprintDivergence(t *testing.T) {
	a := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"chaos.txt": {bundle.KindChaos, "chaos a fp=1\nchaos b fp=2\n"}})
	b := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"chaos.txt": {bundle.KindChaos, "chaos a fp=1\nchaos b fp=3\n"}})
	rep, err := Bundles(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 1 {
		t.Fatalf("Divergences = %+v", rep.Divergences)
	}
	d := rep.Divergences[0]
	if d.Kind != "line" || !strings.Contains(d.Detail, "line 2") {
		t.Errorf("divergence = %+v", d)
	}
}

// TestMaxPerPartTruncates: a wholly different metrics part is capped.
func TestMaxPerPartTruncates(t *testing.T) {
	a := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"metrics.txt": {bundle.KindMetrics, metricsText(t, func(r *obs.Recorder) {
			for _, n := range []string{"c1", "c2", "c3", "c4", "c5"} {
				r.Add(n, 1)
			}
		})}})
	b := writeBundle(t, t.TempDir(), "s", 1, map[string][2]string{
		"metrics.txt": {bundle.KindMetrics, metricsText(t, func(r *obs.Recorder) {
			for _, n := range []string{"c1", "c2", "c3", "c4", "c5"} {
				r.Add(n, 2)
			}
		})}})
	rep, err := Bundles(a, b, Options{MaxPerPart: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 2 || rep.Truncated != 3 {
		t.Fatalf("got %d divergences, %d truncated", len(rep.Divergences), rep.Truncated)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "3 further divergence(s) truncated") {
		t.Errorf("truncation note missing:\n%s", buf.String())
	}
}

// TestJournalDivergenceNamesEntry: two supervisor journals that part at a
// decision entry report that entry, rendered, not raw JSON.
func TestJournalDivergenceNamesEntry(t *testing.T) {
	writeJournal := func(dir, decision string) string {
		path := dir + "/exec.jsonl"
		j, err := supervisor.NewJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []supervisor.Entry{
			{Kind: supervisor.KindBegin, Scenario: "clos4", Seed: 7, Commands: []string{"a", "b"}},
			{Kind: supervisor.KindSnapshot, Rung: "replan", Attempt: 1, SimNS: 1e9},
			{Kind: supervisor.KindDecision, Decision: decision, Reason: "invariant violated", SimNS: 2e9},
		} {
			if err := j.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mk := func(decision string) *bundle.Bundle {
		dir := t.TempDir()
		src := writeJournal(t.TempDir(), decision)
		w, err := bundle.Create(dir, "s", 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AddFile("journal/exec.jsonl", bundle.KindJournal, src); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := bundle.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	rep, err := Bundles(mk("replan"), mk("rollback"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 1 {
		t.Fatalf("Divergences = %+v", rep.Divergences)
	}
	d := rep.Divergences[0]
	if d.Kind != "journal" || !strings.Contains(d.Detail, "entry 3") ||
		!strings.Contains(d.A, "decision=replan") || !strings.Contains(d.B, "decision=rollback") {
		t.Errorf("divergence = %+v", d)
	}
}

// TestDirsVerifiesIntegrity: a tampered part is an error, not a diff.
func TestDirsVerifiesIntegrity(t *testing.T) {
	parts := map[string][2]string{"plan.txt": {bundle.KindPlan, "x\n"}}
	aDir, bDir := t.TempDir(), t.TempDir()
	writeBundle(t, aDir, "s", 1, parts)
	b := writeBundle(t, bDir, "s", 1, parts)
	p, _ := b.Manifest.Part("plan.txt")
	if err := os.WriteFile(b.PartPath(p), []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Dirs(aDir, bDir, Options{}); err == nil {
		t.Fatal("tampered bundle must fail verification, not diff")
	}
}
