// Package obs is the pipeline's zero-dependency observability substrate:
// hierarchical spans, monotonic counters and last-write gauges, recorded
// against a deterministic logical clock (ticks) plus, where one exists, the
// simulated clock — never the wall clock. A trace recorded from the same
// seeds is therefore byte-identical run to run and at any sweep worker
// count, which is the contract the evaluation's worker-invariance tests
// enforce.
//
// Everything is nil-safe: a nil *Recorder (and the nil *Span it hands out)
// turns every method into an immediate return, so uninstrumented runs pay a
// single pointer test on the hot paths and nothing else.
//
// The span taxonomy and counter inventory are documented in DESIGN.md §9.
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// NoSim marks a span timestamp taken while no simulated clock was
// installed (planning-stage spans: the sim clock only advances during
// execution).
const NoSim int64 = -1

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%d", value)}
}

// spanRecord is the stored form of one span.
type spanRecord struct {
	ID        int // 1-based; 0 is "no span"
	Parent    int // 0 for roots
	Name      string
	Attrs     []Attr
	StartTick uint64
	EndTick   uint64 // 0 while open
	SimStart  int64  // nanoseconds of simulated time, NoSim without a clock
	SimEnd    int64
	Counters  map[string]int64

	// Cost attribution (only populated when the recorder has cost
	// attribution enabled). WallNS is the span's cumulative wall time;
	// Mallocs and AllocBytes are runtime.MemStats deltas across the span.
	// All three are stored as deltas, never absolute snapshots, so Adopt
	// can copy them verbatim between recorders with different time bases.
	// The self (non-child) share is derived at export time.
	WallNS     int64
	Mallocs    int64
	AllocBytes int64

	// Scratch start snapshots, meaningful only while the span is open.
	wallStart    int64
	mallocsStart uint64
	bytesStart   uint64
	// costDone marks spans whose cost fields were assigned wholesale
	// (Adopt wrapper spans); End must not overwrite them.
	costDone bool
}

// Span is a handle on an open (or ended) span. The zero of *Span (nil) is a
// valid no-op span; every method on it returns immediately.
type Span struct {
	rec *Recorder
	id  int
}

// Recorder accumulates spans, counters and gauges. It is safe for
// concurrent use; parallel sweeps nevertheless give every run its own
// Recorder and merge them in index order (Adopt), because interleaving
// updates from concurrent runs into one recorder would order ticks by
// scheduling rather than by work index.
type Recorder struct {
	mu       sync.Mutex
	clock    func() time.Duration
	tick     uint64
	spans    []spanRecord
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*histRecord

	// stream, when set, receives a live record for every span start and
	// end (SetStream). Publishing happens outside the recorder lock.
	stream *Stream

	// Cost attribution (EnableCostAttribution). wallNow and memNow are the
	// measurement sources — injectable so the cost pipeline is testable
	// with deterministic values; production uses the monotonic wall clock
	// and runtime.ReadMemStats.
	cost    bool
	wallNow func() int64
	memNow  func() (mallocs, bytes uint64)
}

// New returns an empty Recorder with no clock: spans are stamped with
// logical ticks only until SetClock installs a simulated-time source.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
	}
}

// wallBase anchors the default wall-time source: costs are durations, so
// only differences matter, and a process-wide base keeps the values small.
var wallBase = time.Now()

// defaultWallNow reads the process-monotonic wall clock in nanoseconds.
func defaultWallNow() int64 { return int64(time.Since(wallBase)) }

// defaultMemNow snapshots cumulative allocation counters. ReadMemStats
// briefly stops the world, which is why cost attribution is opt-in and why
// the per-span price is documented in DESIGN.md §11.
func defaultMemNow() (uint64, uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// EnableCostAttribution turns on per-span cost capture: every span
// additionally records its cumulative wall time and allocation deltas
// (mallocs and bytes, from runtime.ReadMemStats snapshots at the span
// boundaries). The self (minus-children) share is derived at export time.
//
// Wall time and allocation deltas are measurements of this machine, not of
// the simulation: unlike ticks and sim-clock stamps they are NOT
// deterministic, so fingerprint-style comparisons must zero them first
// (DumpOptions.ZeroCosts). Enable before recording any spans.
func (r *Recorder) EnableCostAttribution() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cost = true
	if r.wallNow == nil {
		r.wallNow = defaultWallNow
	}
	if r.memNow == nil {
		r.memNow = defaultMemNow
	}
	r.mu.Unlock()
}

// setCostSources installs deterministic measurement sources (tests only).
func (r *Recorder) setCostSources(wall func() int64, mem func() (uint64, uint64)) {
	r.mu.Lock()
	r.cost = true
	r.wallNow = wall
	r.memNow = mem
	r.mu.Unlock()
}

// CostEnabled reports whether cost attribution is on.
func (r *Recorder) CostEnabled() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cost
}

// Fork returns a fresh empty Recorder inheriting r's cost-attribution
// configuration. The parallel sweeps fork one recorder per run and fold the
// forks back with Adopt; forking (rather than New) is what lets a
// cost-enabled parent see cost fields on adopted spans. A nil receiver
// forks to nil.
func (r *Recorder) Fork() *Recorder {
	if r == nil {
		return nil
	}
	child := New()
	r.mu.Lock()
	child.cost = r.cost
	child.wallNow = r.wallNow
	child.memNow = r.memNow
	r.mu.Unlock()
	return child
}

// SetClock installs (or, with nil, removes) the simulated-time source used
// to stamp spans. The executor installs the network's sim clock for the
// duration of an execution; planning stages run without one. Never install
// a wall clock: it would break the byte-identical trace contract.
func (r *Recorder) SetClock(clock func() time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// now returns the sim timestamp under the lock.
func (r *Recorder) now() int64 {
	if r.clock == nil {
		return NoSim
	}
	return int64(r.clock())
}

// StartSpan opens a span under parent (nil parent: a root span). On a nil
// Recorder it returns nil, which is itself a valid no-op span.
func (r *Recorder) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	parentID := 0
	if parent != nil && parent.rec == r {
		parentID = parent.id
	}
	r.mu.Lock()
	r.tick++
	sp := spanRecord{
		ID:        len(r.spans) + 1,
		Parent:    parentID,
		Name:      name,
		Attrs:     attrs,
		StartTick: r.tick,
		SimStart:  r.now(),
		SimEnd:    NoSim,
	}
	if r.cost {
		sp.wallStart = r.wallNow()
		sp.mallocsStart, sp.bytesStart = r.memNow()
	}
	r.spans = append(r.spans, sp)
	id := len(r.spans)
	stream := r.stream
	r.mu.Unlock()
	if stream != nil {
		stream.Publish(StreamRecord{
			Type: "span_start", Name: name, Span: id,
			Tick: sp.StartTick, SimNS: sp.SimStart,
		})
	}
	return &Span{rec: r, id: id}
}

// End closes the span. Ending a span twice keeps the first end; ending nil
// is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	var ended *StreamRecord
	r.mu.Lock()
	rec := &r.spans[s.id-1]
	if rec.EndTick == 0 {
		r.tick++
		rec.EndTick = r.tick
		rec.SimEnd = r.now()
		if r.cost && !rec.costDone {
			rec.WallNS = r.wallNow() - rec.wallStart
			mallocs, bytes := r.memNow()
			rec.Mallocs = int64(mallocs - rec.mallocsStart)
			rec.AllocBytes = int64(bytes - rec.bytesStart)
			rec.costDone = true
		}
		if r.stream != nil {
			ended = &StreamRecord{
				Type: "span_end", Name: rec.Name, Span: rec.ID,
				Tick: rec.EndTick, SimNS: rec.SimEnd,
			}
		}
	}
	stream := r.stream
	r.mu.Unlock()
	if stream != nil && ended != nil {
		stream.Publish(*ended)
	}
}

// SetAttr sets (or overwrites) an attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	rec := &r.spans[s.id-1]
	for i := range rec.Attrs {
		if rec.Attrs[i].Key == key {
			rec.Attrs[i].Value = value
			r.mu.Unlock()
			return
		}
	}
	rec.Attrs = append(rec.Attrs, Attr{Key: key, Value: value})
	r.mu.Unlock()
}

// Add increments a counter on the span and on the recorder's global totals.
func (s *Span) Add(name string, delta int64) {
	if s == nil || delta == 0 {
		return
	}
	r := s.rec
	r.mu.Lock()
	rec := &r.spans[s.id-1]
	if rec.Counters == nil {
		rec.Counters = make(map[string]int64)
	}
	rec.Counters[name] += delta
	r.counters[name] += delta
	r.mu.Unlock()
}

// Add increments a recorder-level counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set records a gauge (last write wins).
func (r *Recorder) Set(name string, value int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = value
	r.mu.Unlock()
}

// Counter returns the current value of a counter (0 if never incremented
// or the recorder is nil).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the current value of a gauge.
func (r *Recorder) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Counters returns a copy of the counter totals.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// NumSpans returns the number of recorded spans.
func (r *Recorder) NumSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// SpanCounters returns a copy of one span's counters, located by span name
// (first match in ID order), for reconciliation tests. The boolean reports
// whether a span with that name exists.
func (r *Recorder) SpanCounters(name string) (map[string]int64, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.spans {
		if r.spans[i].Name == name {
			out := make(map[string]int64, len(r.spans[i].Counters))
			for k, v := range r.spans[i].Counters {
				out[k] = v
			}
			return out, true
		}
	}
	return nil, false
}

// SpanNames returns the recorded span names in ID order.
func (r *Recorder) SpanNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.spans))
	for i := range r.spans {
		names[i] = r.spans[i].Name
	}
	return names
}

// Adopt merges child — a Recorder that observed one complete unit of work,
// typically a parallel sweep run — into r under a fresh wrapper span named
// name. Child span IDs and ticks are rebased past r's, child counters fold
// into both the wrapper span and r's totals, and child gauges overwrite
// r's. Adopting the per-run recorders in work-index order after a parallel
// sweep therefore yields the same bytes as running sequentially — the
// worker-invariance contract. The child must be quiescent (no open spans,
// no concurrent use); Adopt validates nothing and simply copies.
func (r *Recorder) Adopt(name string, child *Recorder) {
	if r == nil {
		return
	}
	wrapper := r.StartSpan(nil, name)
	if child != nil {
		child.mu.Lock()
		spans := make([]spanRecord, len(child.spans))
		copy(spans, child.spans)
		counters := make(map[string]int64, len(child.counters))
		for k, v := range child.counters {
			counters[k] = v
		}
		gauges := make(map[string]int64, len(child.gauges))
		for k, v := range child.gauges {
			gauges[k] = v
		}
		hists := make(map[string]*histRecord, len(child.hists))
		for name, h := range child.hists {
			cp := &histRecord{buckets: make(map[int]int64, len(h.buckets)), sum: h.sum, count: h.count}
			for i, c := range h.buckets {
				cp.buckets[i] = c
			}
			hists[name] = cp
		}
		childTicks := child.tick
		child.mu.Unlock()

		r.mu.Lock()
		idBase := wrapper.id // child ID i becomes idBase+i
		tickBase := r.tick
		var rootWall, rootMallocs, rootBytes int64
		for _, sp := range spans {
			sp.ID += idBase
			if sp.Parent == 0 {
				sp.Parent = wrapper.id
				rootWall += sp.WallNS
				rootMallocs += sp.Mallocs
				rootBytes += sp.AllocBytes
			} else {
				sp.Parent += idBase
			}
			sp.StartTick += tickBase
			if sp.EndTick != 0 {
				sp.EndTick += tickBase
			}
			if sp.Counters != nil {
				cp := make(map[string]int64, len(sp.Counters))
				for k, v := range sp.Counters {
					cp[k] = v
				}
				sp.Counters = cp
			}
			attrs := make([]Attr, len(sp.Attrs))
			copy(attrs, sp.Attrs)
			sp.Attrs = attrs
			r.spans = append(r.spans, sp)
		}
		r.tick += childTicks
		w := &r.spans[wrapper.id-1]
		if r.cost {
			// The wrapper's cost is the adopted run's total cost (the sum
			// over the child's root spans) — a pure function of the child
			// data, so merged dumps stay worker-count invariant. End must
			// not overwrite it with the wall time of Adopt itself.
			w.WallNS = rootWall
			w.Mallocs = rootMallocs
			w.AllocBytes = rootBytes
			w.costDone = true
		}
		if w.Counters == nil && len(counters) > 0 {
			w.Counters = make(map[string]int64, len(counters))
		}
		for k, v := range counters {
			w.Counters[k] += v
			r.counters[k] += v
		}
		for k, v := range gauges {
			r.gauges[k] = v
		}
		r.adoptHistsLocked(hists)
		r.mu.Unlock()
	}
	wrapper.End()
}

// SetStream attaches (or, with nil, detaches) a live event stream: every
// span start and end is published to it as it happens. The stream is
// observation-only — attaching one cannot change recorded spans or ticks,
// so trace dumps stay byte-identical with or without it. Attaching also
// wires the stream's drop accounting into this recorder (CountDropsInto),
// so slow-subscriber loss surfaces as the CtrStreamDropped counter; that
// counter is scheduling-dependent by nature and exempted from byte-identity
// comparisons by the run-bundle differ.
func (r *Recorder) SetStream(s *Stream) {
	if r == nil {
		return
	}
	r.mu.Lock()
	prev := r.stream
	r.stream = s
	r.mu.Unlock()
	if prev != nil && prev != s {
		prev.CountDropsInto(nil)
	}
	s.CountDropsInto(r)
}

// EventStream returns the attached live stream (nil when none).
func (r *Recorder) EventStream() *Stream {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stream
}

// snapshot copies the recorder state for export and validation. The last
// return reports whether cost attribution was enabled (cost fields are then
// meaningful and exported).
func (r *Recorder) snapshot() ([]spanRecord, map[string]int64, map[string]int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spans := make([]spanRecord, len(r.spans))
	copy(spans, r.spans)
	counters := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	return spans, counters, gauges, r.cost
}

// sortedKeys returns m's keys sorted.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
