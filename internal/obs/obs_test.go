package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeAndValidate(t *testing.T) {
	r := New()
	root := r.StartSpan(nil, "plan")
	child := r.StartSpan(root, "schedule", String("phase", "scan"))
	child.Add(CtrMILPNodes, 7)
	grand := r.StartSpan(child, "solve", Int("R", 3))
	grand.Add(CtrMILPNodes, 5)
	grand.End()
	child.End()
	root.End()

	if err := r.Validate(); err != nil {
		t.Fatalf("well-formed tree failed validation: %v", err)
	}
	if got := r.Counter(CtrMILPNodes); got != 12 {
		t.Fatalf("global counter = %d, want 12", got)
	}
	sc, ok := r.SpanCounters("schedule")
	if !ok || sc[CtrMILPNodes] != 7 {
		t.Fatalf("schedule span counters = %v, %v", sc, ok)
	}
	names := r.SpanNames()
	want := []string{"plan", "schedule", "solve"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("span names = %v, want %v", names, want)
		}
	}
}

func TestValidateCatchesOpenSpan(t *testing.T) {
	r := New()
	r.StartSpan(nil, "dangling")
	err := r.Validate()
	if err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Fatalf("expected never-ended error, got %v", err)
	}
}

func TestValidateCatchesChildOutlivingParent(t *testing.T) {
	r := New()
	parent := r.StartSpan(nil, "parent")
	child := r.StartSpan(parent, "child")
	parent.End()
	child.End()
	err := r.Validate()
	if err == nil || !strings.Contains(err.Error(), "after its parent") {
		t.Fatalf("expected child-outlives-parent error, got %v", err)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	r := New()
	sp := r.StartSpan(nil, "once")
	sp.End()
	tick := r.spans[0].EndTick
	sp.End()
	if r.spans[0].EndTick != tick {
		t.Fatalf("second End moved the end tick %d -> %d", tick, r.spans[0].EndTick)
	}
}

func TestSimClockStamps(t *testing.T) {
	r := New()
	now := 5 * time.Second
	r.SetClock(func() time.Duration { return now })
	sp := r.StartSpan(nil, "round")
	now = 9 * time.Second
	sp.End()
	if r.spans[0].SimStart != int64(5*time.Second) || r.spans[0].SimEnd != int64(9*time.Second) {
		t.Fatalf("sim stamps = %d..%d", r.spans[0].SimStart, r.spans[0].SimEnd)
	}
	r.SetClock(nil)
	sp2 := r.StartSpan(nil, "noclk")
	sp2.End()
	if r.spans[1].SimStart != NoSim || r.spans[1].SimEnd != NoSim {
		t.Fatalf("clockless span stamped %d..%d, want NoSim", r.spans[1].SimStart, r.spans[1].SimEnd)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

// record builds a recorder observing n fake units of work.
func record(n int) *Recorder {
	r := New()
	for i := 0; i < n; i++ {
		sp := r.StartSpan(nil, "run")
		inner := r.StartSpan(sp, "solve")
		inner.Add(CtrMILPNodes, int64(10*i+1))
		inner.End()
		sp.End()
	}
	r.Set("last_index", int64(n-1))
	return r
}

func TestAdoptMatchesSequential(t *testing.T) {
	// Sequential reference: all work recorded through one recorder via Adopt
	// of single-run children, versus "parallel": children built separately
	// (order of construction irrelevant) then adopted in index order.
	seq := New()
	for i := 0; i < 3; i++ {
		seq.Adopt("case", record(1))
	}
	par := New()
	children := []*Recorder{record(1), record(1), record(1)}
	for _, c := range children {
		par.Adopt("case", c)
	}

	var a, b bytes.Buffer
	if err := seq.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("adopt order not deterministic:\n--- seq ---\n%s--- par ---\n%s", a.String(), b.String())
	}
	if err := par.Validate(); err != nil {
		t.Fatalf("adopted tree invalid: %v", err)
	}
	if got := par.Counter(CtrMILPNodes); got != 3 {
		t.Fatalf("folded counter = %d, want 3", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := record(2)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	}
	if n != r.NumSpans() {
		t.Fatalf("round-trip span count = %d, want %d", n, r.NumSpans())
	}
}

func TestValidateJSONLRejectsGarbage(t *testing.T) {
	if _, err := ValidateJSONL(strings.NewReader(`{"type":"mystery"}`)); err == nil {
		t.Fatal("unknown record type accepted")
	}
	if _, err := ValidateJSONL(strings.NewReader(`{"type":"span","id":1,"name":"x","start_tick":1,"end_tick":0,"sim_start_ns":-1,"sim_end_ns":-1}`)); err == nil {
		t.Fatal("open span accepted")
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	r := New()
	r.Add("b", 2)
	r.Add("a", 1)
	r.Set("g", 9)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := "counter a 1\ncounter b 2\ngauge g 9\n"
	if buf.String() != want {
		t.Fatalf("metrics dump = %q, want %q", buf.String(), want)
	}
}

func TestFlameSummary(t *testing.T) {
	r := record(2)
	s := r.FlameSummary()
	if !strings.Contains(s, "run") || !strings.Contains(s, "solve") {
		t.Fatalf("flame summary missing paths:\n%s", s)
	}
	if !strings.Contains(s, CtrMILPNodes+"=12") {
		t.Fatalf("flame summary missing aggregated counter:\n%s", s)
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if RecorderFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Fatal("empty context yielded recorder or span")
	}
	c2, sp := StartSpan(ctx, "noop")
	if sp != nil || c2 != ctx {
		t.Fatal("StartSpan without recorder should be identity")
	}

	r := New()
	ctx = WithRecorder(ctx, r)
	if RecorderFrom(ctx) != r {
		t.Fatal("recorder not threaded")
	}
	ctx, root := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx, "inner")
	inner.End()
	root.End()
	if err := r.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if r.spans[1].Parent != r.spans[0].ID {
		t.Fatalf("inner span parent = %d, want %d", r.spans[1].Parent, r.spans[0].ID)
	}
	if WithRecorder(context.Background(), nil) != context.Background() {
		t.Fatal("WithRecorder(nil) should return ctx unchanged")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var sp *Span
	// None of these may panic.
	sp = r.StartSpan(nil, "x")
	sp.End()
	sp.Add("c", 1)
	sp.SetAttr("k", "v")
	r.Add("c", 1)
	r.Set("g", 1)
	r.SetClock(func() time.Duration { return 0 })
	r.Adopt("w", New())
	if r.Counter("c") != 0 || r.Gauge("g") != 0 || r.NumSpans() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if r.Counters() != nil || r.SpanNames() != nil {
		t.Fatal("nil recorder returned maps")
	}
	if _, ok := r.SpanCounters("x"); ok {
		t.Fatal("nil recorder found a span")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetrics(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.FlameSummary() != "" {
		t.Fatal("nil recorder produced flame summary")
	}
}
