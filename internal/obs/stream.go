package obs

import (
	"encoding/json"
	"sync"
)

// Stream is a bounded, subscriber-fanout live event feed: producers
// publish JSON records (span boundaries from an attached Recorder,
// violations from the transient-state monitor), a fixed-capacity ring
// buffer keeps the most recent records as backlog for late subscribers,
// and every subscriber gets its own bounded channel. Publishing never
// blocks: a subscriber that cannot keep up loses records, and every such
// loss increments an explicit drop counter — the stream is best-effort by
// design, the recorder remains the complete record.
type Stream struct {
	mu      sync.Mutex
	cap     int
	ring    [][]byte // last cap published lines, oldest first
	seq     uint64   // total records ever published
	dropped int64    // records lost to slow subscribers
	subs    map[*StreamSub]struct{}

	// dropRec, when set, mirrors every drop into CtrStreamDropped on that
	// recorder (CountDropsInto). The Add happens after the stream lock is
	// released: the recorder may itself publish to this stream, so the two
	// locks are never held together in either order.
	dropRec *Recorder
}

// DefaultStreamCapacity is the backlog ring size when NewStream gets a
// non-positive capacity.
const DefaultStreamCapacity = 1024

// NewStream returns a stream whose backlog ring holds the last capacity
// records (DefaultStreamCapacity if capacity ≤ 0).
func NewStream(capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	return &Stream{cap: capacity, subs: make(map[*StreamSub]struct{})}
}

// StreamRecord is the wire form of the records the obs layer itself
// publishes (span boundaries); other producers publish their own types.
type StreamRecord struct {
	Type  string `json:"type"`
	Name  string `json:"name,omitempty"`
	Span  int    `json:"span,omitempty"`
	Tick  uint64 `json:"tick,omitempty"`
	SimNS int64  `json:"sim_ns,omitempty"`
}

// Publish marshals v to one JSON line and broadcasts it: appended to the
// backlog ring (evicting the oldest record when full) and offered to every
// subscriber without blocking. Records a subscriber's buffer cannot take
// are counted in Dropped. Unmarshalable values are ignored. Nil-safe.
func (s *Stream) Publish(v any) {
	if s == nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.seq++
	if len(s.ring) == s.cap {
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = line
	} else {
		s.ring = append(s.ring, line)
	}
	var droppedNow int64
	for sub := range s.subs {
		select {
		case sub.ch <- line:
		default:
			s.dropped++
			droppedNow++
		}
	}
	rec := s.dropRec
	s.mu.Unlock()
	if droppedNow > 0 {
		rec.Add(CtrStreamDropped, droppedNow)
	}
}

// CountDropsInto mirrors every subsequent subscriber drop into rec's
// CtrStreamDropped counter, making slow-subscriber loss visible on
// /metrics and in metrics dumps. Recorder.SetStream wires this
// automatically; a nil rec detaches. Nil-safe.
func (s *Stream) CountDropsInto(rec *Recorder) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dropRec = rec
	s.mu.Unlock()
}

// Dropped returns the number of records lost to slow subscribers so far.
func (s *Stream) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Seq returns the total number of records ever published.
func (s *Stream) Seq() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// StreamSub is one subscription: the backlog at subscription time plus a
// live channel. Close it when done or the stream keeps offering (and
// dropping) records against its buffer forever.
type StreamSub struct {
	s  *Stream
	ch chan []byte
}

// Subscribe snapshots the current backlog and registers a live channel
// buffering up to buf records (a non-positive buf gets the ring capacity).
// The returned backlog and all channel payloads are immutable lines
// without trailing newlines.
func (s *Stream) Subscribe(buf int) (backlog [][]byte, sub *StreamSub) {
	if s == nil {
		return nil, nil
	}
	if buf <= 0 {
		buf = s.cap
	}
	sub = &StreamSub{s: s, ch: make(chan []byte, buf)}
	s.mu.Lock()
	backlog = make([][]byte, len(s.ring))
	copy(backlog, s.ring)
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	return backlog, sub
}

// C is the live record channel.
func (u *StreamSub) C() <-chan []byte {
	if u == nil {
		return nil
	}
	return u.ch
}

// Close unregisters the subscription. Safe to call more than once; the
// channel is not closed (records already buffered stay readable).
func (u *StreamSub) Close() {
	if u == nil {
		return
	}
	u.s.mu.Lock()
	delete(u.s.subs, u)
	u.s.mu.Unlock()
}
