package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// jsonSpan is the JSONL wire form of one span. Field order is fixed by the
// struct; map values marshal with sorted keys — the whole line stream is a
// deterministic function of the recorded data.
type jsonSpan struct {
	Type      string            `json:"type"` // "span"
	ID        int               `json:"id"`
	Parent    int               `json:"parent"`
	Name      string            `json:"name"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	StartTick uint64            `json:"start_tick"`
	EndTick   uint64            `json:"end_tick"`
	SimStart  int64             `json:"sim_start_ns"`
	SimEnd    int64             `json:"sim_end_ns"`
	Counters  map[string]int64  `json:"counters,omitempty"`
}

type jsonMetric struct {
	Type  string `json:"type"` // "counter" | "gauge"
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// WriteJSONL emits the trace: one JSON object per line — every span in ID
// order, then every counter and gauge in name order. The output is
// byte-identical for identical recordings.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	spans, counters, gauges := r.snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		sp := &spans[i]
		js := jsonSpan{
			Type: "span", ID: sp.ID, Parent: sp.Parent, Name: sp.Name,
			StartTick: sp.StartTick, EndTick: sp.EndTick,
			SimStart: sp.SimStart, SimEnd: sp.SimEnd,
			Counters: sp.Counters,
		}
		if len(sp.Attrs) > 0 {
			js.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(counters) {
		if err := enc.Encode(jsonMetric{Type: "counter", Name: name, Value: counters[name]}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if err := enc.Encode(jsonMetric{Type: "gauge", Name: name, Value: gauges[name]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMetrics emits the counter and gauge totals as "counter <name>
// <value>" / "gauge <name> <value>" lines in name order — a plain-text dump
// the worker-invariance tests compare byte for byte.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	_, counters, gauges := r.snapshot()
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(bw, "counter %s %d\n", name, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(bw, "gauge %s %d\n", name, gauges[name])
	}
	return bw.Flush()
}

// Validate checks span-tree well-formedness: every span ended, every parent
// a recorded span that opened before and closed after its child, and
// simulated timestamps non-decreasing within and across nesting (where a
// sim clock was installed). It returns the first violation found.
func (r *Recorder) Validate() error {
	if r == nil {
		return nil
	}
	spans, _, _ := r.snapshot()
	return validateSpans(spans)
}

func validateSpans(spans []spanRecord) error {
	byID := make(map[int]*spanRecord, len(spans))
	for i := range spans {
		sp := &spans[i]
		if sp.ID <= 0 {
			return fmt.Errorf("obs: span %q has invalid id %d", sp.Name, sp.ID)
		}
		if byID[sp.ID] != nil {
			return fmt.Errorf("obs: duplicate span id %d", sp.ID)
		}
		byID[sp.ID] = sp
	}
	for i := range spans {
		sp := &spans[i]
		if sp.EndTick == 0 {
			return fmt.Errorf("obs: span %d %q never ended", sp.ID, sp.Name)
		}
		if sp.EndTick < sp.StartTick {
			return fmt.Errorf("obs: span %d %q ends (tick %d) before it starts (tick %d)",
				sp.ID, sp.Name, sp.EndTick, sp.StartTick)
		}
		if sp.SimStart != NoSim && sp.SimEnd != NoSim && sp.SimEnd < sp.SimStart {
			return fmt.Errorf("obs: span %d %q sim-clock runs backwards (%d → %d ns)",
				sp.ID, sp.Name, sp.SimStart, sp.SimEnd)
		}
		if sp.Parent == 0 {
			continue
		}
		parent := byID[sp.Parent]
		if parent == nil {
			return fmt.Errorf("obs: span %d %q has unknown parent %d", sp.ID, sp.Name, sp.Parent)
		}
		if parent.StartTick >= sp.StartTick {
			return fmt.Errorf("obs: span %d %q starts (tick %d) before its parent %d (tick %d)",
				sp.ID, sp.Name, sp.StartTick, parent.ID, parent.StartTick)
		}
		if parent.EndTick != 0 && parent.EndTick <= sp.EndTick {
			return fmt.Errorf("obs: span %d %q ends (tick %d) after its parent %d (tick %d)",
				sp.ID, sp.Name, sp.EndTick, parent.ID, parent.EndTick)
		}
		if sp.SimStart != NoSim && parent.SimStart != NoSim && sp.SimStart < parent.SimStart {
			return fmt.Errorf("obs: span %d %q sim-starts before its parent %d", sp.ID, sp.Name, parent.ID)
		}
	}
	return nil
}

// ValidateJSONL re-parses a WriteJSONL stream and runs the same
// well-formedness checks on it — the CI smoke step's checker. Counter and
// gauge lines are parsed (and their types verified) but carry no tree
// structure to check.
func ValidateJSONL(r io.Reader) (spanCount int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var spans []spanRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(text), &head); err != nil {
			return 0, fmt.Errorf("obs: line %d: %w", line, err)
		}
		switch head.Type {
		case "span":
			var js jsonSpan
			if err := json.Unmarshal([]byte(text), &js); err != nil {
				return 0, fmt.Errorf("obs: line %d: %w", line, err)
			}
			sp := spanRecord{
				ID: js.ID, Parent: js.Parent, Name: js.Name,
				StartTick: js.StartTick, EndTick: js.EndTick,
				SimStart: js.SimStart, SimEnd: js.SimEnd,
				Counters: js.Counters,
			}
			for _, k := range sortedKeysString(js.Attrs) {
				sp.Attrs = append(sp.Attrs, Attr{Key: k, Value: js.Attrs[k]})
			}
			spans = append(spans, sp)
		case "counter", "gauge":
			var jm jsonMetric
			if err := json.Unmarshal([]byte(text), &jm); err != nil {
				return 0, fmt.Errorf("obs: line %d: %w", line, err)
			}
		default:
			return 0, fmt.Errorf("obs: line %d: unknown record type %q", line, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return len(spans), validateSpans(spans)
}

func sortedKeysString(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FlameSummary renders a human-readable aggregation of the span tree:
// spans grouped by their name path (root/child/...), with invocation
// counts, total simulated time (where stamped) and per-path counter
// totals. Rows appear in first-occurrence order, indented by depth.
func (r *Recorder) FlameSummary() string {
	if r == nil {
		return ""
	}
	spans, _, _ := r.snapshot()
	type agg struct {
		path     string
		depth    int
		count    int
		sim      time.Duration
		hasSim   bool
		counters map[string]int64
	}
	byID := make(map[int]*spanRecord, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	pathOf := make(map[int]string, len(spans))
	depthOf := make(map[int]int, len(spans))
	var order []string
	groups := make(map[string]*agg)
	for i := range spans {
		sp := &spans[i]
		path, depth := sp.Name, 0
		if sp.Parent != 0 {
			path = pathOf[sp.Parent] + "/" + sp.Name
			depth = depthOf[sp.Parent] + 1
		}
		pathOf[sp.ID] = path
		depthOf[sp.ID] = depth
		g := groups[path]
		if g == nil {
			g = &agg{path: path, depth: depth, counters: make(map[string]int64)}
			groups[path] = g
			order = append(order, path)
		}
		g.count++
		if sp.SimStart != NoSim && sp.SimEnd != NoSim {
			g.sim += time.Duration(sp.SimEnd - sp.SimStart)
			g.hasSim = true
		}
		for k, v := range sp.Counters {
			g.counters[k] += v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flame summary: %d spans, %d distinct paths\n", len(spans), len(order))
	for _, path := range order {
		g := groups[path]
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		fmt.Fprintf(&b, "%s%-*s %4d×", strings.Repeat("  ", g.depth+1),
			36-2*g.depth, name, g.count)
		if g.hasSim {
			fmt.Fprintf(&b, "  sim %8.1fs", g.sim.Seconds())
		}
		if len(g.counters) > 0 {
			keys := sortedKeys(g.counters)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%d", k, g.counters[k]))
			}
			fmt.Fprintf(&b, "  [%s]", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
