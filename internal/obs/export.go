package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// jsonSpan is the JSONL wire form of one span. Field order is fixed by the
// struct; map values marshal with sorted keys — the whole line stream is a
// deterministic function of the recorded data. The cost fields are pointers
// so their presence tracks whether the recorder had cost attribution on
// (never whether an individual value happened to be zero): a dump's shape
// is decided by configuration, not by measurement noise.
type jsonSpan struct {
	Type      string            `json:"type"` // "span"
	ID        int               `json:"id"`
	Parent    int               `json:"parent"`
	Name      string            `json:"name"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	StartTick uint64            `json:"start_tick"`
	EndTick   uint64            `json:"end_tick"`
	SimStart  int64             `json:"sim_start_ns"`
	SimEnd    int64             `json:"sim_end_ns"`
	Counters  map[string]int64  `json:"counters,omitempty"`

	// Cost attribution (EnableCostAttribution): cumulative wall time, the
	// self (minus direct children) share, and allocation deltas.
	WallNS     *int64 `json:"wall_ns,omitempty"`
	SelfWallNS *int64 `json:"self_wall_ns,omitempty"`
	Mallocs    *int64 `json:"mallocs,omitempty"`
	AllocBytes *int64 `json:"alloc_bytes,omitempty"`
}

// DumpOptions tune WriteJSONLWith.
type DumpOptions struct {
	// ZeroCosts replaces every machine-measured cost field (wall time,
	// self time, allocation deltas) with zero while keeping the fields
	// present. Wall time and allocations are properties of the machine,
	// not of the simulation, so byte-identical fingerprint comparisons
	// (run-to-run, worker-count invariance) normalize them this way while
	// still pinning the fields' presence and everything deterministic.
	ZeroCosts bool
}

// selfWall derives each span's self wall time: its cumulative wall time
// minus its direct children's, clamped at zero (clock granularity can make
// children sum past their parent).
func selfWall(spans []spanRecord) []int64 {
	childSum := make(map[int]int64, len(spans))
	for i := range spans {
		if p := spans[i].Parent; p != 0 {
			childSum[p] += spans[i].WallNS
		}
	}
	self := make([]int64, len(spans))
	for i := range spans {
		s := spans[i].WallNS - childSum[spans[i].ID]
		if s < 0 {
			s = 0
		}
		self[i] = s
	}
	return self
}

type jsonMetric struct {
	Type  string `json:"type"` // "counter" | "gauge"
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// jsonHist is the JSONL wire form of one histogram: non-cumulative bucket
// counts keyed by the rendered inclusive upper bound (map values marshal
// with sorted keys — numerically unordered but deterministic) plus the sum
// and sample count.
type jsonHist struct {
	Type    string           `json:"type"` // "hist"
	Name    string           `json:"name"`
	Buckets map[string]int64 `json:"buckets"`
	Sum     int64            `json:"sum"`
	Count   int64            `json:"count"`
}

func histToJSON(h HistSnapshot) jsonHist {
	jh := jsonHist{Type: "hist", Name: h.Name, Sum: h.Sum, Count: h.Count,
		Buckets: make(map[string]int64, len(h.Buckets))}
	for _, b := range h.Buckets {
		jh.Buckets[fmt.Sprintf("%d", b.Le)] = b.Count
	}
	return jh
}

// WriteJSONL emits the trace: one JSON object per line — every span in ID
// order, then every counter and gauge in name order. The output is
// byte-identical for identical recordings (with cost attribution enabled,
// the wall-time and allocation fields are machine measurements; normalize
// them with WriteJSONLWith and DumpOptions.ZeroCosts before fingerprint
// comparisons).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return r.WriteJSONLWith(w, DumpOptions{})
}

// WriteJSONLWith is WriteJSONL with explicit dump options.
func (r *Recorder) WriteJSONLWith(w io.Writer, opts DumpOptions) error {
	if r == nil {
		return nil
	}
	spans, counters, gauges, cost := r.snapshot()
	var self []int64
	if cost {
		self = selfWall(spans)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		sp := &spans[i]
		js := jsonSpan{
			Type: "span", ID: sp.ID, Parent: sp.Parent, Name: sp.Name,
			StartTick: sp.StartTick, EndTick: sp.EndTick,
			SimStart: sp.SimStart, SimEnd: sp.SimEnd,
			Counters: sp.Counters,
		}
		if cost {
			wall, selfNS, mallocs, bytes := sp.WallNS, self[i], sp.Mallocs, sp.AllocBytes
			if opts.ZeroCosts {
				wall, selfNS, mallocs, bytes = 0, 0, 0, 0
			}
			js.WallNS, js.SelfWallNS, js.Mallocs, js.AllocBytes = &wall, &selfNS, &mallocs, &bytes
		}
		if len(sp.Attrs) > 0 {
			js.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(counters) {
		if err := enc.Encode(jsonMetric{Type: "counter", Name: name, Value: counters[name]}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if err := enc.Encode(jsonMetric{Type: "gauge", Name: name, Value: gauges[name]}); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		if err := enc.Encode(histToJSON(h)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMetrics emits the counter and gauge totals as "counter <name>
// <value>" / "gauge <name> <value>" lines in name order, followed by one
// "hist <name> le<bound>=<n>... sum=<s> count=<c>" line per histogram — a
// plain-text dump the worker-invariance tests compare byte for byte.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.MetricsDump().Write(w)
}

// MetricsDump is the parsed form of a WriteMetrics artifact. Write and
// ParseMetrics are exact inverses: parse → re-write reproduces the input
// byte for byte, which is the canonicality contract the run-bundle differ
// (internal/obs/diff) relies on.
type MetricsDump struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    []HistSnapshot // sorted by name
}

// MetricsDump snapshots the recorder's counters, gauges and histograms.
func (r *Recorder) MetricsDump() *MetricsDump {
	if r == nil {
		return &MetricsDump{}
	}
	_, counters, gauges, _ := r.snapshot()
	return &MetricsDump{Counters: counters, Gauges: gauges, Hists: r.Histograms()}
}

// Write renders the dump in the canonical WriteMetrics text form.
func (d *MetricsDump) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(d.Counters) {
		fmt.Fprintf(bw, "counter %s %d\n", name, d.Counters[name])
	}
	for _, name := range sortedKeys(d.Gauges) {
		fmt.Fprintf(bw, "gauge %s %d\n", name, d.Gauges[name])
	}
	for _, h := range d.Hists {
		fmt.Fprintf(bw, "hist %s", h.Name)
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, " le%d=%d", b.Le, b.Count)
		}
		fmt.Fprintf(bw, " sum=%d count=%d\n", h.Sum, h.Count)
	}
	return bw.Flush()
}

// ParseMetrics parses a WriteMetrics dump back into structured form,
// rejecting anything non-canonical: unknown line kinds, out-of-order or
// duplicate names, malformed histogram fields, or bucket counts that do
// not sum to the sample count.
func ParseMetrics(r io.Reader) (*MetricsDump, error) {
	d := &MetricsDump{Counters: make(map[string]int64), Gauges: make(map[string]int64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	lastOf := make(map[string]string) // kind → last name seen, for order checks
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		kind := fields[0]
		if len(fields) < 2 {
			return nil, fmt.Errorf("obs: metrics line %d: truncated %q line", line, kind)
		}
		name := fields[1]
		if last := lastOf[kind]; name <= last {
			return nil, fmt.Errorf("obs: metrics line %d: %s %q out of order (after %q)", line, kind, name, last)
		}
		lastOf[kind] = name
		switch kind {
		case "counter", "gauge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("obs: metrics line %d: want \"%s <name> <value>\"", line, kind)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: metrics line %d: %w", line, err)
			}
			if kind == "counter" {
				d.Counters[name] = v
			} else {
				d.Gauges[name] = v
			}
		case "hist":
			h := HistSnapshot{Name: name}
			var bucketSum int64
			var haveSum, haveCount bool
			for _, f := range fields[2:] {
				eq := strings.IndexByte(f, '=')
				if eq < 0 {
					return nil, fmt.Errorf("obs: metrics line %d: malformed hist field %q", line, f)
				}
				key, val := f[:eq], f[eq+1:]
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: metrics line %d: %w", line, err)
				}
				switch {
				case key == "sum":
					h.Sum, haveSum = n, true
				case key == "count":
					h.Count, haveCount = n, true
				case strings.HasPrefix(key, "le"):
					le, err := strconv.ParseUint(key[2:], 10, 64)
					if err != nil {
						return nil, fmt.Errorf("obs: metrics line %d: %w", line, err)
					}
					if k := len(h.Buckets); k > 0 && h.Buckets[k-1].Le >= le {
						return nil, fmt.Errorf("obs: metrics line %d: hist buckets out of order", line)
					}
					h.Buckets = append(h.Buckets, HistBucket{Le: le, Count: n})
					bucketSum += n
				default:
					return nil, fmt.Errorf("obs: metrics line %d: unknown hist field %q", line, key)
				}
			}
			if !haveSum || !haveCount {
				return nil, fmt.Errorf("obs: metrics line %d: hist %q missing sum/count", line, name)
			}
			if bucketSum != h.Count {
				return nil, fmt.Errorf("obs: metrics line %d: hist %q buckets sum to %d, count is %d",
					line, name, bucketSum, h.Count)
			}
			d.Hists = append(d.Hists, h)
		default:
			return nil, fmt.Errorf("obs: metrics line %d: unknown record kind %q", line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Validate checks span-tree well-formedness: every span ended, every parent
// a recorded span that opened before and closed after its child, and
// simulated timestamps non-decreasing within and across nesting (where a
// sim clock was installed). It returns the first violation found.
func (r *Recorder) Validate() error {
	if r == nil {
		return nil
	}
	spans, _, _, _ := r.snapshot()
	return validateSpans(spans)
}

func validateSpans(spans []spanRecord) error {
	byID := make(map[int]*spanRecord, len(spans))
	for i := range spans {
		sp := &spans[i]
		if sp.ID <= 0 {
			return fmt.Errorf("obs: span %q has invalid id %d", sp.Name, sp.ID)
		}
		if byID[sp.ID] != nil {
			return fmt.Errorf("obs: duplicate span id %d", sp.ID)
		}
		byID[sp.ID] = sp
	}
	for i := range spans {
		sp := &spans[i]
		if sp.EndTick == 0 {
			return fmt.Errorf("obs: span %d %q never ended", sp.ID, sp.Name)
		}
		if sp.EndTick < sp.StartTick {
			return fmt.Errorf("obs: span %d %q ends (tick %d) before it starts (tick %d)",
				sp.ID, sp.Name, sp.EndTick, sp.StartTick)
		}
		if sp.SimStart != NoSim && sp.SimEnd != NoSim && sp.SimEnd < sp.SimStart {
			return fmt.Errorf("obs: span %d %q sim-clock runs backwards (%d → %d ns)",
				sp.ID, sp.Name, sp.SimStart, sp.SimEnd)
		}
		if sp.Parent == 0 {
			continue
		}
		parent := byID[sp.Parent]
		if parent == nil {
			return fmt.Errorf("obs: span %d %q has unknown parent %d", sp.ID, sp.Name, sp.Parent)
		}
		if parent.StartTick >= sp.StartTick {
			return fmt.Errorf("obs: span %d %q starts (tick %d) before its parent %d (tick %d)",
				sp.ID, sp.Name, sp.StartTick, parent.ID, parent.StartTick)
		}
		if parent.EndTick != 0 && parent.EndTick <= sp.EndTick {
			return fmt.Errorf("obs: span %d %q ends (tick %d) after its parent %d (tick %d)",
				sp.ID, sp.Name, sp.EndTick, parent.ID, parent.EndTick)
		}
		if sp.SimStart != NoSim && parent.SimStart != NoSim && sp.SimStart < parent.SimStart {
			return fmt.Errorf("obs: span %d %q sim-starts before its parent %d", sp.ID, sp.Name, parent.ID)
		}
	}
	return nil
}

// ValidateJSONL re-parses a WriteJSONL stream and runs the same
// well-formedness checks on it — the CI smoke step's checker. Counter and
// gauge lines are parsed (and their types verified) but carry no tree
// structure to check.
func ValidateJSONL(r io.Reader) (spanCount int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var spans []spanRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(text), &head); err != nil {
			return 0, fmt.Errorf("obs: line %d: %w", line, err)
		}
		switch head.Type {
		case "span":
			var js jsonSpan
			if err := json.Unmarshal([]byte(text), &js); err != nil {
				return 0, fmt.Errorf("obs: line %d: %w", line, err)
			}
			sp := spanRecord{
				ID: js.ID, Parent: js.Parent, Name: js.Name,
				StartTick: js.StartTick, EndTick: js.EndTick,
				SimStart: js.SimStart, SimEnd: js.SimEnd,
				Counters: js.Counters,
			}
			for _, k := range sortedKeysString(js.Attrs) {
				sp.Attrs = append(sp.Attrs, Attr{Key: k, Value: js.Attrs[k]})
			}
			spans = append(spans, sp)
		case "counter", "gauge":
			var jm jsonMetric
			if err := json.Unmarshal([]byte(text), &jm); err != nil {
				return 0, fmt.Errorf("obs: line %d: %w", line, err)
			}
		case "hist":
			var jh jsonHist
			if err := json.Unmarshal([]byte(text), &jh); err != nil {
				return 0, fmt.Errorf("obs: line %d: %w", line, err)
			}
			var bucketSum int64
			for _, c := range jh.Buckets {
				bucketSum += c
			}
			if bucketSum != jh.Count {
				return 0, fmt.Errorf("obs: line %d: hist %q buckets sum to %d, count is %d",
					line, jh.Name, bucketSum, jh.Count)
			}
		default:
			return 0, fmt.Errorf("obs: line %d: unknown record type %q", line, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return len(spans), validateSpans(spans)
}

func sortedKeysString(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PathCost aggregates the spans sharing one name path (root/child/...):
// invocation count, simulated time, cost attribution and counter totals.
type PathCost struct {
	Path  string
	Depth int
	Count int
	// Sim is total simulated time across the path's spans; HasSim reports
	// whether any span was stamped by a sim clock.
	Sim    time.Duration
	HasSim bool
	// WallNS / SelfWallNS / Mallocs / AllocBytes total the cost
	// attribution across the path's spans (zero without
	// EnableCostAttribution).
	WallNS     int64
	SelfWallNS int64
	Mallocs    int64
	AllocBytes int64
	Counters   map[string]int64
}

// CostSummary aggregates the span tree by name path in first-occurrence
// order. The boolean reports whether cost attribution was enabled (the cost
// fields are then meaningful).
func (r *Recorder) CostSummary() ([]PathCost, bool) {
	if r == nil {
		return nil, false
	}
	spans, _, _, cost := r.snapshot()
	return aggregatePaths(spans, cost)
}

func aggregatePaths(spans []spanRecord, cost bool) ([]PathCost, bool) {
	var self []int64
	if cost {
		self = selfWall(spans)
	}
	pathOf := make(map[int]string, len(spans))
	depthOf := make(map[int]int, len(spans))
	idx := make(map[string]int)
	var groups []PathCost
	for i := range spans {
		sp := &spans[i]
		path, depth := sp.Name, 0
		if sp.Parent != 0 {
			path = pathOf[sp.Parent] + "/" + sp.Name
			depth = depthOf[sp.Parent] + 1
		}
		pathOf[sp.ID] = path
		depthOf[sp.ID] = depth
		gi, ok := idx[path]
		if !ok {
			gi = len(groups)
			idx[path] = gi
			groups = append(groups, PathCost{Path: path, Depth: depth, Counters: make(map[string]int64)})
		}
		g := &groups[gi]
		g.Count++
		if sp.SimStart != NoSim && sp.SimEnd != NoSim {
			g.Sim += time.Duration(sp.SimEnd - sp.SimStart)
			g.HasSim = true
		}
		if cost {
			g.WallNS += sp.WallNS
			g.SelfWallNS += self[i]
			g.Mallocs += sp.Mallocs
			g.AllocBytes += sp.AllocBytes
		}
		for k, v := range sp.Counters {
			g.Counters[k] += v
		}
	}
	return groups, cost
}

// TopSelf returns the k paths with the largest self wall time, descending
// (ties broken by path so the order is deterministic). Paths with zero self
// time are skipped.
func TopSelf(paths []PathCost, k int) []PathCost {
	top := make([]PathCost, 0, len(paths))
	for _, p := range paths {
		if p.SelfWallNS > 0 {
			top = append(top, p)
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].SelfWallNS != top[j].SelfWallNS {
			return top[i].SelfWallNS > top[j].SelfWallNS
		}
		return top[i].Path < top[j].Path
	})
	if k > 0 && len(top) > k {
		top = top[:k]
	}
	return top
}

// flameTopK is the number of rows in FlameSummary's self-time table.
const flameTopK = 10

// FlameSummary renders a human-readable aggregation of the span tree:
// spans grouped by their name path (root/child/...), with invocation
// counts, total simulated time (where stamped) and per-path counter
// totals. Rows appear in first-occurrence order, indented by depth. With
// cost attribution enabled, each row additionally shows cumulative wall
// time, and a top-k table of the hottest paths by self wall time (with
// allocation totals) follows the tree.
func (r *Recorder) FlameSummary() string {
	if r == nil {
		return ""
	}
	spans, _, _, cost := r.snapshot()
	groups, _ := aggregatePaths(spans, cost)
	var b strings.Builder
	fmt.Fprintf(&b, "flame summary: %d spans, %d distinct paths\n", len(spans), len(groups))
	var totalSelf int64
	for i := range groups {
		totalSelf += groups[i].SelfWallNS
	}
	for i := range groups {
		g := &groups[i]
		name := g.Path
		if i := strings.LastIndex(g.Path, "/"); i >= 0 {
			name = g.Path[i+1:]
		}
		fmt.Fprintf(&b, "%s%-*s %4d×", strings.Repeat("  ", g.Depth+1),
			36-2*g.Depth, name, g.Count)
		if g.HasSim {
			fmt.Fprintf(&b, "  sim %8.1fs", g.Sim.Seconds())
		}
		if cost {
			fmt.Fprintf(&b, "  wall %9.3fms", float64(g.WallNS)/1e6)
		}
		if len(g.Counters) > 0 {
			keys := sortedKeys(g.Counters)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%d", k, g.Counters[k]))
			}
			fmt.Fprintf(&b, "  [%s]", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}
	if cost {
		top := TopSelf(groups, flameTopK)
		fmt.Fprintf(&b, "top self-time (of %d paths):\n", len(groups))
		for rank, g := range top {
			pct := 0.0
			if totalSelf > 0 {
				pct = 100 * float64(g.SelfWallNS) / float64(totalSelf)
			}
			fmt.Fprintf(&b, "  %2d. %-40s %4d×  self %9.3fms (%5.1f%%)  cum %9.3fms  allocs %d (%d B)\n",
				rank+1, g.Path, g.Count, float64(g.SelfWallNS)/1e6, pct,
				float64(g.WallNS)/1e6, g.Mallocs, g.AllocBytes)
		}
	}
	return b.String()
}
