package bundle

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBundle(t *testing.T, dir, scenario string, seed uint64, parts map[string]string) *Manifest {
	t.Helper()
	w, err := Create(dir, scenario, seed)
	if err != nil {
		t.Fatal(err)
	}
	for name, content := range parts {
		if err := w.AddPart(name, KindTrace, func(dst io.Writer) error {
			_, err := io.WriteString(dst, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBundleRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "b")
	w, err := Create(dir, "smoke", 7)
	if err != nil {
		t.Fatal(err)
	}
	w.SetOption("workers", "4")
	if err := w.AddPart("trace.jsonl", KindTrace, func(dst io.Writer) error {
		_, err := io.WriteString(dst, `{"type":"span","id":1}`+"\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPart("sub/plan.txt", KindPlan, func(dst io.Writer) error {
		_, err := io.WriteString(dst, "Round 1\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.ID == "" || m.Schema != Schema {
		t.Fatalf("bad manifest: %+v", m)
	}
	if len(m.Parts) != 2 || m.Parts[0].Name != "sub/plan.txt" || m.Parts[1].Name != "trace.jsonl" {
		t.Fatalf("parts not sorted by name: %+v", m.Parts)
	}

	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.ID != m.ID {
		t.Fatalf("reopened ID %s != sealed %s", b.Manifest.ID, m.ID)
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	p, ok := b.Manifest.Part("trace.jsonl")
	if !ok {
		t.Fatal("trace.jsonl missing from manifest")
	}
	got, err := b.ReadPart(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"type":"span","id":1}` + "\n"; string(got) != want {
		t.Fatalf("part content %q, want %q", got, want)
	}
	if kinds := b.Manifest.PartsOfKind(KindPlan); len(kinds) != 1 || kinds[0].Name != "sub/plan.txt" {
		t.Fatalf("PartsOfKind(plan) = %+v", kinds)
	}
}

func TestContentAddressIgnoresEnvironment(t *testing.T) {
	parts := map[string]string{"trace.jsonl": "line\n", "metrics.txt": "counter x 1\n"}

	dirA := filepath.Join(t.TempDir(), "a")
	a := writeBundle(t, dirA, "fig7", 7, parts)

	dirB := filepath.Join(t.TempDir(), "b")
	w, err := Create(dirB, "fig7", 7)
	if err != nil {
		t.Fatal(err)
	}
	w.SetOption("workers", "32") // different environment, same content
	for name, content := range parts {
		if err := w.AddPart(name, KindTrace, func(dst io.Writer) error {
			_, err := io.WriteString(dst, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("options changed the content address: %s vs %s", a.ID, b.ID)
	}

	// Different seed, same bytes → different address.
	dirC := filepath.Join(t.TempDir(), "c")
	c := writeBundle(t, dirC, "fig7", 8, parts)
	if c.ID == a.ID {
		t.Fatal("seed did not enter the content address")
	}

	// Different part bytes → different address.
	dirD := filepath.Join(t.TempDir(), "d")
	d := writeBundle(t, dirD, "fig7", 7, map[string]string{"trace.jsonl": "other\n", "metrics.txt": "counter x 1\n"})
	if d.ID == a.ID {
		t.Fatal("part content did not enter the content address")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "b")
	writeBundle(t, dir, "smoke", 7, map[string]string{"trace.jsonl": "line\n"})
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.jsonl"), []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err == nil || !strings.Contains(err.Error(), "trace.jsonl") {
		t.Fatalf("Verify() = %v, want hash mismatch naming the part", err)
	}
}

func TestWriterRejectsBadParts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "b")
	w, err := Create(dir, "smoke", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ManifestName, "../escape.txt", "/abs.txt", "a/../../b"} {
		if err := w.AddPart(name, KindTrace, func(io.Writer) error { return nil }); err == nil {
			t.Errorf("AddPart(%q) accepted an invalid name", name)
		}
	}
	ok := func(dst io.Writer) error { _, err := io.WriteString(dst, "x"); return err }
	if err := w.AddPart("p.txt", KindTrace, ok); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPart("p.txt", KindTrace, ok); err == nil {
		t.Error("duplicate part name accepted")
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPart("late.txt", KindTrace, ok); err == nil {
		t.Error("AddPart after Close accepted")
	}
	// A sealed directory refuses a second bundle.
	if _, err := Create(dir, "smoke", 7); err == nil {
		t.Error("Create over a sealed bundle accepted")
	}
}

func TestAddFile(t *testing.T) {
	src := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(src, []byte(`{"seq":1,"kind":"begin"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "b")
	w, err := Create(dir, "supervise", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFile("journals/journal.jsonl", KindJournal, src); err != nil {
		t.Fatal(err)
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Parts[0]; p.Kind != KindJournal || p.Size != int64(len(`{"seq":1,"kind":"begin"}`)+1) {
		t.Fatalf("AddFile part = %+v", p)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "b")
	writeBundle(t, dir, "smoke", 7, map[string]string{"trace.jsonl": "line\n"})
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the recorded seed: the stored ID no longer matches.
	tampered := strings.Replace(string(raw), `"seed": 7`, `"seed": 8`, 1)
	if tampered == string(raw) {
		t.Fatal("test setup: seed field not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "ID") {
		t.Fatalf("Open() = %v, want ID mismatch", err)
	}
}

func TestManifestComputeIDOrderIndependent(t *testing.T) {
	m := Manifest{Schema: Schema, Scenario: "s", Seed: 1, Parts: []Part{
		{Name: "b", Kind: KindTrace, SHA256: "22"},
		{Name: "a", Kind: KindMetrics, SHA256: "11"},
	}}
	id1 := m.ComputeID()
	m.Parts[0], m.Parts[1] = m.Parts[1], m.Parts[0]
	if id2 := m.ComputeID(); id1 != id2 {
		t.Fatalf("part order changed the ID: %s vs %s", id1, id2)
	}
}

func ExampleCreate() {
	dir := filepath.Join(os.TempDir(), "bundle-example")
	os.RemoveAll(dir)
	w, _ := Create(dir, "smoke", 7)
	_ = w.AddPart("trace.jsonl", KindTrace, func(dst io.Writer) error {
		_, err := io.WriteString(dst, `{"type":"span","id":1}`+"\n")
		return err
	})
	m, _ := w.Close()
	fmt.Println(len(m.Parts), "part(s), scenario", m.Scenario)
	// Output: 1 part(s), scenario smoke
}
