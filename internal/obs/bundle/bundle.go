// Package bundle turns one harness run into a durable, content-addressed,
// diffable artifact: a directory of canonical parts (trace JSONL, metrics
// dump, violation timelines, compiled plans, chaos fingerprints, BENCH
// results, execution journals) plus a manifest.json recording the schema
// version, the run's scenario key and seeds, the producing binary's build
// info, and the SHA-256 of every part.
//
// The bundle ID is the content address: the SHA-256 of the schema line,
// the scenario key, the seed, and the sorted (name, kind, sha256) part
// triples. Environment metadata — build info, worker counts, flag values —
// is recorded in the manifest but deliberately excluded from the ID, so
// two runs of the same seeds compare equal regardless of parallelism or
// toolchain. "Byte-identical at any parallelism" therefore collapses to
// "equal bundle IDs", and the structural differ (internal/obs/diff) only
// has to explain runs whose IDs disagree.
//
// Everything a part contains must be a deterministic function of the run:
// simulated time and logical ticks, never wall clocks or machine cost
// measurements. The format is documented in DESIGN.md §16.
package bundle

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chameleon/internal/obs"
)

// Schema identifies the bundle manifest format.
const Schema = "chameleon/bundle/v1"

// ManifestName is the manifest's file name inside the bundle directory.
const ManifestName = "manifest.json"

// Part kinds. The differ dispatches its structural comparison on these.
const (
	KindTrace    = "trace"    // obs span/counter/histogram JSONL (obs.WriteJSONL)
	KindMetrics  = "metrics"  // plain-text counter/gauge/histogram dump (obs.WriteMetrics)
	KindTimeline = "timeline" // monitor violation timelines JSONL (monitor.WriteJSONL)
	KindPlan     = "plan"     // rendered reconfiguration plan (plan.Plan.String)
	KindChaos    = "chaos"    // chaos / recovery sweep fingerprint table
	KindBench    = "bench"    // perf trajectory point (chameleon/bench/v1 JSON)
	KindJournal  = "journal"  // supervisor execution journal JSONL
)

// Part is one content-addressed member of a bundle.
type Part struct {
	Name   string `json:"name"` // path relative to the bundle directory
	Kind   string `json:"kind"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"` // lowercase hex
}

// Manifest is the bundle's self-description, stored as manifest.json.
type Manifest struct {
	Schema   string `json:"schema"`
	ID       string `json:"id"` // content address, see ComputeID
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	// Options records environment metadata (worker counts, flag values).
	// Excluded from the ID: a run at -workers 1 and one at -workers 32
	// must content-address identically.
	Options map[string]string `json:"options,omitempty"`
	// Build identifies the producing binary. Excluded from the ID.
	Build obs.BuildInfo `json:"build"`
	// Parts is sorted by name.
	Parts []Part `json:"parts"`
}

// ComputeID derives the content address: SHA-256 over the schema,
// scenario, seed and the sorted part triples. Options and Build are
// deliberately left out (see the package comment).
func (m *Manifest) ComputeID() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%d\n", m.Schema, m.Scenario, m.Seed)
	parts := make([]Part, len(m.Parts))
	copy(parts, m.Parts)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Name < parts[j].Name })
	for _, p := range parts {
		fmt.Fprintf(h, "%s %s %s\n", p.Name, p.Kind, p.SHA256)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Part returns the named part and whether it exists.
func (m *Manifest) Part(name string) (Part, bool) {
	for _, p := range m.Parts {
		if p.Name == name {
			return p, true
		}
	}
	return Part{}, false
}

// PartsOfKind returns the parts of one kind, in name order.
func (m *Manifest) PartsOfKind(kind string) []Part {
	var out []Part
	for _, p := range m.Parts {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

// A Writer accumulates parts into a bundle directory and seals them with a
// manifest on Close. Part writes are hashed as they stream, so even
// multi-gigabyte traces are bundled in one pass.
type Writer struct {
	dir    string
	m      Manifest
	closed bool
}

// Create starts a bundle in dir (created if missing; an existing manifest
// there is an error — bundles are immutable once sealed).
func Create(dir, scenario string, seed uint64) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("bundle: %s already contains a sealed bundle", dir)
	}
	return &Writer{dir: dir, m: Manifest{
		Schema:   Schema,
		Scenario: scenario,
		Seed:     seed,
		Build:    obs.Build(),
	}}, nil
}

// SetOption records one environment-metadata key (never part of the ID).
func (w *Writer) SetOption(key, value string) {
	if w.m.Options == nil {
		w.m.Options = make(map[string]string)
	}
	w.m.Options[key] = value
}

// validName rejects part names that would escape the bundle directory.
func validName(name string) error {
	if name == "" || name == ManifestName {
		return fmt.Errorf("bundle: invalid part name %q", name)
	}
	clean := filepath.ToSlash(filepath.Clean(name))
	if clean != name || strings.HasPrefix(clean, "../") || filepath.IsAbs(name) {
		return fmt.Errorf("bundle: part name %q is not a clean relative path", name)
	}
	return nil
}

// AddPart streams one part into the bundle: write receives a writer whose
// bytes land in dir/name and in the part's SHA-256 simultaneously.
func (w *Writer) AddPart(name, kind string, write func(io.Writer) error) error {
	if w.closed {
		return fmt.Errorf("bundle: writer already closed")
	}
	if err := validName(name); err != nil {
		return err
	}
	if _, dup := w.m.Part(name); dup {
		return fmt.Errorf("bundle: duplicate part %q", name)
	}
	path := filepath.Join(w.dir, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	h := sha256.New()
	bw := bufio.NewWriter(io.MultiWriter(f, h))
	cw := &countingWriter{w: bw}
	if err := write(cw); err != nil {
		f.Close()
		return fmt.Errorf("bundle: writing part %q: %w", name, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	w.m.Parts = append(w.m.Parts, Part{
		Name: name, Kind: kind, Size: cw.n,
		SHA256: hex.EncodeToString(h.Sum(nil)),
	})
	return nil
}

// AddFile copies an existing file (a supervisor journal, a BENCH point)
// into the bundle as a part.
func (w *Writer) AddFile(name, kind, src string) error {
	return w.AddPart(name, kind, func(dst io.Writer) error {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(dst, f)
		return err
	})
}

// Close sorts the parts, computes the content address, and writes the
// manifest. The returned manifest is the sealed bundle's.
func (w *Writer) Close() (*Manifest, error) {
	if w.closed {
		return nil, fmt.Errorf("bundle: writer already closed")
	}
	w.closed = true
	sort.Slice(w.m.Parts, func(i, j int) bool { return w.m.Parts[i].Name < w.m.Parts[j].Name })
	w.m.ID = w.m.ComputeID()
	f, err := os.Create(filepath.Join(w.dir, ManifestName))
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&w.m); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &w.m, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// A Bundle is a sealed bundle opened for reading.
type Bundle struct {
	Dir      string
	Manifest Manifest
}

// Open reads and sanity-checks a bundle's manifest (schema, ID
// consistency, part-name validity). It does not hash the parts; Verify
// does.
func Open(dir string) (*Bundle, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("bundle: parsing %s: %w", filepath.Join(dir, ManifestName), err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("bundle: %s has schema %q, want %q", dir, m.Schema, Schema)
	}
	seen := make(map[string]bool, len(m.Parts))
	for _, p := range m.Parts {
		if err := validName(p.Name); err != nil {
			return nil, err
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("bundle: %s manifest lists part %q twice", dir, p.Name)
		}
		seen[p.Name] = true
	}
	if got := m.ComputeID(); got != m.ID {
		return nil, fmt.Errorf("bundle: %s manifest ID %s does not match its parts (recomputed %s)", dir, m.ID, got)
	}
	return &Bundle{Dir: dir, Manifest: m}, nil
}

// PartPath returns the on-disk path of a part.
func (b *Bundle) PartPath(p Part) string {
	return filepath.Join(b.Dir, filepath.FromSlash(p.Name))
}

// ReadPart returns a part's bytes.
func (b *Bundle) ReadPart(p Part) ([]byte, error) {
	return os.ReadFile(b.PartPath(p))
}

// Verify re-hashes every part against the manifest: a bundle whose bytes
// were touched after sealing fails here, which is what makes the manifest
// a tamper-evident record rather than a listing.
func (b *Bundle) Verify() error {
	for _, p := range b.Manifest.Parts {
		f, err := os.Open(b.PartPath(p))
		if err != nil {
			return err
		}
		h := sha256.New()
		n, err := io.Copy(h, f)
		f.Close()
		if err != nil {
			return err
		}
		if n != p.Size {
			return fmt.Errorf("bundle: part %q is %d bytes, manifest says %d", p.Name, n, p.Size)
		}
		if sum := hex.EncodeToString(h.Sum(nil)); sum != p.SHA256 {
			return fmt.Errorf("bundle: part %q hashes to %s, manifest says %s", p.Name, sum, p.SHA256)
		}
	}
	return nil
}
