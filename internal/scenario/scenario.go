// Package scenario constructs the reconfiguration scenarios used throughout
// the paper: the six-router running example (Fig. 3), and the evaluation
// scenario of §6/§7 (three egress routers, three route reflectors, the most
// preferred egress denying its route so that every router must change its
// selection).
package scenario

import (
	"fmt"
	"math/rand/v2"

	"chameleon/internal/bgp"
	"chameleon/internal/obs"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// Scenario bundles a converged network with the reconfiguration to perform
// on it.
type Scenario struct {
	Name  string
	Net   *sim.Network
	Graph *topology.Graph

	// Prefix is the destination under reconfiguration (one equivalence
	// class; §6 uses 1024 identical prefixes, which collapse to one).
	Prefix bgp.Prefix

	// Prefixes lists every destination under reconfiguration when the
	// scenario carries more than one (Config.ExtraPrefixes); Prefix is
	// always its first entry. Nil means the single destination Prefix.
	// Planning partitions this list into §3 equivalence classes.
	Prefixes []bgp.Prefix

	// E1 is the initially preferred egress; E2, E3 the alternatives.
	E1, E2, E3 topology.NodeID
	// Ext are the external networks peering with E1..E3 (index-aligned).
	Ext []topology.NodeID
	// E4/Ext4 is the spare egress used by the Fig. 11b external-event
	// experiment; only set when WithSpareEgress was used.
	E4, Ext4 topology.NodeID

	// RRs are the route reflectors.
	RRs []topology.NodeID

	// Commands is the original reconfiguration (§5 "original commands").
	Commands []sim.Command

	// Undo is index-aligned with Commands: Undo[i] reverts Commands[i].
	// A supervisor rolling back to the initial configuration applies the
	// undos of every possibly-applied original in reverse order; undo
	// commands are idempotent, so undoing a command that never applied is
	// safe.
	Undo []sim.Command

	Seed uint64
}

// RunningExample builds the Fig. 3 network: six routers, n2 and n5 route
// reflectors, a route ρ1 at n1 with local-pref 200 and ρ6 at n6 with 100.
// The reconfiguration lowers ρ1's local-pref to 50, shifting the whole
// network from ρ1 to ρ6.
func RunningExample() *Scenario {
	g := topology.New("RunningExample")
	n := make([]topology.NodeID, 7) // 1-indexed as in the paper
	for i := 1; i <= 6; i++ {
		n[i] = g.AddRouter(fmt.Sprintf("n%d", i))
	}
	ext1 := g.AddExternal("ext1", 65101)
	ext6 := g.AddExternal("ext6", 65106)
	// Physical topology: two rows as drawn in Fig. 3.
	g.AddLink(n[1], n[2], 1)
	g.AddLink(n[2], n[3], 1)
	g.AddLink(n[1], n[4], 1)
	g.AddLink(n[2], n[5], 1)
	g.AddLink(n[3], n[6], 1)
	g.AddLink(n[4], n[5], 1)
	g.AddLink(n[5], n[6], 1)
	g.AddLink(ext1, n[1], 1)
	g.AddLink(ext6, n[6], 1)

	net := sim.New(g, sim.DefaultOptions(1))
	// iBGP: n2 and n5 reflect for clients n1, n3, n4, n6; n2-n5 peer.
	for _, rr := range []topology.NodeID{n[2], n[5]} {
		for _, c := range []topology.NodeID{n[1], n[3], n[4], n[6]} {
			net.SetSession(rr, c, bgp.IBGPClient)
		}
	}
	net.SetSession(n[2], n[5], bgp.IBGPPeer)
	net.SetSession(n[1], ext1, bgp.EBGP)
	net.SetSession(n[6], ext6, bgp.EBGP)

	// ρ1 has local-pref 200 via an ingress route map at n1.
	net.UpdateRouteMap(n[1], ext1, sim.In, func(rm *sim.RouteMap) {
		rm.Add(sim.Entry{Order: 10, Action: sim.Action{SetLocalPref: sim.U32P(200)}})
	})
	const prefix bgp.Prefix = 0
	net.InjectExternalRoute(ext1, sim.Announcement{Prefix: prefix, ASPathLen: 2})
	net.InjectExternalRoute(ext6, sim.Announcement{Prefix: prefix, ASPathLen: 2})
	net.Run()

	setLP := func(lp uint32) func(*sim.Network) {
		return func(net *sim.Network) {
			net.UpdateRouteMap(n[1], ext1, sim.In, func(rm *sim.RouteMap) {
				rm.Remove(10)
				rm.Add(sim.Entry{Order: 10, Action: sim.Action{SetLocalPref: sim.U32P(lp)}})
			})
		}
	}
	hasLP := func(lp uint32) func(*sim.Network) bool {
		return func(net *sim.Network) bool {
			for _, e := range net.RouteMapOf(n[1], ext1, sim.In).Entries() {
				if e.Order == 10 && e.Action.SetLocalPref != nil && *e.Action.SetLocalPref == lp {
					return true
				}
			}
			return false
		}
	}
	cmd := sim.Command{
		Node:        n[1],
		Description: "n1: set local-pref of routes from ext1 to 50",
		DeniesOld:   false,
		Apply:       setLP(50),
		Verify:      hasLP(50),
	}
	undo := sim.Command{
		Node:        n[1],
		Description: "n1: restore local-pref of routes from ext1 to 200",
		Apply:       setLP(200),
		Verify:      hasLP(200),
	}
	return &Scenario{
		Name: "RunningExample", Net: net, Graph: g, Prefix: prefix,
		E1: n[1], E2: n[6], E3: n[6],
		Ext:      []topology.NodeID{ext1, ext6},
		RRs:      []topology.NodeID{n[2], n[5]},
		Commands: []sim.Command{cmd},
		Undo:     []sim.Command{undo},
		Seed:     1,
	}
}

// Config tweaks CaseStudy construction.
type Config struct {
	// Seed selects the random egresses/reflectors and drives jitter.
	Seed uint64
	// SpareEgress additionally wires a fourth, initially silent external
	// peer (for the Fig. 11b experiment).
	SpareEgress bool
	// RemoveSession makes the original command a session removal (§6)
	// instead of an ingress deny route-map (§7). Both force all routers
	// off e1; the session variant also tears state down.
	RemoveSession bool
	// ExtraPrefixes injects that many additional destinations beyond the
	// base prefix, cycling through three announcement patterns: one
	// identical to the base (collapsing into its equivalence class) and
	// two with different AS-path lengths at ext2/ext3 (forming distinct
	// classes whose final states steer all traffic to e2 or e3
	// respectively). Every pattern is announced by ext1 with the shortest
	// path, so the §6 deny command makes every class reconfigure. With
	// ExtraPrefixes ≥ 3 the scenario is guaranteed multi-class.
	ExtraPrefixes int
	// Recorder, when non-nil, is attached to the scenario network before
	// initial convergence, so substrate counters (sim events, BGP
	// messages, sessions) cover scenario construction too. A nil recorder
	// keeps construction unobserved, as before.
	Recorder *obs.Recorder
	// RIB selects the table engine of the scenario network (zero value:
	// the legacy map engine).
	RIB bgp.TableKind
}

// CaseStudy builds the evaluation scenario of §6/§7 on the named corpus
// topology: three random egresses e1..e3 with external peers announcing the
// same destination, e1 preferred via a shorter AS path, three random route
// reflectors with every other router a client of all three, and the
// reconfiguration denying (or tearing down) e1's external route so that
// every router must change its selection.
func CaseStudy(name string, cfg Config) (*Scenario, error) {
	g, err := topology.Zoo(name)
	if err != nil {
		return nil, err
	}
	return CaseStudyOn(g, cfg)
}

// CaseStudyOn is CaseStudy over an arbitrary prebuilt topology.
func CaseStudyOn(g *topology.Graph, cfg Config) (*Scenario, error) {
	internal := g.Internal()
	// Three distinct egresses plus at least one reflector and one plain
	// client need five routers.
	if len(internal) < 5 {
		return nil, fmt.Errorf("scenario: topology %s too small (%d routers)", g.Name, len(internal))
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa0761d6478bd642f))
	pickDistinct := func(k int) []topology.NodeID {
		perm := rng.Perm(len(internal))
		out := make([]topology.NodeID, k)
		for i := 0; i < k; i++ {
			out[i] = internal[perm[i]]
		}
		return out
	}
	egresses := pickDistinct(3)
	e1, e2, e3 := egresses[0], egresses[1], egresses[2]
	numRR := 3
	if len(internal) < 6 {
		numRR = 1
	}
	rrs := pickDistinct(numRR)

	exts := make([]topology.NodeID, 3)
	for i, e := range egresses {
		exts[i] = g.AddExternal(fmt.Sprintf("ext%d", i+1), uint32(65101+i))
		g.AddLink(exts[i], e, 1)
	}
	var e4, ext4 topology.NodeID = topology.None, topology.None
	if cfg.SpareEgress {
		e4 = internal[rng.IntN(len(internal))]
		ext4 = g.AddExternal("ext4", 65104)
		g.AddLink(ext4, e4, 1)
	}

	opts := sim.DefaultOptions(cfg.Seed)
	opts.RIB = cfg.RIB
	net := sim.New(g, opts)
	net.SetRecorder(cfg.Recorder)
	isRR := make(map[topology.NodeID]bool)
	for _, rr := range rrs {
		isRR[rr] = true
	}
	for i, a := range rrs {
		for _, b := range rrs[i+1:] {
			net.SetSession(a, b, bgp.IBGPPeer)
		}
	}
	for _, r := range internal {
		if isRR[r] {
			continue
		}
		for _, rr := range rrs {
			net.SetSession(rr, r, bgp.IBGPClient)
		}
	}
	for i, e := range egresses {
		net.SetSession(e, exts[i], bgp.EBGP)
	}
	if cfg.SpareEgress {
		net.SetSession(e4, ext4, bgp.EBGP)
	}

	// e1's routes win on AS-path length; e2/e3 tie and are split by IGP
	// cost (§6: "prefer e1 … decide between e2 and e3 on shortest IGP
	// path").
	const prefix bgp.Prefix = 0
	net.InjectExternalRoute(exts[0], sim.Announcement{Prefix: prefix, ASPathLen: 1})
	net.InjectExternalRoute(exts[1], sim.Announcement{Prefix: prefix, ASPathLen: 2})
	net.InjectExternalRoute(exts[2], sim.Announcement{Prefix: prefix, ASPathLen: 2})
	prefixes := []bgp.Prefix{prefix}
	for i := 1; i <= cfg.ExtraPrefixes; i++ {
		p := bgp.Prefix(i)
		// ext1 always announces the shortest path, so the deny command
		// forces every destination off e1; the ext2/ext3 path lengths cycle
		// through three patterns yielding up to three equivalence classes.
		l2, l3 := 2, 2
		switch i % 3 {
		case 2:
			l3 = 4 // final state steers everything to e2
		case 0:
			l2 = 4 // final state steers everything to e3
		}
		net.InjectExternalRoute(exts[0], sim.Announcement{Prefix: p, ASPathLen: 1})
		net.InjectExternalRoute(exts[1], sim.Announcement{Prefix: p, ASPathLen: l2})
		net.InjectExternalRoute(exts[2], sim.Announcement{Prefix: p, ASPathLen: l3})
		prefixes = append(prefixes, p)
	}
	net.Run()

	var cmd, undo sim.Command
	if cfg.RemoveSession {
		cmd = sim.Command{
			Node:        e1,
			Description: fmt.Sprintf("%s: remove eBGP session to ext1", g.Node(e1).Name),
			DeniesOld:   true,
			Apply: func(net *sim.Network) {
				net.RemoveSession(e1, exts[0])
			},
			Verify: func(net *sim.Network) bool {
				_, up := net.HasSession(e1, exts[0])
				return !up
			},
		}
		undo = sim.Command{
			Node:        e1,
			Description: fmt.Sprintf("%s: restore eBGP session to ext1", g.Node(e1).Name),
			Apply: func(net *sim.Network) {
				if _, up := net.HasSession(e1, exts[0]); !up {
					net.SetSession(e1, exts[0], bgp.EBGP)
				}
			},
			Verify: func(net *sim.Network) bool {
				_, up := net.HasSession(e1, exts[0])
				return up
			},
		}
	} else {
		cmd = sim.Command{
			Node:        e1,
			Description: fmt.Sprintf("%s: route-map deny routes from ext1", g.Node(e1).Name),
			DeniesOld:   true,
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(e1, exts[0], sim.In, func(rm *sim.RouteMap) {
					if !rm.Has(5) {
						rm.Add(sim.Entry{Order: 5, Action: sim.Action{Deny: true}})
					}
				})
			},
			Verify: func(net *sim.Network) bool {
				return net.RouteMapOf(e1, exts[0], sim.In).Has(5)
			},
		}
		undo = sim.Command{
			Node:        e1,
			Description: fmt.Sprintf("%s: remove route-map deny of routes from ext1", g.Node(e1).Name),
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(e1, exts[0], sim.In, func(rm *sim.RouteMap) {
					rm.Remove(5)
				})
			},
			Verify: func(net *sim.Network) bool {
				return !net.RouteMapOf(e1, exts[0], sim.In).Has(5)
			},
		}
	}

	s := &Scenario{
		Name: g.Name, Net: net, Graph: g, Prefix: prefix,
		E1: e1, E2: e2, E3: e3, Ext: exts, E4: e4, Ext4: ext4,
		RRs: rrs, Commands: []sim.Command{cmd}, Undo: []sim.Command{undo},
		Seed: cfg.Seed,
	}
	if cfg.ExtraPrefixes > 0 {
		s.Prefixes = prefixes
	}
	return s, nil
}

// AllPrefixes returns every destination under reconfiguration: Prefixes
// when set, else just Prefix.
func (s *Scenario) AllPrefixes() []bgp.Prefix {
	if len(s.Prefixes) > 0 {
		return s.Prefixes
	}
	return []bgp.Prefix{s.Prefix}
}

// Remaining derives the replan-from-intermediate-state scenario: the same
// topology and metadata, net (a live, possibly mid-reconfiguration network)
// as its network, and only the original commands whose slot in applied is
// false — exactly the reconfiguration still outstanding. applied is
// index-aligned with s.Commands; a short applied treats missing entries as
// not applied. Undo stays index-aligned with the remaining commands.
func (s *Scenario) Remaining(net *sim.Network, applied []bool) *Scenario {
	d := *s
	d.Net = net
	d.Commands = nil
	d.Undo = nil
	for i, cmd := range s.Commands {
		if i < len(applied) && applied[i] {
			continue
		}
		d.Commands = append(d.Commands, cmd)
		if i < len(s.Undo) {
			d.Undo = append(d.Undo, s.Undo[i])
		}
	}
	return &d
}

// FinalNetwork returns a converged clone of the scenario network with all
// original commands applied — the target state Pnew. The scenario's own
// network is left untouched.
func (s *Scenario) FinalNetwork() *sim.Network {
	c := s.Net.Clone()
	for _, cmd := range s.Commands {
		cmd.Apply(c)
	}
	c.Run()
	return c
}
