package scenario_test

import (
	"testing"

	"chameleon/internal/scenario"
)

func TestRunningExampleShape(t *testing.T) {
	s := scenario.RunningExample()
	if got := len(s.Graph.Internal()); got != 6 {
		t.Errorf("internal routers = %d, want 6", got)
	}
	if got := len(s.Graph.Externals()); got != 2 {
		t.Errorf("externals = %d, want 2", got)
	}
	if len(s.RRs) != 2 {
		t.Errorf("reflectors = %v, want n2 and n5", s.RRs)
	}
	if len(s.Commands) != 1 || s.Commands[0].DeniesOld {
		t.Errorf("running example command misdescribed: %+v", s.Commands)
	}
	if !s.Net.Converged() {
		t.Error("scenario not converged")
	}
}

func TestCaseStudyDeterministicForSeed(t *testing.T) {
	a, err := scenario.CaseStudy("Sprint", scenario.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.CaseStudy("Sprint", scenario.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.E1 != b.E1 || a.E2 != b.E2 || a.E3 != b.E3 {
		t.Error("egress selection not deterministic")
	}
	if !a.Net.ForwardingState(a.Prefix).Equal(b.Net.ForwardingState(b.Prefix)) {
		t.Error("forwarding state not deterministic")
	}
}

func TestCaseStudyDifferentSeedsDiffer(t *testing.T) {
	a, _ := scenario.CaseStudy("Aarnet", scenario.Config{Seed: 1})
	b, _ := scenario.CaseStudy("Aarnet", scenario.Config{Seed: 2})
	if a.E1 == b.E1 && a.E2 == b.E2 && a.E3 == b.E3 && a.RRs[0] == b.RRs[0] {
		t.Log("seeds 1 and 2 coincide (unlikely but possible); not failing")
	}
}

func TestCaseStudyEgressesDistinct(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.E1 == s.E2 || s.E1 == s.E3 || s.E2 == s.E3 {
		t.Errorf("egresses not distinct: %d %d %d", s.E1, s.E2, s.E3)
	}
	if len(s.Ext) != 3 {
		t.Errorf("externals = %d", len(s.Ext))
	}
}

func TestCaseStudyTooSmall(t *testing.T) {
	if _, err := scenario.CaseStudy("Arpanet196912", scenario.Config{Seed: 1}); err == nil {
		t.Fatal("4-node topology should be rejected")
	}
}

func TestCaseStudyUnknownTopology(t *testing.T) {
	if _, err := scenario.CaseStudy("DoesNotExist", scenario.Config{Seed: 1}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestSpareEgressWiring(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7, SpareEgress: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.E4 < 0 || s.Ext4 < 0 {
		t.Fatal("spare egress not wired")
	}
	if _, up := s.Net.HasSession(s.E4, s.Ext4); !up {
		t.Error("no eBGP session to the spare external peer")
	}
	// The spare peer announces nothing initially.
	for _, n := range s.Graph.Internal() {
		if best, ok := s.Net.Best(n, s.Prefix); ok && best.Egress == s.E4 && s.E4 != s.E1 {
			t.Errorf("node %d already uses the silent spare egress", n)
		}
	}
}

func TestRemoveSessionVariant(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7, RemoveSession: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Commands[0].DeniesOld {
		t.Error("session removal must be marked DeniesOld")
	}
	s.Commands[0].Apply(s.Net)
	s.Net.Run()
	for _, n := range s.Graph.Internal() {
		if best, ok := s.Net.Best(n, s.Prefix); !ok || best.Egress == s.E1 {
			t.Errorf("node %d still via e1 after session removal", n)
		}
	}
}

func TestFinalNetworkDoesNotMutate(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Net.ForwardingState(s.Prefix)
	final := s.FinalNetwork()
	after := s.Net.ForwardingState(s.Prefix)
	if !before.Equal(after) {
		t.Error("FinalNetwork mutated the scenario network")
	}
	if final.ForwardingState(s.Prefix).Equal(before) {
		t.Error("final state should differ from initial")
	}
}

func TestAllRoutersPreferE1Initially(t *testing.T) {
	for _, name := range []string{"Abilene", "Aarnet", "Agis", "Ans"} {
		s, err := scenario.CaseStudy(name, scenario.Config{Seed: 13})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, n := range s.Graph.Internal() {
			best, ok := s.Net.Best(n, s.Prefix)
			if !ok || best.Egress != s.E1 {
				t.Errorf("%s: node %d initial egress %v, want e1=%d", name, n, best.Egress, s.E1)
			}
		}
	}
}
