package scenario

import (
	"fmt"

	"chameleon/internal/bgp"
	"chameleon/internal/obs"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// StormConfig parameterizes a prefix-scale announcement storm: the
// deployment pattern of §7-style subscriber aggregation where a border
// router receives tens of thousands of routes in one burst.
type StormConfig struct {
	// Prefixes is the number of distinct destinations announced.
	Prefixes int
	// Routers is the number of internal routers in the iBGP full mesh
	// (minimum 2; default 4).
	Routers int
	// RIB selects the table engine (zero value: legacy map engine).
	RIB bgp.TableKind
	// Seed drives message jitter; storms default to zero jitter so both
	// engines execute the identical schedule.
	Seed uint64
	// Batched selects batch injection (one message per session carrying
	// the full storm) over route-by-route injection.
	Batched bool
	// Recorder, when non-nil, is attached to the network before injection,
	// so convergence counters (events, messages) attribute to the build.
	Recorder *obs.Recorder
}

// Storm is a converged prefix-scale network: a chain-linked iBGP full mesh
// whose border router learned every prefix from one external peer.
// Forwarding-trace recording is disabled — at 100k prefixes, traces (not
// tables) would dominate memory.
type Storm struct {
	Net      *sim.Network
	Graph    *topology.Graph
	Border   topology.NodeID
	Ext      topology.NodeID
	Prefixes []bgp.Prefix
}

// BuildStorm wires the topology and sessions, injects the storm, and runs
// the network to convergence.
func BuildStorm(cfg StormConfig) (*Storm, error) {
	if cfg.Prefixes <= 0 {
		return nil, fmt.Errorf("scenario: storm needs at least one prefix")
	}
	nr := cfg.Routers
	if nr == 0 {
		nr = 4
	}
	if nr < 2 {
		return nil, fmt.Errorf("scenario: storm needs at least two routers")
	}
	g := topology.New(fmt.Sprintf("Storm-%dp-%dr", cfg.Prefixes, nr))
	routers := make([]topology.NodeID, nr)
	for i := range routers {
		routers[i] = g.AddRouter(fmt.Sprintf("r%d", i))
		if i > 0 {
			g.AddLink(routers[i-1], routers[i], 1)
		}
	}
	ext := g.AddExternal("ext", 65001)
	g.AddLink(ext, routers[0], 1)

	opts := sim.DefaultOptions(cfg.Seed)
	opts.Jitter = 0
	opts.RIB = cfg.RIB
	opts.TracePrefixes = []bgp.Prefix{} // empty non-nil: tracing off
	net := sim.New(g, opts)
	net.SetRecorder(cfg.Recorder)
	for i, a := range routers {
		for _, b := range routers[i+1:] {
			net.SetSession(a, b, bgp.IBGPPeer)
		}
	}
	net.SetSession(routers[0], ext, bgp.EBGP)

	prefixes := make([]bgp.Prefix, cfg.Prefixes)
	for i := range prefixes {
		prefixes[i] = bgp.Prefix(i)
	}
	if cfg.Batched {
		anns := make([]sim.Announcement, cfg.Prefixes)
		for i := range anns {
			anns[i] = sim.Announcement{Prefix: prefixes[i], ASPathLen: 2}
		}
		net.InjectExternalRoutes(ext, anns)
	} else {
		for _, p := range prefixes {
			net.InjectExternalRoute(ext, sim.Announcement{Prefix: p, ASPathLen: 2})
		}
	}
	net.Run()
	return &Storm{
		Net:      net,
		Graph:    g,
		Border:   routers[0],
		Ext:      ext,
		Prefixes: prefixes,
	}, nil
}
