package traffic

import (
	"testing"

	"chameleon/internal/fwd"
	"chameleon/internal/topology"
)

// states: 3 nodes; node 2 is the egress in stA; in stB node 0 drops.
var (
	stA = fwd.State{1, 2, fwd.External}
	stB = fwd.State{fwd.Drop, 2, fwd.External}
	// stC: node 0 exits via a different egress (node 0 itself).
	stC = fwd.State{fwd.External, 2, fwd.External}
)

func trace(pairs ...interface{}) *fwd.Trace {
	tr := &fwd.Trace{}
	for i := 0; i < len(pairs); i += 2 {
		tr.Append(pairs[i].(float64), pairs[i+1].(fwd.State))
	}
	return tr
}

func TestSteadyDelivery(t *testing.T) {
	tr := trace(0.0, stA)
	m := Measure(tr, []topology.NodeID{0, 1, 2}, nil, Options{RatePerNode: 100, Step: 0.5, From: 0, To: 2})
	if !m.Clean() {
		t.Errorf("steady state should be clean: dropped=%v viol=%v", m.TotalDropped, m.TotalViolations)
	}
	for _, s := range m.Samples {
		if s.Delivered != 300 {
			t.Errorf("t=%v delivered %v, want 300", s.Time, s.Delivered)
		}
		if s.PerEgress[2] != 300 {
			t.Errorf("t=%v egress rate %v, want 300", s.Time, s.PerEgress[2])
		}
	}
}

func TestDropWindowIntegration(t *testing.T) {
	// Node 0 drops during [1, 2).
	tr := trace(0.0, stA, 1.0, stB, 2.0, stA)
	m := Measure(tr, []topology.NodeID{0, 1, 2}, nil, Options{RatePerNode: 100, Step: 0.1, From: 0, To: 3})
	if m.TotalDropped < 80 || m.TotalDropped > 120 {
		t.Errorf("TotalDropped = %v, want ≈ 100 (1s at 100 pkt/s)", m.TotalDropped)
	}
	if m.ViolationSeconds < 0.8 || m.ViolationSeconds > 1.3 {
		t.Errorf("ViolationSeconds = %v, want ≈ 1", m.ViolationSeconds)
	}
}

func TestWaypointSwitchOnceRule(t *testing.T) {
	// Four nodes: traffic from 0 must traverse waypoint 1 before its
	// switch and waypoint 2 afterwards.
	viaBefore := fwd.State{1, 3, fwd.Drop, fwd.External} // 0→1→3→d
	viaAfter := fwd.State{2, fwd.Drop, 3, fwd.External}  // 0→2→3→d
	rules := map[topology.NodeID]*WaypointRule{
		0: {Before: 1, After: 2},
	}
	// Legal single switch: no violation.
	tr := trace(0.0, viaBefore, 1.0, viaAfter)
	m := Measure(tr, []topology.NodeID{0}, rules, Options{RatePerNode: 10, Step: 0.25, From: 0, To: 2})
	if m.TotalViolations != 0 {
		t.Errorf("legal switch flagged: %v", m.TotalViolations)
	}
	// Switching back to the Before path after the switch IS a violation.
	tr2 := trace(0.0, viaBefore, 1.0, viaAfter, 2.0, viaBefore)
	m2 := Measure(tr2, []topology.NodeID{0}, rules, Options{RatePerNode: 10, Step: 0.25, From: 0, To: 3})
	if m2.TotalViolations == 0 {
		t.Error("switch-back not flagged")
	}
	// A path that merely CROSSES the before-waypoint while heading to a
	// different egress still satisfies wp(n, Before): Eq. 4 constrains
	// traversal, not the exit point.
	crossBoth := fwd.State{1, 2, 3, fwd.External} // 0→1→2→3→d traverses both
	tr3 := trace(0.0, crossBoth)
	m3 := Measure(tr3, []topology.NodeID{0}, rules, Options{RatePerNode: 10, Step: 0.5, From: 0, To: 1})
	if m3.TotalViolations != 0 {
		t.Error("traversal-only path wrongly flagged")
	}
}

func TestWaypointThirdEgressViolation(t *testing.T) {
	rules := map[topology.NodeID]*WaypointRule{
		1: {Before: 0, After: 0}, // node 1 must always exit via 0
	}
	tr := trace(0.0, stA) // node 1 exits via 2
	m := Measure(tr, []topology.NodeID{1}, rules, Options{RatePerNode: 10, Step: 0.5, From: 0, To: 1})
	if m.TotalViolations == 0 {
		t.Error("wrong egress not flagged")
	}
}

func TestEgressesEnumeration(t *testing.T) {
	tr := trace(0.0, stA, 1.0, stC)
	m := Measure(tr, []topology.NodeID{0, 1}, nil, Options{RatePerNode: 1, Step: 0.5, From: 0, To: 2})
	egs := m.Egresses()
	if len(egs) != 2 || egs[0] != 0 || egs[1] != 2 {
		t.Errorf("Egresses = %v, want [0 2]", egs)
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := trace(0.0, stA)
	m := Measure(tr, []topology.NodeID{0}, nil, Options{})
	if len(m.Samples) == 0 {
		t.Fatal("no samples with default options")
	}
	if m.Samples[0].Delivered != 1500 {
		t.Errorf("default rate = %v, want 1500", m.Samples[0].Delivered)
	}
}

func TestEmptyTraceDropsEverything(t *testing.T) {
	m := Measure(&fwd.Trace{}, []topology.NodeID{0}, nil, Options{RatePerNode: 5, Step: 1, From: 0, To: 2})
	if m.TotalDropped == 0 {
		t.Error("empty trace must count as dropped")
	}
}

func TestLoopCountsAsDrop(t *testing.T) {
	loop := fwd.State{1, 0, fwd.External}
	tr := trace(0.0, loop)
	m := Measure(tr, []topology.NodeID{0, 1}, nil, Options{RatePerNode: 10, Step: 0.5, From: 0, To: 1})
	if m.TotalDropped == 0 {
		t.Error("forwarding loop must count as dropped traffic")
	}
}
