// Package traffic measures packet-level behavior over timed forwarding
// traces, reproducing the paper's testbed methodology (§6): traffic is
// injected at a constant rate at every node towards the destination, and
// the egress where each packet leaves (or the fact that it was dropped or
// violated a waypoint requirement) is recorded over time. This generates
// the throughput/violation series of Figs. 1, 6, 11 and 12.
package traffic

import (
	"sort"

	"chameleon/internal/fwd"
	"chameleon/internal/topology"
)

// Options configure the measurement.
type Options struct {
	// RatePerNode is the injection rate at each node in packets/second.
	// The paper's 16.5 kpkt/s over 11 nodes corresponds to 1500.
	RatePerNode float64
	// Step is the sampling interval in seconds.
	Step float64
	// From/To bound the measured window (seconds); To ≤ From means
	// "until the last trace state plus one step".
	From, To float64
}

// DefaultOptions mirror the paper's testbed rates.
func DefaultOptions() Options {
	return Options{RatePerNode: 1500, Step: 0.1}
}

// Sample is one measurement instant.
type Sample struct {
	Time float64
	// PerEgress maps egress router → delivery rate (pkt/s) through it.
	PerEgress map[topology.NodeID]float64
	// Delivered is the total delivery rate; Dropped the black-holed rate
	// (includes forwarding loops).
	Delivered, Dropped float64
	// WaypointViolations is the rate of packets that reached the
	// destination without satisfying their waypoint requirement.
	WaypointViolations float64
}

// WaypointRule states the per-node waypoint requirement of the §6
// specification (Eq. 4): traffic from node n must traverse waypoint Before
// until the node's (single) switch, and traverse After afterwards; a switch
// back counts as a violation. Traversal matches the specification's wp()
// predicate — the packet's path crosses the waypoint router — not the exit
// egress: a path may legally cross e1 on its way to a different egress.
type WaypointRule struct {
	Before, After topology.NodeID
}

// Measurement is the full time series plus aggregate counters.
type Measurement struct {
	Samples []Sample
	// TotalDropped and TotalViolations integrate rates over time
	// (packets).
	TotalDropped, TotalViolations float64
	// ViolationSeconds is the total time during which any violation or
	// drop was occurring.
	ViolationSeconds float64
}

// Measure samples the trace for the given source nodes. rules may be nil
// (no waypoint requirements).
func Measure(tr *fwd.Trace, sources []topology.NodeID, rules map[topology.NodeID]*WaypointRule, opts Options) *Measurement {
	if opts.RatePerNode == 0 {
		opts.RatePerNode = 1500
	}
	if opts.Step == 0 {
		opts.Step = 0.1
	}
	from := opts.From
	to := opts.To
	if to <= from {
		if len(tr.Times) > 0 {
			to = tr.Times[len(tr.Times)-1] + opts.Step
		} else {
			to = from + opts.Step
		}
	}
	// switched tracks whether a node has left its Before egress already.
	switched := make(map[topology.NodeID]bool)
	m := &Measurement{}
	for t := from; t <= to+1e-9; t += opts.Step {
		st := tr.At(t)
		s := Sample{Time: t, PerEgress: make(map[topology.NodeID]float64)}
		anyBad := false
		for _, n := range sources {
			if st == nil {
				s.Dropped += opts.RatePerNode
				anyBad = true
				continue
			}
			_, term := st.Path(n)
			if term != fwd.External {
				s.Dropped += opts.RatePerNode
				anyBad = true
				continue
			}
			eg := st.Egress(n)
			s.PerEgress[eg] += opts.RatePerNode
			s.Delivered += opts.RatePerNode
			if rule := rules[n]; rule != nil {
				viol := false
				viaBefore := st.Waypoint(n, rule.Before)
				viaAfter := st.Waypoint(n, rule.After)
				if !switched[n] {
					if !viaBefore {
						if viaAfter {
							switched[n] = true
						} else {
							viol = true
						}
					}
				} else if !viaAfter {
					viol = true // switched back or to a third path
				}
				if viol {
					s.WaypointViolations += opts.RatePerNode
					anyBad = true
				}
			}
		}
		m.Samples = append(m.Samples, s)
		m.TotalDropped += s.Dropped * opts.Step
		m.TotalViolations += s.WaypointViolations * opts.Step
		if anyBad {
			m.ViolationSeconds += opts.Step
		}
	}
	return m
}

// Egresses returns all egress routers that appear in the measurement,
// sorted.
func (m *Measurement) Egresses() []topology.NodeID {
	seen := make(map[topology.NodeID]bool)
	for _, s := range m.Samples {
		for e := range s.PerEgress {
			seen[e] = true
		}
	}
	var out []topology.NodeID
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clean reports whether no packet was ever dropped or misrouted.
func (m *Measurement) Clean() bool {
	return m.TotalDropped == 0 && m.TotalViolations == 0
}
