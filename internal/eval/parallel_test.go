package eval

import (
	"bytes"
	goruntime "runtime"
	"sync"
	"testing"

	"chameleon/internal/chaos"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
)

// workerCounts are the pool widths every determinism test compares: the
// historical sequential path, a fixed oversubscribed width, and whatever
// the host offers.
var workerCounts = []int{4, goruntime.NumCPU()}

func TestSweepSchedulingWorkerCountInvariance(t *testing.T) {
	names := []string{"Abilene", "Basnet", "Epoch"}
	csvAt := func(workers int) string {
		var calls int
		var mu sync.Mutex
		outs := SweepScheduling(names, 7, scheduler.DefaultOptions(), workers, func(SweepOutcome) {
			mu.Lock()
			calls++
			mu.Unlock()
		})
		if calls != len(names) {
			t.Fatalf("workers=%d: progress fired %d times, want %d", workers, calls, len(names))
		}
		// scheduling_time_s is the single wall-clock column; everything
		// else must be byte-identical at any worker count.
		for i := range outs {
			outs[i].SchedulingTime = 0
		}
		var b bytes.Buffer
		if err := WriteSweepCSV(&b, outs); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := csvAt(1)
	for _, w := range workerCounts {
		if got := csvAt(w); got != want {
			t.Errorf("workers=%d scheduling sweep CSV diverged from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}

func TestSweepTableOverheadWorkerCountInvariance(t *testing.T) {
	names := []string{"Abilene", "Basnet", "Epoch"}
	csvAt := func(workers int) string {
		outs := SweepTableOverhead(names, 7, scheduler.DefaultOptions(), workers, nil)
		var b bytes.Buffer
		if err := WriteOverheadCSV(&b, outs); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := csvAt(1)
	for _, w := range workerCounts {
		if got := csvAt(w); got != want {
			t.Errorf("workers=%d overhead CSV diverged from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestChaosSweepCSVWorkerCountInvariance asserts the chaos CSV — including
// the fingerprint column — is byte-identical at any worker count.
func TestChaosSweepCSVWorkerCountInvariance(t *testing.T) {
	cfg := chaos.SweepConfig{
		Topologies: []string{"Abilene"},
		Faults:     []sim.FaultKind{sim.FaultNone, sim.FaultDrop, sim.FaultFlap},
		Seeds:      []uint64{1},
	}
	csvAt := func(workers int) string {
		cfg.Workers = workers
		results, _, err := chaos.Sweep(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := WriteChaosCSV(&b, results); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := csvAt(1)
	for _, w := range workerCounts {
		if got := csvAt(w); got != want {
			t.Errorf("workers=%d chaos CSV diverged from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestParallelSweepRaceStress fans many scenario runs through an
// oversubscribed pool. Its teeth come from the -race CI run: every run
// builds its own scenario, network and executor, so the detector must stay
// silent.
func TestParallelSweepRaceStress(t *testing.T) {
	var names []string
	for i := 0; i < 4; i++ {
		names = append(names, "Abilene", "Basnet", "Epoch")
	}
	outs := SweepScheduling(names, 7, scheduler.DefaultOptions(), 8, nil)
	if len(outs) != len(names) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(names))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Errorf("run %d (%s): %v", i, o.Name, o.Err)
		}
		if o.Name != names[i] {
			t.Errorf("result %d is %s, want %s (merge order broken)", i, o.Name, names[i])
		}
	}
}
