// Package eval implements the paper's evaluation (§6, §7, App. A/C/D): it
// builds the specifications of Eq. 4 and §7.1 (φn, φt), runs the scenario
// sweeps behind every figure and table, and provides the statistics helpers
// (CDFs, percentiles) used to render them.
package eval

import (
	"math/rand/v2"

	"chameleon/internal/analyzer"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// ReachabilitySpec builds G ∧_n reach(n) over all internal routers.
func ReachabilitySpec(g *topology.Graph) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range g.Internal() {
		es = append(es, b.Reach(n))
	}
	return spec.NewSpec(b, b.Globally(b.And(es...)))
}

// Eq4Spec builds the case-study specification (Eq. 4):
//
//	φ = ∧_n G reach(n) ∧ wp(n, e1) U G wp(n, e_n)
//
// where e_n is node n's final egress.
func Eq4Spec(a *analyzer.Analysis, e1 topology.NodeID) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range a.Graph.Internal() {
		es = append(es, b.Globally(b.Reach(n)))
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		es = append(es, b.Until(b.Wp(n, e1), b.Globally(b.Wp(n, en))))
	}
	return spec.NewSpec(b, b.And(es...))
}

// PhiN builds the non-temporal specification of §7.1:
//
//	φn = ∧_n G reach(n) ∧ ∧_{n∈Nφ} G (wp(n, e1) ∨ wp(n, e_n))
func PhiN(a *analyzer.Analysis, e1 topology.NodeID, nphi []topology.NodeID) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range a.Graph.Internal() {
		es = append(es, b.Globally(b.Reach(n)))
	}
	for _, n := range nphi {
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		es = append(es, b.Globally(b.Or(b.Wp(n, e1), b.Wp(n, en))))
	}
	return spec.NewSpec(b, b.And(es...))
}

// PhiT builds the temporal specification of §7.1:
//
//	φt = ∧_n G reach(n) ∧ ∧_{n∈Nφ} wp(n, e1) U G wp(n, e_n)
func PhiT(a *analyzer.Analysis, e1 topology.NodeID, nphi []topology.NodeID) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range a.Graph.Internal() {
		es = append(es, b.Globally(b.Reach(n)))
	}
	for _, n := range nphi {
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		es = append(es, b.Until(b.Wp(n, e1), b.Globally(b.Wp(n, en))))
	}
	return spec.NewSpec(b, b.And(es...))
}

// SampleNodes picks k distinct internal routers deterministically from
// seed, for the Nφ sweeps of Figs. 8 and 13.
func SampleNodes(g *topology.Graph, k int, seed uint64) []topology.NodeID {
	internal := g.Internal()
	if k > len(internal) {
		k = len(internal)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x2545f4914f6cdd1d))
	perm := rng.Perm(len(internal))
	out := make([]topology.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = internal[perm[i]]
	}
	return out
}
