package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dist is a sample distribution sorted once at construction, so report
// loops asking for several quantiles (median, P10, P90, CDF, …) of the same
// data pay for a single copy-and-sort instead of one per call.
type Dist struct {
	sorted []float64
}

// NewDist copies and sorts xs once. The zero-length distribution is valid:
// every statistic of it is 0.
func NewDist(xs []float64) *Dist {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &Dist{sorted: s}
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.sorted) }

// Percentile returns the p-th percentile (0–100) by linear interpolation.
func (d *Dist) Percentile(p float64) float64 {
	s := d.sorted
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Mean returns the arithmetic mean.
func (d *Dist) Mean() float64 { return Mean(d.sorted) }

// CDF returns the empirical cumulative distribution as (value, fraction)
// pairs at each distinct data point.
func (d *Dist) CDF() (values, fractions []float64) {
	s := d.sorted
	for i, v := range s {
		if i+1 < len(s) && s[i+1] == v {
			continue
		}
		values = append(values, v)
		fractions = append(fractions, float64(i+1)/float64(len(s)))
	}
	return values, fractions
}

// FractionBelow returns the fraction of samples ≤ x.
func (d *Dist) FractionBelow(x float64) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	// First index whose value exceeds x, on the sorted data.
	lo, hi := 0, len(d.sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.sorted[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo) / float64(len(d.sorted))
}

// Percentile returns the p-th percentile (0–100) of xs by linear
// interpolation; xs need not be sorted. The extremes are symmetric no-copy
// fast paths: p ≤ 0 is a min scan and p ≥ 100 a max scan, neither copying
// nor sorting. Callers needing several quantiles of one sample should sort
// once via NewDist instead.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 {
		min := xs[0]
		for _, x := range xs[1:] {
			if x < min {
				min = x
			}
		}
		return min
	}
	if p >= 100 {
		max := xs[0]
		for _, x := range xs[1:] {
			if x > max {
				max = x
			}
		}
		return max
	}
	return NewDist(xs).Percentile(p)
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// CDF returns the empirical cumulative distribution as (value, fraction)
// pairs at each distinct data point.
func CDF(xs []float64) (values, fractions []float64) {
	return NewDist(xs).CDF()
}

// FractionBelow returns the fraction of samples ≤ x.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// PearsonLogLog computes the Pearson correlation of log(x) vs log(y) for
// positive pairs — the Fig. 7 "strong correlation" statistic.
func PearsonLogLog(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, logf(xs[i]))
			ly = append(ly, logf(ys[i]))
		}
	}
	return pearson(lx, ly)
}

func logf(x float64) float64 { return math.Log(x) }

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// AsciiCDF renders a small text CDF plot (for the eval harness output).
func AsciiCDF(title, unit string, xs []float64, marks []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, len(xs))
	if len(xs) == 0 {
		return b.String()
	}
	d := NewDist(xs)
	for _, m := range marks {
		fmt.Fprintf(&b, "  ≤ %8.1f %s : %5.1f%%\n", m, unit, 100*d.FractionBelow(m))
	}
	fmt.Fprintf(&b, "  min %.2f / median %.2f / mean %.2f / p90 %.2f / max %.2f %s\n",
		d.Percentile(0), d.Median(), d.Mean(), d.Percentile(90), d.Percentile(100), unit)
	return b.String()
}
