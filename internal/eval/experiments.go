package eval

import (
	"context"
	"fmt"
	"sync"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/plan"
	"chameleon/internal/pool"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/sitn"
	"chameleon/internal/snowcap"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
	"chameleon/internal/traffic"
)

// Pipeline bundles the analyze→schedule→compile chain for one scenario.
type Pipeline struct {
	Scenario *scenario.Scenario
	Analysis *analyzer.Analysis
	Spec     *spec.Spec
	Schedule *scheduler.NodeSchedule
	Plan     *plan.Plan
}

// SpecKind selects which specification a sweep uses.
type SpecKind int

// Specification kinds.
const (
	SpecReachability SpecKind = iota
	SpecEq4
)

// BuildPipeline analyzes, schedules and compiles the scenario under the
// chosen specification.
func BuildPipeline(s *scenario.Scenario, kind SpecKind, opts scheduler.Options) (*Pipeline, error) {
	return BuildPipelineCtx(context.Background(), s, kind, opts)
}

// BuildPipelineCtx is BuildPipeline with a context: cancellation reaches
// into the scheduler's branch-and-bound, and a recorder carried by ctx
// observes the analyze and schedule stages.
func BuildPipelineCtx(ctx context.Context, s *scenario.Scenario, kind SpecKind, opts scheduler.Options) (*Pipeline, error) {
	a, err := analyzer.AnalyzeCtx(ctx, s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		return nil, err
	}
	var sp *spec.Spec
	switch kind {
	case SpecEq4:
		sp = Eq4Spec(a, s.E1)
	default:
		sp = ReachabilitySpec(s.Graph)
	}
	sched, err := scheduler.ScheduleCtx(ctx, a, sp, opts)
	if err != nil {
		return nil, err
	}
	p, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Scenario: s, Analysis: a, Spec: sp, Schedule: sched, Plan: p}, nil
}

// --- Figs. 1, 6, 12: case studies ------------------------------------------

// CaseStudyResult compares Snowcap and Chameleon on one topology.
type CaseStudyResult struct {
	Topology string

	SnowcapDuration   time.Duration
	Snowcap           *traffic.Measurement
	ChameleonDuration time.Duration
	Chameleon         *traffic.Measurement
	Phases            []runtime.PhaseSpan
	R                 int
	TempSessions      int

	// Transient-state monitor output for both runs: the paper's Fig. 1 /
	// Fig. 9 comparison is SnowcapViolationTime (strictly positive — the
	// baseline's steady-state guarantees miss the transient) against
	// ChameleonViolationTime (zero by construction).
	SnowcapTimeline        *monitor.Timeline
	SnowcapViolationTime   time.Duration
	ChameleonTimeline      *monitor.Timeline
	ChameleonViolationTime time.Duration

	// PlanText is the compiled Chameleon plan rendered as text — a
	// deterministic function of (topology, seed), bundled as a run-bundle
	// plan part so a bundle diff localizes planner divergences.
	PlanText string
}

// caseStudyInvariants builds the monitored invariant set of the §6/§7 case
// study: full reachability, loop-freedom, and the Eq. 4 waypoint
// projection (each node exits via e1 or its final egress, never a third).
func caseStudyInvariants(s *scenario.Scenario, a *analyzer.Analysis) []monitor.Invariant {
	pairs := make(map[topology.NodeID][2]topology.NodeID)
	for _, n := range a.Graph.Internal() {
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		pairs[n] = [2]topology.NodeID{s.E1, en}
	}
	return []monitor.Invariant{
		monitor.ReachAll(s.Graph),
		monitor.LoopFree(),
		monitor.WaypointEither(pairs),
	}
}

// waypointRules derives the Eq. 4 measurement rules: each node exits via e1
// until its single switch to its final egress.
func waypointRules(a *analyzer.Analysis, e1 topology.NodeID) map[topology.NodeID]*traffic.WaypointRule {
	rules := make(map[topology.NodeID]*traffic.WaypointRule)
	for _, n := range a.Graph.Internal() {
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		rules[n] = &traffic.WaypointRule{Before: e1, After: en}
	}
	return rules
}

// RunCaseStudy reproduces the Figs. 1/6/12 experiment on the named
// topology: the same reconfiguration applied once via Snowcap (direct) and
// once via Chameleon, with packet-level measurement of both runs.
func RunCaseStudy(name string, seed uint64) (*CaseStudyResult, error) {
	return RunCaseStudyCtx(context.Background(), name, seed)
}

// RunCaseStudyCtx is RunCaseStudy with observability threading: a recorder
// carried by ctx (obs.WithRecorder) receives both monitors' counters and
// histogram samples (blame latency, violation duration, hop depth), and
// the recorder's event stream, if any, gets a live record per violation.
// The result and both timelines are byte-identical with or without a
// recorder attached — histograms and streams are observation-only.
func RunCaseStudyCtx(ctx context.Context, name string, seed uint64) (*CaseStudyResult, error) {
	rec := obs.RecorderFrom(ctx)
	out := &CaseStudyResult{Topology: name}

	// Snowcap run.
	sSnow, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	aSnow, err := analyzer.Analyze(sSnow.Net, sSnow.FinalNetwork(), sSnow.Prefix)
	if err != nil {
		return nil, err
	}
	start := sSnow.Net.Now()
	mSnow := monitor.New(monitor.Config{
		Name:       "snowcap",
		Invariants: caseStudyInvariants(sSnow, aSnow),
		Recorder:   rec,
		Stream:     rec.EventStream(),
	})
	snowRes, err := snowcap.ApplyMonitored(sSnow.Net, sSnow.Prefix, sSnow.Commands,
		[]int{0}, 1700*time.Millisecond, mSnow)
	if err != nil {
		return nil, err
	}
	out.SnowcapDuration = snowRes.Duration()
	out.SnowcapTimeline = snowRes.Timeline
	out.SnowcapViolationTime = snowRes.ViolationTime
	out.Snowcap = traffic.Measure(sSnow.Net.Trace(sSnow.Prefix), sSnow.Graph.Internal(),
		waypointRules(aSnow, sSnow.E1), traffic.Options{
			RatePerNode: 1500, Step: 0.01,
			From: start.Seconds(), To: sSnow.Net.Now().Seconds() + 0.1,
		})

	// Chameleon run (fresh scenario, same seed → same network).
	sCham, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(sCham, SpecEq4, scheduler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	mCham := monitor.New(monitor.Config{
		Name:       "chameleon",
		Invariants: caseStudyInvariants(sCham, pl.Analysis),
		Recorder:   rec,
		Stream:     rec.EventStream(),
	})
	ro := runtime.DefaultOptions(seed)
	ro.PhaseObserver = mCham.SetPhase
	ro.Convergence = mCham.Gate(0)
	ex := runtime.NewExecutor(sCham.Net, ro)
	unbind := mCham.Bind(sCham.Net)
	res, err := ex.Execute(pl.Plan)
	unbind()
	if err != nil {
		return nil, err
	}
	out.ChameleonTimeline = mCham.Finish(sCham.Net.Now())
	out.ChameleonViolationTime = out.ChameleonTimeline.TotalViolation()
	out.ChameleonDuration = res.Duration()
	out.Phases = res.Phases
	out.R = pl.Schedule.R
	out.TempSessions = len(pl.Plan.TempSessions)
	out.PlanText = pl.Plan.String()
	out.Chameleon = traffic.Measure(sCham.Net.Trace(sCham.Prefix), sCham.Graph.Internal(),
		waypointRules(pl.Analysis, sCham.E1), traffic.Options{
			RatePerNode: 1500, Step: 0.05,
			From: res.Start.Seconds(), To: res.End.Seconds() + 0.1,
		})
	return out, nil
}

// --- Fig. 7, Fig. 9, Table 2: scheduling sweep ------------------------------

// SweepOutcome is one corpus scenario's scheduling result.
type SweepOutcome struct {
	Name           string
	Nodes          int
	Switching      int
	Cr             int
	R              int
	TempSessions   int
	SchedulingTime time.Duration
	// EstimatedReconfTime is T̃ = T̃rm (2 + R) with T̃rm = 12 s (§7.2).
	EstimatedReconfTime time.Duration
	Err                 error
}

// SweepScheduling runs the §7 reconfiguration scenario on each named
// topology with the Eq. 4 specification and records scheduling time,
// reconfiguration complexity Cr, and the resulting round count. The
// temp-session optimization pass is capped tightly so the measured time is
// dominated by the feasibility search, which is what correlates with Cr.
//
// Scenarios run workers-wide (≤ 0 means one per CPU); every scenario run
// owns its network and RNG streams, and results come back in names order
// regardless of completion order, so everything except the wall-clock
// SchedulingTime measurement is byte-identical at any worker count. The
// progress callback is serialized but observes completion order.
func SweepScheduling(names []string, seed uint64, opts scheduler.Options, workers int, progress func(SweepOutcome)) []SweepOutcome {
	out, err := SweepSchedulingCtx(context.Background(), names, seed, opts, workers, progress)
	if err != nil {
		// With a background context the only possible error is a worker
		// panic, which the historical signature also surfaced as a panic.
		panic(err)
	}
	return out
}

// SweepSchedulingCtx is SweepScheduling with a context: cancellation stops
// the sweep (the error is ctx's), and a recorder carried by ctx observes
// every scenario run (see sweep for the merge discipline).
func SweepSchedulingCtx(ctx context.Context, names []string, seed uint64, opts scheduler.Options, workers int, progress func(SweepOutcome)) ([]SweepOutcome, error) {
	if opts.SolverNodeBudget == 0 {
		// Deterministic solver budget: every column except the wall-clock
		// scheduling_time_s is then byte-identical at any worker count
		// and under any machine load.
		opts.SolverNodeBudget = scheduler.DeterministicNodeBudget
	}
	return sweep(ctx, workers, names, progress, func(ctx context.Context, name string) SweepOutcome {
		return schedulingOutcome(ctx, name, seed, opts)
	})
}

// sweep fans runOne over names on the worker pool, serializing progress.
// A panicking scenario run propagates as a *pool.PanicError, as does a
// cancelled context as its error. When ctx carries an obs.Recorder, each
// run gets its own forked recorder, and the forks are folded back into the
// carried recorder in names order — never completion order — after the
// pool drains, so traces and metric dumps are byte-identical at any worker
// count.
func sweep[T any](ctx context.Context, workers int, names []string, progress func(T), runOne func(ctx context.Context, name string) T) ([]T, error) {
	parent := obs.RecorderFrom(ctx)
	var recs []*obs.Recorder
	if parent != nil {
		recs = make([]*obs.Recorder, len(names))
	}
	var mu sync.Mutex
	out, err := pool.Map(ctx, workers, len(names), func(wctx context.Context, i int) (T, error) {
		if recs != nil {
			// Fork, not New: per-run recorders inherit the parent's cost
			// attribution so sweeps stay profile-able end to end.
			recs[i] = parent.Fork()
			wctx = obs.WithRecorder(wctx, recs[i])
		}
		o := runOne(wctx, names[i])
		if progress != nil {
			mu.Lock()
			progress(o)
			mu.Unlock()
		}
		return o, nil
	})
	for i, rec := range recs {
		if rec != nil {
			parent.Adopt("run "+names[i], rec)
		}
	}
	return out, err
}

// schedulingOutcome runs one scenario of the §7 scheduling sweep. The
// SchedulingTime field is the only wall-clock measurement: under parallel
// contention it measures the worker's elapsed time (still the quantity the
// Fig. 7 correlation uses — relative, not absolute, magnitudes), while every
// other field derives from the simulation and is reproducible bit-for-bit.
func schedulingOutcome(ctx context.Context, name string, seed uint64, opts scheduler.Options) SweepOutcome {
	o := SweepOutcome{Name: name}
	s, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		o.Err = err
		return o
	}
	o.Nodes = len(s.Graph.Internal())
	a, err := analyzer.AnalyzeCtx(ctx, s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		o.Err = err
		return o
	}
	o.Switching = len(a.Switching)
	o.Cr = a.ReconfigurationComplexity()
	sp := Eq4Spec(a, s.E1)
	t0 := time.Now()
	sched, err := scheduler.ScheduleCtx(ctx, a, sp, opts)
	o.SchedulingTime = time.Since(t0)
	if err != nil {
		o.Err = err
		return o
	}
	o.R = sched.R
	o.TempSessions = sched.TempOldSessions + sched.TempNewSessions
	o.EstimatedReconfTime = runtime.EstimateReconfigurationTime(sched.R)
	return o
}

// --- Figs. 8 and 13: specification complexity sweep ------------------------

// SpecSweepPoint aggregates scheduling times for one |Nφ| value.
type SpecSweepPoint struct {
	Frac             float64
	Nphi             int
	Median, P10, P90 time.Duration
	Times            []time.Duration
}

// SpecComplexitySweep measures scheduling time on one topology while the
// number of waypoint-constrained nodes |Nφ| grows, with temporal (φt) or
// non-temporal (φn) constraints, and with or without explicit loop
// constraints (Fig. 13's ablation). Each point runs `runs` times with a
// different random Nφ subset, each drawn from its own derived stream.
//
// This sweep stays deliberately sequential: its *only* output is scheduling
// time under a tight ObjectiveTimeLimit, and running points concurrently
// would let CPU contention distort the medians Fig. 8 compares.
func SpecComplexitySweep(name string, temporal, explicitLoops bool, fracs []float64, runs int, seed uint64) ([]SpecSweepPoint, error) {
	s, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		return nil, err
	}
	n := len(s.Graph.Internal())
	opts := scheduler.DefaultOptions()
	opts.ExplicitLoopConstraints = explicitLoops
	opts.ObjectiveTimeLimit = 500 * time.Millisecond
	var points []SpecSweepPoint
	for _, frac := range fracs {
		k := int(frac * float64(n))
		pt := SpecSweepPoint{Frac: frac, Nphi: k}
		var xs []float64
		for run := 0; run < runs; run++ {
			// Each (|Nφ|, run) point owns a derived sampling stream.
			nodes := SampleNodes(s.Graph, k, sim.DeriveSeed(seed, uint64(k)<<20|uint64(run)))
			var sp *spec.Spec
			if temporal {
				sp = PhiT(a, s.E1, nodes)
			} else {
				sp = PhiN(a, s.E1, nodes)
			}
			t0 := time.Now()
			if _, err := scheduler.Schedule(a, sp, opts); err != nil {
				return nil, fmt.Errorf("eval: spec sweep %s |Nφ|=%d run %d: %w", name, k, run, err)
			}
			d := time.Since(t0)
			pt.Times = append(pt.Times, d)
			xs = append(xs, d.Seconds())
		}
		d := NewDist(xs)
		pt.Median = time.Duration(d.Percentile(50) * float64(time.Second))
		pt.P10 = time.Duration(d.Percentile(10) * float64(time.Second))
		pt.P90 = time.Duration(d.Percentile(90) * float64(time.Second))
		points = append(points, pt)
	}
	return points, nil
}

// --- Fig. 10: routing table overhead ----------------------------------------

// OverheadOutcome holds one scenario's §7.3 measurements, normalized by the
// baseline maximum table size.
type OverheadOutcome struct {
	Name      string
	Baseline  int
	Chameleon float64
	SITN      float64
	Err       error
}

// SweepTableOverhead measures, per scenario: the baseline maximum table
// size (direct reconfiguration), Chameleon's maximum during plan execution,
// and SITN's dual-plane size — each as additional entries relative to the
// baseline. Scenarios run workers-wide (≤ 0 means one per CPU); every field
// derives from the simulation, so the results — and the Fig. 10 CSV — are
// byte-identical at any worker count.
func SweepTableOverhead(names []string, seed uint64, opts scheduler.Options, workers int, progress func(OverheadOutcome)) []OverheadOutcome {
	out, err := SweepTableOverheadCtx(context.Background(), names, seed, opts, workers, progress)
	if err != nil {
		panic(err) // background context: only a worker panic lands here
	}
	return out
}

// SweepTableOverheadCtx is SweepTableOverhead with a context; see
// SweepSchedulingCtx for the cancellation and recorder semantics.
func SweepTableOverheadCtx(ctx context.Context, names []string, seed uint64, opts scheduler.Options, workers int, progress func(OverheadOutcome)) ([]OverheadOutcome, error) {
	if opts.SolverNodeBudget == 0 {
		opts.SolverNodeBudget = scheduler.DeterministicNodeBudget
	}
	return sweep(ctx, workers, names, progress, func(ctx context.Context, name string) OverheadOutcome {
		return overheadOutcome(ctx, name, seed, opts)
	})
}

// overheadOutcome runs one scenario of the §7.3 overhead sweep.
func overheadOutcome(ctx context.Context, name string, seed uint64, opts scheduler.Options) OverheadOutcome {
	o := OverheadOutcome{Name: name}
	// Baseline: direct application.
	sBase, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		o.Err = err
		return o
	}
	sBase.Net.ResetMaxTableEntries()
	if _, err := snowcap.Apply(sBase.Net, sBase.Commands, []int{0}, time.Second); err != nil {
		o.Err = err
		return o
	}
	o.Baseline = sBase.Net.MaxTableEntries()

	// Chameleon.
	sCham, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		o.Err = err
		return o
	}
	pl, err := BuildPipelineCtx(ctx, sCham, SpecEq4, opts)
	if err != nil {
		o.Err = err
		return o
	}
	ex := runtime.NewExecutor(sCham.Net, runtime.DefaultOptions(seed))
	res, err := ex.ExecuteCtx(ctx, pl.Plan)
	if err != nil {
		o.Err = err
		return o
	}
	o.Chameleon = float64(res.MaxTableEntries-o.Baseline) / float64(o.Baseline)
	if o.Chameleon < 0 {
		o.Chameleon = 0
	}

	// SITN.
	sSitn, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		o.Err = err
		return o
	}
	dual, err := sitn.NewDualPlane(sSitn.Net, sSitn.FinalNetwork(), sSitn.Prefix)
	if err != nil {
		o.Err = err
		return o
	}
	o.SITN = float64(dual.TableEntries()-o.Baseline) / float64(o.Baseline)
	return o
}

// --- Fig. 11: external events ------------------------------------------------

// ExternalEventResult reports a Fig. 11 run.
type ExternalEventResult struct {
	Measurement *traffic.Measurement
	Result      *runtime.Result
	// ConvergedToE4 reports whether the network adopted the new e4 route
	// after cleanup (Fig. 11b).
	ConvergedToE4 bool
}

// RunLinkFailureExperiment reproduces Fig. 11a: a link fails mid-update;
// OSPF reconverges (sub-second loss) but the reconfiguration completes
// safely.
func RunLinkFailureExperiment(name string, seed uint64, failAfter time.Duration) (*ExternalEventResult, error) {
	s, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(s, SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// Pick a link not adjacent to an egress or external node.
	var la, lb topology.NodeID = topology.None, topology.None
	for _, l := range s.Graph.Links() {
		if s.Graph.Node(l.A).External || s.Graph.Node(l.B).External {
			continue
		}
		if l.A == s.E1 || l.B == s.E1 || l.A == s.E2 || l.B == s.E2 || l.A == s.E3 || l.B == s.E3 {
			continue
		}
		la, lb = l.A, l.B
		break
	}
	opts := runtime.DefaultOptions(seed)
	if la != topology.None {
		fla, flb := la, lb
		opts.ExternalEvents = []runtime.ScheduledEvent{{
			After: failAfter, Name: "link failure",
			Apply: func(n *sim.Network) {
				n.FailLink(fla, flb)
				n.Run()
			},
		}}
	}
	ex := runtime.NewExecutor(s.Net, opts)
	res, err := ex.Execute(pl.Plan)
	if err != nil {
		return nil, err
	}
	m := traffic.Measure(s.Net.Trace(s.Prefix), s.Graph.Internal(), nil, traffic.Options{
		RatePerNode: 1500, Step: 0.05,
		From: res.Start.Seconds(), To: res.End.Seconds() + 0.1,
	})
	return &ExternalEventResult{Measurement: m, Result: res}, nil
}

// RunNewRouteExperiment reproduces Fig. 11b: a strictly better route is
// announced at a fourth egress mid-update; the pinned transient state makes
// routers ignore it until cleanup restores the original preferences, after
// which the whole network adopts it. announceAfter should fall inside the
// update phase: §8's guarantee covers events against the *installed*
// transient state — an announcement racing the setup phase meets ordinary
// unprotected BGP convergence, as it would without Chameleon.
func RunNewRouteExperiment(name string, seed uint64, announceAfter time.Duration) (*ExternalEventResult, error) {
	s, err := scenario.CaseStudy(name, scenario.Config{Seed: seed, SpareEgress: true})
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(s, SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	opts := runtime.DefaultOptions(seed)
	opts.ExternalEvents = []runtime.ScheduledEvent{{
		After: announceAfter, Name: "better route at e4",
		Apply: func(n *sim.Network) {
			n.InjectExternalRoute(s.Ext4, sim.Announcement{Prefix: s.Prefix, ASPathLen: 0})
		},
	}}
	ex := runtime.NewExecutor(s.Net, opts)
	res, err := ex.Execute(pl.Plan)
	if err != nil {
		return nil, err
	}
	// §8: the guarantee covers the reconfiguration itself; cleanup
	// deliberately releases the network to ordinary BGP convergence
	// towards the (better) e4 route, so measure up to cleanup.
	until := res.End
	for _, ph := range res.Phases {
		if ph.Name == "cleanup" {
			until = ph.Start
		}
	}
	m := traffic.Measure(s.Net.Trace(s.Prefix), s.Graph.Internal(), nil, traffic.Options{
		RatePerNode: 1500, Step: 0.05,
		From: res.Start.Seconds(), To: until.Seconds(),
	})
	out := &ExternalEventResult{Measurement: m, Result: res, ConvergedToE4: true}
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress != s.E4 {
			out.ConvergedToE4 = false
		}
	}
	return out, nil
}
