package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"chameleon/internal/traffic"
)

// WriteCaseStudyCSV writes a Fig. 1/6/12-style time series: one row per
// sample with total/dropped/violating rates and per-egress throughput.
func WriteCaseStudyCSV(w io.Writer, m *traffic.Measurement) error {
	cw := csv.NewWriter(w)
	egs := m.Egresses()
	header := []string{"time_s", "delivered_pps", "dropped_pps", "waypoint_violations_pps"}
	for _, e := range egs {
		header = append(header, fmt.Sprintf("egress_n%d_pps", int(e)))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range m.Samples {
		row := []string{
			formatF(s.Time), formatF(s.Delivered), formatF(s.Dropped),
			formatF(s.WaypointViolations),
		}
		for _, e := range egs {
			row = append(row, formatF(s.PerEgress[e]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV writes the Fig. 7 / Fig. 9 / Table 2 sweep results.
func WriteSweepCSV(w io.Writer, outs []SweepOutcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "nodes", "switching", "cr", "rounds", "temp_sessions",
		"scheduling_time_s", "estimated_reconf_time_s", "error",
	}); err != nil {
		return err
	}
	for _, o := range outs {
		errStr := ""
		if o.Err != nil {
			errStr = o.Err.Error()
		}
		if err := cw.Write([]string{
			o.Name, strconv.Itoa(o.Nodes), strconv.Itoa(o.Switching),
			strconv.Itoa(o.Cr), strconv.Itoa(o.R), strconv.Itoa(o.TempSessions),
			formatF(o.SchedulingTime.Seconds()),
			formatF(o.EstimatedReconfTime.Seconds()), errStr,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSpecSweepCSV writes Fig. 8 / Fig. 13 points.
func WriteSpecSweepCSV(w io.Writer, label string, pts []SpecSweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"spec", "nphi", "median_s", "p10_s", "p90_s", "runs"}); err != nil {
		return err
	}
	for _, pt := range pts {
		if err := cw.Write([]string{
			label, strconv.Itoa(pt.Nphi),
			formatF(pt.Median.Seconds()), formatF(pt.P10.Seconds()),
			formatF(pt.P90.Seconds()), strconv.Itoa(len(pt.Times)),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOverheadCSV writes Fig. 10 results.
func WriteOverheadCSV(w io.Writer, outs []OverheadOutcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"topology", "baseline_entries", "chameleon_overhead", "sitn_overhead", "error"}); err != nil {
		return err
	}
	for _, o := range outs {
		errStr := ""
		if o.Err != nil {
			errStr = o.Err.Error()
		}
		if err := cw.Write([]string{
			o.Name, strconv.Itoa(o.Baseline),
			formatF(o.Chameleon), formatF(o.SITN), errStr,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePhaseCSV writes a Fig. 6-style phase timeline.
func WritePhaseCSV(w io.Writer, r *CaseStudyResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "start_s", "end_s"}); err != nil {
		return err
	}
	for _, ph := range r.Phases {
		if err := cw.Write([]string{ph.Name, formatF(ph.Start.Seconds()), formatF(ph.End.Seconds())}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveAllCSV writes the full artifact set for one case-study result into
// dir: snowcap/chameleon series and the phase timeline.
func SaveAllCSV(dir string, r *CaseStudyResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name  string
		write func(io.Writer) error
	}{
		{r.Topology + "_snowcap.csv", func(w io.Writer) error { return WriteCaseStudyCSV(w, r.Snowcap) }},
		{r.Topology + "_chameleon.csv", func(w io.Writer) error { return WriteCaseStudyCSV(w, r.Chameleon) }},
		{r.Topology + "_phases.csv", func(w io.Writer) error { return WritePhaseCSV(w, r) }},
	}
	for _, f := range files {
		out, err := os.Create(filepath.Join(dir, f.name))
		if err != nil {
			return err
		}
		if err := f.write(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
	}
	return nil
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
