package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"chameleon/internal/chaos"
	"chameleon/internal/monitor"
	"chameleon/internal/traffic"
)

// sortedByKey returns a copy of rows ordered by the given key, so every
// CSV writer emits rows in scenario-key order no matter how the caller
// assembled them (matrix order, completion order, …). The sort is stable:
// rows with equal keys keep their relative order.
func sortedByKey[T any](rows []T, less func(a, b T) bool) []T {
	out := append([]T(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// WriteCaseStudyCSV writes a Fig. 1/6/12-style time series: one row per
// sample with total/dropped/violating rates and per-egress throughput.
func WriteCaseStudyCSV(w io.Writer, m *traffic.Measurement) error {
	cw := csv.NewWriter(w)
	egs := m.Egresses()
	header := []string{"time_s", "delivered_pps", "dropped_pps", "waypoint_violations_pps"}
	for _, e := range egs {
		header = append(header, fmt.Sprintf("egress_n%d_pps", int(e)))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range m.Samples {
		row := []string{
			formatF(s.Time), formatF(s.Delivered), formatF(s.Dropped),
			formatF(s.WaypointViolations),
		}
		for _, e := range egs {
			row = append(row, formatF(s.PerEgress[e]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV writes the Fig. 7 / Fig. 9 / Table 2 sweep results, rows
// sorted by topology name.
func WriteSweepCSV(w io.Writer, outs []SweepOutcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "nodes", "switching", "cr", "rounds", "temp_sessions",
		"scheduling_time_s", "estimated_reconf_time_s", "error",
	}); err != nil {
		return err
	}
	outs = sortedByKey(outs, func(a, b SweepOutcome) bool { return a.Name < b.Name })
	for _, o := range outs {
		errStr := ""
		if o.Err != nil {
			errStr = o.Err.Error()
		}
		if err := cw.Write([]string{
			o.Name, strconv.Itoa(o.Nodes), strconv.Itoa(o.Switching),
			strconv.Itoa(o.Cr), strconv.Itoa(o.R), strconv.Itoa(o.TempSessions),
			formatF(o.SchedulingTime.Seconds()),
			formatF(o.EstimatedReconfTime.Seconds()), errStr,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSpecSweepCSV writes Fig. 8 / Fig. 13 points.
func WriteSpecSweepCSV(w io.Writer, label string, pts []SpecSweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"spec", "nphi", "median_s", "p10_s", "p90_s", "runs"}); err != nil {
		return err
	}
	for _, pt := range pts {
		if err := cw.Write([]string{
			label, strconv.Itoa(pt.Nphi),
			formatF(pt.Median.Seconds()), formatF(pt.P10.Seconds()),
			formatF(pt.P90.Seconds()), strconv.Itoa(len(pt.Times)),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOverheadCSV writes Fig. 10 results, rows sorted by topology name.
func WriteOverheadCSV(w io.Writer, outs []OverheadOutcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"topology", "baseline_entries", "chameleon_overhead", "sitn_overhead", "error"}); err != nil {
		return err
	}
	outs = sortedByKey(outs, func(a, b OverheadOutcome) bool { return a.Name < b.Name })
	for _, o := range outs {
		errStr := ""
		if o.Err != nil {
			errStr = o.Err.Error()
		}
		if err := cw.Write([]string{
			o.Name, strconv.Itoa(o.Baseline),
			formatF(o.Chameleon), formatF(o.SITN), errStr,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePhaseCSV writes a Fig. 6-style phase timeline.
func WritePhaseCSV(w io.Writer, r *CaseStudyResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "start_s", "end_s"}); err != nil {
		return err
	}
	for _, ph := range r.Phases {
		if err := cw.Write([]string{ph.Name, formatF(ph.Start.Seconds()), formatF(ph.End.Seconds())}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveAllCSV writes the full artifact set for one case-study result into
// dir: snowcap/chameleon series and the phase timeline.
func SaveAllCSV(dir string, r *CaseStudyResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name  string
		write func(io.Writer) error
	}{
		{r.Topology + "_snowcap.csv", func(w io.Writer) error { return WriteCaseStudyCSV(w, r.Snowcap) }},
		{r.Topology + "_chameleon.csv", func(w io.Writer) error { return WriteCaseStudyCSV(w, r.Chameleon) }},
		{r.Topology + "_phases.csv", func(w io.Writer) error { return WritePhaseCSV(w, r) }},
	}
	for _, f := range files {
		out, err := os.Create(filepath.Join(dir, f.name))
		if err != nil {
			return err
		}
		if err := f.write(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimelineCSV writes the monitors' violation timelines: one row per
// violation interval with onset, duration, blast radius, phase and
// root-cause attribution (originating command/event, BGP hop depth, blame
// latency), preceded by one summary row per run. Timelines serialize in
// the order given; violations keep their (deterministic) event order.
func WriteTimelineCSV(w io.Writer, tls ...*monitor.Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"run", "kind", "invariant", "prefix", "start_s", "end_s",
		"duration_s", "tick", "phase", "nodes", "open",
		"cause_kind", "cause", "hop_depth", "blame_s",
	}); err != nil {
		return err
	}
	for _, tl := range tls {
		if tl == nil {
			continue
		}
		if err := cw.Write([]string{
			tl.Name, "summary", "", "", "", "",
			formatF(tl.TotalViolation().Seconds()),
			strconv.Itoa(tl.StatesChecked), "",
			strconv.Itoa(len(tl.Violations)), "",
			"", "", "", "",
		}); err != nil {
			return err
		}
		for _, v := range tl.Violations {
			nodes := make([]string, len(v.Nodes))
			for i, n := range v.Nodes {
				nodes[i] = strconv.Itoa(int(n))
			}
			if err := cw.Write([]string{
				tl.Name, "violation", v.Invariant, strconv.Itoa(int(v.Prefix)),
				formatF(v.Start.Seconds()), formatF(v.End.Seconds()),
				formatF(v.Duration().Seconds()),
				strconv.FormatUint(v.StartTick, 10), v.Phase,
				strings.Join(nodes, " "), strconv.FormatBool(v.Open),
				v.Cause.Kind, v.Cause.Label,
				strconv.Itoa(v.Cause.Hops), formatF(v.Cause.Latency.Seconds()),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ViolationComparison is one row of the Fig. 9-style violation-duration
// table: for one invariant, the union transient violation time of the
// Snowcap baseline against Chameleon's.
type ViolationComparison struct {
	Invariant string
	Snowcap   time.Duration
	Chameleon time.Duration
}

// CompareViolations derives the per-invariant Fig. 9 comparison from a
// case study's two timelines, in the invariant order both monitors share,
// with a trailing "any" row for the union across invariants.
func CompareViolations(r *CaseStudyResult) []ViolationComparison {
	var names []string
	seen := make(map[string]bool)
	for _, tl := range []*monitor.Timeline{r.SnowcapTimeline, r.ChameleonTimeline} {
		if tl == nil {
			continue
		}
		for _, v := range tl.Violations {
			if !seen[v.Invariant] {
				seen[v.Invariant] = true
				names = append(names, v.Invariant)
			}
		}
	}
	sort.Strings(names)
	var out []ViolationComparison
	for _, name := range names {
		c := ViolationComparison{Invariant: name}
		if r.SnowcapTimeline != nil {
			c.Snowcap = r.SnowcapTimeline.ByInvariant(name)
		}
		if r.ChameleonTimeline != nil {
			c.Chameleon = r.ChameleonTimeline.ByInvariant(name)
		}
		out = append(out, c)
	}
	total := ViolationComparison{Invariant: "any"}
	if r.SnowcapTimeline != nil {
		total.Snowcap = r.SnowcapTimeline.TotalViolation()
	}
	if r.ChameleonTimeline != nil {
		total.Chameleon = r.ChameleonTimeline.TotalViolation()
	}
	return append(out, total)
}

// FormatViolationTable renders the Fig. 9-style transient violation
// comparison as a plain-text table.
func FormatViolationTable(r *CaseStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "invariant", "snowcap", "chameleon")
	b.WriteString(strings.Repeat("-", 42) + "\n")
	for _, c := range CompareViolations(r) {
		fmt.Fprintf(&b, "%-12s %13.3fs %13.3fs\n",
			c.Invariant, c.Snowcap.Seconds(), c.Chameleon.Seconds())
	}
	return b.String()
}

// WriteChaosCSV writes one row per chaos case: the fault matrix cell, its
// outcome, and the full fault/recovery accounting. Rows are sorted by the
// (topology, fault, seed) case key, so the file is stable regardless of the
// order the sweep produced them in.
func WriteChaosCSV(w io.Writer, results []chaos.CaseResult) error {
	results = sortedByKey(results, func(a, b chaos.CaseResult) bool {
		if a.Topology != b.Topology {
			return a.Topology < b.Topology
		}
		if a.Fault != b.Fault {
			return a.Fault < b.Fault
		}
		return a.Seed < b.Seed
	})
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "fault", "seed", "outcome", "sim_duration_s", "rounds",
		"commands", "cmd_faults", "msg_faults", "flaps",
		"retries", "repushes", "escalations", "acks_lost", "monitor_alarms",
		"committed", "violations", "transient_violation_s", "fingerprint", "error",
	}); err != nil {
		return err
	}
	for _, r := range results {
		if err := cw.Write([]string{
			r.Topology, r.Fault, strconv.FormatUint(r.Seed, 10),
			r.Outcome.String(), formatF(r.SimDuration.Seconds()),
			strconv.Itoa(r.Rounds), strconv.Itoa(r.CommandsApplied),
			strconv.Itoa(r.CommandFaults), strconv.Itoa(r.MessageFaults),
			strconv.Itoa(r.Flaps),
			strconv.Itoa(r.Recovery.Retries), strconv.Itoa(r.Recovery.Repushes),
			strconv.Itoa(r.Recovery.Escalations), strconv.Itoa(r.Recovery.AcksLost),
			strconv.Itoa(r.Recovery.MonitorAlarms),
			strconv.FormatBool(r.Committed),
			strings.Join(r.Violations, "; "),
			formatF(r.TransientViolationTime.Seconds()),
			strconv.FormatUint(r.Fingerprint, 16), r.Err,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatChaosTable renders the per-fault-kind sweep summary (faults
// injected, retries, recoveries, escalations) as a plain-text table.
func FormatChaosTable(sums []chaos.Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %5s %6s %6s %6s %6s %5s | %7s %7s %7s %8s %8s %6s %6s\n",
		"fault", "runs", "clean", "recov", "degr", "abort", "VIOL",
		"cmdflt", "msgflt", "flaps", "retries", "repush", "escal", "acks-")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	for _, s := range sums {
		fmt.Fprintf(&b, "%-10s %5d %6d %6d %6d %6d %5d | %7d %7d %7d %8d %8d %6d %6d\n",
			s.Fault, s.Runs, s.Clean, s.Recovered, s.Degraded, s.Aborted, s.Violations,
			s.CommandFaults, s.MessageFaults, s.Flaps,
			s.Retries, s.Repushes, s.Escalations, s.AcksLost)
	}
	return b.String()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
