package eval

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chameleon/internal/chaos"
	"chameleon/internal/runtime"
	"chameleon/internal/scheduler"
	"chameleon/internal/topology"
)

func TestStatsPercentiles(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v, want 3", m)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("P100 = %v, want 5", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Errorf("P25 = %v, want 2", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if m := Mean([]float64{2, 4}); m != 3 {
		t.Errorf("Mean = %v", m)
	}
}

func TestCDFAndFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	vals, fracs := CDF(xs)
	if len(vals) != 3 || vals[1] != 2 || fracs[1] != 0.75 {
		t.Errorf("CDF = %v %v", vals, fracs)
	}
	if f := FractionBelow(xs, 2); f != 0.75 {
		t.Errorf("FractionBelow(2) = %v", f)
	}
	if f := FractionBelow(xs, 0.5); f != 0 {
		t.Errorf("FractionBelow(0.5) = %v", f)
	}
}

func TestPearsonLogLog(t *testing.T) {
	// y = x^2 in log-log space is perfectly linear: correlation 1.
	var xs, ys []float64
	for x := 1.0; x <= 64; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, x*x)
	}
	if r := PearsonLogLog(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Errorf("correlation = %v, want 1", r)
	}
	if r := PearsonLogLog(nil, nil); r != 0 {
		t.Errorf("empty correlation = %v", r)
	}
}

func TestSampleNodesDeterministic(t *testing.T) {
	g := topology.MustZoo("Aarnet")
	a := SampleNodes(g, 5, 42)
	b := SampleNodes(g, 5, 42)
	if len(a) != 5 {
		t.Fatalf("got %d nodes", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleNodes not deterministic")
		}
	}
	seen := map[topology.NodeID]bool{}
	for _, n := range a {
		if seen[n] {
			t.Fatal("duplicate node sampled")
		}
		seen[n] = true
	}
	if got := SampleNodes(g, 10_000, 1); len(got) != len(g.Internal()) {
		t.Errorf("oversampling returned %d nodes", len(got))
	}
}

func TestRunCaseStudyAbilene(t *testing.T) {
	res, err := RunCaseStudy("Abilene", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1's headline claims: Snowcap drops packets and/or violates the
	// waypoint spec transiently; Chameleon is perfectly clean and slower.
	if res.Snowcap.Clean() {
		t.Error("Snowcap run was clean — transient violations expected")
	}
	if !res.Chameleon.Clean() {
		t.Errorf("Chameleon run violated: dropped=%.0f viol=%.0f",
			res.Chameleon.TotalDropped, res.Chameleon.TotalViolations)
	}
	if res.ChameleonDuration <= res.SnowcapDuration {
		t.Errorf("Chameleon (%v) should be slower than Snowcap (%v)",
			res.ChameleonDuration, res.SnowcapDuration)
	}
	// Fig. 6's structure: setup + R rounds + cleanup phases.
	if len(res.Phases) != res.R+2 {
		t.Errorf("phases = %d, want R+2 = %d", len(res.Phases), res.R+2)
	}
}

func TestSweepSchedulingSmall(t *testing.T) {
	names := []string{"Abilene", "Basnet", "Epoch"}
	outs := SweepScheduling(names, 7, scheduler.DefaultOptions(), 1, nil)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Name, o.Err)
			continue
		}
		if o.Cr <= 0 || o.R <= 0 || o.SchedulingTime <= 0 {
			t.Errorf("%s: incomplete outcome %+v", o.Name, o)
		}
		if o.EstimatedReconfTime != time.Duration(2+o.R)*12*time.Second {
			t.Errorf("%s: T̃ mismatch", o.Name)
		}
	}
}

func TestSpecComplexitySweepSmall(t *testing.T) {
	pts, err := SpecComplexitySweep("Abilene", true, true, []float64{0, 1}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Nphi != 0 || pts[1].Nphi != 11 {
		t.Errorf("Nphi = %d, %d", pts[0].Nphi, pts[1].Nphi)
	}
	for _, pt := range pts {
		if len(pt.Times) != 2 || pt.Median <= 0 {
			t.Errorf("point %+v incomplete", pt)
		}
	}
}

func TestSweepTableOverheadSmall(t *testing.T) {
	outs := SweepTableOverhead([]string{"Abilene", "Sprint"}, 7, scheduler.DefaultOptions(), 1, nil)
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Name, o.Err)
			continue
		}
		// Chameleon's overhead must be far below SITN's near-doubling.
		if o.SITN < 0.5 {
			t.Errorf("%s: SITN overhead %.2f, want ≈ 1", o.Name, o.SITN)
		}
		if o.Chameleon >= o.SITN {
			t.Errorf("%s: Chameleon overhead %.2f not below SITN %.2f", o.Name, o.Chameleon, o.SITN)
		}
		if o.Chameleon < 0 || o.Chameleon > 0.6 {
			t.Errorf("%s: Chameleon overhead %.2f outside plausible range", o.Name, o.Chameleon)
		}
	}
}

func TestRunLinkFailureExperiment(t *testing.T) {
	res, err := RunLinkFailureExperiment("Abilene", 7, 7*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The reconfiguration completes; transient loss (if any) stays small
	// (the paper reports ≈0.5 s of OSPF reconvergence loss).
	if res.Measurement.ViolationSeconds > 2.0 {
		t.Errorf("violation window %.2f s, want < 2 s", res.Measurement.ViolationSeconds)
	}
}

func TestRunNewRouteExperiment(t *testing.T) {
	res, err := RunNewRouteExperiment("Abilene", 7, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConvergedToE4 {
		t.Error("network did not adopt the e4 route after cleanup")
	}
}

func TestAsciiCDF(t *testing.T) {
	out := AsciiCDF("test", "s", []float64{1, 2, 3}, []float64{2})
	if out == "" {
		t.Fatal("empty output")
	}
	if AsciiCDF("empty", "s", nil, nil) == "" {
		t.Fatal("empty-data output missing")
	}
}

func TestCSVWriters(t *testing.T) {
	res, err := RunCaseStudy("Abilene", 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCaseStudyCSV(&buf, res.Chameleon); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "time_s,") {
		t.Errorf("case study CSV malformed: %q", lines[0])
	}

	buf.Reset()
	outs := SweepScheduling([]string{"Basnet"}, 7, scheduler.DefaultOptions(), 1, nil)
	if err := WriteSweepCSV(&buf, outs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Basnet") {
		t.Error("sweep CSV missing topology row")
	}

	buf.Reset()
	pts, err := SpecComplexitySweep("Basnet", false, true, []float64{0}, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSpecSweepCSV(&buf, "phi_n", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "phi_n") {
		t.Error("spec sweep CSV missing label")
	}

	buf.Reset()
	ov := SweepTableOverhead([]string{"Basnet"}, 7, scheduler.DefaultOptions(), 1, nil)
	if err := WriteOverheadCSV(&buf, ov); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Basnet") {
		t.Error("overhead CSV missing row")
	}

	dir := t.TempDir()
	if err := SaveAllCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Abilene_snowcap.csv", "Abilene_chameleon.csv", "Abilene_phases.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
}

func TestChaosReport(t *testing.T) {
	results := []chaos.CaseResult{
		{
			Topology: "Abilene", Fault: "drop", Seed: 1,
			Outcome: chaos.OutcomeRecovered, SimDuration: 90 * time.Second,
			Rounds: 3, CommandsApplied: 12, CommandFaults: 5,
			Recovery:    runtime.RecoveryStats{Retries: 5},
			Fingerprint: 0xdeadbeef,
		},
		{
			Topology: "Abilene", Fault: "flap", Seed: 1,
			Outcome: chaos.OutcomeDegraded, Flaps: 2,
			Recovery:   runtime.RecoveryStats{MonitorAlarms: 1},
			Violations: nil,
		},
	}
	var buf strings.Builder
	if err := WriteChaosCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "topology,fault,seed,outcome") {
		t.Errorf("chaos CSV malformed: %q", lines)
	}
	if !strings.Contains(lines[1], "recovered") || !strings.Contains(lines[1], "deadbeef") {
		t.Errorf("chaos CSV row missing fields: %q", lines[1])
	}

	sums := []chaos.Summary{
		{Fault: "none", Runs: 3, Clean: 3},
		{Fault: "drop", Runs: 3, Recovered: 3, CommandFaults: 46, Retries: 46},
	}
	table := FormatChaosTable(sums)
	for _, want := range []string{"fault", "drop", "46"} {
		if !strings.Contains(table, want) {
			t.Errorf("chaos table missing %q:\n%s", want, table)
		}
	}
}
