package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"chameleon/internal/chaos"
	"chameleon/internal/obs"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
)

// Trace dumps must not depend on how many workers a sweep ran with: each
// run forks its own recorder and the parent adopts them in input order, so
// the merged span tree, tick clock, and counters are a pure function of
// the work — not of goroutine interleaving. These tests pin that contract
// byte-for-byte, the same way parallel_test.go pins the CSVs.

func dumpRecorder(t *testing.T, rec *obs.Recorder) string {
	t.Helper()
	if err := rec.Validate(); err != nil {
		t.Fatalf("trace ill-formed: %v", err)
	}
	var b bytes.Buffer
	// ZeroCosts normalizes the wall-clock/allocation cost fields (which
	// legitimately vary run to run) while keeping their presence and every
	// deterministic field in the comparison. Cost-disabled recorders dump
	// identically with or without the option.
	if err := rec.WriteJSONLWith(&b, obs.DumpOptions{ZeroCosts: true}); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestSweepSchedulingTraceWorkerCountInvariance(t *testing.T) {
	names := []string{"Abilene", "Basnet", "Epoch"}
	dumpAt := func(workers int) string {
		rec := obs.New()
		ctx := obs.WithRecorder(context.Background(), rec)
		outs, err := SweepSchedulingCtx(ctx, names, 7, scheduler.DefaultOptions(), workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				t.Fatalf("workers=%d: run %s: %v", workers, o.Name, o.Err)
			}
		}
		return dumpRecorder(t, rec)
	}
	want := dumpAt(1)
	for _, w := range workerCounts {
		if got := dumpAt(w); got != want {
			t.Errorf("workers=%d scheduling sweep trace diverged from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// Same contract with cost attribution enabled: per-run recorders are forks
// that inherit the cost configuration, the adopted cost fields are present
// in every dump, and — once ZeroCosts strips the measured values — the
// dumps remain byte-identical at any worker count.
func TestSweepSchedulingCostTraceWorkerCountInvariance(t *testing.T) {
	names := []string{"Abilene", "Basnet", "Epoch"}
	dumpAt := func(workers int) string {
		rec := obs.New()
		rec.EnableCostAttribution()
		ctx := obs.WithRecorder(context.Background(), rec)
		outs, err := SweepSchedulingCtx(ctx, names, 7, scheduler.DefaultOptions(), workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				t.Fatalf("workers=%d: run %s: %v", workers, o.Name, o.Err)
			}
		}
		return dumpRecorder(t, rec)
	}
	want := dumpAt(1)
	if !strings.Contains(want, `"wall_ns":0`) {
		t.Fatalf("cost-enabled sweep dump lacks (zeroed) cost fields:\n%s", want)
	}
	for _, w := range workerCounts {
		if got := dumpAt(w); got != want {
			t.Errorf("workers=%d cost-enabled sweep trace diverged from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}

func TestChaosSweepTraceWorkerCountInvariance(t *testing.T) {
	cfg := chaos.SweepConfig{
		Topologies: []string{"Abilene"},
		Faults:     []sim.FaultKind{sim.FaultNone, sim.FaultDrop, sim.FaultFlap},
		Seeds:      []uint64{1},
	}
	dumpAt := func(workers int) string {
		cfg.Workers = workers
		rec := obs.New()
		ctx := obs.WithRecorder(context.Background(), rec)
		if _, _, err := chaos.SweepCtx(ctx, cfg, nil); err != nil {
			t.Fatal(err)
		}
		return dumpRecorder(t, rec)
	}
	want := dumpAt(1)
	for _, w := range workerCounts {
		if got := dumpAt(w); got != want {
			t.Errorf("workers=%d chaos sweep trace diverged from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}
