package eval

import (
	"bytes"
	"strings"
	"testing"
)

// TestCaseStudyMonitorTimelines is the paper's headline claim, measured by
// the online monitor instead of the offline traffic harness: applying the
// Abilene reconfiguration directly (Snowcap) violates invariants during the
// transient, Chameleon never does.
func TestCaseStudyMonitorTimelines(t *testing.T) {
	r, err := RunCaseStudy("Abilene", 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.SnowcapTimeline == nil || r.ChameleonTimeline == nil {
		t.Fatal("case study must produce both timelines")
	}
	if r.SnowcapViolationTime <= 0 {
		t.Errorf("Snowcap transient violation time = %v, want > 0", r.SnowcapViolationTime)
	}
	if len(r.SnowcapTimeline.Violations) == 0 {
		t.Error("Snowcap timeline records no violations")
	}
	if r.SnowcapTimeline.ByInvariant("reach") <= 0 {
		t.Error("Snowcap must transiently violate reachability (the Fig. 1 black hole)")
	}
	if r.ChameleonViolationTime != 0 || len(r.ChameleonTimeline.Violations) != 0 {
		t.Errorf("Chameleon transient violations = %v over %d intervals, want none",
			r.ChameleonViolationTime, len(r.ChameleonTimeline.Violations))
	}
	if r.ChameleonTimeline.StatesChecked == 0 {
		t.Error("Chameleon timeline checked no states — the monitor was not bound")
	}
	// The monitor and the traffic harness must agree on who is clean.
	if r.Chameleon.Clean() != (r.ChameleonViolationTime == 0) {
		t.Error("monitor and traffic measurement disagree on Chameleon")
	}

	table := FormatViolationTable(r)
	if !strings.Contains(table, "reach") || !strings.Contains(table, "any") {
		t.Errorf("violation table missing rows:\n%s", table)
	}
}

// TestCaseStudyTimelineByteIdentical locks in the determinism contract:
// re-running the same seed reproduces the JSONL and CSV timeline artifacts
// byte for byte.
func TestCaseStudyTimelineByteIdentical(t *testing.T) {
	render := func() (string, string) {
		r, err := RunCaseStudy("Abilene", 7)
		if err != nil {
			t.Fatal(err)
		}
		var jsonl, csv bytes.Buffer
		if err := r.SnowcapTimeline.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		if err := r.ChameleonTimeline.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		if err := WriteTimelineCSV(&csv, r.SnowcapTimeline, r.ChameleonTimeline); err != nil {
			t.Fatal(err)
		}
		return jsonl.String(), csv.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Errorf("timeline JSONL differs across identical runs:\n%s\nvs\n%s", j1, j2)
	}
	if c1 != c2 {
		t.Errorf("timeline CSV differs across identical runs:\n%s\nvs\n%s", c1, c2)
	}
	if !strings.HasPrefix(c1, "run,kind,invariant,prefix,start_s,end_s,duration_s,tick,phase,nodes,open,cause_kind,cause,hop_depth,blame_s\n") {
		t.Errorf("unexpected timeline CSV header:\n%s", c1)
	}
}

// TestCaseStudyViolationsCarryRootCause is the provenance acceptance gate:
// every transient violation the monitor records during the Snowcap baseline
// run is attributed to a registered root cause — here the reconfiguration
// commands Snowcap pushes — with a well-formed blame record.
func TestCaseStudyViolationsCarryRootCause(t *testing.T) {
	r, err := RunCaseStudy("Abilene", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SnowcapTimeline.Violations) == 0 {
		t.Fatal("Snowcap timeline records no violations — nothing to attribute")
	}
	commands := 0
	for i, v := range r.SnowcapTimeline.Violations {
		c := v.Cause
		if c.Kind == "" {
			t.Errorf("violation %d (%s @ %v) has an empty cause kind", i, v.Invariant, v.Start)
			continue
		}
		switch c.Kind {
		case "command":
			commands++
			if c.Label == "" {
				t.Errorf("violation %d: command cause without a description", i)
			}
			if c.Latency < 0 {
				t.Errorf("violation %d: negative blame latency %v", i, c.Latency)
			}
		case "event", "init":
		default:
			t.Errorf("violation %d: unknown cause kind %q", i, c.Kind)
		}
	}
	if commands == 0 {
		t.Error("no violation blames a command — Snowcap's churn is command-driven")
	}
}
