package eval

import "testing"

// The stats helpers promise a defined zero — never NaN, never a panic —
// on empty samples, so sweep code can fold partially-errored result sets
// without guarding every aggregation. These tests pin that contract.

func TestStatsEmptySamples(t *testing.T) {
	var none []float64
	if got := Percentile(none, 50); got != 0 {
		t.Errorf("Percentile(nil, 50) = %v, want 0", got)
	}
	for _, p := range []float64{-1, 0, 50, 100, 101} {
		if got := Percentile(none, p); got != 0 {
			t.Errorf("Percentile(nil, %v) = %v, want 0", p, got)
		}
	}
	if got := Median(none); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	if got := Mean(none); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := FractionBelow(none, 10); got != 0 {
		t.Errorf("FractionBelow(nil, 10) = %v, want 0", got)
	}
	if vs, fs := CDF(none); len(vs) != 0 || len(fs) != 0 {
		t.Errorf("CDF(nil) = %v, %v, want empty", vs, fs)
	}
}

func TestDistEmpty(t *testing.T) {
	d := NewDist(nil)
	if d.N() != 0 {
		t.Fatalf("N() = %d, want 0", d.N())
	}
	for _, p := range []float64{0, 10, 50, 90, 100} {
		if got := d.Percentile(p); got != 0 {
			t.Errorf("empty Dist.Percentile(%v) = %v, want 0", p, got)
		}
	}
	if got := d.Median(); got != 0 {
		t.Errorf("empty Dist.Median() = %v, want 0", got)
	}
	if got := d.Mean(); got != 0 {
		t.Errorf("empty Dist.Mean() = %v, want 0", got)
	}
	if got := d.FractionBelow(42); got != 0 {
		t.Errorf("empty Dist.FractionBelow(42) = %v, want 0", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	// Fewer than two positive pairs, or zero variance, correlate to 0
	// rather than NaN.
	if got := PearsonLogLog(nil, nil); got != 0 {
		t.Errorf("PearsonLogLog(nil, nil) = %v, want 0", got)
	}
	if got := PearsonLogLog([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("PearsonLogLog(1 pair) = %v, want 0", got)
	}
	if got := PearsonLogLog([]float64{3, 3, 3}, []float64{1, 2, 4}); got != 0 {
		t.Errorf("PearsonLogLog(zero x-variance) = %v, want 0", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {-5, 1}, {200, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
}
