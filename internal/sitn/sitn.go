// Package sitn implements the Ships-in-the-Night baseline [36]: both the
// initial and the final configuration run simultaneously as independent
// control planes on every router, and each router's forwarding is flipped
// from the old plane to the new plane one by one, in a loop-free order.
// This gives the same per-router atomicity guarantees the paper compares
// against in §7.3 — at the cost of duplicating the routing state, which is
// the measurement this package exposes.
package sitn

import (
	"fmt"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// DualPlane is a router fleet running two complete control planes.
type DualPlane struct {
	// Old and New are the two control planes (independent simulations of
	// the same topology under the two configurations).
	Old, New *sim.Network
	// active[n] reports whether router n forwards according to New.
	active map[topology.NodeID]bool
	prefix bgp.Prefix
}

// NewDualPlane builds the dual-plane system from converged old and new
// networks (which share a topology).
func NewDualPlane(oldNet, newNet *sim.Network, prefix bgp.Prefix) (*DualPlane, error) {
	if oldNet.Graph() != newNet.Graph() {
		return nil, fmt.Errorf("sitn: planes must share a topology")
	}
	if !oldNet.Converged() || !newNet.Converged() {
		return nil, fmt.Errorf("sitn: both planes must be converged")
	}
	return &DualPlane{
		Old: oldNet, New: newNet,
		active: make(map[topology.NodeID]bool),
		prefix: prefix,
	}, nil
}

// ForwardingState combines the two planes according to the per-router
// activation flags.
func (d *DualPlane) ForwardingState() fwd.State {
	oldSt := d.Old.ForwardingState(d.prefix)
	newSt := d.New.ForwardingState(d.prefix)
	st := oldSt.Clone()
	for n, on := range d.active {
		if on {
			st[n] = newSt[n]
		}
	}
	return st
}

// Activate flips one router to the new plane.
func (d *DualPlane) Activate(n topology.NodeID) { d.active[n] = true }

// TableEntries is the §7.3 metric for SITN: the sum of both planes'
// Adj-RIB-In entries — the duplication the paper reports as ≈96% overhead.
func (d *DualPlane) TableEntries() int {
	return d.Old.TableEntries() + d.New.TableEntries()
}

// MigrationOrder computes a per-router activation order that keeps every
// intermediate combined forwarding state loop-free and reachable, using
// the breadth-first traversal of the new forwarding state (the ordering
// strategy of [34, 36]). It returns an error if the final state strands a
// router.
func (d *DualPlane) MigrationOrder() ([]topology.NodeID, error) {
	newSt := d.New.ForwardingState(d.prefix)
	oldSt := d.Old.ForwardingState(d.prefix)
	done := make(map[topology.NodeID]bool)
	var order []topology.NodeID
	pending := make(map[topology.NodeID]bool)
	for _, n := range d.Old.Graph().Internal() {
		if oldSt[n] != newSt[n] {
			pending[n] = true
		} else {
			done[n] = true
		}
	}
	for len(pending) > 0 {
		progressed := false
		for _, n := range d.Old.Graph().Internal() {
			if !pending[n] {
				continue
			}
			nh := newSt[n]
			if nh == fwd.External || (nh >= 0 && done[nh]) {
				order = append(order, n)
				done[n] = true
				delete(pending, n)
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("sitn: no loop-free migration order (final state unreachable for %d routers)", len(pending))
		}
	}
	return order, nil
}

// Migrate runs the full migration, returning the sequence of combined
// forwarding states (initial state first).
func (d *DualPlane) Migrate() ([]fwd.State, error) {
	order, err := d.MigrationOrder()
	if err != nil {
		return nil, err
	}
	trace := []fwd.State{d.ForwardingState()}
	for _, n := range order {
		d.Activate(n)
		trace = append(trace, d.ForwardingState())
	}
	return trace, nil
}

// Overhead compares SITN's duplicated table size against a baseline
// maximum, returning the relative extra entries (≈0.96 in the paper's
// median scenario).
func Overhead(dual *DualPlane, baselineMax int) float64 {
	if baselineMax == 0 {
		return 0
	}
	return float64(dual.TableEntries()-baselineMax) / float64(baselineMax)
}
