package sitn_test

import (
	"testing"

	"chameleon/internal/scenario"
	"chameleon/internal/sitn"
)

func dual(t *testing.T) (*scenario.Scenario, *sitn.DualPlane) {
	t.Helper()
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sitn.NewDualPlane(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func TestDualPlaneTableDuplication(t *testing.T) {
	s, d := dual(t)
	oldOnly := s.Net.TableEntries()
	total := d.TableEntries()
	// SITN runs both control planes: entries ≈ double the baseline (the
	// paper reports 96% overhead in the median).
	if total < oldOnly+oldOnly/2 {
		t.Errorf("dual-plane entries %d vs single %d: duplication missing", total, oldOnly)
	}
}

func TestMigrationKeepsReachability(t *testing.T) {
	s, d := dual(t)
	states, err := d.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 2 {
		t.Fatal("no migration steps")
	}
	for i, st := range states {
		if st.HasLoop() {
			t.Errorf("state %d has a forwarding loop", i)
		}
		for _, n := range s.Graph.Internal() {
			if !st.Reach(n) {
				t.Errorf("state %d: node %d unreachable", i, n)
			}
		}
	}
	// Final combined state equals the new plane's state.
	final := states[len(states)-1]
	if !final.Equal(d.New.ForwardingState(s.Prefix)) {
		t.Error("migration did not reach the new plane's forwarding state")
	}
}

func TestMigrationOrderActivatesOnlyChangingRouters(t *testing.T) {
	s, d := dual(t)
	order, err := d.MigrationOrder()
	if err != nil {
		t.Fatal(err)
	}
	oldSt := s.Net.ForwardingState(s.Prefix)
	newSt := d.New.ForwardingState(s.Prefix)
	for _, n := range order {
		if oldSt[n] == newSt[n] {
			t.Errorf("router %d in order despite unchanged next hop", n)
		}
	}
}

func TestNewDualPlaneValidation(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	other, err := scenario.CaseStudy("Sprint", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sitn.NewDualPlane(s.Net, other.Net, s.Prefix); err == nil {
		t.Fatal("mismatched topologies accepted")
	}
}

func TestOverheadMetric(t *testing.T) {
	s, d := dual(t)
	base := s.Net.TableEntries()
	ov := sitn.Overhead(d, base)
	if ov <= 0.5 {
		t.Errorf("overhead = %v, want close to 1 (≈ doubling)", ov)
	}
	if sitn.Overhead(d, 0) != 0 {
		t.Error("zero baseline must yield zero overhead")
	}
}
