package milp

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func solve(t *testing.T, m *Model, opts Options) *Solution {
	t.Helper()
	s, err := m.Solve(opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if msg := m.Check(s.Values); msg != "" {
		t.Fatalf("solution violates model: %s", msg)
	}
	return s
}

func TestFeasibilitySimple(t *testing.T) {
	m := NewModel()
	x := m.NewInt("x", 0, 10)
	y := m.NewInt("y", 0, 10)
	m.AddLe(Sum(x, y), 7)
	m.AddGe(VarExpr(x), 3)
	m.AddGe(VarExpr(y), 2)
	s := solve(t, m, Options{})
	if s.Values[x] < 3 || s.Values[y] < 2 || s.Values[x]+s.Values[y] > 7 {
		t.Errorf("bad solution: %v", s.Values)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.NewInt("x", 0, 5)
	m.AddGe(VarExpr(x), 3)
	m.AddLe(VarExpr(x), 2)
	if _, err := m.Solve(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimizationKnapsack(t *testing.T) {
	// max 10a+6b+4c s.t. a+b+c<=2 (0/1) -> 16.
	m := NewModel()
	a, b, c := m.NewBool("a"), m.NewBool("b"), m.NewBool("c")
	m.AddLe(Sum(a, b, c), 2)
	m.Maximize(Lin().Add(a, 10).Add(b, 6).Add(c, 4))
	s := solve(t, m, Options{})
	if got := 10*s.Values[a] + 6*s.Values[b] + 4*s.Values[c]; got != 16 {
		t.Errorf("objective value = %d, want 16", got)
	}
	if !s.Stats.Optimal {
		t.Error("search should complete")
	}
}

func TestMinimize(t *testing.T) {
	m := NewModel()
	x := m.NewInt("x", 0, 100)
	y := m.NewInt("y", 0, 100)
	m.AddGe(Lin().Add(x, 2).Add(y, 3), 12)
	m.Minimize(Sum(x, y))
	s := solve(t, m, Options{})
	if got := Eval(Sum(x, y), s.Values); got != 4 {
		t.Errorf("min x+y = %d, want 4 (x=0,y=4)", got)
	}
}

func TestImplications(t *testing.T) {
	m := NewModel()
	b := m.NewBool("b")
	x := m.NewInt("x", 0, 10)
	m.AddImpliesLe(b, VarExpr(x), 3)
	m.AddImpliesGe(b, VarExpr(x), 2)
	m.AddEq(VarExpr(b), 1)
	m.AddEq(VarExpr(x).Add(b, 0), 3) // x = 3 is admissible
	s := solve(t, m, Options{})
	if s.Values[x] < 2 || s.Values[x] > 3 {
		t.Errorf("x = %d, want in [2,3]", s.Values[x])
	}
}

func TestImplicationInactiveWhenFalse(t *testing.T) {
	m := NewModel()
	b := m.NewBool("b")
	x := m.NewInt("x", 0, 10)
	m.AddImpliesLe(b, VarExpr(x), 3)
	m.AddEq(VarExpr(b), 0)
	m.AddGe(VarExpr(x), 8) // only possible because b=0 disables the cap
	s := solve(t, m, Options{})
	if s.Values[x] < 8 {
		t.Errorf("x = %d, want >= 8", s.Values[x])
	}
}

func TestReifyLe(t *testing.T) {
	for _, fix := range []int64{0, 1} {
		m := NewModel()
		x := m.NewInt("x", 0, 10)
		b := m.ReifyLe("b", VarExpr(x), 5)
		m.AddEq(VarExpr(b), fix)
		s := solve(t, m, Options{})
		if fix == 1 && s.Values[x] > 5 {
			t.Errorf("b=1 but x=%d > 5", s.Values[x])
		}
		if fix == 0 && s.Values[x] <= 5 {
			t.Errorf("b=0 but x=%d <= 5", s.Values[x])
		}
	}
}

func TestReifyEq(t *testing.T) {
	for _, fix := range []int64{0, 1} {
		m := NewModel()
		x := m.NewInt("x", 0, 6)
		b := m.ReifyEq("b", VarExpr(x), 4)
		m.AddEq(VarExpr(b), fix)
		s := solve(t, m, Options{})
		if fix == 1 && s.Values[x] != 4 {
			t.Errorf("b=1 but x=%d", s.Values[x])
		}
		if fix == 0 && s.Values[x] == 4 {
			t.Errorf("b=0 but x=4")
		}
	}
}

func TestBoolLogic(t *testing.T) {
	m := NewModel()
	a, b := m.NewBool("a"), m.NewBool("b")
	or := m.NewBool("or")
	and := m.NewBool("and")
	not := m.NewBool("not")
	m.AddBoolOr(or, a, b)
	m.AddBoolAnd(and, a, b)
	m.AddBoolNot(not, a)
	// Enumerate all assignments of (a, b) by solving with fixed values.
	for _, av := range []int64{0, 1} {
		for _, bv := range []int64{0, 1} {
			m2 := NewModel()
			a2, b2 := m2.NewBool("a"), m2.NewBool("b")
			or2, and2, not2 := m2.NewBool("or"), m2.NewBool("and"), m2.NewBool("not")
			m2.AddBoolOr(or2, a2, b2)
			m2.AddBoolAnd(and2, a2, b2)
			m2.AddBoolNot(not2, a2)
			m2.AddEq(VarExpr(a2), av)
			m2.AddEq(VarExpr(b2), bv)
			s := solve(t, m2, Options{})
			wantOr, wantAnd, wantNot := int64(0), int64(0), 1-av
			if av == 1 || bv == 1 {
				wantOr = 1
			}
			if av == 1 && bv == 1 {
				wantAnd = 1
			}
			if s.Values[or2] != wantOr || s.Values[and2] != wantAnd || s.Values[not2] != wantNot {
				t.Errorf("a=%d b=%d: or=%d and=%d not=%d", av, bv,
					s.Values[or2], s.Values[and2], s.Values[not2])
			}
		}
	}
	_ = or
	_ = and
	_ = not
}

func TestExactlyOneAndAtLeastOne(t *testing.T) {
	m := NewModel()
	var bs []VarID
	for i := 0; i < 5; i++ {
		bs = append(bs, m.NewBool("b"))
	}
	m.ExactlyOne(bs...)
	m.Maximize(Sum(bs...))
	s := solve(t, m, Options{})
	if got := Eval(Sum(bs...), s.Values); got != 1 {
		t.Errorf("ExactlyOne violated: sum=%d", got)
	}
}

func TestTimeLimit(t *testing.T) {
	// A model with a huge search space and no solution; the time limit
	// must fire.
	m := NewModel()
	var vars []VarID
	for i := 0; i < 40; i++ {
		vars = append(vars, m.NewInt("x", 0, 1000))
	}
	// Σ x_i = 39999 with parity cuts that make it infeasible but hard for
	// pure bounds propagation to refute instantly.
	e := Lin()
	for _, v := range vars {
		e = e.Add(v, 2)
	}
	m.AddEq(e, 39999) // even = odd: infeasible but propagation sees bounds only
	start := time.Now()
	_, err := m.Solve(Options{TimeLimit: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("time limit ignored: ran %v", elapsed)
	}
}

func TestBranchOrderRespected(t *testing.T) {
	m := NewModel()
	x := m.NewInt("x", 0, 5)
	y := m.NewInt("y", 0, 5)
	m.AddGe(Sum(x, y), 1)
	s := solve(t, m, Options{BranchOrder: []VarID{y, x}})
	// Ascending enumeration with y branched first gives y=0... then x
	// must be >= 1; but y=0,x=0 fails, so first feasible is x=1,y=0.
	if s.Values[x] != 1 || s.Values[y] != 0 {
		t.Errorf("got x=%d y=%d, want x=1 y=0", s.Values[x], s.Values[y])
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	m := NewModel()
	x := m.NewInt("x", 0, 10)
	m.AddLe(Lin().Add(x, 1).Add(x, 1), 6) // 2x <= 6
	m.Maximize(VarExpr(x))
	s := solve(t, m, Options{})
	if s.Values[x] != 3 {
		t.Errorf("x = %d, want 3", s.Values[x])
	}
}

// TestBruteForceCrossCheck compares optimal objectives against exhaustive
// enumeration on random small models.
func TestBruteForceCrossCheck(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		n := rng.IntN(4) + 2
		hi := int64(rng.IntN(3) + 1)
		m := NewModel()
		var vars []VarID
		for i := 0; i < n; i++ {
			vars = append(vars, m.NewInt("v", 0, hi))
		}
		type row struct {
			coeffs []int64
			rhs    int64
		}
		var rows []row
		nc := rng.IntN(4) + 1
		for i := 0; i < nc; i++ {
			r := row{coeffs: make([]int64, n), rhs: int64(rng.IntN(13) - 3)}
			e := Lin()
			for j := 0; j < n; j++ {
				r.coeffs[j] = int64(rng.IntN(7) - 3)
				e = e.Add(vars[j], r.coeffs[j])
			}
			rows = append(rows, r)
			m.AddLe(e, r.rhs)
		}
		objC := make([]int64, n)
		obj := Lin()
		for j := 0; j < n; j++ {
			objC[j] = int64(rng.IntN(9) - 4)
			obj = obj.Add(vars[j], objC[j])
		}
		m.Minimize(obj)

		// Brute force.
		bestBF := int64(1 << 60)
		feasible := false
		assign := make([]int64, n)
		var walk func(i int)
		walk = func(i int) {
			if i == n {
				for _, r := range rows {
					s := int64(0)
					for j := 0; j < n; j++ {
						s += r.coeffs[j] * assign[j]
					}
					if s > r.rhs {
						return
					}
				}
				feasible = true
				v := int64(0)
				for j := 0; j < n; j++ {
					v += objC[j] * assign[j]
				}
				if v < bestBF {
					bestBF = v
				}
				return
			}
			for v := int64(0); v <= hi; v++ {
				assign[i] = v
				walk(i + 1)
			}
		}
		walk(0)

		sol, err := m.Solve(Options{})
		if !feasible {
			return errors.Is(err, ErrInfeasible)
		}
		if err != nil {
			return false
		}
		return sol.Objective == bestBF && m.Check(sol.Values) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLPBoundAgreement: enabling LP bounding must not change optimality.
func TestLPBoundAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 57))
		n := rng.IntN(4) + 2
		m1, m2 := NewModel(), NewModel()
		var v1, v2 []VarID
		for i := 0; i < n; i++ {
			v1 = append(v1, m1.NewInt("v", 0, 3))
			v2 = append(v2, m2.NewInt("v", 0, 3))
		}
		nc := rng.IntN(4) + 1
		for i := 0; i < nc; i++ {
			e1, e2 := Lin(), Lin()
			for j := 0; j < n; j++ {
				c := int64(rng.IntN(5) - 2)
				e1 = e1.Add(v1[j], c)
				e2 = e2.Add(v2[j], c)
			}
			rhs := int64(rng.IntN(9) - 1)
			m1.AddLe(e1, rhs)
			m2.AddLe(e2, rhs)
		}
		o1, o2 := Lin(), Lin()
		for j := 0; j < n; j++ {
			c := int64(rng.IntN(7) - 3)
			o1 = o1.Add(v1[j], c)
			o2 = o2.Add(v2[j], c)
		}
		m1.Minimize(o1)
		m2.Minimize(o2)
		s1, err1 := m1.Solve(Options{})
		s2, err2 := m2.Solve(Options{UseLPBound: true, LPBoundEvery: 1})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return s1.Objective == s2.Objective
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModel()
	m.NewInt("x", 3, 2)
}

func TestFirstSolutionStopsEarly(t *testing.T) {
	m := NewModel()
	x := m.NewInt("x", 0, 1000)
	m.Minimize(negateForTest(VarExpr(x))) // maximize x
	m.AddLe(VarExpr(x), 900)
	s, err := m.Solve(Options{FirstSolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Optimal {
		t.Error("first-solution mode must not claim optimality")
	}
}

func negateForTest(e LinExpr) LinExpr {
	out := LinExpr{Const: -e.Const}
	for _, t := range e.Terms {
		out.Terms = append(out.Terms, Term{t.Var, -t.Coeff})
	}
	return out
}

func TestFirstFailHeuristicAgrees(t *testing.T) {
	// First-fail must not change feasibility or optimality, only the
	// search order.
	m1, m2 := NewModel(), NewModel()
	var v1, v2 []VarID
	for i := 0; i < 6; i++ {
		v1 = append(v1, m1.NewInt("v", 0, 3))
		v2 = append(v2, m2.NewInt("v", 0, 3))
	}
	for i := 0; i+1 < 6; i++ {
		m1.AddLe(Lin().Add(v1[i], 1).Add(v1[i+1], 2), 4)
		m2.AddLe(Lin().Add(v2[i], 1).Add(v2[i+1], 2), 4)
	}
	m1.Minimize(negateForTest(Sum(v1...)))
	m2.Minimize(negateForTest(Sum(v2...)))
	s1, err1 := m1.Solve(Options{})
	s2, err2 := m2.Solve(Options{FirstFail: true})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if s1.Objective != s2.Objective {
		t.Errorf("objectives differ: %d vs %d", s1.Objective, s2.Objective)
	}
}

func TestRestartsSolveAdversarialOrder(t *testing.T) {
	// A model whose given branch order is pathological: restarts reshuffle
	// and find the solution quickly anyway.
	m := NewModel()
	var vars []VarID
	for i := 0; i < 30; i++ {
		vars = append(vars, m.NewInt("v", 0, 8))
	}
	// Chain x_{i+1} >= x_i; and x_29 = 8 forces all high... branch order
	// given ascending values on x_0 first explores 0..8 fruitlessly.
	for i := 0; i+1 < len(vars); i++ {
		m.AddGe(VarExpr(vars[i+1]).Add(vars[i], -1), 0)
	}
	m.AddEq(VarExpr(vars[len(vars)-1]), 8)
	m.AddGe(VarExpr(vars[0]), 8) // forces everything to 8
	s, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		if s.Values[v] != 8 {
			t.Fatalf("var = %d, want 8", s.Values[v])
		}
	}
}

func TestImpliesNotHelpers(t *testing.T) {
	// b = 0 ⇒ x ≤ 3; with b forced 0, x must be ≤ 3.
	m := NewModel()
	b := m.NewBool("b")
	x := m.NewInt("x", 0, 10)
	m.AddImpliesNotLe(b, VarExpr(x), 3)
	m.AddEq(VarExpr(b), 0)
	m.Maximize(VarExpr(x))
	s := solve(t, m, Options{})
	if s.Values[x] != 3 {
		t.Errorf("x = %d, want 3", s.Values[x])
	}
	// With b = 1 the implication is inactive.
	m2 := NewModel()
	b2 := m2.NewBool("b")
	x2 := m2.NewInt("x", 0, 10)
	m2.AddImpliesNotLe(b2, VarExpr(x2), 3)
	m2.AddEq(VarExpr(b2), 1)
	m2.Maximize(VarExpr(x2))
	s2 := solve(t, m2, Options{})
	if s2.Values[x2] != 10 {
		t.Errorf("x = %d, want 10", s2.Values[x2])
	}
	// b = 0 ⇒ x = 7 via AddImpliesNotEq.
	m3 := NewModel()
	b3 := m3.NewBool("b")
	x3 := m3.NewInt("x", 0, 10)
	m3.AddImpliesNotEq(b3, VarExpr(x3), 7)
	m3.AddEq(VarExpr(b3), 0)
	s3 := solve(t, m3, Options{})
	if s3.Values[x3] != 7 {
		t.Errorf("x = %d, want 7", s3.Values[x3])
	}
}

func TestNegativeBoundsVariables(t *testing.T) {
	// Variables with negative domains exercise divFloor/divCeil sign
	// handling in propagation.
	m := NewModel()
	x := m.NewInt("x", -10, 10)
	y := m.NewInt("y", -10, 10)
	m.AddLe(Lin().Add(x, -3), 7)  // -3x <= 7  ->  x >= -2 (ceil(-7/3))
	m.AddGe(Lin().Add(y, -2), -6) // -2y >= -6 ->  y <= 3
	m.Minimize(Sum(x, y))
	s := solve(t, m, Options{})
	if s.Values[x] != -2 {
		t.Errorf("x = %d, want -2", s.Values[x])
	}
	if s.Values[y] != -10 {
		t.Errorf("y = %d, want -10", s.Values[y])
	}
}

func TestSolutionStatsPopulated(t *testing.T) {
	m := NewModel()
	x := m.NewInt("x", 0, 3)
	m.AddGe(VarExpr(x), 1)
	s := solve(t, m, Options{})
	if s.Stats.Nodes == 0 || s.Stats.Propagations == 0 {
		t.Errorf("stats empty: %+v", s.Stats)
	}
	if m.Name(x) != "x" {
		t.Errorf("Name = %q", m.Name(x))
	}
	if lo, hi := m.Bounds(x); lo != 0 || hi != 3 {
		t.Errorf("Bounds = %d, %d", lo, hi)
	}
	if m.NumVars() != 1 || m.NumConstraints() == 0 {
		t.Errorf("counts: vars=%d cons=%d", m.NumVars(), m.NumConstraints())
	}
}

// pigeonholeGated builds a model with a gate boolean g: g = 1 activates an
// infeasible pigeonhole subproblem (more pigeons than holes), g = 0 leaves
// every placement variable free. Branching g high first therefore burns the
// whole node budget refuting the pigeonhole, while branching it low first
// finds a solution almost immediately — exactly the shape restarts exist
// for.
func pigeonholeGated(pigeons, holes int) (*Model, Options) {
	m := NewModel()
	g := m.NewBool("g")
	p := make([][]VarID, pigeons)
	order := []VarID{g}
	for i := range p {
		p[i] = make([]VarID, holes)
		for j := range p[i] {
			p[i][j] = m.NewBool("p")
			order = append(order, p[i][j])
		}
	}
	for i := 0; i < pigeons; i++ {
		m.AddImpliesGe(g, Sum(p[i]...), 1) // g = 1: every pigeon needs a hole
	}
	for j := 0; j < holes; j++ {
		col := make([]VarID, pigeons)
		for i := range col {
			col[i] = p[i][j]
		}
		m.AddLe(Sum(col...), 1) // each hole fits at most one pigeon
	}
	return m, Options{BranchOrder: order, PreferHigh: []VarID{g}}
}

func TestRestartBudgetAccounting(t *testing.T) {
	const base = 512
	// Sanity: a single attempt limited to the first restart budget must
	// fail — the gate branches high into the pigeonhole subtree and the
	// budget runs out long before the subtree is refuted.
	m, opts := pigeonholeGated(8, 7)
	once := opts
	once.NoRestarts = true
	once.MaxNodes = base
	if _, err := m.Solve(once); err == nil {
		t.Fatal("first-attempt budget unexpectedly sufficient; grow the pigeonhole")
	}
	// Under restarts the first attempt exhausts its base budget and a later
	// attempt (value preference flipped) solves quickly. The solution's
	// stats must charge the failed attempt's nodes too: the old accounting
	// reported only the final attempt, undercounting total solver effort
	// below base+1.
	m, opts = pigeonholeGated(8, 7)
	opts.RestartBaseNodes = base
	s, err := m.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if msg := m.Check(s.Values); msg != "" {
		t.Fatalf("solution violates model: %s", msg)
	}
	if s.Stats.Nodes <= base {
		t.Fatalf("Stats.Nodes = %d, want > %d: failed restart attempts must be charged at their actual node count", s.Stats.Nodes, base)
	}
	if s.Stats.Nodes > 3*base {
		t.Fatalf("Stats.Nodes = %d, want ≤ %d: charge actual nodes, not granted budgets", s.Stats.Nodes, 3*base)
	}
	// A NodeLimit covering the failed attempt plus a generous remainder
	// must still admit the solve: with grant-based charging the second
	// attempt would be starved of budget it never consumed.
	m, opts = pigeonholeGated(8, 7)
	opts.RestartBaseNodes = base
	opts.NodeLimit = 3 * base
	if _, err := m.Solve(opts); err != nil {
		t.Fatalf("Solve under NodeLimit=%d: %v", 3*base, err)
	}
}

func TestRestartDeterminism(t *testing.T) {
	// Identical models must produce identical restart sequences (the RNG is
	// seeded from the model fingerprint) and hence identical solutions and
	// effort counts.
	run := func() *Solution {
		m, opts := pigeonholeGated(8, 7)
		opts.RestartBaseNodes = 512
		s, err := m.Solve(opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.Stats.Nodes != b.Stats.Nodes || a.Stats.Propagations != b.Stats.Propagations {
		t.Fatalf("effort differs across identical solves: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("value %d differs: %d vs %d", i, a.Values[i], b.Values[i])
		}
	}
}

func TestFingerprintDistinguishesModels(t *testing.T) {
	build := func(coeff, rhs, hi int64) *Model {
		m := NewModel()
		x := m.NewInt("x", 0, hi)
		y := m.NewInt("y", 0, hi)
		m.AddLe(Lin().Add(x, coeff).Add(y, 1), rhs)
		return m
	}
	base := build(2, 7, 10)
	if got := build(2, 7, 10).Fingerprint(); got != base.Fingerprint() {
		t.Fatalf("identical models disagree: %#x vs %#x", got, base.Fingerprint())
	}
	// All of these share the base model's variable and constraint counts —
	// the old constraint-count seed could not tell them apart.
	variants := map[string]*Model{
		"coefficient": build(3, 7, 10),
		"rhs":         build(2, 8, 10),
		"bounds":      build(2, 7, 11),
	}
	for name, m := range variants {
		if m.NumConstraints() != base.NumConstraints() {
			t.Fatalf("%s variant changed the constraint count; fix the test", name)
		}
		if m.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s-differing model shares the base fingerprint", name)
		}
	}
}
