package milp

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"

	"chameleon/internal/lp"
)

// Errors returned by Solve.
var (
	// ErrInfeasible means the model admits no integer solution.
	ErrInfeasible = errors.New("milp: infeasible")
	// ErrTimeout means the limits were hit before any solution was found.
	ErrTimeout = errors.New("milp: time or node limit exceeded")
)

// Options tune the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock search time (0: unlimited).
	TimeLimit time.Duration
	// MaxNodes bounds the number of search nodes (0: unlimited).
	MaxNodes int64
	// BranchOrder lists variables to branch on first, in order. Remaining
	// variables follow in declaration order.
	BranchOrder []VarID
	// UseLPBound enables LP-relaxation bounding at the root and every
	// LPBoundEvery nodes (ablation: §7.1 solver engine).
	UseLPBound bool
	// LPBoundEvery is the node interval between LP bounding calls
	// (default 512 when UseLPBound).
	LPBoundEvery int64
	// FirstSolution stops at the first feasible solution even when an
	// objective is set (used by the round-minimization outer loop, which
	// only needs feasibility at each R).
	FirstSolution bool
	// ImprovementTimeLimit bounds, in SolveIterative, the improvement
	// loop after the first feasible solution (0: use TimeLimit).
	ImprovementTimeLimit time.Duration
	// NodeLimit bounds the total node budget handed out across restart
	// attempts (0: unlimited). Unlike TimeLimit it is deterministic: the
	// same model under the same limit returns the same result regardless
	// of machine speed or load. Callers wanting reproducible solves set
	// it and leave TimeLimit at 0.
	NodeLimit int64
	// ImprovementNodeLimit bounds, in SolveIterative, each improvement
	// iteration by a node budget instead of wall-clock time; when set it
	// replaces ImprovementTimeLimit. Deterministic like NodeLimit.
	ImprovementNodeLimit int64
	// NoRestarts disables randomized geometric restarts. Restarts (on by
	// default) bound each search attempt by a doubling node budget and
	// reshuffle the branch order between attempts, taming the
	// heavy-tailed runtime of chronological backtracking.
	NoRestarts bool
	// RestartBaseNodes is the first attempt's node budget (default 4096).
	RestartBaseNodes int64
	// FirstFail branches on the unfixed variable with the smallest
	// current domain (ties broken by branch order) instead of strictly
	// following the branch order.
	FirstFail bool
	// PreferHigh lists variables whose values are enumerated descending
	// (try the upper bound first); all others ascend.
	PreferHigh []VarID
	// Ctx, when non-nil, is polled sparsely (same cadence as the deadline
	// check) and aborts the search with the context's error. Cancellation
	// discards any incumbent: a cancelled solve returns ctx.Err(), never a
	// partial solution.
	Ctx context.Context
}

// Stats reports search effort.
type Stats struct {
	Nodes        int64
	Propagations int64
	Duration     time.Duration
	LPBounds     int64
	LPPivots     int64
	Optimal      bool
}

// Solution is a feasible (and, unless interrupted, optimal) assignment.
type Solution struct {
	Values    []int64
	Objective int64
	Stats     Stats
}

type change struct {
	v            VarID
	oldLo, oldHi int64
}

type searcher struct {
	m     *Model
	lo    []int64
	hi    []int64
	trail []change
	queue []int32
	inQ   []bool

	order      []VarID
	preferHigh []bool

	incumbent    []int64
	incumbentObj int64
	haveInc      bool

	deadline time.Time
	hasDL    bool
	opts     Options
	stats    Stats
	start    time.Time
	ctxErr   error // set when opts.Ctx fired during the search
}

// isCtxErr reports whether err is a context cancellation or deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Solve runs branch and bound. With an objective it returns the best
// solution found (Stats.Optimal reports whether the search completed);
// without one it returns the first feasible assignment. Unless NoRestarts
// is set, the search uses randomized geometric restarts: attempt k gets a
// node budget of RestartBaseNodes·2^k, and from the second attempt on the
// branch order is reshuffled deterministically.
func (m *Model) Solve(opts Options) (*Solution, error) {
	if !opts.NoRestarts && opts.MaxNodes == 0 {
		return m.solveWithRestarts(opts)
	}
	sol, _, err := m.solveOnce(opts)
	return sol, err
}

func (m *Model) solveWithRestarts(opts Options) (*Solution, error) {
	budget := opts.RestartBaseNodes
	if budget == 0 {
		budget = 4096
	}
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	order := append([]VarID(nil), opts.BranchOrder...)
	// Seed the restart RNG from a structural fingerprint of the model, not
	// just the constraint count: two different models with equal len(cons)
	// must not share branch-order shuffles, while identical models keep
	// identical (deterministic) restart sequences.
	rng := rand.New(rand.NewPCG(0x9e3779b97f4a7c15, m.Fingerprint()))
	var spent int64 // nodes actually explored so far, against NodeLimit
	var agg Stats   // effort aggregated across attempts
	for attempt := 0; ; attempt++ {
		inner := opts
		inner.NoRestarts = true
		inner.MaxNodes = budget
		if opts.NodeLimit > 0 {
			remaining := opts.NodeLimit - spent
			if remaining <= 0 {
				return nil, ErrTimeout
			}
			if inner.MaxNodes > remaining {
				inner.MaxNodes = remaining
			}
		}
		if opts.TimeLimit > 0 {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return nil, ErrTimeout
			}
			inner.TimeLimit = remaining
		}
		if attempt > 0 {
			// Diversify: reshuffle the branch order deterministically and
			// alternate the value-ordering preference, so successive
			// attempts explore genuinely different parts of the tree.
			shuffled := append([]VarID(nil), order...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			inner.BranchOrder = shuffled
			if attempt%2 == 1 {
				inner.PreferHigh = nil
			}
		}
		sol, st, err := m.solveOnce(inner)
		// Charge the nodes the attempt actually explored, not the budget it
		// was granted: an attempt that returns early must not exhaust the
		// NodeLimit on paper while the search barely ran.
		spent += st.Nodes
		agg.Nodes += st.Nodes
		agg.Propagations += st.Propagations
		agg.LPBounds += st.LPBounds
		agg.LPPivots += st.LPPivots
		agg.Duration += st.Duration
		if err == nil || errors.Is(err, ErrInfeasible) || isCtxErr(err) {
			if sol != nil {
				// Report total effort across all restart attempts, not just
				// the final one's.
				optimal := sol.Stats.Optimal
				sol.Stats = agg
				sol.Stats.Optimal = optimal
			}
			return sol, err
		}
		if opts.TimeLimit > 0 && time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		budget *= 2
	}
}

// solveOnce runs a single branch-and-bound attempt. It returns the effort
// stats even on error so the restart loop can charge NodeLimit with the
// nodes actually explored.
func (m *Model) solveOnce(opts Options) (*Solution, Stats, error) {
	if opts.MaxNodes == 0 && opts.NodeLimit > 0 {
		opts.MaxNodes = opts.NodeLimit
	}
	s := &searcher{
		m:     m,
		lo:    append([]int64(nil), m.lo...),
		hi:    append([]int64(nil), m.hi...),
		inQ:   make([]bool, len(m.cons)),
		opts:  opts,
		start: time.Now(),
	}
	if opts.TimeLimit > 0 {
		s.deadline = s.start.Add(opts.TimeLimit)
		s.hasDL = true
	}
	if opts.UseLPBound && opts.LPBoundEvery == 0 {
		s.opts.LPBoundEvery = 512
	}
	s.preferHigh = make([]bool, len(m.lo))
	for _, v := range opts.PreferHigh {
		s.preferHigh[v] = true
	}
	// Branch order: explicit list first, then remaining variables.
	seen := make([]bool, len(m.lo))
	for _, v := range opts.BranchOrder {
		if !seen[v] {
			s.order = append(s.order, v)
			seen[v] = true
		}
	}
	for v := range m.lo {
		if !seen[v] {
			s.order = append(s.order, VarID(v))
		}
	}
	// Constant infeasible rows (posted by addLe with empty terms).
	for _, c := range m.cons {
		if len(c.terms) == 0 && c.rhs < 0 {
			return nil, s.stats, ErrInfeasible
		}
	}
	// Root propagation.
	for i := range m.cons {
		s.enqueue(int32(i))
	}
	if !s.propagate() {
		s.stats.Duration = time.Since(s.start)
		return nil, s.stats, ErrInfeasible
	}
	err := s.search(0)
	s.stats.Duration = time.Since(s.start)
	if s.ctxErr != nil {
		return nil, s.stats, s.ctxErr
	}
	if s.haveInc {
		// Without an objective any feasible assignment is final; with one,
		// optimality holds only if the search ran to exhaustion.
		s.stats.Optimal = err == nil || !m.hasObj
		return &Solution{Values: s.incumbent, Objective: s.incumbentObj, Stats: s.stats}, s.stats, nil
	}
	if err != nil {
		return nil, s.stats, err
	}
	return nil, s.stats, ErrInfeasible
}

// SolveIterative minimizes the objective by repeated feasibility solves
// with a tightening cutoff (obj ≤ best−1), which prunes far better than
// plain bound-based branch and bound when the objective is a sum of many
// indicator variables (the scheduler's temp-session count). The model is
// mutated: cutoff rows accumulate. Stats are aggregated across iterations.
func (m *Model) SolveIterative(opts Options) (*Solution, error) {
	if !m.hasObj {
		return m.Solve(opts)
	}
	inner := opts
	inner.FirstSolution = true
	best, err := m.Solve(inner)
	if err != nil {
		return nil, err
	}
	improvement := opts.ImprovementTimeLimit
	if improvement == 0 {
		improvement = opts.TimeLimit
	}
	var deadline time.Time
	if opts.ImprovementNodeLimit == 0 && improvement > 0 {
		deadline = time.Now().Add(improvement)
	}
	budget := func() bool {
		if opts.ImprovementNodeLimit > 0 {
			// Deterministic mode: each iteration gets a fixed node
			// budget and no clock. The loop still terminates — every
			// iteration either strictly improves the objective
			// (bounded below) or errors out of the loop.
			inner.TimeLimit = 0
			inner.NodeLimit = opts.ImprovementNodeLimit
			return true
		}
		if improvement == 0 {
			return true
		}
		remaining := time.Until(deadline)
		inner.TimeLimit = remaining
		return remaining > 0
	}
	agg := best.Stats
	for {
		if !budget() {
			best.Stats = agg
			best.Stats.Optimal = false
			return best, nil
		}
		m.AddLe(m.obj, best.Objective-1)
		sol, err := m.Solve(inner)
		if err != nil {
			if isCtxErr(err) {
				return nil, err
			}
			best.Stats = agg
			best.Stats.Optimal = errors.Is(err, ErrInfeasible)
			return best, nil
		}
		agg.Nodes += sol.Stats.Nodes
		agg.Propagations += sol.Stats.Propagations
		agg.LPBounds += sol.Stats.LPBounds
		agg.LPPivots += sol.Stats.LPPivots
		agg.Duration += sol.Stats.Duration
		best = sol
	}
}

var errLimit = errors.New("milp: limit")

func (s *searcher) limitExceeded() bool {
	if s.opts.MaxNodes > 0 && s.stats.Nodes >= s.opts.MaxNodes {
		return true
	}
	// Check the clock and the context sparsely; time.Now and channel
	// selects are comparatively expensive.
	if s.stats.Nodes%256 == 0 {
		if s.hasDL && time.Now().After(s.deadline) {
			return true
		}
		if s.opts.Ctx != nil {
			select {
			case <-s.opts.Ctx.Done():
				s.ctxErr = s.opts.Ctx.Err()
				return true
			default:
			}
		}
	}
	return false
}

func (s *searcher) enqueue(ci int32) {
	if !s.inQ[ci] {
		s.inQ[ci] = true
		s.queue = append(s.queue, ci)
	}
}

func (s *searcher) setLo(v VarID, nv int64) bool {
	if nv <= s.lo[v] {
		return true
	}
	if nv > s.hi[v] {
		return false
	}
	s.trail = append(s.trail, change{v, s.lo[v], s.hi[v]})
	s.lo[v] = nv
	for _, ci := range s.m.varCons[v] {
		s.enqueue(ci)
	}
	return true
}

func (s *searcher) setHi(v VarID, nv int64) bool {
	if nv >= s.hi[v] {
		return true
	}
	if nv < s.lo[v] {
		return false
	}
	s.trail = append(s.trail, change{v, s.lo[v], s.hi[v]})
	s.hi[v] = nv
	for _, ci := range s.m.varCons[v] {
		s.enqueue(ci)
	}
	return true
}

func (s *searcher) undoTo(mark int) {
	for len(s.trail) > mark {
		c := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.lo[c.v] = c.oldLo
		s.hi[c.v] = c.oldHi
	}
}

// divFloor computes floor(p/q) for q > 0.
func divFloor(p, q int64) int64 {
	d := p / q
	if p%q != 0 && (p < 0) != (q < 0) {
		d--
	}
	return d
}

// divCeil computes ceil(p/q).
func divCeil(p, q int64) int64 {
	d := p / q
	if p%q != 0 && (p < 0) == (q < 0) {
		d++
	}
	return d
}

// propagate runs bounds-consistency to fixpoint; false means conflict.
func (s *searcher) propagate() bool {
	for len(s.queue) > 0 {
		ci := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.inQ[ci] = false
		s.stats.Propagations++
		c := &s.m.cons[ci]
		// minSum = Σ min(a_i·x_i).
		var minSum int64
		for _, t := range c.terms {
			if t.Coeff > 0 {
				minSum += t.Coeff * s.lo[t.Var]
			} else {
				minSum += t.Coeff * s.hi[t.Var]
			}
		}
		if minSum > c.rhs {
			s.clearQueue()
			return false
		}
		for _, t := range c.terms {
			var tMin int64
			if t.Coeff > 0 {
				tMin = t.Coeff * s.lo[t.Var]
			} else {
				tMin = t.Coeff * s.hi[t.Var]
			}
			slack := c.rhs - (minSum - tMin)
			if t.Coeff > 0 {
				// x ≤ floor(slack / coeff)
				if ub := divFloor(slack, t.Coeff); ub < s.hi[t.Var] {
					if !s.setHi(t.Var, ub) {
						s.clearQueue()
						return false
					}
				}
			} else {
				// coeff < 0: x ≥ ceil(slack / coeff)
				if lb := divCeil(slack, t.Coeff); lb > s.lo[t.Var] {
					if !s.setLo(t.Var, lb) {
						s.clearQueue()
						return false
					}
				}
			}
		}
	}
	return true
}

func (s *searcher) clearQueue() {
	for _, ci := range s.queue {
		s.inQ[ci] = false
	}
	s.queue = s.queue[:0]
}

// objLowerBound computes Σ min(c_i·x_i) under current domains.
func (s *searcher) objLowerBound() int64 {
	v := s.m.obj.Const
	for _, t := range s.m.obj.Terms {
		if t.Coeff > 0 {
			v += t.Coeff * s.lo[t.Var]
		} else {
			v += t.Coeff * s.hi[t.Var]
		}
	}
	return v
}

// lpBound solves the LP relaxation under current domains; returns false if
// the node can be pruned.
func (s *searcher) lpBound() bool {
	s.stats.LPBounds++
	n := len(s.lo)
	p := lp.NewProblem(n)
	if s.m.hasObj {
		for _, t := range s.m.obj.Terms {
			p.SetObjective(int(t.Var), float64(t.Coeff))
		}
	}
	for _, c := range s.m.cons {
		row := make([]float64, n)
		for _, t := range c.terms {
			row[int(t.Var)] += float64(t.Coeff)
		}
		p.AddLe(row, float64(c.rhs))
	}
	// Domain bounds as rows (shifted formulation avoided for simplicity:
	// x ≥ lo becomes -x ≤ -lo).
	for v := 0; v < n; v++ {
		row := make([]float64, n)
		row[v] = 1
		p.AddLe(row, float64(s.hi[v]))
		if s.lo[v] > 0 {
			neg := make([]float64, n)
			neg[v] = -1
			p.AddLe(neg, -float64(s.lo[v]))
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return !errors.Is(err, lp.ErrInfeasible)
	}
	s.stats.LPPivots += int64(sol.Pivots)
	if s.m.hasObj && s.haveInc {
		// Integral objective: ceil the LP bound.
		lb := int64(sol.Objective + float64(s.m.obj.Const) - 1e-6)
		if float64(lb) < sol.Objective+float64(s.m.obj.Const)-1e-6 {
			lb++
		}
		if lb >= s.incumbentObj {
			return false
		}
	}
	return true
}

// search performs DFS; returns nil when the subtree is exhausted, errLimit
// on limits.
func (s *searcher) search(depth int) error {
	s.stats.Nodes++
	if s.limitExceeded() {
		return errLimit
	}
	if s.m.hasObj && s.haveInc {
		if s.objLowerBound() >= s.incumbentObj {
			return nil // cannot improve
		}
	}
	if s.opts.UseLPBound && (s.stats.Nodes == 1 || s.stats.Nodes%s.opts.LPBoundEvery == 0) {
		if !s.lpBound() {
			return nil
		}
	}
	// Pick the next variable: first unfixed in branch order, or — under
	// first-fail — the unfixed variable with the smallest domain.
	var pick VarID = -1
	if s.opts.FirstFail {
		best := int64(1) << 62
		for _, v := range s.order {
			d := s.hi[v] - s.lo[v]
			if d == 0 {
				continue
			}
			if d < best {
				best = d
				pick = v
				if d == 1 {
					break
				}
			}
		}
	} else {
		for _, v := range s.order {
			if s.lo[v] != s.hi[v] {
				pick = v
				break
			}
		}
	}
	if pick == -1 {
		// All fixed: record solution.
		vals := append([]int64(nil), s.lo...)
		obj := int64(0)
		if s.m.hasObj {
			obj = Eval(s.m.obj, vals)
		}
		if !s.haveInc || obj < s.incumbentObj {
			s.incumbent = vals
			s.incumbentObj = obj
			s.haveInc = true
		}
		if !s.m.hasObj || s.opts.FirstSolution {
			return errLimit // stop the whole search: feasibility is enough
		}
		return nil
	}
	// Binary split: left branch fixes the preferred bound (lower bound by
	// default, upper bound for PreferHigh variables), right branch
	// excludes it; re-picking the still-unfixed variable keeps the
	// enumeration complete.
	var fixLeft func() bool
	var shrinkRight func() bool
	if s.preferHigh[pick] {
		hi := s.hi[pick]
		fixLeft = func() bool { return s.setLo(pick, hi) }
		shrinkRight = func() bool { return s.setHi(pick, hi-1) }
	} else {
		lo := s.lo[pick]
		fixLeft = func() bool { return s.setHi(pick, lo) }
		shrinkRight = func() bool { return s.setLo(pick, lo+1) }
	}
	mark := len(s.trail)
	if fixLeft() && s.propagate() {
		if err := s.search(depth + 1); err != nil {
			s.undoTo(mark)
			return err
		}
	} else {
		s.clearQueue()
	}
	s.undoTo(mark)
	if s.lo[pick] == s.hi[pick] {
		return nil // the excluded value was the last one
	}
	mark = len(s.trail)
	var err error
	if shrinkRight() && s.propagate() {
		err = s.search(depth + 1)
	} else {
		s.clearQueue()
	}
	s.undoTo(mark)
	return err
}
