// Package milp is an exact integer linear program solver: a model builder
// with big-M linearization helpers (implication, reification, boolean
// logic) and a branch-and-bound search with bounds-consistency propagation
// over linear constraints, optionally strengthened by LP-relaxation
// bounding (package lp).
//
// It replaces COIN-OR CBC used by the paper: the scheduler's model (§4) is
// encoded through this package unchanged — the same variables, big-M
// constraints and objective — only the solving engine differs.
package milp

import (
	"fmt"
)

// VarID identifies a model variable.
type VarID int

// Term is coeff·var.
type Term struct {
	Var   VarID
	Coeff int64
}

// LinExpr is Σ terms + Const.
type LinExpr struct {
	Terms []Term
	Const int64
}

// Lin builds an empty linear expression.
func Lin() LinExpr { return LinExpr{} }

// Add returns e + coeff·v.
func (e LinExpr) Add(v VarID, coeff int64) LinExpr {
	e.Terms = append(e.Terms[:len(e.Terms):len(e.Terms)], Term{v, coeff})
	return e
}

// Plus returns e + c.
func (e LinExpr) Plus(c int64) LinExpr {
	e.Const += c
	return e
}

// VarExpr returns the expression 1·v.
func VarExpr(v VarID) LinExpr { return Lin().Add(v, 1) }

// Sum returns Σ 1·v over vs.
func Sum(vs ...VarID) LinExpr {
	e := Lin()
	for _, v := range vs {
		e = e.Add(v, 1)
	}
	return e
}

// Op is a constraint operator.
type Op int

// Constraint operators.
const (
	OpLe Op = iota
	OpGe
	OpEq
)

// constraint is the normalized internal form Σ terms ≤ rhs.
type constraint struct {
	terms []Term
	rhs   int64
}

// Model is a mixed-integer linear model. Build it with NewInt/NewBool and
// the Add* helpers, then call Solve.
type Model struct {
	lo, hi  []int64
	names   []string
	cons    []constraint
	varCons [][]int32 // var -> constraint indices containing it
	obj     LinExpr
	hasObj  bool
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NewInt declares an integer variable with inclusive bounds [lo, hi].
func (m *Model) NewInt(name string, lo, hi int64) VarID {
	if lo > hi {
		panic(fmt.Sprintf("milp: variable %s has empty domain [%d,%d]", name, lo, hi))
	}
	id := VarID(len(m.lo))
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.names = append(m.names, name)
	m.varCons = append(m.varCons, nil)
	return id
}

// NewBool declares a 0/1 variable.
func (m *Model) NewBool(name string) VarID { return m.NewInt(name, 0, 1) }

// NumVars returns the number of declared variables.
func (m *Model) NumVars() int { return len(m.lo) }

// NumConstraints returns the number of normalized ≤ rows.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Name returns the variable's name.
func (m *Model) Name(v VarID) string { return m.names[v] }

// Bounds returns the declared bounds of v.
func (m *Model) Bounds(v VarID) (lo, hi int64) { return m.lo[v], m.hi[v] }

// Add posts the constraint e (op) rhs.
func (m *Model) Add(e LinExpr, op Op, rhs int64) {
	switch op {
	case OpLe:
		m.addLe(e.Terms, rhs-e.Const)
	case OpGe:
		neg := make([]Term, len(e.Terms))
		for i, t := range e.Terms {
			neg[i] = Term{t.Var, -t.Coeff}
		}
		m.addLe(neg, e.Const-rhs)
	case OpEq:
		m.Add(e, OpLe, rhs)
		m.Add(e, OpGe, rhs)
	}
}

// AddLe posts e ≤ rhs.
func (m *Model) AddLe(e LinExpr, rhs int64) { m.Add(e, OpLe, rhs) }

// AddGe posts e ≥ rhs.
func (m *Model) AddGe(e LinExpr, rhs int64) { m.Add(e, OpGe, rhs) }

// AddEq posts e = rhs.
func (m *Model) AddEq(e LinExpr, rhs int64) { m.Add(e, OpEq, rhs) }

func (m *Model) addLe(terms []Term, rhs int64) {
	// Merge duplicate variables and drop zero coefficients.
	merged := make(map[VarID]int64)
	for _, t := range terms {
		merged[t.Var] += t.Coeff
	}
	norm := make([]Term, 0, len(merged))
	for _, t := range terms { // preserve first-occurrence order
		c, ok := merged[t.Var]
		if !ok {
			continue
		}
		delete(merged, t.Var)
		if c != 0 {
			norm = append(norm, Term{t.Var, c})
		}
	}
	if len(norm) == 0 {
		if rhs < 0 {
			// Trivially infeasible: encode as 0 ≤ -1 via an impossible
			// constraint on a dummy basis — simplest is to remember it.
			m.cons = append(m.cons, constraint{nil, rhs})
		}
		return
	}
	idx := int32(len(m.cons))
	m.cons = append(m.cons, constraint{norm, rhs})
	for _, t := range norm {
		m.varCons[t.Var] = append(m.varCons[t.Var], idx)
	}
}

// exprMax returns the maximum value of e under the declared bounds.
func (m *Model) exprMax(e LinExpr) int64 {
	v := e.Const
	for _, t := range e.Terms {
		if t.Coeff > 0 {
			v += t.Coeff * m.hi[t.Var]
		} else {
			v += t.Coeff * m.lo[t.Var]
		}
	}
	return v
}

// exprMin returns the minimum value of e under the declared bounds.
func (m *Model) exprMin(e LinExpr) int64 {
	v := e.Const
	for _, t := range e.Terms {
		if t.Coeff > 0 {
			v += t.Coeff * m.lo[t.Var]
		} else {
			v += t.Coeff * m.hi[t.Var]
		}
	}
	return v
}

// AddImpliesLe posts b = 1 ⇒ e ≤ rhs using an automatically tightened
// big-M derived from variable bounds.
func (m *Model) AddImpliesLe(b VarID, e LinExpr, rhs int64) {
	bigM := m.exprMax(e) - rhs
	if bigM <= 0 {
		return // already always true
	}
	// e + M·b ≤ rhs + M.
	m.AddLe(e.Add(b, bigM), rhs+bigM)
}

// AddImpliesGe posts b = 1 ⇒ e ≥ rhs.
func (m *Model) AddImpliesGe(b VarID, e LinExpr, rhs int64) {
	bigM := rhs - m.exprMin(e)
	if bigM <= 0 {
		return
	}
	// e - M·b ≥ rhs - M.
	m.AddGe(e.Add(b, -bigM), rhs-bigM)
}

// AddImpliesNotLe posts b = 0 ⇒ e ≤ rhs.
func (m *Model) AddImpliesNotLe(b VarID, e LinExpr, rhs int64) {
	bigM := m.exprMax(e) - rhs
	if bigM <= 0 {
		return
	}
	// e - M·b ≤ rhs
	m.AddLe(e.Add(b, -bigM), rhs)
}

// AddImpliesNotGe posts b = 0 ⇒ e ≥ rhs.
func (m *Model) AddImpliesNotGe(b VarID, e LinExpr, rhs int64) {
	bigM := rhs - m.exprMin(e)
	if bigM <= 0 {
		return
	}
	// e + M·b ≥ rhs
	m.AddGe(e.Add(b, bigM), rhs)
}

// AddImpliesNotEq posts b = 0 ⇒ e = rhs.
func (m *Model) AddImpliesNotEq(b VarID, e LinExpr, rhs int64) {
	m.AddImpliesNotLe(b, e, rhs)
	m.AddImpliesNotGe(b, e, rhs)
}

// AddImpliesEq posts b = 1 ⇒ e = rhs.
func (m *Model) AddImpliesEq(b VarID, e LinExpr, rhs int64) {
	m.AddImpliesLe(b, e, rhs)
	m.AddImpliesGe(b, e, rhs)
}

// ReifyLe creates a fresh boolean b with b = 1 ⇔ e ≤ rhs.
func (m *Model) ReifyLe(name string, e LinExpr, rhs int64) VarID {
	b := m.NewBool(name)
	m.AddImpliesLe(b, e, rhs) // b ⇒ e ≤ rhs
	// ¬b ⇒ e ≥ rhs+1: e ≥ rhs+1 - M·b.
	bigM := rhs + 1 - m.exprMin(e)
	if bigM > 0 {
		m.AddGe(e.Add(b, bigM), rhs+1)
	} else {
		// e ≥ rhs+1 always: b is forced... e ≤ rhs never holds.
		m.AddEq(VarExpr(b), 0)
	}
	return b
}

// ReifyEq creates a fresh boolean b with b = 1 ⇔ e = rhs.
func (m *Model) ReifyEq(name string, e LinExpr, rhs int64) VarID {
	le := m.ReifyLe(name+"/le", e, rhs)
	ge := m.ReifyLe(name+"/ge", negate(e), -rhs)
	b := m.NewBool(name)
	m.AddBoolAnd(b, le, ge)
	return b
}

func negate(e LinExpr) LinExpr {
	out := LinExpr{Const: -e.Const, Terms: make([]Term, len(e.Terms))}
	for i, t := range e.Terms {
		out.Terms[i] = Term{t.Var, -t.Coeff}
	}
	return out
}

// AtLeastOne posts Σ bs ≥ 1.
func (m *Model) AtLeastOne(bs ...VarID) { m.AddGe(Sum(bs...), 1) }

// ExactlyOne posts Σ bs = 1.
func (m *Model) ExactlyOne(bs ...VarID) { m.AddEq(Sum(bs...), 1) }

// AddBoolOr posts target = OR(bs).
func (m *Model) AddBoolOr(target VarID, bs ...VarID) {
	for _, b := range bs {
		// b ≤ target
		m.AddLe(VarExpr(b).Add(target, -1), 0)
	}
	// target ≤ Σ bs
	e := VarExpr(target)
	for _, b := range bs {
		e = e.Add(b, -1)
	}
	m.AddLe(e, 0)
}

// AddBoolAnd posts target = AND(bs).
func (m *Model) AddBoolAnd(target VarID, bs ...VarID) {
	for _, b := range bs {
		// target ≤ b
		m.AddLe(VarExpr(target).Add(b, -1), 0)
	}
	// target ≥ Σ bs - (n-1)
	e := VarExpr(target)
	for _, b := range bs {
		e = e.Add(b, -1)
	}
	m.AddGe(e, 1-int64(len(bs)))
}

// AddBoolNot posts target = ¬b.
func (m *Model) AddBoolNot(target, b VarID) {
	m.AddEq(VarExpr(target).Add(b, 1), 1)
}

// Minimize sets the objective to minimize e.
func (m *Model) Minimize(e LinExpr) {
	m.obj = e
	m.hasObj = true
}

// Maximize sets the objective to maximize e.
func (m *Model) Maximize(e LinExpr) {
	m.Minimize(negate(e))
}

// HasObjective reports whether an objective was set.
func (m *Model) HasObjective() bool { return m.hasObj }

// Eval computes the value of e under an assignment.
func Eval(e LinExpr, values []int64) int64 {
	v := e.Const
	for _, t := range e.Terms {
		v += t.Coeff * values[t.Var]
	}
	return v
}

// Check verifies an assignment against every constraint, returning the
// first violated row description, or "" if feasible. Intended for tests.
func (m *Model) Check(values []int64) string {
	for i, v := range values {
		if v < m.lo[i] || v > m.hi[i] {
			return fmt.Sprintf("var %s=%d outside [%d,%d]", m.names[i], v, m.lo[i], m.hi[i])
		}
	}
	for ci, c := range m.cons {
		s := int64(0)
		for _, t := range c.terms {
			s += t.Coeff * values[t.Var]
		}
		if s > c.rhs {
			return fmt.Sprintf("constraint %d: %d > %d", ci, s, c.rhs)
		}
	}
	return ""
}

// Fingerprint returns a structural FNV-1a hash of the model: variable
// count and bounds, every normalized constraint row (variables,
// coefficients, right-hand side) and the objective. Identical models hash
// identically, so anything seeded from the fingerprint (the restart RNG)
// stays deterministic; models differing in structure — not just name
// strings — almost surely hash apart even when their constraint counts
// coincide.
func (m *Model) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(m.lo)))
	for i := range m.lo {
		mix(uint64(m.lo[i]))
		mix(uint64(m.hi[i]))
	}
	mix(uint64(len(m.cons)))
	for _, c := range m.cons {
		mix(uint64(len(c.terms)))
		for _, t := range c.terms {
			mix(uint64(t.Var))
			mix(uint64(t.Coeff))
		}
		mix(uint64(c.rhs))
	}
	if m.hasObj {
		mix(uint64(len(m.obj.Terms)) + 1)
		for _, t := range m.obj.Terms {
			mix(uint64(t.Var))
			mix(uint64(t.Coeff))
		}
		mix(uint64(m.obj.Const))
	}
	return h
}

// objRange returns the min/max of the objective under declared bounds.
func (m *Model) objRange() (int64, int64) {
	if !m.hasObj {
		return 0, 0
	}
	return m.exprMin(m.obj), m.exprMax(m.obj)
}
