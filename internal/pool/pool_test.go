package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 3, 8, 0} {
		out, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			// Finish in roughly reverse order to stress completion-order
			// independence.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int64
	_, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
		cur := atomic.AddInt64(&active, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		atomic.AddInt64(&active, -1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestMapPanicCapture(t *testing.T) {
	out, err := Map(context.Background(), 4, 8, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 5 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("panic error incomplete: %+v", pe)
	}
	if out == nil {
		t.Error("results dropped on panic")
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Every call fails; the reported error must be index 0's regardless of
	// completion order.
	err := ForEach(context.Background(), 4, 16, func(_ context.Context, i int) error {
		time.Sleep(time.Duration(16-i) * 50 * time.Microsecond)
		return fmt.Errorf("task %d failed", i)
	})
	if err == nil || err.Error() != "task 0 failed" {
		t.Errorf("err = %v, want task 0's error", err)
	}
}

func TestMapCancellation(t *testing.T) {
	var started int64
	block := make(chan struct{})
	var once sync.Once
	err := ForEach(context.Background(), 2, 100, func(ctx context.Context, i int) error {
		atomic.AddInt64(&started, 1)
		if i == 0 {
			once.Do(func() { close(block) })
			return errors.New("first failure")
		}
		<-block
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	// Cancellation must stop the feed: far fewer than 100 tasks may start.
	if s := atomic.LoadInt64(&started); s == 100 {
		t.Errorf("all %d tasks started despite early failure", s)
	}
}

func TestMapParentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 10, func(ctx context.Context, i int) (int, error) {
		return i, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Errorf("empty Map = %v, %v", out, err)
	}
}

func TestWorkersClamp(t *testing.T) {
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8,3) = %d", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Errorf("Workers(2,100) = %d", w)
	}
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0,100) = %d", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Errorf("Workers(-1,0) = %d", w)
	}
}
