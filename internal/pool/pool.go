// Package pool implements the bounded worker pool behind the parallel
// evaluation engine: N-wide fan-out over an indexed work list with results
// merged back in index order, so callers produce byte-identical output at
// any worker count. Scenario runs are embarrassingly parallel — every run
// owns its network, executor and RNG streams — which makes index-ordered
// result slots the only synchronization the sweeps need.
//
// The pool captures worker panics (a panicking scenario must not take the
// whole sweep down with an opaque crash), honors context cancellation, and
// reports the error of the *lowest* failed index rather than the first
// failure in completion order, keeping even the error path deterministic.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// PanicError wraps a panic recovered from a worker, preserving the work
// index, the panic value and the goroutine stack.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Workers clamps a requested worker count: values ≤ 0 mean "one worker per
// CPU" (runtime.NumCPU), and the count never exceeds n, the number of work
// items.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the n results in index order — never in completion order —
// so the output is independent of scheduling. A fn error or panic cancels
// the context handed to the remaining calls; already-running calls still
// complete and their results are kept. The returned error is the error of
// the lowest failed index (a recovered panic surfaces as *PanicError).
//
// fn must be safe for concurrent invocation; distinct calls never share a
// result slot.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	workers = Workers(workers, n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				run(ctx, i, fn, results, errs)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Unstarted items report the cancellation cause.
			errs[i] = ctx.Err()
		}
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// run executes one work item, converting a panic into a *PanicError in the
// item's error slot.
func run[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error), results []T, errs []error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 64<<10)
			errs[i] = &PanicError{Index: i, Value: v, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	results[i], errs[i] = fn(ctx, i)
}

// ForEach is Map for work that communicates only through side effects
// (each call writing its own pre-allocated slot): it runs fn(ctx, i) for
// every i in [0, n) on at most workers goroutines with the same
// cancellation, panic-capture and lowest-index error semantics.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
