package topology

// Abilene returns the 11-node Abilene (Internet2) backbone used by the
// paper's case study (§6, Fig. 1, Fig. 6). Link weights approximate the
// historical Abilene IGP metrics scaled to small integers; delays follow the
// default weight-derived rule, standing in for the geographic distances the
// paper's testbed emulated with a delay server.
func Abilene() *Graph {
	g := New("Abilene")
	names := []string{
		"NewYork", "Chicago", "WashingtonDC", "Seattle", "Sunnyvale",
		"LosAngeles", "Denver", "KansasCity", "Houston", "Atlanta",
		"Indianapolis",
	}
	ids := make(map[string]NodeID, len(names))
	for _, n := range names {
		ids[n] = g.AddRouter(n)
	}
	type edge struct {
		a, b string
		w    float64
	}
	edges := []edge{
		{"NewYork", "Chicago", 10},
		{"NewYork", "WashingtonDC", 3},
		{"Chicago", "Indianapolis", 3},
		{"WashingtonDC", "Atlanta", 7},
		{"Seattle", "Sunnyvale", 9},
		{"Seattle", "Denver", 13},
		{"Sunnyvale", "LosAngeles", 5},
		{"Sunnyvale", "Denver", 12},
		{"LosAngeles", "Houston", 15},
		{"Denver", "KansasCity", 7},
		{"KansasCity", "Houston", 9},
		{"KansasCity", "Indianapolis", 6},
		{"Houston", "Atlanta", 12},
		{"Atlanta", "Indianapolis", 8},
	}
	for _, e := range edges {
		g.AddLink(ids[e.a], ids[e.b], e.w)
	}
	return g
}
