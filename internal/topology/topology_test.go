package topology

import (
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := New("test")
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	e := g.AddExternal("ext", 65001)
	g.AddLink(a, b, 5)
	g.AddLink(b, e, 1)

	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if got := g.Internal(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Internal = %v", got)
	}
	if got := g.Externals(); len(got) != 1 || got[0] != e {
		t.Errorf("Externals = %v", got)
	}
	if id, ok := g.NodeByName("b"); !ok || id != b {
		t.Errorf("NodeByName(b) = %v, %v", id, ok)
	}
	if _, ok := g.NodeByName("zzz"); ok {
		t.Error("NodeByName(zzz) should not exist")
	}
	if nbs := g.Neighbors(b); len(nbs) != 2 || nbs[0] != a || nbs[1] != e {
		t.Errorf("Neighbors(b) = %v", nbs)
	}
	if l, ok := g.LinkBetween(a, b); !ok || l.Weight != 5 {
		t.Errorf("LinkBetween(a,b) = %v, %v", l, ok)
	}
	if _, ok := g.LinkBetween(a, e); ok {
		t.Error("LinkBetween(a,ext) should not exist")
	}
	if !g.Connected() {
		t.Error("graph should be connected")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node name")
		}
	}()
	g := New("dup")
	g.AddRouter("x")
	g.AddRouter("x")
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	g := New("loop")
	a := g.AddRouter("a")
	g.AddLink(a, a, 1)
}

func TestConnectedDetectsPartition(t *testing.T) {
	g := New("part")
	g.AddRouter("a")
	g.AddRouter("b")
	if g.Connected() {
		t.Error("two isolated routers must not be connected")
	}
}

func TestAbilene(t *testing.T) {
	g := Abilene()
	if n := len(g.Internal()); n != 11 {
		t.Fatalf("Abilene has %d internal routers, want 11", n)
	}
	if len(g.Links()) != 14 {
		t.Fatalf("Abilene has %d links, want 14", len(g.Links()))
	}
	if !g.Connected() {
		t.Fatal("Abilene must be connected")
	}
}

func TestZooCorpusSize(t *testing.T) {
	names := ZooNames()
	if len(names) < 106 {
		t.Fatalf("corpus has %d topologies, want >= 106", len(names))
	}
}

func TestZooNamedSizes(t *testing.T) {
	// Exact node counts the paper reports (Table 2, §7, App. C).
	want := map[string]int{
		"Deltacom": 113, "Ion": 125, "Pern": 127, "TataNld": 145,
		"Colt": 153, "UsCarrier": 158, "Cogentco": 197, "Kdl": 754,
		"Abilene": 11,
	}
	for name, size := range want {
		got, ok := ZooSize(name)
		if !ok || got != size {
			t.Errorf("ZooSize(%s) = %d, %v; want %d", name, got, ok, size)
		}
		g := MustZoo(name)
		if n := len(g.Internal()); n != size {
			t.Errorf("Zoo(%s) has %d routers, want %d", name, n, size)
		}
	}
}

func TestZooDeterministic(t *testing.T) {
	a := MustZoo("Cogentco")
	b := MustZoo("Cogentco")
	if len(a.Links()) != len(b.Links()) {
		t.Fatalf("non-deterministic link count: %d vs %d", len(a.Links()), len(b.Links()))
	}
	for i, la := range a.Links() {
		lb := b.Links()[i]
		if la != lb {
			t.Fatalf("link %d differs: %v vs %v", i, la, lb)
		}
	}
}

func TestZooUnknown(t *testing.T) {
	if _, err := Zoo("NoSuchTopology"); err == nil {
		t.Fatal("expected error for unknown topology")
	}
}

func TestZooAllConnected(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep skipped in -short")
	}
	for _, name := range ZooNames() {
		g := MustZoo(name)
		if !g.Connected() {
			t.Errorf("%s is not connected", name)
		}
		size, _ := ZooSize(name)
		if got := len(g.Internal()); got != size {
			t.Errorf("%s: %d routers, want %d", name, got, size)
		}
	}
}

func TestSyntheticProperties(t *testing.T) {
	// Property: for any size and seed, Synthetic yields a connected graph
	// with n-1 <= links <= n-1 + n/4.
	f := func(rawN uint8, seed uint64) bool {
		n := int(rawN)%80 + 2
		g := Synthetic("prop", n, seed)
		links := len(g.Links())
		return g.Connected() && links >= n-1 && links <= n-1+n/4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
