// Package topology models the physical network graph on which BGP and the
// IGP operate: internal routers, external (eBGP) neighbors, and weighted
// point-to-point links with propagation delays.
//
// The package also embeds a corpus of evaluation topologies mirroring the
// Topology Zoo dataset used in the paper (see zoo.go) and the real Abilene
// backbone used by the case study (see abilene.go).
package topology

import (
	"fmt"
	"sort"
	"time"
)

// NodeID identifies a node (internal router or external network) in a Graph.
// IDs are dense indices assigned in insertion order.
type NodeID int

// None is the sentinel for "no node", used e.g. for absent next hops.
const None NodeID = -1

// Node is a single vertex of the network graph.
type Node struct {
	ID       NodeID
	Name     string
	External bool   // true for eBGP neighbors outside the network under control
	ASN      uint32 // autonomous system number (internal nodes share the local ASN)
}

// Link is an undirected weighted edge between two nodes. Weight is the IGP
// metric; Delay is the one-way propagation delay used by the simulator.
type Link struct {
	A, B   NodeID
	Weight float64
	Delay  time.Duration
}

// LocalASN is the autonomous system number used for all internal routers.
const LocalASN uint32 = 65000

// Graph is the network under reconfiguration. It is a plain data structure:
// mutation is only supported through the Add* methods, and all read accessors
// are safe for concurrent use once construction has finished.
type Graph struct {
	Name  string
	nodes []Node
	links []Link
	adj   [][]int // node -> indices into links
	index map[string]NodeID
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, index: make(map[string]NodeID)}
}

// AddRouter adds an internal router and returns its ID. Adding a duplicate
// name panics: topology construction errors are programming errors.
func (g *Graph) AddRouter(name string) NodeID {
	return g.add(Node{Name: name, External: false, ASN: LocalASN})
}

// AddExternal adds an external eBGP neighbor belonging to the given AS.
func (g *Graph) AddExternal(name string, asn uint32) NodeID {
	return g.add(Node{Name: name, External: true, ASN: asn})
}

func (g *Graph) add(n Node) NodeID {
	if _, dup := g.index[n.Name]; dup {
		panic(fmt.Sprintf("topology: duplicate node name %q", n.Name))
	}
	n.ID = NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	g.index[n.Name] = n.ID
	return n.ID
}

// AddLink connects a and b with the given IGP weight and a delay derived
// from the weight (1 ms per weight unit) unless overridden via AddLinkDelay.
func (g *Graph) AddLink(a, b NodeID, weight float64) {
	g.AddLinkDelay(a, b, weight, time.Duration(weight)*time.Millisecond)
}

// AddLinkDelay connects a and b with an explicit propagation delay.
func (g *Graph) AddLinkDelay(a, b NodeID, weight float64, delay time.Duration) {
	if !g.valid(a) || !g.valid(b) {
		panic(fmt.Sprintf("topology: AddLink with invalid node (%d, %d)", a, b))
	}
	if a == b {
		panic("topology: self-loop links are not allowed")
	}
	idx := len(g.links)
	g.links = append(g.links, Link{A: a, B: b, Weight: weight, Delay: delay})
	g.adj[a] = append(g.adj[a], idx)
	g.adj[b] = append(g.adj[b], idx)
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// NumNodes returns the total node count (internal + external).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Nodes returns all nodes in ID order. The returned slice must not be
// modified.
func (g *Graph) Nodes() []Node { return g.nodes }

// Links returns all links. The returned slice must not be modified.
func (g *Graph) Links() []Link { return g.links }

// NodeByName looks a node up by name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.index[name]
	return id, ok
}

// MustNode looks a node up by name and panics if absent.
func (g *Graph) MustNode(name string) NodeID {
	id, ok := g.index[name]
	if !ok {
		panic(fmt.Sprintf("topology: unknown node %q", name))
	}
	return id
}

// Internal returns the IDs of all internal routers, in ID order.
func (g *Graph) Internal() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if !n.External {
			out = append(out, n.ID)
		}
	}
	return out
}

// Externals returns the IDs of all external networks, in ID order.
func (g *Graph) Externals() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.External {
			out = append(out, n.ID)
		}
	}
	return out
}

// Neighbors returns the IDs of the nodes adjacent to n, sorted by ID.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	var out []NodeID
	for _, li := range g.adj[n] {
		l := g.links[li]
		if l.A == n {
			out = append(out, l.B)
		} else {
			out = append(out, l.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkBetween returns the first link joining a and b, if any.
func (g *Graph) LinkBetween(a, b NodeID) (Link, bool) {
	for _, li := range g.adj[a] {
		l := g.links[li]
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l, true
		}
	}
	return Link{}, false
}

// IncidentLinks returns the indices (into Links()) of the links touching n.
func (g *Graph) IncidentLinks(n NodeID) []int { return g.adj[n] }

// Connected reports whether all internal routers form a single connected
// component when only internal-internal links are considered.
func (g *Graph) Connected() bool {
	internal := g.Internal()
	if len(internal) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{internal[0]}
	seen[internal[0]] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range g.Neighbors(n) {
			if g.nodes[m].External || seen[m] {
				continue
			}
			seen[m] = true
			count++
			stack = append(stack, m)
		}
	}
	return count == len(internal)
}

// String renders a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes (%d internal), %d links",
		g.Name, len(g.nodes), len(g.Internal()), len(g.links))
}
