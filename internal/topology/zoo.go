package topology

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
)

// zooSizes lists the evaluation corpus: 106 wide-area topologies with the
// node counts the paper reports (exact for the topologies named in Table 2,
// App. C and §7; Zoo-typical for the rest). The graphs themselves are
// generated deterministically (see Zoo) because the Topology Zoo dataset is
// not bundled; DESIGN.md documents this substitution.
var zooSizes = map[string]int{
	// Named in the paper.
	"Abilene": 11, "Deltacom": 113, "Ion": 125, "Pern": 127,
	"TataNld": 145, "Colt": 153, "UsCarrier": 158, "Cogentco": 197,
	"Kdl":        754,
	"Compuserve": 11, "HiberniaCanada": 12, "Sprint": 11,
	"JGN2plus": 12, "EEnet": 12,
	// Remainder of the corpus (Topology-Zoo-typical names and sizes).
	"Aarnet": 19, "Abvt": 23, "Aconet": 23, "Agis": 25, "AttMpls": 25,
	"Ans": 18, "Arnes": 34, "Arpanet196912": 4, "Arpanet19728": 29,
	"AsnetAm": 65, "Atmnet": 21, "Azrena": 22, "Bandcon": 22,
	"Basnet": 7, "Bbnplanet": 27, "Bellcanada": 48, "Bellsouth": 51,
	"Belnet2010": 15, "Bics": 33, "Biznet": 29, "Bren": 37,
	"BtAsiaPac": 20, "BtEurope": 24, "BtNorthAmerica": 36, "Canerie": 32,
	"Carnet": 44, "Cernet": 41, "Cesnet201006": 52, "Chinanet": 42,
	"Claranet": 15, "Columbus": 70, "Cudi": 51, "Cwix": 36,
	"Cynet": 30, "Darkstrand": 28, "Dataxchange": 6, "Dfn": 58,
	"DialtelecomCz": 138, "Digex": 31, "Easynet": 19, "Eli": 20,
	"Epoch": 6, "Ernet": 30, "Esnet": 68, "Eunetworks": 15,
	"Evolink": 37, "Fatman": 17, "Fccn": 23, "Forthnet": 62,
	"Funet": 26, "Gambia": 28, "Garr201201": 61, "Geant2012": 40,
	"Getnet": 7, "Globalcenter": 9, "Globenet": 67, "Goodnet": 17,
	"Grena": 16, "Gridnet": 9, "Grnet": 37, "GtsCe": 149,
	"GtsCzechRepublic": 32, "GtsHungary": 30, "GtsPoland": 33,
	"GtsRomania": 21, "GtsSlovakia": 35, "Harnet": 21, "Heanet": 7,
	"HiberniaGlobal": 55, "HiberniaIreland": 8, "HiberniaUk": 15,
	"HiberniaUs": 22, "Highwinds": 18, "HostwayInternational": 16,
	"HurricaneElectric": 24, "Ibm": 18, "Iij": 37, "Iinet": 31,
	"Ilan": 14, "Integra": 27, "Intellifiber": 73, "Internode": 66,
	"Interoute": 110, "Intranetwork": 39, "Ntt": 47, "Oteglobe": 93,
	"Oxford": 20, "Pacificwave": 18, "Palmetto": 45, "Peer1": 16,
	"Pionier": 36, "Psinet": 24, "Quest": 20, "RedBestel": 84,
	"Rediris": 19, "Renater2010": 43, "Reuna": 37, "Rhnet": 16,
	"Roedunet": 48, "Sanet": 43, "Sanren": 7, "Shentel": 28,
	"Sinet": 74, "Surfnet": 50, "Switch": 74, "Syringa": 74,
	"Tinet": 53, "Tw": 76, "Ulaknet": 82, "UniC": 25,
	"Uninett2010": 74, "Vtlwavenet2011": 92, "WideJpn": 30, "Xspedius": 34,
	"York": 23, "Zamren": 36,
}

// ZooNames returns the names of all corpus topologies, sorted.
func ZooNames() []string {
	out := make([]string, 0, len(zooSizes))
	for name := range zooSizes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ZooSize returns the internal-router count of the named corpus topology.
func ZooSize(name string) (int, bool) {
	n, ok := zooSizes[name]
	return n, ok
}

// Zoo returns the named corpus topology. Abilene is the hand-embedded real
// backbone; all other corpus entries are deterministic synthetic graphs with
// the recorded node count and Topology-Zoo-like sparsity (average degree
// ~2.4, single connected component). The same name always yields the same
// graph.
func Zoo(name string) (*Graph, error) {
	size, ok := zooSizes[name]
	if !ok {
		return nil, fmt.Errorf("topology: unknown zoo topology %q", name)
	}
	if name == "Abilene" {
		return Abilene(), nil
	}
	return Synthetic(name, size, seedFor(name)), nil
}

// MustZoo is Zoo but panics on unknown names, for tests and examples.
func MustZoo(name string) *Graph {
	g, err := Zoo(name)
	if err != nil {
		panic(err)
	}
	return g
}

func seedFor(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Synthetic generates a deterministic connected graph of n internal routers
// with Topology-Zoo-like sparsity. The construction is a random recursive
// tree (guaranteeing connectivity) augmented with ~0.25·n shortcut edges,
// which matches the sparse, hub-and-spine structure of wide-area ISP maps.
func Synthetic(name string, n int, seed uint64) *Graph {
	if n < 1 {
		panic("topology: Synthetic needs n >= 1")
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	g := New(name)
	for i := 0; i < n; i++ {
		g.AddRouter(fmt.Sprintf("%s_r%02d", name, i))
	}
	weight := func() float64 { return float64(1 + rng.IntN(10)) }
	// Random recursive tree with mild preferential attachment: routers join
	// by connecting to a previous router, biased towards low indices so a
	// few hubs emerge, as in real ISP topologies.
	for i := 1; i < n; i++ {
		parent := i - 1
		if i > 1 {
			a, b := rng.IntN(i), rng.IntN(i)
			parent = min(a, b)
		}
		g.AddLink(NodeID(i), NodeID(parent), weight())
	}
	// Shortcut edges up to average degree ~2.4.
	extra := n / 4
	for k := 0; k < extra; k++ {
		a := NodeID(rng.IntN(n))
		b := NodeID(rng.IntN(n))
		if a == b {
			continue
		}
		if _, dup := g.LinkBetween(a, b); dup {
			continue
		}
		g.AddLink(a, b, weight())
	}
	return g
}
