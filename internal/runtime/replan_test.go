package runtime_test

import (
	"errors"
	"testing"

	"chameleon/internal/eval"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// TestReplanErrorAttribution checks that a Monitor alarm under ReactReplan
// surfaces as a structured ReplanError naming the firing invariant (via
// Options.Diagnose) and stamped with prefix and simulated time — while
// remaining errors.Is-compatible with the bare sentinel.
func TestReplanErrorAttribution(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eval.BuildPipeline(s, eval.SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.DefaultOptions(7)
	fired := false
	opts.Monitor = func(*sim.Network) bool {
		if fired {
			return true
		}
		fired = true
		return false
	}
	opts.Diagnose = func(*sim.Network) string { return "reach-all" }
	opts.Reaction = runtime.ReactReplan
	ex := runtime.NewExecutor(s.Net, opts)
	_, err = ex.Execute(pl.Plan)
	if err == nil {
		t.Fatal("expected a replan error")
	}
	if !errors.Is(err, runtime.ErrReplanNeeded) {
		t.Fatalf("errors.Is(err, ErrReplanNeeded) = false for %v", err)
	}
	var re *runtime.ReplanError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(*ReplanError) = false for %T %v", err, err)
	}
	if re.Invariant != "reach-all" {
		t.Errorf("Invariant = %q, want %q", re.Invariant, "reach-all")
	}
	if re.Prefix != s.Prefix {
		t.Errorf("Prefix = %v, want %v", re.Prefix, s.Prefix)
	}
	if re.SimTime <= 0 {
		t.Errorf("SimTime = %v, want > 0", re.SimTime)
	}
	if re.Cause != nil {
		t.Errorf("Cause = %v, want nil for a monitor alarm", re.Cause)
	}
}

// TestReplanErrorCarriesEscalationCause checks that an exhausted escalation
// ladder under ReactReplan wraps the ladder's error as Cause.
func TestReplanErrorCarriesEscalationCause(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eval.BuildPipeline(s, eval.SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.DefaultOptions(7)
	opts.Reaction = runtime.ReactReplan
	ex := runtime.NewExecutor(s.Net, opts)
	s.Net.SetFaultInjector(dropAll{})
	defer s.Net.SetFaultInjector(nil)
	_, err = ex.Execute(pl.Plan)
	if err == nil {
		t.Fatal("expected the ladder to exhaust under total command loss")
	}
	var re *runtime.ReplanError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(*ReplanError) = false for %T %v", err, err)
	}
	if re.Cause == nil {
		t.Error("Cause = nil, want the escalation-ladder error")
	}
}

// dropAll loses every command, never any message.
type dropAll struct{}

func (dropAll) CommandFault(_ topology.NodeID, _ string, _ int) sim.CommandFault {
	return sim.CommandFault{Kind: sim.FaultDrop}
}
func (dropAll) MessageFault(_, _ topology.NodeID) sim.MessageFault {
	return sim.MessageFault{Kind: sim.FaultNone}
}

// TestAbortIdempotent is the double-Abort regression test: aborting the same
// plan twice must run its cleanup commands exactly once.
func TestAbortIdempotent(t *testing.T) {
	s := scenario.RunningExample()
	s.Net.Run()
	applies := 0
	p := &plan.Plan{
		Prefix: s.Prefix,
		Cleanup: []plan.Step{{
			Command: sim.Command{
				Node:        s.E1,
				Description: "remove temp override",
				Apply:       func(*sim.Network) { applies++ },
			},
		}},
	}
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	ex.Abort(p)
	ex.Abort(p)
	if applies != 1 {
		t.Fatalf("cleanup applied %d times across a double Abort, want 1", applies)
	}
	// A different plan is a different release: its cleanup still runs.
	other := &plan.Plan{Prefix: s.Prefix, Cleanup: p.Cleanup}
	ex.Abort(other)
	if applies != 2 {
		t.Fatalf("cleanup applied %d times after aborting a second plan, want 2", applies)
	}
}
