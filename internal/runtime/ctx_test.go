package runtime_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
)

// TestExecuteCtxCancelMidRound cancels the context from inside the
// simulation — at t=20 s, after setup and inside round 1 — and expects the
// executor to stop at its next supervision poll with the context's error.
// The recorder must still come out well-formed: the deferred teardown ends
// the phase and execute spans even on the error path.
func TestExecuteCtxCancelMidRound(t *testing.T) {
	s := scenario.RunningExample()
	_, _, p := pipeline(t, s, reachSpec(s.Graph))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.New()
	opts := runtime.DefaultOptions(1)
	opts.Recorder = rec
	opts.ExternalEvents = []runtime.ScheduledEvent{{
		After: 20 * time.Second, Name: "cancel",
		Apply: func(*sim.Network) { cancel() },
	}}
	ex := runtime.NewExecutor(s.Net, opts)
	_, err := ex.ExecuteCtx(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx = %v, want context.Canceled", err)
	}
	if err := rec.Validate(); err != nil {
		t.Errorf("trace after mid-round cancellation ill-formed: %v", err)
	}
	names := rec.SpanNames()
	if len(names) == 0 || names[0] != "execute" {
		t.Fatalf("span names = %v, want execute first", names)
	}
	// The cancel fired inside round 1; later rounds must never have
	// started.
	for _, name := range names {
		if name == "round 2" {
			t.Errorf("round 2 span recorded after mid-round-1 cancellation: %v", names)
		}
	}
}

// TestExecuteCtxPreCancelled: an already-cancelled context stops the
// executor before any command is pushed.
func TestExecuteCtxPreCancelled(t *testing.T) {
	s := scenario.RunningExample()
	_, _, p := pipeline(t, s, reachSpec(s.Graph))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := obs.New()
	opts := runtime.DefaultOptions(1)
	opts.Recorder = rec
	ex := runtime.NewExecutor(s.Net, opts)
	if _, err := ex.ExecuteCtx(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx = %v, want context.Canceled", err)
	}
	counters := rec.Counters()
	if n := counters[obs.CtrExecCommandsPushed]; n != 0 {
		t.Errorf("%d commands pushed under a pre-cancelled context, want 0", n)
	}
}
