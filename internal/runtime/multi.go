package runtime

import (
	"context"
	"fmt"

	"chameleon/internal/obs"
	"chameleon/internal/plan"
	"chameleon/internal/sim"
)

// ExecuteMulti runs a multi-destination reconfiguration (§5): all plans'
// setup phases first, then the update phases of every destination in
// parallel — advancing each destination's rounds only up to the point the
// next original command requires, applying that command, and continuing —
// and finally all cleanup phases. It is ExecuteMultiCtx under
// context.Background().
func (e *Executor) ExecuteMulti(mp *plan.MultiPlan) (*Result, error) {
	return e.ExecuteMultiCtx(context.Background(), mp)
}

// ExecuteMultiCtx is ExecuteMulti with a context: cancellation is polled in
// every supervision loop (per simulated event), and a recorder — from
// Options.Recorder or, failing that, the context — receives an "execute"
// span tree stamped with the simulated clock, exactly as in ExecuteCtx.
func (e *Executor) ExecuteMultiCtx(ctx context.Context, mp *plan.MultiPlan) (*Result, error) {
	if !e.net.Converged() {
		return nil, fmt.Errorf("runtime: network not converged at start")
	}
	e.ctx = ctx
	e.obsRec = e.opts.Recorder
	if e.obsRec == nil {
		e.obsRec = obs.RecorderFrom(ctx)
	}
	if e.obsRec != nil {
		// The simulated clock is the only time source a trace may carry —
		// wall clock would break byte-identical reproducibility.
		e.obsRec.SetClock(e.net.Now)
		e.net.SetRecorder(e.obsRec)
		e.execSpan = e.obsRec.StartSpan(obs.SpanFrom(ctx), "execute")
		defer func() {
			e.execSpan.End()
			e.obsRec.SetClock(nil)
			e.net.SetRecorder(nil)
			e.net.SetObsSpan(nil)
			e.execSpan = nil
			e.phaseSpan = nil
			e.obsRec = nil
		}()
	}
	defer func() { e.ctx = nil }()
	e.beginRun()
	res := &Result{Start: e.net.Now()}
	e.rec = RecoveryStats{}
	for _, p := range mp.Plans {
		e.net.RecordInitialState(p.Prefix)
	}
	e.net.ResetMaxTableEntries()
	for _, ev := range e.opts.ExternalEvents {
		ev := ev
		// Each external event roots its own causal chain.
		e.net.ScheduleEventAt(res.Start+ev.After, ev.Name, func(n *sim.Network) { ev.Apply(n) })
	}

	phase := func(name string, f func() error) error {
		start := e.net.Now()
		if err := f(); err != nil {
			return fmt.Errorf("runtime: %s: %w", name, err)
		}
		res.Phases = append(res.Phases, PhaseSpan{Name: name, Start: start, End: e.net.Now()})
		return nil
	}

	// Setup of every destination.
	if err := phase("setup", func() error {
		for _, p := range mp.Plans {
			if err := e.runSteps(p, p.Setup); err != nil {
				return err
			}
			res.CommandsApplied += len(p.Setup)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Update phases, aligned on the original commands.
	next := make([]int, len(mp.Plans)) // next round (1-based) to run per plan
	for i := range next {
		next[i] = 1
	}
	runUntil := func(i, target int) error {
		p := mp.Plans[i]
		for ; next[i] <= target && next[i] <= p.R; next[i]++ {
			name := fmt.Sprintf("d%d round %d", int(p.Prefix), next[i])
			if err := phase(name, func() error {
				res.CommandsApplied += len(p.Rounds[next[i]-1])
				return e.runSteps(p, p.Rounds[next[i]-1])
			}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ci := range mp.Order {
		for i, p := range mp.Plans {
			if err := runUntil(i, p.OriginalSlots[ci]); err != nil {
				return nil, err
			}
		}
		// Originals go through the same supervised, self-healing push as
		// the Between slots of a single-destination plan.
		if err := e.applyOriginals([]sim.Command{mp.Originals[ci]}, res); err != nil {
			return nil, err
		}
	}
	for i, p := range mp.Plans {
		if err := runUntil(i, p.R); err != nil {
			return nil, err
		}
	}

	// Cleanup of every destination.
	if err := phase("cleanup", func() error {
		for _, p := range mp.Plans {
			if err := e.runSteps(p, p.Cleanup); err != nil {
				return err
			}
			res.CommandsApplied += len(p.Cleanup)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	e.net.Run()
	res.End = e.net.Now()
	res.MaxTableEntries = e.net.MaxTableEntries()
	res.Recovery = e.rec
	return res, nil
}

// ExecuteSplit is the §5 fallback for conflicting command orders: the
// reconfiguration is split into per-command steps (ordered by the caller,
// e.g. via snowcap.Synthesize) and each step gets its own full Chameleon
// pipeline, planned by the supplied planner on the then-current network.
func (e *Executor) ExecuteSplit(order []int, originals []sim.Command,
	planNext func(cmd sim.Command) (*plan.Plan, error)) (*Result, error) {
	res := &Result{Start: e.net.Now()}
	for _, idx := range order {
		if idx < 0 || idx >= len(originals) {
			return nil, fmt.Errorf("runtime: split order index %d out of range", idx)
		}
		p, err := planNext(originals[idx])
		if err != nil {
			return nil, fmt.Errorf("runtime: planning split step %d: %w", idx, err)
		}
		step, err := e.Execute(p)
		if err != nil {
			return nil, fmt.Errorf("runtime: executing split step %d: %w", idx, err)
		}
		res.Phases = append(res.Phases, step.Phases...)
		res.CommandsApplied += step.CommandsApplied
		res.Committed = res.Committed || step.Committed
		res.Recovery.Retries += step.Recovery.Retries
		res.Recovery.Repushes += step.Recovery.Repushes
		res.Recovery.Escalations += step.Recovery.Escalations
		res.Recovery.AcksLost += step.Recovery.AcksLost
		res.Recovery.MonitorAlarms += step.Recovery.MonitorAlarms
		if step.MaxTableEntries > res.MaxTableEntries {
			res.MaxTableEntries = step.MaxTableEntries
		}
	}
	res.End = e.net.Now()
	return res, nil
}
