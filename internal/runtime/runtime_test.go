package runtime_test

import (
	"testing"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/fwd"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// pipeline runs analyze → schedule → compile for a scenario.
func pipeline(t *testing.T, s *scenario.Scenario, sp *spec.Spec) (*analyzer.Analysis, *scheduler.NodeSchedule, *plan.Plan) {
	t.Helper()
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := scheduler.Validate(a, sp, sched); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	p, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		t.Fatal(err)
	}
	return a, sched, p
}

func reachSpec(g *topology.Graph) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range g.Internal() {
		es = append(es, b.Reach(n))
	}
	return spec.NewSpec(b, b.Globally(b.And(es...)))
}

// eq4Spec builds the paper's Eq. 4 for a scenario.
func eq4Spec(a *analyzer.Analysis, e1 topology.NodeID) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range a.Graph.Internal() {
		es = append(es, b.Globally(b.Reach(n)))
		en := a.NHNew.Egress(n)
		if en == topology.None {
			continue
		}
		es = append(es, b.Until(b.Wp(n, e1), b.Globally(b.Wp(n, en))))
	}
	return spec.NewSpec(b, b.And(es...))
}

// verifyTrace checks the message-level forwarding trace recorded by the
// simulator against the specification: every intermediate forwarding state
// the network traversed — including mid-convergence states — must satisfy
// the invariants encoded by sp (evaluated from the first recorded state).
func verifyTrace(t *testing.T, s *scenario.Scenario, sp *spec.Spec, res *runtime.Result) {
	t.Helper()
	states := executionStates(t, s, res)
	if !sp.Eval(states) {
		for i, st := range states {
			t.Logf("state %d: %v", i, st)
		}
		t.Fatal("specification violated by the executed trace")
	}
}

// executionStates extracts the forwarding states traversed during the
// plan's execution window (the trace also records the initial bring-up
// convergence, which is outside Chameleon's responsibility).
func executionStates(t *testing.T, s *scenario.Scenario, res *runtime.Result) []fwd.State {
	return executionWindow(t, s, res.Start, res.End+time.Hour)
}

// executionWindow extracts the forwarding states recorded within [from,
// to] of simulated time.
func executionWindow(t *testing.T, s *scenario.Scenario, from, to time.Duration) []fwd.State {
	t.Helper()
	tr := s.Net.Trace(s.Prefix)
	if tr == nil || len(tr.States) == 0 {
		t.Fatal("no forwarding trace recorded")
	}
	tr.Compact()
	lo, hi := from.Seconds(), to.Seconds()
	var states []fwd.State
	for i, ts := range tr.Times {
		if ts >= lo-1e-9 && ts <= hi+1e-9 {
			states = append(states, tr.States[i])
		}
	}
	if len(states) == 0 {
		states = append(states, tr.States[len(tr.States)-1])
	}
	return states
}

func TestEndToEndRunningExample(t *testing.T) {
	s := scenario.RunningExample()
	sp := reachSpec(s.Graph)
	a, sched, p := pipeline(t, s, sp)
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// The network must end in the final configuration.
	n6 := s.Graph.MustNode("n6")
	for _, n := range s.Net.Graph().Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress != n6 {
			t.Errorf("node %d ended on egress %v, want n6", n, best.Egress)
		}
	}
	verifyTrace(t, s, sp, res)
	// Every node changed its next hop at most once (§3).
	states := executionStates(t, s, res)
	for _, n := range s.Graph.Internal() {
		changes := 0
		for i := 1; i < len(states); i++ {
			if states[i][n] != states[i-1][n] {
				changes++
			}
		}
		if changes > 1 {
			t.Errorf("node %d changed its next hop %d times, want ≤ 1", n, changes)
		}
	}
	if res.Duration() <= 0 {
		t.Error("no simulated time elapsed")
	}
	t.Logf("running example executed in %v simulated (R=%d, %d commands, phases=%d)",
		res.Duration(), sched.R, res.CommandsApplied, len(res.Phases))
	_ = a
}

func TestEndToEndAbileneEq4(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	aTmp, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	sp := eq4Spec(aTmp, s.E1)
	_, sched, p := pipeline(t, s, sp)
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(7))
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	verifyTrace(t, s, sp, res)
	// No packets may ever be dropped: reachability in every recorded state.
	for i, st := range executionStates(t, s, res) {
		for _, n := range s.Graph.Internal() {
			if !st.Reach(n) {
				t.Errorf("state %d: node %d dropped traffic", i, n)
			}
		}
	}
	t.Logf("abilene executed in %v simulated, R=%d, tempSessions=%d, maxTable=%d",
		res.Duration(), sched.R, len(p.TempSessions), res.MaxTableEntries)
}

func TestEndToEndSessionRemovalVariant(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 3, RemoveSession: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	_, _, p := pipeline(t, s, sp)
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(3))
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	verifyTrace(t, s, sp, res)
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress == s.E1 {
			t.Errorf("node %d still on e1 after session removal plan", n)
		}
	}
}

func TestEndToEndMoreTopologies(t *testing.T) {
	for _, name := range []string{"Compuserve", "HiberniaCanada", "Sprint", "JGN2plus", "EEnet"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := scenario.CaseStudy(name, scenario.Config{Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			sp := reachSpec(s.Graph)
			_, _, p := pipeline(t, s, sp)
			ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(21))
			res, err := ex.Execute(p)
			if err != nil {
				t.Fatal(err)
			}
			verifyTrace(t, s, sp, res)
		})
	}
}

func TestNoTransientEBGPLeak(t *testing.T) {
	// §3: Chameleon never exports transient routes to eBGP peers. Each
	// external peer may see at most: the initial best, and the final best
	// (one change), per egress session.
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	_, _, p := pipeline(t, s, sp)
	before := s.Net.EBGPExports(s.Prefix)
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(7))
	if _, err := ex.Execute(p); err != nil {
		t.Fatal(err)
	}
	// Exports during reconfiguration: each of the ≤4 external peers may
	// learn the new best route once (plus possible withdraw/announce at
	// the egress swap). Anything beyond a small constant per peer would
	// indicate transient churn.
	delta := s.Net.EBGPExports(s.Prefix) - before
	limit := 3 * len(s.Ext)
	if delta > limit {
		t.Errorf("external peers saw %d updates during reconfiguration (> %d): transient leak", delta, limit)
	}
}

func TestExternalEventLinkFailure(t *testing.T) {
	// Fig. 11a: a link failure mid-reconfiguration triggers IGP
	// reconvergence but no invariant violation beyond the IGP transient.
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	_, _, p := pipeline(t, s, sp)
	// Fail a link not adjacent to any egress, 7 s in (as in Fig. 11a).
	var la, lb topology.NodeID = topology.None, topology.None
	for _, l := range s.Graph.Links() {
		if s.Graph.Node(l.A).External || s.Graph.Node(l.B).External {
			continue
		}
		if l.A == s.E1 || l.B == s.E1 || l.A == s.E2 || l.B == s.E2 || l.A == s.E3 || l.B == s.E3 {
			continue
		}
		la, lb = l.A, l.B
		break
	}
	if la == topology.None {
		t.Skip("no suitable link")
	}
	opts := runtime.DefaultOptions(7)
	opts.ExternalEvents = []runtime.ScheduledEvent{{
		After: 7 * time.Second,
		Name:  "link failure",
		Apply: func(n *sim.Network) {
			n.FailLink(la, lb)
			n.Run()
		},
	}}
	ex := runtime.NewExecutor(s.Net, opts)
	if _, err := ex.Execute(p); err != nil {
		t.Fatalf("link failure broke the reconfiguration: %v", err)
	}
	// After the plan completes, all nodes must be on their final egress
	// and reachable.
	st := s.Net.ForwardingState(s.Prefix)
	for _, n := range s.Graph.Internal() {
		if !st.Reach(n) {
			t.Errorf("node %d unreachable after link-failure run", n)
		}
	}
}

func TestEstimateReconfigurationTime(t *testing.T) {
	if got := runtime.EstimateReconfigurationTime(7); got != 108*time.Second {
		t.Errorf("T̃(7) = %v, want 108s", got)
	}
	if got := runtime.EstimateReconfigurationTime(0); got != 24*time.Second {
		t.Errorf("T̃(0) = %v, want 24s", got)
	}
}

func TestExecutorRequiresConvergedNetwork(t *testing.T) {
	s := scenario.RunningExample()
	sp := reachSpec(s.Graph)
	_, _, p := pipeline(t, s, sp)
	s.Net.ScheduleAfter(time.Hour, func(*sim.Network) {})
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	if _, err := ex.Execute(p); err == nil {
		t.Fatal("Execute must reject a non-converged network")
	}
}

func TestExternalEventNewRouteIgnored(t *testing.T) {
	// Fig. 11b: a better route announced mid-reconfiguration is ignored
	// until cleanup restores the original preferences; afterwards the
	// network converges to it.
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7, SpareEgress: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := reachSpec(s.Graph)
	_, _, p := pipeline(t, s, sp)
	opts := runtime.DefaultOptions(7)
	// Inject mid-update: §8's guarantee covers events against the
	// installed transient state, not ones racing the setup phase.
	opts.ExternalEvents = []runtime.ScheduledEvent{{
		After: 30 * time.Second,
		Name:  "better route at e4",
		Apply: func(n *sim.Network) {
			// Shorter AS path than every existing route: globally best.
			n.InjectExternalRoute(s.Ext4, sim.Announcement{Prefix: s.Prefix, ASPathLen: 0})
		},
	}}
	ex := runtime.NewExecutor(s.Net, opts)
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// §8: the specification is guaranteed up to the point where the
	// reconfiguration commits (cleanup restores original preferences and
	// the network performs ordinary BGP convergence to the external
	// event's new route — that convergence is outside the guarantee).
	cleanupStart := res.End
	for _, ph := range res.Phases {
		if ph.Name == "cleanup" {
			cleanupStart = ph.Start
		}
	}
	during := executionWindow(t, s, res.Start, cleanupStart)
	if !sp.Eval(during) {
		t.Error("specification violated before cleanup despite the pinned transient state")
	}
	// After cleanup, every node must prefer the new e4 route.
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress != s.E4 {
			t.Errorf("node %d ended on egress %v, want e4=%d", n, best.Egress, s.E4)
		}
	}
}
