package runtime_test

import (
	"errors"
	"strings"
	"testing"

	"chameleon/internal/analyzer"
	"chameleon/internal/eval"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// faultScript adapts closures to sim.FaultInjector for executor tests.
type faultScript struct {
	cmd func(node topology.NodeID, desc string, attempt int) sim.CommandFault
	msg func(from, to topology.NodeID) sim.MessageFault
}

func (s faultScript) CommandFault(n topology.NodeID, d string, a int) sim.CommandFault {
	if s.cmd == nil {
		return sim.CommandFault{}
	}
	return s.cmd(n, d, a)
}

func (s faultScript) MessageFault(f, t topology.NodeID) sim.MessageFault {
	if s.msg == nil {
		return sim.MessageFault{}
	}
	return s.msg(f, t)
}

// TestSelfHealingRetryOnDrop drops the first application attempt of every
// command; the executor must detect the losses via the per-command timeout,
// retry, and complete the plan with the invariants intact.
func TestSelfHealingRetryOnDrop(t *testing.T) {
	s := scenario.RunningExample()
	sp := reachSpec(s.Graph)
	_, _, p := pipeline(t, s, sp)
	s.Net.SetFaultInjector(faultScript{
		cmd: func(_ topology.NodeID, _ string, attempt int) sim.CommandFault {
			if attempt == 0 {
				return sim.CommandFault{Kind: sim.FaultDrop}
			}
			return sim.CommandFault{}
		},
	})
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatalf("execution failed despite retries: %v", err)
	}
	if res.Recovery.Retries == 0 {
		t.Error("no retries recorded although every first attempt was dropped")
	}
	if res.Recovery.Escalations != 0 {
		t.Errorf("escalations = %d, want 0 (retries suffice)", res.Recovery.Escalations)
	}
	n6 := s.Graph.MustNode("n6")
	for _, n := range s.Net.Graph().Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress != n6 {
			t.Errorf("node %d not on final egress after self-healed run", n)
		}
	}
	verifyTrace(t, s, sp, res)
}

// TestSelfHealingPartialAck loses the acknowledgment of every first
// attempt. Commands with a Verify readback must be confirmed through it
// (counted as AcksLost) without blind re-pushing; the ack-only originals
// recover via retry.
func TestSelfHealingPartialAck(t *testing.T) {
	s := scenario.RunningExample()
	sp := reachSpec(s.Graph)
	_, _, p := pipeline(t, s, sp)
	s.Net.SetFaultInjector(faultScript{
		cmd: func(_ topology.NodeID, _ string, attempt int) sim.CommandFault {
			if attempt == 0 {
				return sim.CommandFault{Kind: sim.FaultPartial}
			}
			return sim.CommandFault{}
		},
	})
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	if res.Recovery.AcksLost == 0 {
		t.Error("no lost acks recovered via readback although every step ack was lost")
	}
	verifyTrace(t, s, sp, res)
}

// TestSelfHealingEscalation makes one command fail persistently (every
// attempt dropped). The ladder must exhaust retries and re-push, then
// escalate: a visible error under ReactIgnore, a commit cut-over under
// ReactCommit — never a silent hang or success.
func TestSelfHealingEscalation(t *testing.T) {
	build := func() (*scenario.Scenario, *plan.Plan, string) {
		s := scenario.RunningExample()
		_, _, p := pipeline(t, s, reachSpec(s.Graph))
		if len(p.Setup) == 0 {
			t.Fatal("plan has no setup steps")
		}
		return s, p, p.Setup[0].Command.Description
	}
	alwaysDrop := func(victim string) faultScript {
		return faultScript{
			cmd: func(_ topology.NodeID, desc string, _ int) sim.CommandFault {
				if desc == victim {
					return sim.CommandFault{Kind: sim.FaultDrop}
				}
				return sim.CommandFault{}
			},
		}
	}

	s, p, victim := build()
	s.Net.SetFaultInjector(alwaysDrop(victim))
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	_, err := ex.Execute(p)
	if err == nil {
		t.Fatal("persistently dropped command must fail the plan under ReactIgnore")
	}
	if !strings.Contains(err.Error(), "unconfirmed") {
		t.Errorf("err = %v, want an unconfirmed-command escalation", err)
	}
	rec := ex.Recovery()
	if rec.Retries == 0 || rec.Repushes == 0 || rec.Escalations == 0 {
		t.Errorf("ladder not fully climbed: %+v", rec)
	}

	// Same fault under ReactCommit: the §8 cut-over must complete the
	// reconfiguration visibly.
	s2, p2, victim2 := build()
	s2.Net.SetFaultInjector(alwaysDrop(victim2))
	opts := runtime.DefaultOptions(1)
	opts.Reaction = runtime.ReactCommit
	ex2 := runtime.NewExecutor(s2.Net, opts)
	res2, err := ex2.Execute(p2)
	if err != nil {
		t.Fatalf("commit policy must absorb the escalation: %v", err)
	}
	if !res2.Committed {
		t.Error("result not marked Committed after escalation cut-over")
	}
	n6 := s2.Graph.MustNode("n6")
	for _, n := range s2.Net.Graph().Internal() {
		best, ok := s2.Net.Best(n, s2.Prefix)
		if !ok || best.Egress != n6 {
			t.Errorf("node %d not on final egress after commit", n)
		}
	}
}

// TestAbortCancelsInFlight is the satellite regression test: commands
// still in flight when the plan is interrupted must be cancelled by Abort,
// so no stale configuration lands after the cleanup.
func TestAbortCancelsInFlight(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eval.BuildPipeline(s, eval.SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Fire the monitor on the very first event: the remaining setup
	// commands are still scheduled when ErrReplanNeeded surfaces.
	opts := runtime.DefaultOptions(7)
	fired := false
	opts.Monitor = func(*sim.Network) bool {
		if fired {
			return true
		}
		fired = true
		return false
	}
	opts.Reaction = runtime.ReactReplan
	ex := runtime.NewExecutor(s.Net, opts)
	if _, err := ex.Execute(pl.Plan); !errors.Is(err, runtime.ErrReplanNeeded) {
		t.Fatalf("err = %v, want ErrReplanNeeded", err)
	}
	if s.Net.PendingCommands() == 0 {
		t.Fatal("test needs in-flight commands at interruption to be meaningful")
	}
	ex.Abort(pl.Plan)
	if got := s.Net.PendingCommands(); got != 0 {
		t.Errorf("%d commands still pending after abort", got)
	}
	if !s.Net.Converged() {
		t.Error("network not converged after abort")
	}
	// No stale transient configuration: every ingress route map of every
	// internal node must be empty again (the scenario starts with none and
	// the original command never ran).
	for _, n := range s.Graph.Internal() {
		for _, nb := range s.Net.Sessions(n) {
			if rm := s.Net.RouteMapOf(n, nb, sim.In); rm.Len() != 0 {
				t.Errorf("stale route map at n%d (from n%d) after abort: %s",
					int(n), int(nb), rm)
			}
		}
	}
	for _, sess := range pl.Plan.TempSessions {
		if _, up := s.Net.HasSession(sess.A, sess.B); up {
			t.Errorf("temp session %v survived abort", sess)
		}
	}
}

// TestReplanRoundTrip drives the full §8 reaction-2 cycle
// deterministically: monitor fires → ErrReplanNeeded → Abort releases the
// transient state → re-analyze the live network → a fresh plan executes
// cleanly to the final configuration.
func TestReplanRoundTrip(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eval.BuildPipeline(s, eval.SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.DefaultOptions(7)
	fired := false
	opts.Monitor = func(*sim.Network) bool {
		if fired {
			return true
		}
		fired = true
		return false
	}
	opts.Reaction = runtime.ReactReplan
	ex := runtime.NewExecutor(s.Net, opts)
	if _, err := ex.Execute(pl.Plan); !errors.Is(err, runtime.ErrReplanNeeded) {
		t.Fatalf("err = %v, want ErrReplanNeeded (deterministic monitor)", err)
	}
	ex.Abort(pl.Plan)
	if !s.Net.Converged() {
		t.Fatal("network not converged after abort")
	}

	// Replan from the current (restored) state towards the same target.
	final := s.Net.Clone()
	for _, cmd := range s.Commands {
		cmd.Apply(final)
	}
	final.Run()
	a, err := analyzer.Analyze(s.Net, final, s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.Schedule(a, eval.ReachabilitySpec(s.Graph), scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		t.Fatal(err)
	}
	ex2 := runtime.NewExecutor(s.Net, runtime.DefaultOptions(8))
	res, err := ex2.Execute(p2)
	if err != nil {
		t.Fatalf("replanned execution failed: %v", err)
	}
	if res.Recovery.Any() {
		t.Logf("replanned run recovery stats: %+v", res.Recovery)
	}
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress == s.E1 {
			t.Errorf("node %d not on a final egress after replan round-trip", n)
		}
	}
	st := s.Net.ForwardingState(s.Prefix)
	for _, n := range s.Graph.Internal() {
		if !st.Reach(n) {
			t.Errorf("node %d unreachable after replan round-trip", n)
		}
	}
}
