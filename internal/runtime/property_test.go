package runtime_test

import (
	"testing"

	"chameleon/internal/analyzer"
	"chameleon/internal/eval"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
)

// TestPipelinePropertyRandomScenarios is the end-to-end fuzz: random
// (topology, seed) scenarios run through analyze → schedule → compile →
// execute, asserting on the actual message-level trace that (1) the
// specification holds in every transient state, (2) each node changes its
// next hop at most once, (3) the network ends in the predicted final state.
func TestPipelinePropertyRandomScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("property fuzz skipped in -short")
	}
	topos := []string{"Basnet", "Heanet", "Getnet", "Sanren", "Epoch",
		"Globalcenter", "Gridnet", "Compuserve", "EEnet", "Claranet"}
	ran := 0
	for _, name := range topos {
		for seed := uint64(1); seed <= 3; seed++ {
			name, seed := name, seed
			t.Run(name+"/"+string(rune('0'+seed)), func(t *testing.T) {
				s, err := scenario.CaseStudy(name, scenario.Config{Seed: seed})
				if err != nil {
					t.Skipf("scenario: %v", err)
				}
				a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), s.Prefix)
				if err != nil {
					t.Fatalf("analyze: %v", err)
				}
				sp := eval.Eq4Spec(a, s.E1)
				pl, err := eval.BuildPipeline(s, eval.SpecEq4, scheduler.DefaultOptions())
				if err != nil {
					t.Fatalf("pipeline: %v", err)
				}
				ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(seed))
				res, err := ex.Execute(pl.Plan)
				if err != nil {
					t.Fatalf("execute: %v", err)
				}
				// (1) Spec over the executed trace.
				states := executionStates(t, s, res)
				if !sp.Eval(states) {
					t.Fatal("spec violated by the executed trace")
				}
				// (2) At most one next-hop change per node.
				for _, n := range s.Graph.Internal() {
					changes := 0
					for i := 1; i < len(states); i++ {
						if states[i][n] != states[i-1][n] {
							changes++
						}
					}
					if changes > 1 {
						t.Errorf("node %d changed its next hop %d times", n, changes)
					}
				}
				// (3) Final state matches the prediction.
				if !s.Net.ForwardingState(s.Prefix).Equal(a.NHNew) {
					t.Error("network did not end in the predicted final state")
				}
				ran++
			})
		}
	}
	t.Logf("fuzzed %d scenario instances", ran)
}
