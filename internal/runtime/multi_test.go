package runtime_test

import (
	"errors"
	"testing"

	"chameleon/internal/analyzer"
	"chameleon/internal/bgp"
	"chameleon/internal/eval"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
)

// twoPrefixExample builds the Fig. 3 network with a second, identically
// configured prefix so the reconfiguration affects two destinations.
func twoPrefixExample(t *testing.T) *scenario.Scenario {
	t.Helper()
	s := scenario.RunningExample()
	ext1 := s.Graph.MustNode("ext1")
	ext6 := s.Graph.MustNode("ext6")
	s.Net.InjectExternalRoute(ext1, sim.Announcement{Prefix: 1, ASPathLen: 2})
	s.Net.InjectExternalRoute(ext6, sim.Announcement{Prefix: 1, ASPathLen: 2})
	s.Net.Run()
	return s
}

func planFor(t *testing.T, s *scenario.Scenario, prefix bgp.Prefix) *plan.Plan {
	t.Helper()
	a, err := analyzer.Analyze(s.Net, s.FinalNetwork(), prefix)
	if err != nil {
		t.Fatal(err)
	}
	sp := eval.ReachabilitySpec(s.Graph)
	sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		t.Fatal(err)
	}
	p.Prefix = prefix
	return p
}

func TestExecuteMultiTwoPrefixes(t *testing.T) {
	s := twoPrefixExample(t)
	p0 := planFor(t, s, 0)
	p1 := planFor(t, s, 1)
	mp, err := plan.Align([]*plan.Plan{p0, p1}, s.Commands)
	if err != nil {
		t.Fatal(err)
	}
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(1))
	res, err := ex.ExecuteMulti(mp)
	if err != nil {
		t.Fatal(err)
	}
	n6 := s.Graph.MustNode("n6")
	for _, prefix := range []bgp.Prefix{0, 1} {
		for _, n := range s.Graph.Internal() {
			best, ok := s.Net.Best(n, prefix)
			if !ok || best.Egress != n6 {
				t.Errorf("prefix %d node %d ended on %v, want n6", prefix, n, best.Egress)
			}
		}
		// Both traces must be violation-free during execution.
		tr := s.Net.Trace(prefix)
		tr.Compact()
		start := res.Start.Seconds()
		for i, ts := range tr.Times {
			if ts < start {
				continue
			}
			for _, n := range s.Graph.Internal() {
				if !tr.States[i].Reach(n) {
					t.Errorf("prefix %d state %d: node %d dropped", prefix, i, n)
				}
			}
		}
	}
	if res.Duration() <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestAlignConsistentOrders(t *testing.T) {
	mk := func(slots map[int]int) *plan.Plan {
		return &plan.Plan{R: 5, OriginalSlots: slots}
	}
	cmds := make([]sim.Command, 2)
	mp, err := plan.Align([]*plan.Plan{
		mk(map[int]int{0: 1, 1: 3}),
		mk(map[int]int{0: 2, 1: 4}),
	}, cmds)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Order) != 2 || mp.Order[0] != 0 || mp.Order[1] != 1 {
		t.Errorf("Order = %v, want [0 1]", mp.Order)
	}
}

func TestAlignDetectsConflict(t *testing.T) {
	mk := func(slots map[int]int) *plan.Plan {
		return &plan.Plan{R: 5, OriginalSlots: slots}
	}
	cmds := make([]sim.Command, 2)
	_, err := plan.Align([]*plan.Plan{
		mk(map[int]int{0: 1, 1: 3}), // d1 wants c0 before c1
		mk(map[int]int{0: 4, 1: 2}), // d2 wants c1 before c0
	}, cmds)
	if !errors.Is(err, plan.ErrNeedsSplit) {
		t.Fatalf("err = %v, want ErrNeedsSplit", err)
	}
}

func TestAlignEmpty(t *testing.T) {
	if _, err := plan.Align(nil, nil); err == nil {
		t.Fatal("empty alignment accepted")
	}
}

func TestExecuteSplit(t *testing.T) {
	// Two commands that must each get their own mini-reconfiguration:
	// deny e1's route, then deny e2's route (e3 remains).
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cmds := []sim.Command{
		{
			Node: s.E1, Description: "deny at e1", DeniesOld: true,
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(s.E1, s.Ext[0], sim.In, func(rm *sim.RouteMap) {
					rm.Add(sim.Entry{Order: 5, Action: sim.Action{Deny: true}})
				})
			},
		},
		{
			Node: s.E2, Description: "deny at e2", DeniesOld: true,
			Apply: func(net *sim.Network) {
				net.UpdateRouteMap(s.E2, s.Ext[1], sim.In, func(rm *sim.RouteMap) {
					rm.Add(sim.Entry{Order: 5, Action: sim.Action{Deny: true}})
				})
			},
		},
	}
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(7))
	sp := eval.ReachabilitySpec(s.Graph)
	res, err := ex.ExecuteSplit([]int{0, 1}, cmds, func(cmd sim.Command) (*plan.Plan, error) {
		// Plan the single command against the *current* network state.
		final := s.Net.Clone()
		cmd.Apply(final)
		final.Run()
		a, err := analyzer.Analyze(s.Net, final, s.Prefix)
		if err != nil {
			return nil, err
		}
		sched, err := scheduler.Schedule(a, sp, scheduler.DefaultOptions())
		if err != nil {
			return nil, err
		}
		return plan.Compile(a, sched, []sim.Command{cmd})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything must end on e3, with reachability held throughout.
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress != s.E3 {
			t.Errorf("node %d ended on %v, want e3=%d", n, best.Egress, s.E3)
		}
	}
	tr := s.Net.Trace(s.Prefix)
	tr.Compact()
	for i, ts := range tr.Times {
		if ts < res.Start.Seconds() {
			continue
		}
		for _, n := range s.Graph.Internal() {
			if !tr.States[i].Reach(n) {
				t.Errorf("state %d: node %d dropped during split execution", i, n)
			}
		}
	}
}
