package runtime_test

import (
	"errors"
	"testing"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/eval"
	"chameleon/internal/plan"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
)

// reachMonitor flags a harmful event once any internal node black-holes.
func reachMonitor(s *scenario.Scenario) func(*sim.Network) bool {
	return func(n *sim.Network) bool {
		st := n.ForwardingState(s.Prefix)
		for _, node := range n.Graph().Internal() {
			if !st.Reach(node) {
				return false
			}
		}
		return true
	}
}

// buildWithSpareE3Withdrawal sets up the Abilene scenario and schedules a
// mid-reconfiguration withdrawal of BOTH remaining egress routes except e3,
// creating a genuine best-route loss that the plan cannot mask.
func e2e3Withdrawal(t *testing.T, reaction runtime.ReactionPolicy) (*scenario.Scenario, *runtime.Result, error) {
	t.Helper()
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eval.BuildPipeline(s, eval.SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.DefaultOptions(7)
	opts.Monitor = reachMonitor(s)
	opts.Reaction = reaction
	// Withdrawing e2's external route mid-update removes the new best
	// route many nodes are being migrated to.
	opts.ExternalEvents = []runtime.ScheduledEvent{{
		After: 30 * time.Second,
		Name:  "withdraw e2's route",
		Apply: func(n *sim.Network) {
			n.WithdrawExternalRoute(s.Ext[1], s.Prefix)
		},
	}}
	ex := runtime.NewExecutor(s.Net, opts)
	res, err := ex.Execute(pl.Plan)
	return s, res, err
}

func TestSupervisionIgnorePolicy(t *testing.T) {
	// Default policy: the withdrawal is absorbed; the plan either
	// completes or deadlocks on a condition that can no longer hold.
	s, res, err := e2e3Withdrawal(t, runtime.ReactIgnore)
	if err != nil {
		t.Logf("plan stuck as expected under ignore policy: %v", err)
		return
	}
	// If it completed, the network must still be fully converged.
	_ = res
	if !s.Net.Converged() {
		t.Error("network not converged")
	}
}

func TestSupervisionCommitPolicy(t *testing.T) {
	s, res, err := e2e3Withdrawal(t, runtime.ReactCommit)
	if err != nil {
		t.Fatalf("commit policy must not fail: %v", err)
	}
	// Whether or not the monitor fired (the withdrawal may or may not
	// break reachability depending on timing), the network must end
	// converged with all nodes on a surviving egress.
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok {
			t.Errorf("node %d has no route after commit", n)
			continue
		}
		if best.Egress == s.E1 || best.Egress == s.E2 {
			t.Errorf("node %d still uses a withdrawn egress %d", n, best.Egress)
		}
	}
	if res.Committed {
		t.Logf("commit cut-over engaged; phases: %d", len(res.Phases))
		// After commit the final state must be reachable everywhere.
		st := s.Net.ForwardingState(s.Prefix)
		for _, n := range s.Graph.Internal() {
			if !st.Reach(n) {
				t.Errorf("node %d unreachable after commit", n)
			}
		}
	}
}

func TestSupervisionReplanPolicy(t *testing.T) {
	s, _, err := e2e3Withdrawal(t, runtime.ReactReplan)
	if err == nil {
		t.Skip("withdrawal did not break the invariant for this timing; nothing to replan")
	}
	if !errors.Is(err, runtime.ErrReplanNeeded) {
		t.Fatalf("err = %v, want ErrReplanNeeded", err)
	}
	// §8 reaction 2: abort (release transient state), reconverge, replan
	// from the current network towards the final configuration.
	// The aborted plan's pins are removed by compiling a throwaway abort:
	// here we simply remove route-map overrides via a fresh executor
	// Abort using the original plan.
	pl, err := eval.BuildPipeline(s, eval.SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(8))
	ex.Abort(pl.Plan)
	if !s.Net.Converged() {
		t.Fatal("network not converged after abort")
	}
	// Replan: current state → final state (apply the original command on
	// a clone to obtain the target).
	final := s.Net.Clone()
	for _, cmd := range s.Commands {
		cmd.Apply(final)
	}
	final.Run()
	a, err := analyzer.Analyze(s.Net, final, s.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.Schedule(a, eval.ReachabilitySpec(s.Graph), scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(p2); err != nil {
		t.Fatalf("replanned execution failed: %v", err)
	}
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok || best.Egress == s.E1 {
			t.Errorf("node %d not on a final egress after replan", n)
		}
	}
}

func TestAbortReleasesState(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eval.BuildPipeline(s, eval.SpecReachability, scheduler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex := runtime.NewExecutor(s.Net, runtime.DefaultOptions(7))
	// Run only setup by executing and interrupting via monitor on first
	// event with replan policy.
	opts := runtime.DefaultOptions(7)
	fired := false
	opts.Monitor = func(*sim.Network) bool {
		if fired {
			return true
		}
		fired = true
		return false
	}
	opts.Reaction = runtime.ReactReplan
	ex2 := runtime.NewExecutor(s.Net, opts)
	if _, err := ex2.Execute(pl.Plan); !errors.Is(err, runtime.ErrReplanNeeded) {
		t.Fatalf("err = %v, want ErrReplanNeeded", err)
	}
	ex.Abort(pl.Plan)
	// After abort, no temporary sessions may remain.
	for _, sess := range pl.Plan.TempSessions {
		if _, up := s.Net.HasSession(sess.A, sess.B); up {
			t.Errorf("temp session %v survived abort", sess)
		}
	}
}
