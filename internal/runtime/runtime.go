// Package runtime implements Chameleon's runtime controller (§2.2): it
// applies a compiled reconfiguration plan to the live (simulated) network,
// checking each step's pre-conditions before pushing its command and
// advancing to the next round only once every post-condition holds. Router
// command latency is modeled after the paper's testbed measurements (§7.2:
// 8–12 s per route-map change on Cisco Nexus 7000).
package runtime

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"chameleon/internal/plan"
	"chameleon/internal/sim"
)

// Options configure plan execution.
type Options struct {
	// Seed drives the command-latency draws.
	Seed uint64
	// MinCommandLatency and MaxCommandLatency bound the uniform router
	// command application latency (defaults 8s and 12s, §7.2).
	MinCommandLatency, MaxCommandLatency time.Duration
	// ConditionTimeout bounds how long the controller waits for a
	// condition before declaring the plan stuck (simulated time;
	// default 120 s).
	ConditionTimeout time.Duration
	// ExternalEvents are injected into the network at the given offsets
	// from execution start (Fig. 11's link failure / new announcement).
	ExternalEvents []ScheduledEvent
	// Monitor, when set, is evaluated after every simulated event during
	// plan execution; returning false reports a harmful external event
	// (e.g. a best-route withdrawal breaking an invariant, §8).
	Monitor func(*sim.Network) bool
	// Reaction selects how the controller responds to a Monitor alarm.
	Reaction ReactionPolicy
}

// ReactionPolicy is the §8 response to harmful external events.
type ReactionPolicy int

const (
	// ReactIgnore continues the plan: the pinned transient state already
	// masks most events (the default, Fig. 11 behavior).
	ReactIgnore ReactionPolicy = iota
	// ReactCommit immediately applies all remaining original commands and
	// the cleanup phase, restoring connectivity under the final
	// configuration as fast as possible (§8 reaction 3).
	ReactCommit
	// ReactReplan aborts execution and returns ErrReplanNeeded so the
	// caller can compute a fresh plan from the current state (§8
	// reaction 2); call Abort first to release the transient state.
	ReactReplan
)

// ErrReplanNeeded signals that a monitored violation occurred under
// ReactReplan; the caller should Abort the current plan and replan from the
// network's current state.
var ErrReplanNeeded = errors.New("runtime: external event detected; replan required")

// errCommit is the internal unwinding signal for ReactCommit.
var errCommit = errors.New("runtime: committing to the final configuration")

// ScheduledEvent is an external event fired during the reconfiguration.
type ScheduledEvent struct {
	After time.Duration
	Name  string
	Apply func(*sim.Network)
}

// DefaultOptions returns the paper-calibrated execution options.
func DefaultOptions(seed uint64) Options {
	return Options{
		Seed:              seed,
		MinCommandLatency: 8 * time.Second,
		MaxCommandLatency: 12 * time.Second,
		ConditionTimeout:  120 * time.Second,
	}
}

// PhaseSpan records when a phase of the plan executed (simulated time).
type PhaseSpan struct {
	Name       string
	Start, End time.Duration
}

// Result reports a finished execution.
type Result struct {
	Start, End time.Duration
	Phases     []PhaseSpan
	// CommandsApplied counts plan commands (steps + originals).
	CommandsApplied int
	// MaxTableEntries is the §7.3 metric observed during execution.
	MaxTableEntries int
	// Committed reports that a monitored external event triggered the
	// ReactCommit policy: the plan was cut short and the final
	// configuration applied immediately (§8).
	Committed bool
}

// Duration returns the total execution time.
func (r *Result) Duration() time.Duration { return r.End - r.Start }

// Executor applies a plan to a live network.
type Executor struct {
	net  *sim.Network
	opts Options
	rng  *rand.Rand

	// betweenDone tracks which original-command slots have been applied,
	// so a ReactCommit cut-over applies exactly the pending ones.
	betweenDone []bool
}

// NewExecutor wraps a converged network.
func NewExecutor(net *sim.Network, opts Options) *Executor {
	if opts.MinCommandLatency == 0 {
		opts.MinCommandLatency = 8 * time.Second
	}
	if opts.MaxCommandLatency == 0 {
		opts.MaxCommandLatency = 12 * time.Second
	}
	if opts.ConditionTimeout == 0 {
		opts.ConditionTimeout = 120 * time.Second
	}
	return &Executor{
		net:  net,
		opts: opts,
		rng:  rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xe7037ed1a0b428db)),
	}
}

func (e *Executor) latency() time.Duration {
	span := e.opts.MaxCommandLatency - e.opts.MinCommandLatency
	if span <= 0 {
		return e.opts.MinCommandLatency
	}
	return e.opts.MinCommandLatency + time.Duration(e.rng.Int64N(int64(span)))
}

// Execute runs the plan to completion. The network must be converged; on
// return it is converged in the final configuration. Forwarding traces
// accumulate in the network's trace recorder for later verification.
func (e *Executor) Execute(p *plan.Plan) (*Result, error) {
	if !e.net.Converged() {
		return nil, fmt.Errorf("runtime: network not converged at start")
	}
	res := &Result{Start: e.net.Now()}
	e.net.RecordInitialState(p.Prefix)
	e.net.ResetMaxTableEntries()
	e.betweenDone = make([]bool, len(p.Between))

	// Schedule external events relative to the start.
	for _, ev := range e.opts.ExternalEvents {
		ev := ev
		e.net.ScheduleAt(res.Start+ev.After, func(n *sim.Network) { ev.Apply(n) })
	}

	runPhase := func(name string, steps []plan.Step) error {
		start := e.net.Now()
		if err := e.runSteps(p, steps); err != nil {
			return fmt.Errorf("runtime: %s: %w", name, err)
		}
		res.CommandsApplied += len(steps)
		res.Phases = append(res.Phases, PhaseSpan{Name: name, Start: start, End: e.net.Now()})
		return nil
	}

	run := func() error {
		if err := runPhase("setup", p.Setup); err != nil {
			return err
		}
		for k := 1; k <= p.R; k++ {
			if len(p.Between) > k-1 {
				if err := e.applyOriginalSlot(p, k-1, res); err != nil {
					return err
				}
			}
			if err := runPhase(fmt.Sprintf("round %d", k), p.Rounds[k-1]); err != nil {
				return err
			}
		}
		if len(p.Between) > p.R {
			if err := e.applyOriginalSlot(p, p.R, res); err != nil {
				return err
			}
		}
		return runPhase("cleanup", p.Cleanup)
	}
	if err := run(); err != nil {
		if errors.Is(err, errCommit) {
			// §8 reaction 3: abandon the remaining rounds, apply every
			// pending original command and the cleanup phase at once.
			e.commit(p, res)
			res.Committed = true
		} else {
			return nil, err
		}
	}
	// Let any remaining convergence settle.
	e.net.Run()
	res.End = e.net.Now()
	res.MaxTableEntries = e.net.MaxTableEntries()
	return res, nil
}

// applyOriginals pushes the original reconfiguration commands and waits for
// convergence (they synchronize rounds across destinations, §5).
func (e *Executor) applyOriginals(cmds []sim.Command, res *Result) error {
	for _, cmd := range cmds {
		cmd := cmd
		e.net.ScheduleAfter(e.latency(), func(n *sim.Network) { cmd.Apply(n) })
		res.CommandsApplied++
	}
	e.net.Run()
	return nil
}

// applyOriginalSlot applies one Between slot, tracking completion for a
// possible ReactCommit cut-over.
func (e *Executor) applyOriginalSlot(p *plan.Plan, slot int, res *Result) error {
	if err := e.applyOriginals(p.Between[slot], res); err != nil {
		return err
	}
	if slot < len(e.betweenDone) {
		e.betweenDone[slot] = true
	}
	return nil
}

// commit performs the §8 reaction-3 cut-over: every pending original
// command and the whole cleanup phase are applied at once.
func (e *Executor) commit(p *plan.Plan, res *Result) {
	start := e.net.Now()
	for k, cmds := range p.Between {
		if k < len(e.betweenDone) && e.betweenDone[k] {
			continue
		}
		for _, cmd := range cmds {
			cmd.Apply(e.net)
			res.CommandsApplied++
		}
	}
	for _, st := range p.Cleanup {
		st.Command.Apply(e.net)
		res.CommandsApplied++
	}
	e.net.Run()
	res.Phases = append(res.Phases, PhaseSpan{Name: "commit", Start: start, End: e.net.Now()})
}

// Abort releases a (possibly partially executed) plan's transient state by
// applying its cleanup commands immediately and letting the network
// converge — the prelude to replanning under ReactReplan. In-flight
// scheduled commands are drained first so none land after the cleanup.
func (e *Executor) Abort(p *plan.Plan) {
	e.net.Run()
	for _, st := range p.Cleanup {
		st.Command.Apply(e.net)
	}
	e.net.Run()
}

// runSteps executes one phase: every step's command is pushed as soon as
// its pre-conditions hold (commands within a phase apply concurrently), and
// the phase completes when every post-condition is satisfied.
func (e *Executor) runSteps(p *plan.Plan, steps []plan.Step) error {
	if len(steps) == 0 {
		e.net.Run()
		return nil
	}
	applied := make([]bool, len(steps))
	applyTime := make([]time.Duration, len(steps))
	deadline := e.net.Now() + e.opts.ConditionTimeout

	preOK := func(i int) bool {
		for _, c := range steps[i].Pre {
			if !c.Check(e.net, p.Prefix) {
				return false
			}
		}
		return true
	}
	postOK := func(i int) bool {
		if !applied[i] || e.net.Now() < applyTime[i] {
			return false
		}
		for _, c := range steps[i].Post {
			if !c.Check(e.net, p.Prefix) {
				return false
			}
		}
		return true
	}

	for {
		// Push every step whose pre-conditions now hold.
		progress := false
		for i := range steps {
			if applied[i] || !preOK(i) {
				continue
			}
			cmd := steps[i].Command
			lat := e.latency()
			applyTime[i] = e.net.Now() + lat
			e.net.ScheduleAfter(lat, func(n *sim.Network) { cmd.Apply(n) })
			applied[i] = true
			progress = true
		}
		// Done when all commands applied and all posts hold.
		done := true
		for i := range steps {
			if !applied[i] || !postOK(i) {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		// Advance the network by one event; if nothing is pending and no
		// new command became applicable, the plan is stuck — under
		// supervision that is itself the §8 "long-term anomaly" signal
		// (an external event invalidated a pre- or post-condition).
		if !e.net.Step() {
			if !progress {
				return e.react(e.stuckError(p, steps, applied))
			}
			continue
		}
		// §8 supervision: react to harmful external events immediately.
		if e.opts.Monitor != nil && !e.opts.Monitor(e.net) {
			if err := e.react(nil); err != nil {
				return err
			}
		}
		if e.net.Now() > deadline {
			return e.react(e.stuckError(p, steps, applied))
		}
	}
}

// react translates a detected anomaly into the configured reaction: commit
// or replan when supervised, otherwise the original error (nil fallbackErr
// means the monitor fired but the policy is ReactIgnore — keep going).
func (e *Executor) react(fallbackErr error) error {
	switch e.opts.Reaction {
	case ReactCommit:
		return errCommit
	case ReactReplan:
		return ErrReplanNeeded
	}
	return fallbackErr
}

func (e *Executor) stuckError(p *plan.Plan, steps []plan.Step, applied []bool) error {
	for i, st := range steps {
		if !applied[i] {
			return fmt.Errorf("pre-conditions never satisfied for %q", st.Command.Description)
		}
		for _, c := range st.Post {
			if !c.Check(e.net, p.Prefix) {
				return fmt.Errorf("post-condition %q never satisfied for %q", c, st.Command.Description)
			}
		}
	}
	return fmt.Errorf("stuck without unsatisfied conditions (timeout)")
}

// EstimateReconfigurationTime computes the paper's T̃ = T̃rm · (2 + R)
// approximation (§7.2) with T̃rm = 12 s.
func EstimateReconfigurationTime(rounds int) time.Duration {
	const tRM = 12 * time.Second
	return time.Duration(2+rounds) * tRM
}
