// Package runtime implements Chameleon's runtime controller (§2.2): it
// applies a compiled reconfiguration plan to the live (simulated) network,
// checking each step's pre-conditions before pushing its command and
// advancing to the next round only once every post-condition holds. Router
// command latency is modeled after the paper's testbed measurements (§7.2:
// 8–12 s per route-map change on Cisco Nexus 7000).
//
// The executor is self-healing: it never assumes a pushed command was
// applied. Every command is tracked through its acknowledgment token and a
// configuration readback (sim.Command.Verify); a command that stays
// unconfirmed past its per-command timeout climbs an escalation ladder —
// seeded-deterministic retries with capped exponential backoff and jitter,
// then a forced re-push of the phase's configuration, and finally the
// configured §8 reaction policy (commit / replan / visible abort).
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/obs"
	"chameleon/internal/plan"
	"chameleon/internal/sim"
)

// Options configure plan execution.
type Options struct {
	// Seed drives the command-latency and retry-jitter draws.
	Seed uint64
	// MinCommandLatency and MaxCommandLatency bound the uniform router
	// command application latency (defaults 8s and 12s, §7.2).
	MinCommandLatency, MaxCommandLatency time.Duration
	// ConditionTimeout bounds how long the controller waits without any
	// progress (no command pushed, confirmed, or retried) before declaring
	// the plan stuck (simulated time; default 120 s).
	ConditionTimeout time.Duration
	// CommandTimeout is the per-command acknowledgment deadline, measured
	// from the expected application time: a command unconfirmed for this
	// long is presumed lost and retried (default 30 s). Distinct from
	// ConditionTimeout, which guards whole phases.
	CommandTimeout time.Duration
	// MaxRetries bounds the backoff retries per command before the
	// escalation ladder moves past them (default 3).
	MaxRetries int
	// RetryBackoffBase and RetryBackoffCap shape the capped exponential
	// backoff between retries (defaults 2 s and 15 s); a seeded jitter of
	// up to half the backoff is added.
	RetryBackoffBase, RetryBackoffCap time.Duration
	// ExternalEvents are injected into the network at the given offsets
	// from execution start (Fig. 11's link failure / new announcement).
	ExternalEvents []ScheduledEvent
	// Monitor, when set, is evaluated after every simulated event during
	// plan execution — including the Between slots where original commands
	// converge; returning false reports a harmful external event (e.g. a
	// best-route withdrawal breaking an invariant, §8).
	Monitor func(*sim.Network) bool
	// Reaction selects how the controller responds to a Monitor alarm or
	// an exhausted escalation ladder.
	Reaction ReactionPolicy
	// Diagnose, when set, is consulted when a Monitor alarm escalates under
	// ReactReplan: it names the firing invariant (e.g. the transient-state
	// monitor's first open violation) so the resulting ReplanError is
	// attributable. An empty return means "unknown".
	Diagnose func(*sim.Network) string
	// Convergence, when set, gates phase completion on observed forwarding
	// convergence: a phase whose commands are all confirmed and whose
	// post-conditions hold still keeps processing events until the gate
	// reports the forwarding plane quiescent. An empty event queue always
	// completes the phase regardless of the gate (nothing further can
	// change), and the ConditionTimeout watchdog remains the fallback for
	// gates that never open. The transient-state monitor's Gate provides
	// the canonical implementation.
	Convergence func(*sim.Network) bool
	// PhaseObserver, when set, is told the name of every execution phase as
	// it starts (setup, between k, round k, cleanup, commit), independent
	// of whether a Recorder is attached. The transient-state monitor uses
	// it to attribute violations to the round that caused them.
	PhaseObserver func(name string)
	// Recorder, when set, receives the execution trace: an "execute" span
	// with one child per phase (setup, between k, round k, cleanup,
	// commit), stamped with the simulated clock, plus the command/retry/
	// escalation counters. A recorder on the execution context (see
	// ExecuteCtx) is used when this is nil.
	Recorder *obs.Recorder
}

// ReactionPolicy is the §8 response to harmful external events.
type ReactionPolicy int

const (
	// ReactIgnore continues the plan: the pinned transient state already
	// masks most events (the default, Fig. 11 behavior).
	ReactIgnore ReactionPolicy = iota
	// ReactCommit immediately applies all remaining original commands and
	// the cleanup phase, restoring connectivity under the final
	// configuration as fast as possible (§8 reaction 3).
	ReactCommit
	// ReactReplan aborts execution and returns ErrReplanNeeded so the
	// caller can compute a fresh plan from the current state (§8
	// reaction 2); call Abort first to release the transient state.
	ReactReplan
)

// ErrReplanNeeded signals that a monitored violation occurred under
// ReactReplan; the caller should Abort the current plan and replan from the
// network's current state.
var ErrReplanNeeded = errors.New("runtime: external event detected; replan required")

// ReplanError is the structured form of ErrReplanNeeded: it records what
// fired (the invariant named by Options.Diagnose, if any), where (the plan's
// prefix) and when (simulated time), so supervisor decisions and chaos
// classifications are attributable to a concrete detection instead of a bare
// sentinel. It wraps ErrReplanNeeded — errors.Is(err, ErrReplanNeeded)
// matches — plus the underlying escalation error, when one exists (Cause is
// nil for pure monitor alarms).
type ReplanError struct {
	// Invariant is the name of the firing invariant, "" when unknown.
	Invariant string
	// Prefix is the prefix under reconfiguration.
	Prefix bgp.Prefix
	// SimTime is the simulated time of the detection.
	SimTime time.Duration
	// Cause is the escalation-ladder error that forced the replan, nil when
	// the trigger was a Monitor alarm.
	Cause error
}

func (e *ReplanError) Error() string {
	inv := e.Invariant
	if inv == "" {
		inv = "unknown invariant"
	}
	msg := fmt.Sprintf("runtime: replan required (%s, prefix %d, t=%v)", inv, int(e.Prefix), e.SimTime)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap makes the error match both ErrReplanNeeded and its cause under
// errors.Is / errors.As.
func (e *ReplanError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrReplanNeeded}
	}
	return []error{ErrReplanNeeded, e.Cause}
}

// errCommit is the internal unwinding signal for ReactCommit.
var errCommit = errors.New("runtime: committing to the final configuration")

// ScheduledEvent is an external event fired during the reconfiguration.
type ScheduledEvent struct {
	After time.Duration
	Name  string
	Apply func(*sim.Network)
}

// DefaultOptions returns the paper-calibrated execution options.
func DefaultOptions(seed uint64) Options {
	return Options{
		Seed:              seed,
		MinCommandLatency: 8 * time.Second,
		MaxCommandLatency: 12 * time.Second,
		ConditionTimeout:  120 * time.Second,
		CommandTimeout:    30 * time.Second,
		MaxRetries:        3,
		RetryBackoffBase:  2 * time.Second,
		RetryBackoffCap:   15 * time.Second,
	}
}

// PhaseSpan records when a phase of the plan executed (simulated time).
type PhaseSpan struct {
	Name       string
	Start, End time.Duration
}

// RecoveryStats counts the self-healing machinery's activity during one
// execution: the escalation ladder is retry → re-push → §8 reaction.
type RecoveryStats struct {
	// Retries counts backoff re-pushes of commands whose acknowledgment
	// did not arrive within CommandTimeout.
	Retries int
	// Repushes counts ladder-2 forced refreshes (the command and any
	// phase configuration found missing are pushed once more, without
	// backoff, before escalating).
	Repushes int
	// Escalations counts ladder-3 handoffs to the §8 reaction policy.
	Escalations int
	// AcksLost counts commands confirmed by configuration readback after
	// their acknowledgment was lost (partial-application recoveries).
	AcksLost int
	// MonitorAlarms counts Monitor evaluations reporting a harmful event.
	MonitorAlarms int
}

// Any reports whether any self-healing action or alarm occurred.
func (r RecoveryStats) Any() bool {
	return r.Retries+r.Repushes+r.Escalations+r.AcksLost+r.MonitorAlarms > 0
}

// Result reports a finished execution.
type Result struct {
	Start, End time.Duration
	Phases     []PhaseSpan
	// CommandsApplied counts plan commands (steps + originals), not
	// counting self-healing retries.
	CommandsApplied int
	// MaxTableEntries is the §7.3 metric observed during execution.
	MaxTableEntries int
	// Committed reports that a monitored external event (or an exhausted
	// escalation ladder) triggered the ReactCommit policy: the plan was
	// cut short and the final configuration applied immediately (§8).
	Committed bool
	// Recovery reports the self-healing activity of this execution.
	Recovery RecoveryStats
}

// Duration returns the total execution time.
func (r *Result) Duration() time.Duration { return r.End - r.Start }

// Executor applies a plan to a live network.
type Executor struct {
	net  *sim.Network
	opts Options
	rng  *rand.Rand

	// rec accumulates self-healing statistics for the current execution;
	// exposed through Result.Recovery and the Recovery accessor (the
	// latter also reports aborted executions).
	rec RecoveryStats

	// runs counts executions on this executor; each gets its own derived
	// RNG stream (see beginRun).
	runs uint64

	// betweenDone tracks which original-command slots have been applied,
	// so a ReactCommit cut-over applies exactly the pending ones.
	betweenDone []bool

	// curPrefix is the executing plan's prefix, stamped into ReplanErrors.
	curPrefix bgp.Prefix

	// aborted remembers the last plan released by Abort, making Abort
	// idempotent: callers (the facade's ReleaseOnError, the supervisor, and
	// manual callers following the ReactReplan docstring) may each Abort
	// without re-running cleanup commands on an already-released network.
	aborted *plan.Plan

	// ctx is the current execution's context (cancellation is polled in
	// every supervision loop); execSpan/phaseSpan are the current trace
	// spans (nil when unrecorded).
	ctx       context.Context
	obsRec    *obs.Recorder
	execSpan  *obs.Span
	phaseSpan *obs.Span
}

// NewExecutor wraps a converged network.
func NewExecutor(net *sim.Network, opts Options) *Executor {
	if opts.MinCommandLatency == 0 {
		opts.MinCommandLatency = 8 * time.Second
	}
	if opts.MaxCommandLatency == 0 {
		opts.MaxCommandLatency = 12 * time.Second
	}
	if opts.ConditionTimeout == 0 {
		opts.ConditionTimeout = 120 * time.Second
	}
	if opts.CommandTimeout == 0 {
		opts.CommandTimeout = 30 * time.Second
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBackoffBase == 0 {
		opts.RetryBackoffBase = 2 * time.Second
	}
	if opts.RetryBackoffCap == 0 {
		opts.RetryBackoffCap = 15 * time.Second
	}
	return &Executor{
		net:  net,
		opts: opts,
		rng:  rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xe7037ed1a0b428db)),
	}
}

// Recovery returns the self-healing statistics of the most recent
// execution, including executions that ended in an error or abort.
func (e *Executor) Recovery() RecoveryStats { return e.rec }

// beginRun gives the starting execution exclusive RNG streams: run r's
// latency and backoff draws (and, via Network.BeginRun, the network's
// message-jitter draws) are a pure function of (Options.Seed, r), never of
// how many draws earlier executions on the same executor or network
// consumed. Without this, sequential runs on one network interleave draws
// and fault/latency schedules stop being reproducible from the seed alone —
// exactly the nondeterminism that would poison parallel sweeps built from
// ExecuteSplit-style multi-run pipelines. Run 0 keeps the constructor
// stream, so single-execution results are bit-identical to prior behavior.
func (e *Executor) beginRun() {
	if e.runs > 0 {
		s := sim.DeriveSeed(e.opts.Seed, e.runs)
		e.rng = rand.New(rand.NewPCG(s, s^0xe7037ed1a0b428db))
	}
	e.runs++
	e.net.BeginRun()
}

func (e *Executor) latency() time.Duration {
	span := e.opts.MaxCommandLatency - e.opts.MinCommandLatency
	if span <= 0 {
		return e.opts.MinCommandLatency
	}
	return e.opts.MinCommandLatency + time.Duration(e.rng.Int64N(int64(span)))
}

// backoff returns the delay before the retry-th re-push (1-based): capped
// exponential with a seeded jitter of up to half the backoff.
func (e *Executor) backoff(retry int) time.Duration {
	d := e.opts.RetryBackoffBase
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= e.opts.RetryBackoffCap {
			break
		}
	}
	if d > e.opts.RetryBackoffCap {
		d = e.opts.RetryBackoffCap
	}
	return d + time.Duration(e.rng.Int64N(int64(d)/2+1))
}

// pushTracked pushes cmd through the network's fault layer after the
// router latency plus extraDelay, returning the acknowledgment token and
// the verification deadline for this attempt.
func (e *Executor) pushTracked(cmd sim.Command, attempt int, extraDelay time.Duration) (*sim.CommandToken, time.Duration) {
	e.count(obs.CtrExecCommandsPushed, 1)
	lat := e.latency() + extraDelay
	tk := e.net.ScheduleCommand(lat, cmd, attempt)
	return tk, e.net.Now() + lat + e.opts.CommandTimeout
}

// ctxDone polls the execution context without blocking.
func (e *Executor) ctxDone() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}

// count attributes an executor counter to the current phase span when one
// is open, else to the execute span (both nil-safe).
func (e *Executor) count(name string, delta int64) {
	if e.phaseSpan != nil {
		e.phaseSpan.Add(name, delta)
		return
	}
	e.execSpan.Add(name, delta)
}

// startPhase opens a trace span for one phase, points the sim layer's
// counter attribution at it and labels the network's provenance layer so
// causes registered during the phase carry its name; endPhase closes the
// span and reverts attribution and label. Phase observers are notified
// first, recorder or not.
func (e *Executor) startPhase(name string) *obs.Span {
	if e.opts.PhaseObserver != nil {
		e.opts.PhaseObserver(name)
	}
	e.net.SetPhaseLabel(name)
	if e.obsRec == nil {
		return nil
	}
	sp := e.obsRec.StartSpan(e.execSpan, name)
	e.phaseSpan = sp
	e.net.SetObsSpan(sp)
	return sp
}

func (e *Executor) endPhase(sp *obs.Span) {
	sp.End()
	e.phaseSpan = nil
	e.net.SetPhaseLabel("")
	if e.obsRec != nil {
		e.net.SetObsSpan(nil)
	}
}

// Execute runs the plan to completion. The network must be converged; on
// return it is converged in the final configuration. Forwarding traces
// accumulate in the network's trace recorder for later verification. It is
// ExecuteCtx under context.Background().
func (e *Executor) Execute(p *plan.Plan) (*Result, error) {
	return e.ExecuteCtx(context.Background(), p)
}

// ExecuteCtx is Execute with a context: cancellation is polled in every
// supervision loop (per simulated event), so a cancelled execution returns
// promptly mid-round with the context's error, and a recorder — from
// Options.Recorder or, failing that, the context — receives an "execute"
// span tree stamped with the simulated clock.
func (e *Executor) ExecuteCtx(ctx context.Context, p *plan.Plan) (*Result, error) {
	if !e.net.Converged() {
		return nil, fmt.Errorf("runtime: network not converged at start")
	}
	e.ctx = ctx
	e.obsRec = e.opts.Recorder
	if e.obsRec == nil {
		e.obsRec = obs.RecorderFrom(ctx)
	}
	if e.obsRec != nil {
		// The simulated clock is the only time source a trace may carry —
		// wall clock would break byte-identical reproducibility.
		e.obsRec.SetClock(e.net.Now)
		e.net.SetRecorder(e.obsRec)
		e.execSpan = e.obsRec.StartSpan(obs.SpanFrom(ctx), "execute")
		defer func() {
			e.execSpan.End()
			e.obsRec.SetClock(nil)
			e.net.SetRecorder(nil)
			e.net.SetObsSpan(nil)
			e.execSpan = nil
			e.phaseSpan = nil
			e.obsRec = nil
		}()
	}
	defer func() { e.ctx = nil }()
	e.beginRun()
	e.curPrefix = p.Prefix
	e.aborted = nil
	res := &Result{Start: e.net.Now()}
	e.rec = RecoveryStats{}
	e.net.RecordInitialState(p.Prefix)
	e.net.ResetMaxTableEntries()
	e.betweenDone = make([]bool, len(p.Between))

	// Schedule external events relative to the start; each roots its own
	// causal chain so violations it sets off blame the named event.
	for _, ev := range e.opts.ExternalEvents {
		ev := ev
		e.net.ScheduleEventAt(res.Start+ev.After, ev.Name, func(n *sim.Network) { ev.Apply(n) })
	}

	runPhase := func(name string, steps []plan.Step) error {
		start := e.net.Now()
		sp := e.startPhase(name)
		err := e.runSteps(p, steps)
		e.endPhase(sp)
		if err != nil {
			return fmt.Errorf("runtime: %s: %w", name, err)
		}
		res.CommandsApplied += len(steps)
		res.Phases = append(res.Phases, PhaseSpan{Name: name, Start: start, End: e.net.Now()})
		return nil
	}

	run := func() error {
		if err := runPhase("setup", p.Setup); err != nil {
			return err
		}
		for k := 1; k <= p.R; k++ {
			if len(p.Between) > k-1 {
				if err := e.applyOriginalSlot(p, k-1, res); err != nil {
					return err
				}
			}
			if err := runPhase(fmt.Sprintf("round %d", k), p.Rounds[k-1]); err != nil {
				return err
			}
		}
		if len(p.Between) > p.R {
			if err := e.applyOriginalSlot(p, p.R, res); err != nil {
				return err
			}
		}
		return runPhase("cleanup", p.Cleanup)
	}
	if err := run(); err != nil {
		if errors.Is(err, errCommit) {
			// §8 reaction 3: abandon the remaining rounds, apply every
			// pending original command and the cleanup phase at once.
			e.commit(p, res)
			res.Committed = true
		} else {
			return nil, err
		}
	}
	// Let any remaining convergence settle.
	e.net.Run()
	res.End = e.net.Now()
	res.MaxTableEntries = e.net.MaxTableEntries()
	res.Recovery = e.rec
	// Mirror the recovery ladder's activity into the trace counters.
	e.execSpan.Add(obs.CtrExecRetries, int64(e.rec.Retries))
	e.execSpan.Add(obs.CtrExecRepushes, int64(e.rec.Repushes))
	e.execSpan.Add(obs.CtrExecEscalations, int64(e.rec.Escalations))
	e.execSpan.Add(obs.CtrExecAcksLost, int64(e.rec.AcksLost))
	e.execSpan.Add(obs.CtrExecMonitorAlarms, int64(e.rec.MonitorAlarms))
	return res, nil
}

// applyOriginals pushes the original reconfiguration commands and waits for
// convergence (they synchronize rounds across destinations, §5). The push
// is supervised like any phase: commands are confirmed through their
// acknowledgment (or Verify readback), retried on loss, and the Monitor is
// consulted after every simulated event so harmful external events during
// Between slots reach the §8 reaction policies.
func (e *Executor) applyOriginals(cmds []sim.Command, res *Result) error {
	if len(cmds) == 0 {
		if err := e.superviseRun(); err != nil {
			return err
		}
		return nil
	}
	type pushState struct {
		token     *sim.CommandToken
		attempts  int
		checkAt   time.Duration
		confirmed bool
	}
	st := make([]pushState, len(cmds))
	for i, cmd := range cmds {
		tk, checkAt := e.pushTracked(cmd, 0, 0)
		st[i] = pushState{token: tk, attempts: 1, checkAt: checkAt}
		res.CommandsApplied++
	}
	watchdog := e.net.Now() + e.opts.ConditionTimeout
	for {
		if err := e.ctxDone(); err != nil {
			return err
		}
		progress := false
		allConfirmed := true
		for i := range st {
			s := &st[i]
			if s.confirmed {
				continue
			}
			if s.token.Acked() {
				s.confirmed = true
				if s.attempts > 1 {
					e.count(obs.CtrFaultsHealed, 1)
				}
				progress = true
				continue
			}
			if v := cmds[i].Verify; v != nil && v(e.net) {
				s.confirmed = true
				e.rec.AcksLost++
				e.count(obs.CtrFaultsHealed, 1)
				progress = true
				continue
			}
			allConfirmed = false
			if e.net.Now() < s.checkAt {
				continue
			}
			// Ladder: MaxRetries backoff retries, one forced re-push,
			// then the §8 reaction.
			switch {
			case s.attempts <= e.opts.MaxRetries:
				tk, checkAt := e.pushTracked(cmds[i], s.attempts, e.backoff(s.attempts))
				s.token, s.checkAt = tk, checkAt
				s.attempts++
				e.rec.Retries++
				progress = true
			case s.attempts == e.opts.MaxRetries+1:
				tk, checkAt := e.pushTracked(cmds[i], s.attempts, 0)
				s.token, s.checkAt = tk, checkAt
				s.attempts++
				e.rec.Repushes++
				progress = true
			default:
				e.rec.Escalations++
				return e.react(fmt.Errorf(
					"original command %q unconfirmed after %d attempts",
					cmds[i].Description, s.attempts))
			}
		}
		if allConfirmed && e.net.Converged() {
			return nil
		}
		if progress {
			watchdog = e.net.Now() + e.opts.ConditionTimeout
		}
		if !e.net.Step() {
			if allConfirmed {
				return nil
			}
			if next, ok := nextDeadline(st, func(s pushState) (bool, time.Duration) {
				return !s.confirmed, s.checkAt
			}); ok && next > e.net.Now() {
				e.net.RunUntil(next)
			}
			continue
		}
		if e.opts.Monitor != nil && !e.opts.Monitor(e.net) {
			e.rec.MonitorAlarms++
			if err := e.react(nil); err != nil {
				return err
			}
		}
		if e.net.Now() > watchdog {
			return e.react(fmt.Errorf("original commands stalled (no progress for %v)", e.opts.ConditionTimeout))
		}
	}
}

// superviseRun drains the event queue like sim.Network.Run but consults the
// Monitor after every event, so external events landing in otherwise idle
// Between slots are still caught (§8).
func (e *Executor) superviseRun() error {
	for e.net.Step() {
		if err := e.ctxDone(); err != nil {
			return err
		}
		if e.opts.Monitor != nil && !e.opts.Monitor(e.net) {
			e.rec.MonitorAlarms++
			if err := e.react(nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// nextDeadline returns the earliest deadline among entries sel marks
// pending.
func nextDeadline[T any](xs []T, sel func(T) (bool, time.Duration)) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, x := range xs {
		pending, at := sel(x)
		if !pending {
			continue
		}
		if !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}

// applyOriginalSlot applies one Between slot, tracking completion for a
// possible ReactCommit cut-over.
func (e *Executor) applyOriginalSlot(p *plan.Plan, slot int, res *Result) error {
	sp := e.startPhase(fmt.Sprintf("between %d", slot))
	err := e.applyOriginals(p.Between[slot], res)
	e.endPhase(sp)
	if err != nil {
		return err
	}
	if slot < len(e.betweenDone) {
		e.betweenDone[slot] = true
	}
	return nil
}

// commit performs the §8 reaction-3 cut-over: in-flight pushes are
// cancelled (the cut-over supersedes them), then every pending original
// command and the whole cleanup phase are applied at once.
func (e *Executor) commit(p *plan.Plan, res *Result) {
	start := e.net.Now()
	sp := e.startPhase("commit")
	defer e.endPhase(sp)
	e.net.CancelPendingCommands()
	for k, cmds := range p.Between {
		if k < len(e.betweenDone) && e.betweenDone[k] {
			continue
		}
		for _, cmd := range cmds {
			cmd.Apply(e.net)
			res.CommandsApplied++
		}
	}
	for _, st := range p.Cleanup {
		st.Command.Apply(e.net)
		res.CommandsApplied++
	}
	e.net.Run()
	res.Phases = append(res.Phases, PhaseSpan{Name: "commit", Start: start, End: e.net.Now()})
}

// Abort releases a (possibly partially executed) plan's transient state by
// applying its cleanup commands immediately and letting the network
// converge — the prelude to replanning under ReactReplan. Every in-flight
// scheduled command (including retries and fault-layer duplicates) is
// cancelled first and the queue drained, so no stale configuration can
// land after the cleanup: aborting is deterministic. Abort is idempotent:
// aborting the same plan twice (facade auto-release plus a manual call, or
// a supervisor retrying its recovery path) re-runs nothing.
func (e *Executor) Abort(p *plan.Plan) {
	if p != nil && e.aborted == p {
		return
	}
	e.net.CancelPendingCommands()
	e.net.Run()
	for _, st := range p.Cleanup {
		st.Command.Apply(e.net)
	}
	e.net.Run()
	e.aborted = p
}

// OriginalsApplied reports, per Between slot of the most recent execution,
// whether that slot's original commands were confirmed applied. A
// supervisor resuming from a failed execution uses it (with the plan's
// OriginalSlots) to compute which original commands are already in the
// network and must not be replayed.
func (e *Executor) OriginalsApplied() []bool {
	out := make([]bool, len(e.betweenDone))
	copy(out, e.betweenDone)
	return out
}

// stepState tracks one plan step through push, acknowledgment and
// escalation.
type stepState struct {
	pushed    bool
	confirmed bool
	repushed  bool
	token     *sim.CommandToken
	attempts  int
	checkAt   time.Duration
}

// runSteps executes one phase: every step's command is pushed as soon as
// its pre-conditions hold (commands within a phase apply concurrently), a
// pushed command is confirmed through its acknowledgment or configuration
// readback — retried, re-pushed and finally escalated if it stays
// unconfirmed — and the phase completes when every post-condition holds.
func (e *Executor) runSteps(p *plan.Plan, steps []plan.Step) error {
	if len(steps) == 0 {
		return e.superviseRun()
	}
	st := make([]stepState, len(steps))
	watchdog := e.net.Now() + e.opts.ConditionTimeout

	preOK := func(i int) bool {
		for _, c := range steps[i].Pre {
			if !c.Check(e.net, p.Prefix) {
				return false
			}
		}
		return true
	}
	postOK := func(i int) bool {
		if !st[i].confirmed {
			return false
		}
		for _, c := range steps[i].Post {
			if !c.Check(e.net, p.Prefix) {
				return false
			}
		}
		return true
	}

	for {
		if err := e.ctxDone(); err != nil {
			return err
		}
		progress := false
		// Push every step whose pre-conditions now hold.
		for i := range steps {
			if st[i].pushed || !preOK(i) {
				continue
			}
			tk, checkAt := e.pushTracked(steps[i].Command, 0, 0)
			st[i] = stepState{pushed: true, token: tk, attempts: 1, checkAt: checkAt}
			progress = true
		}
		// Confirm pushed commands; heal the ones presumed lost.
		for i := range steps {
			s := &st[i]
			if !s.pushed || s.confirmed {
				continue
			}
			if s.token.Acked() {
				s.confirmed = true
				if s.attempts > 1 {
					e.count(obs.CtrFaultsHealed, 1)
				}
				progress = true
				continue
			}
			if v := steps[i].Command.Verify; v != nil && v(e.net) {
				// The effect is present but the ack never arrived: the
				// command was (at least partially) applied and the
				// readback — not blind retrying — confirms it.
				s.confirmed = true
				e.rec.AcksLost++
				e.count(obs.CtrFaultsHealed, 1)
				progress = true
				continue
			}
			if e.net.Now() < s.checkAt {
				continue
			}
			// The command is unconfirmed past its deadline: climb the
			// escalation ladder.
			switch {
			case s.attempts <= e.opts.MaxRetries:
				// Ladder 1: retry with capped exponential backoff.
				tk, checkAt := e.pushTracked(steps[i].Command, s.attempts, e.backoff(s.attempts))
				s.token, s.checkAt = tk, checkAt
				s.attempts++
				e.rec.Retries++
				progress = true
			case !s.repushed:
				// Ladder 2: force one immediate re-push of this command
				// and refresh any phase configuration found missing (a
				// session flap may have taken earlier state with it).
				for j := range steps {
					o := &st[j]
					if j == i || !o.confirmed {
						continue
					}
					if v := steps[j].Command.Verify; v != nil && !v(e.net) {
						tk, checkAt := e.pushTracked(steps[j].Command, o.attempts, 0)
						o.token, o.checkAt, o.confirmed = tk, checkAt, false
						o.attempts++
						e.rec.Repushes++
					}
				}
				tk, checkAt := e.pushTracked(steps[i].Command, s.attempts, 0)
				s.token, s.checkAt = tk, checkAt
				s.attempts++
				s.repushed = true
				e.rec.Repushes++
				progress = true
			default:
				// Ladder 3: the fault is persistent; degrade per the §8
				// policy instead of wedging until the phase deadline.
				e.rec.Escalations++
				return e.react(fmt.Errorf(
					"command %q unconfirmed after %d attempts (last fault presumed persistent)",
					steps[i].Command.Description, s.attempts))
			}
		}
		// Done when all commands confirmed and all posts hold — and, when a
		// convergence gate is installed, once the forwarding plane has been
		// observed quiescent. An empty queue satisfies any gate (no event
		// can change forwarding anymore), which keeps arbitrary gates from
		// deadlocking a drained network.
		done := true
		for i := range steps {
			if !st[i].pushed || !postOK(i) {
				done = false
				break
			}
		}
		if done {
			if e.opts.Convergence == nil || e.net.Converged() || e.opts.Convergence(e.net) {
				return nil
			}
		}
		if progress {
			watchdog = e.net.Now() + e.opts.ConditionTimeout
		}
		// Advance the network by one event. With an empty queue, advance
		// the clock to the next verification deadline instead — dropped
		// commands generate no events of their own.
		if !e.net.Step() {
			if next, ok := nextDeadline(st, func(s stepState) (bool, time.Duration) {
				return s.pushed && !s.confirmed, s.checkAt
			}); ok && next > e.net.Now() {
				e.net.RunUntil(next)
				continue
			}
			if !progress {
				// Nothing pending and no new command became applicable:
				// the plan is stuck — under supervision that is itself
				// the §8 "long-term anomaly" signal (an external event
				// invalidated a pre- or post-condition).
				return e.react(e.stuckError(p, steps, st))
			}
			continue
		}
		// §8 supervision: react to harmful external events immediately.
		if e.opts.Monitor != nil && !e.opts.Monitor(e.net) {
			e.rec.MonitorAlarms++
			if err := e.react(nil); err != nil {
				return err
			}
		}
		if e.net.Now() > watchdog {
			return e.react(e.stuckError(p, steps, st))
		}
	}
}

// react translates a detected anomaly into the configured reaction: commit
// or replan when supervised, otherwise the original error (nil fallbackErr
// means the monitor fired but the policy is ReactIgnore — keep going).
func (e *Executor) react(fallbackErr error) error {
	switch e.opts.Reaction {
	case ReactCommit:
		return errCommit
	case ReactReplan:
		re := &ReplanError{Prefix: e.curPrefix, SimTime: e.net.Now(), Cause: fallbackErr}
		if fallbackErr == nil && e.opts.Diagnose != nil {
			re.Invariant = e.opts.Diagnose(e.net)
		}
		return re
	}
	return fallbackErr
}

func (e *Executor) stuckError(p *plan.Plan, steps []plan.Step, st []stepState) error {
	for i, s := range steps {
		if !st[i].pushed {
			return fmt.Errorf("pre-conditions never satisfied for %q", s.Command.Description)
		}
		if !st[i].confirmed {
			return fmt.Errorf("command %q never confirmed (ack and readback both missing)", s.Command.Description)
		}
		for _, c := range s.Post {
			if !c.Check(e.net, p.Prefix) {
				return fmt.Errorf("post-condition %q never satisfied for %q", c, s.Command.Description)
			}
		}
	}
	return fmt.Errorf("stuck without unsatisfied conditions (timeout)")
}

// EstimateReconfigurationTime computes the paper's T̃ = T̃rm · (2 + R)
// approximation (§7.2) with T̃rm = 12 s.
func EstimateReconfigurationTime(rounds int) time.Duration {
	const tRM = 12 * time.Second
	return time.Duration(2+rounds) * tRM
}
