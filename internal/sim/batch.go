package sim

import (
	"fmt"
	"slices"

	"chameleon/internal/bgp"
	"chameleon/internal/obs"
	"chameleon/internal/topology"
)

// This file implements batched route injection and propagation. Injecting
// 100k subscriber routes one announcement at a time costs one message, one
// jitter draw, one decision pass and one export diff per route per hop.
// Batched injection sends ONE message per (neighbor, batch): the receiver
// applies every item to its Adj-RIB-In first, then runs a single decision
// pass per affected prefix and forwards the resulting changes as one batch
// per neighbor, so the whole storm traverses the network in O(sessions)
// messages instead of O(routes × sessions).
//
// Semantics match per-route delivery exactly for any item set with distinct
// prefixes: each prefix sees the same adjIn mutation and the same decision
// outcome; only the message count (and therefore jitter draws and delivery
// interleavings) differs — which is the point.

// InjectExternalRoutes makes external network ext originate every given
// announcement and advertise them over all of ext's eBGP sessions as one
// batch message per session. Announcements are processed in ascending
// prefix order regardless of input order, keeping executions deterministic.
func (n *Network) InjectExternalRoutes(ext topology.NodeID, anns []Announcement) {
	r := n.routers[ext]
	if !r.external {
		panic(fmt.Sprintf("sim: InjectExternalRoutes on internal node %d", ext))
	}
	if len(anns) == 0 {
		return
	}
	sorted := slices.Clone(anns)
	slices.SortFunc(sorted, func(a, b Announcement) int { return int(a.Prefix - b.Prefix) })
	for _, ann := range sorted {
		r.originated[ann.Prefix] = ann
	}
	for _, peer := range r.neighbors() {
		updates := make([]bgp.Route, 0, len(sorted))
		for _, ann := range sorted {
			updates = append(updates, externalRoute(peer, ext, ann))
		}
		n.sendMsg(&message{kind: msgBatch, from: ext, to: peer, updates: updates})
	}
}

// WithdrawExternalRoutes withdraws previously originated prefixes as one
// batch message per eBGP session.
func (n *Network) WithdrawExternalRoutes(ext topology.NodeID, prefixes []bgp.Prefix) {
	r := n.routers[ext]
	if !r.external {
		panic(fmt.Sprintf("sim: WithdrawExternalRoutes on internal node %d", ext))
	}
	if len(prefixes) == 0 {
		return
	}
	sorted := slices.Clone(prefixes)
	slices.Sort(sorted)
	for _, p := range sorted {
		delete(r.originated, p)
	}
	for _, peer := range r.neighbors() {
		n.sendMsg(&message{kind: msgBatch, from: ext, to: peer, withdraws: slices.Clone(sorted)})
	}
}

// externalRoute builds the route an external announcement becomes at the
// receiving border router.
func externalRoute(peer, ext topology.NodeID, ann Announcement) bgp.Route {
	return bgp.Route{
		Prefix:       ann.Prefix,
		Egress:       peer,
		External:     ext,
		Path:         []topology.NodeID{peer},
		LocalPref:    bgp.DefaultLocalPref,
		ASPathLen:    ann.ASPathLen,
		MED:          ann.MED,
		FromEBGP:     true,
		OriginatorID: topology.None,
	}
}

// deliverBatch applies a batch message at r: all Adj-RIB-In mutations
// first, then one decision pass per affected prefix, then at most one
// outgoing batch per neighbor.
func (n *Network) deliverBatch(r *router, m *message) {
	n.observe(obs.HistBatchSize, int64(len(m.updates)+len(m.withdraws)))
	if r.external {
		// External networks are sinks; record exports for the
		// no-transient-leak invariant.
		for _, rt := range m.updates {
			r.adjIn.Set(m.from, rt)
			n.ebgpExports[rt.Prefix]++
		}
		for _, p := range m.withdraws {
			r.adjIn.Withdraw(m.from, p)
		}
		return
	}
	affected := make([]bgp.Prefix, 0, len(m.updates)+len(m.withdraws))
	for _, rt := range m.updates {
		if !r.acceptable(rt) {
			// Loop-rejected; an earlier route from this neighbor is
			// implicitly replaced (treat as withdraw).
			n.adjInWithdraw(r, m.from, rt.Prefix)
			affected = append(affected, rt.Prefix)
			continue
		}
		n.adjInSet(r, m.from, rt)
		affected = append(affected, rt.Prefix)
	}
	for _, p := range m.withdraws {
		if n.adjInWithdraw(r, m.from, p) {
			affected = append(affected, p)
		}
	}

	changed := affected[:0]
	aggRelevant := false
	for _, p := range affected {
		if n.decide(r, p) {
			changed = append(changed, p)
			if !isSummary(r, p) {
				aggRelevant = true
			}
		}
	}
	if len(r.aggRules) > 0 && aggRelevant {
		// One aggregate re-evaluation per batch: a contributor change may
		// (de)activate a summary (§8). Summaries propagate per prefix via
		// runDecision; batches of distinct contributors behave identically
		// to per-route delivery.
		n.evalAggregates(r.id)
	}
	if len(changed) == 0 {
		return
	}
	for _, peer := range r.neighbors() {
		n.exportBatch(r, peer, changed)
	}
}

// exportBatch diffs the desired exports of r for the given prefixes against
// Adj-RIB-Out towards peer and sends at most one batch message carrying all
// resulting updates and withdrawals.
func (n *Network) exportBatch(r *router, peer topology.NodeID, prefixes []bgp.Prefix) {
	var updates []bgp.Route
	var withdraws []bgp.Prefix
	out := r.adjOut[peer]
	for _, p := range prefixes {
		want, ok := r.exportTo(peer, p, n.arena)
		var sent bgp.Route
		wasSent := false
		if out != nil {
			sent, wasSent = out.Get(p)
		}
		switch {
		case ok && wasSent && routesIdentical(want, sent):
			continue
		case ok:
			if out == nil {
				out = r.adjOutFor(peer)
			}
			out.Set(want)
			updates = append(updates, want)
		case wasSent:
			out.Delete(p)
			withdraws = append(withdraws, p)
		}
	}
	if len(updates) == 0 && len(withdraws) == 0 {
		return
	}
	n.sendMsg(&message{kind: msgBatch, from: r.id, to: peer, updates: updates, withdraws: withdraws})
}
