package sim_test

import (
	"testing"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// consistent checks §3 routing-state consistency: if node n selects
// ρ = [d, n1, …, ni, n] then ni selects [d, n1, …, ni].
func consistent(net *sim.Network, prefix bgp.Prefix) bool {
	routes, have := net.RoutingState(prefix)
	for _, n := range net.Graph().Internal() {
		if !have[n] {
			continue
		}
		r := routes[n]
		pre := r.Pre()
		if pre == topology.None {
			continue // learned over eBGP at the egress
		}
		if !have[pre] {
			return false
		}
		pr := routes[pre]
		if !pr.SameAnnouncement(r) || len(pr.Path) != len(r.Path)-1 {
			return false
		}
		for i := range pr.Path {
			if pr.Path[i] != r.Path[i] {
				return false
			}
		}
	}
	return true
}

func TestRunningExampleInitialState(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	if !net.Converged() {
		t.Fatal("network did not converge")
	}
	for _, n := range net.Graph().Internal() {
		best, ok := net.Best(n, s.Prefix)
		if !ok {
			t.Fatalf("node %d has no route", n)
		}
		if best.Egress != s.E1 {
			t.Errorf("node %d selects egress %d, want %d (ρ1, lp 200)", n, best.Egress, s.E1)
		}
		if best.LocalPref != 200 {
			t.Errorf("node %d has lp %d, want 200", n, best.LocalPref)
		}
	}
	if !consistent(net, s.Prefix) {
		t.Error("initial routing state inconsistent")
	}
	st := net.ForwardingState(s.Prefix)
	for _, n := range net.Graph().Internal() {
		if !st.Reach(n) {
			t.Errorf("node %d cannot reach d", n)
		}
	}
	if st[s.E1] != fwd.External {
		t.Errorf("egress next hop = %d, want External", st[s.E1])
	}
}

func TestRunningExampleReconfiguration(t *testing.T) {
	s := scenario.RunningExample()
	s.Commands[0].Apply(s.Net)
	s.Net.Run()
	n6 := s.Graph.MustNode("n6")
	for _, n := range s.Net.Graph().Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok {
			t.Fatalf("node %d lost its route", n)
		}
		if best.Egress != n6 {
			t.Errorf("node %d selects egress %d, want n6=%d", n, best.Egress, n6)
		}
	}
	if !consistent(s.Net, s.Prefix) {
		t.Error("final routing state inconsistent")
	}
}

func TestDeterminismForFixedSeed(t *testing.T) {
	a := scenario.RunningExample()
	b := scenario.RunningExample()
	if a.Net.MessagesProcessed() != b.Net.MessagesProcessed() {
		t.Errorf("same seed processed %d vs %d messages",
			a.Net.MessagesProcessed(), b.Net.MessagesProcessed())
	}
	sa := a.Net.ForwardingState(a.Prefix)
	sb := b.Net.ForwardingState(b.Prefix)
	if !sa.Equal(sb) {
		t.Error("same seed produced different forwarding states")
	}
}

func TestRouteReflectionPropagation(t *testing.T) {
	s := scenario.RunningExample()
	n3 := s.Graph.MustNode("n3")
	best, ok := s.Net.Best(n3, s.Prefix)
	if !ok {
		t.Fatal("n3 has no route")
	}
	// n3 is a client: it must have learned ρ1 via one of the reflectors.
	pre := best.Pre()
	n2, n5 := s.Graph.MustNode("n2"), s.Graph.MustNode("n5")
	if pre != n2 && pre != n5 {
		t.Errorf("n3 learned route from %d, want a reflector (%d or %d)", pre, n2, n5)
	}
	// n3 must know the route from *both* reflectors (redundancy, §3).
	cands := s.Net.Candidates(n3, s.Prefix)
	if len(cands) != 2 {
		t.Errorf("n3 has %d candidates, want 2 (one per reflector)", len(cands))
	}
}

func TestClientsDoNotReflect(t *testing.T) {
	s := scenario.RunningExample()
	// n4 (a client) must never have learned a route from another client.
	n1, n4 := s.Graph.MustNode("n1"), s.Graph.MustNode("n4")
	for _, r := range s.Net.Candidates(n4, s.Prefix) {
		if r.Pre() == n1 {
			t.Errorf("n4 learned a route directly from client n1: %v", r)
		}
	}
}

func TestTemporarysessionGivesDirectRoute(t *testing.T) {
	s := scenario.RunningExample()
	n1, n4 := s.Graph.MustNode("n1"), s.Graph.MustNode("n4")
	s.Net.SetSession(n4, n1, bgp.IBGPPeer)
	s.Net.Run()
	found := false
	for _, r := range s.Net.Candidates(n4, s.Prefix) {
		if r.Pre() == n1 && len(r.Path) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("n4 did not learn the direct route over the temporary session")
	}
}

func TestWeightPinsSelection(t *testing.T) {
	s := scenario.RunningExample()
	n3, n2 := s.Graph.MustNode("n3"), s.Graph.MustNode("n2")
	// Pin n3's selection to the route from reflector n2 regardless of IGP
	// cost (weight dominates every other attribute).
	s.Net.UpdateRouteMap(n3, n2, sim.In, func(rm *sim.RouteMap) {
		rm.Add(sim.Entry{Order: 1, Match: sim.Match{Neighbor: sim.NodeP(n2)},
			Action: sim.Action{SetWeight: sim.IntP(1000)}})
	})
	s.Net.Run()
	best, _ := s.Net.Best(n3, s.Prefix)
	if best.Pre() != n2 {
		t.Errorf("n3 selects route from %d, want pinned %d", best.Pre(), n2)
	}
	// Weight is local: n6's state must be unaffected by n3's pin.
	if !consistent(s.Net, s.Prefix) {
		t.Error("pinning between equivalent routes broke consistency")
	}
}

func TestWithdrawPropagates(t *testing.T) {
	s := scenario.RunningExample()
	ext6 := s.Graph.MustNode("ext6")
	s.Net.WithdrawExternalRoute(ext6, s.Prefix)
	s.Net.Run()
	// ρ6 must be gone everywhere; everyone still has ρ1.
	for _, n := range s.Net.Graph().Internal() {
		for _, r := range s.Net.Candidates(n, s.Prefix) {
			if r.Egress == s.Graph.MustNode("n6") {
				t.Errorf("node %d still knows withdrawn route %v", n, r)
			}
		}
		if _, ok := s.Net.Best(n, s.Prefix); !ok {
			t.Errorf("node %d lost ρ1 too", n)
		}
	}
}

func TestSessionRemovalWithdrawsRoutes(t *testing.T) {
	s := scenario.RunningExample()
	n1, ext1 := s.Graph.MustNode("n1"), s.Graph.MustNode("ext1")
	s.Net.RemoveSession(n1, ext1)
	s.Net.Run()
	n6 := s.Graph.MustNode("n6")
	for _, n := range s.Net.Graph().Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok {
			t.Fatalf("node %d has no route after session removal", n)
		}
		if best.Egress != n6 {
			t.Errorf("node %d egress = %d, want %d", n, best.Egress, n6)
		}
	}
}

func TestLinkFailureReroutesForwarding(t *testing.T) {
	s := scenario.RunningExample()
	n4, n1 := s.Graph.MustNode("n4"), s.Graph.MustNode("n1")
	before := s.Net.ForwardingState(s.Prefix)
	if before[n4] != n1 {
		t.Fatalf("precondition: n4 forwards to %d, want n1=%d", before[n4], n1)
	}
	if !s.Net.FailLink(n4, n1) {
		t.Fatal("FailLink failed")
	}
	s.Net.Run()
	after := s.Net.ForwardingState(s.Prefix)
	if after[n4] == n1 {
		t.Error("n4 still forwards over the failed link")
	}
	if !after.Reach(n4) {
		t.Error("n4 lost reachability despite an alternate path")
	}
}

func TestTraceRecording(t *testing.T) {
	s := scenario.RunningExample()
	tr := s.Net.Trace(s.Prefix)
	if tr == nil || len(tr.States) == 0 {
		t.Fatal("no trace recorded")
	}
	final := tr.States[len(tr.States)-1]
	if !final.Equal(s.Net.ForwardingState(s.Prefix)) {
		t.Error("last trace state differs from live state")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := scenario.RunningExample()
	c := s.Net.Clone()
	if !c.ForwardingState(s.Prefix).Equal(s.Net.ForwardingState(s.Prefix)) {
		t.Fatal("clone differs from source")
	}
	s.Commands[0].Apply(c)
	c.Run()
	n6 := s.Graph.MustNode("n6")
	if best, _ := c.Best(s.Graph.MustNode("n1"), s.Prefix); best.Egress != n6 {
		t.Error("clone did not reconfigure")
	}
	if best, _ := s.Net.Best(s.Graph.MustNode("n1"), s.Prefix); best.Egress != s.E1 {
		t.Error("reconfiguring the clone affected the original")
	}
}

func TestEBGPExportHappens(t *testing.T) {
	s := scenario.RunningExample()
	// ext6 must have received ρ1 (the network's best) over eBGP.
	if s.Net.EBGPExports(s.Prefix) == 0 {
		t.Error("no routes were exported to external peers")
	}
}

func TestCaseStudyAbilene(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Net.Graph().Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok {
			t.Fatalf("node %d has no route", n)
		}
		if best.Egress != s.E1 {
			t.Errorf("node %d initially selects %d, want e1=%d", n, best.Egress, s.E1)
		}
	}
	if !consistent(s.Net, s.Prefix) {
		t.Error("initial state inconsistent")
	}
	// Apply the original command: everyone must leave e1.
	s.Commands[0].Apply(s.Net)
	s.Net.Run()
	for _, n := range s.Net.Graph().Internal() {
		best, ok := s.Net.Best(n, s.Prefix)
		if !ok {
			t.Fatalf("node %d has no route after reconfiguration", n)
		}
		if best.Egress == s.E1 {
			t.Errorf("node %d still uses e1", n)
		}
		if best.Egress != s.E2 && best.Egress != s.E3 {
			t.Errorf("node %d egress %d is neither e2 nor e3", n, best.Egress)
		}
	}
	if !consistent(s.Net, s.Prefix) {
		t.Error("final state inconsistent")
	}
}

func TestCaseStudyConsistencyAcrossCorpusSample(t *testing.T) {
	for _, name := range []string{"Compuserve", "Sprint", "EEnet", "Aarnet", "Agis"} {
		s, err := scenario.CaseStudy(name, scenario.Config{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !consistent(s.Net, s.Prefix) {
			t.Errorf("%s: inconsistent converged state", name)
		}
		st := s.Net.ForwardingState(s.Prefix)
		for _, n := range s.Net.Graph().Internal() {
			if !st.Reach(n) {
				t.Errorf("%s: node %d unreachable", name, n)
			}
		}
	}
}

func TestFinalNetwork(t *testing.T) {
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	final := s.FinalNetwork()
	// Original must still be in the initial state.
	if best, _ := s.Net.Best(s.E2, s.Prefix); best.Egress != s.E1 {
		t.Error("FinalNetwork mutated the original")
	}
	if best, _ := final.Best(s.E2, s.Prefix); best.Egress == s.E1 {
		t.Error("final network still uses e1")
	}
}

func TestSessionRemovalDropsInFlightMessages(t *testing.T) {
	s := scenario.RunningExample()
	n1, ext1 := s.Graph.MustNode("n1"), s.Graph.MustNode("ext1")
	// Trigger an announcement, then remove the session before delivery.
	s.Net.WithdrawExternalRoute(ext1, s.Prefix)
	s.Net.RemoveSession(n1, ext1)
	s.Net.Run() // the in-flight withdraw towards n1 must be discarded safely
	if _, ok := s.Net.Best(n1, s.Prefix); !ok {
		// n1 already dropped state synchronously during RemoveSession —
		// either way it must end on ρ6.
	}
	n6 := s.Graph.MustNode("n6")
	best, ok := s.Net.Best(n1, s.Prefix)
	if !ok || best.Egress != n6 {
		t.Errorf("n1 best = %v, %v; want egress n6", best, ok)
	}
}

func TestRouteMapDenyIngress(t *testing.T) {
	s := scenario.RunningExample()
	n3, n2, n5 := s.Graph.MustNode("n3"), s.Graph.MustNode("n2"), s.Graph.MustNode("n5")
	// Deny everything from n2 at n3: n3 must fall back to n5's route.
	s.Net.UpdateRouteMap(n3, n2, sim.In, func(rm *sim.RouteMap) {
		rm.Add(sim.Entry{Order: 1, Match: sim.Match{Neighbor: sim.NodeP(n2)},
			Action: sim.Action{Deny: true}})
	})
	s.Net.Run()
	best, ok := s.Net.Best(n3, s.Prefix)
	if !ok {
		t.Fatal("n3 lost all routes")
	}
	if best.Pre() != n5 {
		t.Errorf("n3 selects from %d, want n5=%d", best.Pre(), n5)
	}
}

// TestMatchByEgress reproduces Chameleon's core mechanism chain: weight-pin
// the egress to its own eBGP route so the new route becomes visible, open a
// temporary session for direct visibility, then weight-pin the client.
func TestMatchByEgress(t *testing.T) {
	s := scenario.RunningExample()
	n3, n6 := s.Graph.MustNode("n3"), s.Graph.MustNode("n6")
	ext6 := s.Graph.MustNode("ext6")
	// Step 1: n6 prefers its own eBGP route ρ6 (weight is local, so the
	// rest of the network keeps ρ1 with lp 200).
	s.Net.UpdateRouteMap(n6, ext6, sim.In, func(rm *sim.RouteMap) {
		rm.Add(sim.Entry{Order: 2, Match: sim.Match{Egress: sim.NodeP(n6)},
			Action: sim.Action{SetWeight: sim.IntP(900)}})
	})
	s.Net.Run()
	if best, _ := s.Net.Best(n6, s.Prefix); best.Egress != n6 {
		t.Fatalf("n6 egress = %d, want itself", best.Egress)
	}
	// The reflectors must still select ρ1: weight must not propagate.
	n2 := s.Graph.MustNode("n2")
	if best, _ := s.Net.Best(n2, s.Prefix); best.Egress != s.E1 {
		t.Fatalf("weight leaked: n2 egress = %d", best.Egress)
	}
	// Step 2: temporary session n3–n6 gives n3 direct visibility of ρ6.
	s.Net.SetSession(n3, n6, bgp.IBGPPeer)
	// Step 3: n3 prefers any route with egress n6.
	s.Net.UpdateRouteMap(n3, n6, sim.In, func(rm *sim.RouteMap) {
		rm.Add(sim.Entry{Order: 2, Match: sim.Match{Egress: sim.NodeP(n6)},
			Action: sim.Action{SetWeight: sim.IntP(900)}})
	})
	s.Net.Run()
	best, _ := s.Net.Best(n3, s.Prefix)
	if best.Egress != n6 {
		t.Errorf("n3 egress = %d, want n6=%d despite lower lp", best.Egress, n6)
	}
}

func TestTableSizeTracking(t *testing.T) {
	s := scenario.RunningExample()
	if s.Net.TableEntries() == 0 {
		t.Error("converged network should hold routes")
	}
	if s.Net.MaxTableEntries() < s.Net.TableEntries() {
		t.Error("max table entries below current")
	}
}
