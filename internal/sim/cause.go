package sim

import (
	"fmt"
	"time"

	"chameleon/internal/topology"
)

// This file implements the simulator's causal provenance layer. Every
// injected configuration command and scheduled external event registers a
// Cause; the event loop carries the active cause through BGP message
// propagation (incrementing a hop counter per message), the decision
// process stamps it on the dirty set, and forwarding-state snapshots hand
// it to observers as a Provenance record. The whole chain is a pure
// function of the event sequence — cause IDs are registration ordinals and
// activation times are simulated time, never wall clock — so provenance is
// byte-identical across re-runs, worker counts and parallelism settings.

// CauseKind classifies the root of a causal chain.
type CauseKind int

const (
	// CauseNone marks state with no registered root: initial bring-up
	// convergence and direct test/API mutations outside any command.
	CauseNone CauseKind = iota
	// CauseCommand roots the chain at a configuration command pushed
	// through the fault layer (ScheduleCommand) or applied by a baseline
	// runner (snowcap).
	CauseCommand
	// CauseEvent roots the chain at a scheduled external event — a link
	// failure, a session flap, a route injection from a chaos schedule.
	CauseEvent
)

func (k CauseKind) String() string {
	switch k {
	case CauseNone:
		return "init"
	case CauseCommand:
		return "command"
	case CauseEvent:
		return "event"
	}
	return fmt.Sprintf("CauseKind(%d)", int(k))
}

// CauseID names a registered cause; 0 means "no cause".
type CauseID uint32

// Cause is one registered root of a causal chain.
type Cause struct {
	ID    CauseID
	Kind  CauseKind
	Label string          // command description or event name
	Node  topology.NodeID // target router (topology.None for network-wide events)
	Phase string          // execution phase active at registration
	Seq   uint64          // registration ordinal, deterministic tie-break
	// At is the simulated time the cause first fired (its root event
	// executed); -1 until then. Blame latency is onset − At.
	At time.Duration
}

// causeMark is the dirty-set annotation: which cause last changed a
// prefix's routing and at what propagation depth.
type causeMark struct {
	cause CauseID
	hops  int
}

// Provenance is the causal annotation attached to one forwarding-state
// snapshot: the resolved root cause (zero Cause when none) and the number
// of BGP message hops between the root event and this state change.
type Provenance struct {
	Cause Cause
	Hops  int
}

// Rooted reports whether the snapshot descends from a registered cause.
func (p Provenance) Rooted() bool { return p.Cause.ID != 0 }

// NewCause registers a cause and returns its ID. The cause inherits the
// current phase label; its activation time is stamped when its root event
// first executes.
func (n *Network) NewCause(kind CauseKind, label string, node topology.NodeID) CauseID {
	id := CauseID(len(n.causes) + 1)
	n.causes = append(n.causes, Cause{
		ID:    id,
		Kind:  kind,
		Label: label,
		Node:  node,
		Phase: n.curPhase,
		Seq:   uint64(len(n.causes)),
		At:    -1,
	})
	return id
}

// CauseOf resolves a cause ID (false for 0 or unknown IDs).
func (n *Network) CauseOf(id CauseID) (Cause, bool) {
	if id == 0 || int(id) > len(n.causes) {
		return Cause{}, false
	}
	return n.causes[id-1], true
}

// Causes returns the number of registered causes.
func (n *Network) Causes() int { return len(n.causes) }

// SetPhaseLabel names the execution phase newly registered causes are
// attributed to (empty clears it). The runtime executor sets it per phase.
func (n *Network) SetPhaseLabel(phase string) { n.curPhase = phase }

// PhaseLabel returns the current phase label.
func (n *Network) PhaseLabel() string { return n.curPhase }

// ScheduleCausedAt runs fn when the simulated clock reaches t, rooting the
// causal chain of everything fn sets in motion at the given cause.
func (n *Network) ScheduleCausedAt(t time.Duration, id CauseID, fn func(*Network)) {
	if t < n.now {
		t = n.now
	}
	n.push(&event{at: t, fn: fn, cause: id})
}

// ScheduleEventAt registers a CauseEvent named label and runs fn at t with
// that cause as the provenance root. It returns the cause ID.
func (n *Network) ScheduleEventAt(t time.Duration, label string, fn func(*Network)) CauseID {
	id := n.NewCause(CauseEvent, label, topology.None)
	n.ScheduleCausedAt(t, id, fn)
	return id
}

// activateCause stamps the cause's first firing time.
func (n *Network) activateCause(id CauseID) {
	if id != 0 && n.causes[id-1].At < 0 {
		n.causes[id-1].At = n.now
	}
}

// provenance resolves a dirty-set mark into the snapshot annotation.
func (n *Network) provenance(mark causeMark) Provenance {
	pr := Provenance{Hops: mark.hops}
	if c, ok := n.CauseOf(mark.cause); ok {
		pr.Cause = c
	}
	return pr
}
