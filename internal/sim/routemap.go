// Package sim is an event-based BGP simulator: the substrate standing in
// for the paper's ~30k-line Rust simulator and its hardware testbed. It
// models routers with full RIBs, iBGP route reflection (RFC 4456), eBGP
// peering, route maps, per-session FIFO message delivery with configurable
// delays, and timed forwarding-state traces.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"chameleon/internal/bgp"
	"chameleon/internal/topology"
)

// Direction distinguishes ingress (applied to received routes) from egress
// (applied when advertising) route maps.
type Direction int

const (
	// In is the ingress direction.
	In Direction = iota
	// Out is the egress direction.
	Out
)

func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Match selects the routes a route-map entry applies to. Nil fields match
// anything.
type Match struct {
	Prefix   *bgp.Prefix      // match a specific prefix
	Neighbor *topology.NodeID // match routes from a specific neighbor (In) / to a neighbor (Out)
	Egress   *topology.NodeID // match routes whose egress e(ρ) equals this node
}

// Matches reports whether the entry applies to the given route exchanged
// with the given neighbor.
func (m Match) Matches(neighbor topology.NodeID, r bgp.Route) bool {
	if m.Prefix != nil && *m.Prefix != r.Prefix {
		return false
	}
	if m.Neighbor != nil && *m.Neighbor != neighbor {
		return false
	}
	if m.Egress != nil && *m.Egress != r.Egress {
		return false
	}
	return true
}

// Action is what a matching route-map entry does to a route.
type Action struct {
	Deny         bool
	SetWeight    *int
	SetLocalPref *uint32
}

// Entry is one clause of a route map; entries are evaluated in Order, and
// the first match wins (deny or permit+set). A route matched by no entry is
// permitted unchanged.
type Entry struct {
	Order  int
	Match  Match
	Action Action
}

// RouteMap is an ordered list of entries.
type RouteMap struct {
	entries []Entry
}

// Add inserts an entry keeping the map sorted by Order (stable for equal
// orders).
func (rm *RouteMap) Add(e Entry) {
	rm.entries = append(rm.entries, e)
	sort.SliceStable(rm.entries, func(i, j int) bool {
		return rm.entries[i].Order < rm.entries[j].Order
	})
}

// Remove deletes all entries with the given order, reporting how many were
// removed.
func (rm *RouteMap) Remove(order int) int {
	kept := rm.entries[:0]
	removed := 0
	for _, e := range rm.entries {
		if e.Order == order {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	rm.entries = kept
	return removed
}

// Has reports whether any entry with the given order exists.
func (rm *RouteMap) Has(order int) bool {
	if rm == nil {
		return false
	}
	for _, e := range rm.entries {
		if e.Order == order {
			return true
		}
	}
	return false
}

// Len returns the number of entries.
func (rm *RouteMap) Len() int {
	if rm == nil {
		return 0
	}
	return len(rm.entries)
}

// Apply runs the route map over route r exchanged with neighbor. It returns
// the (possibly modified) route and false if the route is denied.
func (rm *RouteMap) Apply(neighbor topology.NodeID, r bgp.Route) (bgp.Route, bool) {
	if rm == nil {
		return r, true
	}
	for _, e := range rm.entries {
		if !e.Match.Matches(neighbor, r) {
			continue
		}
		if e.Action.Deny {
			return r, false
		}
		if e.Action.SetWeight != nil {
			r.Weight = *e.Action.SetWeight
		}
		if e.Action.SetLocalPref != nil {
			r.LocalPref = *e.Action.SetLocalPref
		}
		return r, true
	}
	return r, true
}

// String renders the route map for debugging.
func (rm *RouteMap) String() string {
	if rm == nil || len(rm.entries) == 0 {
		return "(empty)"
	}
	var b strings.Builder
	for i, e := range rm.entries {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%d:", e.Order)
		if e.Action.Deny {
			b.WriteString("deny")
		} else {
			b.WriteString("permit")
			if e.Action.SetWeight != nil {
				fmt.Fprintf(&b, " weight=%d", *e.Action.SetWeight)
			}
			if e.Action.SetLocalPref != nil {
				fmt.Fprintf(&b, " lp=%d", *e.Action.SetLocalPref)
			}
		}
	}
	return b.String()
}

// Ptr helpers for building matches and actions concisely.

// PrefixP returns a pointer to p.
func PrefixP(p bgp.Prefix) *bgp.Prefix { return &p }

// NodeP returns a pointer to n.
func NodeP(n topology.NodeID) *topology.NodeID { return &n }

// IntP returns a pointer to v.
func IntP(v int) *int { return &v }

// U32P returns a pointer to v.
func U32P(v uint32) *uint32 { return &v }
