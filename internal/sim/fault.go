package sim

import (
	"fmt"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/topology"
)

// This file implements the simulator's fault-injection layer: a seeded,
// deterministic hook on configuration-command application and BGP message
// delivery. It models the unreliable substrate a real controller pushes
// commands into — commands can be lost, delayed, applied twice, or applied
// without the acknowledgment making it back — and BGP sessions can flap.
// The runtime controller is expected to observe faults only through the
// CommandToken (the ack channel) and the network state itself, never
// through the injector's internal truth.

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// FaultNone leaves the command/message untouched.
	FaultNone FaultKind = iota
	// FaultDrop silently loses a command: it never reaches the router and
	// no acknowledgment is produced. Not honored for messages — the
	// simulated sessions run over TCP and never lose individual messages;
	// whole-session loss is modeled by FlapSession.
	FaultDrop
	// FaultDelay multiplies the command/message latency by DelayFactor.
	FaultDelay
	// FaultDuplicate applies the command (or delivers the message) twice,
	// the second copy arriving later. Chameleon's commands are idempotent,
	// so a duplicate is only harmful through its timing.
	FaultDuplicate
	// FaultPartial applies the command's effect but loses the
	// acknowledgment: the controller sees a failure for a command that in
	// fact (partially or fully) ran, and must verify the effect on the
	// network instead of trusting the ack. Command-only.
	FaultPartial
	// FaultFlap is not decided per command: it names the scheduled
	// session-flap fault (teardown + re-establish after a hold time) in
	// fault schedules and reports.
	FaultFlap
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultPartial:
		return "partial"
	case FaultFlap:
		return "flap"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// CommandFault is the injector's decision for one command application
// attempt.
type CommandFault struct {
	Kind FaultKind
	// DelayFactor multiplies the command latency for FaultDelay and spaces
	// the second application for FaultDuplicate. Values ≤ 1 are ignored.
	DelayFactor float64
}

// MessageFault is the injector's decision for one BGP message delivery.
// Only FaultDelay and FaultDuplicate are honored (see FaultDrop).
type MessageFault struct {
	Kind        FaultKind
	DelayFactor float64
}

// FaultInjector decides the fate of every command application and message
// delivery. Implementations must be deterministic functions of their own
// seeded state and the call sequence, so a fixed seed reproduces the exact
// fault schedule.
type FaultInjector interface {
	// CommandFault is consulted once per scheduled command application;
	// attempt counts the controller's pushes of the same command (0 for
	// the first push, 1 for the first retry, …).
	CommandFault(node topology.NodeID, description string, attempt int) CommandFault
	// MessageFault is consulted once per enqueued BGP message.
	MessageFault(from, to topology.NodeID) MessageFault
}

// SetFaultInjector installs fi on the network (nil removes it). Cloned
// networks never inherit the injector.
func (n *Network) SetFaultInjector(fi FaultInjector) { n.faults = fi }

// FaultInjectorInstalled reports whether a fault injector is active.
func (n *Network) FaultInjectorInstalled() bool { return n.faults != nil }

// CommandToken is the controller's view of one pushed command: whether the
// router acknowledged it, and a handle to cancel it while still in flight.
// Applied/Fault expose the simulator's ground truth for tests and chaos
// verification; a faithful controller bases decisions only on Acked and on
// querying the network.
type CommandToken struct {
	applied   bool
	acked     bool
	dropped   bool
	cancelled bool
	kind      FaultKind
	at        time.Duration
}

// Acked reports whether the router acknowledged the application. This is
// the only fault-layer signal a controller may trust.
func (t *CommandToken) Acked() bool { return t.acked }

// Applied reports whether the command's effect reached the network
// (ground truth; for verification harnesses).
func (t *CommandToken) Applied() bool { return t.applied }

// Dropped reports whether the fault layer discarded the command
// (ground truth).
func (t *CommandToken) Dropped() bool { return t.dropped }

// Cancelled reports whether the token was cancelled before applying.
func (t *CommandToken) Cancelled() bool { return t.cancelled }

// Fault returns the fault kind injected into this application.
func (t *CommandToken) Fault() FaultKind { return t.kind }

// ScheduledAt returns the (post-fault) simulated time the primary
// application is due; meaningless for dropped commands.
func (t *CommandToken) ScheduledAt() time.Duration { return t.at }

// Cancel prevents a not-yet-applied command (and any pending duplicate of
// it) from ever applying. Cancelling an already-applied command is a no-op.
func (t *CommandToken) Cancel() {
	if !t.applied {
		t.cancelled = true
	}
}

// ScheduleCommand pushes cmd through the fault layer after delay — the way
// a controller pushes configuration at a router. The returned token is the
// controller's acknowledgment channel; with no injector installed the
// command applies after exactly delay and acks.
func (n *Network) ScheduleCommand(delay time.Duration, cmd Command, attempt int) *CommandToken {
	n.count(obs.CtrCommandsScheduled, 1)
	tk := &CommandToken{kind: FaultNone}
	f := CommandFault{}
	if n.faults != nil {
		f = n.faults.CommandFault(cmd.Node, cmd.Description, attempt)
	}
	if f.Kind != FaultNone {
		n.count(obs.CtrFaultsCommand, 1)
	}
	tk.kind = f.Kind
	switch f.Kind {
	case FaultDrop:
		// Lost on the way to the router: nothing is scheduled and the
		// controller hears nothing.
		tk.dropped = true
		return tk
	case FaultDelay:
		if f.DelayFactor > 1 {
			delay = time.Duration(float64(delay) * f.DelayFactor)
		}
	}
	tk.at = n.now + delay
	apply := cmd.Apply
	n.pendingCmds = append(n.pendingCmds, tk)
	// Each scheduled application roots its own causal chain, so violations
	// set off by the resulting BGP churn blame this command (cause.go).
	cause := n.NewCause(CauseCommand, cmd.Description, cmd.Node)
	n.ScheduleCausedAt(n.now+delay, cause, func(net *Network) {
		if tk.cancelled {
			return
		}
		apply(net)
		tk.applied = true
		// FaultPartial: the effect is in, the ack is lost.
		if f.Kind != FaultPartial {
			tk.acked = true
		}
	})
	if f.Kind == FaultDuplicate {
		// A straggling second application. Commands are idempotent, so the
		// duplicate matters only if it lands after a later command undid
		// the first application; keep it close behind the original.
		extra := delay / 2
		if f.DelayFactor > 1 {
			extra = time.Duration(float64(delay) * (f.DelayFactor - 1) / 2)
		}
		n.ScheduleCausedAt(n.now+delay+extra, cause, func(net *Network) {
			if tk.cancelled {
				return
			}
			apply(net)
		})
	}
	return tk
}

// CancelPendingCommands cancels every scheduled-but-unapplied command
// (including pending duplicates), so that aborting a plan is deterministic:
// no in-flight configuration can land after the abort's cleanup. It returns
// the number of commands cancelled.
func (n *Network) CancelPendingCommands() int {
	cancelled := 0
	for _, tk := range n.pendingCmds {
		if !tk.applied && !tk.cancelled {
			tk.Cancel()
			cancelled++
		}
	}
	n.pendingCmds = n.pendingCmds[:0]
	n.count(obs.CtrCommandsCancelled, int64(cancelled))
	return cancelled
}

// PendingCommands returns the number of scheduled commands that have
// neither applied nor been cancelled yet.
func (n *Network) PendingCommands() int {
	pending := 0
	for _, tk := range n.pendingCmds {
		if !tk.applied && !tk.cancelled {
			pending++
		}
	}
	return pending
}

// FlapSession models a BGP session flap: the session between a and b is
// torn down (both ends drop the learned routes) and re-established with the
// same role after hold. Re-establishment advertises both ends' current best
// routes, as a real session restart would. Returns false if no session
// exists.
func (n *Network) FlapSession(a, b topology.NodeID, hold time.Duration) bool {
	kind, ok := n.routers[a].sessions[b]
	if !ok {
		return false
	}
	n.RemoveSession(a, b)
	n.ScheduleAfter(hold, func(net *Network) {
		if _, up := net.routers[a].sessions[b]; up {
			return // something re-established it meanwhile
		}
		net.SetSession(a, b, kind)
	})
	return true
}
