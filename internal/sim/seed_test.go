package sim_test

import (
	"testing"
	"time"

	"chameleon/internal/scenario"
	"chameleon/internal/sim"
)

func TestDeriveSeedStreamsDistinct(t *testing.T) {
	seen := make(map[uint64]uint64)
	for base := uint64(0); base < 8; base++ {
		for stream := uint64(0); stream < 128; stream++ {
			s := sim.DeriveSeed(base, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed(%d, %d) collides with earlier stream %d", base, stream, prev)
			}
			seen[s] = stream
			if s != sim.DeriveSeed(base, stream) {
				t.Fatalf("DeriveSeed(%d, %d) is not a pure function", base, stream)
			}
		}
	}
}

// TestBeginRunIsolatesStreams checks the per-run RNG ownership fix: once a
// network is past run 0, identical actions on identical converged state must
// take identical simulated time, no matter how many jitter draws earlier
// activity on that particular network consumed.
func TestBeginRunIsolatesStreams(t *testing.T) {
	a := scenario.RunningExample()
	b := scenario.RunningExample()

	// Consume extra jitter draws on a only: flap an eBGP session and let
	// it recover. The converged state matches b's again, but a's
	// constructor RNG stream has advanced past b's.
	if !a.Net.FlapSession(a.E1, a.Ext[0], 100*time.Millisecond) {
		t.Fatal("no session between E1 and its external peer")
	}
	a.Net.Run()
	if !a.Net.ForwardingState(a.Prefix).Equal(b.Net.ForwardingState(b.Prefix)) {
		t.Fatal("flap did not recover to the original forwarding state")
	}

	// Run 0 keeps the constructor stream (preserving historical traces);
	// every later run reseeds from (seed, run).
	for _, n := range []*sim.Network{a.Net, b.Net} {
		if got := n.BeginRun(); got != 0 {
			t.Fatalf("first BeginRun = %d, want 0", got)
		}
		if got := n.BeginRun(); got != 1 {
			t.Fatalf("second BeginRun = %d, want 1", got)
		}
	}

	ta, tb := a.Net.Now(), b.Net.Now()
	a.Net.FlapSession(a.E1, a.Ext[0], 100*time.Millisecond)
	b.Net.FlapSession(b.E1, b.Ext[0], 100*time.Millisecond)
	a.Net.Run()
	b.Net.Run()
	if da, db := a.Net.Now()-ta, b.Net.Now()-tb; da != db {
		t.Errorf("run-1 flap recovery took %v on the pre-used network vs %v on the fresh one", da, db)
	}
}
