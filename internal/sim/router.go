package sim

import (
	"slices"

	"chameleon/internal/bgp"
	"chameleon/internal/topology"
)

// router is the per-node BGP state.
type router struct {
	id       topology.NodeID
	external bool

	// sessions maps each BGP neighbor to this router's role towards it.
	sessions map[topology.NodeID]bgp.SessionKind

	// Route maps, per direction and neighbor.
	maps map[Direction]map[topology.NodeID]*RouteMap

	adjIn  *bgp.AdjIn  // raw routes as received, before ingress policy
	locRib *bgp.LocRIB // selected route per prefix, after ingress policy

	// adjOut records the last route sent to each neighbor per prefix, so
	// exports can be diffed and withdrawals generated.
	adjOut map[topology.NodeID]map[bgp.Prefix]bgp.Route

	// originated holds the announcements of an external network.
	originated map[bgp.Prefix]Announcement

	// aggRules are the router's §8 border-aggregation rules.
	aggRules []AggregateRule
}

// Announcement describes a route an external network originates.
type Announcement struct {
	Prefix    bgp.Prefix
	ASPathLen int
	MED       uint32
}

func newRouter(id topology.NodeID, external bool) *router {
	return &router{
		id:       id,
		external: external,
		sessions: make(map[topology.NodeID]bgp.SessionKind),
		maps: map[Direction]map[topology.NodeID]*RouteMap{
			In:  make(map[topology.NodeID]*RouteMap),
			Out: make(map[topology.NodeID]*RouteMap),
		},
		adjIn:      bgp.NewAdjIn(),
		locRib:     bgp.NewLocRIB(),
		adjOut:     make(map[topology.NodeID]map[bgp.Prefix]bgp.Route),
		originated: make(map[bgp.Prefix]Announcement),
	}
}

func (r *router) routeMap(dir Direction, neighbor topology.NodeID) *RouteMap {
	return r.maps[dir][neighbor]
}

func (r *router) ensureRouteMap(dir Direction, neighbor topology.NodeID) *RouteMap {
	rm := r.maps[dir][neighbor]
	if rm == nil {
		rm = &RouteMap{}
		r.maps[dir][neighbor] = rm
	}
	return rm
}

// neighbors returns the router's BGP neighbors sorted by ID.
func (r *router) neighbors() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(r.sessions))
	for n := range r.sessions {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// ingressCandidates applies ingress policy to every Adj-RIB-In entry for
// prefix and returns the admitted routes.
func (r *router) ingressCandidates(prefix bgp.Prefix) []bgp.Route {
	var out []bgp.Route
	for _, nr := range r.adjIn.NeighborCandidates(prefix) {
		route, ok := r.routeMap(In, nr.Neighbor).Apply(nr.Neighbor, nr.Route)
		if !ok {
			continue
		}
		out = append(out, route)
	}
	return out
}

// acceptable implements RFC 4456 / path loop checks on a received route.
func (r *router) acceptable(route bgp.Route) bool {
	if route.OriginatorID == r.id {
		return false
	}
	if slices.Contains(route.ClusterList, r.id) {
		return false
	}
	// Path loop: the route's propagation path must not already contain us
	// before the final element (which is us, by Extend).
	for _, n := range route.Path[:max(0, len(route.Path)-1)] {
		if n == r.id {
			return false
		}
	}
	return true
}

// exportTo computes the route this router would advertise to neighbor for
// prefix, applying the iBGP/eBGP/route-reflection export rules and the
// egress route map. ok is false if nothing may be advertised.
func (r *router) exportTo(neighbor topology.NodeID, prefix bgp.Prefix) (bgp.Route, bool) {
	best, have := r.locRib.Get(prefix)
	if !have {
		return bgp.Route{}, false
	}
	toKind, connected := r.sessions[neighbor]
	if !connected {
		return bgp.Route{}, false
	}
	// Summary-only aggregation suppresses the contributors (§8).
	if r.suppressed(prefix) {
		return bgp.Route{}, false
	}
	// Never advertise a route back onto the session it was learned from.
	learnedFrom := best.Pre()
	if best.FromEBGP {
		learnedFrom = best.External
	}
	if neighbor == learnedFrom {
		return bgp.Route{}, false
	}
	// Never advertise to a neighbor already on the propagation path.
	if slices.Contains(best.Path[:max(0, len(best.Path)-1)], neighbor) {
		return bgp.Route{}, false
	}

	if toKind != bgp.EBGP {
		// iBGP export rules.
		switch {
		case best.FromEBGP:
			// eBGP-learned: advertise to every iBGP neighbor.
		default:
			fromKind := r.sessions[learnedFrom]
			switch fromKind {
			case bgp.IBGPClient:
				// Learned from a client: reflect to all iBGP neighbors.
			case bgp.IBGPPeer, bgp.IBGPUp:
				// Learned from a non-client: send to clients only.
				if toKind != bgp.IBGPClient {
					return bgp.Route{}, false
				}
			case bgp.EBGP:
				// Session kind changed under us; treat as eBGP-learned.
			}
		}
	}

	out := best.Extend(neighbor)
	if toKind == bgp.EBGP {
		// LOCAL_PREF is not propagated over eBGP; AS path grows.
		out.LocalPref = bgp.DefaultLocalPref
		out.ASPathLen++
	} else if !best.FromEBGP {
		// Reflection: record originator and extend the cluster list.
		if out.OriginatorID == topology.None {
			out.OriginatorID = best.Egress
		}
		out.ClusterList = append(out.ClusterList, r.id)
	}
	out, ok := r.routeMap(Out, neighbor).Apply(neighbor, out)
	if !ok {
		return bgp.Route{}, false
	}
	return out, true
}
