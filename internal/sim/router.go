package sim

import (
	"slices"

	"chameleon/internal/bgp"
	"chameleon/internal/topology"
)

// router is the per-node BGP state.
type router struct {
	id       topology.NodeID
	external bool
	kind     bgp.TableKind

	// sessions maps each BGP neighbor to this router's role towards it;
	// nbrs mirrors its key set sorted, so the hot per-prefix propagation
	// loop never re-sorts.
	sessions map[topology.NodeID]bgp.SessionKind
	nbrs     []topology.NodeID

	// Route maps, per direction and neighbor.
	maps map[Direction]map[topology.NodeID]*RouteMap

	adjIn  *bgp.AdjIn  // raw routes as received, before ingress policy
	locRib *bgp.LocRIB // selected route per prefix, after ingress policy

	// adjOut records the last route sent to each neighbor per prefix, so
	// exports can be diffed and withdrawals generated.
	adjOut map[topology.NodeID]bgp.RIB

	// originated holds the announcements of an external network.
	originated map[bgp.Prefix]Announcement

	// aggRules are the router's §8 border-aggregation rules.
	aggRules []AggregateRule
}

// Announcement describes a route an external network originates.
type Announcement struct {
	Prefix    bgp.Prefix
	ASPathLen int
	MED       uint32
}

func newRouter(id topology.NodeID, external bool, kind bgp.TableKind) *router {
	return &router{
		id:       id,
		external: external,
		kind:     kind,
		sessions: make(map[topology.NodeID]bgp.SessionKind),
		maps: map[Direction]map[topology.NodeID]*RouteMap{
			In:  make(map[topology.NodeID]*RouteMap),
			Out: make(map[topology.NodeID]*RouteMap),
		},
		adjIn:      bgp.NewAdjInKind(kind),
		locRib:     bgp.NewLocRIBKind(kind),
		adjOut:     make(map[topology.NodeID]bgp.RIB),
		originated: make(map[bgp.Prefix]Announcement),
	}
}

// setSession records (or re-types) the session towards peer, keeping the
// sorted neighbor cache in sync.
func (r *router) setSession(peer topology.NodeID, kind bgp.SessionKind) {
	if _, ok := r.sessions[peer]; !ok {
		i, _ := slices.BinarySearch(r.nbrs, peer)
		r.nbrs = slices.Insert(r.nbrs, i, peer)
	}
	r.sessions[peer] = kind
}

// dropSession removes the session towards peer from the map and the cache.
func (r *router) dropSession(peer topology.NodeID) {
	if _, ok := r.sessions[peer]; !ok {
		return
	}
	delete(r.sessions, peer)
	if i, ok := slices.BinarySearch(r.nbrs, peer); ok {
		r.nbrs = slices.Delete(r.nbrs, i, i+1)
	}
}

// adjOutFor returns the Adj-RIB-Out table towards peer, creating it on
// first use.
func (r *router) adjOutFor(peer topology.NodeID) bgp.RIB {
	t := r.adjOut[peer]
	if t == nil {
		t = bgp.NewRIB(r.kind)
		r.adjOut[peer] = t
	}
	return t
}

func (r *router) routeMap(dir Direction, neighbor topology.NodeID) *RouteMap {
	return r.maps[dir][neighbor]
}

func (r *router) ensureRouteMap(dir Direction, neighbor topology.NodeID) *RouteMap {
	rm := r.maps[dir][neighbor]
	if rm == nil {
		rm = &RouteMap{}
		r.maps[dir][neighbor] = rm
	}
	return rm
}

// neighbors returns the router's BGP neighbors sorted by ID. The slice is
// the router's cache: callers must not mutate or retain it across session
// changes.
func (r *router) neighbors() []topology.NodeID { return r.nbrs }

// ingressCandidates applies ingress policy to every Adj-RIB-In entry for
// prefix and returns the admitted routes.
func (r *router) ingressCandidates(prefix bgp.Prefix) []bgp.Route {
	var out []bgp.Route
	r.adjIn.RangeCandidates(prefix, func(nb topology.NodeID, raw bgp.Route) bool {
		if route, ok := r.routeMap(In, nb).Apply(nb, raw); ok {
			out = append(out, route)
		}
		return true
	})
	return out
}

// acceptable implements RFC 4456 / path loop checks on a received route.
func (r *router) acceptable(route bgp.Route) bool {
	if route.OriginatorID == r.id {
		return false
	}
	if slices.Contains(route.ClusterList, r.id) {
		return false
	}
	// Path loop: the route's propagation path must not already contain us
	// before the final element (which is us, by Extend).
	for _, n := range route.Path[:max(0, len(route.Path)-1)] {
		if n == r.id {
			return false
		}
	}
	return true
}

// exportTo computes the route this router would advertise to neighbor for
// prefix, applying the iBGP/eBGP/route-reflection export rules and the
// egress route map. ok is false if nothing may be advertised. Path storage
// for the extended route comes from arena (nil falls back to plain
// allocation).
func (r *router) exportTo(neighbor topology.NodeID, prefix bgp.Prefix, arena *bgp.PathArena) (bgp.Route, bool) {
	best, have := r.locRib.Get(prefix)
	if !have {
		return bgp.Route{}, false
	}
	toKind, connected := r.sessions[neighbor]
	if !connected {
		return bgp.Route{}, false
	}
	// Summary-only aggregation suppresses the contributors (§8).
	if r.suppressed(prefix) {
		return bgp.Route{}, false
	}
	// Never advertise a route back onto the session it was learned from.
	learnedFrom := best.Pre()
	if best.FromEBGP {
		learnedFrom = best.External
	}
	if neighbor == learnedFrom {
		return bgp.Route{}, false
	}
	// Never advertise to a neighbor already on the propagation path.
	if slices.Contains(best.Path[:max(0, len(best.Path)-1)], neighbor) {
		return bgp.Route{}, false
	}

	if toKind != bgp.EBGP {
		// iBGP export rules.
		switch {
		case best.FromEBGP:
			// eBGP-learned: advertise to every iBGP neighbor.
		default:
			fromKind := r.sessions[learnedFrom]
			switch fromKind {
			case bgp.IBGPClient:
				// Learned from a client: reflect to all iBGP neighbors.
			case bgp.IBGPPeer, bgp.IBGPUp:
				// Learned from a non-client: send to clients only.
				if toKind != bgp.IBGPClient {
					return bgp.Route{}, false
				}
			case bgp.EBGP:
				// Session kind changed under us; treat as eBGP-learned.
			}
		}
	}

	out := best.ExtendIn(arena, neighbor)
	if toKind == bgp.EBGP {
		// LOCAL_PREF is not propagated over eBGP; AS path grows.
		out.LocalPref = bgp.DefaultLocalPref
		out.ASPathLen++
	} else if !best.FromEBGP {
		// Reflection: record originator and extend the cluster list.
		if out.OriginatorID == topology.None {
			out.OriginatorID = best.Egress
		}
		out.ClusterList = append(out.ClusterList, r.id)
	}
	out, ok := r.routeMap(Out, neighbor).Apply(neighbor, out)
	if !ok {
		return bgp.Route{}, false
	}
	return out, true
}
