package sim_test

import (
	"testing"
	"time"

	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// scriptInjector adapts plain closures to sim.FaultInjector.
type scriptInjector struct {
	cmd func(node topology.NodeID, desc string, attempt int) sim.CommandFault
	msg func(from, to topology.NodeID) sim.MessageFault
}

func (s scriptInjector) CommandFault(n topology.NodeID, d string, a int) sim.CommandFault {
	if s.cmd == nil {
		return sim.CommandFault{}
	}
	return s.cmd(n, d, a)
}

func (s scriptInjector) MessageFault(f, t topology.NodeID) sim.MessageFault {
	if s.msg == nil {
		return sim.MessageFault{}
	}
	return s.msg(f, t)
}

// countedCommand returns a no-op command whose applications are counted.
func countedCommand(node topology.NodeID, applied *int) sim.Command {
	return sim.Command{
		Node:        node,
		Description: "test command",
		Apply:       func(*sim.Network) { *applied++ },
	}
}

func TestScheduleCommandAcks(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	applied := 0
	tk := net.ScheduleCommand(10*time.Second, countedCommand(s.E1, &applied), 0)
	if tk.Acked() || tk.Applied() {
		t.Fatal("token acked before the command ran")
	}
	if net.PendingCommands() != 1 {
		t.Fatalf("pending = %d, want 1", net.PendingCommands())
	}
	net.Run()
	if applied != 1 {
		t.Fatalf("applied %d times, want 1", applied)
	}
	if !tk.Acked() || !tk.Applied() || tk.Dropped() {
		t.Errorf("token = acked %v applied %v dropped %v, want true/true/false",
			tk.Acked(), tk.Applied(), tk.Dropped())
	}
}

func TestCommandFaultDrop(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	net.SetFaultInjector(scriptInjector{
		cmd: func(topology.NodeID, string, int) sim.CommandFault {
			return sim.CommandFault{Kind: sim.FaultDrop}
		},
	})
	applied := 0
	tk := net.ScheduleCommand(10*time.Second, countedCommand(s.E1, &applied), 0)
	net.Run()
	if applied != 0 {
		t.Fatalf("dropped command applied %d times", applied)
	}
	if !tk.Dropped() || tk.Acked() {
		t.Errorf("token = dropped %v acked %v, want true/false", tk.Dropped(), tk.Acked())
	}
}

func TestCommandFaultDelay(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	net.SetFaultInjector(scriptInjector{
		cmd: func(topology.NodeID, string, int) sim.CommandFault {
			return sim.CommandFault{Kind: sim.FaultDelay, DelayFactor: 3}
		},
	})
	applied := 0
	start := net.Now()
	tk := net.ScheduleCommand(10*time.Second, countedCommand(s.E1, &applied), 0)
	if got, want := tk.ScheduledAt(), start+30*time.Second; got != want {
		t.Errorf("scheduled at %v, want %v (3× delay)", got, want)
	}
	net.RunUntil(start + 15*time.Second)
	if applied != 0 {
		t.Fatal("delayed command applied before its stretched latency")
	}
	net.Run()
	if applied != 1 || !tk.Acked() {
		t.Errorf("applied %d acked %v, want 1/true", applied, tk.Acked())
	}
}

func TestCommandFaultDuplicate(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	net.SetFaultInjector(scriptInjector{
		cmd: func(topology.NodeID, string, int) sim.CommandFault {
			return sim.CommandFault{Kind: sim.FaultDuplicate}
		},
	})
	applied := 0
	tk := net.ScheduleCommand(10*time.Second, countedCommand(s.E1, &applied), 0)
	net.Run()
	if applied != 2 {
		t.Fatalf("duplicated command applied %d times, want 2", applied)
	}
	if !tk.Acked() {
		t.Error("duplicate fault must still ack the primary application")
	}
}

func TestCommandFaultPartial(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	net.SetFaultInjector(scriptInjector{
		cmd: func(topology.NodeID, string, int) sim.CommandFault {
			return sim.CommandFault{Kind: sim.FaultPartial}
		},
	})
	applied := 0
	tk := net.ScheduleCommand(10*time.Second, countedCommand(s.E1, &applied), 0)
	net.Run()
	if applied != 1 {
		t.Fatalf("partial command applied %d times, want 1", applied)
	}
	if tk.Acked() {
		t.Error("partial fault must lose the acknowledgment")
	}
	if !tk.Applied() {
		t.Error("partial fault must still apply the effect")
	}
}

func TestCancelPendingCommands(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	applied := 0
	tk1 := net.ScheduleCommand(10*time.Second, countedCommand(s.E1, &applied), 0)
	tk2 := net.ScheduleCommand(20*time.Second, countedCommand(s.E1, &applied), 0)
	if got := net.CancelPendingCommands(); got != 2 {
		t.Fatalf("cancelled %d, want 2", got)
	}
	net.Run()
	if applied != 0 {
		t.Fatalf("cancelled commands applied %d times", applied)
	}
	if !tk1.Cancelled() || !tk2.Cancelled() {
		t.Error("tokens not marked cancelled")
	}
	if net.PendingCommands() != 0 {
		t.Errorf("pending = %d after cancel", net.PendingCommands())
	}
}

func TestCancelAlsoStopsDuplicates(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	net.SetFaultInjector(scriptInjector{
		cmd: func(topology.NodeID, string, int) sim.CommandFault {
			return sim.CommandFault{Kind: sim.FaultDuplicate}
		},
	})
	applied := 0
	net.ScheduleCommand(10*time.Second, countedCommand(s.E1, &applied), 0)
	net.CancelPendingCommands()
	net.Run()
	if applied != 0 {
		t.Fatalf("cancelled duplicate applied %d times", applied)
	}
}

func TestFlapSession(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	rr, client := s.RRs[0], s.E1 // n2 reflects for n1
	if _, up := net.HasSession(rr, client); !up {
		t.Fatalf("no session n%d–n%d to flap", int(rr), int(client))
	}
	if !net.FlapSession(rr, client, 20*time.Second) {
		t.Fatal("FlapSession returned false for an existing session")
	}
	if _, up := net.HasSession(rr, client); up {
		t.Fatal("session still up right after flap")
	}
	net.Run()
	if _, up := net.HasSession(rr, client); !up {
		t.Fatal("session not re-established after hold time")
	}
	// Routes must be back after reconvergence.
	st := net.ForwardingState(s.Prefix)
	for _, n := range net.Graph().Internal() {
		if !st.Reach(n) {
			t.Errorf("node %d unreachable after flap recovery", n)
		}
	}
}

func TestFlapSessionMissing(t *testing.T) {
	s := scenario.RunningExample()
	if s.Net.FlapSession(s.E1, s.E2, time.Second) {
		t.Error("FlapSession returned true for a non-existent session")
	}
}

// TestMessageFaultsPreserveConvergence runs the running example's
// reconfiguration under heavy message delay + duplication and checks the
// network converges to the same final state as a fault-free run: message
// faults perturb timing, never outcomes (per-session FIFO is preserved).
func TestMessageFaultsPreserveConvergence(t *testing.T) {
	clean := scenario.RunningExample()
	clean.Commands[0].Apply(clean.Net)
	clean.Net.Run()

	faulty := scenario.RunningExample()
	i := 0
	faulty.Net.SetFaultInjector(scriptInjector{
		msg: func(topology.NodeID, topology.NodeID) sim.MessageFault {
			i++
			switch i % 3 {
			case 0:
				return sim.MessageFault{Kind: sim.FaultDelay, DelayFactor: 4}
			case 1:
				return sim.MessageFault{Kind: sim.FaultDuplicate}
			}
			return sim.MessageFault{}
		},
	})
	faulty.Commands[0].Apply(faulty.Net)
	faulty.Net.Run()

	for _, n := range clean.Net.Graph().Internal() {
		want, okW := clean.Net.Best(n, clean.Prefix)
		got, okG := faulty.Net.Best(n, faulty.Prefix)
		if okW != okG || (okW && want.Egress != got.Egress) {
			t.Errorf("node %d: faulty run best = %v/%v, clean run %v/%v", n, got, okG, want, okW)
		}
	}
}
