package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"slices"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/igp"
	"chameleon/internal/obs"
	"chameleon/internal/topology"
)

// Options configure a simulated network.
type Options struct {
	// Seed drives message jitter; the same seed yields the same execution.
	Seed uint64
	// Jitter is the maximum random extra delay added to each message,
	// exploring different BGP message interleavings. Zero disables jitter.
	Jitter time.Duration
	// BaseDelay is the floor delay of any BGP message.
	BaseDelay time.Duration
	// DelayPerIGPUnit scales session delay with the IGP distance between
	// the session endpoints, emulating geographic distance.
	DelayPerIGPUnit time.Duration
	// TracePrefixes enables forwarding-trace recording for these prefixes
	// (nil records all). Pass an empty non-nil slice to disable tracing
	// entirely — prefix-scale scenarios must, or trace storage dominates
	// memory.
	TracePrefixes []bgp.Prefix
	// RIB selects the table engine backing every router's Adj-RIB-In,
	// Loc-RIB and Adj-RIB-Out. The zero value is the legacy map engine;
	// bgp.TableCOW enables copy-on-write structural sharing for
	// prefix-scale scenarios.
	RIB bgp.TableKind
}

// DefaultOptions returns the options used across the evaluation: 10 ms
// base delay, 2 ms per IGP weight unit and 20 ms jitter — wide-area RTTs in
// the range the paper's testbed emulated with its delay server (§6).
func DefaultOptions(seed uint64) Options {
	return Options{
		Seed:            seed,
		Jitter:          20 * time.Millisecond,
		BaseDelay:       10 * time.Millisecond,
		DelayPerIGPUnit: 2 * time.Millisecond,
	}
}

// Network is the live simulated network: topology + IGP + per-router BGP
// state + an event queue. It is not safe for concurrent use.
type Network struct {
	graph   *topology.Graph
	spf     *igp.SPF
	routers []*router
	opts    Options

	queue        eventQueue
	seq          uint64
	now          time.Duration
	rng          *rand.Rand
	lastDelivery map[sessKey]time.Duration

	traces   map[bgp.Prefix]*fwd.Trace
	traceAll bool
	dirty    map[bgp.Prefix]causeMark

	// Causal provenance (see cause.go): the registry of roots, the cause
	// and hop depth of the event being processed, and the phase label new
	// causes are attributed to. None of it is inherited by Clone.
	causes   []Cause
	curCause CauseID
	curHops  int
	curPhase string

	// snapHook, when set, observes every forwarding-state snapshot the
	// moment it is appended to a trace (see SetSnapshotHook). Not
	// inherited by Clone.
	snapHook SnapshotHook

	// tableEntries is the current network-wide Adj-RIB-In entry count over
	// internal routers, maintained incrementally at every table mutation;
	// maxTableEntries tracks the §7.3 metric: the maximum of tableEntries
	// over time.
	tableEntries    int
	maxTableEntries int

	// arena backs the propagation paths of exported routes; dropped
	// wholesale with the network.
	arena *bgp.PathArena

	// ebgpExports counts routes advertised to external peers, per prefix,
	// used to verify Chameleon never leaks transient routes (§3).
	ebgpExports map[bgp.Prefix]int

	msgCount uint64

	// faults, when set, decides the fate of every scheduled command and
	// delivered message (see fault.go). pendingCmds tracks in-flight
	// command tokens so an abort can cancel them deterministically.
	faults      FaultInjector
	pendingCmds []*CommandToken

	// rec, when set, receives the sim-layer counters (messages by type,
	// sessions opened/closed, commands scheduled/cancelled, faults
	// injected). obsSpan, when additionally set, attributes those counters
	// to the current execution phase — the runtime executor points it at
	// its per-round span. Neither is inherited by Clone.
	rec     *obs.Recorder
	obsSpan *obs.Span

	// run counts BeginRun calls: the index of the current run-scoped jitter
	// stream (0 = the constructor stream).
	run uint64
}

// New builds a network over g with all BGP state empty.
func New(g *topology.Graph, opts Options) *Network {
	n := &Network{
		graph:        g,
		spf:          igp.Compute(g),
		opts:         opts,
		rng:          rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xda3e39cb94b95bdb)),
		lastDelivery: make(map[sessKey]time.Duration),
		traces:       make(map[bgp.Prefix]*fwd.Trace),
		dirty:        make(map[bgp.Prefix]causeMark),
		ebgpExports:  make(map[bgp.Prefix]int),
		arena:        &bgp.PathArena{},
	}
	if opts.TracePrefixes == nil {
		n.traceAll = true
	} else {
		for _, p := range opts.TracePrefixes {
			n.traces[p] = &fwd.Trace{}
		}
	}
	for _, node := range g.Nodes() {
		n.routers = append(n.routers, newRouter(node.ID, node.External, opts.RIB))
	}
	return n
}

// TableKind returns the RIB engine this network runs on.
func (n *Network) TableKind() bgp.TableKind { return n.opts.RIB }

// BeginRun gives the next execution on this network exclusive ownership of
// the message-jitter RNG: run r (r ≥ 1) draws from a fresh PCG stream
// derived from (Options.Seed, r), so its jitter schedule is a pure function
// of the scenario seed and the run index — not of how many draws earlier
// runs on the same network consumed. Run 0 keeps the constructor stream,
// which also covers the scenario's initial bring-up convergence, so
// single-execution behavior (and every historical result) is unchanged.
// It returns the run index.
func (n *Network) BeginRun() uint64 {
	if n.run > 0 {
		s := DeriveSeed(n.opts.Seed, n.run)
		n.rng = rand.New(rand.NewPCG(s, s^0xda3e39cb94b95bdb))
	}
	n.run++
	return n.run - 1
}

// SetRecorder installs (or, with nil, removes) the observability recorder
// receiving the sim-layer counters.
func (n *Network) SetRecorder(rec *obs.Recorder) { n.rec = rec }

// SetObsSpan points the sim-layer counters at a span (nil reverts to
// recorder-level attribution). The executor sets it per phase so message
// and fault counts land on the round that caused them.
func (n *Network) SetObsSpan(sp *obs.Span) { n.obsSpan = sp }

// count attributes a sim-layer counter to the current phase span when one
// is set, else to the recorder. Both sinks are nil-safe, so uninstrumented
// networks pay only the two nil tests.
func (n *Network) count(name string, delta int64) {
	if n.obsSpan != nil {
		n.obsSpan.Add(name, delta)
		return
	}
	n.rec.Add(name, delta)
}

// observe records one sample into a recorder histogram. Histograms are
// recorder-level (spans carry counters only), and the nil path is free.
func (n *Network) observe(name string, v int64) { n.rec.Observe(name, v) }

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// SPF returns the IGP state.
func (n *Network) SPF() *igp.SPF { return n.spf }

// Now returns the current simulated time.
func (n *Network) Now() time.Duration { return n.now }

// MessagesProcessed returns the number of BGP messages delivered so far.
func (n *Network) MessagesProcessed() uint64 { return n.msgCount }

// jitterEnabled returns the configured jitter.
func (n *Network) sessionDelay(a, b topology.NodeID) time.Duration {
	d := n.opts.BaseDelay
	if dist := n.spf.Dist(a, b); dist < igp.Infinity {
		d += time.Duration(dist * float64(n.opts.DelayPerIGPUnit))
	}
	return d
}

// --- Configuration -------------------------------------------------------

// SetSession establishes (or re-types) a BGP session between a and b;
// kindAtA is a's role towards b (the reverse role is implied). Existing
// best routes are advertised over the new session immediately.
func (n *Network) SetSession(a, b topology.NodeID, kindAtA bgp.SessionKind) {
	ra, rb := n.routers[a], n.routers[b]
	_, existed := ra.sessions[b]
	if !existed {
		n.count(obs.CtrSessionsOpened, 1)
	}
	ra.setSession(b, kindAtA)
	rb.setSession(a, reverseKind(kindAtA))
	if existed {
		// Role change: it alters not only what flows over this session but
		// also how routes *learned* over it may be re-exported (client vs
		// non-client reflection rules), so refresh both routers' exports
		// towards every neighbor.
		for _, node := range []topology.NodeID{a, b} {
			for _, nb := range n.routers[node].neighbors() {
				n.refreshExports(node, nb)
			}
		}
		return
	}
	n.advertiseAll(a, b)
	n.advertiseAll(b, a)
}

func reverseKind(k bgp.SessionKind) bgp.SessionKind {
	switch k {
	case bgp.IBGPClient:
		return bgp.IBGPUp
	case bgp.IBGPUp:
		return bgp.IBGPClient
	default:
		return k
	}
}

// RemoveSession tears the session between a and b down. Both ends drop the
// learned routes and re-run their decision process.
func (n *Network) RemoveSession(a, b topology.NodeID) {
	if _, ok := n.routers[a].sessions[b]; ok {
		n.count(obs.CtrSessionsClosed, 1)
	}
	n.teardownHalf(a, b)
	n.teardownHalf(b, a)
}

func (n *Network) teardownHalf(at, peer topology.NodeID) {
	r := n.routers[at]
	if _, ok := r.sessions[peer]; !ok {
		return
	}
	r.dropSession(peer)
	delete(r.adjOut, peer)
	before := r.adjIn.Size()
	r.adjIn.DropNeighborRange(peer, func(p bgp.Prefix) bool {
		n.runDecision(at, p)
		return true
	})
	if !r.external {
		n.tableEntries -= before - r.adjIn.Size()
	}
}

// HasSession reports whether a session between a and b exists and returns
// a's role.
func (n *Network) HasSession(a, b topology.NodeID) (bgp.SessionKind, bool) {
	k, ok := n.routers[a].sessions[b]
	return k, ok
}

// Sessions returns node a's neighbors, sorted. The slice is the caller's
// to keep.
func (n *Network) Sessions(a topology.NodeID) []topology.NodeID {
	return slices.Clone(n.routers[a].neighbors())
}

// UpdateRouteMap mutates the route map of node towards neighbor in the
// given direction and immediately re-evaluates affected BGP state.
func (n *Network) UpdateRouteMap(node, neighbor topology.NodeID, dir Direction, mutate func(*RouteMap)) {
	r := n.routers[node]
	mutate(r.ensureRouteMap(dir, neighbor))
	if dir == In {
		// runDecision never mutates the Adj-RIB-In, so ranging while
		// deciding is safe.
		r.adjIn.RangePrefixes(func(p bgp.Prefix) bool {
			n.runDecision(node, p)
			return true
		})
	} else {
		n.refreshExports(node, neighbor)
	}
}

// RouteMapOf exposes the current route map (may be nil) for inspection.
func (n *Network) RouteMapOf(node, neighbor topology.NodeID, dir Direction) *RouteMap {
	return n.routers[node].routeMap(dir, neighbor)
}

// InjectExternalRoute makes external network ext originate ann and
// advertise it over all of ext's eBGP sessions.
func (n *Network) InjectExternalRoute(ext topology.NodeID, ann Announcement) {
	r := n.routers[ext]
	if !r.external {
		panic(fmt.Sprintf("sim: InjectExternalRoute on internal node %d", ext))
	}
	r.originated[ann.Prefix] = ann
	for _, peer := range r.neighbors() {
		n.sendExternalAnnouncement(ext, peer, ann)
	}
}

// WithdrawExternalRoute withdraws a previously originated prefix.
func (n *Network) WithdrawExternalRoute(ext topology.NodeID, prefix bgp.Prefix) {
	r := n.routers[ext]
	delete(r.originated, prefix)
	for _, peer := range r.neighbors() {
		n.sendMsg(&message{kind: msgWithdraw, from: ext, to: peer, prefix: prefix})
	}
}

func (n *Network) sendExternalAnnouncement(ext, peer topology.NodeID, ann Announcement) {
	n.sendMsg(&message{kind: msgUpdate, from: ext, to: peer, route: externalRoute(peer, ext, ann)})
}

// FailLink fails the physical link between a and b and reconverges the IGP,
// then re-runs the BGP decision process everywhere (IGP distances feed the
// decision process) and refreshes forwarding traces.
func (n *Network) FailLink(a, b topology.NodeID) bool {
	if !n.spf.FailLink(a, b) {
		return false
	}
	n.igpChanged()
	return true
}

// RestoreLink restores a failed link and reconverges.
func (n *Network) RestoreLink(a, b topology.NodeID) bool {
	if !n.spf.RestoreLink(a, b) {
		return false
	}
	n.igpChanged()
	return true
}

func (n *Network) igpChanged() {
	n.spf.Recompute()
	for _, r := range n.routers {
		if r.external {
			continue
		}
		r.adjIn.RangePrefixes(func(p bgp.Prefix) bool {
			n.runDecision(r.id, p)
			return true
		})
		n.markAllDirtyFor(r.id)
	}
	n.snapshotDirty()
}

func (n *Network) markAllDirtyFor(node topology.NodeID) {
	mark := causeMark{n.curCause, n.curHops}
	n.routers[node].locRib.Range(func(p bgp.Prefix, _ bgp.Route) bool {
		n.dirty[p] = mark
		return true
	})
}

// --- Event loop ----------------------------------------------------------

// Step processes the next queued event; it returns false if the queue is
// empty.
func (n *Network) Step() bool {
	if n.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	n.now = e.at
	n.curCause, n.curHops = e.cause, e.hops
	n.activateCause(e.cause)
	n.count(obs.CtrSimEvents, 1)
	if e.fn != nil {
		e.fn(n)
	} else if e.msg != nil {
		n.deliver(e.msg)
	}
	n.snapshotDirty()
	n.trackTableSize()
	n.curCause, n.curHops = 0, 0
	return true
}

// Run processes events until the queue is empty and returns the number of
// events processed. It panics after maxEvents as a divergence guard.
func (n *Network) Run() int {
	const maxEvents = 20_000_000
	count := 0
	for n.Step() {
		count++
		if count > maxEvents {
			panic("sim: event budget exceeded; network may be diverging")
		}
	}
	return count
}

// RunUntil processes all events scheduled at or before t, then advances the
// clock to t.
func (n *Network) RunUntil(t time.Duration) int {
	count := 0
	for n.queue.Len() > 0 && n.queue[0].at <= t {
		n.Step()
		count++
	}
	if n.now < t {
		n.now = t
	}
	return count
}

// Pending returns the number of queued events.
func (n *Network) Pending() int { return n.queue.Len() }

// NextEventAt returns the time of the earliest pending event, or false with
// an empty queue. Convergence gates use it to tell "churn still in flight"
// from "only far-future work remains": if nothing is scheduled inside the
// quiet window, the forwarding plane cannot change before it closes.
func (n *Network) NextEventAt() (time.Duration, bool) {
	if n.queue.Len() == 0 {
		return 0, false
	}
	return n.queue[0].at, true
}

// Converged reports whether no BGP messages or scheduled functions remain.
func (n *Network) Converged() bool { return n.queue.Len() == 0 }

func (n *Network) deliver(m *message) {
	n.msgCount++
	switch m.kind {
	case msgUpdate:
		n.count(obs.CtrBGPUpdates, 1)
	case msgWithdraw:
		n.count(obs.CtrBGPWithdraws, 1)
	case msgBatch:
		n.count(obs.CtrBGPUpdates, int64(len(m.updates)))
		n.count(obs.CtrBGPWithdraws, int64(len(m.withdraws)))
	}
	r := n.routers[m.to]
	if _, up := r.sessions[m.from]; !up {
		return // session went away while the message was in flight
	}
	if m.kind == msgBatch {
		n.deliverBatch(r, m)
		return
	}
	if r.external {
		// External networks are sinks; record exports for the
		// no-transient-leak invariant.
		if m.kind == msgUpdate {
			r.adjIn.Set(m.from, m.route)
			n.ebgpExports[m.route.Prefix]++
		} else {
			r.adjIn.Withdraw(m.from, m.prefix)
		}
		return
	}
	switch m.kind {
	case msgUpdate:
		if !r.acceptable(m.route) {
			// Loop-rejected; an earlier route from this neighbor is
			// implicitly replaced (treat as withdraw).
			n.adjInWithdraw(r, m.from, m.route.Prefix)
			n.runDecision(m.to, m.route.Prefix)
			return
		}
		n.adjInSet(r, m.from, m.route)
		n.runDecision(m.to, m.route.Prefix)
	case msgWithdraw:
		if n.adjInWithdraw(r, m.from, m.prefix) {
			n.runDecision(m.to, m.prefix)
		}
	}
}

// adjInSet and adjInWithdraw funnel every internal-router Adj-RIB-In
// mutation through the incremental tableEntries counter.
func (n *Network) adjInSet(r *router, from topology.NodeID, route bgp.Route) {
	if r.adjIn.Set(from, route) && !r.external {
		n.tableEntries++
	}
}

func (n *Network) adjInWithdraw(r *router, from topology.NodeID, prefix bgp.Prefix) bool {
	if !r.adjIn.Withdraw(from, prefix) {
		return false
	}
	if !r.external {
		n.tableEntries--
	}
	return true
}

// runDecision re-runs the best-path selection at node for prefix and, if
// the selection changed, propagates the new state.
func (n *Network) runDecision(node topology.NodeID, prefix bgp.Prefix) {
	r := n.routers[node]
	if !n.decide(r, prefix) {
		return
	}
	n.propagate(node, prefix)
	// A contributor change may (de)activate a summary (§8 aggregation).
	if len(r.aggRules) > 0 && !isSummary(r, prefix) {
		n.evalAggregates(node)
	}
}

// decide re-runs best-path selection at r for prefix, updates the Loc-RIB
// and the dirty set, and reports whether the selection changed. It never
// mutates the Adj-RIB-In, so callers may invoke it while ranging one.
func (n *Network) decide(r *router, prefix bgp.Prefix) bool {
	cands := r.ingressCandidates(prefix)
	if agg, ok := r.aggregateRoute(prefix); ok {
		cands = append(cands, agg)
	}
	cmp := bgp.Comparator{SPF: n.spf, Node: r.id}
	old, hadOld := r.locRib.Get(prefix)
	var selected bgp.Route
	have := false
	if i := cmp.Best(cands); i >= 0 {
		selected = cands[i]
		have = true
	}
	switch {
	case !hadOld && !have:
		return false
	case hadOld && have && routesIdentical(old, selected):
		return false
	}
	if have {
		r.locRib.Set(selected)
	} else {
		r.locRib.Clear(prefix)
	}
	n.dirty[prefix] = causeMark{n.curCause, n.curHops}
	return true
}

func isSummary(r *router, prefix bgp.Prefix) bool {
	for _, rule := range r.aggRules {
		if rule.Summary == prefix {
			return true
		}
	}
	return false
}

func routesIdentical(a, b bgp.Route) bool {
	return a.PathEqual(b) && a.Weight == b.Weight && a.LocalPref == b.LocalPref &&
		a.ASPathLen == b.ASPathLen && a.MED == b.MED && a.FromEBGP == b.FromEBGP
}

// propagate diffs the desired exports of node for prefix against Adj-RIB-Out
// and emits updates/withdrawals.
func (n *Network) propagate(node topology.NodeID, prefix bgp.Prefix) {
	r := n.routers[node]
	for _, peer := range r.neighbors() {
		n.exportDiff(node, peer, prefix)
	}
}

// refreshExports re-sends (or withdraws) node's exports of all prefixes
// towards one neighbor, used after egress route-map or session changes.
func (n *Network) refreshExports(node, neighbor topology.NodeID) {
	r := n.routers[node]
	// Stale Adj-RIB-Out entries (sent earlier, no longer selected) are
	// collected up front: exportDiff deletes from the table being walked.
	var stale []bgp.Prefix
	if out := r.adjOut[neighbor]; out != nil {
		out.Range(func(p bgp.Prefix, _ bgp.Route) bool {
			if _, ok := r.locRib.Get(p); !ok {
				stale = append(stale, p)
			}
			return true
		})
	}
	r.locRib.Range(func(p bgp.Prefix, _ bgp.Route) bool {
		n.exportDiff(node, neighbor, p)
		return true
	})
	for _, p := range stale {
		n.exportDiff(node, neighbor, p)
	}
}

// advertiseAll sends node's full table towards a newly connected neighbor.
func (n *Network) advertiseAll(node, neighbor topology.NodeID) {
	r := n.routers[node]
	if r.external {
		// Sorted order keeps the jitter draws — and so the whole
		// execution — independent of map iteration order.
		ps := make([]bgp.Prefix, 0, len(r.originated))
		for p := range r.originated {
			ps = append(ps, p)
		}
		slices.Sort(ps)
		for _, p := range ps {
			n.sendExternalAnnouncement(node, neighbor, r.originated[p])
		}
		return
	}
	r.locRib.Range(func(p bgp.Prefix, _ bgp.Route) bool {
		n.exportDiff(node, neighbor, p)
		return true
	})
}

func (n *Network) exportDiff(node, neighbor topology.NodeID, prefix bgp.Prefix) {
	r := n.routers[node]
	if r.external {
		return
	}
	want, ok := r.exportTo(neighbor, prefix, n.arena)
	var sent bgp.Route
	wasSent := false
	if out := r.adjOut[neighbor]; out != nil {
		sent, wasSent = out.Get(prefix)
	}
	switch {
	case ok && wasSent && routesIdentical(want, sent):
		return
	case ok:
		r.adjOutFor(neighbor).Set(want)
		n.sendMsg(&message{kind: msgUpdate, from: node, to: neighbor, route: want})
	case wasSent:
		r.adjOut[neighbor].Delete(prefix)
		n.sendMsg(&message{kind: msgWithdraw, from: node, to: neighbor, prefix: prefix})
	}
}

// --- Inspection ----------------------------------------------------------

// Best returns the selected (post-policy) route of node for prefix.
func (n *Network) Best(node topology.NodeID, prefix bgp.Prefix) (bgp.Route, bool) {
	return n.routers[node].locRib.Get(prefix)
}

// Knows reports whether node has an admitted candidate route for prefix
// matching pred (pred nil matches any).
func (n *Network) Knows(node topology.NodeID, prefix bgp.Prefix, pred func(bgp.Route) bool) bool {
	for _, r := range n.routers[node].ingressCandidates(prefix) {
		if pred == nil || pred(r) {
			return true
		}
	}
	return false
}

// Candidates returns the admitted candidate routes of node for prefix.
func (n *Network) Candidates(node topology.NodeID, prefix bgp.Prefix) []bgp.Route {
	return n.routers[node].ingressCandidates(prefix)
}

// NextHop computes the forwarding next hop of node for prefix: External if
// node is the egress, the IGP next hop towards the egress otherwise, Drop
// if no route or the egress is IGP-unreachable.
func (n *Network) NextHop(node topology.NodeID, prefix bgp.Prefix) topology.NodeID {
	r := n.routers[node]
	if r.external {
		return fwd.Drop
	}
	best, ok := r.locRib.Get(prefix)
	if !ok {
		return fwd.Drop
	}
	if best.Egress == node {
		return fwd.External
	}
	nh := n.spf.NextHop(node, best.Egress)
	if nh == topology.None {
		return fwd.Drop
	}
	return nh
}

// ForwardingState snapshots the forwarding state for prefix.
func (n *Network) ForwardingState(prefix bgp.Prefix) fwd.State {
	s := fwd.NewState(n.graph.NumNodes())
	for _, node := range n.graph.Internal() {
		s[node] = n.NextHop(node, prefix)
	}
	return s
}

// RoutingState returns each internal node's selected route for prefix
// (P : N → route), with presence flags, in node-ID order.
func (n *Network) RoutingState(prefix bgp.Prefix) ([]bgp.Route, []bool) {
	routes := make([]bgp.Route, n.graph.NumNodes())
	have := make([]bool, n.graph.NumNodes())
	for _, node := range n.graph.Internal() {
		routes[node], have[node] = n.routers[node].locRib.Get(prefix)
	}
	return routes, have
}

// TableEntries returns the current network-wide Adj-RIB-In entry count
// over internal routers, maintained incrementally — O(1).
func (n *Network) TableEntries() int { return n.tableEntries }

// recountTableEntries rebuilds the incremental counter from the routers,
// used after wholesale state replacement (RestoreState).
func (n *Network) recountTableEntries() {
	n.tableEntries = 0
	for _, r := range n.routers {
		if !r.external {
			n.tableEntries += r.adjIn.Size()
		}
	}
}

// MaxTableEntries returns the maximum table size observed so far (§7.3).
func (n *Network) MaxTableEntries() int { return n.maxTableEntries }

func (n *Network) trackTableSize() {
	if t := n.TableEntries(); t > n.maxTableEntries {
		n.maxTableEntries = t
	}
}

// ResetMaxTableEntries restarts §7.3 accounting from the current size.
func (n *Network) ResetMaxTableEntries() { n.maxTableEntries = n.TableEntries() }

// EBGPExports returns the number of updates advertised to external peers
// for prefix since the start of the simulation.
func (n *Network) EBGPExports(prefix bgp.Prefix) int { return n.ebgpExports[prefix] }

// Trace returns the recorded forwarding trace for prefix (nil if tracing
// was disabled for it).
func (n *Network) Trace(prefix bgp.Prefix) *fwd.Trace {
	return n.traces[prefix]
}

// SnapshotHook observes forwarding-state snapshots as the simulator takes
// them: it is called once per (event, prefix) whose routing changed, right
// after the state is appended to the prefix's trace. The state is a fresh
// copy the hook may retain; prov carries the causal chain that produced
// the change (zero-valued when none is registered). Hooks run on the
// simulator's event loop, so they see every transient state in event
// order — the transient-state monitor subscribes here.
type SnapshotHook func(at time.Duration, prefix bgp.Prefix, state fwd.State, prov Provenance)

// SetSnapshotHook installs (or, with nil, removes) the snapshot hook. Only
// prefixes with tracing enabled produce snapshots; pass the prefixes of
// interest via Options.TracePrefixes (or nil to trace all).
func (n *Network) SetSnapshotHook(h SnapshotHook) { n.snapHook = h }

// snapshotDirty records a forwarding-state snapshot for every prefix whose
// routing changed during the last event.
func (n *Network) snapshotDirty() {
	if n.snapHook != nil && len(n.dirty) > 1 {
		// The dirty set is a map; with an observer attached the per-event
		// prefix order becomes output-affecting, so fix it.
		ps := make([]bgp.Prefix, 0, len(n.dirty))
		for p := range n.dirty {
			ps = append(ps, p)
		}
		slices.Sort(ps)
		for _, p := range ps {
			n.snapshotOne(p)
		}
		return
	}
	for p := range n.dirty {
		n.snapshotOne(p)
	}
}

func (n *Network) snapshotOne(p bgp.Prefix) {
	mark := n.dirty[p]
	delete(n.dirty, p)
	tr := n.traces[p]
	if tr == nil {
		if !n.traceAll {
			return
		}
		tr = &fwd.Trace{}
		n.traces[p] = tr
	}
	st := n.ForwardingState(p)
	tr.Append(n.now.Seconds(), st)
	if n.snapHook != nil {
		n.snapHook(n.now, p, st, n.provenance(mark))
	}
}

// RecordInitialState forces a snapshot of the current forwarding state for
// prefix at the current time, typically called once converged to anchor a
// trace before a reconfiguration starts.
func (n *Network) RecordInitialState(prefix bgp.Prefix) {
	tr := n.traces[prefix]
	if tr == nil {
		tr = &fwd.Trace{}
		n.traces[prefix] = tr
	}
	st := n.ForwardingState(prefix)
	tr.Append(n.now.Seconds(), st)
	if n.snapHook != nil {
		n.snapHook(n.now, prefix, st, Provenance{})
	}
}

// Clone deep-copies the entire network state (topology and options shared,
// all mutable state copied), allowing what-if exploration. Pending events
// are NOT copied; clone a converged network.
func (n *Network) Clone() *Network {
	if n.queue.Len() > 0 {
		panic("sim: Clone requires a converged network")
	}
	c := New(n.graph, n.opts)
	c.now = n.now
	c.tableEntries = n.tableEntries
	for i, r := range n.routers {
		cr := c.routers[i]
		for _, nb := range r.neighbors() {
			cr.setSession(nb, r.sessions[nb])
		}
		for dir, byNb := range r.maps {
			for nb, rm := range byNb {
				if rm == nil {
					continue
				}
				crm := cr.ensureRouteMap(dir, nb)
				for _, e := range rm.entries {
					crm.Add(e)
				}
			}
		}
		// Table clones share unchanged subtrees on the COW engine and
		// deep-copy on the map engine.
		cr.adjIn = r.adjIn.Clone()
		cr.locRib = r.locRib.Clone()
		for nb, t := range r.adjOut {
			cr.adjOut[nb] = t.Clone()
		}
		for p, a := range r.originated {
			cr.originated[p] = a
		}
		cr.aggRules = append(cr.aggRules, r.aggRules...)
	}
	return c
}
