package sim

import (
	"fmt"
	"sort"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/topology"
)

// This file implements intermediate-state capture: a converged network's
// complete configuration and routing state rendered as a plain serializable
// value, and the inverse operation installing such a value onto a freshly
// built network over the same topology. The reconfiguration supervisor's
// crash-safe journal embeds these snapshots so a restarted process can
// reconstruct the exact network a crashed supervisor left behind — same
// sessions, route maps, RIBs, simulated clock and RNG run index — and
// resume (or roll back) deterministically.

// SessionState is one directed session role in a snapshot.
type SessionState struct {
	Peer topology.NodeID `json:"peer"`
	Kind bgp.SessionKind `json:"kind"`
}

// RouteMapState is one route map (direction × neighbor) in a snapshot.
type RouteMapState struct {
	Dir      Direction       `json:"dir"`
	Neighbor topology.NodeID `json:"neighbor"`
	Entries  []Entry         `json:"entries"`
}

// NeighborRouteState is one Adj-RIB-In entry in a snapshot.
type NeighborRouteState struct {
	Neighbor topology.NodeID `json:"neighbor"`
	Route    bgp.Route       `json:"route"`
}

// AdjOutState records the routes last sent to one neighbor.
type AdjOutState struct {
	Neighbor topology.NodeID `json:"neighbor"`
	Routes   []bgp.Route     `json:"routes"`
}

// OriginatedState is one external announcement in a snapshot.
type OriginatedState struct {
	Prefix       bgp.Prefix `json:"prefix"`
	Announcement `json:"ann"`
}

// RouterState is the full per-router state in a snapshot. Slices are in
// deterministic (sorted) order so identical networks capture to identical
// bytes.
type RouterState struct {
	ID         topology.NodeID      `json:"id"`
	External   bool                 `json:"external,omitempty"`
	Sessions   []SessionState       `json:"sessions,omitempty"`
	RouteMaps  []RouteMapState      `json:"route_maps,omitempty"`
	AdjIn      []NeighborRouteState `json:"adj_in,omitempty"`
	LocRIB     []bgp.Route          `json:"loc_rib,omitempty"`
	AdjOut     []AdjOutState        `json:"adj_out,omitempty"`
	Originated []OriginatedState    `json:"originated,omitempty"`
	AggRules   []AggregateRule      `json:"agg_rules,omitempty"`
}

// PrefixCount is one per-prefix counter in a snapshot.
type PrefixCount struct {
	Prefix bgp.Prefix `json:"prefix"`
	Count  int        `json:"count"`
}

// NetState is a serializable snapshot of a converged network: everything a
// restarted controller needs to reconstruct the intermediate state —
// configuration (sessions, route maps, aggregation), routing (Adj-RIB-In,
// Loc-RIB, Adj-RIB-Out, originations), the simulated clock and the RNG run
// index — but no in-flight events (capture requires convergence) and no
// wall-clock residue.
type NetState struct {
	Now             time.Duration `json:"now_ns"`
	Run             uint64        `json:"run"`
	MsgCount        uint64        `json:"msg_count"`
	MaxTableEntries int           `json:"max_table_entries"`
	EBGPExports     []PrefixCount `json:"ebgp_exports,omitempty"`
	Routers         []RouterState `json:"routers"`
}

// Entries returns a copy of the route map's clauses in evaluation order,
// for snapshotting and inspection.
func (rm *RouteMap) Entries() []Entry {
	if rm == nil {
		return nil
	}
	out := make([]Entry, len(rm.entries))
	copy(out, rm.entries)
	return out
}

// CaptureState snapshots the network's complete configuration and routing
// state. The network must be converged: in-flight events are not part of a
// snapshot by design (the supervisor only snapshots at recovery boundaries,
// after an abort has drained the queue). The result is deterministic —
// identical networks capture to identical values.
func (n *Network) CaptureState() (*NetState, error) {
	if n.queue.Len() > 0 {
		return nil, fmt.Errorf("sim: CaptureState requires a converged network (%d events pending)", n.queue.Len())
	}
	st := &NetState{
		Now:             n.now,
		Run:             n.run,
		MsgCount:        n.msgCount,
		MaxTableEntries: n.maxTableEntries,
	}
	var prefixes []bgp.Prefix
	for p := range n.ebgpExports {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
	for _, p := range prefixes {
		st.EBGPExports = append(st.EBGPExports, PrefixCount{Prefix: p, Count: n.ebgpExports[p]})
	}
	for _, r := range n.routers {
		st.Routers = append(st.Routers, captureRouter(r))
	}
	return st, nil
}

func captureRouter(r *router) RouterState {
	rs := RouterState{ID: r.id, External: r.external}
	for _, peer := range r.neighbors() {
		rs.Sessions = append(rs.Sessions, SessionState{Peer: peer, Kind: r.sessions[peer]})
	}
	for _, dir := range []Direction{In, Out} {
		var nbs []topology.NodeID
		for nb, rm := range r.maps[dir] {
			if rm.Len() > 0 {
				nbs = append(nbs, nb)
			}
		}
		sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
		for _, nb := range nbs {
			rs.RouteMaps = append(rs.RouteMaps, RouteMapState{
				Dir: dir, Neighbor: nb, Entries: r.maps[dir][nb].Entries(),
			})
		}
	}
	r.adjIn.RangePrefixes(func(p bgp.Prefix) bool {
		r.adjIn.RangeCandidates(p, func(nb topology.NodeID, rt bgp.Route) bool {
			rs.AdjIn = append(rs.AdjIn, NeighborRouteState{Neighbor: nb, Route: rt})
			return true
		})
		return true
	})
	r.locRib.Range(func(_ bgp.Prefix, rt bgp.Route) bool {
		rs.LocRIB = append(rs.LocRIB, rt)
		return true
	})
	var outNbs []topology.NodeID
	for nb, m := range r.adjOut {
		if m.Len() > 0 {
			outNbs = append(outNbs, nb)
		}
	}
	sort.Slice(outNbs, func(i, j int) bool { return outNbs[i] < outNbs[j] })
	for _, nb := range outNbs {
		ao := AdjOutState{Neighbor: nb}
		r.adjOut[nb].Range(func(_ bgp.Prefix, rt bgp.Route) bool {
			ao.Routes = append(ao.Routes, rt)
			return true
		})
		rs.AdjOut = append(rs.AdjOut, ao)
	}
	var ops []bgp.Prefix
	for p := range r.originated {
		ops = append(ops, p)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, p := range ops {
		rs.Originated = append(rs.Originated, OriginatedState{Prefix: p, Announcement: r.originated[p]})
	}
	rs.AggRules = append(rs.AggRules, r.aggRules...)
	return rs
}

// RestoreState installs a captured snapshot onto this network, replacing
// every router's configuration and routing state, the simulated clock and
// the RNG run index. The network must be converged (no event may straddle a
// restore) and must be built over a graph with the same node set as the one
// the snapshot was taken on — the supervisor rebuilds the scenario from its
// journaled (topology, seed) key first, which guarantees this.
//
// Determinism contract: a network rebuilt from the same scenario key and
// then restored from a snapshot continues exactly like the network the
// snapshot was taken from — the clock matches, run-scoped RNG streams are
// re-derived from the run index on the next BeginRun, and the drained queue
// means no in-flight ordering state survives (per-session FIFO clamps only
// ever look at deliveries ≤ now, which cannot constrain future sends).
func (n *Network) RestoreState(st *NetState) error {
	if n.queue.Len() > 0 {
		return fmt.Errorf("sim: RestoreState requires a converged network (%d events pending)", n.queue.Len())
	}
	if len(st.Routers) != len(n.routers) {
		return fmt.Errorf("sim: snapshot has %d routers, network has %d", len(st.Routers), len(n.routers))
	}
	for i, rs := range st.Routers {
		if rs.ID != n.routers[i].id || rs.External != n.routers[i].external {
			return fmt.Errorf("sim: snapshot router %d (id %d, external %v) does not match network (id %d, external %v)",
				i, int(rs.ID), rs.External, int(n.routers[i].id), n.routers[i].external)
		}
	}
	for i, rs := range st.Routers {
		r := newRouter(rs.ID, rs.External, n.opts.RIB)
		for _, s := range rs.Sessions {
			r.setSession(s.Peer, s.Kind)
		}
		for _, rm := range rs.RouteMaps {
			m := r.ensureRouteMap(rm.Dir, rm.Neighbor)
			for _, e := range rm.Entries {
				m.Add(e)
			}
		}
		for _, nr := range rs.AdjIn {
			r.adjIn.Set(nr.Neighbor, nr.Route)
		}
		for _, rt := range rs.LocRIB {
			r.locRib.Set(rt)
		}
		for _, ao := range rs.AdjOut {
			t := r.adjOutFor(ao.Neighbor)
			for _, rt := range ao.Routes {
				t.Set(rt)
			}
		}
		for _, o := range rs.Originated {
			r.originated[o.Prefix] = o.Announcement
		}
		r.aggRules = append(r.aggRules, rs.AggRules...)
		n.routers[i] = r
	}
	n.now = st.Now
	n.run = st.Run
	n.msgCount = st.MsgCount
	n.maxTableEntries = st.MaxTableEntries
	n.ebgpExports = make(map[bgp.Prefix]int, len(st.EBGPExports))
	for _, pc := range st.EBGPExports {
		n.ebgpExports[pc.Prefix] = pc.Count
	}
	n.dirty = make(map[bgp.Prefix]causeMark)
	n.curCause, n.curHops = 0, 0
	n.pendingCmds = nil
	n.lastDelivery = make(map[sessKey]time.Duration)
	n.recountTableEntries()
	return nil
}
