package sim

// DeriveSeed maps (base seed, stream index) to an independent PCG stream
// seed via two SplitMix64 rounds. Every scenario run in a sweep — and every
// repeated execution on one network — derives its own stream this way, so
// its random draws are a pure function of (base seed, index) rather than of
// how many draws earlier runs happened to consume. SplitMix64 is the
// standard seeding mixer for PCG-family generators: consecutive indices land
// in statistically unrelated regions of the state space.
func DeriveSeed(base, stream uint64) uint64 {
	x := base + 0x9e3779b97f4a7c15*(stream+1)
	for i := 0; i < 2; i++ {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}
