package sim

import (
	"slices"

	"chameleon/internal/bgp"
	"chameleon/internal/topology"
)

// AggregateRule makes a router originate a summary route whenever it
// selects at least one contributor route — the border aggregation of §8
// ("routes are aggregated only at the network border to either reduce the
// number of routes handled in iBGP or to announce a single eBGP route").
// With SummaryOnly, contributor routes are suppressed towards iBGP
// neighbors, so the interior sees only the summary.
type AggregateRule struct {
	Summary      bgp.Prefix
	Contributors []bgp.Prefix
	SummaryOnly  bool
}

// AddAggregate installs an aggregation rule at node. The summary prefix
// must not be announced by anyone else. The rule takes effect immediately:
// newly suppressed contributors are withdrawn from all neighbors.
func (n *Network) AddAggregate(node topology.NodeID, rule AggregateRule) {
	r := n.routers[node]
	r.aggRules = append(r.aggRules, rule)
	n.evalAggregates(node)
	for _, nb := range r.neighbors() {
		for _, c := range rule.Contributors {
			n.exportDiff(node, nb, c)
		}
	}
}

// RemoveAggregates clears all aggregation rules at node, withdrawing any
// active summaries.
func (n *Network) RemoveAggregates(node topology.NodeID) {
	r := n.routers[node]
	rules := r.aggRules
	r.aggRules = nil
	for _, rule := range rules {
		n.runDecision(node, rule.Summary)
		// Previously suppressed contributors may flow again.
		for _, nb := range r.neighbors() {
			for _, c := range rule.Contributors {
				n.exportDiff(node, nb, c)
			}
		}
	}
}

// suppressed reports whether prefix must not be exported from node towards
// an iBGP neighbor because a summary-only aggregate covers it.
func (r *router) suppressed(prefix bgp.Prefix) bool {
	for _, rule := range r.aggRules {
		if rule.SummaryOnly && slices.Contains(rule.Contributors, prefix) {
			return true
		}
	}
	return false
}

// aggregateRoute returns the locally originated summary route for prefix
// if some aggregation rule for it is active (≥1 contributor selected via
// eBGP at this router).
func (r *router) aggregateRoute(prefix bgp.Prefix) (bgp.Route, bool) {
	for _, rule := range r.aggRules {
		if rule.Summary != prefix {
			continue
		}
		for _, c := range rule.Contributors {
			if best, ok := r.locRib.Get(c); ok && best.FromEBGP && best.Egress == r.id {
				// Originated as if learned over eBGP at this router: it
				// behaves like a normal egress route in iBGP.
				return bgp.Route{
					Prefix:       prefix,
					Egress:       r.id,
					External:     topology.None, // locally aggregated
					Path:         []topology.NodeID{r.id},
					LocalPref:    bgp.DefaultLocalPref,
					ASPathLen:    0,
					FromEBGP:     true,
					OriginatorID: topology.None,
				}, true
			}
		}
	}
	return bgp.Route{}, false
}

// evalAggregates re-runs the decision process for every summary prefix of
// node, letting the (dis)appearance of contributor routes originate or
// withdraw the summaries.
func (n *Network) evalAggregates(node topology.NodeID) {
	r := n.routers[node]
	for _, rule := range r.aggRules {
		n.runDecision(node, rule.Summary)
	}
}
