package sim_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"chameleon/internal/scenario"
	"chameleon/internal/sim"
)

// midReconfiguration drives sc halfway through its command list and runs the
// network to convergence, yielding a genuinely intermediate state.
func midReconfiguration(t *testing.T, sc *scenario.Scenario) *sim.Network {
	t.Helper()
	half := len(sc.Commands) / 2
	if half == 0 {
		half = len(sc.Commands)
	}
	for _, cmd := range sc.Commands[:half] {
		cmd.Apply(sc.Net)
	}
	sc.Net.Run()
	return sc.Net
}

func TestCaptureStateRequiresConvergence(t *testing.T) {
	sc := scenario.RunningExample()
	sc.Net.InjectExternalRoute(sc.Ext[0], sim.Announcement{Prefix: sc.Prefix})
	if sc.Net.Converged() {
		t.Fatal("expected pending events after injection")
	}
	if _, err := sc.Net.CaptureState(); err == nil {
		t.Fatal("CaptureState on a non-converged network should fail")
	}
	sc.Net.Run()
	if _, err := sc.Net.CaptureState(); err != nil {
		t.Fatalf("CaptureState after Run: %v", err)
	}
}

func TestCaptureStateDeterministic(t *testing.T) {
	capture := func() []byte {
		sc := scenario.RunningExample()
		net := midReconfiguration(t, sc)
		st, err := net.CaptureState()
		if err != nil {
			t.Fatalf("CaptureState: %v", err)
		}
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := capture(), capture()
	if string(a) != string(b) {
		t.Fatalf("capture not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestRestoreStateRoundTrip rebuilds a fresh scenario, restores a snapshot
// taken mid-reconfiguration onto it, and checks that configuration readback,
// forwarding state, and future evolution all match the original network.
func TestRestoreStateRoundTrip(t *testing.T) {
	orig := scenario.RunningExample()
	net := midReconfiguration(t, orig)
	st, err := net.CaptureState()
	if err != nil {
		t.Fatalf("CaptureState: %v", err)
	}

	// Serialize through JSON, as the journal does.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded sim.NetState
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	fresh := scenario.RunningExample()
	fresh.Net.Run()
	if err := fresh.Net.RestoreState(&decoded); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}

	if got, want := fresh.Net.ForwardingState(orig.Prefix), net.ForwardingState(orig.Prefix); !reflect.DeepEqual(got, want) {
		t.Fatalf("forwarding state mismatch after restore:\n got %v\nwant %v", got, want)
	}
	if got, want := fresh.Net.Now(), net.Now(); got != want {
		t.Fatalf("clock mismatch after restore: got %v want %v", got, want)
	}

	// Re-capturing the restored network must reproduce the snapshot exactly.
	st2, err := fresh.Net.CaptureState()
	if err != nil {
		t.Fatalf("re-capture: %v", err)
	}
	b2, err := json.Marshal(st2)
	if err != nil {
		t.Fatalf("marshal re-capture: %v", err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-captured snapshot differs:\n%s\nvs\n%s", b, b2)
	}

	// Future evolution must match: apply the remaining commands to both and
	// compare the resulting routing state.
	half := len(orig.Commands) / 2
	rest := orig.Commands[half:]
	for _, cmd := range rest {
		cmd.Apply(net)
	}
	net.Run()
	for _, cmd := range rest {
		cmd.Apply(fresh.Net)
	}
	fresh.Net.Run()
	if got, want := fresh.Net.ForwardingState(orig.Prefix), net.ForwardingState(orig.Prefix); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restore evolution diverged:\n got %v\nwant %v", got, want)
	}
	gotRoutes, gotHave := fresh.Net.RoutingState(orig.Prefix)
	wantRoutes, wantHave := net.RoutingState(orig.Prefix)
	if !reflect.DeepEqual(gotRoutes, wantRoutes) || !reflect.DeepEqual(gotHave, wantHave) {
		t.Fatalf("routing state diverged:\n got %v %v\nwant %v %v", gotRoutes, gotHave, wantRoutes, wantHave)
	}
}

func TestRestoreStateRejectsMismatchedTopology(t *testing.T) {
	sc := scenario.RunningExample()
	sc.Net.Run()
	st, err := sc.Net.CaptureState()
	if err != nil {
		t.Fatalf("CaptureState: %v", err)
	}
	other, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: 7})
	if err != nil {
		t.Fatalf("CaseStudy: %v", err)
	}
	other.Net.Run()
	if other.Net.Graph().NumNodes() == sc.Net.Graph().NumNodes() {
		t.Skip("case study unexpectedly has same node count")
	}
	if err := other.Net.RestoreState(st); err == nil {
		t.Fatal("RestoreState onto a different topology should fail")
	}
}

func TestRouteMapEntriesAccessor(t *testing.T) {
	var rm *sim.RouteMap
	if got := rm.Entries(); got != nil {
		t.Fatalf("nil route map Entries = %v, want nil", got)
	}
	rm = &sim.RouteMap{}
	rm.Add(sim.Entry{Order: 20, Action: sim.Action{Deny: true}})
	rm.Add(sim.Entry{Order: 10})
	es := rm.Entries()
	if len(es) != 2 || es[0].Order != 10 || es[1].Order != 20 {
		t.Fatalf("Entries = %+v, want sorted orders [10 20]", es)
	}
	// Mutating the copy must not affect the map.
	es[0].Order = 99
	if rm.Entries()[0].Order != 10 {
		t.Fatal("Entries returned a view into internal state")
	}
}

func TestRestoreStateClearsPendingWork(t *testing.T) {
	sc := scenario.RunningExample()
	sc.Net.Run()
	st, err := sc.Net.CaptureState()
	if err != nil {
		t.Fatalf("CaptureState: %v", err)
	}
	target := scenario.RunningExample()
	target.Net.Run()
	// Leave a cancelled command token behind; restore must reset that
	// bookkeeping so PendingCommands starts clean.
	tk := target.Net.ScheduleCommand(0, sim.Command{Node: target.E1, Description: "noop", Apply: func(*sim.Network) {}}, 0)
	tk.Cancel()
	target.Net.Run()
	if err := target.Net.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got := target.Net.PendingCommands(); got != 0 {
		t.Fatalf("PendingCommands after restore = %d, want 0", got)
	}
}
