package sim_test

import (
	"testing"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

func TestEgressRouteMapDeny(t *testing.T) {
	// Deny n2's exports towards n3 (Out direction): n3 must use n5's copy.
	s := scenario.RunningExample()
	n2, n3, n5 := s.Graph.MustNode("n2"), s.Graph.MustNode("n3"), s.Graph.MustNode("n5")
	s.Net.UpdateRouteMap(n2, n3, sim.Out, func(rm *sim.RouteMap) {
		rm.Add(sim.Entry{Order: 1, Action: sim.Action{Deny: true}})
	})
	s.Net.Run()
	for _, r := range s.Net.Candidates(n3, s.Prefix) {
		if r.Pre() == n2 {
			t.Errorf("n3 still has a route from n2 despite egress deny: %v", r)
		}
	}
	best, ok := s.Net.Best(n3, s.Prefix)
	if !ok || best.Pre() != n5 {
		t.Errorf("n3 best = %v, want from n5", best)
	}
}

func TestRunUntilAdvancesClockOnly(t *testing.T) {
	s := scenario.RunningExample()
	fired := false
	s.Net.ScheduleAfter(10*time.Second, func(*sim.Network) { fired = true })
	s.Net.RunUntil(s.Net.Now() + 5*time.Second)
	if fired {
		t.Error("future event ran too early")
	}
	s.Net.RunUntil(s.Net.Now() + 6*time.Second)
	if !fired {
		t.Error("event did not run at its time")
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := scenario.RunningExample()
	ran := false
	s.Net.ScheduleAt(0, func(*sim.Network) { ran = true }) // in the past
	s.Net.Run()
	if !ran {
		t.Error("past-scheduled event never ran")
	}
}

func TestMEDTieBreak(t *testing.T) {
	// Two equivalent announcements differing only in MED: lower wins.
	s := scenario.RunningExample()
	ext1, ext6 := s.Graph.MustNode("ext1"), s.Graph.MustNode("ext6")
	s.Net.InjectExternalRoute(ext1, sim.Announcement{Prefix: 9, ASPathLen: 2, MED: 50})
	s.Net.InjectExternalRoute(ext6, sim.Announcement{Prefix: 9, ASPathLen: 2, MED: 10})
	s.Net.Run()
	// At n3 (equidistant-ish client), the MED-10 route must win wherever
	// both are visible with equal local-pref... note n1's lp-200 map is
	// prefix-agnostic, so ρ from ext1 has lp 200 and wins regardless; use
	// n1 itself which sees its own eBGP route (lp 200).
	n1 := s.Graph.MustNode("n1")
	best, ok := s.Net.Best(n1, 9)
	if !ok {
		t.Fatal("n1 has no route for prefix 9")
	}
	if best.Egress != n1 {
		t.Errorf("n1 best egress %d (lp 200 should win locally)", best.Egress)
	}
	// Remove the lp map: now MED decides between equal-lp routes at n1
	// only if both routes share (weight, lp, aspath); n1 sees ext1 direct
	// (ebgp) and ρ6 via RRs (ibgp): eBGP wins before MED. So check a
	// route pair at the same node with both iBGP: n4 receives only the
	// network best; this scenario can't isolate MED there. Assert instead
	// that the comparator honored MED during RR selection: the RRs chose
	// the ext6 route (MED 10) once lp is equalized.
	s.Net.UpdateRouteMap(n1, ext1, sim.In, func(rm *sim.RouteMap) { rm.Remove(10) })
	s.Net.Run()
	n2 := s.Graph.MustNode("n2")
	best2, ok := s.Net.Best(n2, 9)
	if !ok {
		t.Fatal("n2 has no route")
	}
	if best2.MED != 10 {
		t.Errorf("n2 selected MED %d, want the MED-10 route", best2.MED)
	}
}

func TestSessionKindChangeRefreshesExports(t *testing.T) {
	// Turning a client into a plain peer restricts reflection: n5
	// receives client routes from n2 only while n2 treats the origin as a
	// client.
	s := scenario.RunningExample()
	n2, n5 := s.Graph.MustNode("n2"), s.Graph.MustNode("n5")
	// Initially n2 and n5 are peers; n2 reflects client routes to n5.
	found := false
	for _, r := range s.Net.Candidates(n5, s.Prefix) {
		if r.Pre() == n2 {
			found = true
		}
	}
	if !found {
		t.Fatal("precondition: n5 should have a reflected route from n2")
	}
	// Demote n1 from n2's client to plain peer: n2 may no longer reflect
	// n1's routes to n5 (non-client → non-client).
	n1 := s.Graph.MustNode("n1")
	s.Net.SetSession(n2, n1, bgp.IBGPPeer)
	s.Net.Run()
	for _, r := range s.Net.Candidates(n5, s.Prefix) {
		if r.Pre() == n2 && r.Egress == n1 {
			t.Errorf("n2 still reflects the non-client route to peer n5: %v", r)
		}
	}
}

func TestPendingAndConverged(t *testing.T) {
	s := scenario.RunningExample()
	if !s.Net.Converged() || s.Net.Pending() != 0 {
		t.Fatal("fixture should be converged")
	}
	s.Net.ScheduleAfter(time.Second, func(*sim.Network) {})
	if s.Net.Converged() {
		t.Error("pending event should mean not converged")
	}
	s.Net.Run()
	if !s.Net.Converged() {
		t.Error("Run must drain the queue")
	}
}

func TestInjectOnInternalPanics(t *testing.T) {
	s := scenario.RunningExample()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Net.InjectExternalRoute(s.Graph.MustNode("n1"), sim.Announcement{Prefix: 3})
}

func TestRouteMapStringAndLen(t *testing.T) {
	var rm sim.RouteMap
	if rm.Len() != 0 || (&rm).String() != "(empty)" {
		t.Errorf("empty map: len=%d str=%q", rm.Len(), (&rm).String())
	}
	rm.Add(sim.Entry{Order: 5, Action: sim.Action{Deny: true}})
	rm.Add(sim.Entry{Order: 2, Action: sim.Action{SetWeight: sim.IntP(7), SetLocalPref: sim.U32P(300)}})
	if rm.Len() != 2 {
		t.Errorf("len = %d", rm.Len())
	}
	str := rm.String()
	if str == "" || str == "(empty)" {
		t.Errorf("String = %q", str)
	}
	if removed := rm.Remove(5); removed != 1 {
		t.Errorf("Remove(5) = %d", removed)
	}
	if removed := rm.Remove(99); removed != 0 {
		t.Errorf("Remove(99) = %d", removed)
	}
}

func TestDirectionString(t *testing.T) {
	if sim.In.String() != "in" || sim.Out.String() != "out" {
		t.Error("Direction.String broken")
	}
}

func TestMessagesProcessedMonotone(t *testing.T) {
	s := scenario.RunningExample()
	before := s.Net.MessagesProcessed()
	s.Net.WithdrawExternalRoute(s.Graph.MustNode("ext6"), s.Prefix)
	s.Net.Run()
	if s.Net.MessagesProcessed() <= before {
		t.Error("message counter did not advance")
	}
}

// TestIBGPPolicies exercises §8's iBGP-policy discussion: route maps on
// internal sessions can discard routes, so different routers may see
// different route sets for the same prefix — the dependency source the
// paper warns about.
func TestIBGPPolicies(t *testing.T) {
	s := scenario.RunningExample()
	n3, n2, n5 := s.Graph.MustNode("n3"), s.Graph.MustNode("n2"), s.Graph.MustNode("n5")
	// n3 denies prefix 0 from BOTH reflectors: it becomes routeless for
	// prefix 0 while every other router keeps its routes.
	for _, rr := range []topology.NodeID{n2, n5} {
		rr := rr
		s.Net.UpdateRouteMap(n3, rr, sim.In, func(rm *sim.RouteMap) {
			rm.Add(sim.Entry{Order: 1,
				Match:  sim.Match{Prefix: sim.PrefixP(0), Neighbor: sim.NodeP(rr)},
				Action: sim.Action{Deny: true}})
		})
	}
	s.Net.Run()
	if _, ok := s.Net.Best(n3, 0); ok {
		t.Error("n3 still selects a route despite iBGP deny policies")
	}
	n4 := s.Graph.MustNode("n4")
	if _, ok := s.Net.Best(n4, 0); !ok {
		t.Error("n4 lost its route though only n3 filters")
	}
	// The forwarding state now differs per router for the same packet —
	// exactly the §8 dependency scenario.
	st := s.Net.ForwardingState(0)
	if st.Reach(n3) {
		t.Error("n3 should black-hole prefix 0")
	}
	if !st.Reach(n4) {
		t.Error("n4 must still reach prefix 0")
	}
}
