package sim

import (
	"container/heap"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/obs"
	"chameleon/internal/topology"
)

// msgKind distinguishes BGP message types on the wire.
type msgKind int

const (
	msgUpdate msgKind = iota
	msgWithdraw
	// msgBatch carries many updates and withdrawals in one delivery: the
	// receiver applies them all to its Adj-RIB-In, then runs ONE decision
	// pass per affected prefix and forwards at most one batch per
	// neighbor. This is what keeps 100k-prefix announcement storms at
	// O(routes) work instead of O(routes × messages).
	msgBatch
)

// message is a BGP message in flight on a directed session.
type message struct {
	kind   msgKind
	from   topology.NodeID
	to     topology.NodeID
	route  bgp.Route  // for msgUpdate
	prefix bgp.Prefix // for msgWithdraw

	// Batch payload (msgBatch), in ascending prefix order.
	updates   []bgp.Route
	withdraws []bgp.Prefix
}

// event is a queue entry: either a message delivery or a scheduled function
// (configuration command, external event, probe). Each event carries the
// causal chain it belongs to: the root cause and the number of message hops
// between the root and this event (see cause.go).
type event struct {
	at    time.Duration
	seq   uint64 // tie-break, preserves insertion order at equal times
	msg   *message
	fn    func(*Network)
	cause CauseID
	hops  int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.queue, e)
}

// ScheduleAt runs fn when the simulated clock reaches t. Functions
// scheduled for the past run at the current time. The scheduled function
// inherits the ambient causal chain: scheduling from inside an event
// handler (a flap's re-establish timer, a fault-layer wrapper) keeps the
// scheduler's cause; scheduling from outside the event loop roots a chain
// with no cause.
func (n *Network) ScheduleAt(t time.Duration, fn func(*Network)) {
	if t < n.now {
		t = n.now
	}
	n.push(&event{at: t, fn: fn, cause: n.curCause, hops: n.curHops})
}

// ScheduleAfter runs fn after the given delay from the current simulated
// time.
func (n *Network) ScheduleAfter(d time.Duration, fn func(*Network)) {
	n.ScheduleAt(n.now+d, fn)
}

// sendMsg enqueues a BGP message honoring per-session FIFO ordering: a
// message never overtakes an earlier message on the same directed session.
// An installed fault injector may delay or duplicate the delivery; the
// fault is applied before the FIFO clamp so ordering is preserved.
func (n *Network) sendMsg(m *message) {
	delay := n.sessionDelay(m.from, m.to)
	if n.opts.Jitter > 0 {
		delay += time.Duration(n.rng.Int64N(int64(n.opts.Jitter)))
	}
	duplicate := false
	if n.faults != nil {
		switch f := n.faults.MessageFault(m.from, m.to); f.Kind {
		case FaultDelay:
			if f.DelayFactor > 1 {
				delay = time.Duration(float64(delay) * f.DelayFactor)
				n.count(obs.CtrFaultsMessage, 1)
			}
		case FaultDuplicate:
			duplicate = true
			n.count(obs.CtrFaultsMessage, 1)
		}
	}
	key := sessionKey(m.from, m.to)
	enqueue := func(at time.Duration) time.Duration {
		if last, ok := n.lastDelivery[key]; ok && at <= last {
			at = last + time.Microsecond
		}
		n.lastDelivery[key] = at
		// A message is one propagation hop deeper than the event that sent
		// it; the cause rides along unchanged.
		n.push(&event{at: at, msg: m, cause: n.curCause, hops: n.curHops + 1})
		return at
	}
	at := enqueue(n.now + delay)
	if duplicate {
		enqueue(at + delay/2)
	}
}

type sessKey struct{ from, to topology.NodeID }

func sessionKey(from, to topology.NodeID) sessKey { return sessKey{from, to} }
