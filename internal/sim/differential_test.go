package sim_test

// Differential property test over the two RIB engines: the same randomized
// announce/withdraw/flap/fail sequence driven through a map-table network
// and a COW-table network must produce byte-identical state snapshots,
// forwarding traces, violation timelines and observability counters. This
// is the engine-swap safety proof: the table layer may change cost, never
// behavior.

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"testing"

	"chameleon/internal/bgp"
	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// diffFixture is one engine's network plus everything we compare.
type diffFixture struct {
	net  *sim.Network
	g    *topology.Graph
	rrs  []topology.NodeID
	bdr  []topology.NodeID // border routers, session to exts[i]
	exts []topology.NodeID
	mon  *monitor.Monitor
	rec  *obs.Recorder
}

func buildDiffNet(t *testing.T, kind bgp.TableKind) *diffFixture {
	t.Helper()
	g := topology.New("diff")
	var rt []topology.NodeID
	for i := 0; i < 6; i++ {
		rt = append(rt, g.AddRouter(fmt.Sprintf("r%d", i)))
	}
	ext1 := g.AddExternal("ext1", 65001)
	ext2 := g.AddExternal("ext2", 65002)
	g.AddLink(rt[0], rt[1], 1)
	g.AddLink(rt[1], rt[2], 2)
	g.AddLink(rt[2], rt[3], 1)
	g.AddLink(rt[3], rt[4], 2)
	g.AddLink(rt[4], rt[5], 1)
	g.AddLink(rt[5], rt[0], 2)
	g.AddLink(rt[1], rt[4], 3)
	g.AddLink(ext1, rt[0], 1)
	g.AddLink(ext2, rt[3], 1)

	opts := sim.DefaultOptions(11)
	opts.RIB = kind
	net := sim.New(g, opts)
	rrs := []topology.NodeID{rt[1], rt[4]}
	for _, rr := range rrs {
		for _, c := range []topology.NodeID{rt[0], rt[2], rt[3], rt[5]} {
			net.SetSession(rr, c, bgp.IBGPClient)
		}
	}
	net.SetSession(rrs[0], rrs[1], bgp.IBGPPeer)
	net.SetSession(rt[0], ext1, bgp.EBGP)
	net.SetSession(rt[3], ext2, bgp.EBGP)

	rec := obs.New()
	net.SetRecorder(rec)
	mon := monitor.New(monitor.Config{
		Name:       "diff",
		Invariants: []monitor.Invariant{monitor.ReachAll(g), monitor.LoopFree()},
	})
	mon.Bind(net)
	return &diffFixture{
		net: net, g: g, rrs: rrs,
		bdr:  []topology.NodeID{rt[0], rt[3]},
		exts: []topology.NodeID{ext1, ext2},
		mon:  mon, rec: rec,
	}
}

// driveDiffOps applies a deterministic pseudo-random operation sequence.
// Both fixtures get a fresh RNG with the same seed, so they see identical
// operations; any divergence in outcome is the table engine's fault.
func driveDiffOps(f *diffFixture, seed uint64, batched bool) {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	const universe = 48
	ann := func(p bgp.Prefix) sim.Announcement {
		return sim.Announcement{
			Prefix:    p,
			ASPathLen: 1 + rng.IntN(3),
			MED:       uint32(rng.IntN(4)),
		}
	}
	for op := 0; op < 60; op++ {
		ext := f.exts[rng.IntN(len(f.exts))]
		switch rng.IntN(6) {
		case 0, 1: // announce a block of prefixes
			k := 1 + rng.IntN(8)
			anns := make([]sim.Announcement, 0, k)
			for i := 0; i < k; i++ {
				anns = append(anns, ann(bgp.Prefix(rng.IntN(universe))))
			}
			if batched {
				f.net.InjectExternalRoutes(ext, anns)
			} else {
				for _, a := range anns {
					f.net.InjectExternalRoute(ext, a)
				}
			}
		case 2: // withdraw a block
			k := 1 + rng.IntN(6)
			ps := make([]bgp.Prefix, 0, k)
			for i := 0; i < k; i++ {
				ps = append(ps, bgp.Prefix(rng.IntN(universe)))
			}
			if batched {
				f.net.WithdrawExternalRoutes(ext, ps)
			} else {
				for _, p := range ps {
					f.net.WithdrawExternalRoute(ext, p)
				}
			}
		case 3: // flap: announce and withdraw while churn is in flight
			p := bgp.Prefix(rng.IntN(universe))
			f.net.InjectExternalRoute(ext, ann(p))
			f.net.RunUntil(f.net.Now() + 5e6) // partial propagation
			f.net.WithdrawExternalRoute(ext, p)
		case 4: // IGP event
			a := topology.NodeID(rng.IntN(6))
			b := topology.NodeID((int(a) + 1) % 6)
			if f.net.FailLink(a, b) {
				f.net.Run()
				f.net.RestoreLink(a, b)
			}
		case 5: // ingress policy change at a border router
			i := rng.IntN(len(f.bdr))
			lp := uint32(80 + rng.IntN(3)*40)
			f.net.UpdateRouteMap(f.bdr[i], f.exts[i], sim.In, func(rm *sim.RouteMap) {
				rm.Remove(10)
				rm.Add(sim.Entry{Order: 10, Action: sim.Action{SetLocalPref: sim.U32P(lp)}})
			})
		}
		f.net.Run()
	}
	f.net.Run()
}

// fingerprint serializes everything the engines must agree on.
func fingerprint(t *testing.T, f *diffFixture) []byte {
	t.Helper()
	st, err := f.net.CaptureState()
	if err != nil {
		t.Fatalf("CaptureState: %v", err)
	}
	tl := f.mon.Finish(f.net.Now())
	type dump struct {
		State       interface{}
		Timeline    interface{}
		Counters    map[string]int64
		Msgs        uint64
		Entries     int
		MaxEntries  int
		EBGPExports []int
		Traces      map[int]interface{}
	}
	d := dump{
		State:      st,
		Timeline:   tl,
		Counters:   f.rec.Counters(),
		Msgs:       f.net.MessagesProcessed(),
		Entries:    f.net.TableEntries(),
		MaxEntries: f.net.MaxTableEntries(),
		Traces:     map[int]interface{}{},
	}
	for p := 0; p < 48; p++ {
		d.EBGPExports = append(d.EBGPExports, f.net.EBGPExports(bgp.Prefix(p)))
		if tr := f.net.Trace(bgp.Prefix(p)); tr != nil {
			d.Traces[p] = tr
		}
	}
	b, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestDifferentialEngines(t *testing.T) {
	for _, mode := range []struct {
		name    string
		batched bool
	}{{"per-route", false}, {"batched", true}} {
		t.Run(mode.name, func(t *testing.T) {
			for _, seed := range []uint64{3, 17, 99} {
				mapFix := buildDiffNet(t, bgp.TableMap)
				cowFix := buildDiffNet(t, bgp.TableCOW)
				driveDiffOps(mapFix, seed, mode.batched)
				driveDiffOps(cowFix, seed, mode.batched)
				a, b := fingerprint(t, mapFix), fingerprint(t, cowFix)
				if string(a) != string(b) {
					diffAt := 0
					for diffAt < len(a) && diffAt < len(b) && a[diffAt] == b[diffAt] {
						diffAt++
					}
					lo := max(0, diffAt-200)
					t.Fatalf("seed %d: engines diverge at byte %d:\nmap: …%s…\ncow: …%s…",
						seed, diffAt, a[lo:min(len(a), diffAt+200)], b[lo:min(len(b), diffAt+200)])
				}
			}
		})
	}
}

// TestBatchedMatchesPerRouteOutcome checks that batch injection converges
// to the same routing state as route-by-route injection (messages differ —
// that is the point — but the converged tables must not).
func TestBatchedMatchesPerRouteOutcome(t *testing.T) {
	for _, kind := range []bgp.TableKind{bgp.TableMap, bgp.TableCOW} {
		one := buildDiffNet(t, kind)
		bat := buildDiffNet(t, kind)
		anns := make([]sim.Announcement, 0, 40)
		for p := 0; p < 40; p++ {
			anns = append(anns, sim.Announcement{Prefix: bgp.Prefix(p), ASPathLen: 1 + p%3})
		}
		for _, a := range anns {
			one.net.InjectExternalRoute(one.exts[0], a)
		}
		one.net.Run()
		bat.net.InjectExternalRoutes(bat.exts[0], anns)
		bat.net.Run()
		if om, bm := one.net.MessagesProcessed(), bat.net.MessagesProcessed(); bm >= om {
			t.Fatalf("kind %v: batching did not reduce messages: %d >= %d", kind, bm, om)
		}
		for p := 0; p < 40; p++ {
			for _, n := range one.g.Internal() {
				ro, oko := one.net.Best(n, bgp.Prefix(p))
				rb, okb := bat.net.Best(n, bgp.Prefix(p))
				if oko != okb || (oko && !ro.PathEqual(rb)) {
					t.Fatalf("kind %v: node %d prefix %d: per-route %v(%v) vs batched %v(%v)",
						kind, n, p, ro, oko, rb, okb)
				}
			}
		}
	}
}
