package sim_test

import (
	"testing"

	"chameleon/internal/bgp"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
)

// aggFixture: the running-example network where ext1 announces two
// contributor prefixes (10, 11) at n1, which aggregates them into summary
// prefix 100 with summary-only suppression.
func aggFixture(t *testing.T) *scenario.Scenario {
	t.Helper()
	s := scenario.RunningExample()
	ext1 := s.Graph.MustNode("ext1")
	n1 := s.Graph.MustNode("n1")
	s.Net.InjectExternalRoute(ext1, sim.Announcement{Prefix: 10, ASPathLen: 2})
	s.Net.InjectExternalRoute(ext1, sim.Announcement{Prefix: 11, ASPathLen: 2})
	s.Net.Run()
	s.Net.AddAggregate(n1, sim.AggregateRule{
		Summary:      100,
		Contributors: []bgp.Prefix{10, 11},
		SummaryOnly:  true,
	})
	s.Net.Run()
	return s
}

func TestAggregateOriginatesSummary(t *testing.T) {
	s := aggFixture(t)
	n1 := s.Graph.MustNode("n1")
	// Every internal node must know the summary with egress n1.
	for _, n := range s.Graph.Internal() {
		best, ok := s.Net.Best(n, 100)
		if !ok {
			t.Errorf("node %d has no summary route", n)
			continue
		}
		if best.Egress != n1 {
			t.Errorf("node %d summary egress %d, want n1", n, best.Egress)
		}
	}
}

func TestSummaryOnlySuppressesContributors(t *testing.T) {
	s := aggFixture(t)
	n3 := s.Graph.MustNode("n3")
	// The interior must NOT see the contributor prefixes.
	for _, p := range []bgp.Prefix{10, 11} {
		if cands := s.Net.Candidates(n3, p); len(cands) != 0 {
			t.Errorf("n3 sees suppressed contributor %d: %v", p, cands)
		}
	}
	// The aggregating border router still selects the contributors.
	n1 := s.Graph.MustNode("n1")
	for _, p := range []bgp.Prefix{10, 11} {
		if _, ok := s.Net.Best(n1, p); !ok {
			t.Errorf("n1 lost contributor %d", p)
		}
	}
}

// TestAggregateIndependence reproduces §8's argument: with border-only
// aggregation, withdrawing ONE contributor leaves the summary (and the
// interior routing state) untouched — the prefixes behave independently
// from the interior's point of view.
func TestAggregateIndependence(t *testing.T) {
	s := aggFixture(t)
	ext1 := s.Graph.MustNode("ext1")
	n3 := s.Graph.MustNode("n3")
	msgsBefore := s.Net.MessagesProcessed()
	before, ok := s.Net.Best(n3, 100)
	if !ok {
		t.Fatal("n3 lacks the summary")
	}
	s.Net.WithdrawExternalRoute(ext1, 10)
	s.Net.Run()
	after, ok := s.Net.Best(n3, 100)
	if !ok {
		t.Fatal("summary vanished though contributor 11 is alive")
	}
	if !before.PathEqual(after) {
		t.Error("summary route churned on a partial contributor withdrawal")
	}
	// No summary-related iBGP churn may have occurred: the only messages
	// are the eBGP withdraw itself (plus nothing in the interior).
	if churn := s.Net.MessagesProcessed() - msgsBefore; churn > 2 {
		t.Errorf("interior saw %d messages after a suppressed-contributor withdrawal", churn)
	}
}

func TestAggregateWithdrawnWhenAllContributorsGone(t *testing.T) {
	s := aggFixture(t)
	ext1 := s.Graph.MustNode("ext1")
	s.Net.WithdrawExternalRoute(ext1, 10)
	s.Net.WithdrawExternalRoute(ext1, 11)
	s.Net.Run()
	for _, n := range s.Graph.Internal() {
		if _, ok := s.Net.Best(n, 100); ok {
			t.Errorf("node %d still has the summary with no contributors", n)
		}
	}
}

func TestRemoveAggregates(t *testing.T) {
	s := aggFixture(t)
	n1 := s.Graph.MustNode("n1")
	s.Net.RemoveAggregates(n1)
	s.Net.Run()
	for _, n := range s.Graph.Internal() {
		if _, ok := s.Net.Best(n, 100); ok {
			t.Errorf("node %d kept the summary after rule removal", n)
		}
	}
}

func TestAggregateSurvivesClone(t *testing.T) {
	s := aggFixture(t)
	c := s.Net.Clone()
	ext1 := s.Graph.MustNode("ext1")
	c.WithdrawExternalRoute(ext1, 10)
	c.WithdrawExternalRoute(ext1, 11)
	c.Run()
	n3 := s.Graph.MustNode("n3")
	if _, ok := c.Best(n3, 100); ok {
		t.Error("cloned network did not withdraw the summary")
	}
	// Original unaffected.
	if _, ok := s.Net.Best(n3, 100); !ok {
		t.Error("original lost the summary")
	}
}
