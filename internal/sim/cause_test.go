package sim_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// snapRecord is one observed snapshot with its provenance, rendered to a
// deterministic string for cross-run comparison.
type snapRecord struct {
	at   time.Duration
	prov sim.Provenance
}

func (r snapRecord) String() string {
	return fmt.Sprintf("%d|%s|%q|%d|%d|%d|%d",
		r.at, r.prov.Cause.Kind, r.prov.Cause.Label, r.prov.Cause.Node,
		r.prov.Cause.Seq, r.prov.Cause.At, r.prov.Hops)
}

// collectSnapshots installs a hook recording every snapshot's provenance.
func collectSnapshots(net *sim.Network) *[]snapRecord {
	recs := &[]snapRecord{}
	net.SetSnapshotHook(func(at time.Duration, _ bgp.Prefix, _ fwd.State, prov sim.Provenance) {
		*recs = append(*recs, snapRecord{at: at, prov: prov})
	})
	return recs
}

// TestCommandProvenancePropagates: a scheduled command that withdraws the
// preferred route roots a causal chain; every forwarding change of the
// resulting churn carries that command as its cause, with hop depths
// growing as the withdrawal propagates and activation stamped in sim time.
func TestCommandProvenancePropagates(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	ext1 := s.Graph.MustNode("ext1")
	recs := collectSnapshots(net)

	const desc = "withdraw rho1 at ext1"
	net.ScheduleCommand(10*time.Second, sim.Command{
		Node:        s.E1,
		Description: desc,
		Apply:       func(n *sim.Network) { n.WithdrawExternalRoute(ext1, s.Prefix) },
	}, 0)
	net.Run()

	if len(*recs) == 0 {
		t.Fatal("no snapshots observed")
	}
	maxHops := 0
	for _, r := range *recs {
		if !r.prov.Rooted() {
			t.Fatalf("snapshot at %v has unrooted provenance %+v", r.at, r.prov)
		}
		c := r.prov.Cause
		if c.Kind != sim.CauseCommand || c.Label != desc || c.Node != s.E1 {
			t.Fatalf("snapshot at %v blames %+v, want command %q at node %d", r.at, c, desc, s.E1)
		}
		if c.At < 10*time.Second {
			t.Fatalf("cause activated at %v, scheduled for 10s", c.At)
		}
		if r.at < c.At {
			t.Fatalf("snapshot at %v precedes its cause's activation %v", r.at, c.At)
		}
		if r.prov.Hops > maxHops {
			maxHops = r.prov.Hops
		}
	}
	// The withdrawal reaches clients only through the reflectors: the churn
	// must include multi-hop provenance, not just the egress's local change.
	if maxHops < 2 {
		t.Errorf("max hop depth %d, want ≥ 2 (egress → reflector → client)", maxHops)
	}
	if got, ok := net.CauseOf(1); !ok || got.Label != desc {
		t.Errorf("CauseOf(1) = %+v, %v; want the registered command", got, ok)
	}
}

// TestEventProvenanceAndPhase: ScheduleEventAt roots an "event" cause
// carrying the phase label active at registration.
func TestEventProvenanceAndPhase(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	ext6 := s.Graph.MustNode("ext6")
	recs := collectSnapshots(net)

	net.SetPhaseLabel("round 1")
	id := net.ScheduleEventAt(net.Now()+5*time.Second, "ext6 withdraws",
		func(n *sim.Network) { n.WithdrawExternalRoute(ext6, s.Prefix) })
	net.SetPhaseLabel("")
	net.Run()

	c, ok := net.CauseOf(id)
	if !ok {
		t.Fatal("registered event cause not resolvable")
	}
	if c.Kind != sim.CauseEvent || c.Label != "ext6 withdraws" || c.Phase != "round 1" {
		t.Errorf("cause = %+v, want event %q in phase %q", c, "ext6 withdraws", "round 1")
	}
	if c.Node != topology.None {
		t.Errorf("event cause node = %d, want topology.None", c.Node)
	}
	// ρ6 is nobody's best route, so the withdrawal may flip no forwarding
	// entry — but any snapshot it does produce must blame the event.
	for _, r := range *recs {
		if r.prov.Rooted() && r.prov.Cause.ID != id {
			t.Errorf("snapshot blames cause %d, only cause %d exists", r.prov.Cause.ID, id)
		}
	}
}

// TestInitialConvergenceIsUnrooted: snapshots produced by direct mutations
// outside any command or event carry zero provenance.
func TestInitialConvergenceIsUnrooted(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	recs := collectSnapshots(net)
	// A direct API mutation, not routed through the fault/event layer.
	net.WithdrawExternalRoute(s.Graph.MustNode("ext1"), s.Prefix)
	net.Run()
	if len(*recs) == 0 {
		t.Fatal("no snapshots observed")
	}
	for _, r := range *recs {
		if r.prov.Rooted() {
			t.Fatalf("direct mutation produced rooted provenance %+v", r.prov)
		}
		if r.prov.Cause.Kind.String() != "init" {
			t.Fatalf("unrooted kind renders %q, want init", r.prov.Cause.Kind.String())
		}
	}
}

// TestProvenanceDeterministic: the full snapshot/provenance sequence of a
// command-driven churn is byte-identical across identical runs.
func TestProvenanceDeterministic(t *testing.T) {
	render := func() string {
		s := scenario.RunningExample()
		net := s.Net
		ext1 := s.Graph.MustNode("ext1")
		recs := collectSnapshots(net)
		net.SetPhaseLabel("round 1")
		net.ScheduleCommand(10*time.Second, sim.Command{
			Node:        s.E1,
			Description: "withdraw rho1",
			Apply:       func(n *sim.Network) { n.WithdrawExternalRoute(ext1, s.Prefix) },
		}, 0)
		net.Run()
		var b strings.Builder
		for _, r := range *recs {
			fmt.Fprintln(&b, r.String())
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("provenance sequence differs across identical runs:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `command|"withdraw rho1"`) {
		t.Errorf("provenance sequence lacks the command cause:\n%s", a)
	}
}
