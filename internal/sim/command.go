package sim

import "chameleon/internal/topology"

// Command is an atomic configuration change targeting one router — the unit
// the paper's compiler (§5) interleaves with its temporary commands. Apply
// mutates the network immediately; the runtime controller is responsible
// for modeling router command latency before invoking it.
type Command struct {
	// Node is the router whose configuration the command changes.
	Node topology.NodeID
	// Description is a human-readable rendering for plans and logs.
	Description string
	// DeniesOld reports whether the command makes Node deny (lose) its
	// initial route; per §5 such commands run after r_nh, others before.
	DeniesOld bool
	// Apply performs the change.
	Apply func(*Network)
	// Verify, when set, checks whether the command's configuration effect
	// is present on the network — the controller's "show running-config"
	// readback. The self-healing executor uses it to confirm commands
	// whose acknowledgment was lost instead of blindly assuming failure.
	Verify func(*Network) bool
}

func (c Command) String() string { return c.Description }
