package fwd

import (
	"testing"

	"chameleon/internal/topology"
)

func TestPathReachAndEgress(t *testing.T) {
	// 0 -> 1 -> 2 -> d, 3 -> drop
	s := State{1, 2, External, Drop}
	path, term := s.Path(0)
	if term != External || len(path) != 3 {
		t.Fatalf("Path(0) = %v, %v", path, term)
	}
	if !s.Reach(0) || !s.Reach(2) {
		t.Error("0 and 2 must reach d")
	}
	if s.Reach(3) {
		t.Error("3 must not reach d")
	}
	if e := s.Egress(0); e != 2 {
		t.Errorf("Egress(0) = %d, want 2", e)
	}
	if e := s.Egress(3); e != topology.None {
		t.Errorf("Egress(3) = %d, want None", e)
	}
}

func TestWaypoint(t *testing.T) {
	s := State{1, 2, External, External}
	if !s.Waypoint(0, 1) {
		t.Error("0 traverses 1")
	}
	if !s.Waypoint(0, 0) {
		t.Error("a node waypoints through itself")
	}
	if s.Waypoint(3, 1) {
		t.Error("3 exits directly, does not traverse 1")
	}
	dropping := State{Drop}
	if dropping.Waypoint(0, 0) {
		t.Error("dropped traffic never satisfies a waypoint")
	}
}

func TestLoopDetection(t *testing.T) {
	s := State{1, 0, External}
	if !s.HasLoop() {
		t.Error("0<->1 is a loop")
	}
	if s.Reach(0) {
		t.Error("looping traffic does not reach d")
	}
	ok := State{1, External, Drop}
	if ok.HasLoop() {
		t.Error("no loop expected")
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := State{1, External}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone must equal source")
	}
	c[0] = Drop
	if s.Equal(c) {
		t.Error("mutating clone must not affect source")
	}
	if s[0] != 1 {
		t.Error("source mutated")
	}
}

func TestNewState(t *testing.T) {
	s := NewState(3)
	for i, nh := range s {
		if nh != Drop {
			t.Errorf("NewState[%d] = %d, want Drop", i, nh)
		}
	}
}

func TestTraceAtAndCompact(t *testing.T) {
	var tr Trace
	s1 := State{External, Drop}
	s2 := State{External, 0}
	tr.Append(0, s1)
	tr.Append(1, s1) // duplicate
	tr.Append(2, s2)
	tr.Compact()
	if len(tr.States) != 2 {
		t.Fatalf("Compact left %d states, want 2", len(tr.States))
	}
	if !tr.At(0.5).Equal(s1) {
		t.Error("At(0.5) should be s1")
	}
	if !tr.At(2.5).Equal(s2) {
		t.Error("At(2.5) should be s2")
	}
	if !tr.At(-1).Equal(s1) {
		t.Error("At before first time returns first state")
	}
}

func TestTraceAtEmpty(t *testing.T) {
	var tr Trace
	if tr.At(0) != nil {
		t.Error("empty trace At should be nil")
	}
	tr.Compact() // must not panic
}

func TestStateString(t *testing.T) {
	s := State{1, Drop, External}
	got := s.String()
	want := "0→1 1→∅ 2→d"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
