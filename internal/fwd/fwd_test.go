package fwd

import (
	"slices"
	"testing"

	"chameleon/internal/topology"
)

func TestPathReachAndEgress(t *testing.T) {
	// 0 -> 1 -> 2 -> d, 3 -> drop
	s := State{1, 2, External, Drop}
	path, term := s.Path(0)
	if term != External || len(path) != 3 {
		t.Fatalf("Path(0) = %v, %v", path, term)
	}
	if !s.Reach(0) || !s.Reach(2) {
		t.Error("0 and 2 must reach d")
	}
	if s.Reach(3) {
		t.Error("3 must not reach d")
	}
	if e := s.Egress(0); e != 2 {
		t.Errorf("Egress(0) = %d, want 2", e)
	}
	if e := s.Egress(3); e != topology.None {
		t.Errorf("Egress(3) = %d, want None", e)
	}
}

func TestWaypoint(t *testing.T) {
	s := State{1, 2, External, External}
	if !s.Waypoint(0, 1) {
		t.Error("0 traverses 1")
	}
	if !s.Waypoint(0, 0) {
		t.Error("a node waypoints through itself")
	}
	if s.Waypoint(3, 1) {
		t.Error("3 exits directly, does not traverse 1")
	}
	dropping := State{Drop}
	if dropping.Waypoint(0, 0) {
		t.Error("dropped traffic never satisfies a waypoint")
	}
}

func TestLoopDetection(t *testing.T) {
	s := State{1, 0, External}
	if !s.HasLoop() {
		t.Error("0<->1 is a loop")
	}
	if s.Reach(0) {
		t.Error("looping traffic does not reach d")
	}
	ok := State{1, External, Drop}
	if ok.HasLoop() {
		t.Error("no loop expected")
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := State{1, External}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone must equal source")
	}
	c[0] = Drop
	if s.Equal(c) {
		t.Error("mutating clone must not affect source")
	}
	if s[0] != 1 {
		t.Error("source mutated")
	}
}

func TestNewState(t *testing.T) {
	s := NewState(3)
	for i, nh := range s {
		if nh != Drop {
			t.Errorf("NewState[%d] = %d, want Drop", i, nh)
		}
	}
}

func TestTraceAtAndCompact(t *testing.T) {
	var tr Trace
	s1 := State{External, Drop}
	s2 := State{External, 0}
	tr.Append(0, s1)
	tr.Append(1, s1) // duplicate
	tr.Append(2, s2)
	tr.Compact()
	if len(tr.States) != 2 {
		t.Fatalf("Compact left %d states, want 2", len(tr.States))
	}
	if !tr.At(0.5).Equal(s1) {
		t.Error("At(0.5) should be s1")
	}
	if !tr.At(2.5).Equal(s2) {
		t.Error("At(2.5) should be s2")
	}
	if !tr.At(-1).Equal(s1) {
		t.Error("At before first time returns first state")
	}
}

func TestTraceAtEmpty(t *testing.T) {
	var tr Trace
	if tr.At(0) != nil {
		t.Error("empty trace At should be nil")
	}
	tr.Compact() // must not panic
}

func TestLoopClassification(t *testing.T) {
	cases := []struct {
		name string
		s    State
		want []topology.NodeID // LoopNodes
	}{
		{"self-loop with feeder chain", State{1, 2, 2, External, Drop}, []topology.NodeID{0, 1, 2}},
		{"two-cycle with feeders both sides", State{1, 2, 1, 2, External}, []topology.NodeID{0, 1, 2, 3}},
		{"chain into already-resolved cycle", State{1, 0, 0}, []topology.NodeID{0, 1, 2}},
		{"chain into already-resolved terminator", State{External, 0, 0}, nil},
		{"all drop", State{Drop, Drop}, nil},
		{"long clean chain", State{1, 2, 3, External}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.LoopNodes(); !slices.Equal(got, tc.want) {
				t.Errorf("LoopNodes = %v, want %v", got, tc.want)
			}
			if got, want := tc.s.HasLoop(), len(tc.want) > 0; got != want {
				t.Errorf("HasLoop = %v, want %v", got, want)
			}
			// The single-pass classification must agree with the
			// walk-per-router reference (Path reports Drop for loops).
			for n := range tc.s {
				_, term := tc.s.Path(topology.NodeID(n))
				pathLoops := term == Drop && tc.s[n] != Drop && !isDropChain(tc.s, topology.NodeID(n))
				inLoopNodes := slices.Contains(tc.s.LoopNodes(), topology.NodeID(n))
				if pathLoops != inLoopNodes {
					t.Errorf("node %d: Path says loop=%v, LoopNodes says %v", n, pathLoops, inLoopNodes)
				}
			}
		})
	}
}

// isDropChain reports whether n's path ends at an explicit Drop (as opposed
// to looping forever); helper for cross-checking the loop classifier.
func isDropChain(s State, n topology.NodeID) bool {
	seen := make(map[topology.NodeID]bool)
	for !seen[n] {
		seen[n] = true
		switch s[n] {
		case Drop:
			return true
		case External:
			return false
		}
		n = s[n]
	}
	return false // revisited a node: loop
}

func TestTraceAtExactSampleTime(t *testing.T) {
	var tr Trace
	s1 := State{External}
	s2 := State{Drop}
	tr.Append(1, s1)
	tr.Append(2, s2)
	if !tr.At(1).Equal(s1) {
		t.Error("At(1) must return the state sampled exactly at t=1")
	}
	if !tr.At(2).Equal(s2) {
		t.Error("a new state is active exactly at its sample time")
	}
	if !tr.At(1.999).Equal(s1) {
		t.Error("the previous state holds until the next sample time")
	}
}

func TestTraceCompactIdempotent(t *testing.T) {
	var tr Trace
	tr.Append(0, State{External, Drop})
	tr.Append(1, State{External, Drop})
	tr.Append(2, State{External, 0})
	tr.Append(3, State{External, 0})
	tr.Compact()
	if len(tr.States) != 2 || tr.Times[0] != 0 || tr.Times[1] != 2 {
		t.Fatalf("after Compact: times %v (%d states), want [0 2]", tr.Times, len(tr.States))
	}
	times := slices.Clone(tr.Times)
	tr.Compact()
	if !slices.Equal(tr.Times, times) || len(tr.States) != 2 {
		t.Errorf("Compact not idempotent: times %v (%d states)", tr.Times, len(tr.States))
	}
}

func TestTraceAppendClones(t *testing.T) {
	var tr Trace
	s := State{External}
	tr.Append(0, s)
	s[0] = Drop
	if !tr.At(0).Equal(State{External}) {
		t.Error("Append must store a copy, not alias the caller's state")
	}
}

// BenchmarkHasLoop exercises the single-pass classifier on the two extreme
// shapes: one maximal chain (worst case for the old walk-per-router
// version, which was quadratic here) and a fully fragmented state.
func BenchmarkHasLoop(b *testing.B) {
	const n = 1024
	chain := make(State, n)
	for i := 0; i < n-1; i++ {
		chain[i] = topology.NodeID(i + 1)
	}
	chain[n-1] = External
	cycle := chain.Clone()
	cycle[n-1] = 0 // close the chain into one big cycle
	b.Run("chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if chain.HasLoop() {
				b.Fatal("unexpected loop")
			}
		}
	})
	b.Run("cycle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !cycle.HasLoop() {
				b.Fatal("loop not detected")
			}
		}
	})
}

func TestStateString(t *testing.T) {
	s := State{1, Drop, External}
	got := s.String()
	want := "0→1 1→∅ 2→d"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
