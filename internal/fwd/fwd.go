// Package fwd represents per-destination forwarding states: the mapping
// nh : N → N ∪ {d, ∅} of §3. A State is shared between the simulator (which
// produces them), the specification evaluator (which checks LTL properties
// over sequences of them), and the traffic measurement harness.
package fwd

import (
	"fmt"
	"slices"
	"strings"

	"chameleon/internal/topology"
)

// Special next-hop values. Regular values are internal router IDs.
const (
	// Drop (∅): the node has no route and drops packets.
	Drop topology.NodeID = -1
	// External (d): the node is the egress and hands packets to the
	// external destination.
	External topology.NodeID = -2
)

// State is a forwarding state for a single destination: State[n] is the
// next hop of node n. Only internal routers have meaningful entries;
// external nodes carry Drop.
type State []topology.NodeID

// NewState returns a state of size n where every node drops.
func NewState(n int) State {
	s := make(State, n)
	for i := range s {
		s[i] = Drop
	}
	return s
}

// Clone returns a copy of s.
func (s State) Clone() State { return slices.Clone(s) }

// Equal reports whether two states are identical.
func (s State) Equal(o State) bool { return slices.Equal(s, o) }

// Path walks the forwarding state from n. It returns the traversed nodes
// (starting with n) and the terminal value: External if the packet exits,
// Drop if it is dropped or enters a forwarding loop.
func (s State) Path(n topology.NodeID) ([]topology.NodeID, topology.NodeID) {
	var path []topology.NodeID
	seen := make(map[topology.NodeID]bool)
	cur := n
	for {
		if seen[cur] {
			return path, Drop // forwarding loop
		}
		seen[cur] = true
		path = append(path, cur)
		nh := s[cur]
		switch nh {
		case Drop, External:
			return path, nh
		}
		cur = nh
	}
}

// Reach reports whether packets from n reach the external destination.
func (s State) Reach(n topology.NodeID) bool {
	_, term := s.Path(n)
	return term == External
}

// Waypoint reports whether packets from n traverse w before exiting (a node
// trivially waypoints through itself). Dropped or looping traffic does not
// satisfy the waypoint.
func (s State) Waypoint(n, w topology.NodeID) bool {
	path, term := s.Path(n)
	if term != External {
		return false
	}
	return slices.Contains(path, w)
}

// Loop-classification colors. The forwarding state is a functional graph
// (each node has at most one successor), so a single three-color DFS shared
// across all start nodes classifies every node in O(|N|): grey marks the
// chain currently being walked, and the two final colors record whether a
// node's traffic eventually enters a cycle or terminates (exit or drop).
const (
	loopWhite  uint8 = iota // unvisited
	loopGrey                // on the chain currently being walked
	loopCycles              // resolved: path enters a forwarding loop
	loopTerm                // resolved: path terminates (External or Drop)
)

// classifyLoops walks every forwarding chain once and returns, per node,
// whether its path enters a forwarding loop. Each node is pushed and
// resolved exactly once, so the whole-state check is linear — the online
// monitor loop-checks every transient snapshot, which made the previous
// walk-per-router quadratic version a hot path.
func (s State) classifyLoops() []uint8 {
	color := make([]uint8, len(s))
	var chain []topology.NodeID
	for n := range s {
		if color[n] != loopWhite {
			continue
		}
		cur := topology.NodeID(n)
		chain = chain[:0]
		verdict := loopTerm
		for {
			nh := s[cur]
			if nh == Drop || nh == External {
				break
			}
			color[cur] = loopGrey
			chain = append(chain, cur)
			switch color[nh] {
			case loopGrey: // closed a cycle within this chain
				verdict = loopCycles
			case loopCycles:
				verdict = loopCycles
			case loopTerm:
				verdict = loopTerm
			case loopWhite:
				cur = nh
				continue
			}
			break
		}
		if color[cur] == loopWhite { // chain ended on a terminal node
			color[cur] = loopTerm
		}
		for _, m := range chain {
			color[m] = verdict
		}
	}
	return color
}

// HasLoop reports whether any node's forwarding path loops. Single-pass:
// one shared three-color DFS over the functional graph, O(|N|) per state.
func (s State) HasLoop() bool {
	for _, c := range s.classifyLoops() {
		if c == loopCycles {
			return true
		}
	}
	return false
}

// LoopNodes returns every node whose forwarding path enters a loop (cycle
// members and the chains feeding them), in node-ID order — the blast
// radius of a loop-freedom violation.
func (s State) LoopNodes() []topology.NodeID {
	var out []topology.NodeID
	for n, c := range s.classifyLoops() {
		if c == loopCycles {
			out = append(out, topology.NodeID(n))
		}
	}
	return out
}

// Egress returns the node at which traffic from n exits, or topology.None
// if it never exits.
func (s State) Egress(n topology.NodeID) topology.NodeID {
	path, term := s.Path(n)
	if term != External || len(path) == 0 {
		return topology.None
	}
	return path[len(path)-1]
}

// String renders the state compactly, e.g. "0→1 1→d 2→∅".
func (s State) String() string {
	var b strings.Builder
	for n, nh := range s {
		if n > 0 {
			b.WriteByte(' ')
		}
		switch nh {
		case Drop:
			fmt.Fprintf(&b, "%d→∅", n)
		case External:
			fmt.Fprintf(&b, "%d→d", n)
		default:
			fmt.Fprintf(&b, "%d→%d", n, int(nh))
		}
	}
	return b.String()
}

// Trace is a timestamped sequence of forwarding states for one destination.
type Trace struct {
	// Times[i] is when States[i] became active; States[i] remains active
	// until Times[i+1] (or forever, for the last state).
	Times  []float64 // seconds
	States []State
}

// At returns the state active at time t (seconds). The first state is
// assumed active from -inf.
func (tr *Trace) At(t float64) State {
	if len(tr.States) == 0 {
		return nil
	}
	idx := 0
	for i, ti := range tr.Times {
		if ti <= t {
			idx = i
		} else {
			break
		}
	}
	return tr.States[idx]
}

// Append adds a state snapshot taken at time t.
func (tr *Trace) Append(t float64, s State) {
	tr.Times = append(tr.Times, t)
	tr.States = append(tr.States, s.Clone())
}

// Compact drops consecutive duplicate states, keeping the earliest time of
// each run.
func (tr *Trace) Compact() {
	if len(tr.States) == 0 {
		return
	}
	outT := tr.Times[:1]
	outS := tr.States[:1]
	for i := 1; i < len(tr.States); i++ {
		if !tr.States[i].Equal(outS[len(outS)-1]) {
			outT = append(outT, tr.Times[i])
			outS = append(outS, tr.States[i])
		}
	}
	tr.Times, tr.States = outT, outS
}
