package chaos_test

import (
	"reflect"
	goruntime "runtime"
	"testing"

	"chameleon/internal/chaos"
	"chameleon/internal/sim"
)

// TestSweepWorkerCountInvariance runs the same fault matrix sequentially
// and on wider pools and asserts the results — fingerprints, recovery
// accounting, summaries — are identical. The sweep's determinism contract:
// only wall-clock time may depend on the worker count, and chaos results
// carry none.
func TestSweepWorkerCountInvariance(t *testing.T) {
	cfg := chaos.SweepConfig{
		Topologies: []string{"Abilene"},
		Faults: []sim.FaultKind{
			sim.FaultNone, sim.FaultDrop, sim.FaultDelay,
			sim.FaultDuplicate, sim.FaultPartial, sim.FaultFlap,
		},
		Seeds: []uint64{1},
	}
	run := func(workers int) ([]chaos.CaseResult, []chaos.Summary) {
		cfg.Workers = workers
		results, sums, err := chaos.Sweep(cfg, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return results, sums
	}
	wantResults, wantSums := run(1)
	for _, w := range []int{4, goruntime.NumCPU()} {
		results, sums := run(w)
		if !reflect.DeepEqual(results, wantResults) {
			t.Errorf("workers=%d produced different case results than sequential", w)
		}
		if !reflect.DeepEqual(sums, wantSums) {
			t.Errorf("workers=%d produced different summaries than sequential", w)
		}
	}
}
