package chaos_test

import (
	"context"
	"path/filepath"
	"testing"

	"chameleon/internal/chaos"
	"chameleon/internal/supervisor"
)

// TestRecoverySweepNeverPinned is the acceptance sweep of the closed-loop
// supervisor: persistent faults and mid-reconfiguration external events,
// across topologies — and every single run must terminate in the final or
// the initial configuration, verified, with zero silent violations.
func TestRecoverySweepNeverPinned(t *testing.T) {
	dir := t.TempDir()
	cfg := chaos.DefaultRecoverySweep()
	cfg.JournalDir = dir
	results, err := chaos.RecoverySweep(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Topologies) * len(cfg.Profiles) * len(cfg.Seeds)
	if len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	for _, r := range results {
		if !r.Recovered {
			t.Errorf("%s/%s/seed=%d NOT recovered: outcome=%s verified=%v silent=%v",
				r.Topology, r.Profile, r.Seed, r.Outcome, r.Verified, r.SilentViolations)
		}
		if r.Outcome != "final" && r.Outcome != "initial" {
			t.Errorf("%s/%s/seed=%d pinned: outcome %q", r.Topology, r.Profile, r.Seed, r.Outcome)
		}
		if len(r.SilentViolations) > 0 {
			t.Errorf("%s/%s/seed=%d silent violations: %v", r.Topology, r.Profile, r.Seed, r.SilentViolations)
		}
		// Each case left a parseable journal artifact closing with its
		// outcome.
		jpath := filepath.Join(dir, journalName(r.Topology, r.Profile, r.Seed))
		entries, err := supervisor.ReadJournal(jpath)
		if err != nil {
			t.Errorf("%s: %v", jpath, err)
			continue
		}
		last := entries[len(entries)-1]
		if last.Kind != supervisor.KindOutcome || last.Outcome != r.Outcome {
			t.Errorf("%s: journal ends with %s/%s, want outcome %s", jpath, last.Kind, last.Outcome, r.Outcome)
		}
	}
}

func journalName(topo, profile string, seed uint64) string {
	return "recovery-" + topo + "-" + profile + "-1.jsonl"
}

// TestRecoveryProfilesExerciseTheLadder pins which rung each profile
// reaches on the running example, so a regression that silently stops
// descending (or starts descending too eagerly) is caught.
func TestRecoveryProfilesExerciseTheLadder(t *testing.T) {
	run := func(profile string) *chaos.RecoveryResult {
		t.Helper()
		r, err := chaos.RunRecoveryCase(chaos.RecoveryCase{
			Topology: "RunningExample", Profile: profile, Seed: 1,
		}, "")
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	soft := run(chaos.ProfilePersistentFault)
	if soft.Outcome != "final" || soft.Replans == 0 {
		t.Errorf("persistent-fault: outcome=%s replans=%d, want final via replanning",
			soft.Outcome, soft.Replans)
	}
	if soft.RolledBack {
		t.Error("persistent-fault rolled back; the fault clears after two invocations")
	}

	hard := run(chaos.ProfilePersistentHard)
	if hard.Outcome != "initial" || !hard.RolledBack {
		t.Errorf("persistent-fault-hard: outcome=%s rolledback=%v, want rolled-back initial",
			hard.Outcome, hard.RolledBack)
	}

	mid := run(chaos.ProfileMidEvent)
	if !mid.Recovered {
		t.Errorf("mid-event not recovered: %+v", mid)
	}
}

// TestRecoveryDeterministic: same case, same fingerprint — the recovery
// matrix is as reproducible as the chaos matrix.
func TestRecoveryDeterministic(t *testing.T) {
	c := chaos.RecoveryCase{Topology: "Abilene", Profile: chaos.ProfilePersistentFault, Seed: 3}
	a, err := chaos.RunRecoveryCase(c, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.RunRecoveryCase(c, filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("fingerprints differ: %x vs %x (journaling must not perturb the run)",
			a.Fingerprint, b.Fingerprint)
	}
}

// TestPersistentDropFactory checks the factory's until semantics.
func TestPersistentDropFactory(t *testing.T) {
	f := chaos.PersistentDropFactory(2, nil)
	if f(0) == nil || f(1) == nil {
		t.Error("invocations before until must be faulted")
	}
	if f(2) != nil {
		t.Error("invocations at/after until must be fault-free")
	}
	forever := chaos.PersistentDropFactory(-1, nil)
	if forever(10) == nil {
		t.Error("until < 0 must fault every invocation")
	}
}
