package chaos

import (
	"bufio"
	"fmt"
	"io"
)

// The fingerprint tables are the chaos sweeps' run-bundle parts: one line
// per case, every field a deterministic function of the case, so a bundle
// diff of two same-seed sweeps is empty and any divergence names the exact
// case that behaved differently. Wall-clock measurements never appear.

// WriteFingerprints renders a chaos sweep's results as a canonical
// fingerprint table, in sweep (case) order.
func WriteFingerprints(w io.Writer, results []CaseResult) error {
	bw := bufio.NewWriter(w)
	for _, r := range results {
		fmt.Fprintf(bw, "chaos %s/%s/seed=%d outcome=%s sim_ns=%d rounds=%d faults=%d,%d flaps=%d fp=%016x\n",
			r.Topology, r.Fault, r.Seed, r.Outcome, int64(r.SimDuration), r.Rounds,
			r.CommandFaults, r.MessageFaults, r.Flaps, r.Fingerprint)
	}
	return bw.Flush()
}

// WriteRecoveryFingerprints renders a supervised recovery sweep's results
// as a canonical fingerprint table, in sweep order.
func WriteRecoveryFingerprints(w io.Writer, results []RecoveryResult) error {
	bw := bufio.NewWriter(w)
	for _, r := range results {
		fmt.Fprintf(bw, "recovery %s/%s/seed=%d outcome=%s verified=%v attempts=%d replans=%d forced=%v viol_ns=%d silent=%d fp=%016x\n",
			r.Topology, r.Profile, r.Seed, r.Outcome, r.Verified, r.Attempts, r.Replans,
			r.Forced, int64(r.ViolationTime), len(r.SilentViolations), r.Fingerprint)
	}
	return bw.Flush()
}
