package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/pool"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/supervisor"
	"chameleon/internal/topology"
)

// Recovery profiles stress the closed-loop supervisor where the plain
// chaos matrix stresses the executor: instead of asking "does the
// self-healing executor absorb transient faults", they ask "when it
// cannot, does the supervisor still land the network in the final or the
// initial configuration — never pinned in between, never with a silent
// invariant violation".
const (
	// ProfilePersistentFault drops every command on the first two executor
	// invocations: the escalation ladder exhausts, the supervisor aborts,
	// snapshots and replans, and the final replan attempt lands the
	// reconfiguration.
	ProfilePersistentFault = "persistent-fault"
	// ProfilePersistentHard drops every command on every invocation of
	// every rung: no forward progress is possible and the supervisor must
	// descend the whole degradation ladder to a confirmed (or forced)
	// rollback.
	ProfilePersistentHard = "persistent-fault-hard"
	// ProfileMidEvent schedules harmful external events mid-execution —
	// the best route withdrawn under the network's feet and an iBGP
	// session flap — and expects the supervisor to either finish clean or
	// visibly replan from the perturbed intermediate state.
	ProfileMidEvent = "mid-event"
)

// RecoveryProfiles lists every profile in sweep order.
func RecoveryProfiles() []string {
	return []string{ProfilePersistentFault, ProfilePersistentHard, ProfileMidEvent}
}

// RecoveryCase is one supervised chaos experiment.
type RecoveryCase struct {
	Topology string
	Profile  string
	Seed     uint64
}

// RecoveryResult reports one supervised run. Like CaseResult, every field
// is a deterministic function of the case.
type RecoveryResult struct {
	Topology string
	Profile  string
	Seed     uint64

	// Outcome is the supervisor's terminal configuration ("final" or
	// "initial") — by contract never anything else.
	Outcome  string
	Verified bool

	Attempts   int
	Replans    int
	Committed  bool
	RolledBack bool
	Forced     bool

	// ViolationTime is the union violation time across every monitored
	// attempt — transients during flagged recovery are visible, counted,
	// and acceptable.
	ViolationTime time.Duration
	// SilentViolations are invariant violations in an attempt that
	// completed without any recovery reaction: the one unacceptable
	// result, empty on every healthy run.
	SilentViolations []string

	// Recovered is the acceptance predicate: a verified final-or-initial
	// configuration with zero silent violations.
	Recovered bool

	JournalBytes int64
	Fingerprint  uint64
}

// persistentInjector drops every command whose description matches; unlike
// the probabilistic chaos Injector it never relents, modeling a dead
// management channel rather than a lossy one.
type persistentInjector struct {
	match func(topology.NodeID, string) bool
}

func (p persistentInjector) CommandFault(node topology.NodeID, desc string, _ int) sim.CommandFault {
	if p.match == nil || p.match(node, desc) {
		return sim.CommandFault{Kind: sim.FaultDrop}
	}
	return sim.CommandFault{Kind: sim.FaultNone}
}

func (persistentInjector) MessageFault(_, _ topology.NodeID) sim.MessageFault {
	return sim.MessageFault{Kind: sim.FaultNone}
}

// PersistentDropFactory builds a supervisor InjectorFactory: invocations
// before until (or all of them, when until < 0) see every matching command
// dropped; later invocations run fault-free. A nil match drops everything.
func PersistentDropFactory(until int, match func(topology.NodeID, string) bool) func(int) sim.FaultInjector {
	return func(attempt int) sim.FaultInjector {
		if until >= 0 && attempt >= until {
			return nil
		}
		return persistentInjector{match: match}
	}
}

// RunRecoveryCase executes one supervised chaos case under
// context.Background().
func RunRecoveryCase(c RecoveryCase, journalPath string) (*RecoveryResult, error) {
	return RunRecoveryCaseCtx(context.Background(), c, journalPath)
}

// RunRecoveryCaseCtx builds the scenario, wires the profile's faults and
// events into a supervisor, runs it to termination and classifies the
// result. journalPath, when non-empty, receives the case's execution
// journal (the artifact a CI smoke step uploads).
func RunRecoveryCaseCtx(ctx context.Context, c RecoveryCase, journalPath string) (*RecoveryResult, error) {
	ctx, span := obs.StartSpan(ctx, "recovery-case",
		obs.String("topology", c.Topology),
		obs.String("profile", c.Profile),
		obs.Int("seed", int64(c.Seed)))
	defer span.End()
	span.Add(obs.CtrChaosCases, 1)

	s, err := buildScenario(c.Topology, c.Seed)
	if err != nil {
		return nil, err
	}
	opts := supervisor.Options{
		Seed:             c.Seed,
		JournalPath:      journalPath,
		SolverNodeBudget: scheduler.DeterministicNodeBudget,
	}
	switch c.Profile {
	case ProfilePersistentFault:
		opts.InjectorFactory = PersistentDropFactory(2, nil)
	case ProfilePersistentHard:
		opts.InjectorFactory = PersistentDropFactory(-1, nil)
	case ProfileMidEvent:
		opts.ExternalEvents = midEvents(s)
	default:
		return nil, fmt.Errorf("chaos: unknown recovery profile %q", c.Profile)
	}

	res, err := supervisor.RunCtx(ctx, s, opts)
	if err != nil {
		return nil, err
	}
	return classifyRecovery(c, res), nil
}

// midEvents schedules the profile's harmful external events: the initially
// best route withdrawn mid-execution, then an iBGP session flap. Both are
// §8's "events harmful to the transient state" — exactly what ReactReplan
// exists for.
func midEvents(s *scenario.Scenario) []runtime.ScheduledEvent {
	evs := []runtime.ScheduledEvent{{
		After: 30 * time.Second,
		Name:  "withdraw best route",
		Apply: func(n *sim.Network) { n.WithdrawExternalRoute(s.Ext[0], s.Prefix) },
	}}
	if len(s.RRs) > 0 {
		rr := s.RRs[0]
		var peer topology.NodeID = -1
		for _, nb := range s.Net.Sessions(rr) {
			if !s.Graph.Node(nb).External {
				peer = nb
				break
			}
		}
		if peer >= 0 {
			evs = append(evs, runtime.ScheduledEvent{
				After: 55 * time.Second,
				Name:  fmt.Sprintf("flap n%d–n%d", int(rr), int(peer)),
				Apply: func(n *sim.Network) { n.FlapSession(rr, peer, 20*time.Second) },
			})
		}
	}
	return evs
}

// classifyRecovery folds a supervisor result into the recovery verdict.
func classifyRecovery(c RecoveryCase, res *supervisor.Result) *RecoveryResult {
	out := &RecoveryResult{
		Topology:     c.Topology,
		Profile:      c.Profile,
		Seed:         c.Seed,
		Outcome:      res.Outcome.String(),
		Verified:     res.Verified,
		Attempts:     res.Attempts,
		Replans:      res.Replans,
		Committed:    res.Committed,
		RolledBack:   res.RolledBack,
		Forced:       res.Forced,
		JournalBytes: res.JournalBytes,
	}
	for _, tl := range res.Timelines {
		out.ViolationTime += tl.TotalViolation()
	}
	// A violation is silent only in an attempt the supervisor walked away
	// from satisfied: the final timeline of a run that completed on the
	// execute rung with no further reaction. Violations in aborted attempts
	// were answered by a replan/commit/rollback decision — flagged, not
	// silent. (The supervisor's alarm checks the same invariants the
	// monitor records, so this list is empty by construction; the chaos
	// harness verifies the construction.)
	if res.Outcome == supervisor.OutcomeFinal && !res.Committed && len(res.Timelines) > 0 {
		last := res.Timelines[len(res.Timelines)-1]
		out.SilentViolations = timelineViolations(last)
	}
	out.Recovered = res.Verified && len(out.SilentViolations) == 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%s;%s;%d;%s;%v;%d;%d;%v;%v;%v;%d;%v",
		c.Topology, c.Profile, c.Seed, out.Outcome, out.Verified,
		out.Attempts, out.Replans, out.Committed, out.RolledBack, out.Forced,
		out.ViolationTime, out.SilentViolations)
	out.Fingerprint = h.Sum64()
	return out
}

// RecoverySweepConfig spans topologies × profiles × seeds.
type RecoverySweepConfig struct {
	Topologies []string
	Profiles   []string
	Seeds      []uint64
	// JournalDir, when non-empty, receives one journal artifact per case
	// (recovery-<topology>-<profile>-<seed>.jsonl).
	JournalDir string
	Workers    int
}

// DefaultRecoverySweep covers two topologies × every profile × one seed.
func DefaultRecoverySweep() RecoverySweepConfig {
	return RecoverySweepConfig{
		Topologies: []string{"RunningExample", "Abilene"},
		Profiles:   RecoveryProfiles(),
		Seeds:      []uint64{1},
	}
}

// RecoverySweep runs the matrix Workers-wide and returns results in matrix
// order. The error aggregates nothing: a case that fails to run at all is
// an infrastructure failure, distinct from a case that runs and does not
// recover (res.Recovered == false).
func RecoverySweep(ctx context.Context, cfg RecoverySweepConfig, progress func(RecoveryResult)) ([]RecoveryResult, error) {
	var cases []RecoveryCase
	for _, topo := range cfg.Topologies {
		for _, p := range cfg.Profiles {
			for _, seed := range cfg.Seeds {
				cases = append(cases, RecoveryCase{Topology: topo, Profile: p, Seed: seed})
			}
		}
	}
	var mu sync.Mutex
	return pool.Map(ctx, cfg.Workers, len(cases), func(wctx context.Context, i int) (RecoveryResult, error) {
		c := cases[i]
		jpath := ""
		if cfg.JournalDir != "" {
			jpath = filepath.Join(cfg.JournalDir,
				fmt.Sprintf("recovery-%s-%s-%d.jsonl", c.Topology, c.Profile, c.Seed))
		}
		r, err := RunRecoveryCaseCtx(wctx, c, jpath)
		if err != nil {
			return RecoveryResult{}, fmt.Errorf("chaos: recovery %s/%s/seed=%d: %w",
				c.Topology, c.Profile, c.Seed, err)
		}
		if progress != nil {
			mu.Lock()
			progress(*r)
			mu.Unlock()
		}
		return *r, nil
	})
}
